// Daemon service exhibit (extension; not a paper table): request throughput
// and tail latency of essentd's server loop under three mixes, all against
// an in-process serve::Server on a unix socket:
//
//   * cached   — every request runs a design already in the content-
//     addressed cache: the steady state of a regression/sweep service,
//     where the compile-once/simulate-many economics pay off;
//   * cold     — every request carries a distinct cache key (the cp option
//     participates in the key), so each one compiles: the worst case,
//     bounding what a cache miss costs end to end;
//   * overload — more client threads than workers against a deliberately
//     tiny admission queue: the row documents BOUNDED queue depth and the
//     E0609 load-shed rate instead of pretending the daemon has infinite
//     capacity. Shed requests are not failures — they are the survival
//     mechanism — so they are reported in their own column.
//
// Latency is measured client-side (connect → response parsed), which
// includes framing, queueing, and scheduling — the number a caller of the
// service actually sees. Honors ESSENT_BENCH_REPS (request count scale) and
// emits BENCH_daemon_qps.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "support/socket.h"

using namespace essent;

namespace {

const char* kCounterFir = R"(circuit Counter :
  module Counter :
    input clock : Clock
    input en : UInt<1>
    output out : UInt<8>

    reg c : UInt<8>, clock
    when en :
      c <= tail(add(c, UInt<8>(1)), 1)
    out <= c
)";

struct MixResult {
  uint64_t ok = 0;
  uint64_t errors = 0;     // structured E06xx responses (shed, deadline, ...)
  uint64_t shed = 0;       // the E0609 subset of `errors`
  uint64_t transport = 0;  // connect/read failures (should stay 0 here)
  double wallSeconds = 0.0;
  obs::LatencySnapshot latency;
};

// One request over a fresh connection, latency recorded client-side.
void oneRequest(const std::string& sock, const std::string& payload,
                obs::LatencyHistogram& hist, MixResult& out, std::mutex& mu) {
  auto t0 = std::chrono::steady_clock::now();
  std::string kind = "transport";
  std::string code;
  try {
    support::Socket conn = support::connectUnix(sock);
    // Read even when the write fails: a door-shed E0609 is written and
    // closed at accept time and can race our request write.
    (void)support::writeFrame(conn.fd(), payload);
    std::string body;
    if (support::readFrame(conn.fd(), body, 64u << 20, 60'000) == support::FrameStatus::Ok) {
      std::optional<serve::ResponseEnvelope> env =
          serve::parseResponseEnvelope(obs::Json::parse(body));
      if (env) {
        kind = env->ok ? "ok" : "error";
        code = env->errorCode;
      }
    }
  } catch (const std::exception&) {
    // counted as transport below
  }
  uint64_t ns = static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - t0)
                                          .count());
  hist.record(ns);
  std::lock_guard<std::mutex> lock(mu);
  if (kind == "ok") out.ok++;
  else if (kind == "error") {
    out.errors++;
    if (code == serve::kErrOverloaded) out.shed++;
  } else {
    out.transport++;
  }
}

MixResult runMix(const std::string& sock, unsigned clients, unsigned perClient,
                 const std::function<std::string(unsigned reqIndex)>& payloadFor) {
  MixResult res;
  obs::LatencyHistogram hist;
  std::mutex mu;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (unsigned c = 0; c < clients; c++)
    ts.emplace_back([&, c] {
      for (unsigned i = 0; i < perClient; i++)
        oneRequest(sock, payloadFor(c * perClient + i), hist, res, mu);
    });
  for (std::thread& t : ts) t.join();
  res.wallSeconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  res.latency = hist.snapshot();
  return res;
}

obs::Json mixRow(const std::string& mix, unsigned clients, unsigned requests,
                 const MixResult& r) {
  obs::Json row = obs::Json::object();
  row["mix"] = mix;
  row["clients"] = clients;
  row["requests"] = requests;
  row["ok"] = r.ok;
  row["errors"] = r.errors;
  row["shed"] = r.shed;
  row["transport_failures"] = r.transport;
  row["wall_seconds"] = r.wallSeconds;
  row["req_per_sec"] = r.wallSeconds > 0 ? static_cast<double>(requests) / r.wallSeconds : 0.0;
  row["p50_ns"] = r.latency.p50Ns;
  row["p99_ns"] = r.latency.p99Ns;
  row["mean_ns"] = r.latency.meanNs;
  return row;
}

std::string runPayload(const std::string& designText, uint64_t cycles, uint32_t cp) {
  obs::Json req = obs::Json::object();
  req["proto"] = uint64_t{serve::kProtoMax};
  req["op"] = "run";
  req["design"] = designText;
  req["cycles"] = cycles;
  obs::Json opts = obs::Json::object();
  opts["cp"] = cp;
  req["options"] = std::move(opts);
  obs::Json pokes = obs::Json::object();
  pokes["en"] = 1u;
  req["pokes"] = std::move(pokes);
  return req.dump(0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report("daemon_qps", argc, argv);
  const unsigned scale = report.env().reps;  // reps scales request volume

  char tmpl[] = "/tmp/essent_bench_qps_XXXXXX";
  char* dir = mkdtemp(tmpl);
  if (!dir) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  std::string sock = std::string(dir) + "/d.sock";

  // --- cached + cold mixes: a comfortably provisioned server ---
  {
    serve::ServerOptions opts;
    opts.unixPath = sock;
    opts.workers = 4;
    opts.queueCapacity = 64;
    serve::Server server(opts);
    server.start();

    // Warm the cache, then measure pure cache-hit serving.
    const unsigned cachedClients = 4, cachedPer = 50 * scale;
    {
      MixResult warm = runMix(sock, 1, 1, [](unsigned) { return runPayload(kCounterFir, 256, 8); });
      (void)warm;
    }
    MixResult cached = runMix(sock, cachedClients, cachedPer,
                              [](unsigned) { return runPayload(kCounterFir, 256, 8); });
    report.addRow(mixRow("cached", cachedClients, cachedClients * cachedPer, cached));
    std::printf("cached:   %6.0f req/s  p50 %.2fms p99 %.2fms  (%llu ok, %llu err)\n",
                static_cast<double>(cachedClients * cachedPer) / cached.wallSeconds,
                cached.latency.p50Ns / 1e6, cached.latency.p99Ns / 1e6,
                static_cast<unsigned long long>(cached.ok),
                static_cast<unsigned long long>(cached.errors));

    // Cold: every request carries a distinct cp, hence a distinct cache key,
    // hence a full parse+lower+build+compile.
    const unsigned coldClients = 2, coldPer = 10 * scale;
    MixResult cold = runMix(sock, coldClients, coldPer, [](unsigned i) {
      return runPayload(kCounterFir, 256, 100 + i);  // unique key per request
    });
    report.addRow(mixRow("cold", coldClients, coldClients * coldPer, cold));
    std::printf("cold:     %6.0f req/s  p50 %.2fms p99 %.2fms  (%llu ok, %llu err)\n",
                static_cast<double>(coldClients * coldPer) / cold.wallSeconds,
                cold.latency.p50Ns / 1e6, cold.latency.p99Ns / 1e6,
                static_cast<unsigned long long>(cold.ok),
                static_cast<unsigned long long>(cold.errors));

    server.requestDrain();
    server.waitDrained();
  }

  // --- overload mix: tiny queue, more clients than workers ---
  {
    serve::ServerOptions opts;
    opts.unixPath = sock;
    opts.workers = 2;
    opts.queueCapacity = 4;
    opts.retryAfterMs = 50;
    serve::Server server(opts);
    server.start();

    // Warm the cache so the overload rows measure queueing, not compiles.
    runMix(sock, 1, 1, [](unsigned) { return runPayload(kCounterFir, 20'000, 8); });

    const unsigned loadClients = 12, loadPer = 10 * scale;
    MixResult over = runMix(sock, loadClients, loadPer,
                            [](unsigned) { return runPayload(kCounterFir, 20'000, 8); });
    serve::ServerStats stats = server.stats();
    obs::Json row = mixRow("overload", loadClients, loadClients * loadPer, over);
    row["queue_capacity"] = static_cast<uint64_t>(opts.queueCapacity);
    row["queue_depth_peak"] = stats.queueDepthPeak;
    row["connections_shed"] = stats.connectionsSheded;
    report.addRow(std::move(row));
    std::printf(
        "overload: %6.0f req/s  p50 %.2fms p99 %.2fms  (%llu ok, %llu shed; "
        "queue peak %llu of %zu)\n",
        static_cast<double>(loadClients * loadPer) / over.wallSeconds,
        over.latency.p50Ns / 1e6, over.latency.p99Ns / 1e6,
        static_cast<unsigned long long>(over.ok), static_cast<unsigned long long>(over.shed),
        static_cast<unsigned long long>(stats.queueDepthPeak), opts.queueCapacity);
    if (stats.queueDepthPeak > opts.queueCapacity) {
      std::fprintf(stderr, "BUG: queue depth %llu exceeded capacity %zu\n",
                   static_cast<unsigned long long>(stats.queueDepthPeak), opts.queueCapacity);
      return 1;
    }

    server.requestDrain();
    server.waitDrained();
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  report.write();
  return 0;
}
