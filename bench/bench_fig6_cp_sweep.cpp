// Reproduces Figure 6: simulator execution time as a function of the
// partitioning parameter C_p, across designs and workloads.
//
// Paper finding: the best C_p is mostly insensitive to the design and
// workload — a broad optimum around C_p = 8 — which is what makes the
// parameter host-tunable rather than design-tunable.
#include "bench_util.h"

using namespace essent;

int main(int argc, char** argv) {
  bench::JsonReporter report("fig6_cp_sweep", argc, argv);
  const uint32_t cps[] = {1, 2, 4, 8, 16, 32, 64, 128};
  std::printf("Figure 6 — execution time (s) vs partitioning parameter C_p\n");
  std::printf("%-6s %-10s", "design", "workload");
  for (uint32_t cp : cps) std::printf("  cp=%-5u", cp);
  std::printf(" best\n");
  bench::printRule(100);

  for (const auto& cfg : bench::evalDesigns()) {
    auto d = bench::buildDesign(cfg);
    core::Netlist nl = core::Netlist::build(d.optimized);
    // Partition once per C_p, reuse across workloads.
    std::vector<core::CondPartSchedule> schedules;
    for (uint32_t cp : cps) {
      core::PartitionOptions po;
      po.smallThreshold = cp;
      schedules.push_back(
          core::buildScheduleFrom(nl, core::partitionNetlist(nl, po), true));
    }
    for (const auto& prog : bench::evalWorkloads()) {
      std::printf("%-6s %-10s", d.name.c_str(), prog.name.c_str());
      double best = 1e30;
      uint32_t bestCp = 0;
      for (size_t i = 0; i < schedules.size(); i++) {
        auto eng = bench::makeCcssEngine(d.optimized, schedules[i], report.env().threads);
        auto r = bench::timeEngine(*eng, prog);
        std::printf(" %8.3f", r.seconds);
        if (r.seconds < best) {
          best = r.seconds;
          bestCp = cps[i];
        }
        std::fflush(stdout);
        obs::Json row =
            bench::JsonReporter::engineRow(d.name, prog.name, "essent", r.seconds, r.stats);
        row["cp"] = cps[i];
        row["partitions"] = schedules[i].numPartitions();
        report.addRow(std::move(row));
      }
      std::printf("  cp=%u\n", bestCp);
    }
  }
  std::printf("\npaper finding reproduced if: a broad optimum appears at a similar C_p\n"
              "across all design/workload rows (paper selects C_p = 8).\n");
  return 0;
}
