// Reproduces Figure 7: the decomposition of simulation work into base work,
// static overhead, and dynamic overhead as the partitioning parameter C_p
// varies (r16 executing dhrystone, as in the paper).
//
// Paper finding: increasing C_p (fewer, larger partitions)
//   * monotonically decreases the static overhead (per-cycle activity
//     checks are proportional to the number of partitions),
//   * leaves the dynamic overhead roughly constant (larger partitions cut
//     fewer edges but test them more often),
//   * increases the effective activity factor (coarser skipping),
// and the best total sits at a moderately aggressive C_p.
//
// The paper measured host instructions; we report the engine's own work
// counters per cycle, which decompose identically:
//   base     = ops evaluated (effective activity x design size)
//   static   = partition active-flag checks
//   dynamic  = output comparisons + consumer trigger writes
#include "bench_util.h"

using namespace essent;

int main(int argc, char** argv) {
  bench::JsonReporter report("fig7_overheads", argc, argv);
  auto d = bench::buildDesign(designs::socR16());
  auto prog = workloads::dhrystoneProgram(128);
  core::Netlist nl = core::Netlist::build(d.optimized);

  std::printf("Figure 7 — per-cycle work decomposition vs C_p (%s, %s)\n", d.name.c_str(),
              prog.name.c_str());
  std::printf("%6s %10s %12s %12s %12s %12s %9s %9s\n", "C_p", "parts", "base/cyc",
              "static/cyc", "dynamic/cyc", "total/cyc", "effAct", "time(s)");
  bench::printRule(92);

  for (uint32_t cp : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    core::PartitionOptions po;
    po.smallThreshold = cp;
    auto sched = core::buildScheduleFrom(nl, core::partitionNetlist(nl, po), true);
    auto eng = bench::makeCcssEngine(d.optimized, sched, report.env().threads);
    auto r = bench::timeEngine(*eng, prog);
    double effAct = eng->effectiveActivity();
    const auto& st = r.stats;
    double cyc = static_cast<double>(st.cycles);
    double base = static_cast<double>(st.opsEvaluated) / cyc;
    double stat = static_cast<double>(st.partitionChecks) / cyc;
    double dyn = static_cast<double>(st.outputComparisons + st.triggerSets) / cyc;
    std::printf("%6u %10zu %12.0f %12.0f %12.0f %12.0f %9.4f %9.3f\n", cp,
                sched.numPartitions(), base, stat, dyn, base + stat + dyn,
                effAct, r.seconds);
    std::fflush(stdout);
    obs::Json row = bench::JsonReporter::engineRow(d.name, prog.name, "essent", r.seconds, st);
    row["cp"] = cp;
    row["partitions"] = sched.numPartitions();
    row["base_per_cycle"] = base;
    row["static_per_cycle"] = stat;
    row["dynamic_per_cycle"] = dyn;
    row["effective_activity"] = effAct;
    report.addRow(std::move(row));
  }
  std::printf("\npaper finding reproduced if: static falls monotonically with C_p,\n"
              "dynamic stays roughly flat, effAct rises, and total work (and time)\n"
              "bottoms out at a moderate C_p.\n");
  return 0;
}
