// Reproduces Table III: execution times of the four simulators over every
// design x workload, plus ESSENT's speedup over Baseline.
//
// Paper reference (seconds; speedup = Baseline / ESSENT):
//   r16  dhrystone  CommVer 37.13  Verilator  3.68  Baseline   4.63  ESSENT  1.40  (3.31x)
//   r16  matmul             54.21             5.17             7.12          1.85  (3.84x)
//   r16  pchase            457.87            52.90            78.75         20.60  (3.82x)
//   r18  dhrystone          46.21            40.97            26.71          4.01  (6.65x)
//   r18  matmul             71.71            65.77            43.96          5.70  (7.71x)
//   r18  pchase            831.26           743.03           485.51         69.87  (6.95x)
//   boom dhrystone         381.32            76.29           111.04         50.44  (2.20x)
//   boom matmul            431.67           109.70           161.17         59.85  (2.69x)
//   boom pchase           5529.25          1650.41          2534.32        746.69  (3.39x)
//
// Substitutions (see DESIGN.md): CommVer* is our levelized event-driven
// engine, Verilator* the optimized full-cycle engine, Baseline the same
// full-cycle engine on the unoptimized IR, ESSENT the CCSS activity engine.
// Absolute times are not comparable (interpreted substrate, scaled-down
// workloads); the reproduced shape is ESSENT's speedup over Baseline /
// Verilator*. Note on CommVer*: a levelized-compiled event-driven engine is
// far leaner than a commercial interpreted simulator, so unlike the paper
// it is not the slowest column here — EXPERIMENTS.md discusses this.
#include "bench_util.h"

using namespace essent;

int main(int argc, char** argv) {
  bench::JsonReporter report("table3_speedup", argc, argv);
  std::printf("Table III — execution times (seconds) and ESSENT speedups\n");
  std::printf("%-6s %-10s %9s %10s %9s %8s %9s %9s %7s\n", "design", "workload", "CommVer*",
              "Verilator*", "Baseline", "ESSENT", "vs-Base", "vs-Veri", "effAct");
  bench::printRule(92);
  for (const auto& cfg : bench::evalDesigns()) {
    auto d = bench::buildDesign(cfg);
    for (const auto& prog : bench::evalWorkloads()) {
      sim::EventDrivenEngine commver(sim::CompiledDesign::compile(d.optimized));
      sim::FullCycleEngine verilator(sim::CompiledDesign::compile(d.optimized));
      sim::FullCycleEngine baseline(sim::CompiledDesign::compile(d.baseline));
      auto essentEng = bench::makeCcssEngine(d.optimized, core::ScheduleOptions{},
                                             report.env().threads);

      auto rCv = bench::timeEngine(commver, prog);
      auto rVl = bench::timeEngine(verilator, prog);
      auto rBl = bench::timeEngine(baseline, prog);
      auto rEs = bench::timeEngine(*essentEng, prog);

      bool agree = rCv.result == rEs.result && rVl.result == rEs.result &&
                   rBl.result == rEs.result && rCv.cycles == rEs.cycles;
      std::printf("%-6s %-10s %9.3f %10.3f %9.3f %8.3f %8.2fx %8.2fx %7.3f%s\n",
                  d.name.c_str(), prog.name.c_str(), rCv.seconds, rVl.seconds, rBl.seconds,
                  rEs.seconds, rBl.seconds / rEs.seconds, rVl.seconds / rEs.seconds,
                  essentEng->effectiveActivity(), agree ? "" : "  [ENGINE MISMATCH!]");
      std::fflush(stdout);
      struct { const char* sim; const bench::EngineRun* run; } cols[] = {
          {"commver", &rCv}, {"verilator", &rVl}, {"baseline", &rBl}, {"essent", &rEs}};
      for (const auto& col : cols) {
        obs::Json row = bench::JsonReporter::engineRow(d.name, prog.name, col.sim,
                                                       col.run->seconds, col.run->stats);
        row["cycles"] = col.run->cycles;
        if (col.run == &rEs) {
          row["speedup_vs_baseline"] = rBl.seconds / rEs.seconds;
          row["speedup_vs_verilator"] = rVl.seconds / rEs.seconds;
          row["effective_activity"] = essentEng->effectiveActivity();
        }
        report.addRow(std::move(row));
      }
    }
  }
  std::printf("\npaper speedups over Baseline: r16 3.3-3.8x, r18 6.7-7.7x (branch hints), "
              "boom 2.2-3.4x\n");
  return 0;
}
