// Elaboration-scale exhibit (extension; not a paper table): per-phase
// wall-clock of the compile pipeline — FIRRTL parse/lower, IR build,
// netlist construction, MFFC decomposition, the three merge phases, and
// schedule build — across TinySoC --scale factors, from the ~130k-node
// scaled1 preset up to the >1M-node scaled8 preset.
//
// The point of the artifact is the SHAPE, not the absolute seconds: every
// phase must scale near-linearly in netlist nodes (the merge phases were
// quadratic before the incremental-topo-order partitioner rework), and
// peak RSS must stay within the pooled-arena budget. The committed
// baseline in bench/artifacts/ is gated by scripts/check_elaboration_scale.py,
// which checks both per-phase regressions on common rows and the
// intra-artifact scaling exponent between the smallest and largest scale.
//
// Scales run ascending, and peak_rss_bytes is the process high-water mark
// (getrusage), so a row's RSS is an upper bound dominated by the largest
// scale elaborated so far; the final (largest) row is the meaningful
// ceiling. Honors ESSENT_BENCH_REPS / --reps (per-scale best-of-reps) and
// --max-scale N (skip factors above N — CI uses this to keep the gate
// cheap). Emits BENCH_elaboration_scale.json.
#include <chrono>
#include <cstring>

#include "bench_util.h"
#include "core/schedule.h"
#include "designs/tinysoc.h"
#include "obs/phase_timer.h"
#include "sim/compile.h"
#include "support/meminfo.h"

using namespace essent;

namespace {

double seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Elaborated {
  double total = 0;
  obs::Json phases;      // phase name -> {seconds, calls}
  size_t irOps = 0;
  int64_t nodes = 0;
  int64_t edges = 0;
  size_t partitions = 0;
};

// One full text->schedule elaboration with fresh phase timers.
Elaborated elaborateOnce(const std::string& text) {
  obs::resetPhaseTimings();
  Elaborated r;
  auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const sim::CompiledDesign> design = sim::compileDesign(text);
  core::Netlist net = core::Netlist::build(design->ir);
  core::CondPartSchedule sched = core::buildSchedule(net);
  r.total = seconds(t0);
  r.irOps = design->ir.ops.size();
  r.nodes = static_cast<int64_t>(net.nodes.size());
  r.edges = net.g.numEdges();
  r.partitions = sched.parts.size();
  obs::Json timings = obs::phaseTimingsJson();
  if (const obs::Json* t = timings.find("timers")) r.phases = *t;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report("elaboration_scale", argc, argv);
  uint32_t maxScale = 8;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--max-scale=", 12) == 0)
      maxScale = static_cast<uint32_t>(std::strtoul(argv[i] + 12, nullptr, 0));
    else if (std::strcmp(argv[i], "--max-scale") == 0 && i + 1 < argc)
      maxScale = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 0));
  }

  std::printf("Elaboration scale — compile-pipeline phases vs TinySoC --scale\n");
  std::printf("reps=%u  max-scale=%u\n", report.env().reps, maxScale);
  std::printf("%-10s %9s %9s %9s %7s %9s %10s\n", "design", "ir_ops", "nodes", "edges",
              "parts", "total_s", "rss_mb");
  bench::printRule(70);

  for (uint32_t scale : {1u, 4u, 8u}) {
    if (scale > maxScale) continue;
    designs::SoCConfig cfg = designs::socScaled(scale);
    std::string text = designs::tinySoCFirrtl(cfg);

    // Best-of-reps is applied PER PHASE, not per elaboration: the small
    // scales have sub-10ms phases where one cold-cache rep would otherwise
    // dominate the committed ratio between scales.
    Elaborated best;
    for (uint32_t rep = 0; rep < report.env().reps; rep++) {
      Elaborated r = elaborateOnce(text);
      if (rep == 0) {
        best = std::move(r);
        continue;
      }
      best.total = std::min(best.total, r.total);
      for (const auto& [phase, timer] : best.phases.members()) {
        (void)timer;
        const obs::Json* fresh = r.phases.find(phase);
        if (!fresh) continue;
        const obs::Json* freshSecs = fresh->find("seconds");
        const obs::Json* bestSecs = best.phases.at(phase).find("seconds");
        if (freshSecs && bestSecs && freshSecs->asDouble() < bestSecs->asDouble())
          best.phases[phase]["seconds"] = freshSecs->asDouble();
      }
    }
    const uint64_t rss = support::peakRssBytes();

    std::printf("%-10s %9zu %9lld %9lld %7zu %9.3f %10.1f\n", cfg.name.c_str(), best.irOps,
                static_cast<long long>(best.nodes), static_cast<long long>(best.edges),
                best.partitions, best.total, static_cast<double>(rss) / (1024.0 * 1024.0));

    obs::Json row = obs::Json::object();
    row["design"] = cfg.name;
    row["scale"] = scale;
    row["ir_ops"] = best.irOps;
    row["nodes"] = best.nodes;
    row["edges"] = best.edges;
    row["partitions"] = best.partitions;
    row["seconds"] = best.total;
    row["phases"] = std::move(best.phases);
    row["peak_rss_bytes"] = rss;
    report.addRow(std::move(row));
  }
  return 0;
}
