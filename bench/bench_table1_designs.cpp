// Reproduces Table I: the evaluation designs and their FIRRTL graph sizes.
//
// Paper reference (Rocket Chip 2016/2018 + BOOM):
//   design   FIRRTL nodes   FIRRTL edges
//   r16          33,426         51,356
//   r18          67,803        123,151
//   boom        128,712        291,010
//
// Our synthetic TinySoC presets are sized to land near the paper's node
// counts (DESIGN.md §2 documents the substitution).
#include "bench_util.h"
#include "core/netlist.h"
#include "core/partitioner.h"

using namespace essent;

int main(int argc, char** argv) {
  bench::JsonReporter report("table1_designs", argc, argv);
  std::printf("Table I — evaluation designs (ESSENT reproduction)\n");
  std::printf("%-8s %12s %12s %12s %10s %12s %12s\n", "design", "firrtl-KB", "ir-ops",
              "graph-nodes", "edges", "registers", "memories");
  bench::printRule(84);
  for (const auto& cfg : bench::evalDesigns()) {
    std::string text = designs::tinySoCFirrtl(cfg);
    sim::SimIR ir = sim::buildFromFirrtl(text);
    core::Netlist nl = core::Netlist::build(ir);
    std::printf("%-8s %12zu %12zu %12d %10lld %12zu %12zu\n", cfg.name.c_str(),
                text.size() / 1024, ir.ops.size(), nl.g.numNodes(),
                static_cast<long long>(nl.g.numEdges()), ir.regs.size(), ir.mems.size());
    obs::Json row = core::designSummaryJson(ir);
    row["firrtl_bytes"] = text.size();
    row["graph_nodes"] = static_cast<uint64_t>(nl.g.numNodes());
    row["graph_edges"] = static_cast<uint64_t>(nl.g.numEdges());
    report.addRow(std::move(row));
  }
  std::printf("\npaper reference: r16 33,426 nodes / 51,356 edges; "
              "r18 67,803 / 123,151; boom 128,712 / 291,010\n");
  return 0;
}
