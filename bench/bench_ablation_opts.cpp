// Ablation bench for the design choices DESIGN.md calls out (the paper's
// §III-B optimizations and §IV partitioner phases):
//
//   A. state-element update elision on/off (§III-B1) — off forces every
//      register/memory into the global phase-2 update;
//   B. classic compiler optimizations on/off for the CCSS engine;
//   C. partitioner merge phases: pure MFFC vs +single-parent vs +sibling
//      phases (Figure 4), all at C_p = 8;
//   D. activity sweep on a gated-bank design: where event-driven and
//      full-cycle cross over as the input toggle rate rises (the paper's
//      §II argument for why raw event-driven does not win at high
//      activity).
#include "bench_util.h"
#include "designs/blocks.h"
#include "sim/harness.h"
#include "support/rng.h"

using namespace essent;

namespace {

double runCcss(const sim::SimIR& ir, const core::CondPartSchedule& sched,
               const workloads::Program& prog, unsigned threads, double* effAct = nullptr) {
  auto eng = bench::makeCcssEngine(ir, sched, threads);
  auto r = bench::timeEngine(*eng, prog);
  if (effAct) *effAct = eng->effectiveActivity();
  return r.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report("ablation_opts", argc, argv);
  auto d = bench::buildDesign(designs::socR16());
  auto prog = workloads::dhrystoneProgram(128);
  core::Netlist nlOpt = core::Netlist::build(d.optimized);
  core::Netlist nlRaw = core::Netlist::build(d.baseline);

  std::printf("Ablations (r16, dhrystone)\n\n");

  // --- A: state elision ---
  {
    auto on = core::buildSchedule(nlOpt, core::ScheduleOptions{});
    core::ScheduleOptions offOpts;
    offOpts.stateElision = false;
    auto off = core::buildSchedule(nlOpt, offOpts);
    double tOn = runCcss(d.optimized, on, prog, report.env().threads);
    double tOff = runCcss(d.optimized, off, prog, report.env().threads);
    std::printf("A. state-element update elision (elided regs %zu -> %zu):\n",
                on.elidedRegs, off.elidedRegs);
    std::printf("   with elision %.3fs, without %.3fs  (%.2fx from elision)\n\n", tOn, tOff,
                tOff / tOn);
    obs::Json row = obs::Json::object();
    row["ablation"] = "state_elision";
    row["seconds_on"] = tOn;
    row["seconds_off"] = tOff;
    report.addRow(std::move(row));
  }

  // --- B: compiler optimizations under CCSS ---
  {
    auto schedOpt = core::buildSchedule(nlOpt, core::ScheduleOptions{});
    auto schedRaw = core::buildSchedule(nlRaw, core::ScheduleOptions{});
    double tOpt = runCcss(d.optimized, schedOpt, prog, report.env().threads);
    double tRaw = runCcss(d.baseline, schedRaw, prog, report.env().threads);
    std::printf("B. classic compiler optimizations (constprop/CSE/DCE) under CCSS:\n");
    std::printf("   optimized IR %.3fs (%zu ops), raw IR %.3fs (%zu ops)  (%.2fx)\n\n", tOpt,
                d.optimized.ops.size(), tRaw, d.baseline.ops.size(), tRaw / tOpt);
    obs::Json row = obs::Json::object();
    row["ablation"] = "compiler_opts";
    row["seconds_on"] = tOpt;
    row["seconds_off"] = tRaw;
    report.addRow(std::move(row));
  }

  // --- C: partitioner phases ---
  {
    struct PhaseCase {
      const char* name;
      bool a, b, c;
    };
    const PhaseCase cases[] = {
        {"MFFC only", false, false, false},
        {"+ single-parent (A)", true, false, false},
        {"+ small-sibling (B)", true, true, false},
        {"+ any-sibling (C) [full]", true, true, true},
    };
    std::printf("C. partitioner merge phases (C_p = 8):\n");
    std::printf("   %-26s %10s %10s %10s %9s\n", "configuration", "partitions", "cut-edges",
                "time(s)", "effAct");
    for (const auto& pc : cases) {
      core::PartitionOptions po;
      po.phaseSingleParent = pc.a;
      po.phaseSmallSiblings = pc.b;
      po.phaseAnySibling = pc.c;
      auto parts = core::partitionNetlist(nlOpt, po);
      auto sched = core::buildScheduleFrom(nlOpt, parts, true);
      double effAct = 0;
      double t = runCcss(d.optimized, sched, prog, report.env().threads, &effAct);
      std::printf("   %-26s %10zu %10lld %10.3f %9.4f\n", pc.name, parts.numPartitions(),
                  static_cast<long long>(parts.stats.cutEdges), t, effAct);
      std::fflush(stdout);
      obs::Json row = obs::Json::object();
      row["ablation"] = "partitioner_phases";
      row["configuration"] = pc.name;
      row["seconds"] = t;
      row["effective_activity"] = effAct;
      row["partition_stats"] = core::partitionStatsJson(parts.stats);
      report.addRow(std::move(row));
    }
    std::printf("\n");
  }

  // --- D: activity sweep crossover ---
  {
    std::printf("D. activity sweep (gated banks, toggle probability p per cycle):\n");
    std::printf("   %-8s %12s %12s %12s\n", "p", "full-cyc(s)", "event-drv(s)", "ccss(s)");
    sim::SimIR banks = sim::buildFromFirrtl(designs::gatedBanksFirrtl(256, 32));
    core::Netlist nlB = core::Netlist::build(banks);
    auto schedB = core::buildSchedule(nlB, core::ScheduleOptions{});
    for (double p : {0.001, 0.01, 0.1, 0.5, 1.0}) {
      auto stim = [p](sim::Engine& e, uint64_t cycle) {
        Rng draw(static_cast<uint64_t>(p * 1e6) * 2654435761ULL + cycle);
        e.poke("reset", cycle < 2);
        if (cycle < 2 || draw.nextChance(p)) {
          e.poke("bankSel", draw.nextBelow(256));
          e.poke("wdata", draw.next());
        }
      };
      sim::FullCycleEngine fc(sim::CompiledDesign::compile(banks));
      sim::EventDrivenEngine ev(sim::CompiledDesign::compile(banks));
      auto act = bench::makeCcssEngine(banks, schedB, report.env().threads);
      double tFc = sim::runEngine(fc, 20000, stim).seconds;
      double tEv = sim::runEngine(ev, 20000, stim).seconds;
      double tAc = sim::runEngine(*act, 20000, stim).seconds;
      std::printf("   %-8.3f %12.3f %12.3f %12.3f\n", p, tFc, tEv, tAc);
      std::fflush(stdout);
    }
  }
  return 0;
}
