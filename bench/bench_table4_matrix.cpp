// Reproduces Table IV: the qualitative comparison of simulation approaches.
// The first three rows are the approaches implemented in this repository
// (each attribute is reported from the live engine/schedule objects rather
// than hard-coded, where it is machine-checkable); the remaining rows quote
// the paper's classification of prior work.
#include "bench_util.h"
#include "core/netlist.h"

using namespace essent;

int main() {
  std::printf("Table IV — comparison of simulation approaches\n\n");
  std::printf("%-34s %-11s %-9s %-7s %-8s %-20s %-9s %-9s\n", "approach", "conditional",
              "coarsened", "static", "singular", "coarsening method", "coarse.", "trigger.");
  std::printf("%-34s %-11s %-9s %-7s %-8s %-20s %-9s %-9s\n", "", "execution", "schedule",
              "schedule", "exec.", "", "automated", "automated");
  bench::printRule(116);

  // Machine-checked facts about our own engines on a live design.
  auto d = bench::buildDesign(designs::socTiny());
  core::Netlist nl = core::Netlist::build(d.optimized);
  core::CondPartSchedule sched = core::buildSchedule(nl, core::ScheduleOptions{});
  bool coarsened = sched.numPartitions() < nl.nodes.size();
  bool singular = true;  // asserted by the schedule tests (each op exactly once)
  std::printf("%-34s %-11s %-9s %-7s %-8s %-20s %-9s %-9s\n",
              "full-cycle (this repo / Verilator)", "", "", "yes", "yes", "N/A", "N/A", "N/A");
  std::printf("%-34s %-11s %-9s %-7s %-8s %-20s %-9s %-9s\n",
              "event-driven (this repo / Icarus)", "yes", "", "", "yes", "N/A", "N/A", "N/A");
  std::printf("%-34s %-11s %-9s %-7s %-8s %-20s %-9s %-9s\n", "ESSENT (this repo)", "yes",
              coarsened ? "yes" : "NO?!", "yes", singular ? "yes" : "NO?!",
              "acyclic partitioner", "yes", "yes");
  bench::printRule(116);
  std::printf("%-34s %-11s %-9s %-7s %-8s %-20s %-9s %-9s\n", "Perez [19]", "yes", "yes",
              "yes", "", "user (via modules)", "", "yes");
  std::printf("%-34s %-11s %-9s %-7s %-8s %-20s %-9s %-9s\n", "Cascade [11]", "yes", "yes",
              "yes", "yes", "user (via modules)", "", "");
  std::printf("%-34s %-11s %-9s %-7s %-8s %-20s %-9s %-9s\n", "Chatterjee [8]", "yes", "yes",
              "", "", "clustering", "yes", "yes");

  std::printf("\nlive check on %s: %zu netlist nodes coarsened into %zu partitions; "
              "%zu/%zu registers conditionally updated in place\n",
              d.name.c_str(), nl.nodes.size(), sched.numPartitions(), sched.elidedRegs,
              d.optimized.regs.size());
  return 0;
}
