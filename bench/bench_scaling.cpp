// Extension exhibit: how the tool flow scales with design size — frontend
// and partitioner wall time, partition counts, and per-cycle simulation
// cost of full-cycle vs CCSS in the idle and busy regimes — over the
// regular systolic-array family. (The paper reports only the three fixed
// processor designs; this sweep makes the partitioner's near-linear
// behaviour and CCSS's size-independent idle cost visible.)
#include <chrono>

#include "bench_util.h"
#include "core/netlist.h"
#include "core/partitioner.h"
#include "designs/systolic.h"
#include "support/strutil.h"

using namespace essent;

namespace {

double seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::BenchEnv::fromEnv(argc, argv);
  std::printf("Scaling sweep — systolic arrays (extension; not a paper exhibit; threads=%u)\n",
              env.threads);
  std::printf("%6s %8s %8s %10s %10s %12s %12s %12s\n", "grid", "nodes", "parts", "build(s)",
              "part(s)", "full us/cyc", "ccss-busy", "ccss-idle");
  bench::printRule(88);

  for (uint32_t n : {4u, 8u, 16u, 24u}) {
    designs::SystolicConfig cfg;
    cfg.rows = n;
    cfg.cols = n;

    auto t0 = std::chrono::steady_clock::now();
    sim::SimIR ir = sim::buildFromFirrtl(designs::systolicFirrtl(cfg));
    double buildS = seconds(t0);

    t0 = std::chrono::steady_clock::now();
    core::Netlist nl = core::Netlist::build(ir);
    core::Partitioning p = core::partitionNetlist(nl, core::PartitionOptions{});
    double partS = seconds(t0);

    auto perCycle = [&](sim::Engine& e, bool busy, int cycles) {
      e.poke("reset", 0);
      e.poke("en", busy);
      e.poke("a0", 1);
      e.tick();  // settle
      auto s0 = std::chrono::steady_clock::now();
      for (int c = 0; c < cycles; c++) {
        if (busy) e.poke("a0", static_cast<uint64_t>(c + 2));
        e.tick();
      }
      return seconds(s0) / cycles * 1e6;
    };

    sim::FullCycleEngine fc(sim::CompiledDesign::compile(ir));
    auto busyEng = bench::makeCcssEngine(ir, core::ScheduleOptions{}, env.threads);
    auto idleEng = bench::makeCcssEngine(ir, core::ScheduleOptions{}, env.threads);
    double fullUs = perCycle(fc, true, 3000);
    double busyUs = perCycle(*busyEng, true, 3000);
    double idleUs = perCycle(*idleEng, false, 3000);

    std::printf("%3ux%-3u %8d %8zu %10.3f %10.3f %12.2f %12.2f %12.2f\n", n, n,
                nl.g.numNodes(), p.numPartitions(), buildS, partS, fullUs, busyUs, idleUs);
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: full-cycle cost grows with the grid; CCSS busy cost grows\n"
              "with the *active* region (one column wavefront); CCSS idle cost grows only\n"
              "with the partition count (static overhead floor).\n");
  return 0;
}
