// Google-benchmark microkernels for the substrate itself: op-evaluation
// throughput per engine, partitioner runtime scaling, and FIRRTL frontend
// throughput. These are not paper exhibits; they guard the constants the
// table/figure benches depend on.
#include <benchmark/benchmark.h>

#include "core/activity_engine.h"
#include "core/netlist.h"
#include "core/partitioner.h"
#include "designs/blocks.h"
#include "designs/tinysoc.h"
#include "sim/compile.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"

using namespace essent;

namespace {

const sim::SimIR& aluIr() {
  static sim::SimIR ir = sim::buildFromFirrtl(designs::aluArrayFirrtl(64, 32));
  return ir;
}

void BM_FullCycleTick(benchmark::State& state) {
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(aluIr()));
  eng.poke("reset", 0);
  uint64_t v = 0;
  for (auto _ : state) {
    eng.poke("opa", v++);
    eng.tick();
  }
  state.SetItemsProcessed(static_cast<int64_t>(eng.stats().opsEvaluated));
}
BENCHMARK(BM_FullCycleTick);

void BM_EventDrivenTick(benchmark::State& state) {
  sim::EventDrivenEngine eng(sim::CompiledDesign::compile(aluIr()));
  eng.poke("reset", 0);
  uint64_t v = 0;
  for (auto _ : state) {
    eng.poke("opa", v++);
    eng.tick();
  }
  state.SetItemsProcessed(static_cast<int64_t>(eng.stats().opsEvaluated));
}
BENCHMARK(BM_EventDrivenTick);

void BM_CcssTick(benchmark::State& state) {
  core::ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(aluIr()), core::ScheduleOptions{}));
  eng.poke("reset", 0);
  uint64_t v = 0;
  for (auto _ : state) {
    eng.poke("opa", v++);
    eng.tick();
  }
  state.SetItemsProcessed(static_cast<int64_t>(eng.stats().opsEvaluated));
}
BENCHMARK(BM_CcssTick);

void BM_CcssTickIdle(benchmark::State& state) {
  // Inputs never change: measures the pure static overhead floor.
  core::ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(aluIr()), core::ScheduleOptions{}));
  eng.poke("reset", 0);
  eng.tick();
  for (auto _ : state) eng.tick();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CcssTickIdle);

void BM_Partitioner(benchmark::State& state) {
  designs::SoCConfig cfg = designs::socTiny();
  cfg.numAccels = static_cast<uint32_t>(state.range(0));
  cfg.accelLanes = 32;
  sim::SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(cfg));
  core::Netlist nl = core::Netlist::build(ir);
  for (auto _ : state) {
    auto p = core::partitionNetlist(nl, core::PartitionOptions{});
    benchmark::DoNotOptimize(p.numPartitions());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * nl.g.numNodes());
}
BENCHMARK(BM_Partitioner)->Arg(4)->Arg(16)->Arg(64);

void BM_FirrtlFrontend(benchmark::State& state) {
  std::string text = designs::tinySoCFirrtl(designs::socTiny());
  for (auto _ : state) {
    sim::SimIR ir = sim::buildFromFirrtl(text);
    benchmark::DoNotOptimize(ir.ops.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_FirrtlFrontend);

}  // namespace

BENCHMARK_MAIN();
