// Reproduces Figure 5: the distribution of per-cycle activity factors for
// every design x workload pair.
//
// Paper finding: across all configurations, typically only a few percent of
// signals change per cycle, and the workload's IPC has a visible relative
// effect (pchase lowest) but modest absolute effect.
//
// Method: the full-cycle engine in activity-tracking mode records the exact
// number of changed (named) signals per cycle; we print the distribution as
// mean / percentiles plus a coarse log-bucket histogram, which is the
// text-mode equivalent of the paper's per-pair histograms.
#include <algorithm>

#include "bench_util.h"

using namespace essent;

namespace {

struct Distribution {
  double mean = 0, p10 = 0, p50 = 0, p90 = 0, max = 0;
};

Distribution printDistribution(const std::vector<uint32_t>& perCycle, size_t totalSignals) {
  std::vector<double> f(perCycle.size());
  for (size_t i = 0; i < perCycle.size(); i++)
    f[i] = static_cast<double>(perCycle[i]) / static_cast<double>(totalSignals);
  std::sort(f.begin(), f.end());
  auto pct = [&](double p) { return f[static_cast<size_t>(p * (f.size() - 1))]; };
  double mean = 0;
  for (double v : f) mean += v;
  mean /= static_cast<double>(f.size());
  std::printf("mean %6.3f%%  p10 %6.3f%%  p50 %6.3f%%  p90 %6.3f%%  max %6.3f%%  | ",
              mean * 100, pct(0.10) * 100, pct(0.50) * 100, pct(0.90) * 100, f.back() * 100);
  // Log-bucket histogram: <0.5%, 0.5-1, 1-2, 2-4, 4-8, 8-16, >16% of signals.
  const double edges[] = {0.005, 0.01, 0.02, 0.04, 0.08, 0.16};
  size_t buckets[7] = {0};
  for (double v : f) {
    size_t b = 0;
    while (b < 6 && v >= edges[b]) b++;
    buckets[b]++;
  }
  const char* labels[] = {"<.5", "<1", "<2", "<4", "<8", "<16", ">16"};
  for (int b = 0; b < 7; b++)
    std::printf("%s%%:%4.0f%% ", labels[b],
                100.0 * static_cast<double>(buckets[b]) / static_cast<double>(f.size()));
  std::printf("\n");
  return Distribution{mean, pct(0.10), pct(0.50), pct(0.90), f.back()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report("fig5_activity", argc, argv);
  std::printf("Figure 5 — per-cycle activity factor distributions\n");
  std::printf("(fraction of named signals changing per cycle; histogram buckets show\n"
              " what share of cycles fall in each activity range)\n\n");
  for (const auto& cfg : bench::evalDesigns()) {
    auto d = bench::buildDesign(cfg);
    for (const auto& prog : bench::evalWorkloads()) {
      sim::FullCycleEngine eng(sim::CompiledDesign::compile(d.optimized));
      eng.setTrackActivity(true);
      workloads::loadProgram(eng, prog);
      // Bound the boom runs; the distribution converges quickly.
      auto run = workloads::runWorkload(eng, cfg.name == "boom" ? 6000 : 12000);
      std::printf("%-5s %-10s ", d.name.c_str(), prog.name.c_str());
      Distribution dist =
          printDistribution(run.stats.changedPerCycle, eng.designSignalCount());
      std::fflush(stdout);
      obs::Json row = obs::Json::object();
      row["design"] = d.name;
      row["workload"] = prog.name;
      row["cycles"] = run.cycles;
      row["signals"] = eng.designSignalCount();
      row["activity_mean"] = dist.mean;
      row["activity_p10"] = dist.p10;
      row["activity_p50"] = dist.p50;
      row["activity_p90"] = dist.p90;
      row["activity_max"] = dist.max;
      report.addRow(std::move(row));
    }
  }
  std::printf("\npaper finding reproduced if: activities are typically a few percent,\n"
              "and pchase sits lower than dhrystone/matmul on every design.\n");
  return 0;
}
