// Farm-throughput exhibit (extension; not a paper table): aggregate
// simulation throughput of core::SimFarm — N concurrent instances sharing
// ONE compiled schedule — swept over instance count × engine kind on the
// low-activity gated-banks design.
//
// Two effects are measured per (kind, N) cell:
//   * setup amortization — wall time to construct N engines from one
//     shared CompiledDesign (structure built once, instances own only
//     state) vs N private compiles through the deprecated per-instance
//     path. This is the structure/state split's win and is visible even
//     on one core.
//   * dispatch scaling — the farm's whole-batch wall clock with the
//     configured worker count vs the same jobs run on a single worker
//     (sequential baseline; also schedule-sharing, so the delta isolates
//     the dispatch parallelism).
//
// Interleaved best-of-reps (sequential vs farm alternating) as everywhere
// else; honors ESSENT_BENCH_REPS / ESSENT_THREADS and emits
// BENCH_farm_throughput.json.
//
// NOTE: farm speedup > 1 requires real cores; on a 1-core container the
// farm rows measure pure claim/dispatch overhead and should sit at ~1.0x.
// The setup-amortization ratio does not depend on core count.
//
// Third effect (this is the headline): SIMD instance parallelism — the
// same 64-job batch swept over worker count × lane count (1/8/16/64,
// EngineKind::Lane; lanes=1 is the scalar CCSS farm baseline). One
// core::LaneEngine decodes each ExecOp once for a whole lane group, so
// aggregate cycles/sec scales with lane count even on ONE core — unlike
// worker parallelism. The batch uses a SHARED control schedule (every
// instance selects the same bank on the same cycle) with per-instance
// data, the regression/sweep shape lanes are built for; divergent control
// would drive the union activity mask up and shrink the win (see
// docs/SIMD.md). A forced-portable row documents the no-intrinsics floor.
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "core/lane_engine.h"
#include "core/lane_simd.h"
#include "core/sim_farm.h"
#include "designs/blocks.h"

using namespace essent;

namespace {

double seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// One farm job: ~3% activity (one of `banks` banks touched every other
// cycle), instance-specific phase so instances are not lock-step identical.
core::FarmJob makeJob(size_t i, uint64_t cycles, uint32_t banks) {
  core::FarmJob job;
  job.name = "inst" + std::to_string(i);
  job.maxCycles = cycles;
  job.init = [](sim::Engine& e) {
    e.poke("reset", 0);
    e.poke("wdata", 7);
  };
  job.stimulus = [i, banks](sim::Engine& e, uint64_t cyc) {
    e.poke("bankSel", (cyc & 1) ? (cyc / 2 + i) % banks : 999);
  };
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report("farm_throughput", argc, argv);
  constexpr uint32_t kBanks = 32, kWidth = 16;
  constexpr uint64_t kCycles = 5000;
  const unsigned farmWorkers = std::max(1u, report.env().threads);

  std::printf("Farm throughput — shared-schedule batch simulation (extension exhibit)\n");
  std::printf("design gated-banks %ux%u, %llu cycles/instance, farm workers=%u, reps=%u\n",
              kBanks, kWidth, static_cast<unsigned long long>(kCycles), farmWorkers,
              report.env().reps);
  std::printf("hardware threads=%u\n", std::thread::hardware_concurrency());
  std::printf("%-6s %4s %12s %12s %12s %12s %10s %12s\n", "engine", "N", "setup-shr(s)",
              "setup-prv(s)", "seq(s)", "farm(s)", "speedup", "agg Mc/s");
  bench::printRule(90);

  sim::SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(kBanks, kWidth));
  auto design = sim::CompiledDesign::compile(ir);

  for (sim::EngineKind kind :
       {sim::EngineKind::FullCycle, sim::EngineKind::EventDriven, sim::EngineKind::Ccss}) {
    for (size_t n : {1u, 2u, 4u, 8u}) {
      std::vector<core::FarmJob> jobs;
      for (size_t i = 0; i < n; i++) jobs.push_back(makeJob(i, kCycles, kBanks));

      // Setup amortization: shared structure (kind-specific cache warm
      // after the first construction) vs a private compile per instance.
      auto t0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < n; i++) sim::makeEngine(kind, design);
      double setupShared = seconds(t0);
      t0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < n; i++) sim::makeEngine(kind, ir);  // private design each
      double setupPrivate = seconds(t0);

      core::FarmOptions seqOpts;
      seqOpts.kind = kind;
      seqOpts.workers = 1;
      core::FarmOptions farmOpts = seqOpts;
      farmOpts.workers = farmWorkers;
      core::SimFarm seqFarm(design, seqOpts);
      core::SimFarm parFarm(design, farmOpts);

      double aggregate = 0;
      auto timed = bench::interleavedBestSeconds(
          {[&] { return seqFarm.run(jobs).wallSeconds; },
           [&] {
             core::FarmReport r = parFarm.run(jobs);
             aggregate = r.aggregateCyclesPerSec;
             return r.wallSeconds;
           }},
          report.env().reps);
      double seqS = timed[0], farmS = timed[1];
      double speedup = farmS > 0 ? seqS / farmS : 0;

      std::printf("%-6s %4zu %12.5f %12.5f %12.4f %12.4f %9.2fx %12.2f\n",
                  sim::engineKindName(kind), n, setupShared, setupPrivate, seqS, farmS,
                  speedup, aggregate / 1e6);
      std::fflush(stdout);

      obs::Json row = obs::Json::object();
      row["engine"] = sim::engineKindName(kind);
      row["instances"] = n;
      row["farm_workers"] = farmWorkers;
      row["setup_shared_seconds"] = setupShared;
      row["setup_private_seconds"] = setupPrivate;
      row["sequential_seconds"] = seqS;
      row["farm_seconds"] = farmS;
      row["speedup_vs_sequential"] = speedup;
      row["aggregate_cycles_per_sec"] = aggregate;
      report.addRow(std::move(row));
    }
  }

  // --- SIMD lane sweep: worker count x lane count over one 64-job batch ---
  constexpr size_t kLaneJobs = 64;
  std::vector<core::FarmJob> laneJobs;
  for (size_t i = 0; i < kLaneJobs; i++) {
    core::FarmJob job;
    job.name = "inst" + std::to_string(i);
    job.maxCycles = kCycles;
    // Shared control (same bank selected by every instance on a given
    // cycle), per-instance data — the lane-friendly batch shape.
    job.init = [i](sim::Engine& e) {
      e.poke("reset", 0);
      e.poke("wdata", 1 + i);
    };
    job.stimulus = [](sim::Engine& e, uint64_t cyc) {
      e.poke("bankSel", (cyc & 1) ? (cyc / 2) % kBanks : 999);
    };
    laneJobs.push_back(std::move(job));
  }

  std::printf("\nSIMD lane sweep — %zu jobs, worker count x lane count (lanes=1 = scalar ccss)\n",
              kLaneJobs);
  std::printf("%-8s %7s %5s %10s %12s %10s %12s\n", "backend", "workers", "lanes", "groups",
              "farm(s)", "speedup", "agg Mc/s");
  bench::printRule(70);

  double scalarBaselineS = 0.0;  // workers=1, lanes=1 cell
  auto runLaneCell = [&](unsigned workers, unsigned lanes, bool forcePortable) {
    if (forcePortable) core::laneSimdForceTier(core::LaneSimdTier::Portable);
    core::FarmOptions fo;
    fo.kind = lanes > 1 ? sim::EngineKind::Lane : sim::EngineKind::Ccss;
    fo.engine.lanes = lanes;
    fo.workers = workers;
    core::SimFarm farm(design, fo);
    core::FarmReport r;
    double best = std::numeric_limits<double>::infinity();
    for (unsigned rep = 0; rep < report.env().reps; rep++) {
      core::FarmReport cur = farm.run(laneJobs);
      if (cur.wallSeconds < best) {
        best = cur.wallSeconds;
        r = std::move(cur);
      }
    }
    if (forcePortable) core::laneSimdResetTier();
    const std::string backend =
        lanes > 1 ? r.lane.simdBackend : std::string("scalar");
    if (workers == 1 && lanes == 1) scalarBaselineS = best;
    const double speedup = scalarBaselineS > 0 ? scalarBaselineS / best : 0.0;
    const double agg =
        best > 0 ? static_cast<double>(r.totalCycles) / best : 0.0;

    std::printf("%-8s %7u %5u %10llu %12.4f %9.2fx %12.2f\n", backend.c_str(), workers,
                lanes, static_cast<unsigned long long>(r.lane.groups), best, speedup,
                agg / 1e6);
    std::fflush(stdout);

    obs::Json row = obs::Json::object();
    row["engine"] = lanes > 1 ? "lane" : "ccss";
    row["simd_backend"] = backend;
    row["instances"] = kLaneJobs;
    row["farm_workers"] = workers;
    row["lanes"] = lanes;
    row["lane_groups"] = r.lane.groups;
    row["group_partition_runs"] = r.lane.groupPartitionRuns;
    row["group_partition_skips"] = r.lane.groupPartitionSkips;
    row["masked_lane_skips"] = r.lane.maskedLaneSkips;
    row["farm_seconds"] = best;
    row["speedup_vs_sequential"] = speedup;
    row["aggregate_cycles_per_sec"] = agg;
    report.addRow(std::move(row));
  };

  for (unsigned workers : {1u, 2u})
    for (unsigned lanes : {1u, 8u, 16u, 64u}) runLaneCell(workers, lanes, false);
  // No-intrinsics floor: the portable loops still amortize dispatch.
  runLaneCell(1, 64, true);

  std::printf("\nexpected shape: setup-shr stays flat-ish in N (structure built once) while\n"
              "setup-prv grows linearly; farm speedup tracks min(N, workers, cores);\n"
              "lane speedup tracks lane count (dispatch amortization) independent of cores.\n");
  return 0;
}
