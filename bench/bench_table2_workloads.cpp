// Reproduces Table II: the software workloads and their cycle counts on the
// r16-class design.
//
// Paper reference (cycle counts on r16):
//   dhrystone   489.1 K    Dhrystone microbenchmark
//   matmul      715.8 K    Matrix multiplication benchmark
//   pchase    8,428.1 K    Pointer-chasing synthetic microbenchmark
//
// Our programs use scaled-down iteration counts (the bench completes in
// seconds); the relative ordering and the pchase >> others gap reproduce.
#include "bench_util.h"

using namespace essent;

int main() {
  auto d = bench::buildDesign(designs::socR16());
  std::printf("Table II — software workloads (cycle counts on %s)\n", d.name.c_str());
  std::printf("%-10s %12s %12s %8s  %s\n", "benchmark", "cycles", "instret", "CPI",
              "description");
  bench::printRule(92);
  for (const auto& prog : bench::evalWorkloads()) {
    sim::FullCycleEngine eng(sim::CompiledDesign::compile(d.optimized));
    workloads::loadProgram(eng, prog);
    auto res = workloads::runWorkload(eng, 2'000'000);
    std::printf("%-10s %12llu %12llu %8.2f  %s%s\n", prog.name.c_str(),
                static_cast<unsigned long long>(res.cycles),
                static_cast<unsigned long long>(res.instret),
                static_cast<double>(res.cycles) / static_cast<double>(res.instret),
                prog.description.c_str(), res.halted ? "" : "  [DID NOT HALT]");
  }
  std::printf("\npaper reference (r16): dhrystone 489.1K, matmul 715.8K, pchase 8428.1K "
              "cycles\n(ours are deliberately scaled down; ordering and the pchase gap "
              "hold)\n");
  return 0;
}
