// Parallel-scaling exhibit (extension; not a paper table): wall-clock of
// the statically-placed BSP CCSS engine at 1/2/4/8 worker threads against
// the serial engine, across three activity regimes:
//   * counterbanks — gated register banks, mostly idle (low activity
//     factor; the paper's sweet spot — the serial-cutoff path must keep
//     these cycles barrier-free);
//   * systolic    — a busy 16x16 array (high activity, wide waves: the
//     regime where the super-step placement has real work to distribute);
//   * tinysoc-r16 — the Table I r16 SoC running dhrystone (mixed).
//
// Thread counts are interleaved round-robin per design (A B C D A B C D…)
// so drift hits every candidate equally; each reports its best-of-reps.
// Honors ESSENT_BENCH_REPS / --reps and emits BENCH_parallel_scaling.json.
// Each row records the static placement shape (super-steps vs levelization
// depth, cut-edge fraction, load balance) AND the post-degradation
// effective thread count: engine construction goes through the
// degradation-aware factory, so a 1-core host clamps every multi-thread
// row to serial and the artifact says so instead of faking scaling.
//
// The per-candidate traced rep sizes its ring from the workload (cycles x
// events-per-cycle upper bound) so the attribution summary normally covers
// the whole run; when it still wraps, the row's `parallel.truncated` flag
// is set and the stdout table marks the row — never silently partial.
//
// NOTE: speedup > 1 requires real cores. On a 1-core container every
// multi-thread row degrades to the serial engine (effective_threads 1),
// making the artifact a regression floor rather than a scaling exhibit.
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "core/netlist.h"
#include "core/placement.h"
#include "designs/blocks.h"
#include "designs/systolic.h"
#include "obs/trace.h"

using namespace essent;

namespace {

constexpr unsigned kThreadGrid[] = {1, 2, 4, 8};

double seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Steady-state per-cycle timing of a poke/tick stimulus loop.
double timeStimulus(sim::Engine& e, const std::function<void(sim::Engine&, int)>& drive,
                    int cycles) {
  auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < cycles; c++) {
    drive(e, c);
    e.tick();
  }
  return seconds(t0);
}

// Per-thread ring capacity covering `cycles` fully-pooled cycles: one step
// span + one barrier span per super-step per cycle, plus main-thread
// tick/counter slack. Clamped to [2^16, 2^20] events (48 B each, so the
// ceiling is ~48 MB per recording thread); overflow past the ceiling is
// reported through TraceSummary::truncated rather than hidden.
size_t ringCapacityFor(uint64_t cycles, size_t numSteps) {
  uint64_t need = cycles * (2 * static_cast<uint64_t>(numSteps) + 8) + 1024;
  size_t cap = size_t{1} << 16;
  while (cap < need && cap < (size_t{1} << 20)) cap <<= 1;
  return cap;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report("parallel_scaling", argc, argv);
  std::printf("Parallel scaling — statically-placed BSP CCSS vs serial (extension exhibit)\n");
  std::printf("reps=%u  (ESSENT_BENCH_REPS)  hardware threads=%u\n", report.env().reps,
              std::thread::hardware_concurrency());
  std::printf("%-14s %4s %4s %7s %6s %10s %12s %10s   %s\n", "design", "req", "eff",
              "levels", "steps", "max_wave", "seconds", "speedup", "attribution (traced rep)");
  bench::printRule(100);

  struct Case {
    std::string name;
    sim::SimIR ir;
    std::function<double(core::ActivityEngine&)> run;  // one timed rep
    bool freshEnginePerRep = false;                    // workload designs
    workloads::Program prog;                           // when freshEnginePerRep
    uint64_t cycles = 0;  // per rep; workload cases fill this on first run
  };
  std::vector<Case> cases;

  {
    Case c;
    c.name = "counterbanks";
    c.ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(64, 32));
    c.cycles = 20000;
    c.run = [](core::ActivityEngine& e) {
      e.poke("reset", 0);
      e.poke("wdata", 7);
      // ~3% activity: one of 64 banks touched every other cycle.
      return timeStimulus(
          e, [](sim::Engine& eng, int cyc) { eng.poke("bankSel", (cyc & 1) ? (cyc >> 1) % 64 : 999); },
          20000);
    };
    cases.push_back(std::move(c));
  }
  {
    designs::SystolicConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    Case c;
    c.name = "systolic16";
    c.ir = sim::buildFromFirrtl(designs::systolicFirrtl(cfg));
    c.cycles = 4000;
    c.run = [](core::ActivityEngine& e) {
      e.poke("reset", 0);
      e.poke("en", 1);
      return timeStimulus(
          e, [](sim::Engine& eng, int cyc) { eng.poke("a0", static_cast<uint64_t>(cyc + 1)); },
          4000);
    };
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.name = "tinysoc-r16";
    c.ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socR16()));
    c.freshEnginePerRep = true;
    c.prog = workloads::dhrystoneProgram(128);
    cases.push_back(std::move(c));
  }

  for (Case& c : cases) {
    // One schedule per design, shared by every thread count, so rows differ
    // only in the execution engine.
    core::CondPartSchedule sched =
        core::buildSchedule(core::Netlist::build(c.ir), core::ScheduleOptions{});
    const size_t levels = sched.numLevels();
    const size_t maxWave = sched.maxWaveWidth();

    // Persistent engines for stimulus-loop designs; workload designs get a
    // fresh engine per rep (loadProgram's backdoor contract requires it).
    // The per-candidate probe records what the degradation-aware factory
    // actually built (effective width + warnings) and the static placement
    // for the requested width — compile-time shape, host-independent.
    std::vector<std::unique_ptr<core::ActivityEngine>> engines;
    std::vector<std::function<double()>> candidates;
    std::vector<unsigned> effective;
    std::vector<std::vector<std::string>> degradations;
    std::vector<core::BspPlacement> placements;
    for (unsigned t : kThreadGrid) {
      std::vector<std::string> warn;
      auto eng = bench::makeCcssEngine(c.ir, sched, t, &warn);
      effective.push_back(eng->threadCount());
      degradations.push_back(std::move(warn));
      core::PlacementOptions popts;
      popts.threads = t;
      placements.push_back(core::buildPlacement(sched, popts));
      if (c.freshEnginePerRep) {
        candidates.push_back([&c, &sched, t] {
          auto fresh = bench::makeCcssEngine(c.ir, sched, t);
          bench::EngineRun run = bench::timeEngine(*fresh, c.prog);
          c.cycles = run.cycles;
          return run.seconds;
        });
      } else {
        engines.push_back(std::move(eng));
        core::ActivityEngine* raw = engines.back().get();
        candidates.push_back([&c, raw] { return c.run(*raw); });
      }
    }

    std::vector<double> best = bench::interleavedBestSeconds(candidates, report.env().reps);
    for (size_t i = 0; i < candidates.size(); i++) {
      double speedup = best[0] / best[i];
      const core::BspPlacement& placement = placements[i];

      // One extra, untimed rep per candidate with a trace session recording:
      // per-thread busy/barrier/idle fractions and per-super-step imbalance
      // land in the JSON artifact as the barrier-cost regression record.
      obs::TraceSession session(
          {obs::TraceDetail::Wave, ringCapacityFor(c.cycles, placement.numSteps())});
      session.install();
      session.nameThread("main");
      candidates[i]();
      session.uninstall();
      obs::TraceSummary attribution = session.summary();

      double busy = 0, barrier = 0;
      for (const obs::TraceThreadSummary& t : attribution.threads) {
        busy += t.busyFrac;
        barrier += t.barrierFrac;
      }
      size_t n = attribution.threads.empty() ? 1 : attribution.threads.size();
      std::printf("%-14s %4u %4u %7zu %6zu %10zu %12.4f %9.2fx   busy %4.1f%% barrier %4.1f%%%s\n",
                  c.name.c_str(), kThreadGrid[i], effective[i], levels,
                  placement.numSteps(), maxWave, best[i], speedup,
                  100.0 * busy / static_cast<double>(n),
                  100.0 * barrier / static_cast<double>(n),
                  attribution.truncated ? "  [ring truncated]" : "");
      std::fflush(stdout);
      obs::Json row = obs::Json::object();
      row["design"] = c.name;
      row["threads"] = kThreadGrid[i];
      // What actually ran after hardware/useful-width clamping and any
      // spawn degradation — on a 1-core host this is 1 for every row.
      row["effective_threads"] = effective[i];
      if (!degradations[i].empty()) {
        obs::Json warns = obs::Json::array();
        for (const std::string& w : degradations[i]) warns.push(w);
        row["degradations"] = std::move(warns);
      }
      row["levels"] = levels;
      row["max_wave_width"] = maxWave;
      // Static placement shape for the REQUESTED width (host-independent):
      // super-step count vs levelization depth, cut fraction, load balance.
      row["placement"] = core::placementReportJson(placement);
      row["seconds"] = best[i];
      row["speedup_vs_serial"] = speedup;
      // Full per-thread fractions + per-super-step stats from the traced
      // rep (obs::TraceSummary::toJson schema; see docs/OBSERVABILITY.md).
      // `parallel.truncated` flags a wrapped ring explicitly.
      row["parallel"] = attribution.toJson();
      report.addRow(std::move(row));
    }
  }

  std::printf("\nexpected shape (multi-core host): counterbanks near-flat (low activity —\n"
              "the serial cutoff keeps those cycles barrier-free); systolic improving with\n"
              "threads until cut-edge/barrier cost saturates; tinysoc in between.\n");
  return 0;
}
