// Parallel-scaling exhibit (extension; not a paper table): wall-clock of
// the wave-parallel CCSS engine at 1/2/4/8 worker threads against the
// serial engine, across three activity regimes:
//   * counterbanks — gated register banks, mostly idle (low activity
//     factor; the paper's sweet spot, and the regime where the per-wave
//     fork/join barrier must NOT erase the activity savings);
//   * systolic    — a busy 16x16 array (high activity, wide waves: the
//     regime where parallelism has real work to distribute);
//   * tinysoc-r16 — the Table I r16 SoC running dhrystone (mixed).
//
// Thread counts are interleaved round-robin per design (A B C D A B C D…)
// so drift hits every candidate equally; each reports its best-of-reps.
// Honors ESSENT_BENCH_REPS / ESSENT_THREADS (the latter only widens the
// sweep's upper bound, the {1,2,4,8} grid itself is fixed) and emits
// BENCH_parallel_scaling.json with per-row schedule shape so the artifact
// records how much wave parallelism each design actually exposes.
//
// NOTE: speedup > 1 requires real cores. On a 1-core container every
// multi-thread row measures pure barrier/handoff overhead — still useful
// as a regression floor for the fork/join cost.
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "core/netlist.h"
#include "designs/blocks.h"
#include "designs/systolic.h"
#include "obs/trace.h"

using namespace essent;

namespace {

constexpr unsigned kThreadGrid[] = {1, 2, 4, 8};

double seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Steady-state per-cycle timing of a poke/tick stimulus loop.
double timeStimulus(sim::Engine& e, const std::function<void(sim::Engine&, int)>& drive,
                    int cycles) {
  auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < cycles; c++) {
    drive(e, c);
    e.tick();
  }
  return seconds(t0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report("parallel_scaling", argc, argv);
  std::printf("Parallel scaling — wave-parallel CCSS vs serial (extension exhibit)\n");
  std::printf("reps=%u  (ESSENT_BENCH_REPS)  hardware threads=%u\n", report.env().reps,
              std::thread::hardware_concurrency());
  std::printf("%-14s %8s %8s %10s %12s %10s   %s\n", "design", "threads", "levels",
              "max_wave", "seconds", "speedup", "attribution (traced rep)");
  bench::printRule(92);

  struct Case {
    std::string name;
    sim::SimIR ir;
    std::function<double(core::ActivityEngine&)> run;  // one timed rep
    bool freshEnginePerRep = false;                    // workload designs
    workloads::Program prog;                           // when freshEnginePerRep
  };
  std::vector<Case> cases;

  {
    Case c;
    c.name = "counterbanks";
    c.ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(64, 32));
    c.run = [](core::ActivityEngine& e) {
      e.poke("reset", 0);
      e.poke("wdata", 7);
      // ~3% activity: one of 64 banks touched every other cycle.
      return timeStimulus(
          e, [](sim::Engine& eng, int cyc) { eng.poke("bankSel", (cyc & 1) ? (cyc >> 1) % 64 : 999); },
          20000);
    };
    cases.push_back(std::move(c));
  }
  {
    designs::SystolicConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    Case c;
    c.name = "systolic16";
    c.ir = sim::buildFromFirrtl(designs::systolicFirrtl(cfg));
    c.run = [](core::ActivityEngine& e) {
      e.poke("reset", 0);
      e.poke("en", 1);
      return timeStimulus(
          e, [](sim::Engine& eng, int cyc) { eng.poke("a0", static_cast<uint64_t>(cyc + 1)); },
          4000);
    };
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.name = "tinysoc-r16";
    c.ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socR16()));
    c.freshEnginePerRep = true;
    c.prog = workloads::dhrystoneProgram(128);
    cases.push_back(std::move(c));
  }

  for (Case& c : cases) {
    // One schedule per design, shared by every thread count, so rows differ
    // only in the execution engine.
    core::CondPartSchedule sched =
        core::buildSchedule(core::Netlist::build(c.ir), core::ScheduleOptions{});
    const size_t levels = sched.numLevels();
    const size_t maxWave = sched.maxWaveWidth();

    // Persistent engines for stimulus-loop designs; workload designs get a
    // fresh engine per rep (loadProgram's backdoor contract requires it).
    std::vector<std::unique_ptr<core::ActivityEngine>> engines;
    std::vector<std::function<double()>> candidates;
    for (unsigned t : kThreadGrid) {
      if (c.freshEnginePerRep) {
        candidates.push_back([&c, &sched, t] {
          auto eng = bench::makeCcssEngine(c.ir, sched, t);
          return bench::timeEngine(*eng, c.prog).seconds;
        });
      } else {
        engines.push_back(bench::makeCcssEngine(c.ir, sched, t));
        core::ActivityEngine* eng = engines.back().get();
        candidates.push_back([&c, eng] { return c.run(*eng); });
      }
    }

    std::vector<double> best = bench::interleavedBestSeconds(candidates, report.env().reps);
    for (size_t i = 0; i < candidates.size(); i++) {
      double speedup = best[0] / best[i];

      // One extra, untimed rep per candidate with a trace session recording:
      // the attribution summary (per-thread busy/barrier/idle fractions,
      // per-level wave imbalance) lands in the JSON artifact so the
      // Open-item-2 super-step redesign has a before/after baseline.
      obs::TraceSession session({obs::TraceDetail::Wave, 1 << 16});
      session.install();
      session.nameThread("main");
      candidates[i]();
      session.uninstall();
      obs::TraceSummary attribution = session.summary();

      double busy = 0, barrier = 0;
      for (const obs::TraceThreadSummary& t : attribution.threads) {
        busy += t.busyFrac;
        barrier += t.barrierFrac;
      }
      size_t n = attribution.threads.empty() ? 1 : attribution.threads.size();
      std::printf("%-14s %8u %8zu %10zu %12.4f %9.2fx   busy %4.1f%% barrier %4.1f%%\n",
                  c.name.c_str(), kThreadGrid[i], levels, maxWave, best[i], speedup,
                  100.0 * busy / static_cast<double>(n),
                  100.0 * barrier / static_cast<double>(n));
      std::fflush(stdout);
      obs::Json row = obs::Json::object();
      row["design"] = c.name;
      row["threads"] = kThreadGrid[i];
      row["levels"] = levels;
      row["max_wave_width"] = maxWave;
      row["seconds"] = best[i];
      row["speedup_vs_serial"] = speedup;
      // Full per-thread fractions + per-level wave stats from the traced rep
      // (obs::TraceSummary::toJson schema; see docs/OBSERVABILITY.md).
      row["parallel"] = attribution.toJson();
      report.addRow(std::move(row));
    }
  }

  std::printf("\nexpected shape (multi-core host): counterbanks near-flat (waves too\n"
              "narrow to fork — serial path retained); systolic improving with threads\n"
              "until wave width / barrier cost saturates; tinysoc in between.\n");
  return 0;
}
