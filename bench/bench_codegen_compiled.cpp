// Extension bench: the full ESSENT flow — generate C++, compile it with the
// host toolchain, and run the *compiled* simulator, exactly as the paper's
// tool does (our interpreter benches keep the same schedule but skip the
// compile step). Reported: compile time, simulated kHz, and the
// compiled-CCSS vs compiled-baseline speedup, on a mid-size SoC and the
// dhrystone workload.
//
// This is where the paper's branch-hint optimization (§III-B2) becomes
// meaningful: the generated cold paths carry [[unlikely]]/__builtin_expect
// so the compiler separates them from the hot instruction working set; the
// hints row quantifies the effect.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "bench_util.h"
#include "codegen/emitter.h"
#include "core/netlist.h"
#include "support/strutil.h"
#include "support/tempdir.h"

using namespace essent;

namespace {

struct CompiledRun {
  bool ok = false;
  double compileSeconds = 0;
  double runSeconds = 0;
  uint64_t cycles = 0;
  std::string detail;
};

CompiledRun compileAndTime(const std::string& code, const workloads::Program& prog,
                           uint64_t maxCycles) {
  CompiledRun res;
  // RAII scratch dir: removed on every return path (compile failure, run
  // failure, success) — matching essentc --compile-run and the fuzz oracle.
  std::optional<support::TempDir> dirGuard;
  try {
    dirGuard.emplace("essent_bench_XXXXXX");
  } catch (const std::exception& e) {
    res.detail = e.what();
    return res;
  }
  const std::string& dir = dirGuard->path();
  std::string src = dirGuard->file("sim.cpp");
  {
    std::ofstream f(src);
    f << code;
    f << "#include <chrono>\n";
    f << "static const unsigned short prog_code[] = {";
    for (size_t i = 0; i < prog.code.size(); i++) f << (i ? "," : "") << prog.code[i];
    f << "};\n";
    f << "static const unsigned short prog_data[][2] = {{0,0}";
    for (auto [a, v] : prog.data) f << ",{" << a << "," << v << "}";
    f << "};\n";
    f << "int main() {\n"
         "  essent_gen::Simulator sim;\n"
         "  for (unsigned i = 0; i < sizeof(prog_code)/2; i++) sim.mem_imem[i] = prog_code[i];\n"
         "  for (auto& dv : prog_data) sim.mem_dmem[dv[0]] = dv[1];\n"
         "  sim.reset = 1; sim.eval(); sim.eval(); sim.reset = 0;\n"
         "  auto t0 = std::chrono::steady_clock::now();\n"
         "  unsigned long long cycles = 0;\n";
    f << "  while (!sim.stopped_ && cycles < " << maxCycles << "ull) { sim.eval(); cycles++; }\n";
    f << "  auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);\n"
         "  std::printf(\"cycles=%llu seconds=%.6f result=%llu\\n\", cycles, dt.count(),\n"
         "              (unsigned long long)sim.mem_dmem[21]);\n"
         "  return 0;\n}\n";
  }
  std::string bin = dirGuard->file("sim");
  auto c0 = std::chrono::steady_clock::now();
  std::string cmd = "c++ -std=c++20 -O2 -o " + bin + " " + src + " 2>" + dir + "/cc.log";
  if (std::system(cmd.c_str()) != 0) {
    // Keep the scratch dir so the referenced log survives for inspection.
    res.detail = "compile failed (see " + dirGuard->keep() + "/cc.log)";
    return res;
  }
  res.compileSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - c0).count();
  std::string outFile = dirGuard->file("out.txt");
  if (std::system((bin + " > " + outFile).c_str()) != 0) {
    res.detail = "run failed";
    return res;
  }
  std::ifstream out(outFile);
  // The simulated design printfs (e.g. the halt banner) precede the stats
  // line; find the line starting with "cycles=".
  std::string line, candidate;
  while (std::getline(out, candidate))
    if (candidate.rfind("cycles=", 0) == 0) line = candidate;
  // parse "cycles=N seconds=S result=R"
  unsigned long long cyc = 0, result = 0;
  double sec = 0;
  if (std::sscanf(line.c_str(), "cycles=%llu seconds=%lf result=%llu", &cyc, &sec, &result) == 3) {
    res.ok = true;
    res.cycles = cyc;
    res.runSeconds = sec;
    res.detail = essent::strfmt("result=0x%llx", result);
  } else {
    res.detail = "unparseable output: " + line;
  }
  return res;
}

}  // namespace

int main() {
  designs::SoCConfig cfg = designs::socTiny();
  cfg.name = "midsoc";
  cfg.numAccels = 8;
  cfg.accelLanes = 32;
  cfg.dmemDepth = 1024;
  sim::SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(cfg));
  // Long enough (~330k cycles) that the compiled runs are not timer noise.
  auto prog = workloads::dhrystoneProgram(16384);

  core::Netlist nl = core::Netlist::build(ir);
  core::CondPartSchedule sched = core::buildSchedule(nl, core::ScheduleOptions{});

  std::printf("Compiled-flow bench (%s: %zu IR ops, %zu partitions; dhrystone)\n",
              cfg.name.c_str(), ir.ops.size(), sched.numPartitions());
  std::printf("%-26s %12s %10s %12s\n", "configuration", "compile(s)", "run(s)", "sim kHz");
  bench::printRule(66);

  struct Case {
    const char* name;
    bool ccss;
    bool hints;
    bool muxShadow;
  };
  const Case cases[] = {
      {"compiled baseline", false, true, true},
      {"compiled CCSS", true, true, true},
      {"compiled CCSS, no hints", true, false, true},
      {"compiled CCSS, no mux-way", true, true, false},
  };
  double baselineRun = 0, ccssRun = 0;
  for (const auto& c : cases) {
    codegen::CodegenOptions opts;
    opts.ccss = c.ccss;
    opts.branchHints = c.hints;
    opts.muxShadow = c.muxShadow;
    std::string code = codegen::emitCpp(ir, c.ccss ? &sched : nullptr, opts);
    auto r = compileAndTime(code, prog, 500000);
    if (!r.ok) {
      std::printf("%-26s %s\n", c.name, r.detail.c_str());
      continue;
    }
    std::printf("%-26s %12.2f %10.4f %12.1f\n", c.name, r.compileSeconds, r.runSeconds,
                static_cast<double>(r.cycles) / r.runSeconds / 1e3);
    if (!c.ccss) baselineRun = r.runSeconds;
    else if (c.hints) ccssRun = r.runSeconds;
    std::fflush(stdout);
  }

  // Interpreter reference for scale.
  {
    auto eng = bench::makeCcssEngine(ir, sched, bench::BenchEnv::fromEnv().threads);
    auto r = bench::timeEngine(*eng, prog);
    std::printf("%-26s %12s %10.4f %12.1f\n", "interpreted CCSS", "-", r.seconds,
                static_cast<double>(r.cycles) / r.seconds / 1e3);
  }
  if (baselineRun > 0 && ccssRun > 0)
    std::printf("\ncompiled CCSS speedup over compiled baseline: %.2fx\n",
                baselineRun / ccssRun);
  return 0;
}
