// Shared infrastructure for the paper-reproduction bench binaries.
//
// Evaluation setup mirroring the paper's §V:
//  * designs  — r16 / r18 / boom scale TinySoC configurations (Table I);
//  * workloads — dhrystone / matmul / pchase programs (Table II), with
//    iteration counts scaled down so every bench binary completes in
//    seconds rather than the paper's minutes-to-hours (the relative cycle
//    ratios are preserved);
//  * simulators — CommVer* (levelized event-driven stand-in), Verilator*
//    (optimized full-cycle stand-in), Baseline (ESSENT flow with all
//    optimizations disabled), ESSENT (CCSS engine, all optimizations).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/activity_engine.h"
#include "designs/tinysoc.h"
#include "sim/builder.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "workloads/driver.h"
#include "workloads/programs.h"

namespace essent::bench {

inline std::vector<designs::SoCConfig> evalDesigns() {
  return {designs::socR16(), designs::socR18(), designs::socBoom()};
}

inline std::vector<workloads::Program> evalWorkloads() {
  // Iteration counts chosen so cycle counts order as in Table II
  // (dhrystone < matmul << pchase) while every bench finishes in seconds.
  return {workloads::dhrystoneProgram(256), workloads::matmulProgram(6, 1),
          workloads::pchaseProgram(64, 96)};
}

// Cached IR builds (the boom design takes ~0.4 s to lower).
struct BuiltDesign {
  std::string name;
  sim::SimIR optimized;  // full compiler optimizations (Verilator*/ESSENT)
  sim::SimIR baseline;   // all optimizations disabled (Baseline)
};

inline BuiltDesign buildDesign(const designs::SoCConfig& cfg) {
  BuiltDesign d;
  d.name = cfg.name;
  std::string text = designs::tinySoCFirrtl(cfg);
  d.optimized = sim::buildFromFirrtl(text);
  sim::BuildOptions raw;
  raw.constProp = raw.cse = raw.dce = false;
  d.baseline = sim::buildFromFirrtl(text, raw);
  return d;
}

struct EngineRun {
  double seconds = 0;
  uint64_t cycles = 0;
  uint16_t result = 0;
  bool halted = false;
};

inline EngineRun timeEngine(sim::Engine& engine, const workloads::Program& prog,
                            uint64_t maxCycles = 2'000'000) {
  workloads::loadProgram(engine, prog);
  auto res = workloads::runWorkload(engine, maxCycles);
  return EngineRun{res.seconds, res.cycles, res.result, res.halted};
}

inline void printRule(int width) {
  for (int i = 0; i < width; i++) std::putchar('-');
  std::putchar('\n');
}

}  // namespace essent::bench
