// Shared infrastructure for the paper-reproduction bench binaries.
//
// Evaluation setup mirroring the paper's §V:
//  * designs  — r16 / r18 / boom scale TinySoC configurations (Table I);
//  * workloads — dhrystone / matmul / pchase programs (Table II), with
//    iteration counts scaled down so every bench binary completes in
//    seconds rather than the paper's minutes-to-hours (the relative cycle
//    ratios are preserved);
//  * simulators — CommVer* (levelized event-driven stand-in), Verilator*
//    (optimized full-cycle stand-in), Baseline (ESSENT flow with all
//    optimizations disabled), ESSENT (CCSS engine, all optimizations).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/activity_engine.h"
#include "core/obs_export.h"
#include "designs/tinysoc.h"
#include "obs/json.h"
#include "obs/phase_timer.h"
#include "sim/builder.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "workloads/driver.h"
#include "workloads/programs.h"

namespace essent::bench {

inline std::vector<designs::SoCConfig> evalDesigns() {
  return {designs::socR16(), designs::socR18(), designs::socBoom()};
}

inline std::vector<workloads::Program> evalWorkloads() {
  // Iteration counts chosen so cycle counts order as in Table II
  // (dhrystone < matmul << pchase) while every bench finishes in seconds.
  return {workloads::dhrystoneProgram(256), workloads::matmulProgram(6, 1),
          workloads::pchaseProgram(64, 96)};
}

// Cached IR builds (the boom design takes ~0.4 s to lower).
struct BuiltDesign {
  std::string name;
  sim::SimIR optimized;  // full compiler optimizations (Verilator*/ESSENT)
  sim::SimIR baseline;   // all optimizations disabled (Baseline)
};

inline BuiltDesign buildDesign(const designs::SoCConfig& cfg) {
  BuiltDesign d;
  d.name = cfg.name;
  std::string text = designs::tinySoCFirrtl(cfg);
  d.optimized = sim::buildFromFirrtl(text);
  sim::BuildOptions raw;
  raw.constProp = raw.cse = raw.dce = false;
  d.baseline = sim::buildFromFirrtl(text, raw);
  return d;
}

struct EngineRun {
  double seconds = 0;
  uint64_t cycles = 0;
  uint16_t result = 0;
  bool halted = false;
  sim::EngineStats stats;  // end-of-run counter snapshot
};

inline EngineRun timeEngine(sim::Engine& engine, const workloads::Program& prog,
                            uint64_t maxCycles = 2'000'000) {
  workloads::loadProgram(engine, prog);
  auto res = workloads::runWorkload(engine, maxCycles);
  return EngineRun{res.seconds, res.cycles, res.result, res.halted, res.stats};
}

inline void printRule(int width) {
  for (int i = 0; i < width; i++) std::putchar('-');
  std::putchar('\n');
}

// Machine-readable bench artifacts. Every bench binary constructs one of
// these; when enabled it writes `BENCH_<name>.json` on destruction, seeding
// the perf-trajectory record the repo accumulates across PRs. The human
// tables on stdout are untouched.
//
// Enabling (human output stays the default):
//   * `--json` argv flag           -> ./BENCH_<name>.json
//   * `--json=PATH` argv flag      -> PATH
//   * ESSENT_BENCH_JSON_DIR=<dir>  -> <dir>/BENCH_<name>.json
//
// Artifact schema: { "bench", "schema_version", "meta": {...},
// "rows": [...], "phase_timings": {...} } — rows are bench-specific flat
// objects, phase timings come from the global compile-phase registry.
class JsonReporter {
 public:
  JsonReporter(std::string name, int argc, char** argv) : name_(std::move(name)) {
    for (int i = 1; i < argc; i++) {
      std::string arg = argv[i];
      if (arg == "--json") path_ = defaultPath();
      else if (arg.rfind("--json=", 0) == 0) path_ = arg.substr(7);
    }
    if (path_.empty()) {
      if (const char* dir = std::getenv("ESSENT_BENCH_JSON_DIR"))
        path_ = std::string(dir) + "/" + defaultPath();
    }
    doc_["bench"] = name_;
    doc_["schema_version"] = 1;
    doc_["meta"] = obs::Json::object();
    doc_["rows"] = obs::Json::array();
  }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    if (!enabled() || written_) return;
    try {
      write();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench json: %s\n", e.what());
    }
  }

  bool enabled() const { return !path_.empty(); }
  obs::Json& meta() { return doc_["meta"]; }
  void addRow(obs::Json row) { doc_["rows"].push(std::move(row)); }

  // Adds the standard columns every engine-timing row shares.
  static obs::Json engineRow(const std::string& design, const std::string& workload,
                             const std::string& simulator, double seconds,
                             const sim::EngineStats& stats) {
    obs::Json row = obs::Json::object();
    row["design"] = design;
    row["workload"] = workload;
    row["simulator"] = simulator;
    row["seconds"] = seconds;
    row["stats"] = core::engineStatsJson(stats);
    return row;
  }

  void write() {
    if (!enabled()) return;
    doc_["phase_timings"] = obs::phaseTimingsJson();
    obs::writeJsonFile(path_, doc_);
    std::fprintf(stderr, "bench json: wrote %s\n", path_.c_str());
    written_ = true;
  }

 private:
  std::string defaultPath() const { return "BENCH_" + name_ + ".json"; }

  std::string name_;
  std::string path_;
  obs::Json doc_ = obs::Json::object();
  bool written_ = false;
};

}  // namespace essent::bench
