// Shared infrastructure for the paper-reproduction bench binaries.
//
// Evaluation setup mirroring the paper's §V:
//  * designs  — r16 / r18 / boom scale TinySoC configurations (Table I);
//  * workloads — dhrystone / matmul / pchase programs (Table II), with
//    iteration counts scaled down so every bench binary completes in
//    seconds rather than the paper's minutes-to-hours (the relative cycle
//    ratios are preserved);
//  * simulators — CommVer* (levelized event-driven stand-in), Verilator*
//    (optimized full-cycle stand-in), Baseline (ESSENT flow with all
//    optimizations disabled), ESSENT (CCSS engine, all optimizations).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/activity_engine.h"
#include "core/obs_export.h"
#include "core/parallel_engine.h"
#include "designs/tinysoc.h"
#include "obs/json.h"
#include "obs/phase_timer.h"
#include "sim/compile.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "workloads/driver.h"
#include "workloads/programs.h"

namespace essent::bench {

// Measurement knobs honored uniformly by every bench binary, so scaling
// runs are reproducible from the environment alone:
//   ESSENT_BENCH_REPS  (or --reps N)    interleaved A/B repetitions
//   ESSENT_THREADS     (or --threads N) worker threads for CCSS engines
// Both are recorded in the JSON artifact header (JsonReporter meta).
struct BenchEnv {
  unsigned reps = 3;
  unsigned threads = 1;

  static BenchEnv fromEnv(int argc = 0, char** argv = nullptr) {
    BenchEnv env;
    if (const char* e = std::getenv("ESSENT_BENCH_REPS")) {
      long v = std::strtol(e, nullptr, 10);
      if (v >= 1) env.reps = static_cast<unsigned>(v);
    }
    if (const char* e = std::getenv("ESSENT_THREADS")) {
      long v = std::strtol(e, nullptr, 10);
      if (v >= 1) env.threads = static_cast<unsigned>(v);
    }
    for (int i = 1; i < argc; i++) {
      std::string arg = argv[i];
      auto intVal = [&](size_t prefixLen) {
        long v = std::strtol(arg.c_str() + prefixLen, nullptr, 10);
        return v >= 1 ? static_cast<unsigned>(v) : 1u;
      };
      if (arg.rfind("--reps=", 0) == 0) env.reps = intVal(7);
      else if (arg.rfind("--threads=", 0) == 0) env.threads = intVal(10);
      else if ((arg == "--reps" || arg == "--threads") && i + 1 < argc) {
        unsigned v = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        (arg == "--reps" ? env.reps : env.threads) = v >= 1 ? v : 1;
      }
    }
    return env;
  }
};

// CCSS engine honoring the thread knob: the serial ActivityEngine at 1
// thread (the untouched hot path), the statically-placed BSP engine above —
// through the degradation-aware core factory, so a request beyond the host's
// concurrency or the placement's useful width is clamped rather than timed
// as if it had real lanes. Degradations land in `warnings` (when non-null);
// benches record the post-degradation engine->threadCount() per row so
// artifacts from narrow hosts are honest about what actually ran. Both
// paths go through the shared compiled structure (CompiledCcss), matching
// how sim::makeEngine and core::SimFarm construct engines.
inline std::unique_ptr<core::ActivityEngine> makeCcssEngine(
    const sim::SimIR& ir, const core::ScheduleOptions& opts, unsigned threads,
    std::vector<std::string>* warnings = nullptr) {
  auto cc = core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), opts);
  if (threads <= 1) return std::make_unique<core::ActivityEngine>(std::move(cc));
  return core::makeCcssEngine(std::move(cc), threads, warnings);
}

inline std::unique_ptr<core::ActivityEngine> makeCcssEngine(
    const sim::SimIR& ir, core::CondPartSchedule schedule, unsigned threads,
    std::vector<std::string>* warnings = nullptr) {
  auto cc = core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), std::move(schedule));
  if (threads <= 1) return std::make_unique<core::ActivityEngine>(std::move(cc));
  return core::makeCcssEngine(std::move(cc), threads, warnings);
}

// Interleaved A/B(/C/...) repetition timing: candidates run round-robin
// (A B C A B C ...) so clock drift and thermal state hit every candidate
// equally; reports each candidate's best (minimum) seconds.
inline std::vector<double> interleavedBestSeconds(
    const std::vector<std::function<double()>>& candidates, unsigned reps) {
  std::vector<double> best(candidates.size(), std::numeric_limits<double>::infinity());
  for (unsigned r = 0; r < std::max(1u, reps); r++)
    for (size_t i = 0; i < candidates.size(); i++)
      best[i] = std::min(best[i], candidates[i]());
  return best;
}

inline std::vector<designs::SoCConfig> evalDesigns() {
  return {designs::socR16(), designs::socR18(), designs::socBoom()};
}

inline std::vector<workloads::Program> evalWorkloads() {
  // Iteration counts chosen so cycle counts order as in Table II
  // (dhrystone < matmul << pchase) while every bench finishes in seconds.
  return {workloads::dhrystoneProgram(256), workloads::matmulProgram(6, 1),
          workloads::pchaseProgram(64, 96)};
}

// Cached IR builds (the boom design takes ~0.4 s to lower).
struct BuiltDesign {
  std::string name;
  sim::SimIR optimized;  // full compiler optimizations (Verilator*/ESSENT)
  sim::SimIR baseline;   // all optimizations disabled (Baseline)
};

inline BuiltDesign buildDesign(const designs::SoCConfig& cfg) {
  BuiltDesign d;
  d.name = cfg.name;
  std::string text = designs::tinySoCFirrtl(cfg);
  d.optimized = sim::buildFromFirrtl(text);
  sim::BuildOptions raw;
  raw.constProp = raw.cse = raw.dce = false;
  d.baseline = sim::buildFromFirrtl(text, raw);
  return d;
}

struct EngineRun {
  double seconds = 0;
  uint64_t cycles = 0;
  uint16_t result = 0;
  bool halted = false;
  sim::EngineStats stats;  // end-of-run counter snapshot
};

inline EngineRun timeEngine(sim::Engine& engine, const workloads::Program& prog,
                            uint64_t maxCycles = 2'000'000) {
  workloads::loadProgram(engine, prog);
  auto res = workloads::runWorkload(engine, maxCycles);
  return EngineRun{res.seconds, res.cycles, res.result, res.halted, res.stats};
}

inline void printRule(int width) {
  for (int i = 0; i < width; i++) std::putchar('-');
  std::putchar('\n');
}

// Machine-readable bench artifacts. Every bench binary constructs one of
// these; when enabled it writes `BENCH_<name>.json` on destruction, seeding
// the perf-trajectory record the repo accumulates across PRs. The human
// tables on stdout are untouched.
//
// Enabling (human output stays the default):
//   * `--json` argv flag           -> ./BENCH_<name>.json
//   * `--json=PATH` argv flag      -> PATH
//   * ESSENT_BENCH_JSON_DIR=<dir>  -> <dir>/BENCH_<name>.json
//
// Artifact schema: { "bench", "schema_version", "meta": {...},
// "rows": [...], "phase_timings": {...} } — rows are bench-specific flat
// objects, phase timings come from the global compile-phase registry.
class JsonReporter {
 public:
  JsonReporter(std::string name, int argc, char** argv)
      : name_(std::move(name)), env_(BenchEnv::fromEnv(argc, argv)) {
    for (int i = 1; i < argc; i++) {
      std::string arg = argv[i];
      if (arg == "--json") path_ = defaultPath();
      else if (arg.rfind("--json=", 0) == 0) path_ = arg.substr(7);
    }
    if (path_.empty()) {
      if (const char* dir = std::getenv("ESSENT_BENCH_JSON_DIR"))
        path_ = std::string(dir) + "/" + defaultPath();
    }
    doc_["bench"] = name_;
    doc_["schema_version"] = 1;
    doc_["meta"] = obs::Json::object();
    // Pinning knobs in the header makes every artifact reproducible from
    // its own contents (reps/threads + the env they came from), and
    // hardware_concurrency makes degraded multi-thread rows interpretable:
    // a 1-core container clamps every parallel engine to serial, and the
    // artifact must say so rather than present fake scaling.
    doc_["meta"]["reps"] = env_.reps;
    doc_["meta"]["threads"] = env_.threads;
    doc_["meta"]["hardware_concurrency"] = std::thread::hardware_concurrency();
    doc_["rows"] = obs::Json::array();
  }

  const BenchEnv& env() const { return env_; }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    if (!enabled() || written_) return;
    try {
      write();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench json: %s\n", e.what());
    }
  }

  bool enabled() const { return !path_.empty(); }
  obs::Json& meta() { return doc_["meta"]; }
  void addRow(obs::Json row) { doc_["rows"].push(std::move(row)); }

  // Adds the standard columns every engine-timing row shares.
  static obs::Json engineRow(const std::string& design, const std::string& workload,
                             const std::string& simulator, double seconds,
                             const sim::EngineStats& stats) {
    obs::Json row = obs::Json::object();
    row["design"] = design;
    row["workload"] = workload;
    row["simulator"] = simulator;
    row["seconds"] = seconds;
    row["stats"] = core::engineStatsJson(stats);
    return row;
  }

  void write() {
    if (!enabled()) return;
    doc_["phase_timings"] = obs::phaseTimingsJson();
    obs::writeJsonFile(path_, doc_);
    std::fprintf(stderr, "bench json: wrote %s\n", path_.c_str());
    written_ = true;
  }

 private:
  std::string defaultPath() const { return "BENCH_" + name_ + ".json"; }

  std::string name_;
  BenchEnv env_;
  std::string path_;
  obs::Json doc_ = obs::Json::object();
  bool written_ = false;
};

}  // namespace essent::bench
