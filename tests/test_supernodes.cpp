// Tests for combinational-loop supernodes (paper §II): SCCs merged into
// supernodes evaluated repeatedly until convergence, across the builder,
// all three engines, the partitioner (loops never split across
// partitions), and the code generator.
#include <gtest/gtest.h>

#include "codegen/emitter.h"
#include "core/activity_engine.h"
#include "core/netlist.h"
#include "sim/compile.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"

namespace essent {
namespace {

using core::ActivityEngine;
using core::ScheduleOptions;
using sim::BuildOptions;
using sim::EventDrivenEngine;
using sim::FullCycleEngine;
using sim::SimIR;

constexpr const char* kSrLatch = R"(
circuit Latch :
  module Latch :
    input s : UInt<1>
    input r : UInt<1>
    output q : UInt<1>
    output qb : UInt<1>
    wire qi : UInt<1>
    wire qbi : UInt<1>
    qi <= not(or(r, qbi))
    qbi <= not(or(s, qi))
    q <= qi
    qb <= qbi
)";

BuildOptions withLoops() {
  BuildOptions o;
  o.allowCombLoops = true;
  return o;
}

TEST(SuperNodes, RejectedByDefaultWithSccDiagnostic) {
  try {
    sim::buildFromFirrtl(kSrLatch);
    FAIL() << "expected BuildError";
  } catch (const sim::BuildError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("combinational cycle"), std::string::npos);
    EXPECT_NE(msg.find("qi"), std::string::npos);  // names the SCC members
  }
}

TEST(SuperNodes, BuilderMarksContiguousSupers) {
  SimIR ir = sim::buildFromFirrtl(kSrLatch, withLoops());
  ASSERT_TRUE(ir.hasCombLoops());
  ASSERT_EQ(ir.supers.size(), 1u);
  EXPECT_GE(ir.supers[0].size(), 2u);
  // Contiguity + back-pointers are enforced by validate().
  ir.validate();
}

TEST(SuperNodes, SrLatchSetsAndHolds) {
  SimIR ir = sim::buildFromFirrtl(kSrLatch, withLoops());
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  // Set.
  eng.poke("s", 1);
  eng.poke("r", 0);
  eng.tick();
  EXPECT_EQ(eng.peek("q"), 1u);
  EXPECT_EQ(eng.peek("qb"), 0u);
  // Hold: the loop keeps its state with both inputs low.
  eng.poke("s", 0);
  eng.tick();
  eng.tick();
  EXPECT_EQ(eng.peek("q"), 1u);
  // Reset.
  eng.poke("r", 1);
  eng.tick();
  EXPECT_EQ(eng.peek("q"), 0u);
  EXPECT_EQ(eng.peek("qb"), 1u);
  // Hold again.
  eng.poke("r", 0);
  eng.tick();
  EXPECT_EQ(eng.peek("q"), 0u);
}

TEST(SuperNodes, AllEnginesAgreeOnLatch) {
  SimIR ir = sim::buildFromFirrtl(kSrLatch, withLoops());
  auto stim = [](sim::Engine& e, uint64_t c) {
    // set / hold / reset / hold pattern
    e.poke("s", c % 8 == 1);
    e.poke("r", c % 8 == 5);
  };
  FullCycleEngine fc(sim::CompiledDesign::compile(ir));
  EventDrivenEngine ev(sim::CompiledDesign::compile(ir));
  auto m1 = sim::compareEngines(fc, ev, 40, stim);
  EXPECT_FALSE(m1.has_value()) << m1->describe();
  FullCycleEngine fc2(sim::CompiledDesign::compile(ir));
  ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  auto m2 = sim::compareEngines(fc2, act, 40, stim);
  EXPECT_FALSE(m2.has_value()) << m2->describe();
}

TEST(SuperNodes, PartitionerKeepsLoopWhole) {
  SimIR ir = sim::buildFromFirrtl(kSrLatch, withLoops());
  core::Netlist nl = core::Netlist::build(ir);
  EXPECT_TRUE(nl.g.isAcyclic());  // the supernode fuses the cycle away
  core::Partitioning p = core::partitionNetlist(nl, core::PartitionOptions{});
  EXPECT_TRUE(p.partGraph.isAcyclic());
  // Every supernode member op lands in the same partition (by construction
  // they share a netlist node); verified via the schedule.
  core::CondPartSchedule sched = core::buildScheduleFrom(nl, p, true);
  for (int32_t member : ir.supers[0]) {
    bool found = false;
    for (const auto& part : sched.parts) {
      bool has = std::find(part.ops.begin(), part.ops.end(), member) != part.ops.end();
      if (has) {
        // All members must be in this same partition.
        for (int32_t other : ir.supers[0])
          EXPECT_NE(std::find(part.ops.begin(), part.ops.end(), other), part.ops.end());
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(SuperNodes, OscillatorThrowsAtRuntime) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit O :
  module O :
    output q : UInt<1>
    wire w : UInt<1>
    w <= not(w)
    q <= w
)",
                                  withLoops());
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  EXPECT_THROW(eng.tick(), std::runtime_error);
}

TEST(SuperNodes, RegisterFeedbackAroundLoop) {
  // A register samples the latch output; the loop feeds state and state
  // feeds the loop, exercising elision ordering around a supernode.
  SimIR ir = sim::buildFromFirrtl(R"(
circuit LR :
  module LR :
    input clock : Clock
    input en : UInt<1>
    output o : UInt<4>
    reg cnt : UInt<4>, clock
    wire a : UInt<1>
    wire b : UInt<1>
    a <= not(or(en, b))
    b <= not(or(bits(cnt, 0, 0), a))
    when b :
      cnt <= tail(add(cnt, UInt<4>(1)), 1)
    o <= cnt
)",
                                  withLoops());
  FullCycleEngine fc(sim::CompiledDesign::compile(ir));
  ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  auto m = sim::compareEngines(fc, act, 40, [](sim::Engine& e, uint64_t c) {
    e.poke("en", (c / 5) % 2);
  });
  EXPECT_FALSE(m.has_value()) << m->describe();
}

TEST(SuperNodes, CompiledCodeMatchesInterpreter) {
  SimIR ir = sim::buildFromFirrtl(kSrLatch, withLoops());
  core::CondPartSchedule sched =
      core::buildSchedule(core::Netlist::build(ir), ScheduleOptions{});
  std::string code = codegen::emitCpp(ir, &sched, codegen::CodegenOptions{});
  EXPECT_NE(code.find("iterate to convergence"), std::string::npos);
  // Baseline mode also emits the loop.
  codegen::CodegenOptions baseOpts;
  baseOpts.ccss = false;
  std::string base = codegen::emitCpp(ir, nullptr, baseOpts);
  EXPECT_NE(base.find("again_"), std::string::npos);
}

TEST(SuperNodes, DcePreservesSuperBookkeeping) {
  // Extra dead logic around the loop: DCE must renumber supers correctly.
  SimIR ir = sim::buildFromFirrtl(R"(
circuit D :
  module D :
    input s : UInt<1>
    input r : UInt<1>
    output q : UInt<1>
    wire qi : UInt<1>
    wire qbi : UInt<1>
    node unused = xor(s, r)
    qi <= not(or(r, qbi))
    qbi <= not(or(s, qi))
    q <= qi
)",
                                  withLoops());
  ir.validate();
  ASSERT_EQ(ir.supers.size(), 1u);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("s", 1);
  eng.poke("r", 0);
  eng.tick();
  EXPECT_EQ(eng.peek("q"), 1u);
}

}  // namespace
}  // namespace essent
