// essentd service suite: wire framing, strict protocol decode, the
// content-addressed design cache, and the hardened server loop end to end —
// admission control, per-request deadlines, error isolation, graceful
// drain, the golden wire corpus, and a seeded chaos campaign. Also locks in
// the SHARED SimFarm wall-clock budget (FarmOptions::guard): N concurrent
// instances stop within one check interval of the same deadline instead of
// overshooting N-fold. Run just these with `ctest -L serve`.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sim_farm.h"
#include "obs/json.h"
#include "serve/design_cache.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/compile.h"
#include "sim/engine.h"
#include "sim/engine_factory.h"
#include "support/resource_guard.h"
#include "support/socket.h"

namespace {

using namespace essent;
using Clock = std::chrono::steady_clock;

int64_t msSince(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0).count();
}

// Small sequential design used where compile time should be negligible.
const char* kCounterFir = R"(circuit Counter :
  module Counter :
    input clock : Clock
    input en : UInt<1>
    output out : UInt<8>

    reg c : UInt<8>, clock
    when en :
      c <= tail(add(c, UInt<8>(1)), 1)
    out <= c
)";

std::string readFileOrDie(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string gcdFir() { return readFileOrDie(std::string(EXAMPLES_DIR) + "/gcd.fir"); }

// --- framing ---------------------------------------------------------------

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void closeA() {
    ::close(a);
    a = -1;
  }
};

TEST(Framing, RoundTripsPayloads) {
  SocketPair sp;
  for (const std::string& payload :
       {std::string("{\"op\":\"ping\"}"), std::string(""), std::string(4096, 'x')}) {
    ASSERT_TRUE(support::writeFrame(sp.a, payload));
    std::string got;
    ASSERT_EQ(support::readFrame(sp.b, got, 1u << 20, 1000), support::FrameStatus::Ok);
    EXPECT_EQ(got, payload);
  }
}

TEST(Framing, CleanCloseIsEof) {
  SocketPair sp;
  sp.closeA();
  std::string got;
  EXPECT_EQ(support::readFrame(sp.b, got, 1u << 20, 1000), support::FrameStatus::Eof);
}

TEST(Framing, StreamEndingInsidePayloadIsTruncated) {
  SocketPair sp;
  const unsigned char prefix[4] = {0, 0, 0, 100};  // declares 100 bytes
  ASSERT_TRUE(support::sendAll(sp.a, prefix, 4));
  ASSERT_TRUE(support::sendAll(sp.a, "hello", 5));
  sp.closeA();
  std::string got;
  EXPECT_EQ(support::readFrame(sp.b, got, 1u << 20, 1000), support::FrameStatus::Truncated);
}

TEST(Framing, StreamEndingInsidePrefixIsTruncated) {
  SocketPair sp;
  const unsigned char half[2] = {0, 0};
  ASSERT_TRUE(support::sendAll(sp.a, half, 2));
  sp.closeA();
  std::string got;
  EXPECT_EQ(support::readFrame(sp.b, got, 1u << 20, 1000), support::FrameStatus::Truncated);
}

TEST(Framing, OversizedPrefixReportsDeclaredLength) {
  SocketPair sp;
  const unsigned char prefix[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_TRUE(support::sendAll(sp.a, prefix, 4));
  std::string got;
  uint64_t declared = 0;
  EXPECT_EQ(support::readFrame(sp.b, got, 1u << 20, 1000, &declared),
            support::FrameStatus::Oversized);
  EXPECT_EQ(declared, 0x7fffffffu);
}

TEST(Framing, SilentPeerTimesOut) {
  SocketPair sp;
  std::string got;
  Clock::time_point t0 = Clock::now();
  EXPECT_EQ(support::readFrame(sp.b, got, 1u << 20, 100), support::FrameStatus::TimedOut);
  EXPECT_LT(msSince(t0), 5000);
}

// --- protocol --------------------------------------------------------------

TEST(Protocol, ParsesRunRequest) {
  obs::Json doc = obs::Json::parse(
      R"({"proto":1,"op":"run","design":"circuit X :","cycles":32,"batch":4,)"
      R"("pokes":{"en":1},"options":{"engine":"ccss","cp":16,"baseline":true}})");
  std::string code, msg;
  std::optional<serve::Request> req = serve::parseRequest(doc, code, msg);
  ASSERT_TRUE(req.has_value()) << code << ": " << msg;
  EXPECT_EQ(req->op, serve::RequestOp::Run);
  EXPECT_EQ(req->cycles, 32u);
  EXPECT_EQ(req->batch, 4u);
  EXPECT_EQ(req->pokes.at("en"), 1u);
  EXPECT_EQ(req->options.cp, 16u);
  EXPECT_TRUE(req->options.baseline);
}

TEST(Protocol, RejectsUnknownTopLevelField) {
  obs::Json doc = obs::Json::parse(R"({"proto":1,"op":"ping","flux":1})");
  std::string code, msg;
  EXPECT_FALSE(serve::parseRequest(doc, code, msg).has_value());
  EXPECT_EQ(code, serve::kErrBadRequest);
}

TEST(Protocol, RejectsRunWithoutCycles) {
  obs::Json doc = obs::Json::parse(R"({"proto":1,"op":"run","design":"circuit X :"})");
  std::string code, msg;
  EXPECT_FALSE(serve::parseRequest(doc, code, msg).has_value());
  EXPECT_EQ(code, serve::kErrBadRequest);
}

TEST(Protocol, MissingProtoNamesSupportedRange) {
  obs::Json doc = obs::Json::parse(R"({"op":"ping"})");
  std::string code, msg;
  EXPECT_FALSE(serve::parseRequest(doc, code, msg).has_value());
  EXPECT_EQ(code, serve::kErrBadRequest);
  EXPECT_NE(msg.find("proto"), std::string::npos) << msg;
  EXPECT_NE(msg.find("supported protocol versions: 1..1"), std::string::npos) << msg;
}

TEST(Protocol, UnsupportedProtoNamesSupportedRange) {
  obs::Json doc = obs::Json::parse(R"({"proto":99,"op":"ping"})");
  std::string code, msg;
  EXPECT_FALSE(serve::parseRequest(doc, code, msg).has_value());
  EXPECT_EQ(code, serve::kErrBadRequest);
  EXPECT_NE(msg.find("unsupported protocol version 99"), std::string::npos) << msg;
  EXPECT_NE(msg.find("supported: 1..1"), std::string::npos) << msg;
  obs::Json bad = obs::Json::parse(R"({"proto":"one","op":"ping"})");
  EXPECT_FALSE(serve::parseRequest(bad, code, msg).has_value());
  EXPECT_EQ(code, serve::kErrBadRequest);
}

TEST(Protocol, ResponsesEchoProtocolVersion) {
  obs::Json ok = serve::okResponse(serve::RequestOp::Status);
  ASSERT_NE(ok.find("proto"), nullptr);
  EXPECT_EQ(ok.at("proto").asUInt(), serve::kProtoMax);
  obs::Json err = serve::errorResponse(serve::kErrBadRequest, "nope");
  ASSERT_NE(err.find("proto"), nullptr);
  EXPECT_EQ(err.at("proto").asUInt(), serve::kProtoMax);
}

TEST(Protocol, DesignHashCoversTextAndOptions) {
  serve::RequestOptions base;
  std::string h1 = serve::designHash("circuit A :", base);
  EXPECT_EQ(h1.size(), 32u);
  EXPECT_EQ(h1, serve::designHash("circuit A :", base));
  EXPECT_NE(h1, serve::designHash("circuit B :", base));
  serve::RequestOptions baseline = base;
  baseline.baseline = true;
  EXPECT_NE(h1, serve::designHash("circuit A :", baseline));
  serve::RequestOptions cp = base;
  cp.cp = 32;
  EXPECT_NE(h1, serve::designHash("circuit A :", cp));
}

TEST(Protocol, ResponseEnvelopeRoundTrips) {
  std::optional<serve::ResponseEnvelope> ok =
      serve::parseResponseEnvelope(serve::okResponse(serve::RequestOp::Ping));
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);

  std::optional<serve::ResponseEnvelope> err = serve::parseResponseEnvelope(
      serve::errorResponse(serve::kErrOverloaded, "queue full", 250));
  ASSERT_TRUE(err.has_value());
  EXPECT_FALSE(err->ok);
  EXPECT_EQ(err->errorCode, serve::kErrOverloaded);
  EXPECT_EQ(err->retryAfterMs, 250);

  EXPECT_FALSE(serve::parseResponseEnvelope(obs::Json::parse(R"({"weird":1})")).has_value());
}

// --- design cache ----------------------------------------------------------

std::shared_ptr<const sim::CompiledDesign> compileText(const std::string& text) {
  return sim::CompiledDesign::compile(sim::buildFromFirrtl(text));
}

TEST(DesignCacheTest, CompilesOncePerKeyAcrossThreads) {
  serve::DesignCache cache(8);
  std::atomic<int> compiles{0};
  auto fn = [&](const std::string& text) {
    compiles.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return compileText(text);
  };
  std::vector<std::thread> ts;
  std::atomic<int> served{0};
  for (int i = 0; i < 4; i++)
    ts.emplace_back([&] {
      serve::DesignCache::Result r = cache.getOrCompile("k1", kCounterFir, fn);
      if (r.design) served.fetch_add(1);
    });
  for (std::thread& t : ts) t.join();
  EXPECT_EQ(compiles.load(), 1);
  EXPECT_EQ(served.load(), 4);
  EXPECT_GE(cache.stats().coalesced + cache.stats().hits, 3u);
}

TEST(DesignCacheTest, FailuresPropagateAndAreNotCached) {
  serve::DesignCache cache(8);
  int calls = 0;
  auto failing = [&](const std::string&) -> std::shared_ptr<const sim::CompiledDesign> {
    calls++;
    throw std::runtime_error("transient");
  };
  EXPECT_THROW(cache.getOrCompile("k", kCounterFir, failing), std::runtime_error);
  // The failure did not poison the key: the next caller compiles fresh.
  serve::DesignCache::Result r =
      cache.getOrCompile("k", kCounterFir, [&](const std::string& t) {
        calls++;
        return compileText(t);
      });
  EXPECT_TRUE(r.design != nullptr);
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(cache.lookup("k") != nullptr);
}

TEST(DesignCacheTest, EvictsLeastRecentlyUsed) {
  serve::DesignCache cache(2);
  auto fn = [](const std::string& t) { return compileText(t); };
  cache.getOrCompile("a", kCounterFir, fn);
  cache.getOrCompile("b", kCounterFir, fn);
  cache.getOrCompile("a", kCounterFir, fn);  // touch a; b is now LRU
  cache.getOrCompile("c", kCounterFir, fn);  // evicts b
  EXPECT_TRUE(cache.lookup("a") != nullptr);
  EXPECT_TRUE(cache.lookup("b") == nullptr);
  EXPECT_TRUE(cache.lookup("c") != nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.evict("c"));
  EXPECT_FALSE(cache.evict("c"));
  EXPECT_TRUE(cache.lookup("c") == nullptr);
}

// --- server ----------------------------------------------------------------

// In-process daemon on a unix socket inside a private scratch dir.
struct TestServer {
  std::string dir;
  std::string sock;
  std::unique_ptr<serve::Server> server;

  explicit TestServer(serve::ServerOptions opts = {}) {
    char tmpl[] = "/tmp/essent_serve_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    dir = made;
    sock = dir + "/essentd.sock";
    opts.unixPath = sock;
    server = std::make_unique<serve::Server>(std::move(opts));
    server->start();
  }
  ~TestServer() {
    server.reset();  // implies drain
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

// One request/response on an existing connection; nullopt on any transport
// failure (used by the chaos campaign where cuts are expected).
std::optional<obs::Json> rpcOn(support::Socket& conn, const std::string& payload) {
  // Try the read even if the write failed: a shed/drain rejection is
  // written at accept time and can race our request write — the E0609 or
  // E0610 frame is already in the receive buffer when the EPIPE lands.
  (void)support::writeFrame(conn.fd(), payload);
  std::string body;
  if (support::readFrame(conn.fd(), body, 64u << 20, 20'000) != support::FrameStatus::Ok)
    return std::nullopt;
  try {
    return obs::Json::parse(body);
  } catch (const obs::JsonError&) {
    return std::nullopt;
  }
}

std::optional<obs::Json> rpc(const TestServer& ts, const std::string& payload) {
  try {
    support::Socket conn = support::connectUnix(ts.sock);
    return rpcOn(conn, payload);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

serve::ResponseEnvelope envelope(const std::optional<obs::Json>& doc) {
  EXPECT_TRUE(doc.has_value()) << "no structured response";
  if (!doc) return {};
  std::optional<serve::ResponseEnvelope> env = serve::parseResponseEnvelope(*doc);
  EXPECT_TRUE(env.has_value()) << "unparseable envelope: " << doc->dump(0);
  return env ? *env : serve::ResponseEnvelope{};
}

obs::Json runRequest(const std::string& designText, uint64_t cycles,
                     std::map<std::string, uint64_t> pokes = {}) {
  obs::Json req = obs::Json::object();
  req["proto"] = uint64_t{serve::kProtoMax};
  req["op"] = "run";
  req["design"] = designText;
  req["cycles"] = cycles;
  if (!pokes.empty()) {
    obs::Json p = obs::Json::object();
    for (const auto& [k, v] : pokes) p[k] = v;
    req["pokes"] = std::move(p);
  }
  return req;
}

TEST(ServerTest, PingRoundTrip) {
  TestServer ts;
  std::optional<obs::Json> doc = rpc(ts, R"({"proto":1,"op":"ping"})");
  serve::ResponseEnvelope env = envelope(doc);
  EXPECT_TRUE(env.ok);
  ASSERT_NE(doc->find("op"), nullptr);
  EXPECT_EQ(doc->at("op").asStr(), "ping");
}

TEST(ServerTest, CompileThenRunByHashHitsCache) {
  TestServer ts;
  obs::Json creq = obs::Json::object();
  creq["proto"] = uint64_t{serve::kProtoMax};
  creq["op"] = "compile";
  creq["design"] = gcdFir();
  std::optional<obs::Json> cresp = rpc(ts, creq.dump(0));
  ASSERT_TRUE(envelope(cresp).ok) << cresp->dump(0);
  std::string hash = cresp->at("design_hash").asStr();
  EXPECT_EQ(hash.size(), 32u);
  EXPECT_FALSE(cresp->at("cached").asBool());
  EXPECT_GT(cresp->at("design").at("ir_ops").asUInt(), 0u);

  obs::Json rreq = obs::Json::object();
  rreq["proto"] = uint64_t{serve::kProtoMax};
  rreq["op"] = "run";
  rreq["design_hash"] = hash;
  rreq["cycles"] = uint64_t{64};
  std::optional<obs::Json> rresp = rpc(ts, rreq.dump(0));
  ASSERT_TRUE(envelope(rresp).ok) << rresp->dump(0);
  EXPECT_TRUE(rresp->at("cached").asBool());
  EXPECT_EQ(rresp->at("cycles").asUInt(), 64u);

  serve::ServerStats stats = ts.server->stats();
  EXPECT_GE(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
}

TEST(ServerTest, RunMatchesSoloEngine) {
  TestServer ts;
  std::string fir = gcdFir();
  const uint64_t cycles = 200;
  std::map<std::string, uint64_t> pokes{{"start", 1}, {"a", 1071}, {"b", 462}};
  std::optional<obs::Json> resp = rpc(ts, runRequest(fir, cycles, pokes).dump(0));
  ASSERT_TRUE(envelope(resp).ok) << resp->dump(0);

  // Same design, same pokes, same tick count through the in-process engine.
  std::shared_ptr<const sim::CompiledDesign> design = compileText(fir);
  std::unique_ptr<sim::Engine> eng = sim::makeEngine(sim::EngineKind::Ccss, design);
  for (const auto& [k, v] : pokes) eng->poke(k, v);
  for (uint64_t c = 0; c < cycles && !eng->stopped(); c++) eng->tick();

  const obs::Json& outputs = resp->at("outputs");
  ASSERT_GT(outputs.size(), 0u);
  for (const auto& [name, hex] : outputs.members())
    EXPECT_EQ(hex.asStr(), eng->peekBV(name).toHexString()) << "output " << name;
}

TEST(ServerTest, BatchRunReportsFarmResults) {
  TestServer ts;
  obs::Json req = runRequest(kCounterFir, 500, {{"en", 1}});
  req["batch"] = 4u;
  std::optional<obs::Json> resp = rpc(ts, req.dump(0));
  ASSERT_TRUE(envelope(resp).ok) << resp->dump(0);
  const obs::Json& farm = resp->at("farm");
  EXPECT_EQ(farm.at("instances").asUInt(), 4u);
  EXPECT_EQ(farm.at("failures").asUInt(), 0u);
  EXPECT_EQ(farm.at("total_cycles").asUInt(), 2000u);
  EXPECT_GE(farm.at("p99_ns").asUInt(), farm.at("p50_ns").asUInt());
}

TEST(ServerTest, WireCorpusGolden) {
  TestServer ts;
  namespace fs = std::filesystem;
  size_t cases = 0;
  for (const fs::directory_entry& ent : fs::directory_iterator(WIRE_CORPUS_DIR)) {
    if (ent.path().extension() != ".case") continue;
    cases++;
    std::string name = ent.path().stem().string();
    std::ifstream f(ent.path());
    ASSERT_TRUE(f.good()) << ent.path();
    std::string directive;
    std::getline(f, directive);
    std::ostringstream rest;
    rest << f.rdbuf();

    std::string expectLine;
    {
      std::ifstream ef(ent.path().parent_path() / (name + ".expect"));
      ASSERT_TRUE(ef.good()) << "missing .expect for " << name;
      std::getline(ef, expectLine);
    }

    support::Socket conn = support::connectUnix(ts.sock);
    if (directive == "frame-json") {
      ASSERT_TRUE(support::writeFrame(conn.fd(), rest.str())) << name;
    } else if (directive == "raw-hex") {
      std::string bytes;
      std::istringstream tokens(rest.str());
      std::string line;
      while (std::getline(tokens, line)) {
        if (!line.empty() && line[0] == '#') continue;
        std::istringstream lt(line);
        std::string tok;
        while (lt >> tok)
          bytes.push_back(static_cast<char>(std::stoul(tok, nullptr, 16)));
      }
      ASSERT_TRUE(support::sendAll(conn.fd(), bytes.data(), bytes.size())) << name;
      conn.shutdownWrite();  // malformed stream ends here; response still readable
    } else {
      FAIL() << name << ": unknown directive '" << directive << "'";
    }

    std::string body;
    ASSERT_EQ(support::readFrame(conn.fd(), body, 64u << 20, 20'000), support::FrameStatus::Ok)
        << name << ": no response frame";
    std::optional<serve::ResponseEnvelope> env;
    ASSERT_NO_THROW(env = serve::parseResponseEnvelope(obs::Json::parse(body))) << name;
    ASSERT_TRUE(env.has_value()) << name << ": bad envelope " << body;
    if (expectLine == "ok") {
      EXPECT_TRUE(env->ok) << name << ": " << body;
    } else {
      EXPECT_FALSE(env->ok) << name << ": " << body;
      EXPECT_EQ(env->errorCode, expectLine) << name << ": " << body;
    }

    // The daemon must survive every corpus case: a fresh request succeeds.
    EXPECT_TRUE(envelope(rpc(ts, R"({"proto":1,"op":"ping"})")).ok) << "daemon died after " << name;
  }
  EXPECT_GE(cases, 10u) << "wire corpus went missing";
}

TEST(ServerTest, ForgedDesignHashIsRejectedAndNeverCached) {
  TestServer ts;
  const std::string forged = "00112233445566778899aabbccddeeff";

  // Text + mismatched hash: E0604, for both run and compile.
  obs::Json req = runRequest(kCounterFir, 8, {{"en", 1}});
  req["design_hash"] = forged;
  serve::ResponseEnvelope env = envelope(rpc(ts, req.dump(0)));
  EXPECT_FALSE(env.ok);
  EXPECT_EQ(env.errorCode, serve::kErrBadRequest);
  obs::Json creq = obs::Json::object();
  creq["proto"] = uint64_t{serve::kProtoMax};
  creq["op"] = "compile";
  creq["design"] = kCounterFir;
  creq["design_hash"] = forged;
  EXPECT_EQ(envelope(rpc(ts, creq.dump(0))).errorCode, serve::kErrBadRequest);

  // The poisoning attempt populated nothing: the forged key still misses,
  // so a victim whose design legitimately hashes there would compile fresh.
  obs::Json byHash = obs::Json::object();
  byHash["proto"] = uint64_t{serve::kProtoMax};
  byHash["op"] = "run";
  byHash["design_hash"] = forged;
  byHash["cycles"] = uint64_t{8};
  EXPECT_EQ(envelope(rpc(ts, byHash.dump(0))).errorCode, serve::kErrUnknownDesign);

  // A client double-checking with the MATCHING hash is admitted.
  obs::Json good = runRequest(kCounterFir, 8, {{"en", 1}});
  good["design_hash"] = serve::designHash(kCounterFir, serve::RequestOptions{});
  EXPECT_TRUE(envelope(rpc(ts, good.dump(0))).ok);
}

TEST(ServerTest, BatchMemoryAdmissionScalesWithLiveEngines) {
  uint64_t stateBytes = sim::estimateStateBytes(sim::buildFromFirrtl(kCounterFir));
  ASSERT_GT(stateBytes, 0u);
  serve::ServerOptions opts;
  opts.farmWorkers = 4;
  opts.limits.maxSimMemBytes = stateBytes * 2;  // one engine fits, four do not
  TestServer ts(opts);

  // Solo and a 2-instance batch (2 live engines == ceiling) are admitted...
  EXPECT_TRUE(envelope(rpc(ts, runRequest(kCounterFir, 16, {{"en", 1}}).dump(0))).ok);
  obs::Json small = runRequest(kCounterFir, 16, {{"en", 1}});
  small["batch"] = 2u;
  EXPECT_TRUE(envelope(rpc(ts, small.dump(0))).ok);

  // ...but batch=8 keeps min(8, farmWorkers)=4 engines live: 4x the state
  // against a 2x ceiling must be rejected up front, not allocated.
  obs::Json batched = runRequest(kCounterFir, 16, {{"en", 1}});
  batched["batch"] = 8u;
  serve::ResponseEnvelope env = envelope(rpc(ts, batched.dump(0)));
  EXPECT_FALSE(env.ok);
  EXPECT_EQ(env.errorCode, serve::kErrResourceLimit);
}

TEST(SocketTest, ListenUnixRefusesNonSocketPathsAndLiveDaemons) {
  char tmpl[] = "/tmp/essent_sockguard_XXXXXX";
  char* made = mkdtemp(tmpl);
  ASSERT_NE(made, nullptr);
  std::string dir = made;

  // A regular file at the path is refused AND survives the attempt.
  std::string file = dir + "/precious.txt";
  { std::ofstream f(file); f << "do not delete"; }
  EXPECT_THROW(support::listenUnix(file), std::runtime_error);
  EXPECT_TRUE(std::filesystem::exists(file));
  EXPECT_EQ(readFileOrDie(file), "do not delete");

  // A second daemon must not steal a live listener's socket...
  std::string sock = dir + "/live.sock";
  {
    support::Socket first = support::listenUnix(sock);
    ASSERT_TRUE(first.valid());
    EXPECT_THROW(support::listenUnix(sock), std::runtime_error);
    EXPECT_TRUE(std::filesystem::exists(sock)) << "refusal unlinked the live socket";
  }
  // ...but a stale socket left by a dead process is replaced normally.
  ASSERT_TRUE(std::filesystem::exists(sock));
  support::Socket second = support::listenUnix(sock);
  EXPECT_TRUE(second.valid());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(ServerTest, PerRequestErrorIsolationOnOneConnection) {
  TestServer ts;
  support::Socket conn = support::connectUnix(ts.sock);

  // A rejected design renders as E0605 with front-end diagnostics...
  obs::Json bad = obs::Json::object();
  bad["proto"] = uint64_t{serve::kProtoMax};
  bad["op"] = "compile";
  bad["design"] = "circuit Broken :\n  module Broken :\n    output o : UInt<8>\n    o <= q\n";
  std::optional<obs::Json> r1 = rpcOn(conn, bad.dump(0));
  serve::ResponseEnvelope e1 = envelope(r1);
  EXPECT_FALSE(e1.ok);
  EXPECT_EQ(e1.errorCode, serve::kErrDesignRejected);
  ASSERT_NE(r1->at("error").find("diagnostics"), nullptr);
  EXPECT_GT(r1->at("error").at("diagnostics").size(), 0u);

  // ...and poisons neither the connection nor the worker.
  EXPECT_TRUE(envelope(rpcOn(conn, R"({"proto":1,"op":"ping"})")).ok);
  std::optional<obs::Json> r3 = rpcOn(conn, runRequest(kCounterFir, 16).dump(0));
  EXPECT_TRUE(envelope(r3).ok);
}

TEST(ServerTest, DeadlineRendersAsE0607) {
  serve::ServerOptions opts;
  opts.requestDeadlineMs = 100;
  TestServer ts(opts);
  // 50M cycles of GCD cannot finish inside 100ms; the in-loop guard check
  // must cut the request off and render E0504 as a wire E0607.
  Clock::time_point t0 = Clock::now();
  std::optional<obs::Json> resp = rpc(ts, runRequest(gcdFir(), 50'000'000).dump(0));
  serve::ResponseEnvelope env = envelope(resp);
  EXPECT_FALSE(env.ok);
  EXPECT_EQ(env.errorCode, serve::kErrDeadline);
  EXPECT_LT(msSince(t0), 20'000);  // cut off promptly, not after 50M cycles
  // The worker survived the kill.
  EXPECT_TRUE(envelope(rpc(ts, R"({"proto":1,"op":"ping"})")).ok);
}

TEST(ServerTest, CycleCeilingRendersAsE0606) {
  serve::ServerOptions opts;
  opts.maxCyclesPerRequest = 1000;
  TestServer ts(opts);
  serve::ResponseEnvelope env = envelope(rpc(ts, runRequest(kCounterFir, 2000).dump(0)));
  EXPECT_FALSE(env.ok);
  EXPECT_EQ(env.errorCode, serve::kErrResourceLimit);
  // batch multiplies the budget: 400 cycles x 4 instances = 1600 > 1000.
  obs::Json batched = runRequest(kCounterFir, 400);
  batched["batch"] = 4u;
  serve::ResponseEnvelope benv = envelope(rpc(ts, batched.dump(0)));
  EXPECT_FALSE(benv.ok);
  EXPECT_EQ(benv.errorCode, serve::kErrResourceLimit);
}

TEST(ServerTest, FullQueueShedsWithRetryHint) {
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.queueCapacity = 1;
  opts.enableTestHooks = true;
  opts.retryAfterMs = 123;
  TestServer ts(opts);

  // Occupy the only worker...
  support::Socket busy = support::connectUnix(ts.sock);
  ASSERT_TRUE(support::writeFrame(busy.fd(), R"({"proto":1,"op":"ping","sleep_ms":1500})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // ...fill the queue behind it...
  support::Socket queued = support::connectUnix(ts.sock);
  ASSERT_TRUE(support::writeFrame(queued.fd(), R"({"proto":1,"op":"ping"})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...and every further connection is shed at the door with E0609.
  int shed = 0;
  for (int i = 0; i < 3; i++) {
    std::optional<obs::Json> resp = rpc(ts, R"({"proto":1,"op":"ping"})");
    serve::ResponseEnvelope env = envelope(resp);
    EXPECT_FALSE(env.ok);
    EXPECT_EQ(env.errorCode, serve::kErrOverloaded);
    EXPECT_EQ(env.retryAfterMs, 123);
    shed++;
  }
  EXPECT_EQ(shed, 3);

  // The occupied worker and queued connection still complete normally.
  // (Connections are keep-alive: close `busy` after its response so the
  // worker moves on to the queued one instead of awaiting another frame.)
  std::string body;
  EXPECT_EQ(support::readFrame(busy.fd(), body, 1u << 20, 20'000), support::FrameStatus::Ok);
  busy.close();
  EXPECT_EQ(support::readFrame(queued.fd(), body, 1u << 20, 20'000), support::FrameStatus::Ok);
  EXPECT_GE(ts.server->stats().connectionsSheded, 3u);
}

TEST(ServerTest, DrainFinishesInFlightAndRejectsQueued) {
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.queueCapacity = 4;
  opts.enableTestHooks = true;
  TestServer ts(opts);

  // In-flight request: holds the worker well past the drain signal.
  support::Socket inflight = support::connectUnix(ts.sock);
  ASSERT_TRUE(support::writeFrame(inflight.fd(), R"({"proto":1,"op":"ping","sleep_ms":2000})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Queued-but-unserved connection: must be answered, not abandoned.
  support::Socket queued = support::connectUnix(ts.sock);
  ASSERT_TRUE(support::writeFrame(queued.fd(), R"({"proto":1,"op":"ping"})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Clock::time_point t0 = Clock::now();
  ts.server->requestDrain();
  EXPECT_TRUE(ts.server->draining());

  // The in-flight request completes successfully (the test-hook sleep is
  // drain-aware, so this returns quickly rather than after 2s).
  std::string body;
  ASSERT_EQ(support::readFrame(inflight.fd(), body, 1u << 20, 20'000), support::FrameStatus::Ok);
  EXPECT_TRUE(serve::parseResponseEnvelope(obs::Json::parse(body))->ok);

  // The queued connection gets a structured E0610, not a dropped socket.
  ASSERT_EQ(support::readFrame(queued.fd(), body, 1u << 20, 20'000), support::FrameStatus::Ok);
  std::optional<serve::ResponseEnvelope> qenv =
      serve::parseResponseEnvelope(obs::Json::parse(body));
  ASSERT_TRUE(qenv.has_value());
  EXPECT_FALSE(qenv->ok);
  EXPECT_EQ(qenv->errorCode, serve::kErrDraining);

  ts.server->waitDrained();
  EXPECT_LT(msSince(t0), 20'000);
  EXPECT_GE(ts.server->stats().connectionsDrained, 1u);
}

TEST(ServerTest, RemoteShutdownGatedByOption) {
  {
    TestServer ts;  // default: shutdown disabled
    serve::ResponseEnvelope env = envelope(rpc(ts, R"({"proto":1,"op":"shutdown"})"));
    EXPECT_FALSE(env.ok);
    EXPECT_EQ(env.errorCode, serve::kErrBadRequest);
    EXPECT_FALSE(ts.server->draining());
  }
  {
    serve::ServerOptions opts;
    opts.allowRemoteShutdown = true;
    TestServer ts(opts);
    serve::ResponseEnvelope env = envelope(rpc(ts, R"({"proto":1,"op":"shutdown"})"));
    EXPECT_TRUE(env.ok);
    ts.server->waitDrained();
    EXPECT_TRUE(ts.server->draining());
  }
}

TEST(ServerTest, EvictionMakesHashUnknown) {
  serve::ServerOptions opts;
  opts.cacheCapacity = 1;
  TestServer ts(opts);

  obs::Json creq = obs::Json::object();
  creq["proto"] = uint64_t{serve::kProtoMax};
  creq["op"] = "compile";
  creq["design"] = kCounterFir;
  std::optional<obs::Json> c1 = rpc(ts, creq.dump(0));
  ASSERT_TRUE(envelope(c1).ok);
  std::string counterHash = c1->at("design_hash").asStr();

  // Capacity 1: compiling a second design evicts the first...
  creq["design"] = gcdFir();
  ASSERT_TRUE(envelope(rpc(ts, creq.dump(0))).ok);
  obs::Json rreq = obs::Json::object();
  rreq["proto"] = uint64_t{serve::kProtoMax};
  rreq["op"] = "run";
  rreq["design_hash"] = counterHash;
  rreq["cycles"] = uint64_t{8};
  serve::ResponseEnvelope env = envelope(rpc(ts, rreq.dump(0)));
  EXPECT_FALSE(env.ok);
  EXPECT_EQ(env.errorCode, serve::kErrUnknownDesign);

  // ...and an explicit evict does the same for the survivor.
  std::string gcdHash = serve::designHash(gcdFir(), serve::RequestOptions{});
  obs::Json ereq = obs::Json::object();
  ereq["proto"] = uint64_t{serve::kProtoMax};
  ereq["op"] = "evict";
  ereq["design_hash"] = gcdHash;
  std::optional<obs::Json> eresp = rpc(ts, ereq.dump(0));
  ASSERT_TRUE(envelope(eresp).ok);
  EXPECT_TRUE(eresp->at("evicted").asBool());
  rreq["design_hash"] = gcdHash;
  EXPECT_EQ(envelope(rpc(ts, rreq.dump(0))).errorCode, serve::kErrUnknownDesign);
  EXPECT_GE(ts.server->stats().cache.evictions, 1u);
}

TEST(ServerTest, StatusReportsConfigurationAndStats) {
  serve::ServerOptions opts;
  opts.workers = 3;
  opts.queueCapacity = 7;
  TestServer ts(opts);
  ASSERT_TRUE(envelope(rpc(ts, R"({"proto":1,"op":"ping"})")).ok);
  std::optional<obs::Json> resp = rpc(ts, R"({"proto":1,"op":"status"})");
  ASSERT_TRUE(envelope(resp).ok);
  EXPECT_FALSE(resp->at("draining").asBool());
  EXPECT_EQ(resp->at("workers").asUInt(), 3u);
  EXPECT_EQ(resp->at("queue_capacity").asUInt(), 7u);
  EXPECT_GE(resp->at("stats").at("requests_served").asUInt(), 1u);
  EXPECT_FALSE(resp->at("chaos").asBool());
}

// --- chaos -----------------------------------------------------------------

// A pinned-seed campaign of mixed valid/hostile traffic against a chaos
// server. The invariant under fault injection is binary: every outcome is
// either a structured E06xx/ok response or a clean transport cut — never a
// hang, a garbage frame, or a dead daemon.
TEST(ChaosTest, CampaignYieldsOnlyStructuredResponsesOrCleanCuts) {
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.chaos.enabled = true;
  opts.chaos.seed = 20260808;
  opts.chaos.slowMs = 5;  // keep the campaign fast
  TestServer ts(opts);

  const int kCases = 120;
  int structured = 0, cuts = 0, injected = 0;
  for (int i = 0; i < kCases; i++) {
    std::string payload;
    switch (i % 5) {
      case 0: payload = R"({"proto":1,"op":"ping"})"; break;
      case 1: payload = runRequest(kCounterFir, 64, {{"en", 1}}).dump(0); break;
      case 2: payload = R"({"proto":1,"op":"status"})"; break;
      case 3: payload = R"({"proto":1,"op": not json)"; break;
      case 4: payload = R"({"proto":1,"op":"run","design_hash":"00112233445566778899aabbccddeeff","cycles":4})"; break;
    }
    std::optional<obs::Json> resp = rpc(ts, payload);
    if (!resp) {
      cuts++;  // chaos drop/disconnect: tolerated, must not kill the daemon
      continue;
    }
    std::optional<serve::ResponseEnvelope> env = serve::parseResponseEnvelope(*resp);
    ASSERT_TRUE(env.has_value()) << "case " << i << ": unstructured " << resp->dump(0);
    structured++;
    if (!env->ok && env->errorCode == serve::kErrInjectedFault) injected++;
  }
  EXPECT_GE(structured, kCases / 3) << "chaos ate nearly everything";
  EXPECT_GT(injected, 0) << "failProb 0.10 over 120 cases never fired";

  // Survival: the daemon still answers clean traffic (retry through drops).
  bool alive = false;
  for (int attempt = 0; attempt < 10 && !alive; attempt++) {
    std::optional<obs::Json> resp = rpc(ts, R"({"proto":1,"op":"ping"})");
    if (resp) {
      std::optional<serve::ResponseEnvelope> env = serve::parseResponseEnvelope(*resp);
      alive = env && env->ok;
    }
  }
  EXPECT_TRUE(alive) << "daemon unreachable after chaos campaign";
  EXPECT_GT(ts.server->stats().chaosInjected, 0u);
}

TEST(ChaosTest, PinnedSeedReplaysIdenticalFaultSchedule) {
  // Two servers, same seed: the same request sequence must see the same
  // per-connection fault decisions (the campaign debugging contract).
  auto faultSignature = [](uint64_t seed) {
    serve::ServerOptions opts;
    opts.workers = 1;
    opts.chaos.enabled = true;
    opts.chaos.seed = seed;
    opts.chaos.slowMs = 1;
    TestServer ts(opts);
    std::string sig;
    for (int i = 0; i < 40; i++) {
      std::optional<obs::Json> resp = rpc(ts, R"({"proto":1,"op":"ping"})");
      if (!resp) {
        sig += 'C';  // cut
      } else {
        std::optional<serve::ResponseEnvelope> env = serve::parseResponseEnvelope(*resp);
        sig += (env && env->ok) ? 'O' : 'E';
      }
    }
    return sig;
  };
  std::string a = faultSignature(42);
  std::string b = faultSignature(42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, std::string(40, 'O')) << "chaos never fired at seed 42";
}

// --- shared farm deadline (FarmOptions::guard) ------------------------------

TEST(FarmDeadlineTest, SharedGuardStopsAllInstancesTogether) {
  std::shared_ptr<const sim::CompiledDesign> design = compileText(kCounterFir);

  support::ResourceLimits lim = support::ResourceLimits::unlimited();
  lim.wallDeadlineMs = 200;
  support::ResourceGuard guard(lim);

  core::FarmOptions fo;
  fo.workers = 2;
  fo.guard = &guard;
  fo.guardCheckInterval = 512;
  core::SimFarm farm(design, fo);

  // 4 instances x effectively-unbounded budgets against ONE 200ms wall
  // budget. With per-instance deadlines (the bug this guards against) the
  // batch would take ~4x the budget on 2 workers; with the shared guard
  // every instance dies within one check interval of the same moment.
  std::vector<core::FarmJob> jobs(4);
  for (size_t i = 0; i < jobs.size(); i++) {
    jobs[i].name = "j" + std::to_string(i);
    jobs[i].maxCycles = 4'000'000'000ull;
    jobs[i].init = [](sim::Engine& e) { e.poke("en", 1); };
  }
  Clock::time_point t0 = Clock::now();
  core::FarmReport report = farm.run(jobs);
  int64_t wallMs = msSince(t0);

  ASSERT_EQ(report.instances.size(), 4u);
  for (const core::FarmInstanceResult& r : report.instances) {
    EXPECT_FALSE(r.error.empty()) << r.name << " outlived the shared deadline";
    EXPECT_NE(r.error.find("E0504"), std::string::npos) << r.name << ": " << r.error;
  }
  // One shared budget, not 4 per-instance ones. The slack absorbs scheduler
  // noise and sanitizer overhead; the 4x-overshoot failure mode would be
  // >=800ms of simulation alone.
  EXPECT_LT(wallMs, 20'000);
  EXPECT_FALSE(report.allOk());
}

TEST(FarmDeadlineTest, GenerousSharedGuardDoesNotFalselyKill) {
  std::shared_ptr<const sim::CompiledDesign> design = compileText(kCounterFir);
  support::ResourceLimits lim = support::ResourceLimits::unlimited();
  lim.wallDeadlineMs = 60'000;
  support::ResourceGuard guard(lim);

  core::FarmOptions fo;
  fo.workers = 2;
  fo.guard = &guard;
  core::SimFarm farm(design, fo);

  std::vector<core::FarmJob> jobs(4);
  for (size_t i = 0; i < jobs.size(); i++) {
    jobs[i].name = "j" + std::to_string(i);
    jobs[i].maxCycles = 10'000;
  }
  core::FarmReport report = farm.run(jobs);
  EXPECT_TRUE(report.allOk());
  EXPECT_EQ(report.totalCycles, 40'000u);
}

TEST(FarmDeadlineTest, LaneFarmHonorsSharedGuard) {
  std::shared_ptr<const sim::CompiledDesign> design = compileText(kCounterFir);
  support::ResourceLimits lim = support::ResourceLimits::unlimited();
  lim.wallDeadlineMs = 200;
  support::ResourceGuard guard(lim);

  core::FarmOptions fo;
  fo.kind = sim::EngineKind::Lane;
  fo.engine.lanes = 4;
  fo.workers = 2;
  fo.guard = &guard;
  fo.guardCheckInterval = 512;
  core::SimFarm farm(design, fo);

  std::vector<core::FarmJob> jobs(8);
  for (size_t i = 0; i < jobs.size(); i++) {
    jobs[i].name = "lane" + std::to_string(i);
    jobs[i].maxCycles = 4'000'000'000ull;
  }
  Clock::time_point t0 = Clock::now();
  core::FarmReport report = farm.run(jobs);
  int64_t wallMs = msSince(t0);

  // Deadline-killed lanes must NOT fall back to scalar engines (a retry
  // would just burn the dead budget again, serially).
  for (const core::FarmInstanceResult& r : report.instances)
    EXPECT_NE(r.error.find("E0504"), std::string::npos) << r.name << ": " << r.error;
  EXPECT_LT(wallMs, 20'000);
}

}  // namespace
