// Tests for the FIRRTL frontend: lexer, parser, printer round-trip, width
// inference, and the lowering passes (instance flattening, when expansion).
#include <gtest/gtest.h>

#include "firrtl/lexer.h"
#include "firrtl/passes.h"
#include "firrtl/printer.h"
#include "firrtl/widths.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"

namespace essent::firrtl {
namespace {

TEST(Lexer, BasicTokens) {
  auto toks = lex("circuit Foo :\n  module Foo :\n    input a : UInt<8>\n");
  ASSERT_GT(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokKind::Ident);
  EXPECT_EQ(toks[0].text, "circuit");
  EXPECT_EQ(toks[1].text, "Foo");
  EXPECT_EQ(toks[2].text, ":");
  EXPECT_EQ(toks[3].kind, TokKind::Newline);
  EXPECT_EQ(toks[4].kind, TokKind::Indent);
}

TEST(Lexer, IndentDedentBalance) {
  auto toks = lex("a :\n  b\n    c\n  d\ne\n");
  int depth = 0, maxDepth = 0;
  for (const auto& t : toks) {
    if (t.kind == TokKind::Indent) depth++;
    if (t.kind == TokKind::Dedent) depth--;
    maxDepth = std::max(maxDepth, depth);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(maxDepth, 2);
}

TEST(Lexer, CommentsAndInfoDropped) {
  auto toks = lex("node x = y ; a comment\nnode z = w @[file.fir 3:2]\n");
  for (const auto& t : toks) {
    EXPECT_NE(t.text, "comment");
    EXPECT_NE(t.text, "file.fir");
  }
}

TEST(Lexer, HyphenatedKeywords) {
  auto toks = lex("read-latency => 1\n");
  EXPECT_EQ(toks[0].text, "read-latency");
  EXPECT_EQ(toks[1].text, "=>");
  EXPECT_EQ(toks[2].intValue, 1);
}

TEST(Lexer, NegativeIntAndString) {
  auto toks = lex("SInt<8>(-5) \"hi\\n\"\n");
  bool sawNeg = false, sawStr = false;
  for (const auto& t : toks) {
    if (t.kind == TokKind::IntLit && t.intValue == -5) sawNeg = true;
    if (t.kind == TokKind::StringLit && t.text == "hi\n") sawStr = true;
  }
  EXPECT_TRUE(sawNeg);
  EXPECT_TRUE(sawStr);
}

TEST(Lexer, BlankAndCommentLinesDontDedent) {
  auto toks = lex("a :\n  b\n\n  ; comment line\n  c\n");
  int dedents = 0;
  for (const auto& t : toks)
    if (t.kind == TokKind::Dedent) dedents++;
  EXPECT_EQ(dedents, 1);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("printf(clk, en, \"oops\n"), LexError);
}

constexpr const char* kCounter = R"(
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output count : UInt<8>

    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    count <= r
)";

TEST(Parser, ParsesCounter) {
  auto c = parseCircuit(kCounter);
  EXPECT_EQ(c->name, "Counter");
  ASSERT_EQ(c->modules.size(), 1u);
  const Module& m = *c->modules[0];
  EXPECT_EQ(m.ports.size(), 4u);
  EXPECT_EQ(m.ports[0].type.kind, TypeKind::Clock);
  EXPECT_EQ(m.ports[3].dir, PortDir::Output);
  ASSERT_EQ(m.body.size(), 3u);
  EXPECT_EQ(m.body[0]->kind, StmtKind::Reg);
  ASSERT_NE(m.body[0]->resetCond, nullptr);
  EXPECT_EQ(m.body[1]->kind, StmtKind::When);
  EXPECT_EQ(m.body[2]->kind, StmtKind::Connect);
}

TEST(Parser, LiteralForms) {
  auto c = parseCircuit(R"(
circuit Lits :
  module Lits :
    output o : UInt<16>
    node a = UInt<16>("hff")
    node b = UInt<16>("b1010")
    node c = UInt<16>("o17")
    node d = UInt(300)
    node e = SInt<8>(-5)
    o <= a
)");
  const Module& m = *c->modules[0];
  EXPECT_EQ(m.body[0]->expr->value.toU64(), 0xffu);
  EXPECT_EQ(m.body[1]->expr->value.toU64(), 0b1010u);
  EXPECT_EQ(m.body[2]->expr->value.toU64(), 017u);
  EXPECT_EQ(m.body[3]->expr->litWidth, 9u);  // 300 needs 9 bits
  EXPECT_EQ(m.body[3]->expr->value.toU64(), 300u);
  EXPECT_EQ(m.body[4]->expr->value.toU64(), 0xfbu);  // -5 in 8 bits
}

TEST(Parser, PrimOpsAndMux) {
  auto c = parseCircuit(R"(
circuit Ops :
  module Ops :
    input a : UInt<8>
    input b : UInt<8>
    input s : UInt<1>
    output o : UInt<8>
    node sum = add(a, b)
    node sliced = bits(sum, 7, 0)
    node m = mux(s, sliced, a)
    node v = validif(s, b)
    o <= m
)");
  const Module& m = *c->modules[0];
  EXPECT_EQ(m.body[0]->expr->kind, ExprKind::Prim);
  EXPECT_EQ(m.body[0]->expr->op, PrimOpKind::Add);
  EXPECT_EQ(m.body[1]->expr->consts.size(), 2u);
  EXPECT_EQ(m.body[1]->expr->consts[0], 7);
  EXPECT_EQ(m.body[2]->expr->kind, ExprKind::Mux);
  EXPECT_EQ(m.body[3]->expr->kind, ExprKind::ValidIf);
}

TEST(Parser, RegWithBlockFormReset) {
  // Chisel emits the reset clause on its own indented line.
  auto c = parseCircuit(R"(
circuit R :
  module R :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<8>
    reg a : UInt<8>, clock with :
      reset => (reset, UInt<8>(7))
    reg b : UInt<8>, clock with :
      (reset => (reset, UInt<8>(9)))
    a <= a
    b <= b
    o <= a
)");
  const Module& m = *c->modules[0];
  ASSERT_EQ(m.body[0]->kind, StmtKind::Reg);
  ASSERT_NE(m.body[0]->resetCond, nullptr);
  EXPECT_EQ(m.body[0]->resetInit->value.toU64(), 7u);
  ASSERT_NE(m.body[1]->resetCond, nullptr);
  EXPECT_EQ(m.body[1]->resetInit->value.toU64(), 9u);
}

TEST(Parser, MemBlock) {
  auto c = parseCircuit(R"(
circuit M :
  module M :
    input clock : Clock
    input addr : UInt<4>
    output dout : UInt<32>
    mem table :
      data-type => UInt<32>
      depth => 16
      read-latency => 0
      write-latency => 1
      read-under-write => undefined
      reader => r
      writer => w
    table.r.addr <= addr
    table.r.en <= UInt<1>(1)
    table.r.clk <= clock
    table.w.addr <= addr
    table.w.en <= UInt<1>(0)
    table.w.clk <= clock
    table.w.data <= UInt<32>(0)
    table.w.mask <= UInt<1>(0)
    dout <= table.r.data
)");
  const Module& m = *c->modules[0];
  const Stmt& mem = *m.body[0];
  EXPECT_EQ(mem.kind, StmtKind::Mem);
  EXPECT_EQ(mem.depth, 16u);
  ASSERT_EQ(mem.readers.size(), 1u);
  ASSERT_EQ(mem.writers.size(), 1u);
  EXPECT_EQ(mem.readers[0].name, "r");
}

TEST(Parser, ElseWhenChain) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input a : UInt<1>
    input b : UInt<1>
    output o : UInt<2>
    o <= UInt<2>(0)
    when a :
      o <= UInt<2>(1)
    else when b :
      o <= UInt<2>(2)
    else :
      o <= UInt<2>(3)
)");
  const Module& m = *c->modules[0];
  const Stmt& w = *m.body[1];
  EXPECT_EQ(w.kind, StmtKind::When);
  ASSERT_EQ(w.elseBody.size(), 1u);
  EXPECT_EQ(w.elseBody[0]->kind, StmtKind::When);
  EXPECT_EQ(w.elseBody[0]->elseBody.size(), 1u);
}

TEST(Parser, PrintfAndStop) {
  auto c = parseCircuit(R"(
circuit P :
  module P :
    input clock : Clock
    input en : UInt<1>
    input v : UInt<8>
    printf(clock, en, "v=%d\n", v)
    stop(clock, en, 42)
)");
  const Module& m = *c->modules[0];
  EXPECT_EQ(m.body[0]->kind, StmtKind::Printf);
  EXPECT_EQ(m.body[0]->format, "v=%d\n");
  EXPECT_EQ(m.body[0]->printArgs.size(), 1u);
  EXPECT_EQ(m.body[1]->kind, StmtKind::Stop);
  EXPECT_EQ(m.body[1]->exitCode, 42);
}

TEST(Parser, ErrorsAreInformative) {
  EXPECT_THROW(parseCircuit("circuit X :\n  module Y :\n    skip\n"), ParseError);
  EXPECT_THROW(parseCircuit("circuit X :\n  module X :\n    wire w\n"), ParseError);
  EXPECT_THROW(parseCircuit("not firrtl at all"), ParseError);
}

TEST(Printer, RoundTripsCounter) {
  auto c1 = parseCircuit(kCounter);
  std::string text = printCircuit(*c1);
  auto c2 = parseCircuit(text);
  // Round-trip fixpoint: printing the reparse gives identical text.
  EXPECT_EQ(printCircuit(*c2), text);
}

TEST(Widths, InfersPrimOpWidths) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input a : UInt<8>
    input b : UInt<12>
    output o : UInt<21>
    node s = add(a, b)
    node m = mul(a, b)
    node e = eq(a, pad(b, 8))
    o <= m
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  inferModuleWidths(*flat);
  const Module& m = *flat;
  bool checkedAdd = false, checkedMul = false, checkedEq = false;
  for (const auto& s : m.body) {
    if (s->kind != StmtKind::Node) continue;
    if (s->name == "s") {
      EXPECT_EQ(s->expr->type.width, 13u);
      checkedAdd = true;
    }
    if (s->name == "m") {
      EXPECT_EQ(s->expr->type.width, 20u);
      checkedMul = true;
    }
    if (s->name == "e") {
      EXPECT_EQ(s->expr->type.width, 1u);
      checkedEq = true;
    }
  }
  EXPECT_TRUE(checkedAdd && checkedMul && checkedEq);
}

TEST(Widths, RejectsUndefinedReference) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    output o : UInt<8>
    o <= nosuch
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  EXPECT_THROW(inferModuleWidths(*flat), WidthError);
}

TEST(Widths, RejectsMixedSignedness) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input a : UInt<8>
    input b : SInt<8>
    output o : UInt<9>
    o <= add(a, b)
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  EXPECT_THROW(inferModuleWidths(*flat), WidthError);
}

TEST(Widths, BitsRangeChecked) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input a : UInt<8>
    output o : UInt<4>
    o <= bits(a, 9, 2)
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  EXPECT_THROW(inferModuleWidths(*flat), WidthError);
}

TEST(Widths, InfersUnspecifiedWidthsForward) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input clock : Clock
    input a : UInt<8>
    input b : UInt<12>
    output o : UInt
    wire s : UInt
    wire prod : UInt
    reg d : UInt, clock
    s <= add(a, b)
    prod <= mul(s, a)
    d <= prod
    o <= d
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  inferUnknownWidths(*flat);
  SymbolTable st = SymbolTable::build(*flat);
  EXPECT_EQ(st.lookup("s").width, 13u);      // add widens
  EXPECT_EQ(st.lookup("prod").width, 21u);   // mul sums widths
  EXPECT_EQ(st.lookup("d").width, 21u);      // through the register
  EXPECT_TRUE(st.lookup("d").widthKnown);
  const Port* o = flat->findPort("o");
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->type.width, 21u);
  inferModuleWidths(*flat);  // full inference must now succeed
}

TEST(Widths, UnknownInputPortRejected) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input a : UInt
    output o : UInt<8>
    o <= pad(a, 8)
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  EXPECT_THROW(inferUnknownWidths(*flat), WidthError);
}

TEST(Widths, SelfReferentialWidthRejected) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input clock : Clock
    output o : UInt<8>
    reg r : UInt, clock
    r <= tail(add(r, UInt<4>(1)), 1)
    o <= pad(bits(r, 0, 0), 8)
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  EXPECT_THROW(inferUnknownWidths(*flat), WidthError);
}

TEST(Widths, InferredDesignSimulates) {
  // End-to-end through the standard pipeline.
  sim::SimIR ir = sim::buildFromFirrtl(R"(
circuit I :
  module I :
    input clock : Clock
    input x : UInt<6>
    output o : UInt
    wire doubled : UInt
    doubled <= add(x, x)
    o <= doubled
)");
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("x", 30);
  eng.tick();
  EXPECT_EQ(eng.peek("o"), 60u);
  EXPECT_EQ(ir.signals[static_cast<size_t>(ir.findSignal("o"))].width, 7u);
}

TEST(Passes, FlattenPrefixesChildNames) {
  auto c = parseCircuit(R"(
circuit Top :
  module Child :
    input x : UInt<8>
    output y : UInt<8>
    node doubled = tail(add(x, x), 1)
    y <= doubled
  module Top :
    input in : UInt<8>
    output out : UInt<8>
    inst c1 of Child
    inst c2 of Child
    c1.x <= in
    c2.x <= c1.y
    out <= c2.y
)");
  auto flat = flattenInstances(*c);
  // No instances remain; prefixed wires exist.
  SymbolTable st = SymbolTable::build(*flat);
  EXPECT_TRUE(st.contains("c1.x"));
  EXPECT_TRUE(st.contains("c2.y"));
  bool sawPrefixedNode = false;
  for (const auto& s : flat->body) {
    EXPECT_NE(s->kind, StmtKind::Inst);
    if (s->kind == StmtKind::Node && (s->name == "c1.doubled" || s->name == "c2.doubled"))
      sawPrefixedNode = true;
  }
  EXPECT_TRUE(sawPrefixedNode);
}

TEST(Passes, FlattenDetectsCycle) {
  auto c = parseCircuit(R"(
circuit A :
  module B :
    input x : UInt<1>
    inst a of A
    a.x <= x
  module A :
    input x : UInt<1>
    inst b of B
    b.x <= x
)");
  EXPECT_THROW(flattenInstances(*c), WidthError);
}

TEST(Passes, ExpandWhensLastConnectWins) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input p : UInt<1>
    output o : UInt<4>
    o <= UInt<4>(1)
    o <= UInt<4>(2)
    when p :
      o <= UInt<4>(3)
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  int connects = 0;
  for (const auto& s : flat->body) {
    EXPECT_NE(s->kind, StmtKind::When);
    if (s->kind == StmtKind::Connect && s->name == "o") {
      connects++;
      // mux(p, 3, 2)
      EXPECT_EQ(s->expr->kind, ExprKind::Mux);
      EXPECT_EQ(s->expr->args[1]->value.toU64(), 3u);
      EXPECT_EQ(s->expr->args[2]->value.toU64(), 2u);
    }
  }
  EXPECT_EQ(connects, 1);
}

TEST(Passes, ExpandWhensRegisterHoldsByDefault) {
  auto c = parseCircuit(kCounter);
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  for (const auto& s : flat->body) {
    if (s->kind == StmtKind::Connect && s->name == "r") {
      // mux(en, tail(add(r,1),1), r): default arm references the register.
      ASSERT_EQ(s->expr->kind, ExprKind::Mux);
      EXPECT_EQ(s->expr->args[2]->kind, ExprKind::Ref);
      EXPECT_EQ(s->expr->args[2]->name, "r");
    }
  }
}

TEST(Passes, ExpandWhensNestedConditions) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input a : UInt<1>
    input b : UInt<1>
    output o : UInt<4>
    o <= UInt<4>(0)
    when a :
      when b :
        o <= UInt<4>(7)
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  inferModuleWidths(*flat);  // must type-check
  for (const auto& s : flat->body) {
    if (s->kind == StmtKind::Connect && s->name == "o") {
      ASSERT_EQ(s->expr->kind, ExprKind::Mux);
      // Condition is and(a, b).
      EXPECT_EQ(s->expr->args[0]->kind, ExprKind::Prim);
      EXPECT_EQ(s->expr->args[0]->op, PrimOpKind::And);
    }
  }
}

TEST(Passes, InvalidateReadsAsZero) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input p : UInt<1>
    output o : UInt<4>
    o is invalid
    when p :
      o <= UInt<4>(9)
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  for (const auto& s : flat->body) {
    if (s->kind == StmtKind::Connect && s->name == "o") {
      ASSERT_EQ(s->expr->kind, ExprKind::Mux);
      EXPECT_EQ(s->expr->args[2]->kind, ExprKind::UIntLit);
      EXPECT_TRUE(s->expr->args[2]->value.isZero());
    }
  }
}

TEST(Passes, PrintfEnableGainsPathCondition) {
  auto c = parseCircuit(R"(
circuit W :
  module W :
    input clock : Clock
    input p : UInt<1>
    input en : UInt<1>
    when p :
      printf(clock, en, "hi\n")
)");
  auto flat = flattenInstances(*c);
  expandWhens(*flat);
  bool sawPrintf = false;
  for (const auto& s : flat->body) {
    if (s->kind == StmtKind::Printf) {
      sawPrintf = true;
      EXPECT_EQ(s->expr->kind, ExprKind::Prim);
      EXPECT_EQ(s->expr->op, PrimOpKind::And);
    }
  }
  EXPECT_TRUE(sawPrintf);
}

}  // namespace
}  // namespace essent::firrtl
