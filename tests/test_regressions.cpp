// Regression corpus: tricky FIRRTL shapes exercised end-to-end through
// build + simulation, each checked either against hand-computed values or
// across engines. These pin down lowering semantics (last-connect, when
// scoping, zero-width values, cross-register feedback, latency-1 memories
// under CCSS, signed corner cases).
#include <gtest/gtest.h>

#include "core/activity_engine.h"
#include "sim/compile.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"
#include "support/bvops.h"
#include "support/strutil.h"

namespace essent {
namespace {

using core::ActivityEngine;
using core::ScheduleOptions;
using sim::EventDrivenEngine;
using sim::FullCycleEngine;
using sim::SimIR;

// Runs the design on all three engines in lock step; returns the full-cycle
// engine value of `probe` after `cycles` ticks with the given stimulus.
uint64_t runAllEngines(const std::string& firrtl, uint64_t cycles, const sim::StimulusFn& stim,
                       const std::string& probe) {
  SimIR ir = sim::buildFromFirrtl(firrtl);
  FullCycleEngine fc(sim::CompiledDesign::compile(ir));
  EventDrivenEngine ev(sim::CompiledDesign::compile(ir));
  ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  auto m1 = sim::compareEngines(fc, ev, cycles, stim);
  EXPECT_FALSE(m1.has_value()) << "event-driven: " << m1->describe();
  FullCycleEngine fc2(sim::CompiledDesign::compile(ir));
  auto m2 = sim::compareEngines(fc2, act, cycles, stim);
  EXPECT_FALSE(m2.has_value()) << "ccss: " << m2->describe();
  return fc.peek(probe);
}

TEST(Regression, DeepWhenNesting) {
  std::string design = R"(
circuit W :
  module W :
    input a : UInt<1>
    input b : UInt<1>
    input c : UInt<1>
    input d : UInt<1>
    output o : UInt<4>
    o <= UInt<4>(0)
    when a :
      o <= UInt<4>(1)
      when b :
        o <= UInt<4>(2)
        when c :
          o <= UInt<4>(3)
          when d :
            o <= UInt<4>(4)
          else :
            o <= UInt<4>(5)
        else :
          when d :
            o <= UInt<4>(6)
)";
  // a=1,b=1,c=0,d=1 -> inner else-when d: o=6
  uint64_t v = runAllEngines(design, 3, [](sim::Engine& e, uint64_t) {
    e.poke("a", 1);
    e.poke("b", 1);
    e.poke("c", 0);
    e.poke("d", 1);
  }, "o");
  EXPECT_EQ(v, 6u);
}

TEST(Regression, LastConnectAcrossWhens) {
  std::string design = R"(
circuit L :
  module L :
    input p : UInt<1>
    output o : UInt<8>
    o <= UInt<8>(1)
    when p :
      o <= UInt<8>(2)
    o <= UInt<8>(3)
)";
  // The trailing unconditional connect wins regardless of p.
  for (uint64_t pv : {0ull, 1ull}) {
    uint64_t v = runAllEngines(design, 2, [pv](sim::Engine& e, uint64_t) { e.poke("p", pv); },
                               "o");
    EXPECT_EQ(v, 3u);
  }
}

TEST(Regression, NodeDeclaredInsideWhen) {
  std::string design = R"(
circuit N :
  module N :
    input p : UInt<1>
    input x : UInt<8>
    output o : UInt<8>
    o <= UInt<8>(0)
    when p :
      node doubled = tail(add(x, x), 1)
      o <= doubled
)";
  uint64_t v = runAllEngines(design, 2, [](sim::Engine& e, uint64_t) {
    e.poke("p", 1);
    e.poke("x", 21);
  }, "o");
  EXPECT_EQ(v, 42u);
}

TEST(Regression, ZeroWidthValues) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit Z :
  module Z :
    input a : UInt<0>
    output o : UInt<8>
    output c : UInt<1>
    node padded = pad(a, 8)
    o <= padded
    c <= eq(a, UInt<0>(0))
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.tick();
  EXPECT_EQ(eng.peek("o"), 0u);  // zero-width values always read 0
  EXPECT_EQ(eng.peek("c"), 1u);
}

TEST(Regression, CrossCoupledRegistersAreLegal) {
  // Feedback through *state* is fine (the split breaks the cycle): swap
  // registers every cycle.
  std::string design = R"(
circuit X :
  module X :
    input clock : Clock
    input reset : UInt<1>
    output a_out : UInt<8>
    output b_out : UInt<8>
    reg a : UInt<8>, clock with : (reset => (reset, UInt<8>(1)))
    reg b : UInt<8>, clock with : (reset => (reset, UInt<8>(2)))
    a <= b
    b <= a
    a_out <= a
    b_out <= b
)";
  uint64_t v = runAllEngines(design, 7, [](sim::Engine& e, uint64_t c) {
    e.poke("reset", c == 0);
  }, "a_out");
  // cycle 0: reset -> a=1,b=2; cycles 1..6: six swaps. a_out is the
  // combinational value computed *before* the sixth swap, i.e. a after five
  // swaps = 2.
  EXPECT_EQ(v, 2u);
}

TEST(Regression, Latency1MemoryUnderCcss) {
  std::string design = R"(
circuit M :
  module M :
    input clock : Clock
    input wen : UInt<1>
    input addr : UInt<3>
    input wdata : UInt<8>
    output rdata : UInt<8>
    mem t :
      data-type => UInt<8>
      depth => 8
      read-latency => 1
      write-latency => 1
      reader => r
      writer => w
    t.r.addr <= addr
    t.r.en <= UInt<1>(1)
    t.r.clk <= clock
    t.w.addr <= addr
    t.w.en <= wen
    t.w.clk <= clock
    t.w.data <= wdata
    t.w.mask <= UInt<1>(1)
    rdata <= t.r.data
)";
  runAllEngines(design, 50, [](sim::Engine& e, uint64_t c) {
    e.poke("wen", c % 3 == 0);
    e.poke("addr", c % 8);
    e.poke("wdata", (c * 17) & 0xff);
  }, "rdata");
}

TEST(Regression, SignedMinimumValues) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit S :
  module S :
    input a : SInt<8>
    output negv : SInt<9>
    output divv : SInt<9>
    output remv : SInt<8>
    negv <= neg(a)
    divv <= div(a, SInt<8>(-1))
    remv <= rem(a, SInt<8>(3))
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.pokeBV("a", BitVec::fromI64(8, -128));
  eng.tick();
  // neg(-128) widens to 9 bits: +128.
  EXPECT_EQ(bvops::extend(eng.peekBV("negv"), true, 64).toI64(), 128);
  // -128 / -1 = +128 (representable in the widened 9-bit result).
  EXPECT_EQ(bvops::extend(eng.peekBV("divv"), true, 64).toI64(), 128);
  // rem keeps the dividend's sign: -128 rem 3 = -2.
  EXPECT_EQ(bvops::extend(eng.peekBV("remv"), true, 64).toI64(), -2);
}

TEST(Regression, DiamondInstanceHierarchy) {
  // Two instances of B, each instantiating C: names must stay disjoint and
  // values independent.
  std::string design = R"(
circuit Top :
  module C :
    input x : UInt<8>
    output y : UInt<8>
    y <= tail(add(x, UInt<8>(1)), 1)
  module B :
    input x : UInt<8>
    output y : UInt<8>
    inst c of C
    c.x <= tail(add(x, x), 1)
    y <= c.y
  module Top :
    input u : UInt<8>
    input v : UInt<8>
    output ou : UInt<8>
    output ov : UInt<8>
    inst b1 of B
    inst b2 of B
    b1.x <= u
    b2.x <= v
    ou <= b1.y
    ov <= b2.y
)";
  SimIR ir = sim::buildFromFirrtl(design);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("u", 10);
  eng.poke("v", 100);
  eng.tick();
  EXPECT_EQ(eng.peek("ou"), 21u);   // 2*10+1
  EXPECT_EQ(eng.peek("ov"), 201u);  // 2*100+1
}

TEST(Regression, MuxWithMismatchedArmWidths) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit M :
  module M :
    input s : UInt<1>
    output o : UInt<8>
    o <= mux(s, UInt<8>(200), UInt<3>(5))
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("s", 0);
  eng.tick();
  EXPECT_EQ(eng.peek("o"), 5u);
  eng.poke("s", 1);
  eng.tick();
  EXPECT_EQ(eng.peek("o"), 200u);
}

TEST(Regression, StopInsideWhenHonorsPathCondition) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit S :
  module S :
    input clock : Clock
    input go : UInt<1>
    input arm : UInt<1>
    when arm :
      stop(clock, go, 7)
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("go", 1);
  eng.poke("arm", 0);
  eng.tick();
  EXPECT_FALSE(eng.stopped());
  eng.poke("arm", 1);
  eng.tick();
  EXPECT_TRUE(eng.stopped());
  EXPECT_EQ(eng.exitCode(), 7);
}

TEST(Regression, ValidIfActsAsValue) {
  std::string design = R"(
circuit V :
  module V :
    input c : UInt<1>
    input x : UInt<8>
    output o : UInt<8>
    o <= validif(c, x)
)";
  uint64_t v = runAllEngines(design, 3, [](sim::Engine& e, uint64_t) {
    e.poke("c", 0);  // condition false: our defined semantics still yield x
    e.poke("x", 99);
  }, "o");
  EXPECT_EQ(v, 99u);
}

TEST(Regression, AssertFiresOnViolation) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit A :
  module A :
    input clock : Clock
    input v : UInt<8>
    input en : UInt<1>
    output o : UInt<8>
    assert(clock, lt(v, UInt<8>(100)), en, "v out of range")
    o <= v
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("v", 50);
  eng.poke("en", 1);
  eng.tick();
  EXPECT_FALSE(eng.stopped());
  eng.poke("v", 200);
  eng.poke("en", 0);  // disabled: no failure
  eng.tick();
  EXPECT_FALSE(eng.stopped());
  eng.poke("en", 1);
  eng.tick();
  EXPECT_TRUE(eng.stopped());
  EXPECT_EQ(eng.exitCode(), 65);
  EXPECT_NE(eng.printOutput().find("assertion failed: v out of range"), std::string::npos);
}

TEST(Regression, AssertInsideWhenHonorsPath) {
  std::string design = R"(
circuit A :
  module A :
    input clock : Clock
    input arm : UInt<1>
    input bad : UInt<1>
    output o : UInt<1>
    when arm :
      assert(clock, not(bad), UInt<1>(1), "armed failure")
    o <= bad
)";
  SimIR ir = sim::buildFromFirrtl(design);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("arm", 0);
  eng.poke("bad", 1);
  eng.tick();
  EXPECT_FALSE(eng.stopped());
  eng.poke("arm", 1);
  eng.tick();
  EXPECT_TRUE(eng.stopped());
  // All engines agree on assertion timing.
  SimIR ir2 = sim::buildFromFirrtl(design);
  FullCycleEngine a(sim::CompiledDesign::compile(ir2));
  ActivityEngine b(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir2), ScheduleOptions{}));
  auto m = sim::compareEngines(a, b, 20, [](sim::Engine& e, uint64_t c) {
    e.poke("arm", c >= 5);
    e.poke("bad", c >= 8);
  });
  EXPECT_FALSE(m.has_value()) << m->describe();
}

TEST(Regression, HugeFanoutSignal) {
  // One input feeding 200 consumers: triggering tables must stay correct.
  std::string design = "circuit F :\n  module F :\n    input clock : Clock\n";
  design += "    input x : UInt<8>\n    output o : UInt<8>\n";
  for (int i = 0; i < 200; i++)
    design += strfmt("    node n%d = tail(add(x, UInt<8>(%d)), 1)\n", i, i);
  std::string acc = "n0";
  for (int i = 1; i < 200; i++) {
    design += strfmt("    node x%d = xor(%s, n%d)\n", i, acc.c_str(), i);
    acc = strfmt("x%d", i);
  }
  design += "    o <= " + acc + "\n";
  runAllEngines(design, 20, [](sim::Engine& e, uint64_t c) {
    e.poke("x", c % 4 == 0 ? c : 0);
  }, "o");
}

TEST(Regression, DivRemDshrByZeroAndPastWidth) {
  // Division edge cases must agree across engines AND match the FIRRTL
  // spec reading used throughout the repo: x/0 == 0, x%0 == x (truncated
  // to the result width), dynamic shift right by >= width == 0.
  std::string design = R"(
circuit D :
  module D :
    input clock : Clock
    input x : UInt<8>
    input sh : UInt<4>
    output dz : UInt<8>
    output rz : UInt<8>
    output shr : UInt<8>
    dz <= div(x, UInt<8>(0))
    rz <= rem(x, UInt<8>(0))
    shr <= dshr(x, sh)
)";
  SimIR ir = sim::buildFromFirrtl(design);
  FullCycleEngine fc(sim::CompiledDesign::compile(ir));
  fc.poke("x", 200);
  fc.poke("sh", 9);
  fc.tick();
  EXPECT_EQ(fc.peek("dz"), 0u);
  EXPECT_EQ(fc.peek("rz"), 200u);
  EXPECT_EQ(fc.peek("shr"), 0u);
  runAllEngines(design, 20, [](sim::Engine& e, uint64_t c) {
    e.poke("x", (c * 37) & 0xff);
    e.poke("sh", c % 16);
  }, "rz");
}

TEST(Regression, SignedRemInt64MinByMinusOne) {
  // INT64_MIN % -1 is UB in C++ (traps with SIGFPE on x86); both the
  // interpreter fast path and the emitted codegen guard the divisor. The
  // mathematical remainder is 0.
  std::string design = R"(
circuit R :
  module R :
    input a : SInt<64>
    input b : SInt<64>
    output o : SInt<64>
    o <= rem(a, b)
)";
  SimIR ir = sim::buildFromFirrtl(design);
  FullCycleEngine fc(sim::CompiledDesign::compile(ir));
  fc.pokeBV("a", BitVec::fromI64(64, INT64_MIN));
  fc.pokeBV("b", BitVec::fromI64(64, -1));
  fc.tick();
  EXPECT_EQ(fc.peekBV("o").toU64(), 0u);
  // Remainder sign follows the dividend.
  fc.pokeBV("b", BitVec::fromI64(64, 3));
  fc.tick();
  EXPECT_EQ(fc.peekBV("o").toI64(), -2);
  // And a divisor of 0 returns the dividend, even at INT64_MIN.
  fc.pokeBV("b", BitVec::fromI64(64, 0));
  fc.tick();
  EXPECT_EQ(fc.peekBV("o").toI64(), INT64_MIN);
  runAllEngines(design, 6, [](sim::Engine& e, uint64_t c) {
    e.pokeBV("a", BitVec::fromI64(64, c % 2 ? INT64_MIN : -7));
    e.pokeBV("b", BitVec::fromI64(64, static_cast<int64_t>(c) - 3));  // hits -1 and 0
  }, "o");
}

// The next three designs graduated from the differential fuzzer's corner
// generator (tests/corpus/ holds the same circuits as replayable .fir+.stim
// pairs; the essent_fuzz_tests suite replays them through all five engines).

TEST(Regression, FuzzCornerZeroWidthOps) {
  // UInt<0> flowing through pad/orr/eq/cat and into a register.
  std::string design = R"(
circuit CornerZW :
  module CornerZW :
    input clock : Clock
    input reset : UInt<1>
    input z : UInt<0>
    input a : UInt<8>
    output o : UInt<8>
    output rout : UInt<2>
    node zp = pad(z, 8)
    node zo = orr(z)
    node ze = eq(z, UInt<0>(0))
    node zc = cat(a, z)
    reg r : UInt<2>, clock with : (reset => (reset, UInt<2>(0)))
    r <= cat(ze, zo)
    o <= tail(add(zc, zp), 1)
    rout <= r
)";
  uint64_t v = runAllEngines(design, 8, [](sim::Engine& e, uint64_t c) {
    e.poke("reset", c < 2);
    e.poke("a", (0xff35 >> (c % 8)) & 0xff);
  }, "rout");
  // zo == 0 (orr of nothing), ze == 1 (0 == 0), so r settles at 0b10.
  EXPECT_EQ(v, 2u);
}

TEST(Regression, FuzzCornerDeeplyNestedMux) {
  // A 12-deep mux chain selected bit-by-bit: exercises partition nesting
  // in CCSS and mux short-circuiting in the event-driven engine.
  std::string design = "circuit M :\n  module M :\n    input clock : Clock\n";
  design += "    input s : UInt<12>\n    input a : UInt<8>\n    output o : UInt<8>\n";
  design += "    node m0 = mux(bits(s, 0, 0), a, not(a))\n";
  for (int i = 1; i < 12; i++)
    design += strfmt(
        "    node m%d = mux(bits(s, %d, %d), m%d, tail(add(m%d, UInt<8>(%d)), 1))\n",
        i, i, i, i - 1, i - 1, i);
  design += "    o <= m11\n";
  runAllEngines(design, 16, [](sim::Engine& e, uint64_t c) {
    e.poke("s", c == 0 ? 0 : (1u << (c % 12)));
    e.poke("a", 0x5a);
  }, "o");
  // Direct check of the all-else path: s == 0 -> o == ((~a)+1)+2+...+11.
  SimIR ir = sim::buildFromFirrtl(design);
  FullCycleEngine fc(sim::CompiledDesign::compile(ir));
  fc.poke("s", 0);
  fc.poke("a", 0x5a);
  fc.tick();
  EXPECT_EQ(fc.peek("o"), ((~0x5aull & 0xff) + 66) & 0xff);
}

TEST(Regression, FuzzCornerMemSameCycleReadWrite) {
  // Latency-0 and latency-1 memories written and read at the SAME address
  // in the same cycle: the latency-0 read must see the pre-write value
  // (write latency is 1), and the latency-1 read must pipeline by a cycle.
  std::string design = R"(
circuit CM :
  module CM :
    input clock : Clock
    input addr : UInt<3>
    input wdata : UInt<8>
    input wen : UInt<1>
    output r0 : UInt<8>
    output r1 : UInt<8>
    mem m0 :
      data-type => UInt<8>
      depth => 8
      read-latency => 0
      write-latency => 1
      read-under-write => undefined
      reader => r
      writer => w
    m0.r.addr <= addr
    m0.r.en <= UInt<1>(1)
    m0.r.clk <= clock
    m0.w.addr <= addr
    m0.w.en <= wen
    m0.w.clk <= clock
    m0.w.data <= wdata
    m0.w.mask <= UInt<1>(1)
    mem m1 :
      data-type => UInt<8>
      depth => 8
      read-latency => 1
      write-latency => 1
      read-under-write => undefined
      reader => r
      writer => w
    m1.r.addr <= addr
    m1.r.en <= UInt<1>(1)
    m1.r.clk <= clock
    m1.w.addr <= addr
    m1.w.en <= wen
    m1.w.clk <= clock
    m1.w.data <= wdata
    m1.w.mask <= UInt<1>(1)
    r0 <= m0.r.data
    r1 <= m1.r.data
)";
  runAllEngines(design, 24, [](sim::Engine& e, uint64_t c) {
    e.poke("addr", (c / 2) % 8);  // revisit each address twice
    e.poke("wdata", (c * 11) & 0xff);
    e.poke("wen", c % 3 != 0);
  }, "r0");
}

}  // namespace
}  // namespace essent
