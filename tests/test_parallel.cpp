// Wave-parallel execution tests: thread-pool fork/join semantics, the
// levelization invariants that make lock-free partition sweeps safe, and
// exact equivalence (signals AND work counters) between the serial and
// parallel CCSS engines. Labelled `par` so the tsan preset can run just
// this group.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>

#include "core/activity_engine.h"
#include "core/parallel_engine.h"
#include "designs/blocks.h"
#include "designs/gcd.h"
#include "designs/systolic.h"
#include "designs/tinysoc.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"
#include "support/rng.h"
#include "support/threadpool.h"
#include "workloads/driver.h"

namespace essent {
namespace {

using core::ActivityEngine;
using core::CondPartSchedule;
using core::ParallelActivityEngine;
using core::ScheduleOptions;
using sim::compareEngines;
using sim::Engine;
using sim::FullCycleEngine;
using sim::SimIR;
using support::ThreadPool;

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, SingleLaneRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.numThreads(), 1u);
  unsigned ran = 0;
  std::thread::id caller = std::this_thread::get_id();
  pool.run([&](unsigned lane) {
    EXPECT_EQ(lane, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran++;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(ThreadPool, EveryLaneRunsExactlyOncePerFork) {
  ThreadPool pool(4);
  std::vector<std::atomic<uint32_t>> hits(4);
  pool.run([&](unsigned lane) { hits[lane].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

TEST(ThreadPool, ReusableAcrossManyForksWithFullJoin) {
  // The join barrier must be complete: after run() returns, every lane's
  // side effects are visible. 2000 forks also exercises the epoch
  // spin/yield/park transitions repeatedly.
  ThreadPool pool(3);
  uint64_t total = 0;
  std::vector<uint64_t> laneSum(3, 0);
  for (uint64_t f = 0; f < 2000; f++) {
    pool.run([&, f](unsigned lane) { laneSum[lane] += f; });
    total += 3 * f;  // plain reads: join is the synchronization point
    uint64_t sum = laneSum[0] + laneSum[1] + laneSum[2];
    ASSERT_EQ(sum, total) << "fork " << f;
  }
}

TEST(ThreadPool, SharedCursorDistributesAllItems) {
  ThreadPool pool(4);
  constexpr size_t kItems = 10000;
  std::vector<uint8_t> claimed(kItems, 0);
  std::atomic<size_t> cursor{0};
  pool.run([&](unsigned) {
    for (;;) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= kItems) return;
      claimed[i]++;
    }
  });
  for (size_t i = 0; i < kItems; i++) ASSERT_EQ(claimed[i], 1) << i;
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv) {
  setenv("ESSENT_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
  unsetenv("ESSENT_THREADS");
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

// --- Levelization invariants ---------------------------------------------
//
// The race-freedom argument for the wave-parallel sweep rests on three
// structural properties of the levelization; check them on every design
// shape we have (see docs/PARALLEL.md for why each one matters).

void checkLevelizationInvariants(const CondPartSchedule& sched, const std::string& what) {
  const size_t n = sched.parts.size();
  ASSERT_EQ(sched.levelOf.size(), n) << what;

  // Waves partition the schedule positions, ascending within each wave,
  // and agree with levelOf.
  std::vector<uint8_t> seen(n, 0);
  for (size_t l = 0; l < sched.waves.size(); l++) {
    EXPECT_FALSE(sched.waves[l].empty()) << what << ": empty wave " << l;
    for (size_t k = 0; k < sched.waves[l].size(); k++) {
      int32_t pos = sched.waves[l][k];
      ASSERT_GE(pos, 0);
      ASSERT_LT(static_cast<size_t>(pos), n);
      EXPECT_EQ(sched.levelOf[static_cast<size_t>(pos)], static_cast<int32_t>(l)) << what;
      EXPECT_EQ(seen[static_cast<size_t>(pos)], 0) << what << ": position listed twice";
      seen[static_cast<size_t>(pos)] = 1;
      if (k > 0) EXPECT_LT(sched.waves[l][k - 1], pos) << what << ": wave not ascending";
    }
  }
  for (size_t pos = 0; pos < n; pos++) EXPECT_EQ(seen[pos], 1) << what << ": position unplaced";

  std::vector<std::vector<size_t>> memWriters;  // memIdx -> positions, schedule order
  for (size_t pos = 0; pos < n; pos++) {
    const core::CondPart& part = sched.parts[pos];
    const int32_t myLevel = sched.levelOf[pos];

    // (1) Combinational wakes cross to a STRICTLY later wave: a consumer
    //     woken mid-wave must not be swept concurrently in the same wave.
    for (const core::PartOutput& o : part.outputs)
      for (int32_t c : o.consumers)
        EXPECT_GT(sched.levelOf[static_cast<size_t>(c)], myLevel)
            << what << ": output consumer not in a later wave";

    // (2) Elided state wakes target this partition or a STRICTLY earlier
    //     wave (readers are scheduled before the writer): setting those
    //     flags can never race with a same-wave test-and-clear.
    for (const core::SchedRegWrite& rw : part.regWrites)
      for (int32_t w : rw.wakeParts)
        EXPECT_TRUE(w == static_cast<int32_t>(pos) ||
                    sched.levelOf[static_cast<size_t>(w)] < myLevel)
            << what << ": reg wake target in same/later wave";
    for (const core::SchedMemWrite& mw : part.memWrites) {
      for (int32_t w : mw.wakeParts)
        EXPECT_TRUE(w == static_cast<int32_t>(pos) ||
                    sched.levelOf[static_cast<size_t>(w)] < myLevel)
            << what << ": mem wake target in same/later wave";
      size_t mem = static_cast<size_t>(mw.memIdx);
      if (memWriters.size() <= mem) memWriters.resize(mem + 1);
      memWriters[mem].push_back(pos);
    }
  }

  // (3) Two partitions with elided writes to the same memory never share a
  //     wave (they may hit the same row): the hazard chain must have
  //     separated them, in schedule order.
  for (const auto& writers : memWriters)
    for (size_t i = 1; i < writers.size(); i++)
      EXPECT_LT(sched.levelOf[writers[i - 1]], sched.levelOf[writers[i]])
          << what << ": same-mem elided writers share a wave";
}

TEST(Levelization, InvariantsHoldAcrossDesignsAndGranularities) {
  std::vector<std::pair<std::string, std::string>> texts = {
      {"gatedBanks", designs::gatedBanksFirrtl(16, 16)},
      {"gcd", designs::gcdFirrtl(16)},
      {"pipeline", designs::pipelineFirrtl(6, 16)},
      {"systolic", designs::systolicFirrtl(designs::SystolicConfig{})},
      {"tinysoc", designs::tinySoCFirrtl(designs::socTiny())},
  };
  for (uint64_t seed : {21ull, 22ull, 23ull, 24ull})
    texts.emplace_back("random" + std::to_string(seed), designs::randomDesignFirrtl(seed));

  for (const auto& [name, text] : texts) {
    SimIR ir = sim::buildFromFirrtl(text);
    core::Netlist nl = core::Netlist::build(ir);
    for (uint32_t cp : {0u, 4u, 64u}) {
      ScheduleOptions opts;
      opts.partition.smallThreshold = cp;
      CondPartSchedule sched = core::buildSchedule(nl, opts);
      checkLevelizationInvariants(sched, name + "/cp" + std::to_string(cp));
    }
    // Elision off: no in-partition state writes, so invariant (2)/(3) are
    // vacuous but (1) and the wave partition must still hold.
    ScheduleOptions noElide;
    noElide.stateElision = false;
    checkLevelizationInvariants(core::buildSchedule(nl, noElide), name + "/noelide");
  }
}

TEST(Levelization, CriticalPathExportedAndBounded) {
  SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
  EXPECT_GT(sched.numLevels(), 0u);
  EXPECT_LE(sched.numLevels(), sched.parts.size());
  size_t widest = 0;
  for (const auto& w : sched.waves) widest = std::max(widest, w.size());
  EXPECT_EQ(sched.maxWaveWidth(), widest);
}

// --- Serial vs parallel engine equivalence --------------------------------

// Same stimulus idiom as test_engines_equiv.cpp: deterministic per (cycle,
// input) so every engine sees identical pokes.
sim::StimulusFn randomStimulus(uint64_t seed, double toggleP) {
  auto held = std::make_shared<
      std::unordered_map<const Engine*, std::unordered_map<int, uint64_t>>>();
  return [seed, held, toggleP](Engine& e, uint64_t cycle) {
    auto& mine = (*held)[&e];
    int idx = 0;
    for (int32_t in : e.ir().inputs) {
      const auto& sig = e.ir().signals[static_cast<size_t>(in)];
      idx++;
      if (sig.name == "reset") {
        e.poke("reset", cycle < 2 ? 1 : 0);
        continue;
      }
      Rng draw(seed ^ (cycle * 0x9e3779b97f4a7c15ULL) ^ (static_cast<uint64_t>(idx) << 32));
      auto [it, inserted] = mine.emplace(idx, 0);
      if (inserted || draw.nextChance(toggleP)) it->second = draw.next();
      e.poke(sig.name, it->second);
    }
  };
}

void expectStatsEqual(const sim::EngineStats& a, const sim::EngineStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.opsEvaluated, b.opsEvaluated) << what;
  EXPECT_EQ(a.partitionChecks, b.partitionChecks) << what;
  EXPECT_EQ(a.partitionActivations, b.partitionActivations) << what;
  EXPECT_EQ(a.outputComparisons, b.outputComparisons) << what;
  EXPECT_EQ(a.triggerSets, b.triggerSets) << what;
  EXPECT_EQ(a.signalsChangedTotal, b.signalsChangedTotal) << what;
}

class ParallelEquiv : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelEquiv, MatchesSerialSignalsAndExactCounters) {
  // The parallel engine does the same work in a different interleaving, so
  // not just every signal but every WORK COUNTER must match the serial
  // engine exactly — the strongest determinism statement we can test.
  const unsigned threads = GetParam();
  for (const std::string& text :
       {designs::gatedBanksFirrtl(16, 16), designs::gcdFirrtl(16),
        designs::systolicFirrtl(designs::SystolicConfig{}),
        designs::randomDesignFirrtl(31), designs::randomDesignFirrtl(32)}) {
    SimIR ir = sim::buildFromFirrtl(text);
    CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
    ActivityEngine serial(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched));
    ParallelActivityEngine par(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched), threads);
    // Effective width clamps to the placement's useful width (one lane per
    // partition) — tiny designs may expose fewer partitions than lanes.
    EXPECT_EQ(par.threadCount(),
              std::min<unsigned>(threads, static_cast<unsigned>(sched.numPartitions())));

    auto stim = randomStimulus(threads * 1000 + 7, 0.3);
    for (uint64_t c = 0; c < 150; c++) {
      stim(serial, c);
      stim(par, c);
      serial.tick();
      par.tick();
      for (int32_t o : ir.outputs)
        ASSERT_EQ(serial.peekSig(o), par.peekSig(o)) << ir.name << " cycle " << c;
    }
    expectStatsEqual(serial.stats(), par.stats(), ir.name);
    EXPECT_EQ(serial.effectiveActivity(), par.effectiveActivity()) << ir.name;
  }
}

TEST_P(ParallelEquiv, MatchesFullCycleReference) {
  const unsigned threads = GetParam();
  for (uint64_t seed : {81ull, 82ull, 83ull}) {
    SimIR ir = sim::buildFromFirrtl(designs::randomDesignFirrtl(seed));
    FullCycleEngine ref(sim::CompiledDesign::compile(ir));
    ParallelActivityEngine par(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}), threads);
    auto m = compareEngines(ref, par, 120, randomStimulus(seed, 0.25));
    EXPECT_FALSE(m.has_value()) << "threads=" << threads << " seed=" << seed << ": "
                                << m->describe();
  }
}

TEST_P(ParallelEquiv, WorkloadRunsBitExact) {
  const unsigned threads = GetParam();
  SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
  auto prog = workloads::dhrystoneProgram(8);

  ActivityEngine serial(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched));
  workloads::loadProgram(serial, prog);
  auto rs = workloads::runWorkload(serial, 20000);

  ParallelActivityEngine par(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched), threads);
  workloads::loadProgram(par, prog);
  auto rp = workloads::runWorkload(par, 20000);

  EXPECT_TRUE(rp.halted);
  EXPECT_EQ(rs.cycles, rp.cycles);
  EXPECT_EQ(rs.result, rp.result);
  EXPECT_EQ(rs.instret, rp.instret);
  EXPECT_EQ(serial.printOutput(), par.printOutput());
  expectStatsEqual(rs.stats, rp.stats, "tinysoc workload");
}

TEST_P(ParallelEquiv, ProfilingCountersMergeExactly) {
  // Per-lane counters merged at cycle end must satisfy the same obs
  // invariants the serial engine guarantees: per-partition profile sums
  // equal the global stats, with profiling not perturbing simulation.
  const unsigned threads = GetParam();
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(16, 16));
  CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));

  ParallelActivityEngine plain(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched), threads);
  ParallelActivityEngine profiled(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched), threads);
  profiled.setProfiling(true);
  for (uint64_t c = 0; c < 400; c++) {
    for (Engine* e : {static_cast<Engine*>(&plain), static_cast<Engine*>(&profiled)}) {
      e->poke("reset", c < 2);
      e->poke("bankSel", c % 5 == 0 ? c % 16 : 999);
      e->poke("wdata", c * 13);
    }
    plain.tick();
    profiled.tick();
  }
  for (int32_t o : ir.outputs) EXPECT_EQ(plain.peekSig(o), profiled.peekSig(o));
  expectStatsEqual(plain.stats(), profiled.stats(), "profiling transparency");

  const core::ActivityProfile& prof = profiled.profile();
  ASSERT_EQ(prof.parts.size(), profiled.schedule().numPartitions());
  uint64_t ops = 0, acts = 0, wakes = 0;
  for (const core::PartitionProfile& pp : prof.parts) {
    ops += pp.opsEvaluated;
    acts += pp.activations;
    wakes += pp.wakesIssued;
  }
  EXPECT_EQ(ops, profiled.stats().opsEvaluated);
  EXPECT_EQ(acts, profiled.stats().partitionActivations);
  // triggerSets also counts input-sweep and phase-2 wakes, which happen
  // outside any partition run; the profile only sees in-partition wakes.
  EXPECT_LE(wakes, profiled.stats().triggerSets);
  EXPECT_GT(wakes, 0u);
  EXPECT_EQ(prof.profiledCycles, profiled.stats().cycles);
  uint64_t timeline = std::accumulate(prof.activationsPerWindow.begin(),
                                      prof.activationsPerWindow.end(), uint64_t{0});
  EXPECT_EQ(timeline, acts);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEquiv, ::testing::Values(2u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(ParallelEngine, ZeroThreadsUsesDefaultCount) {
  setenv("ESSENT_THREADS", "2", 1);
  SimIR ir = sim::buildFromFirrtl(designs::gcdFirrtl(8));
  ParallelActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}), 0);
  EXPECT_EQ(eng.threadCount(), 2u);
  unsetenv("ESSENT_THREADS");
}

TEST(ParallelEngine, ResetStateReplaysIdentically) {
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(8, 16));
  CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
  ParallelActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched), 2);
  auto run = [&] {
    std::vector<uint64_t> trace;
    for (uint64_t c = 0; c < 60; c++) {
      eng.poke("reset", c < 2);
      eng.poke("bankSel", c % 3 ? 999 : c % 8);
      eng.poke("wdata", c + 1);
      eng.tick();
      for (int32_t o : ir.outputs) trace.push_back(eng.peekSig(o));
    }
    return trace;
  };
  auto first = run();
  eng.resetState();
  EXPECT_EQ(run(), first);
}

}  // namespace
}  // namespace essent
