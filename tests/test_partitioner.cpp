// Tests for the paper's core contribution: MFFC decomposition, the acyclic
// merge-based partitioner, the external-path merge test, state-element
// update elision, and the CCSS schedule. Includes the paper's Figure 2 and
// Figure 3 examples plus randomized acyclicity property sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/elision.h"
#include "core/mffc.h"
#include "core/netlist.h"
#include "core/partitioner.h"
#include "core/schedule.h"
#include "designs/blocks.h"
#include "sim/compile.h"
#include "support/rng.h"

namespace essent::core {
namespace {

using graph::DiGraph;

TEST(Mffc, PaperFigure3Shape) {
  // Chain with a fanout: the MFFC of a node with multi-fanout members stops
  // at the fanout point, and a contained node's MFFC nests inside.
  //   0 -> 1 -> 3, 2 -> 3, 3 -> 4, 3 -> 5   (3 has two consumers)
  DiGraph g(6);
  g.addEdge(0, 1);
  g.addEdge(1, 3);
  g.addEdge(2, 3);
  g.addEdge(3, 4);
  g.addEdge(3, 5);
  auto m3 = mffcOf(g, 3);
  std::set<graph::NodeId> s3(m3.begin(), m3.end());
  EXPECT_EQ(s3, (std::set<graph::NodeId>{0, 1, 2, 3}));
  // MFFC(1) = {0, 1} is contained in MFFC(3).
  auto m1 = mffcOf(g, 1);
  std::set<graph::NodeId> s1(m1.begin(), m1.end());
  EXPECT_EQ(s1, (std::set<graph::NodeId>{0, 1}));
  for (auto n : s1) EXPECT_TRUE(s3.count(n));
  // MFFC of node 4: node 3 has external fanout (to 5), so MFFC(4) = {4}.
  auto m4 = mffcOf(g, 4);
  EXPECT_EQ(m4.size(), 1u);
}

TEST(Mffc, DecompositionCoversAllNodesDisjointly) {
  DiGraph g(7);
  g.addEdge(0, 2);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  g.addEdge(2, 4);
  g.addEdge(3, 5);
  g.addEdge(4, 6);
  int32_t parts = 0;
  auto partOf = mffcDecompose(g, &parts);
  EXPECT_GT(parts, 0);
  for (auto p : partOf) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, parts);
  }
  // Quotient graph must be acyclic.
  EXPECT_TRUE(graph::condense(g, partOf, parts).isAcyclic());
}

TEST(Mffc, DecompositionAcyclicOnRandomDags) {
  for (uint64_t seed = 1; seed <= 10; seed++) {
    Rng rng(seed);
    int n = 80;
    DiGraph g(n);
    for (int i = 0; i < n; i++)
      for (int j = i + 1; j < n; j++)
        if (rng.nextChance(0.06)) g.addEdge(i, j);
    int32_t parts = 0;
    auto partOf = mffcDecompose(g, &parts);
    EXPECT_TRUE(graph::condense(g, partOf, parts).isAcyclic()) << "seed " << seed;
  }
}

// Paper Figure 2: acyclic graph whose naive partitioning becomes cyclic.
// A -> C, C -> B, B -> D. Merging {A,B} and {C,D} creates a cycle; the
// external-path test must reject it, while {A,C}/{B,D} style merges pass.
TEST(Partitioner, ExternalPathTestRejectsFigure2Merge) {
  sim::SimIR ir = sim::buildFromFirrtl(R"(
circuit Fig2 :
  module Fig2 :
    input a : UInt<8>
    output o1 : UInt<8>
    output o2 : UInt<8>
    node c = not(a)
    node b = not(c)
    node d = not(b)
    o1 <= b
    o2 <= d
)",
                                       sim::BuildOptions{false, false, false});
  Netlist nl = Netlist::build(ir);
  // Partition fine, then check mergeability via partitionNetlist's internal
  // machinery indirectly: any partitioning it returns must be acyclic.
  for (uint32_t cp : {0u, 2u, 4u, 8u, 64u}) {
    PartitionOptions opts;
    opts.smallThreshold = cp;
    Partitioning p = partitionNetlist(nl, opts);
    EXPECT_TRUE(p.partGraph.isAcyclic());
  }
}

sim::SimIR buildDesign(const std::string& text, bool optimize = true) {
  sim::BuildOptions opts;
  if (!optimize) opts.constProp = opts.cse = opts.dce = false;
  return sim::buildFromFirrtl(text, opts);
}

TEST(Partitioner, ProducesAcyclicPartitionsOnDesigns) {
  std::vector<std::string> designs = {
      designs::counterFirrtl(16),
      designs::aluArrayFirrtl(8, 16),
      designs::pipelineFirrtl(12, 16),
      designs::gatedBanksFirrtl(16, 16),
  };
  for (const auto& text : designs) {
    sim::SimIR ir = buildDesign(text);
    Netlist nl = Netlist::build(ir);
    Partitioning p = partitionNetlist(nl);
    EXPECT_TRUE(p.partGraph.isAcyclic());
    // Every node assigned to exactly one partition (partitioning, not
    // clustering: no replication).
    std::vector<int> count(p.numPartitions(), 0);
    size_t total = 0;
    for (const auto& members : p.members) total += members.size();
    EXPECT_EQ(total, nl.nodes.size());
    for (int32_t part : p.partOf) {
      ASSERT_GE(part, 0);
      ASSERT_LT(static_cast<size_t>(part), p.numPartitions());
    }
    // Schedule is a permutation of partitions.
    std::set<int32_t> sched(p.schedule.begin(), p.schedule.end());
    EXPECT_EQ(sched.size(), p.numPartitions());
  }
}

TEST(Partitioner, CoarseningReducesPartitionCount) {
  sim::SimIR ir = buildDesign(designs::aluArrayFirrtl(32, 16));
  Netlist nl = Netlist::build(ir);
  PartitionOptions fine;
  fine.smallThreshold = 0;
  fine.phaseSingleParent = false;
  fine.phaseSmallSiblings = false;
  fine.phaseAnySibling = false;
  Partitioning mffcOnly = partitionNetlist(nl, fine);

  Partitioning merged = partitionNetlist(nl);  // default C_p = 8
  EXPECT_LT(merged.numPartitions(), mffcOnly.numPartitions());
  EXPECT_GT(merged.numPartitions(), 0u);
  // Merging must reduce (or keep) the cut.
  EXPECT_LE(merged.stats.cutEdges, mffcOnly.stats.cutEdges);
}

TEST(Partitioner, LargerCpYieldsFewerPartitions) {
  sim::SimIR ir = buildDesign(designs::gatedBanksFirrtl(32, 16));
  Netlist nl = Netlist::build(ir);
  size_t prev = SIZE_MAX;
  for (uint32_t cp : {2u, 8u, 32u}) {
    PartitionOptions opts;
    opts.smallThreshold = cp;
    Partitioning p = partitionNetlist(nl, opts);
    EXPECT_TRUE(p.partGraph.isAcyclic());
    EXPECT_LE(p.numPartitions(), prev);
    prev = p.numPartitions();
  }
}

TEST(Partitioner, RandomDesignsAlwaysAcyclic) {
  for (uint64_t seed = 1; seed <= 12; seed++) {
    designs::RandomDesignConfig cfg;
    cfg.numNodes = 80;
    sim::SimIR ir = buildDesign(designs::randomDesignFirrtl(seed, cfg));
    Netlist nl = Netlist::build(ir);
    for (uint32_t cp : {2u, 8u, 32u}) {
      PartitionOptions opts;
      opts.smallThreshold = cp;
      Partitioning p = partitionNetlist(nl, opts);
      EXPECT_TRUE(p.partGraph.isAcyclic()) << "seed " << seed << " cp " << cp;
    }
  }
}

TEST(Netlist, SplitsStateAndTracksReaders) {
  sim::SimIR ir = buildDesign(designs::counterFirrtl(8));
  Netlist nl = Netlist::build(ir);
  EXPECT_TRUE(nl.g.isAcyclic());  // register split guarantees this
  ASSERT_EQ(ir.regs.size(), 1u);
  // The counter register is read by its own increment logic.
  EXPECT_FALSE(nl.regReaders[0].empty());
  EXPECT_GE(nl.nodeOfRegWrite[0], 0);
  // Sinks exist (register write at minimum).
  EXPECT_FALSE(nl.sinks().empty());
}

TEST(Elision, CounterRegisterElidable) {
  sim::SimIR ir = buildDesign(designs::counterFirrtl(8));
  Netlist nl = Netlist::build(ir);
  Partitioning p = partitionNetlist(nl);
  ElisionResult e = analyzeElision(nl, p, true);
  // A simple counter's readers land with (or before) the writer; the
  // register must be elidable and the graph stays acyclic.
  EXPECT_TRUE(e.regElided[0]);
  EXPECT_TRUE(e.orderedPartGraph.isAcyclic());
  ElisionResult off = analyzeElision(nl, p, false);
  EXPECT_FALSE(off.regElided[0]);
}

TEST(Elision, OrderingEdgesKeepScheduleValid) {
  for (uint64_t seed = 20; seed < 28; seed++) {
    sim::SimIR ir = buildDesign(designs::randomDesignFirrtl(seed));
    Netlist nl = Netlist::build(ir);
    Partitioning p = partitionNetlist(nl);
    ElisionResult e = analyzeElision(nl, p, true);
    EXPECT_TRUE(e.orderedPartGraph.isAcyclic());
    EXPECT_EQ(e.schedule.size(), p.numPartitions());
    // Readers of each elided register appear no later than the writer.
    std::vector<int32_t> pos(p.numPartitions());
    for (size_t i = 0; i < e.schedule.size(); i++) pos[static_cast<size_t>(e.schedule[i])] = static_cast<int32_t>(i);
    for (size_t r = 0; r < ir.regs.size(); r++) {
      if (!e.regElided[r]) continue;
      int32_t wp = p.partOf[static_cast<size_t>(nl.nodeOfRegWrite[r])];
      for (int32_t reader : nl.regReaders[r]) {
        int32_t rp = p.partOf[static_cast<size_t>(reader)];
        EXPECT_LE(pos[static_cast<size_t>(rp)], pos[static_cast<size_t>(wp)]);
      }
    }
  }
}

TEST(Schedule, EveryOpScheduledExactlyOnce) {
  sim::SimIR ir = buildDesign(designs::aluArrayFirrtl(16, 24));
  Netlist nl = Netlist::build(ir);
  CondPartSchedule sched = buildSchedule(nl);
  std::vector<int> seen(ir.ops.size(), 0);
  for (const auto& part : sched.parts) {
    // Intra-partition op order must be ascending global topo order.
    EXPECT_TRUE(std::is_sorted(part.ops.begin(), part.ops.end()));
    for (int32_t op : part.ops) seen[static_cast<size_t>(op)]++;
  }
  for (int c : seen) EXPECT_EQ(c, 1);  // singular execution
  // Every register is either elided into a partition or deferred.
  size_t regCount = 0;
  for (const auto& part : sched.parts) regCount += part.regWrites.size();
  regCount += sched.deferredRegs.size();
  EXPECT_EQ(regCount, ir.regs.size());
}

TEST(Schedule, OutputConsumersPointForward) {
  sim::SimIR ir = buildDesign(designs::pipelineFirrtl(8, 16));
  Netlist nl = Netlist::build(ir);
  CondPartSchedule sched = buildSchedule(nl);
  for (size_t pos = 0; pos < sched.parts.size(); pos++) {
    for (const auto& o : sched.parts[pos].outputs) {
      for (int32_t c : o.consumers) {
        // Combinational consumers must execute after their producer.
        EXPECT_GT(c, static_cast<int32_t>(pos));
      }
    }
  }
}

}  // namespace
}  // namespace essent::core
