// Scale suite (`ctest -L scale`): the million-node elaboration contract at
// sizes a unit test can afford, plus an opt-in full-size smoke.
//
// The cheap tier runs on every ctest invocation: structural invariants of
// the partitioner and BSP placement on a mid-scale (~quarter-million-node)
// TinySoC, and serial-vs-CCSS bit-identity on the ~130k-node scaled1
// preset — the multi-core SoC free-runs (never halts), so equivalence is
// asserted as identical top-level outputs on every cycle of a fixed run
// rather than via workload completion.
//
// The full 1M-node elaboration smoke (node count, zero diagnostics, peak
// RSS ceiling) costs ~10s and a GB of arena, so it is opt-in:
//   ESSENT_SCALE_FULL=1 ctest -L scale
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/netlist.h"
#include "core/placement.h"
#include "core/schedule.h"
#include "designs/tinysoc.h"
#include "diag/diag.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"
#include "core/activity_engine.h"
#include "support/meminfo.h"

using namespace essent;

namespace {

std::shared_ptr<const sim::CompiledDesign> compileScaled(uint32_t factor,
                                                         diag::DiagEngine& de) {
  designs::SoCConfig cfg = designs::socScaled(factor);
  return sim::compileDesign(designs::tinySoCFirrtl(cfg), {}, de);
}

}  // namespace

// Partitioner and placement structural invariants at a scale where the
// merge fast paths and the placement coarsening actually engage (~256k
// netlist nodes — big enough that a quadratic regression would also show
// up as a timeout here).
TEST(ScaleTest, MidScalePartitionerAndPlacementInvariants) {
  diag::DiagEngine de;
  std::shared_ptr<const sim::CompiledDesign> design = compileScaled(2, de);
  ASSERT_NE(design, nullptr);
  EXPECT_EQ(de.errorCount(), 0u);

  core::Netlist net = core::Netlist::build(design->ir);
  EXPECT_GT(net.nodes.size(), 200000u);

  core::CondPartSchedule sched = core::buildSchedule(net);
  ASSERT_FALSE(sched.parts.empty());

  // Every op lands in exactly one partition, and each partition's op list
  // is ascending (a valid topological sub-order of the global op order).
  std::vector<uint8_t> seen(design->ir.ops.size(), 0);
  size_t placedOps = 0;
  for (const core::CondPart& part : sched.parts) {
    EXPECT_FALSE(part.ops.empty());
    for (size_t i = 0; i < part.ops.size(); i++) {
      int32_t op = part.ops[i];
      ASSERT_GE(op, 0);
      ASSERT_LT(static_cast<size_t>(op), seen.size());
      EXPECT_EQ(seen[op], 0) << "op " << op << " in two partitions";
      seen[op] = 1;
      placedOps++;
      if (i > 0) EXPECT_LT(part.ops[i - 1], op);
    }
  }
  EXPECT_EQ(placedOps, design->ir.ops.size());

  // BSP placement: every thread useful, every schedule position assigned to
  // exactly one (thread, super-step) slot, and no dependency edge pointing
  // backwards across super-steps.
  core::PlacementOptions popts;
  popts.threads = 4;
  core::BspPlacement place = core::buildPlacement(sched, popts);
  EXPECT_GE(place.threads, 1u);
  EXPECT_LE(place.threads, 4u);
  ASSERT_EQ(place.threadOf.size(), sched.parts.size());
  ASSERT_EQ(place.stepOf.size(), sched.parts.size());
  std::vector<uint8_t> placed(sched.parts.size(), 0);
  for (const core::SuperStep& step : place.steps) {
    EXPECT_EQ(step.runs.size(), place.threads);
    for (const std::vector<int32_t>& run : step.runs)
      for (int32_t pos : run) {
        ASSERT_GE(pos, 0);
        ASSERT_LT(static_cast<size_t>(pos), placed.size());
        EXPECT_EQ(placed[pos], 0) << "position " << pos << " placed twice";
        placed[pos] = 1;
      }
  }
  for (size_t pos = 0; pos < placed.size(); pos++)
    EXPECT_EQ(placed[pos], 1) << "position " << pos << " never placed";
  for (const auto& [from, to] : core::placementEdges(sched))
    EXPECT_LE(place.stepOf[from], place.stepOf[to])
        << "dependency " << from << "->" << to << " crosses steps backwards";
}

// Serial full-cycle vs CCSS bit-identity on the scaled1 preset (~130k
// netlist nodes: one core, two NoC rings, 101 idle accelerators). The
// design free-runs from reset — the core executes whatever the zeroed
// instruction memory decodes to and the NoC rings mix the per-core taps —
// so the assertion is cycle-by-cycle equality of every top-level output
// over a fixed window, not workload completion.
TEST(ScaleTest, SerialAndCcssBitIdenticalAtScale) {
  diag::DiagEngine de;
  std::shared_ptr<const sim::CompiledDesign> design = compileScaled(1, de);
  ASSERT_NE(design, nullptr);
  ASSERT_EQ(de.errorCount(), 0u);

  std::vector<std::string> outs;
  for (int32_t sig : design->ir.outputs) outs.push_back(design->ir.signals[sig].name);
  ASSERT_FALSE(outs.empty());

  sim::FullCycleEngine serial(design);
  core::ActivityEngine ccss(core::CompiledCcss::compile(design, core::ScheduleOptions{}));
  for (sim::Engine* e : {static_cast<sim::Engine*>(&serial), static_cast<sim::Engine*>(&ccss)}) {
    e->poke("reset", 1);
    e->tick();
    e->tick();
    e->poke("reset", 0);
  }
  for (int cycle = 0; cycle < 256; cycle++) {
    serial.tick();
    ccss.tick();
    for (const std::string& out : outs)
      ASSERT_EQ(serial.peek(out), ccss.peek(out))
          << "output '" << out << "' diverged at cycle " << cycle;
  }
  // The whole point of CCSS at scale: the idle accelerator mass must have
  // been skipped, not re-evaluated.
  EXPECT_LT(ccss.stats().opsEvaluated, serial.stats().opsEvaluated / 2);
}

// Opt-in full-scale smoke: the 1M-node preset elaborates end to end with
// zero diagnostics and bounded peak RSS. ~10s and ~1.3 GB peak on the
// reference container, so it only runs when explicitly requested:
//   ESSENT_SCALE_FULL=1 ctest -L scale
TEST(ScaleTest, FullMillionNodeElaboration) {
  const char* full = std::getenv("ESSENT_SCALE_FULL");
  if (!full || std::string(full) != "1")
    GTEST_SKIP() << "set ESSENT_SCALE_FULL=1 to run the 1M-node smoke";

  diag::DiagEngine de;
  std::shared_ptr<const sim::CompiledDesign> design = compileScaled(8, de);
  ASSERT_NE(design, nullptr);
  EXPECT_EQ(de.errorCount(), 0u) << "1M-node elaboration must be diagnostic-clean";

  core::Netlist net = core::Netlist::build(design->ir);
  EXPECT_GE(net.nodes.size(), 1000000u) << "scaled8 preset no longer reaches 1M nodes";

  core::CondPartSchedule sched = core::buildSchedule(net);
  EXPECT_FALSE(sched.parts.empty());

  // Peak-RSS ceiling: the committed bench artifact records ~1.26 GB for the
  // same elaboration; 4 GB of headroom guards against an accidental return
  // to per-node heap structures without flaking on allocator variance.
  EXPECT_LT(support::peakRssBytes(), uint64_t{4} << 30);
}
