// Tests for the generic digraph utilities: adjacency, topological sort,
// Tarjan SCC, reachability, and condensation.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.h"
#include "support/rng.h"

namespace essent::graph {
namespace {

DiGraph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  DiGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(1, 3);
  g.addEdge(2, 3);
  return g;
}

TEST(DiGraph, AddEdgeDedupsAndIgnoresSelfLoops) {
  DiGraph g(3);
  EXPECT_TRUE(g.addEdge(0, 1));
  EXPECT_FALSE(g.addEdge(0, 1));
  EXPECT_FALSE(g.addEdge(2, 2));
  EXPECT_EQ(g.numEdges(), 1);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(1, 0));
  EXPECT_EQ(g.inNeighbors(1).size(), 1u);
}

TEST(DiGraph, TopoSortDiamond) {
  DiGraph g = diamond();
  auto order = g.topoSort();
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (size_t i = 0; i < order->size(); i++) pos[static_cast<size_t>((*order)[i])] = static_cast<int>(i);
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(DiGraph, TopoSortDetectsCycle) {
  DiGraph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 0);
  EXPECT_FALSE(g.topoSort().has_value());
  EXPECT_FALSE(g.isAcyclic());
}

TEST(DiGraph, Reachability) {
  DiGraph g = diamond();
  EXPECT_TRUE(g.reachable(0, 3));
  EXPECT_TRUE(g.reachable(0, 0));
  EXPECT_FALSE(g.reachable(3, 0));
  EXPECT_FALSE(g.reachable(1, 2));
  auto set = g.reachableSet({1});
  EXPECT_TRUE(set[1]);
  EXPECT_TRUE(set[3]);
  EXPECT_FALSE(set[0]);
  EXPECT_FALSE(set[2]);
}

TEST(Scc, SinglesInDag) {
  DiGraph g = diamond();
  int32_t n = 0;
  auto scc = tarjanScc(g, &n);
  EXPECT_EQ(n, 4);
  std::sort(scc.begin(), scc.end());
  EXPECT_EQ(scc, (std::vector<int32_t>{0, 1, 2, 3}));
}

TEST(Scc, FindsCycleComponent) {
  DiGraph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 1);  // 1 <-> 2 cycle
  g.addEdge(2, 3);
  g.addEdge(3, 4);
  int32_t n = 0;
  auto scc = tarjanScc(g, &n);
  EXPECT_EQ(n, 4);
  EXPECT_EQ(scc[1], scc[2]);
  EXPECT_NE(scc[0], scc[1]);
  EXPECT_NE(scc[3], scc[4]);
}

TEST(Scc, ReverseTopologicalIds) {
  // In Tarjan, an SCC is assigned before anything that reaches it, so ids
  // decrease along edges in the condensation.
  DiGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  int32_t n = 0;
  auto scc = tarjanScc(g, &n);
  EXPECT_GT(scc[0], scc[1]);
  EXPECT_GT(scc[1], scc[2]);
  EXPECT_GT(scc[2], scc[3]);
}

TEST(Condense, ClusterGraph) {
  DiGraph g = diamond();
  // Clusters: {0,1} and {2,3}.
  std::vector<int32_t> clusterOf = {0, 0, 1, 1};
  DiGraph cg = condense(g, clusterOf, 2);
  EXPECT_EQ(cg.numNodes(), 2);
  EXPECT_TRUE(cg.hasEdge(0, 1));
  // 2->3 is internal; 1->3 crosses 0->1; 0->2 crosses 0->1: single deduped edge.
  EXPECT_EQ(cg.numEdges(), 1);
}

TEST(Condense, CanProduceCycle) {
  // The Figure 2 situation: an acyclic graph whose partitioning is cyclic.
  DiGraph g(4);  // A=0 -> C=2, C -> B=1, B -> D=3 ; partition {A,B} {C,D}
  g.addEdge(0, 2);
  g.addEdge(2, 1);
  g.addEdge(1, 3);
  std::vector<int32_t> clusterOf = {0, 0, 1, 1};
  DiGraph cg = condense(g, clusterOf, 2);
  EXPECT_FALSE(cg.isAcyclic());
  // The alternative partitioning {A,C} {B,D} is acyclic.
  std::vector<int32_t> alt = {0, 1, 0, 1};
  EXPECT_TRUE(condense(g, alt, 2).isAcyclic());
}

// Property: topoSort of random DAGs is a valid linearization; reachability
// agrees with positions (reachable implies earlier position).
class RandomDagTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDagTest, TopoSortValid) {
  Rng rng(GetParam());
  int n = 50 + static_cast<int>(rng.nextBelow(100));
  DiGraph g(n);
  // Random DAG: edges only forward in a hidden order.
  for (int i = 0; i < n; i++) {
    for (int j = i + 1; j < n; j++) {
      if (rng.nextChance(0.05)) g.addEdge(i, j);
    }
  }
  auto order = g.topoSort();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), static_cast<size_t>(n));
  std::vector<int> pos(static_cast<size_t>(n));
  for (size_t i = 0; i < order->size(); i++) pos[static_cast<size_t>((*order)[i])] = static_cast<int>(i);
  for (NodeId v = 0; v < n; v++)
    for (NodeId w : g.outNeighbors(v)) EXPECT_LT(pos[static_cast<size_t>(v)], pos[static_cast<size_t>(w)]);

  // SCC count equals node count in a DAG.
  int32_t sccs = 0;
  tarjanScc(g, &sccs);
  EXPECT_EQ(sccs, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace essent::graph
