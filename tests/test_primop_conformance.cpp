// Per-primop conformance: for every FIRRTL primitive operation, random
// operand widths (straddling the 64-bit fast/slow path boundary) and random
// values, a one-op circuit built through the full frontend must produce
// exactly the reference semantics of support/bvops.h — checking the parser,
// width inference, the builder, and both evaluator paths in one sweep.
#include <gtest/gtest.h>

#include <functional>

#include "sim/compile.h"
#include "sim/full_cycle.h"
#include "support/bvops.h"
#include "support/rng.h"
#include "support/strutil.h"

namespace essent {
namespace {

using RefFn2 = std::function<BitVec(const BitVec&, const BitVec&, bool)>;

struct BinaryCase {
  const char* name;
  RefFn2 ref;
  bool signedOk;  // also test the SInt flavour
};

class BinaryPrimOp : public ::testing::TestWithParam<BinaryCase> {};

TEST_P(BinaryPrimOp, MatchesReferenceAcrossWidths) {
  const auto& pc = GetParam();
  Rng rng(std::hash<std::string>{}(pc.name));
  const uint32_t widths[] = {1, 3, 8, 16, 31, 33, 63, 64, 65, 100};
  for (uint32_t wa : widths) {
    for (uint32_t wb : {wa, (wa % 7) + 1, 70u}) {
      for (bool sgn : {false, true}) {
        if (sgn && !pc.signedOk) continue;
        const char* ty = sgn ? "SInt" : "UInt";
        // Output width declared from the reference result width.
        BitVec za(wa), zb(wb);
        uint32_t ow = pc.ref(za, zb, sgn).width();
        std::string text = strfmt(
            "circuit T :\n  module T :\n    input a : %s<%u>\n    input b : %s<%u>\n"
            "    output o : %s<%u>\n    o <= %s(a, b)\n",
            ty, wa, ty, wb, pc.ref(za, zb, sgn).width() == 1 && !sgn ? "UInt" : ty, ow,
            pc.name);
        // Comparisons and bitwise ops return UInt regardless of operands.
        sim::SimIR ir;
        try {
          ir = sim::buildFromFirrtl(text);
        } catch (const std::exception& e) {
          // Result-type signedness differs per op; retry with UInt output.
          text = strfmt(
              "circuit T :\n  module T :\n    input a : %s<%u>\n    input b : %s<%u>\n"
              "    output o : UInt<%u>\n    o <= asUInt(%s(a, b))\n",
              ty, wa, ty, wb, ow, pc.name);
          ir = sim::buildFromFirrtl(text);
        }
        sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
        for (int iter = 0; iter < 12; iter++) {
          BitVec va(wa), vb(wb);
          for (uint32_t i = 0; i < wa; i++) va.setBit(i, rng.nextBool());
          for (uint32_t i = 0; i < wb; i++) vb.setBit(i, rng.nextBool());
          eng.pokeBV("a", va);
          eng.pokeBV("b", vb);
          eng.tick();
          BitVec want = bvops::extend(pc.ref(va, vb, sgn), false, ow);
          BitVec got = eng.peekBV("o");
          ASSERT_EQ(got.toHexString(), want.toHexString())
              << pc.name << " wa=" << wa << " wb=" << wb << " sgn=" << sgn
              << " a=" << va.toHexString() << " b=" << vb.toHexString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, BinaryPrimOp,
    ::testing::Values(
        BinaryCase{"add", [](const BitVec& a, const BitVec& b, bool s) { return bvops::add(a, b, s); }, true},
        BinaryCase{"sub", [](const BitVec& a, const BitVec& b, bool s) { return bvops::sub(a, b, s); }, true},
        BinaryCase{"mul", [](const BitVec& a, const BitVec& b, bool s) { return bvops::mul(a, b, s); }, true},
        BinaryCase{"div", [](const BitVec& a, const BitVec& b, bool s) { return bvops::div(a, b, s); }, true},
        BinaryCase{"rem", [](const BitVec& a, const BitVec& b, bool s) { return bvops::rem(a, b, s); }, true},
        BinaryCase{"lt", [](const BitVec& a, const BitVec& b, bool s) { return bvops::lt(a, b, s); }, true},
        BinaryCase{"leq", [](const BitVec& a, const BitVec& b, bool s) { return bvops::leq(a, b, s); }, true},
        BinaryCase{"gt", [](const BitVec& a, const BitVec& b, bool s) { return bvops::gt(a, b, s); }, true},
        BinaryCase{"geq", [](const BitVec& a, const BitVec& b, bool s) { return bvops::geq(a, b, s); }, true},
        BinaryCase{"eq", [](const BitVec& a, const BitVec& b, bool s) { return bvops::eq(a, b, s); }, true},
        BinaryCase{"neq", [](const BitVec& a, const BitVec& b, bool s) { return bvops::neq(a, b, s); }, true},
        BinaryCase{"and", [](const BitVec& a, const BitVec& b, bool s) { return bvops::band(a, b, s); }, true},
        BinaryCase{"or", [](const BitVec& a, const BitVec& b, bool s) { return bvops::bor(a, b, s); }, true},
        BinaryCase{"xor", [](const BitVec& a, const BitVec& b, bool s) { return bvops::bxor(a, b, s); }, true},
        BinaryCase{"cat", [](const BitVec& a, const BitVec& b, bool) { return bvops::cat(a, b); }, true}),
    [](const ::testing::TestParamInfo<BinaryCase>& info) { return info.param.name; });

// Unary + const-parameter ops, spot-checked across the width boundary.
TEST(UnaryPrimOps, MatchReferenceAcrossWidths) {
  Rng rng(4242);
  for (uint32_t w : {1u, 7u, 32u, 63u, 64u, 65u, 90u}) {
    for (bool sgn : {false, true}) {
      const char* ty = sgn ? "SInt" : "UInt";
      uint32_t n = (w / 2) ? w / 2 : 1;
      std::string text = strfmt("circuit U :\n  module U :\n    input a : %s<%u>\n", ty, w);
      text += strfmt("    output o_not : UInt<%u>\n", w);
      text += strfmt("    output o_neg : SInt<%u>\n", w + 1);
      text += strfmt("    output o_cvt : SInt<%u>\n", sgn ? w : w + 1);
      text += "    output o_andr : UInt<1>\n    output o_orr : UInt<1>\n";
      text += "    output o_xorr : UInt<1>\n";
      text += strfmt("    output o_shl : %s<%u>\n", ty, w + 3);
      text += strfmt("    output o_shr : %s<%u>\n", ty, bvops::shrWidth(w, n));
      text += strfmt("    output o_bits : UInt<%u>\n", w - (w > 1 ? 1 : 0) - 0);
      text += strfmt("    output o_head : UInt<%u>\n", n);
      text += strfmt("    output o_tail : UInt<%u>\n", w - n);
      text += strfmt("    output o_pad : %s<%u>\n", ty, w + 5);
      text += "    o_not <= not(a)\n";
      text += "    o_neg <= neg(a)\n";
      text += "    o_cvt <= cvt(a)\n";
      text += "    o_andr <= andr(a)\n    o_orr <= orr(a)\n    o_xorr <= xorr(a)\n";
      text += "    o_shl <= shl(a, 3)\n";
      text += strfmt("    o_shr <= shr(a, %u)\n", n);
      text += strfmt("    o_bits <= bits(a, %u, 0)\n", w - (w > 1 ? 2 : 1));
      text += strfmt("    o_head <= head(a, %u)\n", n);
      text += strfmt("    o_tail <= tail(a, %u)\n", n);
      text += "    o_pad <= pad(a, " + std::to_string(w + 5) + ")\n";
      sim::SimIR ir = sim::buildFromFirrtl(text);
      sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
      for (int iter = 0; iter < 10; iter++) {
        BitVec v(w);
        for (uint32_t i = 0; i < w; i++) v.setBit(i, rng.nextBool());
        eng.pokeBV("a", v);
        eng.tick();
        EXPECT_EQ(eng.peekBV("o_not"), bvops::bnot(v));
        EXPECT_EQ(eng.peekBV("o_neg"), bvops::neg(v, sgn));
        EXPECT_EQ(eng.peekBV("o_cvt"), bvops::cvt(v, sgn));
        EXPECT_EQ(eng.peekBV("o_andr"), bvops::andr(v));
        EXPECT_EQ(eng.peekBV("o_orr"), bvops::orr(v));
        EXPECT_EQ(eng.peekBV("o_xorr"), bvops::xorr(v));
        EXPECT_EQ(eng.peekBV("o_shl"), bvops::shl(v, 3));
        EXPECT_EQ(eng.peekBV("o_shr"), bvops::shr(v, sgn, n));
        if (w > 1) {
          EXPECT_EQ(eng.peekBV("o_bits"), bvops::bits(v, w - 2, 0));
        }
        EXPECT_EQ(eng.peekBV("o_head"), bvops::head(v, n));
        EXPECT_EQ(eng.peekBV("o_tail"), bvops::tail(v, n));
        EXPECT_EQ(eng.peekBV("o_pad"), bvops::pad(v, sgn, w + 5));
      }
    }
  }
}

TEST(DynamicShiftPrimOps, MatchReference) {
  Rng rng(777);
  for (uint32_t w : {8u, 40u, 64u, 80u}) {
    for (bool sgn : {false, true}) {
      const char* ty = sgn ? "SInt" : "UInt";
      uint32_t shW = 4;
      std::string text = strfmt(
          "circuit D :\n  module D :\n    input a : %s<%u>\n    input sh : UInt<%u>\n"
          "    output l : %s<%u>\n    output r : %s<%u>\n"
          "    l <= dshl(a, sh)\n    r <= dshr(a, sh)\n",
          ty, w, shW, ty, bvops::dshlWidth(w, shW), ty, w);
      sim::SimIR ir = sim::buildFromFirrtl(text);
      sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
      for (int iter = 0; iter < 16; iter++) {
        BitVec v(w);
        for (uint32_t i = 0; i < w; i++) v.setBit(i, rng.nextBool());
        uint64_t sh = rng.nextBelow(16);
        eng.pokeBV("a", v);
        eng.poke("sh", sh);
        eng.tick();
        BitVec shv = BitVec::fromU64(shW, sh);
        EXPECT_EQ(eng.peekBV("l"), bvops::dshl(v, shv, shW)) << w << " " << sgn << " " << sh;
        EXPECT_EQ(eng.peekBV("r"), bvops::dshr(v, sgn, shv)) << w << " " << sgn << " " << sh;
      }
    }
  }
}

}  // namespace
}  // namespace essent
