// Engine-conformance suite for the public API (`ctest -L api`): every
// in-process EngineKind constructed through sim::makeEngine on the shipped
// examples, cross-checked signal-for-signal against the full-cycle
// reference, plus EngineStats invariants, reset semantics, factory name
// parsing, and SimFarm determinism (farm(N) must be bit-identical to N
// solo runs — run under TSan by the tsan preset).
//
// Deliberately includes only the public <essent/...> headers: if this file
// stops compiling, the stable surface (docs/API.md) broke.
#include <gtest/gtest.h>

#include <essent/engine.h>
#include <essent/farm.h>
#include <essent/options.h>
#include <essent/results.h>
#include <essent/vcd.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#ifndef EXAMPLES_DIR
#error "EXAMPLES_DIR must be defined by the build"
#endif
#ifndef FUZZ_CORPUS_DIR
#error "FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace {

using namespace essent;

std::string readExample(const char* name) {
  std::ifstream f(std::string(EXAMPLES_DIR) + "/" + name);
  EXPECT_TRUE(f.good()) << "missing example " << name;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::shared_ptr<const sim::CompiledDesign> compileExample(const char* name) {
  return sim::CompiledDesign::compile(sim::buildFromFirrtl(readExample(name)));
}

// Exercises both designs' inputs: GCD gets restarting operand pairs,
// CounterBanks a rotating bank select with duty-cycled enable.
void driveExample(sim::Engine& eng, uint64_t cycle) {
  if (cycle < 2) {
    eng.poke("reset", 1);
    return;
  }
  eng.poke("reset", 0);
  if (eng.ir().findSignal("start") >= 0) {  // gcd.fir
    eng.poke("start", cycle % 16 == 2 ? 1 : 0);
    eng.poke("a", 18 + 7 * (cycle / 16));
    eng.poke("b", 12 + 5 * (cycle / 16));
  } else {  // counterbanks.fir
    eng.poke("en", cycle % 3 != 0 ? 1 : 0);
    eng.poke("sel", (cycle / 5) % 4);
  }
}

std::vector<std::pair<std::string, std::string>> finalOutputs(const sim::Engine& eng) {
  std::vector<std::pair<std::string, std::string>> out;
  const sim::SimIR& ir = eng.ir();
  for (int32_t o : ir.outputs)
    out.emplace_back(ir.signals[static_cast<size_t>(o)].name, eng.peekSigBV(o).toHexString());
  return out;
}

const char* kExamples[] = {"gcd.fir", "counterbanks.fir"};

TEST(ApiFactory, ConstructsEveryInProcessKind) {
  for (const char* ex : kExamples) {
    auto design = compileExample(ex);
    for (sim::EngineKind k : sim::inProcessEngineKinds()) {
      auto eng = sim::makeEngine(k, design);
      ASSERT_NE(eng, nullptr) << ex << " " << sim::engineKindName(k);
      // CcssPar may gracefully degrade to the serial engine on small hosts,
      // in which case it reports the serial long name.
      if (k != sim::EngineKind::CcssPar)
        EXPECT_STREQ(eng->name(), sim::engineKindLongName(k)) << ex;
      eng->tick();
      EXPECT_EQ(eng->stats().cycles, 1u);
    }
  }
}

TEST(ApiFactory, RejectsCodegen) {
  auto design = compileExample("gcd.fir");
  EXPECT_THROW(sim::makeEngine(sim::EngineKind::Codegen, design), std::invalid_argument);
}

TEST(ApiFactory, KindNamesParseRoundTrip) {
  for (sim::EngineKind k : sim::allEngineKinds()) {
    sim::EngineKind parsed;
    ASSERT_TRUE(sim::parseEngineKind(sim::engineKindName(k), parsed));
    EXPECT_EQ(parsed, k);
    ASSERT_TRUE(sim::parseEngineKind(sim::engineKindLongName(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  sim::EngineKind parsed;
  EXPECT_FALSE(sim::parseEngineKind("verilator", parsed));
  EXPECT_FALSE(sim::parseEngineKind("", parsed));
}

TEST(ApiConformance, AllKindsMatchFullCycleReference) {
  for (const char* ex : kExamples) {
    auto design = compileExample(ex);
    for (sim::EngineKind k : sim::inProcessEngineKinds()) {
      if (k == sim::EngineKind::FullCycle) continue;
      auto ref = sim::makeEngine(sim::EngineKind::FullCycle, design);
      auto dut = sim::makeEngine(k, design);
      auto mismatch = sim::compareEngines(*ref, *dut, 300, driveExample);
      EXPECT_FALSE(mismatch.has_value())
          << ex << " " << sim::engineKindName(k) << ": " << mismatch->describe();
    }
  }
}

TEST(ApiConformance, StatsInvariants) {
  auto design = compileExample("counterbanks.fir");
  for (sim::EngineKind k : sim::inProcessEngineKinds()) {
    auto eng = sim::makeEngine(k, design);
    sim::RunResult res = sim::runEngine(*eng, 500, driveExample);
    EXPECT_EQ(res.cycles, 500u) << sim::engineKindName(k);
    EXPECT_EQ(res.stats.cycles, 500u);
    EXPECT_GT(res.stats.opsEvaluated, 0u);
    EXPECT_LE(res.stats.partitionActivations, res.stats.partitionChecks);
    if (auto* act = dynamic_cast<core::ActivityEngine*>(eng.get())) {
      EXPECT_GE(act->effectiveActivity(), 0.0);
      EXPECT_LE(act->effectiveActivity(), 1.0);
      // The design is enable-gated: the CCSS engine must be skipping work.
      EXPECT_LT(res.stats.opsEvaluated, 500u * design->ir.ops.size());
    }
  }
}

TEST(ApiConformance, ResetReturnsEveryKindToIdenticalState) {
  auto design = compileExample("gcd.fir");
  for (sim::EngineKind k : sim::inProcessEngineKinds()) {
    // Run a while, then hold reset: registers must come back to the same
    // values a fresh instance reaches after the same reset pulse.
    auto dirty = sim::makeEngine(k, design);
    sim::runEngine(*dirty, 100, driveExample);
    dirty->poke("start", 0);
    dirty->poke("reset", 1);
    dirty->tick();
    dirty->tick();

    auto fresh = sim::makeEngine(k, design);
    fresh->poke("start", 0);
    fresh->poke("reset", 1);
    fresh->tick();
    fresh->tick();

    EXPECT_EQ(finalOutputs(*dirty), finalOutputs(*fresh)) << sim::engineKindName(k);
    EXPECT_EQ(dirty->peek("busy"), 0u);
  }
}

TEST(ApiSharedStructure, DerivedStructureIsBuiltOncePerDesign) {
  auto design = compileExample("counterbanks.fir");
  core::ScheduleOptions so;
  auto a = core::CompiledCcss::get(design, so);
  auto b = core::CompiledCcss::get(design, so);
  // Cache hit: the same immutable schedule body (the wrapper pairing it
  // with the design is rebuilt per call, so compare the cached body).
  EXPECT_EQ(a->body.get(), b->body.get());
  // Different schedule-affecting options must NOT alias.
  core::ScheduleOptions other;
  other.partition.smallThreshold = 2;
  auto c = core::CompiledCcss::get(design, other);
  EXPECT_NE(a->body.get(), c->body.get());
  // Engines constructed from the shared design alias its structure.
  auto e1 = sim::makeEngine(sim::EngineKind::Ccss, design);
  auto e2 = sim::makeEngine(sim::EngineKind::Ccss, design);
  EXPECT_EQ(&e1->design()->ir, &e2->design()->ir);
}

std::vector<core::FarmJob> farmJobs(size_t n, uint64_t cycles) {
  std::vector<core::FarmJob> jobs(n);
  for (size_t i = 0; i < n; i++) {
    jobs[i].name = "inst" + std::to_string(i);
    jobs[i].maxCycles = cycles;
    // Phase-shifted stimulus so instances diverge from each other.
    jobs[i].stimulus = [i](sim::Engine& eng, uint64_t cycle) {
      driveExample(eng, cycle + 3 * i);
    };
  }
  return jobs;
}

TEST(ApiFarm, BitIdenticalToSoloRuns) {
  for (const char* ex : kExamples) {
    auto design = compileExample(ex);
    for (sim::EngineKind k : {sim::EngineKind::FullCycle, sim::EngineKind::Ccss}) {
      std::vector<core::FarmJob> jobs = farmJobs(8, 400);

      core::FarmOptions fo;
      fo.kind = k;
      fo.workers = 4;
      core::SimFarm farm(design, fo);
      core::FarmReport report = farm.run(jobs);
      ASSERT_TRUE(report.allOk());
      ASSERT_EQ(report.instances.size(), jobs.size());

      for (size_t i = 0; i < jobs.size(); i++) {
        auto solo = sim::makeEngine(k, design);
        sim::RunResult res = sim::runEngine(*solo, jobs[i].maxCycles, jobs[i].stimulus);
        const core::FarmInstanceResult& inst = report.instances[i];
        EXPECT_EQ(inst.cycles, res.cycles) << ex << " inst " << i;
        EXPECT_EQ(inst.stopped, res.stopped);
        EXPECT_EQ(inst.exitCode, res.exitCode);
        EXPECT_EQ(inst.outputs, finalOutputs(*solo)) << ex << " inst " << i;
        EXPECT_EQ(inst.printOutput, solo->printOutput());
        // Work counters are deterministic too — same ops, same skips.
        EXPECT_EQ(inst.stats.opsEvaluated, res.stats.opsEvaluated);
        EXPECT_EQ(inst.stats.partitionActivations, res.stats.partitionActivations);
      }
    }
  }
}

TEST(ApiFarm, WorkerCountDoesNotChangeResults) {
  auto design = compileExample("counterbanks.fir");
  std::vector<core::FarmJob> jobs = farmJobs(6, 300);
  std::vector<core::FarmReport> reports;
  for (unsigned workers : {1u, 2u, 6u}) {
    core::FarmOptions fo;
    fo.workers = workers;
    core::SimFarm farm(design, fo);
    reports.push_back(farm.run(jobs));
    ASSERT_TRUE(reports.back().allOk());
  }
  for (size_t w = 1; w < reports.size(); w++)
    for (size_t i = 0; i < jobs.size(); i++) {
      EXPECT_EQ(reports[w].instances[i].outputs, reports[0].instances[i].outputs);
      EXPECT_EQ(reports[w].instances[i].stats.opsEvaluated,
                reports[0].instances[i].stats.opsEvaluated);
    }
}

TEST(ApiFarm, AggregatesAreConsistent) {
  auto design = compileExample("counterbanks.fir");
  std::vector<core::FarmJob> jobs = farmJobs(5, 200);
  core::SimFarm farm(design, {});
  core::FarmReport report = farm.run(jobs);
  uint64_t sum = 0;
  for (const auto& inst : report.instances) sum += inst.cycles;
  EXPECT_EQ(report.totalCycles, sum);
  EXPECT_EQ(report.totalCycles, 5u * 200u);
  EXPECT_GE(report.workers, 1u);
  EXPECT_GT(report.wallSeconds, 0.0);
  EXPECT_GT(report.instancesPerSec, 0.0);
  EXPECT_GT(report.aggregateCyclesPerSec, 0.0);
}

TEST(ApiFarm, InstanceErrorsAreTrappedNotFatal) {
  auto design = compileExample("counterbanks.fir");
  std::vector<core::FarmJob> jobs = farmJobs(3, 100);
  jobs[1].init = [](sim::Engine&) { throw std::runtime_error("bad instance"); };
  core::SimFarm farm(design, {});
  core::FarmReport report = farm.run(jobs);
  EXPECT_FALSE(report.allOk());
  EXPECT_NE(report.instances[1].error.find("bad instance"), std::string::npos);
  EXPECT_TRUE(report.instances[0].error.empty());
  EXPECT_TRUE(report.instances[2].error.empty());
  EXPECT_EQ(report.instances[0].cycles, 100u);
}

TEST(ApiFarm, RejectsCodegenAndNullDesign) {
  auto design = compileExample("gcd.fir");
  core::FarmOptions fo;
  fo.kind = sim::EngineKind::Codegen;
  EXPECT_THROW(core::SimFarm(design, fo), std::invalid_argument);
  EXPECT_THROW(core::SimFarm(nullptr, {}), std::invalid_argument);
}

TEST(ApiFarm, EmptyBatchIsANoop) {
  core::SimFarm farm(compileExample("gcd.fir"), {});
  core::FarmReport report = farm.run({});
  EXPECT_TRUE(report.instances.empty());
  EXPECT_EQ(report.totalCycles, 0u);
}

// --- SIMD lane engine conformance (docs/SIMD.md) -------------------------

std::string readCorpus(const char* name) {
  std::ifstream f(std::string(FUZZ_CORPUS_DIR) + "/" + name);
  EXPECT_TRUE(f.good()) << "missing corpus file " << name;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Generic divergent stimulus: every input gets a lane- and cycle-dependent
// value (poke masks to the port width), so it works unchanged on the
// examples and on fuzz-corpus corner circuits.
void driveLaneMix(sim::Engine& eng, uint64_t cycle, unsigned lane) {
  const sim::SimIR& ir = eng.ir();
  for (size_t i = 0; i < ir.inputs.size(); i++) {
    const auto& sig = ir.signals[static_cast<size_t>(ir.inputs[i])];
    if (sig.name == "reset") {
      eng.poke("reset", cycle < 2 ? 1 : 0);
      continue;
    }
    eng.poke(sig.name, (cycle * 2654435761ull + lane * 40503ull) >> (i % 13));
  }
}

TEST(ApiLane, GroupsBitIdenticalToSoloCcssAcrossLaneCounts) {
  const std::pair<const char*, std::string> designsUnderTest[] = {
      {"gcd.fir", readExample("gcd.fir")},
      {"counterbanks.fir", readExample("counterbanks.fir")},
      {"corner_mux_deep.fir", readCorpus("corner_mux_deep.fir")},
  };
  for (const auto& [name, text] : designsUnderTest) {
    auto design = sim::CompiledDesign::compile(sim::buildFromFirrtl(text));
    auto ccss = core::CompiledCcss::get(design, core::ScheduleOptions{});
    for (unsigned lanes : {1u, 4u, 8u, 64u}) {
      core::LaneEngine group(ccss, lanes);
      std::vector<std::unique_ptr<sim::Engine>> solo;
      for (unsigned l = 0; l < lanes; l++)
        solo.push_back(sim::makeEngine(sim::EngineKind::Ccss, design));

      const uint64_t cycles = lanes == 64 ? 60 : 200;
      for (uint64_t c = 0; c < cycles; c++) {
        for (unsigned l = 0; l < lanes; l++) {
          driveLaneMix(group.lane(l), c, l);
          driveLaneMix(*solo[l], c, l);
        }
        group.tick();
        for (unsigned l = 0; l < lanes; l++) solo[l]->tick();
      }
      for (unsigned l = 0; l < lanes; l++) {
        const sim::Engine& a = group.lane(l);
        const sim::Engine& b = *solo[l];
        EXPECT_EQ(finalOutputs(a), finalOutputs(b))
            << name << " lanes=" << lanes << " lane " << l;
        // Per-lane counters mirror the solo engine exactly, and obey the
        // same invariants every kind does.
        EXPECT_EQ(a.stats().cycles, b.stats().cycles);
        EXPECT_EQ(a.stats().opsEvaluated, b.stats().opsEvaluated)
            << name << " lanes=" << lanes << " lane " << l;
        EXPECT_EQ(a.stats().partitionActivations, b.stats().partitionActivations);
        EXPECT_EQ(a.stats().partitionChecks, b.stats().partitionChecks);
        EXPECT_LE(a.stats().partitionActivations, a.stats().partitionChecks);
        EXPECT_GE(group.laneEffectiveActivity(l), 0.0);
        EXPECT_LE(group.laneEffectiveActivity(l), 1.0);
      }
    }
  }
}

TEST(ApiLane, EarlyStopRetiresLanesIndependently) {
  auto design = sim::CompiledDesign::compile(sim::buildFromFirrtl(R"(
circuit S :
  module S :
    input clock : Clock
    input reset : UInt<1>
    input target : UInt<8>
    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    c <= tail(add(c, UInt<8>(1)), 1)
    stop(clock, eq(c, target), 1)
)"));
  core::LaneEngine group(core::CompiledCcss::get(design, core::ScheduleOptions{}), 8);
  for (unsigned l = 0; l < 8; l++) {
    group.lane(l).poke("reset", 0);
    group.lane(l).poke("target", 3 + 2 * l);
  }
  uint64_t lastMask = group.liveMask();
  EXPECT_EQ(lastMask, 0xffu);
  while (group.liveMask() != 0) {
    group.tick();
    // The live mask only ever loses lanes, in target order.
    EXPECT_EQ(group.liveMask() & ~lastMask, 0u);
    lastMask = group.liveMask();
  }
  for (unsigned l = 0; l < 8; l++) {
    EXPECT_TRUE(group.lane(l).stopped()) << l;
    EXPECT_EQ(group.lane(l).stats().cycles, 4u + 2 * l) << l;
  }
}

TEST(ApiLane, BroadcastEngineTracksScalarThroughFactory) {
  auto design = compileExample("counterbanks.fir");
  sim::EngineOptions eo;
  eo.lanes = 8;
  auto lane = sim::makeEngine(sim::EngineKind::Lane, design, eo);
  auto ref = sim::makeEngine(sim::EngineKind::Ccss, design);
  auto mismatch = sim::compareEngines(*ref, *lane, 300, driveExample);
  EXPECT_FALSE(mismatch.has_value()) << mismatch->describe();
}

}  // namespace
