// Unit and property tests for BitVec and the FIRRTL primop reference
// semantics in support/bvops.h. The property sweeps check wide BitVec
// arithmetic against native 64-bit arithmetic on random operands, which is
// the same oracle relationship the simulation engines' fast path relies on.
#include <gtest/gtest.h>

#include "support/bitvec.h"
#include "support/bvops.h"
#include "support/rng.h"
#include "support/strutil.h"

namespace essent {
namespace {

using bvops::extend;

TEST(BitVec, DefaultIsZeroWidth) {
  BitVec v;
  EXPECT_EQ(v.width(), 0u);
  EXPECT_TRUE(v.isZero());
  EXPECT_TRUE(v.isAllOnes());  // vacuously
  EXPECT_EQ(v.toU64(), 0u);
}

TEST(BitVec, FromU64MasksToWidth) {
  BitVec v = BitVec::fromU64(8, 0x1ff);
  EXPECT_EQ(v.toU64(), 0xffu);
  EXPECT_TRUE(v.isAllOnes());
  EXPECT_EQ(v.width(), 8u);
}

TEST(BitVec, FromI64SignExtendsAcrossWords) {
  BitVec v = BitVec::fromI64(100, -1);
  EXPECT_TRUE(v.isAllOnes());
  EXPECT_TRUE(v.signBit());
  BitVec w = BitVec::fromI64(100, -2);
  EXPECT_FALSE(w.bit(0));
  EXPECT_TRUE(w.bit(1));
  EXPECT_TRUE(w.bit(99));
}

TEST(BitVec, BitAccess) {
  BitVec v(130);
  v.setBit(0, true);
  v.setBit(64, true);
  v.setBit(129, true);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(64));
  EXPECT_TRUE(v.bit(129));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(128));
  v.setBit(64, false);
  EXPECT_FALSE(v.bit(64));
  // Out-of-range accesses are inert.
  v.setBit(500, true);
  EXPECT_FALSE(v.bit(500));
}

TEST(BitVec, HexRoundTrip) {
  BitVec v = BitVec::fromHexString(128, "deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(v.toHexString(), "deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(v.word(0), 0x0123456789abcdefULL);
  EXPECT_EQ(v.word(1), 0xdeadbeefcafebabeULL);
}

TEST(BitVec, HexStringUnderscoresAndCase) {
  BitVec v = BitVec::fromHexString(32, "DE_AD_be_ef");
  EXPECT_EQ(v.toU64(), 0xdeadbeefULL);
}

TEST(BitVec, HexStringRejectsJunk) {
  EXPECT_THROW(BitVec::fromHexString(32, "xyz"), std::invalid_argument);
}

TEST(BitVec, DecStringRoundTrip) {
  BitVec v = BitVec::fromDecString(128, "340282366920938463463374607431768211455");
  EXPECT_TRUE(v.isAllOnes());
  EXPECT_EQ(v.toDecString(), "340282366920938463463374607431768211455");
  BitVec small = BitVec::fromDecString(16, "12345");
  EXPECT_EQ(small.toU64(), 12345u);
  EXPECT_EQ(small.toDecString(), "12345");
}

TEST(BitVec, NegativeDecStringWraps) {
  BitVec v = BitVec::fromDecString(8, "-1");
  EXPECT_EQ(v.toU64(), 0xffu);
  EXPECT_EQ(v.toSignedDecString(), "-1");
  EXPECT_EQ(BitVec::fromDecString(8, "-128").toSignedDecString(), "-128");
}

TEST(BitVec, ToI64SignExtends) {
  EXPECT_EQ(BitVec::fromU64(4, 0xf).toI64(), -1);
  EXPECT_EQ(BitVec::fromU64(4, 0x7).toI64(), 7);
  EXPECT_EQ(BitVec::fromU64(64, ~0ull).toI64(), -1);
}

TEST(BitVec, BitLength) {
  EXPECT_EQ(BitVec(64).bitLength(), 0u);
  EXPECT_EQ(BitVec::fromU64(64, 1).bitLength(), 1u);
  EXPECT_EQ(BitVec::fromU64(64, 0x80).bitLength(), 8u);
  BitVec wide(200);
  wide.setBit(150, true);
  EXPECT_EQ(wide.bitLength(), 151u);
}

TEST(BitVec, CompareUnsignedAcrossWidths) {
  BitVec a = BitVec::fromU64(8, 200);
  BitVec b = BitVec::fromU64(16, 200);
  EXPECT_EQ(BitVec::ucmp(a, b), 0);
  EXPECT_LT(BitVec::ucmp(a, BitVec::fromU64(16, 300)), 0);
  EXPECT_GT(BitVec::ucmp(BitVec::fromU64(80, 1) , BitVec(8)), 0);
}

TEST(BitVec, CompareSigned) {
  BitVec minus1 = BitVec::fromI64(8, -1);
  BitVec plus1 = BitVec::fromI64(8, 1);
  EXPECT_LT(BitVec::scmp(minus1, plus1), 0);
  EXPECT_GT(BitVec::scmp(plus1, minus1), 0);
  EXPECT_EQ(BitVec::scmp(minus1, BitVec::fromI64(16, -1)), 0);
  EXPECT_LT(BitVec::scmp(BitVec::fromI64(8, -100), BitVec::fromI64(8, -50)), 0);
}

TEST(BvOps, AddWidensByOne) {
  BitVec a = BitVec::fromU64(8, 255), b = BitVec::fromU64(8, 255);
  BitVec r = bvops::add(a, b, false);
  EXPECT_EQ(r.width(), 9u);
  EXPECT_EQ(r.toU64(), 510u);
}

TEST(BvOps, SignedAdd) {
  BitVec a = BitVec::fromI64(8, -100), b = BitVec::fromI64(8, -100);
  BitVec r = bvops::add(a, b, true);
  EXPECT_EQ(r.width(), 9u);
  EXPECT_EQ(extend(r, true, 64).toI64(), -200);
}

TEST(BvOps, SubProducesNegative) {
  BitVec a = BitVec::fromU64(8, 5), b = BitVec::fromU64(8, 10);
  BitVec r = bvops::sub(a, b, false);
  // Unsigned sub wraps modulo 2^9.
  EXPECT_EQ(r.width(), 9u);
  EXPECT_EQ(r.toU64(), 512u - 5u);
}

TEST(BvOps, MulFullWidth) {
  BitVec a = BitVec::fromU64(64, ~0ull), b = BitVec::fromU64(64, ~0ull);
  BitVec r = bvops::mul(a, b, false);
  EXPECT_EQ(r.width(), 128u);
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(r.toHexString(), "fffffffffffffffe0000000000000001");
}

TEST(BvOps, SignedMul) {
  BitVec a = BitVec::fromI64(8, -5), b = BitVec::fromI64(8, 7);
  BitVec r = bvops::mul(a, b, true);
  EXPECT_EQ(r.width(), 16u);
  EXPECT_EQ(extend(r, true, 64).toI64(), -35);
}

TEST(BvOps, DivAndRem) {
  BitVec a = BitVec::fromU64(32, 1000), b = BitVec::fromU64(32, 7);
  EXPECT_EQ(bvops::div(a, b, false).toU64(), 142u);
  EXPECT_EQ(bvops::rem(a, b, false).toU64(), 6u);
}

TEST(BvOps, SignedDivTruncatesTowardZero) {
  BitVec a = BitVec::fromI64(16, -7), b = BitVec::fromI64(16, 2);
  BitVec q = bvops::div(a, b, true);
  EXPECT_EQ(extend(q, true, 64).toI64(), -3);
  BitVec r = bvops::rem(a, b, true);
  EXPECT_EQ(extend(r, true, 64).toI64(), -1);
}

TEST(BvOps, DivByZeroIsZeroRemIsDividend) {
  BitVec a = BitVec::fromU64(16, 123), z(16);
  EXPECT_EQ(bvops::div(a, z, false).toU64(), 0u);
  EXPECT_EQ(bvops::rem(a, z, false).toU64(), 123u);
}

TEST(BvOps, WideDivision) {
  // (2^100 + 12345) / 7 computed independently.
  BitVec a(128);
  a.setBit(100, true);
  BitVec k = BitVec::fromU64(128, 12345);
  a = extend(bvops::add(a, k, false), false, 128);
  BitVec b = BitVec::fromU64(128, 7);
  BitVec q = bvops::div(a, b, false);
  BitVec r = bvops::rem(a, b, false);
  // Verify a == q*b + r and r < b.
  BitVec qb = extend(bvops::mul(q, b, false), false, 128);
  BitVec sum = extend(bvops::add(qb, r, false), false, 128);
  EXPECT_EQ(sum, a);
  EXPECT_LT(BitVec::ucmp(r, b), 0);
}

TEST(BvOps, Comparisons) {
  BitVec a = BitVec::fromU64(8, 5), b = BitVec::fromU64(8, 9);
  EXPECT_EQ(bvops::lt(a, b, false).toU64(), 1u);
  EXPECT_EQ(bvops::gt(a, b, false).toU64(), 0u);
  EXPECT_EQ(bvops::leq(a, a, false).toU64(), 1u);
  EXPECT_EQ(bvops::geq(a, a, false).toU64(), 1u);
  EXPECT_EQ(bvops::eq(a, b, false).toU64(), 0u);
  EXPECT_EQ(bvops::neq(a, b, false).toU64(), 1u);
}

TEST(BvOps, PadAndShifts) {
  BitVec a = BitVec::fromU64(4, 0b1010);
  EXPECT_EQ(bvops::pad(a, false, 8).width(), 8u);
  EXPECT_EQ(bvops::pad(a, false, 8).toU64(), 0b1010u);
  EXPECT_EQ(bvops::pad(a, false, 2).width(), 4u);  // pad never narrows
  BitVec sa = BitVec::fromI64(4, -2);
  EXPECT_EQ(extend(bvops::pad(sa, true, 8), true, 64).toI64(), -2);
  EXPECT_EQ(bvops::shl(a, 4).width(), 8u);
  EXPECT_EQ(bvops::shl(a, 4).toU64(), 0b10100000u);
  EXPECT_EQ(bvops::shr(a, false, 2).width(), 2u);
  EXPECT_EQ(bvops::shr(a, false, 2).toU64(), 0b10u);
  // shr below 1 bit clamps to width 1.
  EXPECT_EQ(bvops::shr(a, false, 9).width(), 1u);
  EXPECT_EQ(bvops::shr(a, false, 9).toU64(), 0u);
  // Arithmetic shift keeps the sign bit.
  EXPECT_EQ(extend(bvops::shr(sa, true, 1), true, 64).toI64(), -1);
}

TEST(BvOps, DynamicShifts) {
  BitVec a = BitVec::fromU64(8, 0x81);
  BitVec sh = BitVec::fromU64(3, 4);
  BitVec l = bvops::dshl(a, sh, 3);
  EXPECT_EQ(l.width(), 8u + 7u);
  EXPECT_EQ(l.toU64(), 0x810u);
  BitVec r = bvops::dshr(a, false, sh);
  EXPECT_EQ(r.width(), 8u);
  EXPECT_EQ(r.toU64(), 0x8u);
  BitVec sr = bvops::dshr(BitVec::fromI64(8, -64), true, sh);
  EXPECT_EQ(extend(sr, true, 64).toI64(), -4);
  // Shift of everything out.
  EXPECT_EQ(bvops::dshr(a, false, BitVec::fromU64(8, 200)).toU64(), 0u);
}

TEST(BvOps, CvtNegNot) {
  BitVec u = BitVec::fromU64(8, 200);
  BitVec c = bvops::cvt(u, false);
  EXPECT_EQ(c.width(), 9u);
  EXPECT_EQ(extend(c, true, 64).toI64(), 200);
  BitVec s = BitVec::fromI64(8, -5);
  EXPECT_EQ(bvops::cvt(s, true).width(), 8u);
  BitVec n = bvops::neg(s, true);
  EXPECT_EQ(n.width(), 9u);
  EXPECT_EQ(extend(n, true, 64).toI64(), 5);
  EXPECT_EQ(bvops::bnot(BitVec::fromU64(4, 0b1010)).toU64(), 0b0101u);
}

TEST(BvOps, BitwiseAndReductions) {
  BitVec a = BitVec::fromU64(8, 0xf0), b = BitVec::fromU64(4, 0xf);
  EXPECT_EQ(bvops::band(a, b, false).toU64(), 0x0u);
  EXPECT_EQ(bvops::bor(a, b, false).toU64(), 0xffu);
  EXPECT_EQ(bvops::bxor(a, a, false).toU64(), 0u);
  EXPECT_EQ(bvops::andr(BitVec::fromU64(4, 0xf)).toU64(), 1u);
  EXPECT_EQ(bvops::andr(BitVec::fromU64(4, 0x7)).toU64(), 0u);
  EXPECT_EQ(bvops::orr(BitVec(12)).toU64(), 0u);
  EXPECT_EQ(bvops::orr(BitVec::fromU64(12, 0x800)).toU64(), 1u);
  EXPECT_EQ(bvops::xorr(BitVec::fromU64(4, 0b0111)).toU64(), 1u);
  EXPECT_EQ(bvops::xorr(BitVec::fromU64(4, 0b0101)).toU64(), 0u);
}

TEST(BvOps, CatBitsHeadTail) {
  BitVec a = BitVec::fromU64(4, 0xa), b = BitVec::fromU64(8, 0x55);
  BitVec c = bvops::cat(a, b);
  EXPECT_EQ(c.width(), 12u);
  EXPECT_EQ(c.toU64(), 0xa55u);
  EXPECT_EQ(bvops::bits(c, 11, 8).toU64(), 0xau);
  EXPECT_EQ(bvops::bits(c, 7, 0).toU64(), 0x55u);
  EXPECT_EQ(bvops::head(c, 4).toU64(), 0xau);
  EXPECT_EQ(bvops::tail(c, 4).toU64(), 0x55u);
  EXPECT_EQ(bvops::tail(c, 4).width(), 8u);
}

TEST(BvOps, CatAcrossWordBoundary) {
  BitVec a = BitVec::fromU64(40, 0xabcdef0123ULL);
  BitVec b = BitVec::fromU64(40, 0x4567890abcULL);
  BitVec c = bvops::cat(a, b);
  EXPECT_EQ(c.width(), 80u);
  EXPECT_EQ(c.toHexString(), "abcdef01234567890abc");
}

TEST(BvOps, MuxSelectsAndExtends) {
  BitVec t = BitVec::fromU64(8, 200), f = BitVec::fromU64(4, 3);
  EXPECT_EQ(bvops::mux(BitVec::fromU64(1, 1), t, f, false).toU64(), 200u);
  EXPECT_EQ(bvops::mux(BitVec(1), t, f, false).toU64(), 3u);
  EXPECT_EQ(bvops::mux(BitVec(1), t, f, false).width(), 8u);
}

// --- Property sweeps: wide BitVec semantics must agree with the uint64
// fast-path model for widths <= 32 (so results never exceed 64 bits). ---

struct ArithCase {
  uint32_t wa, wb;
};

class BvOpsProperty : public ::testing::TestWithParam<ArithCase> {};

TEST_P(BvOpsProperty, MatchesNativeArithmetic) {
  auto [wa, wb] = GetParam();
  Rng rng(wa * 1000003u + wb);
  auto mask = [](uint32_t w) { return w >= 64 ? ~0ull : ((1ull << w) - 1); };
  auto sext = [](uint64_t v, uint32_t w) {
    uint64_t m = 1ull << (w - 1);
    return static_cast<int64_t>((v ^ m) - m);
  };
  for (int iter = 0; iter < 200; iter++) {
    uint64_t ua = rng.next() & mask(wa);
    uint64_t ub = rng.next() & mask(wb);
    BitVec a = BitVec::fromU64(wa, ua), b = BitVec::fromU64(wb, ub);

    EXPECT_EQ(bvops::add(a, b, false).toU64(), ua + ub);
    EXPECT_EQ(bvops::mul(a, b, false).toU64(), ua * ub);
    EXPECT_EQ(bvops::sub(a, b, false).toU64(),
              (ua - ub) & mask(std::max(wa, wb) + 1));
    if (ub != 0) {
      EXPECT_EQ(bvops::div(a, b, false).toU64(), ua / ub);
      EXPECT_EQ(bvops::rem(a, b, false).toU64(), (ua % ub) & mask(std::min(wa, wb)));
    }
    EXPECT_EQ(bvops::lt(a, b, false).toU64(), ua < ub ? 1u : 0u);
    EXPECT_EQ(bvops::band(a, b, false).toU64(), ua & ub);
    EXPECT_EQ(bvops::bor(a, b, false).toU64(), ua | ub);
    EXPECT_EQ(bvops::bxor(a, b, false).toU64(), ua ^ ub);
    EXPECT_EQ(bvops::cat(a, b).toU64(), (ua << wb) | ub);

    // Signed versions.
    int64_t sa = sext(ua, wa), sb = sext(ub, wb);
    EXPECT_EQ(extend(bvops::add(a, b, true), true, 64).toI64(), sa + sb);
    EXPECT_EQ(extend(bvops::sub(a, b, true), true, 64).toI64(), sa - sb);
    EXPECT_EQ(extend(bvops::mul(a, b, true), true, 64).toI64(), sa * sb);
    if (sb != 0) {
      EXPECT_EQ(extend(bvops::div(a, b, true), true, 64).toI64(), sa / sb);
      EXPECT_EQ(extend(bvops::rem(a, b, true), true, 64).toI64(),
                sext(static_cast<uint64_t>(sa % sb) & mask(std::min(wa, wb)),
                     std::min(wa, wb)));
    }
    EXPECT_EQ(bvops::lt(a, b, true).toU64(), sa < sb ? 1u : 0u);
    EXPECT_EQ(bvops::geq(a, b, true).toU64(), sa >= sb ? 1u : 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BvOpsProperty,
                         ::testing::Values(ArithCase{1, 1}, ArithCase{4, 4}, ArithCase{7, 13},
                                           ArithCase{16, 16}, ArithCase{31, 32},
                                           ArithCase{32, 8}, ArithCase{24, 17}),
                         [](const ::testing::TestParamInfo<ArithCase>& info) {
                           return strfmt("w%u_w%u", info.param.wa, info.param.wb);
                         });

// Wide-value properties that don't fit a native oracle: algebraic identities.
class BvOpsWideProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BvOpsWideProperty, AlgebraicIdentities) {
  uint32_t w = GetParam();
  Rng rng(w * 7919u);
  for (int iter = 0; iter < 50; iter++) {
    BitVec a(w), b(w);
    for (uint32_t i = 0; i < w; i++) {
      a.setBit(i, rng.nextBool());
      b.setBit(i, rng.nextBool());
    }
    // a + b == b + a
    EXPECT_EQ(bvops::add(a, b, false), bvops::add(b, a, false));
    // (a + b) - b == a (mod widths)
    BitVec sum = bvops::add(a, b, false);
    BitVec back = bvops::sub(sum, b, false);
    EXPECT_EQ(extend(back, false, w), a);
    // a * b == b * a
    EXPECT_EQ(bvops::mul(a, b, false), bvops::mul(b, a, false));
    // ~~a == a
    EXPECT_EQ(bvops::bnot(bvops::bnot(a)), a);
    // cat(head, tail) == a
    if (w > 4) {
      BitVec h = bvops::head(a, 4), t = bvops::tail(a, 4);
      EXPECT_EQ(bvops::cat(h, t), a);
    }
    // divmod reconstruction.
    if (!b.isZero()) {
      BitVec q = bvops::div(a, b, false), r = bvops::rem(a, b, false);
      BitVec qb = extend(bvops::mul(q, b, false), false, w);
      EXPECT_EQ(extend(bvops::add(qb, r, false), false, w), a);
    }
    // Shifting left then right restores (with headroom).
    BitVec sh = bvops::shl(a, 13);
    EXPECT_EQ(bvops::shr(sh, false, 13), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BvOpsWideProperty, ::testing::Values(65u, 100u, 128u, 200u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return strfmt("w%u", info.param);
                         });

TEST(StrUtil, Basics) {
  EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(splitString("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(trimString("  hi \n"), "hi");
  EXPECT_EQ(joinStrings({"a", "b"}, "::"), "a::b");
  EXPECT_TRUE(startsWith("firrtl", "fir"));
  EXPECT_TRUE(endsWith("firrtl", "rtl"));
  EXPECT_EQ(sanitizeIdent("core.alu$x"), "core_alu_x");
  EXPECT_EQ(sanitizeIdent("9lives"), "s_9lives");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.next(), b.next());
  Rng c(7);
  for (int i = 0; i < 100; i++) {
    uint64_t v = c.nextRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_FALSE(Rng(1).nextChance(0.0));
  EXPECT_TRUE(Rng(1).nextChance(1.0));
}

}  // namespace
}  // namespace essent
