// Static BSP placement tests: structural invariants of buildPlacement()
// (every position placed exactly once, super-step ordering respects every
// dependency edge, nonempty threads, determinism) and end-to-end serial-vs-
// placed bit- and stats-identity with the serial cutoff disabled so every
// cycle takes the pooled super-step path. Part of the `par` label so the
// tsan preset runs all of it.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/activity_engine.h"
#include "core/parallel_engine.h"
#include "core/placement.h"
#include "designs/blocks.h"
#include "designs/gcd.h"
#include "designs/systolic.h"
#include "designs/tinysoc.h"
#include "sim/compile.h"
#include "sim/harness.h"
#include "support/rng.h"

#ifndef FUZZ_CORPUS_DIR
#error "FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace essent {
namespace {

using core::ActivityEngine;
using core::BspPlacement;
using core::CondPartSchedule;
using core::ParallelActivityEngine;
using core::PlacementOptions;
using core::ScheduleOptions;
using sim::Engine;
using sim::SimIR;

std::string readCorpus(const std::string& name) {
  std::ifstream f(std::string(FUZZ_CORPUS_DIR) + "/" + name);
  EXPECT_TRUE(f.good()) << "missing corpus file " << name;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Every design shape we have, including the committed fuzz-corpus corner
// circuits — the placement contract must hold on all of them.
std::vector<std::pair<std::string, std::string>> allDesignTexts() {
  std::vector<std::pair<std::string, std::string>> texts = {
      {"gcd", designs::gcdFirrtl(16)},
      {"gatedBanks", designs::gatedBanksFirrtl(16, 16)},
      {"pipeline", designs::pipelineFirrtl(6, 16)},
      {"systolic", designs::systolicFirrtl(designs::SystolicConfig{})},
      {"tinysoc", designs::tinySoCFirrtl(designs::socTiny())},
      {"corner_mem_rw", readCorpus("corner_mem_rw.fir")},
      {"corner_mux_deep", readCorpus("corner_mux_deep.fir")},
      {"corner_zero_width", readCorpus("corner_zero_width.fir")},
  };
  for (uint64_t seed : {41ull, 42ull, 43ull})
    texts.emplace_back("random" + std::to_string(seed), designs::randomDesignFirrtl(seed));
  return texts;
}

// The full execution contract from placement.h, checked against the real
// edge set placementEdges() reconstructs from the schedule.
void checkPlacementContract(const CondPartSchedule& sched, const BspPlacement& p,
                            unsigned requestedThreads, const std::string& what) {
  const size_t n = sched.parts.size();
  ASSERT_EQ(p.threadOf.size(), n) << what;
  ASSERT_EQ(p.stepOf.size(), n) << what;
  EXPECT_GE(p.threads, 1u) << what;
  EXPECT_LE(p.threads, std::max<unsigned>(1, requestedThreads)) << what;
  EXPECT_LE(static_cast<size_t>(p.threads), std::max<size_t>(n, 1)) << what;

  // Super-steps never exceed the levelization depth they coarsened — the
  // whole point of the placement is fewer barriers, not more.
  EXPECT_EQ(p.levels, sched.numLevels()) << what;
  EXPECT_LE(p.numSteps(), std::max<size_t>(p.levels, 1)) << what;
  if (n > 0) EXPECT_GE(p.numSteps(), 1u) << what;

  // Every position placed exactly once, on the thread/step the maps say,
  // ascending within each per-thread run.
  std::vector<uint8_t> seen(n, 0);
  std::vector<uint64_t> perThread(p.threads, 0);
  for (size_t s = 0; s < p.steps.size(); s++) {
    ASSERT_EQ(p.steps[s].runs.size(), p.threads) << what;
    bool any = false;
    for (size_t t = 0; t < p.steps[s].runs.size(); t++) {
      const auto& run = p.steps[s].runs[t];
      for (size_t k = 0; k < run.size(); k++) {
        int32_t pos = run[k];
        ASSERT_GE(pos, 0) << what;
        ASSERT_LT(static_cast<size_t>(pos), n) << what;
        EXPECT_EQ(seen[static_cast<size_t>(pos)], 0) << what << ": position " << pos
                                                     << " placed twice";
        seen[static_cast<size_t>(pos)] = 1;
        EXPECT_EQ(p.threadOf[static_cast<size_t>(pos)], static_cast<int32_t>(t)) << what;
        EXPECT_EQ(p.stepOf[static_cast<size_t>(pos)], static_cast<int32_t>(s)) << what;
        if (k > 0) EXPECT_LT(run[k - 1], pos) << what << ": run not ascending";
        perThread[t]++;
        any = true;
      }
    }
    EXPECT_TRUE(any) << what << ": empty super-step " << s;
  }
  for (size_t pos = 0; pos < n; pos++)
    EXPECT_EQ(seen[pos], 1) << what << ": position " << pos << " unplaced";
  // Useful width: every thread the placement claims actually owns work.
  for (size_t t = 0; t < perThread.size(); t++)
    EXPECT_GT(perThread[t], 0u) << what << ": thread " << t << " empty";

  // Edge contract: cross-thread edges strictly ordered by super-step
  // (barrier between), same-thread edges covered by ascending local order.
  auto edges = core::placementEdges(sched);
  EXPECT_EQ(p.totalEdges, edges.size()) << what;
  size_t cross = 0;
  for (const auto& [u, v] : edges) {
    ASSERT_NE(u, v) << what;
    if (p.threadOf[static_cast<size_t>(u)] != p.threadOf[static_cast<size_t>(v)]) {
      cross++;
      EXPECT_LT(p.stepOf[static_cast<size_t>(u)], p.stepOf[static_cast<size_t>(v)])
          << what << ": cross-thread edge " << u << "->" << v << " not barrier-separated";
    } else {
      EXPECT_LE(p.stepOf[static_cast<size_t>(u)], p.stepOf[static_cast<size_t>(v)])
          << what << ": same-thread edge " << u << "->" << v << " runs backwards";
      if (p.stepOf[static_cast<size_t>(u)] == p.stepOf[static_cast<size_t>(v)])
        EXPECT_LT(u, v) << what << ": same-step edge must follow schedule order";
    }
  }
  EXPECT_EQ(p.crossEdges, cross) << what;
  EXPECT_LE(p.crossEdges, p.totalEdges) << what;
}

TEST(Placement, ContractHoldsAcrossDesignsAndWidths) {
  for (const auto& [name, text] : allDesignTexts()) {
    SimIR ir = sim::buildFromFirrtl(text);
    CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
    for (unsigned threads : {1u, 2u, 3u, 4u, 8u, 64u}) {
      PlacementOptions opts;
      opts.threads = threads;
      BspPlacement p = core::buildPlacement(sched, opts);
      checkPlacementContract(sched, p, threads,
                             name + "/t" + std::to_string(threads));
    }
  }
}

TEST(Placement, ContractHoldsWithoutElision) {
  // Elision off removes the reader->writer and same-mem hazard edge
  // families; the comb edges and the placement contract must still hold.
  for (const auto& [name, text] : allDesignTexts()) {
    SimIR ir = sim::buildFromFirrtl(text);
    ScheduleOptions sopts;
    sopts.stateElision = false;
    CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir), sopts);
    PlacementOptions opts;
    opts.threads = 4;
    checkPlacementContract(sched, core::buildPlacement(sched, opts), 4, name + "/noelide");
  }
}

TEST(Placement, EdgesAreSortedDedupedAndMatchLevelization) {
  for (const auto& [name, text] : allDesignTexts()) {
    SimIR ir = sim::buildFromFirrtl(text);
    CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
    auto edges = core::placementEdges(sched);
    std::set<std::pair<int32_t, int32_t>> uniq(edges.begin(), edges.end());
    EXPECT_EQ(uniq.size(), edges.size()) << name << ": duplicate edges";
    EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end())) << name;
    // Every edge family the engine relies on is a forward edge of the
    // schedule order (readers precede writers; consumers follow producers).
    for (const auto& [u, v] : edges) {
      EXPECT_LT(u, v) << name << ": placement edge runs against schedule order";
      EXPECT_LT(sched.levelOf[static_cast<size_t>(u)], sched.levelOf[static_cast<size_t>(v)])
          << name << ": edge endpoints share a level";
    }
  }
}

TEST(Placement, DeterministicAcrossCalls) {
  SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
  PlacementOptions opts;
  opts.threads = 4;
  BspPlacement a = core::buildPlacement(sched, opts);
  BspPlacement b = core::buildPlacement(sched, opts);
  EXPECT_EQ(a.threadOf, b.threadOf);
  EXPECT_EQ(a.stepOf, b.stepOf);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.crossEdges, b.crossEdges);
  EXPECT_EQ(a.threadCost, b.threadCost);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t s = 0; s < a.steps.size(); s++) EXPECT_EQ(a.steps[s].runs, b.steps[s].runs);
}

TEST(Placement, CoarsensDeepLevelizations) {
  // The motivating pathology: tinysoc levelizes to dozens of waves but the
  // placement should need far fewer barriers. On one thread it must
  // collapse to a single super-step (no cross edges at all).
  SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
  ASSERT_GT(sched.numLevels(), 8u);

  PlacementOptions one;
  one.threads = 1;
  BspPlacement p1 = core::buildPlacement(sched, one);
  EXPECT_EQ(p1.numSteps(), 1u);
  EXPECT_EQ(p1.crossEdges, 0u);

  PlacementOptions four;
  four.threads = 4;
  BspPlacement p4 = core::buildPlacement(sched, four);
  EXPECT_LT(p4.numSteps(), sched.numLevels())
      << "placement did not coarsen the levelization";
}

TEST(Placement, ProfiledCostsRebalanceLoad) {
  // partCost is an optional hint: a wildly skewed cost vector must still
  // yield a valid placement, and per-thread costs must sum to totalCost.
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(16, 16));
  CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
  PlacementOptions opts;
  opts.threads = 4;
  opts.partCost.assign(sched.parts.size(), 1);
  for (size_t i = 0; i < opts.partCost.size(); i += 3) opts.partCost[i] = 1000;
  BspPlacement p = core::buildPlacement(sched, opts);
  checkPlacementContract(sched, p, 4, "skewed-cost");
  uint64_t sum = 0;
  for (uint64_t c : p.threadCost) sum += c;
  EXPECT_EQ(sum, p.totalCost);
  EXPECT_GE(p.loadImbalance, 1.0);
}

// --- Serial vs placed-engine identity -------------------------------------

sim::StimulusFn cyclicStimulus(uint64_t seed) {
  return [seed](Engine& e, uint64_t cycle) {
    int idx = 0;
    for (int32_t in : e.ir().inputs) {
      const auto& sig = e.ir().signals[static_cast<size_t>(in)];
      idx++;
      if (sig.name == "reset") {
        e.poke("reset", cycle < 2 ? 1 : 0);
        continue;
      }
      Rng draw(seed ^ (cycle * 0x9e3779b97f4a7c15ULL) ^ (static_cast<uint64_t>(idx) << 32));
      e.poke(sig.name, draw.nextChance(0.3) ? draw.next() : 0);
    }
  };
}

void expectStatsEqual(const sim::EngineStats& a, const sim::EngineStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.opsEvaluated, b.opsEvaluated) << what;
  EXPECT_EQ(a.partitionChecks, b.partitionChecks) << what;
  EXPECT_EQ(a.partitionActivations, b.partitionActivations) << what;
  EXPECT_EQ(a.outputComparisons, b.outputComparisons) << what;
  EXPECT_EQ(a.triggerSets, b.triggerSets) << what;
  EXPECT_EQ(a.signalsChangedTotal, b.signalsChangedTotal) << what;
}

TEST(PlacedEngine, ForcedPooledPathMatchesSerialBitsAndStats) {
  // setSerialCutoff(0) disables the low-activity inline fallback, so every
  // cycle exercises mailbox routing, the counting barrier, and per-lane
  // counter merging — under tsan this is the strongest race check we have.
  for (const auto& [name, text] : allDesignTexts()) {
    SimIR ir = sim::buildFromFirrtl(text);
    CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
    ActivityEngine serial(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched));
    ParallelActivityEngine par(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched), 4);
    par.setSerialCutoff(0);
    ASSERT_EQ(par.serialCutoff(), 0u);

    auto stim = cyclicStimulus(1234);
    for (uint64_t c = 0; c < 120; c++) {
      stim(serial, c);
      stim(par, c);
      serial.tick();
      par.tick();
      for (int32_t o : ir.outputs)
        ASSERT_EQ(serial.peekSig(o), par.peekSig(o)) << name << " cycle " << c;
    }
    expectStatsEqual(serial.stats(), par.stats(), name);
    EXPECT_EQ(serial.effectiveActivity(), par.effectiveActivity()) << name;
  }
}

TEST(PlacedEngine, SerialCutoffPathSwitchIsInvisible) {
  // A huge cutoff forces the inline-serial path every cycle; the default
  // engine mixes paths by activity. All three must agree bit-for-bit and
  // counter-for-counter — path selection is a pure perf decision.
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(16, 16));
  CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
  ParallelActivityEngine pooled(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched), 4);
  pooled.setSerialCutoff(0);
  ParallelActivityEngine inlineOnly(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched), 4);
  inlineOnly.setSerialCutoff(UINT64_MAX);
  ParallelActivityEngine mixed(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched), 4);

  auto stim = cyclicStimulus(777);
  for (uint64_t c = 0; c < 200; c++) {
    for (ParallelActivityEngine* e : {&pooled, &inlineOnly, &mixed}) {
      stim(*e, c);
      e->tick();
    }
    for (int32_t o : ir.outputs) {
      ASSERT_EQ(pooled.peekSig(o), inlineOnly.peekSig(o)) << "cycle " << c;
      ASSERT_EQ(pooled.peekSig(o), mixed.peekSig(o)) << "cycle " << c;
    }
  }
  expectStatsEqual(pooled.stats(), inlineOnly.stats(), "pooled vs inline");
  expectStatsEqual(pooled.stats(), mixed.stats(), "pooled vs mixed");
}

TEST(PlacedEngine, EnginePlacementMatchesStandaloneBuild) {
  // The engine must expose exactly the placement buildPlacement() computes
  // for its effective width — tools (essentc --stats-json) rely on it.
  SimIR ir = sim::buildFromFirrtl(designs::systolicFirrtl(designs::SystolicConfig{}));
  CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir));
  ParallelActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched), 3);
  PlacementOptions opts;
  opts.threads = eng.threadCount();
  BspPlacement expect = core::buildPlacement(sched, opts);
  const BspPlacement& got = eng.placement();
  EXPECT_EQ(got.threadOf, expect.threadOf);
  EXPECT_EQ(got.stepOf, expect.stepOf);
  EXPECT_EQ(got.threads, expect.threads);
  checkPlacementContract(eng.schedule(), got, 3, "engine placement");
}

}  // namespace
}  // namespace essent
