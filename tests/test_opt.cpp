// Dedicated tests for the IR optimization passes (paper §III-B's "classic
// compiler optimizations"): constant propagation (including mux-selector
// folding), structural CSE with named-signal preservation, and dead-code
// elimination over registers, memories, and side-effect cones.
#include <gtest/gtest.h>

#include "sim/compile.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"

namespace essent::sim {
namespace {

SimIR buildRaw(const char* text) {
  BuildOptions o;
  o.constProp = o.cse = o.dce = false;
  return buildFromFirrtl(text, o);
}

size_t countCode(const SimIR& ir, OpCode code) {
  size_t n = 0;
  for (const auto& op : ir.ops) n += op.code == code;
  return n;
}

TEST(ConstProp, FoldsMuxWithConstantSelector) {
  SimIR ir = buildRaw(R"(
circuit M :
  module M :
    input a : UInt<8>
    input b : UInt<8>
    output o : UInt<8>
    o <= mux(UInt<1>(1), a, b)
)");
  size_t muxesBefore = countCode(ir, OpCode::Mux);
  ASSERT_GE(muxesBefore, 1u);
  OptStats st = constantPropagate(ir);
  EXPECT_GE(st.constsFolded, 1u);
  EXPECT_EQ(countCode(ir, OpCode::Mux), muxesBefore - 1);
  ir.validate();
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("a", 7);
  eng.poke("b", 9);
  eng.tick();
  EXPECT_EQ(eng.peek("o"), 7u);
}

TEST(ConstProp, FoldsThroughDeepChains) {
  SimIR ir = buildRaw(R"(
circuit C :
  module C :
    output o : UInt<8>
    node n1 = add(UInt<4>(3), UInt<4>(5))
    node n2 = mul(n1, n1)
    node n3 = bits(n2, 7, 0)
    node n4 = xor(n3, UInt<8>(255))
    o <= n4
)");
  constantPropagate(ir);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.tick();
  EXPECT_EQ(eng.peek("o"), (64u ^ 255u));
  // Every arithmetic op folded away.
  EXPECT_EQ(countCode(ir, OpCode::Add), 0u);
  EXPECT_EQ(countCode(ir, OpCode::Mul), 0u);
  EXPECT_EQ(countCode(ir, OpCode::Xor), 0u);
}

TEST(ConstProp, DoesNotTouchStateDependentValues) {
  SimIR ir = buildRaw(R"(
circuit S :
  module S :
    input clock : Clock
    input x : UInt<8>
    output o : UInt<8>
    reg r : UInt<8>, clock
    r <= x
    o <= and(r, UInt<8>(15))
)");
  constantPropagate(ir);
  EXPECT_EQ(countCode(ir, OpCode::And), 1u);  // r is not constant
}

TEST(Cse, RedirectsTempsAndPreservesNames) {
  SimIR ir = buildRaw(R"(
circuit C :
  module C :
    input a : UInt<8>
    input b : UInt<8>
    output o1 : UInt<9>
    output o2 : UInt<9>
    node s1 = add(a, b)
    node s2 = add(a, b)
    o1 <= s1
    o2 <= s2
)");
  OptStats st = eliminateCommonSubexprs(ir);
  EXPECT_GE(st.csesMerged, 1u);
  // Named duplicates become copies, not aliases: both names still exist.
  EXPECT_GE(ir.findSignal("s1"), 0);
  EXPECT_GE(ir.findSignal("s2"), 0);
  deadCodeEliminate(ir);
  ir.validate();
  // Only one Add remains.
  EXPECT_EQ(countCode(ir, OpCode::Add), 1u);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("a", 100);
  eng.poke("b", 55);
  eng.tick();
  EXPECT_EQ(eng.peek("o1"), 155u);
  EXPECT_EQ(eng.peek("o2"), 155u);
  EXPECT_EQ(eng.peek("s2"), 155u);
}

TEST(Cse, DistinguishesSignednessAndWidth) {
  SimIR ir = buildRaw(R"(
circuit D :
  module D :
    input a : UInt<8>
    output u : UInt<8>
    output s : SInt<8>
    u <= asUInt(a)
    s <= asSInt(a)
)");
  eliminateCommonSubexprs(ir);
  deadCodeEliminate(ir);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("a", 0x80);
  eng.tick();
  EXPECT_EQ(eng.peek("u"), 0x80u);
  EXPECT_EQ(eng.peek("s"), 0x80u);  // same bits, different interpretation
}

TEST(Dce, RemovesDeadMemory) {
  SimIR ir = buildRaw(R"(
circuit M :
  module M :
    input clock : Clock
    input a : UInt<8>
    output o : UInt<8>
    mem dead :
      data-type => UInt<8>
      depth => 4
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    dead.r.addr <= UInt<2>(0)
    dead.r.en <= UInt<1>(1)
    dead.r.clk <= clock
    dead.w.addr <= UInt<2>(0)
    dead.w.en <= UInt<1>(1)
    dead.w.clk <= clock
    dead.w.data <= a
    dead.w.mask <= UInt<1>(1)
    o <= a
)");
  ASSERT_EQ(ir.mems.size(), 1u);
  deadCodeEliminate(ir);
  EXPECT_TRUE(ir.mems.empty());  // nothing observes the reads
  ir.validate();
}

TEST(Dce, KeepsMemoryAliveThroughReadCone) {
  SimIR ir = buildRaw(R"(
circuit M :
  module M :
    input clock : Clock
    input a : UInt<8>
    output o : UInt<8>
    mem live :
      data-type => UInt<8>
      depth => 4
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    live.r.addr <= UInt<2>(1)
    live.r.en <= UInt<1>(1)
    live.r.clk <= clock
    live.w.addr <= UInt<2>(1)
    live.w.en <= UInt<1>(1)
    live.w.clk <= clock
    live.w.data <= a
    live.w.mask <= UInt<1>(1)
    o <= live.r.data
)");
  deadCodeEliminate(ir);
  ASSERT_EQ(ir.mems.size(), 1u);
  // Writer cone stays alive because a live read exists.
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("a", 42);
  eng.tick();
  eng.tick();
  EXPECT_EQ(eng.peek("o"), 42u);
}

TEST(Dce, KeepsPrintAndStopCones) {
  SimIR ir = buildRaw(R"(
circuit P :
  module P :
    input clock : Clock
    input v : UInt<8>
    node cone = tail(add(v, v), 1)
    printf(clock, orr(cone), "x=%d\n", cone)
)");
  size_t before = ir.ops.size();
  OptStats st = deadCodeEliminate(ir);
  // The print keeps its enable/arg cone; nothing substantial removed.
  EXPECT_EQ(ir.ops.size(), before - st.opsRemoved);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("v", 3);
  eng.tick();
  EXPECT_EQ(eng.printOutput(), "x=6\n");
}

TEST(Dce, RegisterChainLivenessIsTransitive) {
  // r1 -> r2 -> r3 -> output: all three stay; r4 (unread) goes.
  SimIR ir = buildRaw(R"(
circuit R :
  module R :
    input clock : Clock
    input d : UInt<4>
    output o : UInt<4>
    reg r1 : UInt<4>, clock
    reg r2 : UInt<4>, clock
    reg r3 : UInt<4>, clock
    reg r4 : UInt<4>, clock
    r1 <= d
    r2 <= r1
    r3 <= r2
    r4 <= r3
    o <= r3
)");
  deadCodeEliminate(ir);
  EXPECT_EQ(ir.regs.size(), 3u);
  ir.validate();
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("d", 9);
  for (int i = 0; i < 3; i++) eng.tick();
  EXPECT_EQ(eng.peek("r3"), 9u);
}

TEST(OptPipeline, FullPipelinePreservesSemanticsOnCounter) {
  const char* text = R"(
circuit C :
  module C :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output count : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    count <= r
)";
  SimIR raw = buildRaw(text);
  SimIR opt = buildFromFirrtl(text);
  EXPECT_LE(opt.ops.size(), raw.ops.size());
  FullCycleEngine a(sim::CompiledDesign::compile(raw)), b(sim::CompiledDesign::compile(opt));
  auto m = compareEngines(a, b, 60, [](Engine& e, uint64_t c) {
    e.poke("reset", c < 2);
    e.poke("en", c % 2);
  });
  EXPECT_FALSE(m.has_value()) << m->describe();
}

}  // namespace
}  // namespace essent::sim
