// End-to-end tests for the essentc observability flags (--profile,
// --stats-json, --top-hot), run as real subprocesses against the shipped
// examples/ FIRRTL inputs. Emitted files must parse with the strict obs
// JSON parser and satisfy the documented sum checks.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

#ifndef ESSENTC_PATH
#error "ESSENTC_PATH must be defined by the build"
#endif
#ifndef EXAMPLES_DIR
#error "EXAMPLES_DIR must be defined by the build"
#endif

namespace {

using essent::obs::Json;

struct CliResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr
};

std::string tempDir() {
  char dirTemplate[] = "/tmp/essent_obs_cli_XXXXXX";
  return mkdtemp(dirTemplate);
}

CliResult runCli(const std::string& args, const std::string& dir) {
  std::string outFile = dir + "/out.txt";
  std::string cmd = std::string(ESSENTC_PATH) + " " + args + " > " + outFile + " 2>&1";
  int rc = std::system(cmd.c_str());
  CliResult res;
  res.exitCode = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  std::ifstream f(outFile);
  std::stringstream ss;
  ss << f.rdbuf();
  res.output = ss.str();
  return res;
}

Json parseFile(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "missing " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return Json::parse(ss.str());
}

std::string example(const char* name) { return std::string(EXAMPLES_DIR) + "/" + name; }

TEST(ObsCli, ProfileEmitsSumCheckedJson) {
  std::string dir = tempDir();
  std::string p = dir + "/p.json";
  auto res = runCli("--run 1000 --poke en=1 --poke sel=2 --profile " + p + " " +
                        example("counterbanks.fir"),
                    dir);
  ASSERT_EQ(res.exitCode, 0) << res.output;
  EXPECT_NE(res.output.find("wrote profile"), std::string::npos) << res.output;

  Json doc = parseFile(p);
  EXPECT_EQ(doc.at("design").asStr(), "CounterBanks");
  EXPECT_EQ(doc.at("engine").asStr(), "essent-ccss");
  EXPECT_EQ(doc.at("stats").at("cycles").asUInt(), 1000u);
  double ea = doc.at("effective_activity").asDouble();
  EXPECT_GE(ea, 0.0);
  EXPECT_LE(ea, 1.0);

  // Per-partition counters must sum to the engine-level totals.
  uint64_t ops = 0, acts = 0;
  for (const Json& row : doc.at("partitions").items()) {
    ops += row.at("ops_evaluated").asUInt();
    acts += row.at("activations").asUInt();
    EXPECT_LE(row.at("activations").asUInt(), 1000u);
  }
  EXPECT_EQ(ops, doc.at("stats").at("ops_evaluated").asUInt());
  EXPECT_EQ(acts, doc.at("stats").at("partition_activations").asUInt());

  // Timeline covers the run and re-buckets the same activations.
  const Json& tl = doc.at("timeline");
  EXPECT_EQ(tl.at("profiled_cycles").asUInt(), 1000u);
  uint64_t tlSum = 0;
  for (const Json& w : tl.at("activations_per_window").items()) tlSum += w.asUInt();
  EXPECT_EQ(tlSum, acts);

  EXPECT_FALSE(doc.at("phase_timings").at("timers").members().empty());
}

TEST(ObsCli, StatsJsonOnRunIncludesEngineSection) {
  std::string dir = tempDir();
  std::string s = dir + "/s.json";
  auto res = runCli("--run 200 --poke start=1 --poke a=48 --poke b=36 --stats-json " + s + " " +
                        example("gcd.fir"),
                    dir);
  ASSERT_EQ(res.exitCode, 0) << res.output;
  Json doc = parseFile(s);
  EXPECT_EQ(doc.at("design").at("name").asStr(), "GCD");
  EXPECT_EQ(doc.at("options").at("engine").asStr(), "ccss");
  EXPECT_GT(doc.at("partitioning").at("final_parts").asUInt(), 0u);
  EXPECT_EQ(doc.at("engine").at("name").asStr(), "essent-ccss");
  EXPECT_EQ(doc.at("engine").at("stats").at("cycles").asUInt(), 200u);
  ASSERT_NE(doc.at("phase_timings").find("timers"), nullptr);
  const Json& timers = doc.at("phase_timings").at("timers");
  for (const char* phase : {"parse", "lower", "netlist", "mffc", "schedule"})
    EXPECT_NE(timers.find(phase), nullptr) << "missing phase " << phase;
}

TEST(ObsCli, StatsJsonWithoutRunOmitsEngineSection) {
  std::string dir = tempDir();
  std::string s = dir + "/s.json";
  auto res = runCli("--stats-json " + s + " " + example("counterbanks.fir"), dir);
  ASSERT_EQ(res.exitCode, 0) << res.output;
  Json doc = parseFile(s);
  EXPECT_EQ(doc.find("engine"), nullptr);
  EXPECT_NE(doc.find("schedule"), nullptr);
}

TEST(ObsCli, StatsJsonEdgeConfigsBaselineAndCpZero) {
  // --baseline disables activity tracking; --cp 0 disables sibling merging.
  // Both must still produce parseable stats documents.
  std::string dir = tempDir();
  for (const char* cfg : {"--baseline", "--cp 0"}) {
    std::string s = dir + "/edge.json";
    auto res = runCli(std::string(cfg) + " --run 100 --stats-json " + s + " " +
                          example("counterbanks.fir"),
                      dir);
    ASSERT_EQ(res.exitCode, 0) << cfg << ": " << res.output;
    Json doc = parseFile(s);
    EXPECT_EQ(doc.at("engine").at("stats").at("cycles").asUInt(), 100u) << cfg;
    EXPECT_GT(doc.at("engine").at("stats").at("ops_evaluated").asUInt(), 0u) << cfg;
  }
}

TEST(ObsCli, TopHotPrintsRankedTable) {
  std::string dir = tempDir();
  auto res = runCli("--run 500 --poke en=1 --poke sel=1 --top-hot 3 " +
                        example("counterbanks.fir"),
                    dir);
  ASSERT_EQ(res.exitCode, 0) << res.output;
  EXPECT_NE(res.output.find("hottest partitions"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("ops"), std::string::npos);
}

TEST(ObsCli, ProfileRequiresRunAndCcssEngine) {
  std::string dir = tempDir();
  std::string fir = example("counterbanks.fir");
  auto noRun = runCli("--profile " + dir + "/p.json " + fir, dir);
  EXPECT_NE(noRun.exitCode, 0);
  EXPECT_NE(noRun.output.find("--run"), std::string::npos) << noRun.output;
  auto wrongEngine = runCli("--engine full --run 10 --profile " + dir + "/p.json " + fir, dir);
  EXPECT_NE(wrongEngine.exitCode, 0);
  auto badPath = runCli("--run 10 --profile /nonexistent-dir/p.json " + fir, dir);
  EXPECT_NE(badPath.exitCode, 0);
}

TEST(ObsCli, ProfileOnGcdExampleParses) {
  std::string dir = tempDir();
  std::string p = dir + "/gcd.json";
  auto res = runCli("--run 300 --poke start=1 --poke a=1071 --poke b=462 --profile " + p + " " +
                        example("gcd.fir"),
                    dir);
  ASSERT_EQ(res.exitCode, 0) << res.output;
  Json doc = parseFile(p);
  EXPECT_EQ(doc.at("design").asStr(), "GCD");
  EXPECT_GT(doc.at("partitions").items().size(), 0u);
}

}  // namespace
