// ISA conformance fuzz: random TinySoC programs executed on the RTL core
// are compared register-for-register (plus instret and data memory) against
// the host reference model at halt. Programs are generated to terminate by
// construction: forward-only branches and a trailing halt.
#include <gtest/gtest.h>

#include "designs/tinysoc.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"
#include "support/rng.h"
#include "support/strutil.h"
#include "workloads/assembler.h"
#include "workloads/driver.h"
#include "workloads/programs.h"

namespace essent::workloads {
namespace {

// Straight-line-plus-forward-skips random program. x7 is reserved as the
// address mask (0x03ff) so every memory access stays inside dmem.
Program randomProgram(uint64_t seed, int length) {
  Rng rng(seed);
  Asm a;
  a.li(7, 0x03ff);
  int skipId = 0;
  for (int i = 0; i < length; i++) {
    unsigned rd = 1 + static_cast<unsigned>(rng.nextBelow(6));  // x1..x6
    unsigned rs = static_cast<unsigned>(rng.nextBelow(7));      // x0..x6
    unsigned rt = static_cast<unsigned>(rng.nextBelow(7));
    switch (rng.nextBelow(12)) {
      case 0: a.addi(rd, rs, static_cast<int>(rng.nextRange(0, 63)) - 32); break;
      case 1: a.add(rd, rs, rt); break;
      case 2: a.sub(rd, rs, rt); break;
      case 3: a.and_(rd, rs, rt); break;
      case 4: a.or_(rd, rs, rt); break;
      case 5: a.xor_(rd, rs, rt); break;
      case 6: a.mul(rd, rs, rt); break;
      case 7: a.shl(rd, rs, static_cast<unsigned>(rng.nextBelow(8))); break;
      case 8: a.shr(rd, rs, static_cast<unsigned>(rng.nextBelow(8))); break;
      case 9: {  // masked store then load
        a.and_(rd, rs, 7);  // rd = rs & mask(x7): address in [0, 0x3ff]
        a.sw(rt, rd, static_cast<int>(rng.nextBelow(16)));
        break;
      }
      case 10: {
        a.and_(rd, rs, 7);
        a.lw(rd, rd, static_cast<int>(rng.nextBelow(16)));
        break;
      }
      default: {  // forward skip over the next instruction
        std::string label = strfmt("skip%d", skipId++);
        if (rng.nextBool()) a.beq(rd, rs, label);
        else a.bne(rd, rs, label);
        a.xor_(rd, rd, rt);  // possibly-skipped instruction
        a.label(label);
        break;
      }
    }
  }
  a.halt();
  Program p;
  p.name = strfmt("fuzz%llu", static_cast<unsigned long long>(seed));
  p.code = a.assemble();
  // Random initial data memory in the accessible window.
  for (int i = 0; i < 32; i++)
    p.data.emplace_back(static_cast<uint16_t>(rng.nextBelow(0x400)),
                        static_cast<uint16_t>(rng.next()));
  return p;
}

class IsaFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IsaFuzz, RtlMatchesReferenceModel) {
  uint64_t seed = GetParam();
  Program prog = randomProgram(seed, 120);
  RefState ref = runReferenceModel(prog);
  ASSERT_TRUE(ref.halted);

  sim::SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  loadProgram(eng, prog);
  auto res = runWorkload(eng, 200000);
  ASSERT_TRUE(res.halted) << "RTL did not halt for seed " << seed;

  for (int r = 1; r <= 7; r++) {
    EXPECT_EQ(eng.peek(strfmt("cpu.x%d", r)), ref.regs[r])
        << "x" << r << " mismatch, seed " << seed;
  }
  EXPECT_EQ(res.instret, ref.instret) << "instret mismatch, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaFuzz,
                         ::testing::Values(11ull, 12ull, 13ull, 14ull, 15ull, 16ull, 17ull,
                                           18ull, 19ull, 20ull),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return strfmt("seed%llu",
                                         static_cast<unsigned long long>(info.param));
                         });

TEST(IsaFuzz, ReferenceModelReportsInstret) {
  // Cross-check the instret accounting against a hand-counted program.
  Asm a;
  a.addi(1, 0, 5);  // 1
  a.addi(2, 0, 3);  // 2
  a.add(3, 1, 2);   // 3
  a.halt();
  Program p{"tiny", "", a.assemble(), {}};
  RefState ref = runReferenceModel(p);
  EXPECT_TRUE(ref.halted);
  EXPECT_EQ(ref.instret, 3u);
  EXPECT_EQ(ref.regs[3], 8u);

  sim::SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  loadProgram(eng, p);
  auto res = runWorkload(eng, 1000);
  EXPECT_EQ(res.instret, 3u);
  EXPECT_EQ(eng.peek("cpu.x3"), 8u);
}

}  // namespace
}  // namespace essent::workloads
