// Cross-engine equivalence: the central correctness property of the
// reproduction. For randomized designs and stimulus, the full-cycle engine
// (reference), the levelized event-driven engine, and the CCSS activity
// engine must agree bit-for-bit on every named signal, every cycle, along
// with printf output and stop behaviour — across partitioner settings,
// elision on/off, and optimization on/off.
#include <gtest/gtest.h>

#include "core/activity_engine.h"
#include "core/parallel_engine.h"
#include "designs/blocks.h"
#include "designs/gcd.h"
#include "designs/tinysoc.h"
#include "sim/compile.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"
#include "support/rng.h"
#include "support/strutil.h"
#include "workloads/driver.h"

namespace essent {
namespace {

using core::ActivityEngine;
using core::ParallelActivityEngine;
using core::ScheduleOptions;
using sim::compareEngines;
using sim::Engine;
using sim::EventDrivenEngine;
using sim::FullCycleEngine;
using sim::SimIR;

// Random input stimulus: each input changes with probability `toggleP` per
// cycle (low values model low activity factors). The draw for a given
// (cycle, input) is a pure function of the seed, so the same stimulus object
// drives multiple engines identically — compareEngines calls it once per
// engine per cycle.
sim::StimulusFn randomStimulus(uint64_t seed, double toggleP) {
  auto held = std::make_shared<std::unordered_map<const Engine*, std::unordered_map<int, uint64_t>>>();
  return [seed, held, toggleP](Engine& e, uint64_t cycle) {
    auto& mine = (*held)[&e];
    int idx = 0;
    for (int32_t in : e.ir().inputs) {
      const auto& sig = e.ir().signals[static_cast<size_t>(in)];
      idx++;
      if (sig.name == "reset") {
        e.poke("reset", cycle < 2 ? 1 : 0);
        continue;
      }
      Rng draw(seed ^ (cycle * 0x9e3779b97f4a7c15ULL) ^ (static_cast<uint64_t>(idx) << 32));
      auto [it, inserted] = mine.emplace(idx, 0);
      if (inserted || draw.nextChance(toggleP)) it->second = draw.next();
      e.poke(sig.name, it->second);
    }
  };
}

struct EquivCase {
  uint64_t seed;
  double toggleP;
};

class RandomEquiv : public ::testing::TestWithParam<EquivCase> {};

TEST_P(RandomEquiv, AllEnginesAgree) {
  auto [seed, toggleP] = GetParam();
  designs::RandomDesignConfig cfg;
  cfg.numNodes = 70;
  std::string text = designs::randomDesignFirrtl(seed, cfg);
  SimIR ir = sim::buildFromFirrtl(text);

  FullCycleEngine ref(sim::CompiledDesign::compile(ir));
  EventDrivenEngine ev(sim::CompiledDesign::compile(ir));
  ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));

  auto m1 = compareEngines(ref, ev, 120, randomStimulus(seed * 31 + 1, toggleP));
  EXPECT_FALSE(m1.has_value()) << "event-driven: " << m1->describe() << "\n" << text;

  FullCycleEngine ref2(sim::CompiledDesign::compile(ir));
  auto m2 = compareEngines(ref2, act, 120, randomStimulus(seed * 31 + 1, toggleP));
  EXPECT_FALSE(m2.has_value()) << "ccss: " << m2->describe() << "\n" << text;

  // The wave-parallel engine must agree signal-for-signal too, at both a
  // narrow and a wide pool.
  for (unsigned threads : {2u, 4u}) {
    FullCycleEngine ref3(sim::CompiledDesign::compile(ir));
    ParallelActivityEngine par(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}), threads);
    auto m3 = compareEngines(ref3, par, 120, randomStimulus(seed * 31 + 1, toggleP));
    EXPECT_FALSE(m3.has_value()) << "ccss-par t" << threads << ": " << m3->describe() << "\n"
                                 << text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomEquiv,
    ::testing::Values(EquivCase{1, 0.5}, EquivCase{2, 0.1}, EquivCase{3, 0.9},
                      EquivCase{4, 0.02}, EquivCase{5, 0.5}, EquivCase{6, 0.1},
                      EquivCase{7, 0.3}, EquivCase{8, 0.02}, EquivCase{9, 1.0},
                      EquivCase{10, 0.25}, EquivCase{11, 0.05}, EquivCase{12, 0.6}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return strfmt("seed%llu_p%d", static_cast<unsigned long long>(info.param.seed),
                    static_cast<int>(info.param.toggleP * 100));
    });

// The CCSS engine must agree across partitioning granularities and with the
// unoptimized (Baseline) IR.
class CpEquiv : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CpEquiv, CcssMatchesReferenceAtEveryCp) {
  uint32_t cp = GetParam();
  for (uint64_t seed : {41ull, 42ull, 43ull}) {
    SimIR ir = sim::buildFromFirrtl(designs::randomDesignFirrtl(seed));
    FullCycleEngine ref(sim::CompiledDesign::compile(ir));
    ScheduleOptions opts;
    opts.partition.smallThreshold = cp;
    ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), opts));
    auto m = compareEngines(ref, act, 100, randomStimulus(seed, 0.2));
    EXPECT_FALSE(m.has_value()) << "cp=" << cp << " seed=" << seed << ": " << m->describe();

    // Granularity changes reshape the waves; the parallel engine must stay
    // correct at every C_p, including the degenerate fine partitioning.
    FullCycleEngine ref2(sim::CompiledDesign::compile(ir));
    ParallelActivityEngine par(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), opts), 2);
    auto mp = compareEngines(ref2, par, 100, randomStimulus(seed, 0.2));
    EXPECT_FALSE(mp.has_value()) << "par cp=" << cp << " seed=" << seed << ": " << mp->describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Granularity, CpEquiv, ::testing::Values(0u, 1u, 2u, 4u, 8u, 16u, 64u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return strfmt("cp%u", info.param);
                         });

TEST(AblationEquiv, ElisionOffStillCorrect) {
  for (uint64_t seed : {51ull, 52ull, 53ull, 54ull}) {
    SimIR ir = sim::buildFromFirrtl(designs::randomDesignFirrtl(seed));
    FullCycleEngine ref(sim::CompiledDesign::compile(ir));
    ScheduleOptions opts;
    opts.stateElision = false;
    ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), opts));
    auto m = compareEngines(ref, act, 100, randomStimulus(seed, 0.3));
    EXPECT_FALSE(m.has_value()) << m->describe();
  }
}

TEST(AblationEquiv, BaselineIrMatchesOptimizedIr) {
  // Same design built with and without compiler optimizations must produce
  // identical named-signal traces (optimizations are semantics-preserving).
  for (uint64_t seed : {61ull, 62ull, 63ull}) {
    std::string text = designs::randomDesignFirrtl(seed);
    sim::BuildOptions raw;
    raw.constProp = raw.cse = raw.dce = false;
    SimIR rawIr = sim::buildFromFirrtl(text, raw);
    SimIR optIr = sim::buildFromFirrtl(text);
    EXPECT_GE(rawIr.ops.size(), optIr.ops.size());
    FullCycleEngine a(sim::CompiledDesign::compile(rawIr));
    FullCycleEngine b(sim::CompiledDesign::compile(optIr));
    auto m = compareEngines(a, b, 80, randomStimulus(seed, 0.4));
    EXPECT_FALSE(m.has_value()) << m->describe();
  }
}

TEST(AblationEquiv, WideValueDesigns) {
  designs::RandomDesignConfig cfg;
  cfg.useWide = true;
  cfg.maxWidth = 90;
  cfg.numNodes = 50;
  for (uint64_t seed : {71ull, 72ull}) {
    SimIR ir = sim::buildFromFirrtl(designs::randomDesignFirrtl(seed, cfg));
    FullCycleEngine ref(sim::CompiledDesign::compile(ir));
    ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
    auto m = compareEngines(ref, act, 60, randomStimulus(seed, 0.3));
    EXPECT_FALSE(m.has_value()) << m->describe();
  }
}

TEST(GcdEquiv, AllEnginesComputeGcd) {
  SimIR ir = sim::buildFromFirrtl(designs::gcdFirrtl(16));
  FullCycleEngine fc(sim::CompiledDesign::compile(ir));
  EventDrivenEngine ev(sim::CompiledDesign::compile(ir));
  ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  for (Engine* e : std::initializer_list<Engine*>{&fc, &ev, &act}) {
    e->poke("reset", 0);
    e->poke("a", 1071);
    e->poke("b", 462);
    e->poke("load", 1);
    e->tick();  // outputs still reflect pre-load state
    e->poke("load", 0);
    e->tick();
    for (int i = 0; i < 200 && e->peek("valid") == 0; i++) e->tick();
    EXPECT_EQ(e->peek("result"), 21u) << e->name();
  }
}

// --- TinySoC: functional correctness against the host reference model and
// engine equivalence while running real programs. ---

TEST(TinySoC, DhrystoneMatchesReferenceModel) {
  SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  auto prog = workloads::dhrystoneProgram(16);
  workloads::loadProgram(eng, prog);
  auto res = workloads::runWorkload(eng, 50000);
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(res.result, workloads::dhrystoneExpected(16));
  EXPECT_GT(res.instret, 16u * 10);
}

TEST(TinySoC, MatmulMatchesReferenceModel) {
  SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  auto prog = workloads::matmulProgram(3, 1);
  workloads::loadProgram(eng, prog);
  auto res = workloads::runWorkload(eng, 100000);
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(res.result, workloads::matmulExpected(3, 1));
}

TEST(TinySoC, PchaseMatchesReferenceModel) {
  SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  auto prog = workloads::pchaseProgram(16, 2);
  workloads::loadProgram(eng, prog);
  auto res = workloads::runWorkload(eng, 50000);
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(res.result, workloads::pchaseExpected(16, 2));
}

TEST(TinySoC, AllEnginesAgreeOnWorkload) {
  SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  auto prog = workloads::dhrystoneProgram(8);

  auto run = [&](Engine& e) {
    workloads::loadProgram(e, prog);
    return workloads::runWorkload(e, 20000);
  };
  FullCycleEngine fc(sim::CompiledDesign::compile(ir));
  EventDrivenEngine ev(sim::CompiledDesign::compile(ir));
  ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  ParallelActivityEngine par(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}), 3);
  auto r1 = run(fc), r2 = run(ev), r3 = run(act), r4 = run(par);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.cycles, r3.cycles);
  EXPECT_EQ(r1.result, r2.result);
  EXPECT_EQ(r1.result, r3.result);
  EXPECT_EQ(r1.instret, r3.instret);
  EXPECT_EQ(fc.printOutput(), act.printOutput());
  // The CCSS engine must actually have skipped work on this workload.
  EXPECT_LT(act.stats().opsEvaluated, fc.stats().opsEvaluated);
  // The parallel engine does identical work in a different interleaving.
  EXPECT_EQ(r4.cycles, r3.cycles);
  EXPECT_EQ(r4.result, r3.result);
  EXPECT_EQ(r4.instret, r3.instret);
  EXPECT_EQ(par.printOutput(), act.printOutput());
  EXPECT_EQ(r4.stats.opsEvaluated, r3.stats.opsEvaluated);
  EXPECT_EQ(r4.stats.triggerSets, r3.stats.triggerSets);
}

TEST(TinySoC, PchaseHasLowerEffectiveActivityThanDhrystone) {
  SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  auto measure = [&](const workloads::Program& p) {
    ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
    workloads::loadProgram(eng, p);
    workloads::runWorkload(eng, 60000);
    return eng.effectiveActivity();
  };
  double dhry = measure(workloads::dhrystoneProgram(32));
  double pch = measure(workloads::pchaseProgram(32, 4));
  // Dependent-load stalls freeze the core: pchase must show lower activity.
  EXPECT_LT(pch, dhry);
  EXPECT_LT(pch, 1.0);
}

}  // namespace
}  // namespace essent
