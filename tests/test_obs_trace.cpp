// Tracing + metrics suite (ctest -L trace; included in the tsan preset).
//
// Covers the obs/trace.h contract end to end: Chrome trace-event JSON
// round-trips through obs::json, per-thread timestamps are monotonic,
// concurrent recording from ThreadPool workers is race-free (this file runs
// under TSan), the disabled hot path records nothing and allocates nothing,
// ring wrap keeps attribution exact, and the lock-free metrics registry
// produces sane quantile snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <thread>
#include <vector>

#include "core/parallel_engine.h"
#include "designs/blocks.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/compile.h"
#include "support/threadpool.h"

using namespace essent;
using obs::TraceCat;
using obs::TraceDetail;
using obs::TraceSession;
using obs::TraceSpan;

// Global allocation counter for the no-allocation guard test. Counting is
// process-wide; the guard test reads the delta around a tight loop on one
// thread with tracing disabled, where no other test code runs.
//
// GCC's -Wmismatched-new-delete cannot see that this replaced operator new
// backs its result with malloc, matching the free() in operator delete.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

TEST(TraceDetailNames, RoundTrip) {
  for (TraceDetail d : {TraceDetail::Phase, TraceDetail::Wave, TraceDetail::Partition}) {
    TraceDetail parsed{};
    ASSERT_TRUE(obs::parseTraceDetail(obs::traceDetailName(d), parsed));
    EXPECT_EQ(parsed, d);
  }
  TraceDetail out{};
  EXPECT_FALSE(obs::parseTraceDetail("verbose", out));
  EXPECT_FALSE(obs::parseTraceDetail("", out));
}

TEST(TraceSession, DisabledByDefaultRecordsNothing) {
  ASSERT_EQ(TraceSession::current(), nullptr);
  { TraceSpan span("never", TraceCat::Busy, TraceDetail::Phase); }
  obs::traceInstant("never");
  obs::traceCounter("never", 1);
  // Nothing to assert against a session; the real guard is the allocation
  // test below plus the fact this cannot crash.
}

TEST(TraceSession, DisabledHotPathDoesNotAllocate) {
  ASSERT_EQ(TraceSession::current(), nullptr);
  uint64_t before = g_allocs.load();
  for (int i = 0; i < 10000; i++) {
    TraceSpan span("guard", TraceCat::Busy, TraceDetail::Wave, "i",
                   static_cast<uint64_t>(i));
    obs::traceInstant("guard.i");
    obs::traceCounter("guard.c", static_cast<uint64_t>(i));
  }
  EXPECT_EQ(g_allocs.load() - before, 0u);
}

TEST(TraceSession, RecordsCompleteInstantAndCounterEvents) {
  TraceSession s;
  s.install();
  s.nameThread("main");
  {
    TraceSpan span("work", TraceCat::Busy, TraceDetail::Phase, "item", 7);
  }
  s.instant("marker", "arg", 42);
  s.counter("depth", 3);
  s.uninstall();

  ASSERT_EQ(s.eventCount(), 3u);
  EXPECT_EQ(s.droppedCount(), 0u);
  auto snaps = s.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "main");
  ASSERT_EQ(snaps[0].events.size(), 3u);
  EXPECT_EQ(std::string(snaps[0].events[0].name), "work");
  EXPECT_EQ(snaps[0].events[0].ph, 'X');
  EXPECT_EQ(snaps[0].events[0].cat, TraceCat::Busy);
  EXPECT_EQ(snaps[0].events[0].value, 7u);
  EXPECT_EQ(snaps[0].events[1].ph, 'i');
  EXPECT_EQ(snaps[0].events[2].ph, 'C');
}

TEST(TraceSession, DetailGatingDropsBelowThreshold) {
  TraceSession s({TraceDetail::Phase, 1024});
  s.install();
  { TraceSpan span("phase-span", TraceCat::Busy, TraceDetail::Phase); }
  { TraceSpan span("wave-span", TraceCat::Busy, TraceDetail::Wave); }
  { TraceSpan span("part-span", TraceCat::None, TraceDetail::Partition); }
  obs::traceCounter("ctr", 1);  // counter helper defaults to Wave detail
  s.uninstall();
  EXPECT_EQ(s.eventCount(), 1u);
  EXPECT_EQ(std::string(s.snapshot()[0].events[0].name), "phase-span");
}

TEST(TraceSession, JsonRoundTripsThroughObsJson) {
  TraceSession s;
  s.install();
  s.nameThread("main");
  { TraceSpan span("alpha", TraceCat::Busy, TraceDetail::Phase, "k", 1); }
  s.instant("beta", "n", 2);
  s.counter("gamma", 3);
  s.uninstall();

  obs::Json parsed = obs::Json::parse(s.toJson().dump());
  EXPECT_EQ(parsed.at("displayTimeUnit").asStr(), "ms");
  const obs::Json& events = parsed.at("traceEvents");
  // 1 thread_name metadata + 3 recorded events.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.at(size_t{0}).at("ph").asStr(), "M");
  EXPECT_EQ(events.at(size_t{0}).at("args").at("name").asStr(), "main");
  EXPECT_EQ(events.at(1).at("name").asStr(), "alpha");
  EXPECT_EQ(events.at(1).at("ph").asStr(), "X");
  EXPECT_NE(events.at(1).find("dur"), nullptr);
  EXPECT_EQ(events.at(1).at("args").at("k").asUInt(), 1u);
  EXPECT_EQ(events.at(2).at("ph").asStr(), "i");
  EXPECT_EQ(events.at(2).at("s").asStr(), "t");
  EXPECT_EQ(events.at(3).at("ph").asStr(), "C");
  EXPECT_EQ(events.at(3).at("args").at("value").asUInt(), 3u);
  for (const obs::Json& ev : events.items()) {
    EXPECT_EQ(ev.at("pid").asUInt(), 1u);
    EXPECT_NE(ev.find("tid"), nullptr);
  }
}

TEST(TraceSession, TimestampsMonotonicPerThread) {
  TraceSession s;
  s.install();
  for (int i = 0; i < 500; i++) {
    TraceSpan span("tick", TraceCat::Busy, TraceDetail::Phase);
  }
  s.uninstall();
  for (const auto& snap : s.snapshot()) {
    uint64_t prev = 0;
    for (const obs::TraceEvent& ev : snap.events) {
      EXPECT_GE(ev.tsNs, prev);
      prev = ev.tsNs;
    }
  }
}

TEST(TraceSession, RingWrapKeepsAttributionExact) {
  TraceSession s({TraceDetail::Wave, 16});
  s.install();
  uint64_t busyNs = 0;
  for (int i = 0; i < 100; i++) {
    uint64_t t0 = s.nowNs();
    uint64_t t1;
    do { t1 = s.nowNs(); } while (t1 == t0);  // nonzero duration
    s.complete("work", t0, TraceCat::Busy);
    busyNs += t1 - t0;
  }
  s.uninstall();
  EXPECT_EQ(s.eventCount(), 100u);
  EXPECT_EQ(s.droppedCount(), 100u - 16u);
  auto snaps = s.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].events.size(), 16u);
  EXPECT_EQ(snaps[0].dropped, 84u);
  // catNs accumulates outside the ring: busy totals cover ALL 100 spans,
  // not just the 16 retained (>= because complete() re-reads the clock).
  EXPECT_GE(snaps[0].busyNs, busyNs);
  // The retained window is the newest 16 events, oldest first.
  uint64_t prev = 0;
  for (const obs::TraceEvent& ev : snaps[0].events) {
    EXPECT_GE(ev.tsNs, prev);
    prev = ev.tsNs;
  }
}

TEST(TraceSession, SecondSessionDoesNotInheritThreadCache) {
  {
    TraceSession s1;
    s1.install();
    { TraceSpan span("one", TraceCat::Busy, TraceDetail::Phase); }
    s1.uninstall();
    EXPECT_EQ(s1.eventCount(), 1u);
  }
  TraceSession s2;
  s2.install();
  { TraceSpan span("two", TraceCat::Busy, TraceDetail::Phase); }
  s2.uninstall();
  ASSERT_EQ(s2.eventCount(), 1u);
  EXPECT_EQ(std::string(s2.snapshot()[0].events[0].name), "two");
}

TEST(TraceSession, ConcurrentRecordingFromPoolWorkers) {
  TraceSession s;
  s.install();
  support::ThreadPool pool(4);
  for (int epoch = 0; epoch < 50; epoch++) {
    pool.run([&](unsigned lane) {
      TraceSpan span("lane-work", TraceCat::None, TraceDetail::Wave, "lane", lane);
      obs::traceCounter("lane-counter", lane);
    });
  }
  s.uninstall();
  // Each fork records at least the explicit span+counter per lane, plus the
  // pool's own pool.work/pool.wait/pool.join instrumentation.
  EXPECT_GE(s.eventCount(), 50u * pool.numThreads() * 2u);
  auto snaps = s.snapshot();
  EXPECT_GE(snaps.size(), 1u);  // >= 1 buffer (caller) even if spawns failed
  obs::TraceSummary sum = s.summary();
  for (const obs::TraceThreadSummary& t : sum.threads) {
    double total = t.busyFrac + t.barrierFrac + t.idleFrac;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TraceSession, PoolWorkSpansCategorizedBusyAndDisjoint) {
  TraceSession s;
  s.install();
  {
    support::ThreadPool pool(2);
    pool.run([&](unsigned) {
      // Categorized engine spans must downgrade inside pooled work.
      EXPECT_TRUE(obs::trace_detail::inPooledWork());
    });
  }
  EXPECT_FALSE(obs::trace_detail::inPooledWork());
  s.uninstall();
  bool sawPoolWork = false;
  for (const auto& snap : s.snapshot())
    for (const obs::TraceEvent& ev : snap.events)
      if (std::string(ev.name) == "pool.work") {
        sawPoolWork = true;
        EXPECT_EQ(ev.cat, TraceCat::Busy);
      }
  EXPECT_TRUE(sawPoolWork);
}

// End-to-end: the BSP parallel engine under a trace session emits per-step
// spans and the summary's per-thread fractions stay normalized. Runs the
// real ParallelActivityEngine (constructor path, no hardware clamp) with
// the serial cutoff disabled so every cycle takes the pooled super-step
// path — the tsan job exercises recording from real engine workers.
TEST(TraceEngine, ParallelEngineEmitsStepSpansAndNormalizedSummary) {
  sim::SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(32, 16));
  TraceSession s({TraceDetail::Wave, 1 << 14});
  s.install();
  {
    core::ParallelActivityEngine eng(
        core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), core::ScheduleOptions{}),
        3);
    eng.setSerialCutoff(0);
    eng.poke("reset", 0);
    eng.poke("wdata", 5);
    for (int c = 0; c < 200; c++) {
      eng.poke("bankSel", static_cast<uint64_t>(c % 32));
      eng.tick();
    }
  }  // engine (and its pool) destroyed -> buffers quiescent
  s.uninstall();

  EXPECT_GT(s.eventCount(), 0u);
  bool sawStep = false, sawCounter = false;
  for (const auto& snap : s.snapshot())
    for (const obs::TraceEvent& ev : snap.events) {
      if (std::string(ev.name) == "pool.step" && ev.ph == 'X') sawStep = true;
      if (std::string(ev.name) == "parts_active" && ev.ph == 'C') sawCounter = true;
    }
  EXPECT_TRUE(sawStep);
  EXPECT_TRUE(sawCounter);

  obs::TraceSummary sum = s.summary();
  EXPECT_GT(sum.windowNs, 0u);
  ASSERT_FALSE(sum.threads.empty());
  for (const obs::TraceThreadSummary& t : sum.threads) {
    EXPECT_NEAR(t.busyFrac + t.barrierFrac + t.idleFrac, 1.0, 1e-9);
    EXPECT_LE(t.busyNs + t.barrierNs, sum.windowNs);
  }
  EXPECT_FALSE(sum.steps.empty());
  EXPECT_FALSE(sum.truncated);  // 200 low-activity cycles fit a 16k ring
  std::string rendered = sum.render();
  EXPECT_NE(rendered.find("trace summary"), std::string::npos);
  obs::Json j = sum.toJson();
  EXPECT_NE(j.find("threads"), nullptr);
  EXPECT_NE(j.find("steps"), nullptr);
  EXPECT_NE(j.find("truncated"), nullptr);
}

TEST(TraceEngine, PartitionDetailAddsPartSpans) {
  sim::SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(8, 8));
  TraceSession s({TraceDetail::Partition, 1 << 14});
  s.install();
  {
    core::ActivityEngine eng(
        core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), core::ScheduleOptions{}));
    eng.poke("reset", 0);
    for (int c = 0; c < 20; c++) eng.tick();
  }
  s.uninstall();
  bool sawPart = false;
  for (const auto& snap : s.snapshot())
    for (const obs::TraceEvent& ev : snap.events)
      if (std::string(ev.name) == "part") sawPart = true;
  EXPECT_TRUE(sawPart);
}

// --- metrics ---------------------------------------------------------------

TEST(Metrics, CounterAndGauge) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  obs::MetricCounter& c = reg.counter("events");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  EXPECT_EQ(&reg.counter("events"), &c);  // idempotent by name
  reg.gauge("ratio").set(0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("ratio").value(), 0.5);
  EXPECT_FALSE(reg.empty());
  obs::Json j = reg.toJson();
  EXPECT_EQ(j.at("counters").at("events").asUInt(), 10u);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("ratio").asDouble(), 0.5);
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Metrics, HistogramBucketIndex) {
  EXPECT_EQ(obs::LatencyHistogram::bucketIndex(0), 0u);
  EXPECT_EQ(obs::LatencyHistogram::bucketIndex(1), 1u);
  EXPECT_EQ(obs::LatencyHistogram::bucketIndex(2), 2u);
  EXPECT_EQ(obs::LatencyHistogram::bucketIndex(3), 2u);
  EXPECT_EQ(obs::LatencyHistogram::bucketIndex(4), 3u);
  EXPECT_EQ(obs::LatencyHistogram::bucketIndex(UINT64_MAX),
            obs::LatencyHistogram::kBuckets - 1);
}

TEST(Metrics, HistogramSnapshotQuantiles) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  // 100 samples at 1000ns, 10 at 1ms: p50 in the 1000ns bucket, p99 in the
  // 1ms bucket (log2 buckets carry <= 2x relative error).
  for (int i = 0; i < 100; i++) h.record(1000);
  for (int i = 0; i < 10; i++) h.record(1'000'000);
  obs::LatencySnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 110u);
  EXPECT_EQ(s.minNs, 1000u);
  EXPECT_EQ(s.maxNs, 1'000'000u);
  EXPECT_NEAR(s.meanNs, (100.0 * 1000 + 10.0 * 1e6) / 110.0, 1.0);
  EXPECT_GE(s.p50Ns, 512.0);
  EXPECT_LT(s.p50Ns, 2048.0);
  EXPECT_GE(s.p99Ns, 524288.0);
  EXPECT_LE(s.p99Ns, 1'000'000.0);
  EXPECT_GE(s.p90Ns, s.p50Ns);
  EXPECT_GE(s.p99Ns, s.p90Ns);
  obs::Json j = s.toJson();
  EXPECT_EQ(j.at("count").asUInt(), 110u);
  EXPECT_NE(j.find("p50_ns"), nullptr);
  EXPECT_NE(j.find("p99_ns"), nullptr);
}

TEST(Metrics, ConcurrentHistogramRecording) {
  obs::LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 1000; i++)
        h.record(static_cast<uint64_t>(t * 1000 + i + 1));
    });
  for (auto& th : threads) th.join();
  obs::LatencySnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4000u);
  EXPECT_EQ(s.minNs, 1u);
  EXPECT_EQ(s.maxNs, 3999u + 1u);
}

TEST(Metrics, GlobalRegistryIsSingleton) {
  obs::MetricsRegistry& a = obs::MetricsRegistry::global();
  obs::MetricsRegistry& b = obs::MetricsRegistry::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
