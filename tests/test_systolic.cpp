// Tests for the systolic-array design family: a host-side mirror model
// verifies cycle-exact dataflow, a hand-skewed feed verifies true matrix
// multiplication, and the regular PE grid exercises partitioning and
// cross-engine equivalence at module-instantiation scale.
#include <gtest/gtest.h>

#include <vector>

#include "core/activity_engine.h"
#include "core/netlist.h"
#include "core/partitioner.h"
#include "designs/systolic.h"
#include "sim/compile.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"
#include "support/rng.h"
#include "support/strutil.h"

namespace essent {
namespace {

using designs::SystolicConfig;
using sim::FullCycleEngine;
using sim::SimIR;

// Bit-exact host mirror of the PE grid (same update equations).
struct Mirror {
  uint32_t rows, cols, dw;
  std::vector<uint64_t> ar, br, acc;

  explicit Mirror(const SystolicConfig& cfg)
      : rows(cfg.rows), cols(cfg.cols), dw(cfg.dataWidth) {
    ar.assign(rows * cols, 0);
    br.assign(rows * cols, 0);
    acc.assign(rows * cols, 0);
  }

  uint64_t dmask() const { return (1ull << dw) - 1; }
  uint64_t amask() const { return (1ull << (2 * dw)) - 1; }
  size_t at(uint32_t i, uint32_t j) const { return i * cols + j; }

  void step(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b, bool en,
            bool clear) {
    std::vector<uint64_t> nar = ar, nbr = br, nacc = acc;
    for (uint32_t i = 0; i < rows; i++) {
      for (uint32_t j = 0; j < cols; j++) {
        uint64_t ain = j == 0 ? a[i] : ar[at(i, j - 1)];
        uint64_t bin = i == 0 ? b[j] : br[at(i - 1, j)];
        if (en) {
          nar[at(i, j)] = ain & dmask();
          nbr[at(i, j)] = bin & dmask();
          nacc[at(i, j)] = (acc[at(i, j)] + ain * bin) & amask();
        }
        if (clear) nacc[at(i, j)] = 0;
      }
    }
    ar = nar;
    br = nbr;
    acc = nacc;
  }
};

TEST(Systolic, MirrorModelMatchesRtl) {
  SystolicConfig cfg;
  cfg.rows = 3;
  cfg.cols = 4;
  SimIR ir = sim::buildFromFirrtl(designs::systolicFirrtl(cfg));
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  Mirror mir(cfg);
  Rng rng(99);
  eng.poke("reset", 0);
  for (int c = 0; c < 60; c++) {
    std::vector<uint64_t> a(cfg.rows), b(cfg.cols);
    for (auto& v : a) v = rng.next() & mir.dmask();
    for (auto& v : b) v = rng.next() & mir.dmask();
    bool en = rng.nextChance(0.7);
    bool clear = rng.nextChance(0.05);
    for (uint32_t i = 0; i < cfg.rows; i++) eng.poke(strfmt("a%u", i), a[i]);
    for (uint32_t j = 0; j < cfg.cols; j++) eng.poke(strfmt("b%u", j), b[j]);
    eng.poke("en", en);
    eng.poke("clear", clear);
    eng.tick();
    mir.step(a, b, en, clear);
    // Registers peek post-update: compare every PE accumulator.
    for (uint32_t i = 0; i < cfg.rows; i++)
      for (uint32_t j = 0; j < cfg.cols; j++)
        ASSERT_EQ(eng.peek(strfmt("pe_%u_%u.accr", i, j)), mir.acc[mir.at(i, j)])
            << "cycle " << c << " pe " << i << "," << j;
  }
}

TEST(Systolic, ComputesMatrixProductWithSkewedFeed) {
  // Classic output-stationary schedule: row i of A delayed by i cycles,
  // column j of B delayed by j cycles; after N + rows + cols cycles,
  // acc(i,j) = sum_k A[i][k] * B[k][j].
  constexpr uint32_t N = 3;
  SystolicConfig cfg;
  cfg.rows = N;
  cfg.cols = N;
  uint64_t A[N][N] = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  uint64_t B[N][N] = {{9, 8, 7}, {6, 5, 4}, {3, 2, 1}};

  SimIR ir = sim::buildFromFirrtl(designs::systolicFirrtl(cfg));
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("reset", 0);
  eng.poke("en", 1);
  for (uint32_t t = 0; t < N + 2 * N; t++) {
    for (uint32_t i = 0; i < N; i++) {
      // Row i sees A[i][t - i] at time t (zero outside the window).
      uint64_t v = (t >= i && t - i < N) ? A[i][t - i] : 0;
      eng.poke(strfmt("a%u", i), v);
    }
    for (uint32_t j = 0; j < N; j++) {
      uint64_t v = (t >= j && t - j < N) ? B[t - j][j] : 0;
      eng.poke(strfmt("b%u", j), v);
    }
    eng.tick();
  }
  for (uint32_t i = 0; i < N; i++) {
    for (uint32_t j = 0; j < N; j++) {
      uint64_t want = 0;
      for (uint32_t k = 0; k < N; k++) want += A[i][k] * B[k][j];
      EXPECT_EQ(eng.peek(strfmt("pe_%u_%u.accr", i, j)), want) << i << "," << j;
    }
  }
}

TEST(Systolic, SelectorAndChecksumOutputs) {
  SystolicConfig cfg;
  cfg.rows = 2;
  cfg.cols = 2;
  SimIR ir = sim::buildFromFirrtl(designs::systolicFirrtl(cfg));
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("reset", 0);
  eng.poke("en", 1);
  eng.poke("a0", 3);
  eng.poke("a1", 5);
  eng.poke("b0", 7);
  eng.poke("b1", 11);
  // Two enabled cycles: operands need one hop to reach the inner PEs.
  // After cycle 1: acc = [21, 0; 0, 0]. After cycle 2: [42, 33; 35, 55].
  eng.tick();
  eng.tick();
  eng.poke("en", 0);
  eng.poke("rowSel", 0);
  eng.poke("colSel", 0);
  eng.tick();
  EXPECT_EQ(eng.peek("acc_sel"), 42u);
  eng.poke("rowSel", 1);
  eng.tick();
  EXPECT_EQ(eng.peek("acc_sel"), 35u);
  EXPECT_EQ(eng.peek("checksum"), (42ull ^ 33ull ^ 35ull ^ 55ull));
}

TEST(Systolic, EnginesAgreeAndPartitionerScales) {
  SystolicConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  SimIR ir = sim::buildFromFirrtl(designs::systolicFirrtl(cfg));
  core::Netlist nl = core::Netlist::build(ir);
  core::Partitioning p = core::partitionNetlist(nl, core::PartitionOptions{});
  EXPECT_TRUE(p.partGraph.isAcyclic());
  // The regular grid must coarsen well below one partition per node.
  EXPECT_LT(p.numPartitions(), static_cast<size_t>(nl.g.numNodes()) / 3);

  FullCycleEngine fc(sim::CompiledDesign::compile(ir));
  sim::EventDrivenEngine ev(sim::CompiledDesign::compile(ir));
  auto stim = [](sim::Engine& e, uint64_t c) {
    Rng draw(c * 2654435761ull + 5);
    e.poke("reset", c < 1);
    e.poke("en", (c / 7) % 2);
    e.poke("clear", c % 23 == 0);
    e.poke("a0", draw.next());
    e.poke("b0", draw.next());
  };
  auto m1 = sim::compareEngines(fc, ev, 60, stim);
  EXPECT_FALSE(m1.has_value()) << m1->describe();
  FullCycleEngine fc2(sim::CompiledDesign::compile(ir));
  core::ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), core::ScheduleOptions{}));
  auto m2 = sim::compareEngines(fc2, act, 60, stim);
  EXPECT_FALSE(m2.has_value()) << m2->describe();
}

TEST(Systolic, IdleGridSleepsUnderCcss) {
  SystolicConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  SimIR ir = sim::buildFromFirrtl(designs::systolicFirrtl(cfg));
  core::ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), core::ScheduleOptions{}));
  eng.poke("reset", 0);
  eng.poke("en", 0);
  eng.tick();
  uint64_t ops = eng.stats().opsEvaluated;
  for (int i = 0; i < 30; i++) eng.tick();
  EXPECT_EQ(eng.stats().opsEvaluated, ops);  // en=0: the whole grid sleeps
}

}  // namespace
}  // namespace essent
