// Tests for the differential fuzzer subsystem: generator determinism and
// well-formedness, stimulus round-tripping, oracle agreement on clean
// circuits (in-process and compiled), oracle sensitivity to injected
// mismatches, shrinker minimization, campaign determinism, and the
// committed corner-circuit corpus. Labeled `fuzz` in ctest.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "firrtl/printer.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrinker.h"
#include "fuzz/stimulus.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"

namespace essent::fuzz {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Generator, Deterministic) {
  GenOptions opts;
  for (uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_EQ(generateCircuit(seed, opts), generateCircuit(seed, opts));
  }
  EXPECT_NE(generateCircuit(1, opts), generateCircuit(2, opts));
}

TEST(Generator, BuildsParsesAndRoundTrips) {
  for (uint64_t seed = 1; seed <= 30; seed++) {
    GenOptions opts;
    opts.allowWide = seed % 5 == 0;
    std::string text = generateCircuit(seed, opts);
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Builds into a valid SimIR...
    sim::SimIR ir;
    ASSERT_NO_THROW(ir = sim::buildFromFirrtl(text)) << text;
    EXPECT_FALSE(ir.inputs.empty());
    EXPECT_FALSE(ir.outputs.empty());
    // ...and survives a parse -> print -> parse -> print fixpoint.
    auto c1 = firrtl::parseCircuit(text);
    std::string p1 = firrtl::printCircuit(*c1);
    auto c2 = firrtl::parseCircuit(p1);
    EXPECT_EQ(p1, firrtl::printCircuit(*c2));
  }
}

TEST(Generator, WideCircuitsActuallyGoWide) {
  GenOptions opts;
  opts.allowWide = true;
  bool sawWide = false;
  for (uint64_t seed = 1; seed <= 20 && !sawWide; seed++) {
    sim::SimIR ir = sim::buildFromFirrtl(generateCircuit(seed, opts));
    for (const sim::Signal& s : ir.signals) sawWide = sawWide || s.width > 64;
  }
  EXPECT_TRUE(sawWide);
}

TEST(Stimulus, RoundTrip) {
  sim::SimIR ir = sim::buildFromFirrtl(generateCircuit(7, GenOptions{}));
  Stimulus s = randomStimulus(ir, 99, 25, 0.5);
  EXPECT_EQ(s.numCycles(), 25u);
  std::string text = s.serialize();
  Stimulus back = Stimulus::parse(text);
  EXPECT_EQ(back.inputs, s.inputs);
  EXPECT_EQ(back.widths, s.widths);
  ASSERT_EQ(back.numCycles(), s.numCycles());
  for (size_t c = 0; c < s.numCycles(); c++)
    for (size_t i = 0; i < s.inputs.size(); i++)
      EXPECT_EQ(back.cycles[c][i], s.cycles[c][i]) << "cycle " << c << " input " << i;
  EXPECT_EQ(back.serialize(), text);
}

TEST(Stimulus, HoldsResetForTwoCycles) {
  sim::SimIR ir = sim::buildFromFirrtl(generateCircuit(3, GenOptions{}));
  Stimulus s = randomStimulus(ir, 5, 10, 1.0);
  size_t resetIdx = SIZE_MAX;
  for (size_t i = 0; i < s.inputs.size(); i++)
    if (s.inputs[i] == "reset") resetIdx = i;
  ASSERT_NE(resetIdx, SIZE_MAX);
  EXPECT_EQ(s.cycles[0][resetIdx].toU64(), 1u);
  EXPECT_EQ(s.cycles[1][resetIdx].toU64(), 1u);
  for (size_t c = 2; c < 10; c++) EXPECT_EQ(s.cycles[c][resetIdx].toU64(), 0u);
}

TEST(Oracle, CleanCircuitsAgreeInProcess) {
  OracleOptions oo;
  oo.engines = {EngineKind::FullCycle, EngineKind::EventDriven, EngineKind::Ccss,
                EngineKind::CcssPar};
  for (uint64_t seed = 100; seed < 118; seed++) {
    GenOptions gen;
    gen.allowWide = seed % 6 == 0;
    std::string fir = generateCircuit(seed, gen);
    sim::SimIR ir = sim::buildFromFirrtl(fir);
    Stimulus stim = randomStimulus(ir, seed * 3, 50, seed % 2 ? 0.5 : 0.1);
    OracleResult r = runOracle(fir, stim, oo);
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": "
                        << (r.divergence ? r.divergence->describe() : r.buildError);
  }
}

TEST(Oracle, CleanCircuitsAgreeCompiled) {
  OracleOptions oo;  // all five engines, codegen included
  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    std::string fir = generateCircuit(seed, GenOptions{});
    sim::SimIR ir = sim::buildFromFirrtl(fir);
    Stimulus stim = randomStimulus(ir, seed, 30, 0.5);
    OracleResult r = runOracle(fir, stim, oo);
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": "
                        << (r.divergence ? r.divergence->describe() : r.buildError);
    EXPECT_FALSE(r.codegenSkipped) << r.codegenSkipReason;
  }
}

TEST(Oracle, ReportsInjectedMismatch) {
  // Two engines over circuits that share port/node names but differ in
  // logic: the lockstep comparator must localize the first divergence.
  std::string good = R"(
circuit G :
  module G :
    input x : UInt<8>
    output o : UInt<8>
    node n = tail(add(x, UInt<8>(1)), 1)
    o <= n
)";
  std::string bad = R"(
circuit G :
  module G :
    input x : UInt<8>
    output o : UInt<8>
    node n = tail(add(x, UInt<8>(2)), 1)
    o <= n
)";
  sim::SimIR irA = sim::buildFromFirrtl(good);
  sim::SimIR irB = sim::buildFromFirrtl(bad);
  sim::FullCycleEngine a(sim::CompiledDesign::compile(irA));
  sim::FullCycleEngine b(sim::CompiledDesign::compile(irB));
  Stimulus stim;
  stim.inputs = {"x"};
  stim.widths = {8};
  stim.cycles = {{BitVec::fromU64(8, 5)}, {BitVec::fromU64(8, 9)}};
  auto d = compareLockstep({{"ref", &a}, {"mut", &b}}, stim);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, Divergence::Kind::ValueMismatch);
  EXPECT_EQ(d->cycle, 0u);
  EXPECT_TRUE(d->signal == "n" || d->signal == "o") << d->signal;
  EXPECT_EQ(d->engineA, "ref");
  EXPECT_EQ(d->engineB, "mut");
  EXPECT_EQ(d->valueA, "6");
  EXPECT_EQ(d->valueB, "7");
  EXPECT_NE(d->describe().find("value mismatch"), std::string::npos);
}

TEST(Oracle, ReportsPrintMismatch) {
  std::string quiet = R"(
circuit P :
  module P :
    input clock : Clock
    input x : UInt<8>
    output o : UInt<8>
    o <= x
)";
  std::string chatty = R"(
circuit P :
  module P :
    input clock : Clock
    input x : UInt<8>
    output o : UInt<8>
    printf(clock, UInt<1>(1), "x=%d\n", x)
    o <= x
)";
  sim::SimIR irA = sim::buildFromFirrtl(quiet);
  sim::SimIR irB = sim::buildFromFirrtl(chatty);
  sim::FullCycleEngine a(sim::CompiledDesign::compile(irA));
  sim::FullCycleEngine b(sim::CompiledDesign::compile(irB));
  Stimulus stim;
  stim.inputs = {"x"};
  stim.widths = {8};
  stim.cycles = {{BitVec::fromU64(8, 3)}};
  auto d = compareLockstep({{"ref", &a}, {"mut", &b}}, stim);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, Divergence::Kind::PrintMismatch);
}

// Interpreter vs. compiled simulator on division edge cases: x/0 == 0,
// x%0 == x (truncated), dshr by >= width, and INT64_MIN-style signed
// operands. The SInt<64> rem -1 case would SIGFPE in both the fast path
// and the emitted C++ before the guards (INT64_MIN % -1 is UB).
TEST(Oracle, DivRemShiftEdgeCasesAgreeWithCodegen) {
  std::string fir = R"(
circuit DivEdge :
  module DivEdge :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<8>
    input sa : SInt<63>
    input sb : SInt<64>
    output dz : UInt<8>
    output rz : UInt<8>
    output shz : UInt<8>
    output sdiv : SInt<64>
    output srem : SInt<63>
    output sremw : SInt<64>
    dz <= div(a, UInt<8>(0))
    rz <= rem(a, UInt<8>(0))
    shz <= dshr(a, UInt<4>(9))
    sdiv <= div(sa, SInt<63>(-1))
    srem <= rem(sa, SInt<63>(-1))
    sremw <= rem(sb, sb)
)";
  sim::SimIR ir = sim::buildFromFirrtl(fir);
  Stimulus stim;
  for (int32_t in : ir.inputs) {
    const sim::Signal& s = ir.signals[static_cast<size_t>(in)];
    stim.inputs.push_back(s.name);
    stim.widths.push_back(s.width);
  }
  auto row = [&](uint64_t reset, uint64_t a, int64_t sa, int64_t sb) {
    std::vector<BitVec> r;
    for (size_t i = 0; i < stim.inputs.size(); i++) {
      const std::string& n = stim.inputs[i];
      if (n == "reset") r.push_back(BitVec::fromU64(1, reset));
      else if (n == "a") r.push_back(BitVec::fromU64(8, a));
      else if (n == "sa") r.push_back(BitVec::fromI64(63, sa));
      else r.push_back(BitVec::fromI64(64, sb));
    }
    return r;
  };
  stim.cycles.push_back(row(1, 0, 0, 0));
  stim.cycles.push_back(row(0, 255, -1, -1));
  // sa = INT63_MIN so div widens cleanly; sb = INT64_MIN % itself.
  stim.cycles.push_back(row(0, 128, -(1ll << 62), INT64_MIN));
  stim.cycles.push_back(row(0, 7, (1ll << 62) - 1, INT64_MIN));

  OracleResult r = runOracle(fir, stim, OracleOptions{});
  EXPECT_TRUE(r.ok()) << (r.divergence ? r.divergence->describe() : r.buildError);
  EXPECT_FALSE(r.codegenSkipped) << r.codegenSkipReason;

  // Pin the reference semantics directly.
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("a", 200);
  eng.pokeBV("sa", BitVec::fromI64(63, -(1ll << 62)));
  eng.pokeBV("sb", BitVec::fromI64(64, INT64_MIN));
  eng.tick();
  EXPECT_EQ(eng.peek("dz"), 0u);    // x / 0 == 0
  EXPECT_EQ(eng.peek("rz"), 200u);  // x % 0 == x
  EXPECT_EQ(eng.peek("shz"), 0u);   // dshr past the width
  EXPECT_EQ(eng.peekBV("srem").toU64(), 0u);   // INT63_MIN rem -1 == 0
  EXPECT_EQ(eng.peekBV("sremw").toU64(), 0u);  // INT64_MIN rem INT64_MIN == 0
}

// The fast-path signed remainder with a 64-bit result: INT64_MIN % -1 hits
// native hardware division; without the divisor guard this traps (SIGFPE).
TEST(Oracle, SignedRem64MinByMinusOne) {
  std::string fir = R"(
circuit R :
  module R :
    input a : SInt<64>
    input b : SInt<64>
    output o : SInt<64>
    o <= rem(a, b)
)";
  sim::SimIR ir = sim::buildFromFirrtl(fir);
  Stimulus stim;
  stim.inputs = {"a", "b"};
  stim.widths = {64, 64};
  stim.cycles = {{BitVec::fromI64(64, INT64_MIN), BitVec::fromI64(64, -1)},
                 {BitVec::fromI64(64, INT64_MIN), BitVec::fromI64(64, 3)},
                 {BitVec::fromI64(64, 77), BitVec::fromI64(64, 0)}};
  OracleResult r = runOracle(fir, stim, OracleOptions{});
  EXPECT_TRUE(r.ok()) << (r.divergence ? r.divergence->describe() : r.buildError);

  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.pokeBV("a", BitVec::fromI64(64, INT64_MIN));
  eng.pokeBV("b", BitVec::fromI64(64, -1));
  eng.tick();
  EXPECT_EQ(eng.peekBV("o").toU64(), 0u);  // mathematical remainder is 0
  eng.pokeBV("b", BitVec::fromI64(64, 3));
  eng.tick();
  EXPECT_EQ(eng.peekBV("o").toI64(), -2);  // sign follows the dividend
}

TEST(Shrinker, MinimizesSyntheticFailure) {
  // Build a bulky circuit whose "failure" is just containing a marker node
  // with at least 3 stimulus cycles; the shrinker should strip the rest.
  std::string fir = generateCircuit(17, GenOptions{});
  fir += "    node keepme = not(reset)\n";
  sim::SimIR ir = sim::buildFromFirrtl(fir);
  Stimulus stim = randomStimulus(ir, 17, 40, 0.5);
  FailPredicate pred = [](const std::string& f, const Stimulus& s) {
    return f.find("node keepme") != std::string::npos && s.numCycles() >= 3;
  };
  ShrinkResult r = shrinkCase(fir, stim, pred, ShrinkOptions{});
  EXPECT_TRUE(pred(r.fir, r.stim));  // the result itself still fails
  EXPECT_LT(r.fir.size(), fir.size() / 2);
  EXPECT_EQ(r.stim.numCycles(), 3u);
  EXPECT_GT(r.attempts, 0u);
}

TEST(Shrinker, RealDivergenceShrinks) {
  // Inject a semantic predicate: "the circuit's o differs from reference
  // add-by-1 behaviour" is hard to fake, so instead shrink against a
  // predicate that requires the mux-deep structure to survive building.
  std::string fir = readFile(std::string(FUZZ_CORPUS_DIR) + "/corner_mux_deep.fir");
  Stimulus stim = Stimulus::parse(
      readFile(std::string(FUZZ_CORPUS_DIR) + "/corner_mux_deep.stim"));
  FailPredicate pred = [](const std::string& f, const Stimulus& s) {
    // Keep only candidates that still build and still contain m11.
    if (f.find("m11") == std::string::npos || s.numCycles() < 1) return false;
    try {
      sim::buildFromFirrtl(f);
      return true;
    } catch (...) {
      return false;
    }
  };
  ShrinkResult r = shrinkCase(fir, stim, pred, ShrinkOptions{});
  EXPECT_TRUE(pred(r.fir, r.stim));
  EXPECT_LE(r.stim.numCycles(), 1u);
  EXPECT_LE(r.fir.size(), fir.size());
}

TEST(Campaign, Deterministic) {
  FuzzConfig cfg;
  cfg.seed = 321;
  cfg.budget = 25;
  cfg.cycles = 25;
  cfg.engines = {EngineKind::FullCycle, EngineKind::EventDriven, EngineKind::Ccss,
                 EngineKind::CcssPar};  // no codegen: keep the test fast
  cfg.shrinkFailures = false;
  FuzzSummary a = runFuzzCampaign(cfg, nullptr);
  FuzzSummary b = runFuzzCampaign(cfg, nullptr);
  EXPECT_EQ(a.cases, 25u);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.failures, 0u) << "seed range 321/25 must stay clean";
  // Case seeds are index-addressable (the --replay contract).
  EXPECT_EQ(caseSeedFor(321, 0), caseSeedFor(321, 0));
  EXPECT_NE(caseSeedFor(321, 0), caseSeedFor(321, 1));
  EXPECT_NE(caseSeedFor(321, 0), caseSeedFor(322, 0));
}

TEST(Campaign, ReplaySingleCaseMatchesCampaignVerdict) {
  FuzzConfig cfg;
  cfg.seed = 4242;
  cfg.budget = 1;
  cfg.engines = {EngineKind::FullCycle, EngineKind::Ccss};
  cfg.shrinkFailures = false;
  FuzzSummary sum = runFuzzCampaign(cfg, nullptr);
  CaseResult cr = runFuzzCase(caseSeedFor(4242, 0), cfg, nullptr);
  EXPECT_EQ(sum.failures != 0, cr.failed());
}

TEST(Corpus, CornerCircuitsAgreeAcrossAllEngines) {
  for (const char* name : {"corner_zero_width", "corner_mux_deep", "corner_mem_rw"}) {
    SCOPED_TRACE(name);
    std::string fir = readFile(std::string(FUZZ_CORPUS_DIR) + "/" + name + ".fir");
    Stimulus stim =
        Stimulus::parse(readFile(std::string(FUZZ_CORPUS_DIR) + "/" + name + ".stim"));
    FuzzConfig cfg;  // all five engines
    CaseResult cr = replayCase(fir, stim, cfg, nullptr);
    EXPECT_FALSE(cr.failed())
        << (cr.divergence ? cr.divergence->describe() : cr.buildError);
  }
}

}  // namespace
}  // namespace essent::fuzz
