// Tests for the SimIR builder, the IR optimizations, and the full-cycle /
// event-driven engines on hand-written designs.
#include <gtest/gtest.h>

#include "sim/compile.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"
#include "sim/vcd.h"
#include "support/bvops.h"

#include <sstream>

namespace essent::sim {
namespace {

constexpr const char* kCounter = R"(
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output count : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    count <= r
)";

TEST(Builder, CounterStructure) {
  SimIR ir = buildFromFirrtl(kCounter);
  EXPECT_EQ(ir.name, "Counter");
  ASSERT_EQ(ir.regs.size(), 1u);
  EXPECT_EQ(ir.inputs.size(), 2u);  // reset, en (clock excluded)
  EXPECT_EQ(ir.outputs.size(), 1u);
  EXPECT_GE(ir.findSignal("r"), 0);
  EXPECT_GE(ir.findSignal("count"), 0);
  ir.validate();
}

TEST(Builder, BaselineDisablesOptimizations) {
  BuildOptions off;
  off.constProp = off.cse = off.dce = false;
  SimIR raw = buildFromFirrtl(kCounter, off);
  SimIR opt = buildFromFirrtl(kCounter);
  EXPECT_GE(raw.ops.size(), opt.ops.size());
  raw.validate();
}

TEST(FullCycle, CounterCounts) {
  SimIR ir = buildFromFirrtl(kCounter);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("reset", 1);
  eng.poke("en", 0);
  eng.tick();
  EXPECT_EQ(eng.peek("count"), 0u);
  eng.poke("reset", 0);
  eng.poke("en", 1);
  for (int i = 0; i < 10; i++) eng.tick();
  EXPECT_EQ(eng.peek("r"), 10u);
  eng.poke("en", 0);
  for (int i = 0; i < 5; i++) eng.tick();
  EXPECT_EQ(eng.peek("r"), 10u);
}

TEST(FullCycle, CounterWrapsAt256) {
  SimIR ir = buildFromFirrtl(kCounter);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("reset", 0);
  eng.poke("en", 1);
  for (int i = 0; i < 260; i++) eng.tick();
  EXPECT_EQ(eng.peek("r"), 4u);
}

constexpr const char* kGcd = R"(
circuit GCD :
  module GCD :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<16>
    input b : UInt<16>
    input load : UInt<1>
    output result : UInt<16>
    output valid : UInt<1>
    reg x : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    reg y : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    when load :
      x <= a
      y <= b
    else :
      when gt(x, y) :
        x <= tail(sub(x, y), 1)
      else :
        when neq(y, UInt<16>(0)) :
          y <= tail(sub(y, x), 1)
    result <= x
    valid <= eq(y, UInt<16>(0))
)";

TEST(FullCycle, GcdComputes) {
  SimIR ir = buildFromFirrtl(kGcd);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("reset", 0);
  eng.poke("a", 48);
  eng.poke("b", 36);
  eng.poke("load", 1);
  eng.tick();  // outputs here still reflect the pre-load state
  eng.poke("load", 0);
  eng.tick();  // first iteration on the loaded operands
  for (int i = 0; i < 100 && eng.peek("valid") == 0; i++) eng.tick();
  EXPECT_EQ(eng.peek("valid"), 1u);
  EXPECT_EQ(eng.peek("result"), 12u);
}

constexpr const char* kMemDesign = R"(
circuit Scratch :
  module Scratch :
    input clock : Clock
    input waddr : UInt<4>
    input wdata : UInt<32>
    input wen : UInt<1>
    input raddr : UInt<4>
    output rdata : UInt<32>
    mem table :
      data-type => UInt<32>
      depth => 16
      read-latency => 0
      write-latency => 1
      read-under-write => undefined
      reader => r
      writer => w
    table.r.addr <= raddr
    table.r.en <= UInt<1>(1)
    table.r.clk <= clock
    table.w.addr <= waddr
    table.w.en <= wen
    table.w.clk <= clock
    table.w.data <= wdata
    table.w.mask <= UInt<1>(1)
    rdata <= table.r.data
)";

TEST(FullCycle, MemoryWriteThenRead) {
  SimIR ir = buildFromFirrtl(kMemDesign);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("wen", 1);
  eng.poke("waddr", 5);
  eng.poke("wdata", 0xdeadbeef);
  eng.poke("raddr", 5);
  eng.tick();  // write commits at the cycle boundary; read saw old contents
  EXPECT_EQ(eng.peek("rdata"), 0u);
  eng.poke("wen", 0);
  eng.tick();
  EXPECT_EQ(eng.peek("rdata"), 0xdeadbeefu);
  // Unwritten cells stay zero.
  eng.poke("raddr", 6);
  eng.tick();
  EXPECT_EQ(eng.peek("rdata"), 0u);
}

TEST(FullCycle, MemoryLatencyOneRead) {
  std::string design = kMemDesign;
  design.replace(design.find("read-latency => 0"), 17, "read-latency => 1");
  SimIR ir = buildFromFirrtl(design);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("wen", 1);
  eng.poke("waddr", 3);
  eng.poke("wdata", 77);
  eng.poke("raddr", 3);
  eng.tick();  // cycle 1: write commits; read data register sampled old mem
  eng.poke("wen", 0);
  eng.tick();  // cycle 2: data register loads mem[3] as sampled in cycle 2
  eng.tick();  // cycle 3: registered value visible
  EXPECT_EQ(eng.peek("rdata"), 77u);
}

TEST(FullCycle, PrintfFiresWhenEnabled) {
  SimIR ir = buildFromFirrtl(R"(
circuit P :
  module P :
    input clock : Clock
    input en : UInt<1>
    input v : UInt<8>
    printf(clock, en, "v=%d x=%x b=%b\n", v, v, v)
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("en", 0);
  eng.poke("v", 5);
  eng.tick();
  EXPECT_TRUE(eng.printOutput().empty());
  eng.poke("en", 1);
  eng.poke("v", 10);
  eng.tick();
  EXPECT_EQ(eng.printOutput(), "v=10 x=a b=00001010\n");
}

TEST(FullCycle, StopSetsExitCode) {
  SimIR ir = buildFromFirrtl(R"(
circuit S :
  module S :
    input clock : Clock
    input reset : UInt<1>
    reg cnt : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))
    cnt <= tail(add(cnt, UInt<4>(1)), 1)
    stop(clock, eq(cnt, UInt<4>(7)), 3)
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("reset", 0);
  RunResult res = runEngine(eng, 100);
  EXPECT_TRUE(res.stopped);
  EXPECT_EQ(res.exitCode, 3);
  EXPECT_EQ(res.cycles, 8u);  // cnt reaches 7 on the 8th evaluation
}

TEST(Optimizations, ConstPropFoldsConstantCone) {
  BuildOptions opts;
  opts.cse = opts.dce = false;
  SimIR ir = buildFromFirrtl(R"(
circuit C :
  module C :
    output o : UInt<8>
    node a = add(UInt<4>(3), UInt<4>(4))
    node b = mul(a, UInt<4>(2))
    o <= tail(b, 1)
)", opts);
  // After explicit constProp, the output-driving op chain is constant.
  constantPropagate(ir);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.tick();
  EXPECT_EQ(eng.peek("o"), 14u);
  // Every op became Const or Copy-of-const.
  size_t arith = 0;
  for (const auto& op : ir.ops)
    if (op.code != OpCode::Const && op.code != OpCode::Copy) arith++;
  EXPECT_EQ(arith, 0u);
}

TEST(Optimizations, CseMergesDuplicateExprs) {
  BuildOptions raw;
  raw.constProp = raw.cse = raw.dce = false;
  SimIR ir = buildFromFirrtl(R"(
circuit D :
  module D :
    input a : UInt<8>
    input b : UInt<8>
    output x : UInt<9>
    output y : UInt<9>
    x <= add(a, b)
    y <= add(a, b)
)", raw);
  size_t before = ir.ops.size();
  OptStats st = eliminateCommonSubexprs(ir);
  EXPECT_GE(st.csesMerged, 1u);
  deadCodeEliminate(ir);
  EXPECT_LT(ir.ops.size(), before);
  ir.validate();
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("a", 200);
  eng.poke("b", 100);
  eng.tick();
  EXPECT_EQ(eng.peek("x"), 300u);
  EXPECT_EQ(eng.peek("y"), 300u);
}

TEST(Optimizations, DceRemovesUnreadCone) {
  BuildOptions raw;
  raw.constProp = raw.cse = raw.dce = false;
  SimIR ir = buildFromFirrtl(R"(
circuit E :
  module E :
    input clock : Clock
    input a : UInt<8>
    output o : UInt<8>
    node unused = mul(a, a)
    reg deadreg : UInt<8>, clock
    deadreg <= a
    o <= a
)", raw);
  OptStats st = deadCodeEliminate(ir);
  EXPECT_GT(st.opsRemoved, 0u);
  EXPECT_TRUE(ir.regs.empty());  // deadreg feeds nothing
  ir.validate();
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("a", 42);
  eng.tick();
  EXPECT_EQ(eng.peek("o"), 42u);
}

TEST(Builder, DetectsCombinationalCycle) {
  EXPECT_THROW(buildFromFirrtl(R"(
circuit L :
  module L :
    input a : UInt<1>
    output o : UInt<1>
    wire w1 : UInt<1>
    wire w2 : UInt<1>
    w1 <= and(w2, a)
    w2 <= or(w1, a)
    o <= w1
)"),
               BuildError);
}

TEST(Builder, SignedArithmeticEndToEnd) {
  SimIR ir = buildFromFirrtl(R"(
circuit S :
  module S :
    input a : SInt<8>
    input b : SInt<8>
    output sum : SInt<9>
    output prod : SInt<16>
    output lt_out : UInt<1>
    sum <= add(a, b)
    prod <= mul(a, b)
    lt_out <= lt(a, b)
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.pokeBV("a", BitVec::fromI64(8, -5));
  eng.pokeBV("b", BitVec::fromI64(8, 3));
  eng.tick();
  EXPECT_EQ(bvops::extend(eng.peekBV("sum"), true, 64).toI64(), -2);
  EXPECT_EQ(bvops::extend(eng.peekBV("prod"), true, 64).toI64(), -15);
  EXPECT_EQ(eng.peek("lt_out"), 1u);
}

TEST(Builder, WideValuesBeyond64Bits) {
  SimIR ir = buildFromFirrtl(R"(
circuit W :
  module W :
    input a : UInt<64>
    input b : UInt<64>
    output wide : UInt<128>
    output top : UInt<64>
    wire catted : UInt<128>
    catted <= cat(a, b)
    wide <= catted
    top <= bits(catted, 127, 64)
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("a", 0xdeadbeefcafebabeULL);
  eng.poke("b", 0x0123456789abcdefULL);
  eng.tick();
  EXPECT_EQ(eng.peekBV("wide").toHexString(), "deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(eng.peek("top"), 0xdeadbeefcafebabeULL);
}

TEST(EventDriven, MatchesFullCycleOnCounter) {
  SimIR ir = buildFromFirrtl(kCounter);
  FullCycleEngine a(sim::CompiledDesign::compile(ir));
  EventDrivenEngine b(sim::CompiledDesign::compile(ir));
  auto stim = [](Engine& e, uint64_t c) {
    e.poke("reset", c < 2 ? 1 : 0);
    e.poke("en", c % 3 != 0 ? 1 : 0);
  };
  auto mismatch = compareEngines(a, b, 50, stim);
  EXPECT_FALSE(mismatch.has_value()) << mismatch->describe();
}

TEST(EventDriven, SkipsWorkWhenIdle) {
  SimIR ir = buildFromFirrtl(kCounter);
  EventDrivenEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("reset", 0);
  eng.poke("en", 0);
  for (int i = 0; i < 10; i++) eng.tick();
  uint64_t opsAfterWarmup = eng.stats().opsEvaluated;
  for (int i = 0; i < 100; i++) eng.tick();
  // Design is completely idle: no further op evaluations at all.
  EXPECT_EQ(eng.stats().opsEvaluated, opsAfterWarmup);
}

TEST(Vcd, EmitsHeaderAndChangesOnly) {
  SimIR ir = buildFromFirrtl(kCounter);
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  std::ostringstream out;
  VcdWriter vcd(out, eng);
  eng.poke("reset", 0);
  eng.poke("en", 1);
  eng.tick();
  vcd.sample(1);
  eng.poke("en", 0);
  eng.tick();
  vcd.sample(2);
  eng.tick();
  vcd.sample(3);  // nothing changed this cycle
  std::string text = out.str();
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("$var wire 8"), std::string::npos);
  EXPECT_NE(text.find("#3"), std::string::npos);
  // The idle third sample emitted no value lines after its timestamp.
  size_t t3 = text.find("#3\n");
  EXPECT_EQ(text.substr(t3 + 3).find_first_not_of(" \n"), std::string::npos);
  EXPECT_GT(vcd.averageActivity(), 0.0);
  EXPECT_LT(vcd.averageActivity(), 1.0);
}

TEST(Harness, RunEngineStopsEarly) {
  SimIR ir = buildFromFirrtl(R"(
circuit S :
  module S :
    input clock : Clock
    input go : UInt<1>
    stop(clock, go, 1)
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  RunResult res = runEngine(eng, 100, [](Engine& e, uint64_t c) { e.poke("go", c == 4); });
  EXPECT_TRUE(res.stopped);
  EXPECT_EQ(res.cycles, 5u);
}

}  // namespace
}  // namespace essent::sim
