// Round-trip tests for the FIRRTL pretty-printer: print -> reparse ->
// print must reach a fixpoint, and the reparsed design must simulate
// identically. Covers every statement kind and the aggregate type syntax.
#include <gtest/gtest.h>

#include "designs/gcd.h"
#include "designs/tinysoc.h"
#include "firrtl/printer.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"

namespace essent::firrtl {
namespace {

void expectRoundTrip(const std::string& text) {
  auto c1 = parseCircuit(text);
  std::string p1 = printCircuit(*c1);
  auto c2 = parseCircuit(p1);
  std::string p2 = printCircuit(*c2);
  EXPECT_EQ(p1, p2) << "printer did not reach a fixpoint";
}

TEST(Printer, AllStatementKinds) {
  expectRoundTrip(R"(
circuit Full :
  module Full :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<8>
    output o : UInt<8>
    wire w : UInt<8>
    node n = tail(add(a, a), 1)
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    reg plain : UInt<8>, clock
    mem m :
      data-type => UInt<8>
      depth => 8
      read-latency => 0
      write-latency => 1
      read-under-write => undefined
      reader => rd
      writer => wr
    m.rd.addr <= bits(a, 2, 0)
    m.rd.en <= UInt<1>(1)
    m.rd.clk <= clock
    m.wr.addr <= bits(a, 2, 0)
    m.wr.en <= UInt<1>(0)
    m.wr.clk <= clock
    m.wr.data <= a
    m.wr.mask <= UInt<1>(0)
    w is invalid
    when orr(a) :
      w <= n
      r <= w
    else :
      skip
    plain <= r
    printf(clock, orr(a), "a=%d b=%x c=%b pct=%%\n", a, a, a)
    stop(clock, andr(a), 3)
    o <= r
)");
}

TEST(Printer, AggregateTypes) {
  expectRoundTrip(R"(
circuit Agg :
  module Agg :
    input io : { flip ready : UInt<1>, valid : UInt<1>, bits : UInt<32> }
    output v : UInt<8>[4]
    output nested : { x : UInt<4>, y : SInt<4> }[2]
    v.0 <= bits(io.bits, 7, 0)
    v.1 <= bits(io.bits, 15, 8)
    v.2 <= bits(io.bits, 23, 16)
    v.3 <= bits(io.bits, 31, 24)
    io.ready <= io.valid
    nested.0.x <= bits(io.bits, 3, 0)
    nested.0.y <= asSInt(bits(io.bits, 7, 4))
    nested.1.x <= nested.0.x
    nested.1.y <= nested.0.y
)");
}

TEST(Printer, SignedLiteralsSurvive) {
  auto c = parseCircuit(R"(
circuit S :
  module S :
    output o : SInt<8>
    o <= SInt<8>(-5)
)");
  std::string printed = printCircuit(*c);
  EXPECT_NE(printed.find("SInt<8>(-5)"), std::string::npos);
  expectRoundTrip(printed);
}

TEST(Printer, ReparsedGcdSimulatesIdentically) {
  std::string original = designs::gcdFirrtl(16);
  auto c = parseCircuit(original);
  std::string printed = printCircuit(*c);
  sim::SimIR ir1 = sim::buildFromFirrtl(original);
  sim::SimIR ir2 = sim::buildFromFirrtl(printed);
  sim::FullCycleEngine a(sim::CompiledDesign::compile(ir1)), b(sim::CompiledDesign::compile(ir2));
  auto m = sim::compareEngines(a, b, 80, [](sim::Engine& e, uint64_t c2) {
    e.poke("reset", 0);
    e.poke("a", 270);
    e.poke("b", 192);
    e.poke("load", c2 == 0);
  });
  EXPECT_FALSE(m.has_value()) << m->describe();
}

TEST(Printer, TinySocRoundTrips) {
  // The largest printer workout available: the whole SoC.
  std::string original = designs::tinySoCFirrtl(designs::socTiny());
  expectRoundTrip(original);
}

}  // namespace
}  // namespace essent::firrtl
