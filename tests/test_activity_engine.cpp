// Focused unit tests for the CCSS activity engine: skipping behaviour,
// trigger chains, the deferred (non-elided) state-update path, overhead
// counters, and side-effect semantics under partition sleep.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/activity_engine.h"
#include "designs/blocks.h"
#include "designs/gcd.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"

namespace essent::core {
namespace {

using sim::FullCycleEngine;
using sim::SimIR;

TEST(ActivityEngine, IdleDesignCostsNoOps) {
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(8, 16));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.poke("reset", 0);
  eng.poke("bankSel", 999);  // selects nothing
  eng.tick();                // first cycle evaluates everything
  uint64_t after1 = eng.stats().opsEvaluated;
  EXPECT_GT(after1, 0u);
  for (int i = 0; i < 50; i++) eng.tick();
  // Fully idle: zero additional op evaluations, but the static overhead
  // (activity checks) still accrues per cycle.
  EXPECT_EQ(eng.stats().opsEvaluated, after1);
  EXPECT_EQ(eng.stats().partitionChecks, 51 * eng.schedule().numPartitions());
  EXPECT_EQ(eng.stats().cycles, 51u);
}

TEST(ActivityEngine, InputChangeWakesOnlyItsCone) {
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(16, 16));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.poke("reset", 0);
  eng.poke("bankSel", 999);
  eng.tick();
  uint64_t base = eng.stats().opsEvaluated;
  // Touch one bank: only its partition chain (decode + bank + sum tree)
  // may evaluate, which is far less than the whole design.
  eng.poke("bankSel", 3);
  eng.poke("wdata", 42);
  eng.tick();
  uint64_t woke = eng.stats().opsEvaluated - base;
  EXPECT_GT(woke, 0u);
  EXPECT_LT(woke, ir.ops.size());
}

TEST(ActivityEngine, SelfFeedingRegisterStaysAwake) {
  // A free-running counter must keep its own partition awake forever via
  // the register's self-wakeup (the paper's feedback case).
  SimIR ir = sim::buildFromFirrtl(R"(
circuit C :
  module C :
    input clock : Clock
    output q : UInt<16>
    reg r : UInt<16>, clock
    r <= tail(add(r, UInt<16>(1)), 1)
    q <= r
)");
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  for (int i = 0; i < 100; i++) eng.tick();
  EXPECT_EQ(eng.peek("r"), 100u);
  EXPECT_EQ(eng.peek("q"), 99u);  // output reflects pre-update value
}

TEST(ActivityEngine, StableRegisterGoesToSleep) {
  // A register that saturates stops changing; its partition must sleep.
  SimIR ir = sim::buildFromFirrtl(R"(
circuit S :
  module S :
    input clock : Clock
    output q : UInt<4>
    reg r : UInt<4>, clock
    r <= mux(eq(r, UInt<4>(9)), r, tail(add(r, UInt<4>(1)), 1))
    q <= r
)");
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  for (int i = 0; i < 12; i++) eng.tick();
  EXPECT_EQ(eng.peek("r"), 9u);
  uint64_t ops = eng.stats().opsEvaluated;
  for (int i = 0; i < 50; i++) eng.tick();
  EXPECT_EQ(eng.peek("r"), 9u);
  EXPECT_EQ(eng.stats().opsEvaluated, ops);  // asleep once stable
}

TEST(ActivityEngine, DeferredRegisterPathIsCorrect) {
  // Hand-build a partitioning that makes elision illegal: the writer
  // partition also produces a combinational value consumed by a reader
  // partition (path writer -> reader), so the register must fall back to
  // the global phase-2 update.
  sim::BuildOptions raw;
  raw.constProp = raw.cse = raw.dce = false;
  SimIR ir = sim::buildFromFirrtl(R"(
circuit D :
  module D :
    input clock : Clock
    input in : UInt<8>
    output o : UInt<8>
    reg r : UInt<8>, clock
    node nxt = tail(add(r, in), 1)
    r <= nxt
    o <= xor(nxt, r)
)",
                                  raw);
  Netlist nl = Netlist::build(ir);

  // Partition 0: everything except the cone of output o; partition 1: o's
  // cone (xor + output copy). The nxt ops live with the register write.
  int32_t oSig = ir.findSignal("o");
  ASSERT_GE(oSig, 0);
  std::vector<int32_t> partOf(nl.nodes.size(), 0);
  // Mark o's defining op and its xor argument chain as partition 1.
  std::vector<int32_t> stack = {ir.signals[static_cast<size_t>(oSig)].defOp};
  std::vector<bool> inCone(ir.ops.size(), false);
  while (!stack.empty()) {
    int32_t opIdx = stack.back();
    stack.pop_back();
    if (opIdx < 0 || inCone[static_cast<size_t>(opIdx)]) continue;
    inCone[static_cast<size_t>(opIdx)] = true;
    const sim::Op& op = ir.ops[static_cast<size_t>(opIdx)];
    int n = op.numArgs();
    for (int k = 0; k < n; k++) {
      int32_t def = ir.signals[op.args[k]].defOp;
      // Stop at nxt (it belongs to the writer partition).
      if (def >= 0 && ir.signals[ir.ops[static_cast<size_t>(def)].dest].name != "nxt")
        stack.push_back(def);
    }
  }
  for (size_t i = 0; i < ir.ops.size(); i++)
    if (inCone[i]) partOf[static_cast<size_t>(nl.nodeOfOp[i])] = 1;

  Partitioning p;
  p.partOf = partOf;
  p.members.resize(2);
  for (size_t n = 0; n < partOf.size(); n++) p.members[static_cast<size_t>(partOf[n])].push_back(static_cast<int32_t>(n));
  p.partGraph = graph::condense(nl.g, p.partOf, 2);
  ASSERT_TRUE(p.partGraph.isAcyclic());
  p.schedule = *p.partGraph.topoSort();

  CondPartSchedule sched = buildScheduleFrom(nl, p, true);
  // The register cannot be elided: its write partition feeds the reader.
  EXPECT_EQ(sched.deferredRegs.size(), 1u);
  EXPECT_EQ(sched.elidedRegs, 0u);

  ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched));
  FullCycleEngine ref(sim::CompiledDesign::compile(ir));
  auto mismatch = sim::compareEngines(ref, act, 60, [](sim::Engine& e, uint64_t c) {
    e.poke("in", (c * 7 + 3) & 0xff);
  });
  EXPECT_FALSE(mismatch.has_value()) << mismatch->describe();
}

TEST(ActivityEngine, PrintfFiresEveryCycleWhileEnabled) {
  // The enable is a constant 1: even though no partition is active after
  // the first cycle, the printf must fire every cycle (global side-effect
  // check over stale-but-correct values).
  SimIR ir = sim::buildFromFirrtl(R"(
circuit P :
  module P :
    input clock : Clock
    input v : UInt<4>
    printf(clock, UInt<1>(1), "%d.", v)
)");
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.poke("v", 7);
  for (int i = 0; i < 4; i++) eng.tick();
  EXPECT_EQ(eng.printOutput(), "7.7.7.7.");
}

TEST(ActivityEngine, CountersDecomposeSanely) {
  SimIR ir = sim::buildFromFirrtl(designs::aluArrayFirrtl(16, 16));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.poke("reset", 0);
  for (int c = 0; c < 30; c++) {
    eng.poke("opa", static_cast<uint64_t>(c));
    eng.poke("opb", static_cast<uint64_t>(c * 3));
    eng.poke("sel", static_cast<uint64_t>(c % 8));
    eng.tick();
  }
  const auto& st = eng.stats();
  EXPECT_EQ(st.cycles, 30u);
  EXPECT_EQ(st.partitionChecks, 30 * eng.schedule().numPartitions());
  EXPECT_LE(st.partitionActivations, st.partitionChecks);
  EXPECT_GT(st.opsEvaluated, 0u);
  EXPECT_LE(st.opsEvaluated, ir.ops.size() * 30);
  EXPECT_GT(st.outputComparisons, 0u);
  EXPECT_GE(eng.effectiveActivity(), 0.0);
  EXPECT_LE(eng.effectiveActivity(), 1.0);
}

TEST(ActivityEngine, ResetStateRestartsCleanly) {
  SimIR ir = sim::buildFromFirrtl(designs::counterFirrtl(8));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.poke("reset", 0);
  eng.poke("en", 1);
  for (int i = 0; i < 7; i++) eng.tick();
  EXPECT_EQ(eng.peek("r"), 7u);
  eng.resetState();
  EXPECT_EQ(eng.peek("r"), 0u);
  EXPECT_EQ(eng.cycleCount(), 0u);
  // Must behave exactly like a fresh engine.
  eng.poke("reset", 0);
  eng.poke("en", 1);
  for (int i = 0; i < 5; i++) eng.tick();
  EXPECT_EQ(eng.peek("r"), 5u);
}

TEST(ActivityEngine, MemoryWriteWakesReaders) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit M :
  module M :
    input clock : Clock
    input wen : UInt<1>
    input waddr : UInt<3>
    input wdata : UInt<8>
    input raddr : UInt<3>
    output rdata : UInt<8>
    mem t :
      data-type => UInt<8>
      depth => 8
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    t.r.addr <= raddr
    t.r.en <= UInt<1>(1)
    t.r.clk <= clock
    t.w.addr <= waddr
    t.w.en <= wen
    t.w.clk <= clock
    t.w.data <= wdata
    t.w.mask <= UInt<1>(1)
    rdata <= t.r.data
)");
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.poke("wen", 1);
  eng.poke("waddr", 2);
  eng.poke("wdata", 0xab);
  eng.poke("raddr", 2);
  eng.tick();
  eng.poke("wen", 0);
  eng.tick();  // the committed write must wake the read partition
  EXPECT_EQ(eng.peek("rdata"), 0xabu);
  // Steady state: nothing changes, reads go back to sleep.
  uint64_t ops = eng.stats().opsEvaluated;
  for (int i = 0; i < 20; i++) eng.tick();
  EXPECT_EQ(eng.stats().opsEvaluated, ops);
  EXPECT_EQ(eng.peek("rdata"), 0xabu);
}

TEST(ActivityEngine, FineAndMonolithicDegenerateSchedulesWork) {
  SimIR ir = sim::buildFromFirrtl(designs::gcdFirrtl(16));
  Netlist nl = Netlist::build(ir);
  for (auto mk : {&finePartitioning, &monolithicPartitioning}) {
    Partitioning p = mk(nl);
    CondPartSchedule sched = buildScheduleFrom(nl, p, true);
    ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), sched));
    FullCycleEngine ref(sim::CompiledDesign::compile(ir));
    auto mismatch = sim::compareEngines(ref, act, 80, [](sim::Engine& e, uint64_t c) {
      e.poke("reset", 0);
      e.poke("a", 1071);
      e.poke("b", 462);
      e.poke("load", c == 0);
    });
    EXPECT_FALSE(mismatch.has_value())
        << "parts=" << p.numPartitions() << ": " << mismatch->describe();
  }
}

}  // namespace
}  // namespace essent::core
