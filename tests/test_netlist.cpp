// Tests for the computation netlist (core/netlist.h): state splitting,
// source-consumer bookkeeping, reader tracking, and sink identification —
// the graph facts the partitioner and elision analysis rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/netlist.h"
#include "designs/blocks.h"
#include "sim/compile.h"

namespace essent::core {
namespace {

sim::SimIR build(const char* text) {
  sim::BuildOptions raw;
  raw.constProp = raw.cse = raw.dce = false;  // keep the netlist predictable
  return sim::buildFromFirrtl(text, raw);
}

TEST(Netlist, OpNodesMirrorOps) {
  sim::SimIR ir = build(R"(
circuit N :
  module N :
    input a : UInt<8>
    input b : UInt<8>
    output o : UInt<9>
    o <= add(a, b)
)");
  Netlist nl = Netlist::build(ir);
  ASSERT_EQ(nl.nodeOfOp.size(), ir.ops.size());
  for (size_t i = 0; i < ir.ops.size(); i++) {
    int32_t node = nl.nodeOfOp[i];
    ASSERT_GE(node, 0);
    EXPECT_EQ(nl.nodes[static_cast<size_t>(node)].kind, NodeKind::Op);
    EXPECT_EQ(nl.nodes[static_cast<size_t>(node)].index, static_cast<int32_t>(i));
  }
}

TEST(Netlist, InputsAreSourcesWithConsumers) {
  sim::SimIR ir = build(R"(
circuit N :
  module N :
    input a : UInt<8>
    output o1 : UInt<8>
    output o2 : UInt<8>
    o1 <= not(a)
    o2 <= tail(add(a, a), 1)
)");
  Netlist nl = Netlist::build(ir);
  int32_t a = ir.findSignal("a");
  ASSERT_GE(a, 0);
  EXPECT_EQ(nl.producerOf[static_cast<size_t>(a)], -1);
  // Both cones consume the input directly.
  EXPECT_EQ(nl.sourceConsumers[static_cast<size_t>(a)].size(), 2u);
}

TEST(Netlist, RegisterSplitBreaksFeedback) {
  sim::SimIR ir = build(R"(
circuit N :
  module N :
    input clock : Clock
    output q : UInt<8>
    reg r : UInt<8>, clock
    r <= tail(add(r, UInt<8>(1)), 1)
    q <= r
)");
  Netlist nl = Netlist::build(ir);
  EXPECT_TRUE(nl.g.isAcyclic());
  ASSERT_EQ(nl.regReaders.size(), 1u);
  // Readers: the add op and the q copy op both read the register output.
  EXPECT_EQ(nl.regReaders[0].size(), 2u);
  int32_t writeNode = nl.nodeOfRegWrite[0];
  ASSERT_GE(writeNode, 0);
  // The write node is a sink: no outgoing combinational edges.
  EXPECT_TRUE(nl.g.outNeighbors(writeNode).empty());
  auto sinks = nl.sinks();
  EXPECT_NE(std::find(sinks.begin(), sinks.end(), writeNode), sinks.end());
}

TEST(Netlist, RegToRegConnect) {
  // r2 <= r1 gives a RegWrite node that reads a register source directly.
  sim::SimIR ir = build(R"(
circuit N :
  module N :
    input clock : Clock
    input d : UInt<4>
    output q : UInt<4>
    reg r1 : UInt<4>, clock
    reg r2 : UInt<4>, clock
    r1 <= d
    r2 <= r1
    q <= r2
)");
  Netlist nl = Netlist::build(ir);
  EXPECT_TRUE(nl.g.isAcyclic());
  // r1 is read by r2's write node (and nothing else combinational).
  int32_t r1 = ir.findSignal("r1");
  bool writeReadsR1 = false;
  for (size_t r = 0; r < ir.regs.size(); r++) {
    if (ir.regs[r].sig != r1) continue;
    for (int32_t reader : nl.regReaders[r]) {
      if (nl.nodes[static_cast<size_t>(reader)].kind == NodeKind::RegWrite) writeReadsR1 = true;
    }
  }
  EXPECT_TRUE(writeReadsR1);
}

TEST(Netlist, MemNodesAndReaders) {
  sim::SimIR ir = build(R"(
circuit N :
  module N :
    input clock : Clock
    input addr : UInt<3>
    input wen : UInt<1>
    input wdata : UInt<8>
    output o : UInt<8>
    mem t :
      data-type => UInt<8>
      depth => 8
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    t.r.addr <= addr
    t.r.en <= UInt<1>(1)
    t.r.clk <= clock
    t.w.addr <= addr
    t.w.en <= wen
    t.w.clk <= clock
    t.w.data <= wdata
    t.w.mask <= UInt<1>(1)
    o <= t.r.data
)");
  Netlist nl = Netlist::build(ir);
  ASSERT_EQ(nl.memReaders.size(), 1u);
  EXPECT_EQ(nl.memReaders[0].size(), 1u);  // one MemRead op
  ASSERT_EQ(nl.nodeOfMemWrite.size(), 1u);
  ASSERT_EQ(nl.nodeOfMemWrite[0].size(), 1u);
  int32_t writeNode = nl.nodeOfMemWrite[0][0];
  // The mem write node reads addr/en/data/mask (4 signals).
  EXPECT_EQ(nl.nodeReads[static_cast<size_t>(writeNode)].size(), 4u);
  EXPECT_TRUE(nl.g.outNeighbors(writeNode).empty());
}

TEST(Netlist, PrintAndStopAreSinks) {
  sim::SimIR ir = build(R"(
circuit N :
  module N :
    input clock : Clock
    input en : UInt<1>
    input v : UInt<8>
    printf(clock, en, "%d", v)
    stop(clock, en, 1)
)");
  Netlist nl = Netlist::build(ir);
  size_t prints = 0, stops = 0;
  for (const auto& n : nl.nodes) {
    if (n.kind == NodeKind::Print) prints++;
    if (n.kind == NodeKind::Stop) stops++;
  }
  EXPECT_EQ(prints, 1u);
  EXPECT_EQ(stops, 1u);
  // They anchor the cones of their enables/args (they appear as sinks).
  auto sinks = nl.sinks();
  EXPECT_GE(sinks.size(), 2u);
}

TEST(Netlist, NodeReadsAreDeduplicated) {
  sim::SimIR ir = build(R"(
circuit N :
  module N :
    input a : UInt<8>
    output o : UInt<16>
    o <= mul(a, a)
)");
  Netlist nl = Netlist::build(ir);
  // mul(a, a) reads `a` twice but the read list holds it once.
  int32_t a = ir.findSignal("a");
  for (size_t n = 0; n < nl.nodes.size(); n++) {
    const auto& reads = nl.nodeReads[n];
    EXPECT_LE(std::count(reads.begin(), reads.end(), a), 1);
  }
  EXPECT_EQ(nl.sourceConsumers[static_cast<size_t>(a)].size(), 1u);
}

TEST(Netlist, ScalesLinearly) {
  // Sanity guard: node/edge counts track design size.
  sim::SimIR small = sim::buildFromFirrtl(designs::aluArrayFirrtl(8, 16));
  sim::SimIR large = sim::buildFromFirrtl(designs::aluArrayFirrtl(32, 16));
  Netlist a = Netlist::build(small), b = Netlist::build(large);
  EXPECT_GT(b.g.numNodes(), 2 * a.g.numNodes());
  EXPECT_GT(b.g.numEdges(), 2 * a.g.numEdges());
}

}  // namespace
}  // namespace essent::core
