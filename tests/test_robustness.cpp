// Robustness tests: subprocess watchdog, resource-guard ceilings, parallel
// engine graceful degradation, the mutation crash fuzzer, the oracle's
// hang watchdog, and the essentc CLI exit-code contract.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_engine.h"
#include "fuzz/mutator.h"
#include "fuzz/oracle.h"
#include "fuzz/stimulus.h"
#include "obs/json.h"
#include "sim/compile.h"
#include "support/resource_guard.h"
#include "support/subprocess.h"
#include "support/threadpool.h"

#ifndef ESSENTC_PATH
#error "ESSENTC_PATH must be defined by the build"
#endif

namespace {

using namespace essent;

int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- subprocess watchdog ---

TEST(Subprocess, NormalExitUnaffectedByTimeout) {
  support::RunOptions ro;
  ro.timeoutMs = 5000;
  support::ExecResult r = support::runShell("exit 7", ro);
  EXPECT_TRUE(r.ran);
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exitCode, 7);
  EXPECT_FALSE(r.timedOut);
}

TEST(Subprocess, WatchdogKillsHangingProcess) {
  support::RunOptions ro;
  ro.timeoutMs = 300;
  ro.killGraceMs = 200;
  int64_t t0 = nowMs();
  support::ExecResult r = support::runShell("sleep 30", ro);
  int64_t elapsed = nowMs() - t0;
  EXPECT_TRUE(r.timedOut);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.describe().find("timed out"), std::string::npos) << r.describe();
  // Killed promptly, nowhere near the 30 s sleep.
  EXPECT_LT(elapsed, 5000) << elapsed;
}

TEST(Subprocess, WatchdogKillsWholeProcessGroup) {
  // The child spawns its own child; the group kill must take out both,
  // promptly (a surviving grandchild would hold the pipe open for 30 s).
  support::RunOptions ro;
  ro.timeoutMs = 300;
  ro.killGraceMs = 200;
  int64_t t0 = nowMs();
  support::ExecResult r = support::runShell("sleep 30 & wait", ro);
  EXPECT_TRUE(r.timedOut);
  EXPECT_LT(nowMs() - t0, 5000);
}

// --- resource guard ---

TEST(ResourceGuard, ChecksThrowStructuredCodes) {
  support::ResourceLimits lim{100, 1000, 50, 0};
  support::ResourceGuard g(lim);
  EXPECT_NO_THROW(g.checkIrOps(100));
  EXPECT_NO_THROW(g.checkSimMem(1000));
  EXPECT_NO_THROW(g.checkCycles(50));
  EXPECT_NO_THROW(g.checkDeadline());
  try {
    g.checkIrOps(101);
    FAIL() << "expected ResourceExhausted";
  } catch (const support::ResourceExhausted& e) {
    EXPECT_EQ(e.code(), "E0501");
  }
  try {
    g.checkSimMem(1001);
    FAIL();
  } catch (const support::ResourceExhausted& e) {
    EXPECT_EQ(e.code(), "E0502");
  }
  try {
    g.checkCycles(51);
    FAIL();
  } catch (const support::ResourceExhausted& e) {
    EXPECT_EQ(e.code(), "E0503");
  }
}

TEST(ResourceGuard, ZeroDisablesLimits) {
  support::ResourceGuard g(support::ResourceLimits::unlimited());
  EXPECT_NO_THROW(g.checkIrOps(UINT64_MAX));
  EXPECT_NO_THROW(g.checkSimMem(UINT64_MAX));
  EXPECT_NO_THROW(g.checkCycles(UINT64_MAX));
  EXPECT_NO_THROW(g.checkDeadline());
}

TEST(ResourceGuard, DeadlineExpires) {
  support::ResourceLimits lim;
  lim.wallDeadlineMs = 1;
  support::ResourceGuard g(lim);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  try {
    g.checkDeadline();
    FAIL() << "expected ResourceExhausted";
  } catch (const support::ResourceExhausted& e) {
    EXPECT_EQ(e.code(), "E0504");
  }
}

TEST(ResourceGuard, BuilderRefusesExplosiveDesign) {
  // 8 instances per level, 8 levels deep: 8^8 = 16.7M decls after
  // flattening. The AST-level estimate must refuse this BEFORE lowering
  // materializes it.
  std::string fir = "circuit Blow :\n";
  for (int level = 7; level >= 1; level--) {
    fir += "  module L" + std::to_string(level) + " :\n";
    fir += "    input x : UInt<1>\n    output y : UInt<1>\n";
    for (int k = 0; k < 8; k++) {
      std::string inst = "i" + std::to_string(k);
      fir += "    inst " + inst + " of L" + std::to_string(level + 1) + "\n";
      fir += "    " + inst + ".x <= x\n";
    }
    fir += "    y <= i0.y\n";
  }
  fir += "  module L8 :\n    input x : UInt<1>\n    output y : UInt<1>\n    y <= x\n";
  fir += "  module Blow :\n    input x : UInt<1>\n    output y : UInt<1>\n";
  fir += "    inst root of L1\n    root.x <= x\n    y <= root.y\n";

  diag::DiagEngine de;
  de.setSource("<blow>", fir);
  support::ResourceLimits lim;
  lim.maxIrOps = 100000;
  int64_t t0 = nowMs();
  auto ir = sim::buildFromFirrtlDiag(fir, {}, de, lim);
  EXPECT_FALSE(ir.has_value());
  ASSERT_TRUE(de.hasErrors());
  EXPECT_EQ(de.diagnostics()[0].code, "E0501");
  EXPECT_LT(nowMs() - t0, 5000);  // refused from the AST, not after flattening
}

// --- parallel engine degradation ---

const char* kCounterFir =
    "circuit Counter :\n"
    "  module Counter :\n"
    "    input clock : Clock\n"
    "    input en : UInt<1>\n"
    "    output count : UInt<8>\n"
    "    reg r : UInt<8>, clock\n"
    "    r <= tail(add(r, en), 1)\n"
    "    count <= r\n";

TEST(Degradation, PoolSpawnFailureDegradesLanes) {
  // Every spawn fails: the pool degenerates to the calling thread alone.
  support::ThreadPool::failSpawnsAfterForTest(0);
  support::ThreadPool p0(4);
  EXPECT_EQ(p0.numThreads(), 1u);
  // One worker spawns before the OS "runs out": 2 lanes of the requested 4,
  // and the degraded pool still forks/joins correctly.
  support::ThreadPool::failSpawnsAfterForTest(1);
  support::ThreadPool p1(4);
  EXPECT_EQ(p1.numThreads(), 2u);
  std::atomic<int> lanes{0};
  p1.run([&](unsigned) { lanes++; });
  EXPECT_EQ(lanes.load(), 2);
}

TEST(Degradation, MakeCcssEngineFallsBackToSerialWithWarning) {
  sim::SimIR ir = sim::buildFromFirrtl(kCounterFir);
  core::ScheduleOptions so;
  // Every spawn fails. On a single-core host the clamp already routes to
  // the serial engine; on a larger host the spawn failure does. Either way:
  // a usable serial engine plus at least one warning, never a crash.
  support::ThreadPool::failSpawnsAfterForTest(0);
  std::vector<std::string> warnings;
  auto eng = core::makeCcssEngine(ir, so, 4, &warnings);
  ASSERT_NE(eng, nullptr);
  EXPECT_EQ(eng->threadCount(), 1u);
  EXPECT_FALSE(warnings.empty());
  // And it still simulates correctly, bit-exact with a plain serial engine.
  core::ActivityEngine ref(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), so));
  eng->poke("en", 1);
  ref.poke("en", 1);
  for (int c = 0; c < 10; c++) {
    eng->tick();
    ref.tick();
  }
  EXPECT_EQ(eng->peek("count"), ref.peek("count"));
  // The hook is one-shot, consumed by the first pool construction; when the
  // clamp skipped pool construction entirely, consume it here so later
  // tests see a healthy pool.
  support::ThreadPool disarm(1);
  EXPECT_EQ(disarm.numThreads(), 1u);
}

TEST(Degradation, OversubscriptionClampedWithWarning) {
  sim::SimIR ir = sim::buildFromFirrtl(kCounterFir);
  core::ScheduleOptions so;
  std::vector<std::string> warnings;
  auto eng = core::makeCcssEngine(ir, so, 100000, &warnings);
  ASSERT_NE(eng, nullptr);
  EXPECT_FALSE(warnings.empty());
}

// --- mutation fuzzer ---

TEST(Mutator, Deterministic) {
  std::string base = kCounterFir;
  std::string a = fuzz::mutateText(base, 12345, 8);
  std::string b = fuzz::mutateText(base, 12345, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, fuzz::mutateText(base, 54321, 8));
}

TEST(Mutator, SmallCampaignIsCrashFreeAndDeterministic) {
  fuzz::MutateConfig mc;
  mc.seed = 7;
  mc.budget = 120;
  fuzz::MutateSummary s1 = fuzz::runMutateCampaign(mc, nullptr);
  EXPECT_EQ(s1.cases, 120u);
  EXPECT_EQ(s1.crashes, 0u) << "front end crashed on a mutant";
  EXPECT_FALSE(s1.failed());
  fuzz::MutateSummary s2 = fuzz::runMutateCampaign(mc, nullptr);
  EXPECT_EQ(s1.digest, s2.digest);
  EXPECT_EQ(s1.built, s2.built);
}

// --- oracle watchdog ---

TEST(OracleWatchdog, InjectedHangIsKilledAndReportedAsTimeout) {
  sim::SimIR ir = sim::buildFromFirrtl(kCounterFir);
  fuzz::Stimulus stim = fuzz::randomStimulus(ir, 1, 5, 0.5);
  fuzz::OracleOptions oo;
  oo.engines = {fuzz::EngineKind::FullCycle, fuzz::EngineKind::Codegen};
  oo.subprocessTimeoutMs = 3000;
  oo.injectHangForTest = true;
  int64_t t0 = nowMs();
  fuzz::OracleResult res = fuzz::runOracle(kCounterFir, stim, oo);
  ASSERT_TRUE(res.divergence.has_value());
  EXPECT_EQ(res.divergence->kind, fuzz::Divergence::Kind::Timeout);
  EXPECT_LT(nowMs() - t0, 60000);
}

// --- essentc CLI exit-code contract ---

struct CliResult {
  int exitCode = -1;
  std::string output;
};

CliResult runCli(const std::string& args) {
  char dirTemplate[] = "/tmp/essent_robust_XXXXXX";
  char* dir = mkdtemp(dirTemplate);
  std::string outFile = std::string(dir) + "/out.txt";
  std::string cmd = std::string(ESSENTC_PATH) + " " + args + " > " + outFile + " 2>&1";
  int rc = std::system(cmd.c_str());
  CliResult res;
  res.exitCode = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  std::ifstream f(outFile);
  std::stringstream ss;
  ss << f.rdbuf();
  res.output = ss.str();
  return res;
}

std::string writeTemp(const std::string& contents, const char* suffix = ".fir") {
  char fileTemplate[] = "/tmp/essent_robust_f_XXXXXX";
  int fd = mkstemp(fileTemplate);
  if (fd >= 0) close(fd);
  std::string path = std::string(fileTemplate) + suffix;
  std::ofstream f(path);
  f << contents;
  return path;
}

const char* kMultiErrorFir =
    "circuit Bad :\n"
    "  module Bad :\n"
    "    input x : UInt<8\n"
    "    output y : UInt<8>\n"
    "    node n = add(x,\n"
    "    y <= n\n";

TEST(CliRobust, HelpDocumentsExitCodes) {
  auto res = runCli("--help");
  EXPECT_EQ(res.exitCode, 2);
  EXPECT_NE(res.output.find("exit codes"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("124"), std::string::npos);
}

TEST(CliRobust, MultiErrorFileRendersAllDiagnosticsAndJson) {
  std::string fir = writeTemp(kMultiErrorFir);
  std::string json = writeTemp("", ".json");
  auto res = runCli("--stats --diag-json " + json + " " + fir);
  EXPECT_EQ(res.exitCode, 1);
  // Both errors rendered, clang-style, with locations.
  EXPECT_NE(res.output.find(":3:"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find(":5:"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("[E02"), std::string::npos) << res.output;
  // The JSON mirror round-trips through diagnosticsFromJson.
  std::ifstream f(json);
  std::stringstream ss;
  ss << f.rdbuf();
  obs::Json doc = obs::Json::parse(ss.str());
  std::vector<diag::Diagnostic> back = diag::diagnosticsFromJson(doc);
  EXPECT_GE(back.size(), 2u);
  EXPECT_EQ(back[0].span.line, 3);
}

TEST(CliRobust, InjectedHangExits124) {
  std::string fir = writeTemp(
      "circuit T :\n  module T :\n    input clock : Clock\n"
      "    input x : UInt<4>\n    output y : UInt<4>\n    y <= x\n");
  auto res = runCli("--compile-run 3 --inject-hang --timeout-ms 3000 " + fir);
  EXPECT_EQ(res.exitCode, 124) << res.output;
  EXPECT_NE(res.output.find("timed out"), std::string::npos) << res.output;
}

TEST(CliRobust, ResourceCeilingsExit1WithE05xx) {
  std::string fir = writeTemp(kCounterFir);
  auto overCycles = runCli("--run 100 --max-cycles 10 " + fir);
  EXPECT_EQ(overCycles.exitCode, 1);
  EXPECT_NE(overCycles.output.find("E0503"), std::string::npos) << overCycles.output;
  auto overOps = runCli("--stats --max-ir-ops 1 " + fir);
  EXPECT_EQ(overOps.exitCode, 1);
  EXPECT_NE(overOps.output.find("E0501"), std::string::npos) << overOps.output;
}

// --- SIGINT/SIGTERM relay during --compile-run ---

// True when any live process's /proc cmdline mentions `needle` (cmdline is
// NUL-separated; search the raw bytes). Used to prove the relayed signal
// killed the whole compiler/simulator process group, not just essentc.
bool anyProcessMentions(const std::string& needle) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const fs::directory_entry& ent : fs::directory_iterator("/proc", ec)) {
    std::string name = ent.path().filename().string();
    if (name.empty() || name.find_first_not_of("0123456789") != std::string::npos) continue;
    std::ifstream f(ent.path() / "cmdline", std::ios::binary);
    if (!f.good()) continue;
    std::stringstream ss;
    ss << f.rdbuf();
    if (ss.str().find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(CliRobust, CompileRunInterruptKillsChildrenCleansUpExits130) {
  namespace fs = std::filesystem;
  std::string fir = writeTemp(
      "circuit T :\n  module T :\n    input clock : Clock\n"
      "    input x : UInt<4>\n    output y : UInt<4>\n    y <= x\n");
  // Private TMPDIR so the leak check below only sees this test's dirs.
  char scratchT[] = "/tmp/essent_sigrelay_XXXXXX";
  char* made = mkdtemp(scratchT);
  ASSERT_NE(made, nullptr);
  std::string scratch = made;

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    setenv("TMPDIR", scratch.c_str(), 1);
    int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      dup2(devnull, 1);
      dup2(devnull, 2);
    }
    // --inject-hang: the generated simulator spins forever, so without the
    // signal relay this test could only end via SIGKILL and a leaked dir.
    execl(ESSENTC_PATH, ESSENTC_PATH, "--compile-run", "5", "--inject-hang", fir.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }

  // Wait for essentc's compile-run scratch dir: proof it is in a subprocess
  // phase (host compile or the hung simulator). The relay must work in both,
  // so any moment after this is a valid interrupt point.
  bool sawScratch = false;
  int64_t t0 = nowMs();
  while (!sawScratch && nowMs() - t0 < 60'000) {
    std::error_code ec;
    for (const fs::directory_entry& ent : fs::directory_iterator(scratch, ec))
      if (ent.path().filename().string().rfind("essentc_cr_", 0) == 0) sawScratch = true;
    if (!sawScratch) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(sawScratch) << "essentc never reached the --compile-run subprocess phase";
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  ASSERT_EQ(kill(pid, SIGINT), 0);

  // The exit-code contract: 128 + SIGINT, reached by unwinding normally
  // (not by the default terminate-on-SIGINT disposition).
  int status = 0;
  pid_t waited = 0;
  t0 = nowMs();
  while (nowMs() - t0 < 30'000) {
    waited = waitpid(pid, &status, WNOHANG);
    if (waited != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (waited != pid) {
    kill(pid, SIGKILL);
    waitpid(pid, &status, 0);
    FAIL() << "essentc did not exit after SIGINT";
  }
  ASSERT_TRUE(WIFEXITED(status)) << "essentc died of the signal instead of unwinding";
  EXPECT_EQ(WEXITSTATUS(status), 130);

  // Normal unwinding means TempDir cleanup ran: no essentc_cr_* leftovers.
  std::vector<std::string> leftovers;
  std::error_code ec;
  for (const fs::directory_entry& ent : fs::directory_iterator(scratch, ec))
    leftovers.push_back(ent.path().filename().string());
  EXPECT_TRUE(leftovers.empty()) << "leaked scratch: " << leftovers.front();

  // The relayed signal reached the whole subprocess group: nothing still
  // alive references the scratch dir (allow a beat for children to die).
  bool orphans = true;
  t0 = nowMs();
  while (orphans && nowMs() - t0 < 5'000) {
    orphans = anyProcessMentions(scratch);
    if (orphans) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_FALSE(orphans) << "a compiler/simulator child survived the interrupt";

  fs::remove_all(scratch, ec);
  std::remove(fir.c_str());
}

}  // namespace
