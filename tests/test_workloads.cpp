// Tests for the TinySoC assembler, the benchmark programs, and the workload
// driver (Table II infrastructure).
#include <gtest/gtest.h>

#include "designs/tinysoc.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"
#include "workloads/assembler.h"
#include "workloads/driver.h"
#include "workloads/programs.h"

namespace essent::workloads {
namespace {

TEST(Assembler, EncodesFields) {
  // ADD x1, x2, x3 -> op=2 rd=1 rs=2 rt=3
  uint16_t w = encodeR(Opc::Add, 1, 2, 3);
  EXPECT_EQ(w >> 12, 2);
  EXPECT_EQ((w >> 9) & 7, 1u);
  EXPECT_EQ((w >> 6) & 7, 2u);
  EXPECT_EQ((w >> 3) & 7, 3u);
  // ADDI with negative immediate wraps into 6 bits.
  uint16_t i = encodeI(Opc::Addi, 1, 1, -1);
  EXPECT_EQ(i & 0x3f, 0x3fu);
  EXPECT_EQ(encodeJ(Opc::Jmp, 0x123) & 0xfff, 0x123u);
}

TEST(Assembler, RangeChecks) {
  EXPECT_THROW(encodeR(Opc::Add, 8, 0, 0), AsmError);
  EXPECT_THROW(encodeI(Opc::Addi, 0, 0, 40), AsmError);
  EXPECT_THROW(encodeI(Opc::Addi, 0, 0, -33), AsmError);
  EXPECT_THROW(encodeJ(Opc::Jmp, 5000), AsmError);
}

TEST(Assembler, ResolvesLabelsBackAndForward) {
  Asm a;
  a.label("start");
  a.addi(1, 0, 1);
  a.bne(1, 0, "end");   // forward
  a.jmp("start");       // backward
  a.label("end");
  a.halt();
  auto words = a.assemble();
  ASSERT_EQ(words.size(), 4u);
  // bne at index 1, target 3 -> offset +2
  EXPECT_EQ(words[1] & 0x3f, 2u);
  EXPECT_EQ(words[2] & 0xfff, 0u);
}

TEST(Assembler, UndefinedLabelThrows) {
  Asm a;
  a.jmp("nowhere");
  EXPECT_THROW(a.assemble(), AsmError);
}

TEST(Assembler, DuplicateLabelThrows) {
  Asm a;
  a.label("x");
  EXPECT_THROW(a.label("x"), AsmError);
}

TEST(Assembler, LiBuildsFullConstants) {
  // Verify li on the real core for several values.
  sim::SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  for (uint16_t value : {0u, 5u, 31u, 32u, 255u, 0x1234u, 0xffffu, 0x8000u}) {
    Asm a;
    a.li(1, value);
    a.sw(1, 0, 21);
    a.halt();
    Program p{"li", "", a.assemble(), {}};
    sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
    loadProgram(eng, p);
    auto res = runWorkload(eng, 2000);
    ASSERT_TRUE(res.halted);
    EXPECT_EQ(res.result, value) << "li " << value;
  }
}

TEST(Programs, HaveDistinctCharacters) {
  auto d = dhrystoneProgram(8);
  auto m = matmulProgram(3, 1);
  auto p = pchaseProgram(16, 1);
  EXPECT_FALSE(d.code.empty());
  EXPECT_FALSE(m.code.empty());
  EXPECT_FALSE(p.code.empty());
  EXPECT_TRUE(m.data.size() >= 18u);   // two 3x3 matrices
  EXPECT_EQ(p.data.size(), 16u);       // the pointer chain
  // The pchase chain is a single cycle covering all nodes.
  std::map<uint16_t, uint16_t> chain(p.data.begin(), p.data.end());
  std::set<uint16_t> visited;
  uint16_t cur = 256;
  for (int i = 0; i < 16; i++) {
    visited.insert(cur);
    cur = chain.at(cur);
  }
  EXPECT_EQ(visited.size(), 16u);
  EXPECT_EQ(cur, 256u);  // returns to the head
}

TEST(Programs, ExpectedValuesAreStable) {
  // The host reference model must be deterministic.
  EXPECT_EQ(dhrystoneExpected(16), dhrystoneExpected(16));
  EXPECT_EQ(matmulExpected(3, 1), matmulExpected(3, 1));
  EXPECT_EQ(pchaseExpected(16, 2), pchaseExpected(16, 2));
  // And sensitive to parameters.
  EXPECT_NE(dhrystoneExpected(8), dhrystoneExpected(16));
}

TEST(Driver, ReportsInstretAndCycles) {
  sim::SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  auto prog = pchaseProgram(8, 1);
  loadProgram(eng, prog);
  auto res = runWorkload(eng, 10000);
  ASSERT_TRUE(res.halted);
  // 8 loads + overhead; every load stalls memLatency+1 cycles, so CPI > 1.
  EXPECT_GT(res.instret, 8u);
  EXPECT_GT(res.cycles, res.instret);
  EXPECT_EQ(res.result, pchaseExpected(8, 1));
}

TEST(Driver, WorkloadCycleCountsOrderLikeTable2) {
  // Relative cycle counts should mirror Table II's ordering:
  // dhrystone < matmul < pchase for comparable "iteration" scales.
  sim::SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  auto cyclesOf = [&](const Program& p) {
    sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
    loadProgram(eng, p);
    return runWorkload(eng, 2000000).cycles;
  };
  uint64_t d = cyclesOf(dhrystoneProgram(32));
  uint64_t m = cyclesOf(matmulProgram(5, 2));
  uint64_t p = cyclesOf(pchaseProgram(64, 64));
  EXPECT_LT(d, m);
  EXPECT_LT(m, p);
}

TEST(Driver, MmioStartsAccelerator) {
  sim::SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(designs::socTiny()));
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  Asm a;
  a.li(6, 0x8000);
  a.li(1, 0x1234);
  a.sw(1, 6, 0);  // start accel 0 with operand 0x1234
  a.lw(2, 6, 1);  // read busy
  a.sw(2, 0, 21);
  a.halt();
  Program p{"mmio", "", a.assemble(), {}};
  loadProgram(eng, p);
  auto res = runWorkload(eng, 1000);
  ASSERT_TRUE(res.halted);
  EXPECT_EQ(res.result, 1u);  // accel still busy right after start
  // status output reflects accel lane mixing (nonzero after running).
  EXPECT_NE(eng.peek("status"), 0u);
}

}  // namespace
}  // namespace essent::workloads
