// End-to-end tests for the essentc command-line driver (invoked as a real
// subprocess, the way a user runs it).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef ESSENTC_PATH
#error "ESSENTC_PATH must be defined by the build"
#endif

namespace {

struct CliResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr
};

CliResult runCli(const std::string& args) {
  char dirTemplate[] = "/tmp/essent_cli_XXXXXX";
  char* dir = mkdtemp(dirTemplate);
  std::string outFile = std::string(dir) + "/out.txt";
  std::string cmd = std::string(ESSENTC_PATH) + " " + args + " > " + outFile + " 2>&1";
  int rc = std::system(cmd.c_str());
  CliResult res;
  res.exitCode = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  std::ifstream f(outFile);
  std::stringstream ss;
  ss << f.rdbuf();
  res.output = ss.str();
  return res;
}

std::string writeFir(const std::string& contents) {
  char fileTemplate[] = "/tmp/essent_cli_fir_XXXXXX";
  int fd = mkstemp(fileTemplate);
  if (fd >= 0) close(fd);
  std::ofstream f(fileTemplate);
  f << contents;
  return fileTemplate;
}

const char* kCounterFir = R"(
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output count : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    count <= r
)";

TEST(Cli, StatsReportsPartitioning) {
  std::string fir = writeFir(kCounterFir);
  auto res = runCli("--stats " + fir);
  EXPECT_EQ(res.exitCode, 0) << res.output;
  EXPECT_NE(res.output.find("design Counter"), std::string::npos);
  EXPECT_NE(res.output.find("MFFC partitions"), std::string::npos);
  EXPECT_NE(res.output.find("elided regs"), std::string::npos);
}

TEST(Cli, RunWithPokesReportsOutputs) {
  std::string fir = writeFir(kCounterFir);
  auto res = runCli("--run 10 --poke en=1 --poke reset=0 " + fir);
  EXPECT_EQ(res.exitCode, 0) << res.output;
  // After 10 cycles the output shows the pre-update value of cycle 10.
  EXPECT_NE(res.output.find("count = 0x9"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("essent-ccss"), std::string::npos);
  EXPECT_NE(res.output.find("effective activity"), std::string::npos);
}

TEST(Cli, RunOnAlternateEngines) {
  std::string fir = writeFir(kCounterFir);
  for (const char* engine : {"full", "event"}) {
    auto res = runCli(std::string("--run 10 --engine ") + engine + " --poke en=1 " + fir);
    EXPECT_EQ(res.exitCode, 0) << res.output;
    EXPECT_NE(res.output.find("count = 0x9"), std::string::npos) << engine << res.output;
  }
}

TEST(Cli, EmitCppProducesCompilableLookingCode) {
  std::string fir = writeFir(kCounterFir);
  auto res = runCli("--emit-cpp " + fir);
  EXPECT_EQ(res.exitCode, 0);
  EXPECT_NE(res.output.find("struct Simulator"), std::string::npos);
  EXPECT_NE(res.output.find("void eval()"), std::string::npos);
  EXPECT_NE(res.output.find("act_["), std::string::npos);  // CCSS by default
  auto base = runCli("--emit-cpp --baseline " + fir);
  EXPECT_EQ(base.output.find("act_["), std::string::npos);
}

TEST(Cli, DotEmitsPartitionGraph) {
  std::string fir = writeFir(kCounterFir);
  auto res = runCli("--dot --cp 2 " + fir);
  EXPECT_EQ(res.exitCode, 0);
  EXPECT_NE(res.output.find("digraph partitions"), std::string::npos);
}

TEST(Cli, VcdDumpWritten) {
  std::string fir = writeFir(kCounterFir);
  std::string vcd = fir + ".vcd";
  auto res = runCli("--run 5 --poke en=1 --vcd " + vcd + " " + fir);
  EXPECT_EQ(res.exitCode, 0) << res.output;
  std::ifstream f(vcd);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("$enddefinitions"), std::string::npos);
}

TEST(Cli, AllowCombLoopsFlag) {
  std::string fir = writeFir(R"(
circuit Latch :
  module Latch :
    input s : UInt<1>
    input r : UInt<1>
    output q : UInt<1>
    wire qi : UInt<1>
    wire qbi : UInt<1>
    qi <= not(or(r, qbi))
    qbi <= not(or(s, qi))
    q <= qi
)");
  auto rejected = runCli("--stats " + fir);
  EXPECT_EQ(rejected.exitCode, 1);
  EXPECT_NE(rejected.output.find("combinational cycle"), std::string::npos);
  auto ok = runCli("--stats --allow-comb-loops " + fir);
  EXPECT_EQ(ok.exitCode, 0) << ok.output;
  auto run = runCli("--run 3 --allow-comb-loops --poke s=1 " + fir);
  EXPECT_NE(run.output.find("q = 0x1"), std::string::npos) << run.output;
}

TEST(Cli, CompileRunCrossChecksInterpreter) {
  std::string fir = writeFir(kCounterFir);
  auto res = runCli("--compile-run 12 --poke en=1 --poke reset=0 " + fir);
  EXPECT_EQ(res.exitCode, 0) << res.output;
  EXPECT_NE(res.output.find("count = 0xb (matches interpreter)"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("outputs match the interpreter"), std::string::npos);
  auto bad = runCli("--compile-run 5 --poke nosuch=1 " + fir);
  EXPECT_NE(bad.exitCode, 0);
}

TEST(Cli, EngineLongAliasesAccepted) {
  std::string fir = writeFir(kCounterFir);
  for (const char* engine : {"essent-ccss", "full-cycle", "event-driven"}) {
    auto res = runCli(std::string("--run 10 --engine ") + engine + " --poke en=1 " + fir);
    EXPECT_EQ(res.exitCode, 0) << engine << res.output;
    EXPECT_NE(res.output.find("count = 0x9"), std::string::npos) << engine << res.output;
  }
  auto bad = runCli("--run 5 --engine verilator " + fir);
  EXPECT_EQ(bad.exitCode, 2);
  EXPECT_NE(bad.output.find("unknown engine"), std::string::npos);
  auto codegen = runCli("--run 5 --engine codegen " + fir);
  EXPECT_EQ(codegen.exitCode, 2);
  EXPECT_NE(codegen.output.find("--compile-run"), std::string::npos);
}

TEST(Cli, BatchRunsFarmAndAgreesWithSolo) {
  std::string fir = writeFir(kCounterFir);
  auto res = runCli("--run 10 --batch 3 --threads 2 --poke en=1 --poke reset=0 " + fir);
  EXPECT_EQ(res.exitCode, 0) << res.output;
  EXPECT_NE(res.output.find("farm: 3 instances on ccss engine"), std::string::npos)
      << res.output;
  // Every instance ran the full budget and reports the farm aggregates.
  EXPECT_NE(res.output.find("10 cycles"), std::string::npos);
  EXPECT_NE(res.output.find("instances/s"), std::string::npos);
  // --batch gates on --run and rejects per-instance output flags.
  auto noRun = runCli("--stats --batch 2 " + fir);
  EXPECT_EQ(noRun.exitCode, 2);
  auto withVcd = runCli("--run 5 --batch 2 --vcd /tmp/x.vcd " + fir);
  EXPECT_EQ(withVcd.exitCode, 2);
}

TEST(Cli, BatchStimulusDirDrivesInstances) {
  std::string fir = writeFir(kCounterFir);
  char dirTemplate[] = "/tmp/essent_cli_stim_XXXXXX";
  std::string dir = mkdtemp(dirTemplate);
  std::ofstream(dir + "/on.stim") << "inputs en reset\nwidths 1 1\n1 0\n1 0\n1 0\n1 0\n";
  std::ofstream(dir + "/off.stim") << "inputs en reset\nwidths 1 1\n0 0\n0 0\n0 0\n0 0\n";
  auto res = runCli("--run 4 --batch 2 --stimulus-dir " + dir + " " + fir);
  EXPECT_EQ(res.exitCode, 0) << res.output;
  EXPECT_NE(res.output.find("off.stim"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("on.stim"), std::string::npos) << res.output;
  auto empty = runCli("--run 4 --batch 2 --stimulus-dir /nonexistent-dir " + fir);
  EXPECT_EQ(empty.exitCode, 1);
}

TEST(Cli, ErrorsAreUsable) {
  auto noFile = runCli("--stats /nonexistent.fir");
  EXPECT_NE(noFile.exitCode, 0);
  auto badArg = runCli("--frobnicate");
  EXPECT_EQ(badArg.exitCode, 2);
  EXPECT_NE(badArg.output.find("usage:"), std::string::npos);
  std::string badFir = writeFir("circuit X :\n  module Y :\n    skip\n");
  auto parseErr = runCli("--stats " + badFir);
  EXPECT_EQ(parseErr.exitCode, 1);
  EXPECT_NE(parseErr.output.find("essentc:"), std::string::npos);
}

}  // namespace
