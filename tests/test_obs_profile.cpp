// Counter-invariant and profiling tests for the observability layer:
// cross-engine work-counter relations on identical stimulus, per-partition
// profile sum checks, profiling transparency (no behavioural effect), and
// the RunResult/WorkloadResult stats snapshots.
#include <gtest/gtest.h>

#include <numeric>

#include "core/activity_engine.h"
#include "core/obs_export.h"
#include "designs/blocks.h"
#include "designs/gcd.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"

namespace essent::core {
namespace {

using sim::Engine;
using sim::FullCycleEngine;
using sim::RunResult;
using sim::SimIR;

// Drives a mix of idle and active cycles so partitions both sleep and wake.
void bankStimulus(Engine& e, uint64_t c) {
  e.poke("reset", c < 2);
  e.poke("bankSel", c % 7 == 0 ? c % 8 : 999);  // mostly idle, periodic pokes
  e.poke("wdata", c * 17);
}

TEST(ObsCounters, CcssNeverEvaluatesMoreOpsThanFullCycle) {
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(8, 16));
  FullCycleEngine full(sim::CompiledDesign::compile(ir));
  ActivityEngine ccss(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  RunResult rFull = sim::runEngine(full, 300, bankStimulus);
  RunResult rCcss = sim::runEngine(ccss, 300, bankStimulus);
  ASSERT_EQ(rFull.cycles, rCcss.cycles);
  EXPECT_LE(rCcss.stats.opsEvaluated, rFull.stats.opsEvaluated);
  EXPECT_GT(rCcss.stats.opsEvaluated, 0u);
}

TEST(ObsCounters, ActivationsBoundedByChecksAndActivityInUnitRange) {
  for (const std::string& text :
       {designs::gatedBanksFirrtl(8, 16), designs::gcdFirrtl(16), designs::pipelineFirrtl(4, 8)}) {
    SimIR ir = sim::buildFromFirrtl(text);
    ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
    sim::runEngine(eng, 200, [](Engine& e, uint64_t c) { e.poke("reset", c < 2); });
    EXPECT_LE(eng.stats().partitionActivations, eng.stats().partitionChecks) << ir.name;
    EXPECT_GE(eng.effectiveActivity(), 0.0) << ir.name;
    EXPECT_LE(eng.effectiveActivity(), 1.0) << ir.name;
  }
}

TEST(ObsProfile, PerPartitionCountersSumToEngineStats) {
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(8, 16));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.setProfiling(true);
  sim::runEngine(eng, 500, bankStimulus);

  const ActivityProfile& prof = eng.profile();
  ASSERT_EQ(prof.parts.size(), eng.schedule().numPartitions());
  uint64_t ops = 0, acts = 0;
  for (const PartitionProfile& pp : prof.parts) {
    ops += pp.opsEvaluated;
    acts += pp.activations;
  }
  EXPECT_EQ(ops, eng.stats().opsEvaluated);
  EXPECT_EQ(acts, eng.stats().partitionActivations);
  EXPECT_EQ(prof.profiledCycles, eng.stats().cycles);

  // The timeline is just the activations re-bucketed by cycle window.
  uint64_t timeline = std::accumulate(prof.activationsPerWindow.begin(),
                                      prof.activationsPerWindow.end(), uint64_t{0});
  EXPECT_EQ(timeline, acts);
  size_t expectWindows =
      static_cast<size_t>((prof.profiledCycles + prof.windowCycles - 1) / prof.windowCycles);
  EXPECT_EQ(prof.activationsPerWindow.size(), expectWindows);
}

TEST(ObsProfile, ProfilingDoesNotPerturbSimulation) {
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(8, 16));
  ActivityEngine plain(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  ActivityEngine profiled(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  profiled.setProfiling(true);
  for (uint64_t c = 0; c < 300; c++) {
    bankStimulus(plain, c);
    bankStimulus(profiled, c);
    plain.tick();
    profiled.tick();
  }
  for (int32_t o : ir.outputs) EXPECT_EQ(plain.peekSig(o), profiled.peekSig(o));
  EXPECT_EQ(plain.stats().opsEvaluated, profiled.stats().opsEvaluated);
  EXPECT_EQ(plain.stats().partitionActivations, profiled.stats().partitionActivations);
  EXPECT_EQ(plain.stats().triggerSets, profiled.stats().triggerSets);
}

TEST(ObsProfile, ResetStateClearsProfileWithStats) {
  SimIR ir = sim::buildFromFirrtl(designs::gcdFirrtl(16));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.setProfiling(true);
  sim::runEngine(eng, 50, [](Engine& e, uint64_t c) {
    e.poke("load", c == 0);
    e.poke("a", 48);
    e.poke("b", 36);
  });
  EXPECT_GT(eng.profile().profiledCycles, 0u);
  eng.resetState();
  EXPECT_EQ(eng.profile().profiledCycles, 0u);
  for (const PartitionProfile& pp : eng.profile().parts) {
    EXPECT_EQ(pp.activations, 0u);
    EXPECT_EQ(pp.opsEvaluated, 0u);
    EXPECT_EQ(pp.wakesIssued, 0u);
  }
  EXPECT_TRUE(eng.profile().activationsPerWindow.empty());
}

TEST(ObsProfile, WindowSizeReshapesTimeline) {
  SimIR ir = sim::buildFromFirrtl(designs::counterFirrtl(8));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.setProfileWindow(10);
  eng.setProfiling(true);
  sim::runEngine(eng, 95, [](Engine& e, uint64_t) { e.poke("en", 1); });
  EXPECT_EQ(eng.profile().windowCycles, 10u);
  EXPECT_EQ(eng.profile().activationsPerWindow.size(), 10u);  // ceil(95/10)
}

TEST(ObsProfile, RunAndWorkloadResultsCarryStatsSnapshot) {
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(4, 8));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  RunResult res = sim::runEngine(eng, 100, bankStimulus);
  EXPECT_EQ(res.stats.cycles, eng.stats().cycles);
  EXPECT_EQ(res.stats.opsEvaluated, eng.stats().opsEvaluated);
  EXPECT_EQ(res.stats.partitionChecks, eng.stats().partitionChecks);
  EXPECT_EQ(res.cycles, res.stats.cycles);
}

TEST(ObsExport, ProfileJsonSumChecksAndHotRanking) {
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(8, 16));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.setProfiling(true);
  sim::runEngine(eng, 400, bankStimulus);

  obs::Json doc = activityProfileJson(eng);
  uint64_t sum = 0;
  for (const obs::Json& row : doc.at("partitions").items())
    sum += row.at("ops_evaluated").asUInt();
  EXPECT_EQ(sum, doc.at("stats").at("ops_evaluated").asUInt());
  EXPECT_EQ(doc.at("design").asStr(), ir.name);
  // Round-trips through the parser without loss.
  EXPECT_EQ(obs::Json::parse(doc.dump()), doc);

  auto hot = topHotPartitions(eng.profile(), 3);
  ASSERT_LE(hot.size(), 3u);
  for (size_t i = 1; i < hot.size(); i++)
    EXPECT_GE(eng.profile().parts[hot[i - 1]].opsEvaluated,
              eng.profile().parts[hot[i]].opsEvaluated);
}

TEST(ObsExport, StatsJsonHasStableKeySet) {
  sim::EngineStats st;
  st.cycles = 10;
  st.opsEvaluated = 100;
  obs::Json j = engineStatsJson(st);
  const char* keys[] = {"cycles",          "ops_evaluated", "partition_checks",
                        "partition_activations", "output_comparisons", "trigger_sets",
                        "signals_changed_total"};
  ASSERT_EQ(j.members().size(), std::size(keys));
  for (size_t i = 0; i < std::size(keys); i++) EXPECT_EQ(j.members()[i].first, keys[i]);
}

}  // namespace
}  // namespace essent::core
