// Structured-diagnostics tests: DiagEngine collection/rendering/JSON,
// multi-error recovery through the real front end, the legacy throwing
// wrappers, and the golden bad-input corpus (tests/corpus/bad/*.fir, each
// with a .expect file listing "CODE line:col" per expected error).
#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "diag/diag.h"
#include "firrtl/lexer.h"
#include "obs/json.h"
#include "sim/compile.h"

#ifndef DIAG_CORPUS_DIR
#error "DIAG_CORPUS_DIR must be defined by the build"
#endif

namespace {

using namespace essent;

std::string readFile(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Diag, CollectsAndCounts) {
  diag::DiagEngine de;
  EXPECT_FALSE(de.hasErrors());
  de.error("E0201", "expected ':'", {"x.fir", 3, 5, 8});
  de.warning("W0601", "degraded", {});
  de.error("E0303", "width error", {"x.fir", 7, 1, 0});
  EXPECT_TRUE(de.hasErrors());
  EXPECT_EQ(de.errorCount(), 2u);
  EXPECT_EQ(de.warningCount(), 1u);
  ASSERT_EQ(de.diagnostics().size(), 3u);
  EXPECT_EQ(de.diagnostics()[0].code, "E0201");
  EXPECT_EQ(de.diagnostics()[1].severity, diag::Severity::Warning);
}

TEST(Diag, RenderIsClangStyle) {
  diag::DiagEngine de;
  de.setSource("bad.fir", "circuit X :\n  module Y\n    skip\n");
  de.error("E0201", "expected ':' after module name", {"bad.fir", 2, 10, 11});
  std::string r = de.render();
  EXPECT_NE(r.find("bad.fir:2:10: error: expected ':' after module name [E0201]"),
            std::string::npos)
      << r;
  EXPECT_NE(r.find("module Y"), std::string::npos) << r;  // source excerpt
  EXPECT_NE(r.find("^"), std::string::npos) << r;         // caret
}

TEST(Diag, ErrorLimitStopsCollection) {
  diag::DiagEngine de;
  de.maxErrors = 4;
  for (int i = 0; i < 10; i++) de.error("E0201", "err", {});
  EXPECT_TRUE(de.atErrorLimit());
  // The engine keeps the first maxErrors errors (plus at most one
  // "too many errors" marker), never all ten.
  EXPECT_LE(de.diagnostics().size(), 5u);
}

TEST(Diag, JsonRoundTrip) {
  diag::DiagEngine de;
  de.setSource("a.fir", "circuit A :\n");
  de.error("E0102", "unterminated string literal", {"a.fir", 4, 9, 15})
      .note("string opened here", {"a.fir", 4, 9, 10});
  de.warning("W0601", "parallel engine degraded to 2 threads", {});
  obs::Json doc = de.toJson();
  std::vector<diag::Diagnostic> back = diag::diagnosticsFromJson(doc);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].severity, diag::Severity::Error);
  EXPECT_EQ(back[0].code, "E0102");
  EXPECT_EQ(back[0].message, "unterminated string literal");
  EXPECT_EQ(back[0].span.file, "a.fir");
  EXPECT_EQ(back[0].span.line, 4);
  EXPECT_EQ(back[0].span.col, 9);
  EXPECT_EQ(back[0].span.endCol, 15);
  ASSERT_EQ(back[0].notes.size(), 1u);
  EXPECT_EQ(back[0].notes[0].message, "string opened here");
  EXPECT_EQ(back[1].severity, diag::Severity::Warning);
  EXPECT_EQ(back[1].code, "W0601");
}

// One pass over a multi-error file reports every error, each with a
// correct location — the acceptance criterion for panic-mode recovery.
TEST(Diag, MultiErrorFileReportsAllErrors) {
  const std::string src =
      "circuit Bad :\n"
      "  module Bad :\n"
      "    input x : UInt<8\n"          // line 3: unclosed width
      "    output y : UInt<8>\n"
      "    node n = add(x,\n"           // line 5: missing operand
      "    y <= n\n"
      "    node m = bitz(x, 3, 0)\n";   // line 7: junk after expr
  diag::DiagEngine de;
  de.setSource("<test>", src);
  auto circ = firrtl::parseCircuit(src, de);
  EXPECT_GE(de.errorCount(), 2u);
  std::vector<int> lines;
  for (const auto& d : de.diagnostics())
    if (d.severity == diag::Severity::Error) lines.push_back(d.span.line);
  EXPECT_TRUE(std::find(lines.begin(), lines.end(), 3) != lines.end());
  EXPECT_TRUE(std::find(lines.begin(), lines.end(), 5) != lines.end());
}

TEST(Diag, LegacyWrappersStillThrow) {
  EXPECT_THROW(firrtl::lex("circuit C :\n  node x = &y\n"), firrtl::LexError);
  EXPECT_THROW(firrtl::parseCircuit("circuit C :\n  module C\n"), firrtl::ParseError);
}

TEST(Diag, CleanInputProducesNoDiagnostics) {
  const std::string src =
      "circuit Ok :\n"
      "  module Ok :\n"
      "    input clock : Clock\n"
      "    input x : UInt<4>\n"
      "    output y : UInt<4>\n"
      "    y <= x\n";
  diag::DiagEngine de;
  de.setSource("<test>", src);
  auto ir = sim::buildFromFirrtlDiag(src, {}, de);
  ASSERT_TRUE(ir.has_value());
  EXPECT_TRUE(de.diagnostics().empty());
}

// Golden corpus: every tests/corpus/bad/*.fir must produce exactly the
// error list (code + line:col, in order) recorded in its .expect sibling.
TEST(DiagCorpus, BadInputsMatchGoldenExpectations) {
  std::vector<std::string> cases;
  DIR* d = opendir(DIAG_CORPUS_DIR);
  ASSERT_NE(d, nullptr) << DIAG_CORPUS_DIR;
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".fir")
      cases.push_back(name.substr(0, name.size() - 4));
  }
  closedir(d);
  std::sort(cases.begin(), cases.end());
  ASSERT_GE(cases.size(), 10u) << "bad-input corpus shrank";

  for (const std::string& base : cases) {
    SCOPED_TRACE(base);
    std::string fir = readFile(std::string(DIAG_CORPUS_DIR) + "/" + base + ".fir");
    std::string expectText = readFile(std::string(DIAG_CORPUS_DIR) + "/" + base + ".expect");

    diag::DiagEngine de;
    de.setSource(base + ".fir", fir);
    auto ir = sim::buildFromFirrtlDiag(fir, {}, de);
    EXPECT_FALSE(ir.has_value());
    EXPECT_TRUE(de.hasErrors());

    std::vector<std::string> got;
    for (const auto& dg : de.diagnostics()) {
      if (dg.severity != diag::Severity::Error) continue;
      got.push_back(dg.code + " " + std::to_string(dg.span.line) + ":" +
                    std::to_string(dg.span.col));
    }
    std::vector<std::string> want;
    std::istringstream in(expectText);
    std::string line;
    while (std::getline(in, line))
      if (!line.empty()) want.push_back(line);
    EXPECT_EQ(got, want);
  }
}

}  // namespace
