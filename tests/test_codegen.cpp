// Tests for the C++ code generation backend. Structural checks run on the
// emitted text; end-to-end checks compile the generated simulator with the
// host toolchain, run it against deterministic stimulus, and require
// bit-identical results vs. the in-process interpreter — in both baseline
// and CCSS modes.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "codegen/emitter.h"
#include "core/activity_engine.h"
#include "designs/blocks.h"
#include "designs/gcd.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"
#include "support/strutil.h"

namespace essent::codegen {
namespace {

using core::ActivityEngine;
using core::CondPartSchedule;
using core::Netlist;
using core::ScheduleOptions;
using sim::FullCycleEngine;
using sim::SimIR;

CondPartSchedule makeSchedule(const SimIR& ir) {
  return core::buildSchedule(Netlist::build(ir), ScheduleOptions{});
}

TEST(Codegen, EmitsStructWithNamedMembers) {
  SimIR ir = sim::buildFromFirrtl(designs::counterFirrtl(8));
  CodegenOptions opts;
  opts.ccss = false;
  std::string code = emitCpp(ir, nullptr, opts);
  EXPECT_NE(code.find("struct Simulator"), std::string::npos);
  EXPECT_NE(code.find("uint64_t count = 0"), std::string::npos);
  EXPECT_NE(code.find("uint64_t r = 0"), std::string::npos);
  EXPECT_NE(code.find("void eval()"), std::string::npos);
  // Baseline mode has no activity machinery.
  EXPECT_EQ(code.find("act_["), std::string::npos);
}

TEST(Codegen, CcssModeEmitsPartitionsAndTriggers) {
  SimIR ir = sim::buildFromFirrtl(designs::aluArrayFirrtl(8, 16));
  CondPartSchedule sched = makeSchedule(ir);
  std::string code = emitCpp(ir, &sched, CodegenOptions{});
  EXPECT_NE(code.find("bool act_["), std::string::npos);
  EXPECT_NE(code.find("void part_0()"), std::string::npos);
  EXPECT_NE(code.find("first_cycle_"), std::string::npos);
  // Push-direction triggering via OR-reduction.
  EXPECT_NE(code.find("|= ch"), std::string::npos);
}

TEST(Codegen, BranchHintsOnColdPaths) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit P :
  module P :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output q : UInt<4>
    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))
    r <= tail(add(r, UInt<4>(1)), 1)
    q <= r
    printf(clock, en, "r=%d\n", r)
    stop(clock, eq(r, UInt<4>(9)), 1)
)");
  CondPartSchedule sched = makeSchedule(ir);
  CodegenOptions opts;
  std::string code = emitCpp(ir, &sched, opts);
  EXPECT_NE(code.find("[[unlikely]]"), std::string::npos);
  EXPECT_NE(code.find("__builtin_expect"), std::string::npos);  // reset mux way
  opts.branchHints = false;
  std::string plain = emitCpp(ir, &sched, opts);
  EXPECT_EQ(plain.find("[[unlikely]]"), std::string::npos);
}

TEST(Codegen, MuxShadowSinksSingleUseCones) {
  // mul(a,b) feeds only the taken way of the mux: with shadowing it must
  // move inside an if/else branch; without it, a ternary remains.
  SimIR ir = sim::buildFromFirrtl(R"(
circuit S :
  module S :
    input s : UInt<1>
    input a : UInt<8>
    input b : UInt<8>
    output o : UInt<16>
    o <= mux(s, mul(a, b), cat(a, b))
)");
  CondPartSchedule sched = makeSchedule(ir);
  CodegenOptions on;
  std::string withShadow = emitCpp(ir, &sched, on);
  EXPECT_NE(withShadow.find("} else {"), std::string::npos);
  CodegenOptions off;
  off.muxShadow = false;
  std::string without = emitCpp(ir, &sched, off);
  EXPECT_EQ(without.find("} else {"), std::string::npos);
}

TEST(Codegen, ConstantsHoistedIntoInitializers) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit C :
  module C :
    input a : UInt<8>
    output o : UInt<9>
    o <= add(a, UInt<8>("hab"))
)");
  CodegenOptions opts;
  opts.ccss = false;
  std::string code = emitCpp(ir, nullptr, opts);
  EXPECT_NE(code.find("= 0xab"), std::string::npos);
  // No per-cycle constant assignment in eval().
  size_t evalPos = code.find("void eval()");
  EXPECT_EQ(code.find("= 0xabull;", evalPos), std::string::npos);
}

TEST(Codegen, RejectsWideSignals) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit W :
  module W :
    input a : UInt<64>
    output o : UInt<80>
    o <= pad(a, 80)
)");
  EXPECT_THROW(emitCpp(ir, nullptr, CodegenOptions{"S", false, true}), CodegenError);
}

TEST(Codegen, MemberNamesAreUniqueAndStable) {
  SimIR ir = sim::buildFromFirrtl(designs::gcdFirrtl(16));
  std::set<std::string> seen;
  for (size_t s = 0; s < ir.signals.size(); s++) {
    std::string n = memberName(ir, static_cast<int32_t>(s));
    EXPECT_TRUE(seen.insert(n).second) << n;
    EXPECT_EQ(n, memberName(ir, static_cast<int32_t>(s)));
  }
}

// --- compile-and-run integration ---

// Compiles `code` + `mainBody` and returns the process stdout.
// `mainBody` runs inside main() with a Simulator named `sim` in scope.
std::string compileAndRun(const std::string& code, const std::string& mainBody) {
  char dirTemplate[] = "/tmp/essent_cg_XXXXXX";
  char* dir = mkdtemp(dirTemplate);
  if (!dir) return "<mkdtemp failed>";
  std::string src = std::string(dir) + "/sim.cpp";
  std::string bin = std::string(dir) + "/sim";
  {
    std::ofstream f(src);
    f << code;
    f << "\nint main() {\n  essent_gen::Simulator sim;\n" << mainBody << "\n  return 0;\n}\n";
  }
  std::string cmd = "c++ -std=c++20 -O1 -o " + bin + " " + src + " 2>" + dir + "/cc.log";
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream log(std::string(dir) + "/cc.log");
    std::stringstream ss;
    ss << "<compile failed>\n" << log.rdbuf();
    return ss.str();
  }
  std::string outFile = std::string(dir) + "/out.txt";
  if (std::system((bin + " > " + outFile).c_str()) != 0) return "<run failed>";
  std::ifstream out(outFile);
  std::stringstream ss;
  ss << out.rdbuf();
  return ss.str();
}

// Like compileAndRun, but over a sharded emission: writes the header and
// every unit, compiles them together with the main file, and runs.
std::string compileAndRunSharded(const codegen::ShardedCpp& sh, const std::string& mainBody) {
  char dirTemplate[] = "/tmp/essent_cgs_XXXXXX";
  char* dir = mkdtemp(dirTemplate);
  if (!dir) return "<mkdtemp failed>";
  auto write = [&](const std::string& name, const std::string& text) {
    std::ofstream f(std::string(dir) + "/" + name);
    f << text;
  };
  write(sh.headerName, sh.header);
  std::string srcs;
  for (size_t k = 0; k < sh.units.size(); k++) {
    write(sh.unitNames[k], sh.units[k]);
    srcs += " " + std::string(dir) + "/" + sh.unitNames[k];
  }
  write("main.cpp", "#include \"" + sh.headerName +
                        "\"\n#include <cstdio>\nint main() {\n  essent_gen::Simulator sim;\n" +
                        mainBody + "\n  return 0;\n}\n");
  std::string bin = std::string(dir) + "/sim";
  std::string cmd = "c++ -std=c++20 -O1 -o " + bin + " " + dir + "/main.cpp" + srcs + " 2>" +
                    dir + "/cc.log";
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream log(std::string(dir) + "/cc.log");
    std::stringstream ss;
    ss << "<compile failed>\n" << log.rdbuf();
    return ss.str();
  }
  std::string outFile = std::string(dir) + "/out.txt";
  if (std::system((bin + " > " + outFile).c_str()) != 0) return "<run failed>";
  std::ifstream out(outFile);
  std::stringstream ss;
  ss << out.rdbuf();
  return ss.str();
}

// The sharded emission must behave exactly like the single-TU one in both
// modes, while actually splitting the definitions across units.
TEST(CodegenRun, ShardedMatchesSingleUnitBothModes) {
  SimIR ir = sim::buildFromFirrtl(designs::gatedBanksFirrtl(8, 16));
  CondPartSchedule sched = makeSchedule(ir);
  const std::string mainBody = R"(
  sim.reset = 0;
  sim.wdata = 3;
  for (int c = 0; c < 60; c++) {
    sim.bankSel = (unsigned)(c % 8);
    sim.eval();
  }
  std::printf("sum=%llu cycles=%llu\n", (unsigned long long)sim.sum,
              (unsigned long long)sim.cycles_);
)";
  for (bool ccss : {false, true}) {
    CodegenOptions opts;
    opts.ccss = ccss;
    std::string single = compileAndRun(emitCpp(ir, ccss ? &sched : nullptr, opts), mainBody);
    codegen::ShardedCpp sh =
        codegen::emitCppSharded(ir, ccss ? &sched : nullptr, opts, 3, "banks");
    EXPECT_EQ(sh.headerName, "banks.h");
    EXPECT_EQ(sh.units.size(), 3u) << (ccss ? "ccss" : "baseline");
    EXPECT_NE(sh.header.find("struct Simulator"), std::string::npos);
    std::string out = compileAndRunSharded(sh, mainBody);
    EXPECT_EQ(out, single) << (ccss ? "ccss" : "baseline") << " mode:\n" << out;
    EXPECT_NE(out.find("sum="), std::string::npos);
  }
}

// Shard-count clamping: more shards than work functions degrades to one
// unit per function, and 1 shard still yields the header + single unit.
TEST(CodegenRun, ShardCountClamps) {
  SimIR ir = sim::buildFromFirrtl(designs::counterFirrtl(8));
  CondPartSchedule sched = makeSchedule(ir);
  codegen::ShardedCpp many = codegen::emitCppSharded(ir, &sched, CodegenOptions{}, 64, "c");
  EXPECT_LE(many.units.size(), sched.parts.size());
  codegen::ShardedCpp one = codegen::emitCppSharded(ir, &sched, CodegenOptions{}, 1, "c");
  EXPECT_EQ(one.units.size(), 1u);
  EXPECT_EQ(one.unitNames[0], "c_0.cpp");
}

TEST(CodegenRun, CounterMatchesInterpreterBothModes) {
  SimIR ir = sim::buildFromFirrtl(designs::counterFirrtl(8));
  CondPartSchedule sched = makeSchedule(ir);

  // Interpreter reference: en toggles every 3rd cycle.
  FullCycleEngine ref(sim::CompiledDesign::compile(ir));
  ref.poke("reset", 0);
  for (int c = 0; c < 40; c++) {
    ref.poke("en", c % 3 != 0);
    ref.tick();
  }
  uint64_t expected = ref.peek("count");

  const std::string mainBody = R"(
  sim.reset = 0;
  for (int c = 0; c < 40; c++) {
    sim.en = (c % 3) != 0;
    sim.eval();
  }
  std::printf("count=%llu\n", (unsigned long long)sim.count);
)";
  for (bool ccss : {false, true}) {
    CodegenOptions opts;
    opts.ccss = ccss;
    std::string code = emitCpp(ir, ccss ? &sched : nullptr, opts);
    std::string out = compileAndRun(code, mainBody);
    EXPECT_EQ(out, strfmt("count=%llu\n", static_cast<unsigned long long>(expected)))
        << (ccss ? "ccss" : "baseline") << " mode:\n" << out;
  }
}

TEST(CodegenRun, GcdComputesInCompiledSimulator) {
  SimIR ir = sim::buildFromFirrtl(designs::gcdFirrtl(16));
  CondPartSchedule sched = makeSchedule(ir);
  std::string code = emitCpp(ir, &sched, CodegenOptions{});
  std::string out = compileAndRun(code, R"(
  sim.reset = 0;
  sim.a = 1071; sim.b = 462; sim.load = 1;
  sim.eval();
  sim.load = 0;
  sim.eval();
  for (int i = 0; i < 200 && !sim.valid; i++) sim.eval();
  std::printf("gcd=%llu cycles=%llu\n", (unsigned long long)sim.result,
              (unsigned long long)sim.cycles_);
)");
  EXPECT_TRUE(out.find("gcd=21 ") != std::string::npos) << out;
}

TEST(CodegenRun, PrintfAndStopMatchInterpreter) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit P :
  module P :
    input clock : Clock
    input reset : UInt<1>
    output q : UInt<4>
    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))
    r <= tail(add(r, UInt<4>(1)), 1)
    q <= r
    printf(clock, eq(bits(r, 0, 0), UInt<1>(1)), "odd r=%d x=%x b=%b\n", r, r, r)
    stop(clock, eq(r, UInt<4>(9)), 2)
)");
  CondPartSchedule sched = makeSchedule(ir);

  FullCycleEngine ref(sim::CompiledDesign::compile(ir));
  ref.poke("reset", 0);
  while (!ref.stopped()) ref.tick();

  std::string code = emitCpp(ir, &sched, CodegenOptions{});
  std::string out = compileAndRun(code, R"(
  sim.reset = 0;
  while (!sim.stopped_) sim.eval();
)");
  EXPECT_EQ(out, ref.printOutput());
}

TEST(CodegenRun, MuxShadowOnOffIdenticalResults) {
  designs::RandomDesignConfig cfg;
  cfg.numNodes = 60;
  SimIR ir = sim::buildFromFirrtl(designs::randomDesignFirrtl(777, cfg));
  CondPartSchedule sched = makeSchedule(ir);
  std::string bodies[2];
  for (int v = 0; v < 2; v++) {
    CodegenOptions opts;
    opts.muxShadow = v == 0;
    std::string code = emitCpp(ir, &sched, opts);
    std::string body =
        "  uint64_t lcg = 777, hash = 1469598103934665603ULL;\n"
        "  auto nx = [&lcg]{ lcg = lcg*6364136223846793005ULL + 1442695040888963407ULL; "
        "return lcg >> 16; };\n"
        "  for (int c = 0; c < 50; c++) {\n";
    for (int32_t in : ir.inputs) {
      const auto& sig = ir.signals[static_cast<size_t>(in)];
      if (sig.name == "reset") body += "    sim.reset = c < 2;\n";
      else
        body += strfmt("    sim.%s = nx() & 0x%llxull;\n", memberName(ir, in).c_str(),
                       static_cast<unsigned long long>(
                           sig.width >= 64 ? ~0ull : (1ull << sig.width) - 1));
    }
    body += "    sim.eval();\n";
    for (int32_t o : ir.outputs)
      body += strfmt("    hash ^= sim.%s; hash *= 1099511628211ULL;\n",
                     memberName(ir, o).c_str());
    body += "  }\n  std::printf(\"h=%llx\\n\", (unsigned long long)hash);\n";
    bodies[v] = compileAndRun(code, body);
  }
  EXPECT_EQ(bodies[0], bodies[1]);
  EXPECT_NE(bodies[0].find("h="), std::string::npos) << bodies[0];
}

TEST(CodegenRun, AssertionsFireInCompiledSimulator) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit A :
  module A :
    input clock : Clock
    input reset : UInt<1>
    output q : UInt<4>
    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))
    r <= tail(add(r, UInt<4>(1)), 1)
    q <= r
    assert(clock, lt(r, UInt<4>(5)), UInt<1>(1), "counter overflow r=%d")
)");
  CondPartSchedule sched = makeSchedule(ir);
  std::string code = emitCpp(ir, &sched, CodegenOptions{});
  EXPECT_NE(code.find("assertion failed"), std::string::npos);
  std::string out = compileAndRun(code, R"(
  sim.reset = 0;
  int cycles = 0;
  while (!sim.stopped_ && cycles++ < 100) sim.eval();
  std::printf("stopped=%d exit=%d cycles=%d\n", (int)sim.stopped_, sim.exit_code_, cycles);
)");
  EXPECT_NE(out.find("assertion failed: counter overflow"), std::string::npos) << out;
  EXPECT_NE(out.find("stopped=1 exit=65 cycles=6"), std::string::npos) << out;
}

TEST(CodegenRun, RandomDesignsMatchInterpreterHash) {
  // Drive random designs with an LCG replicated on both sides and compare a
  // running hash of all outputs after every cycle.
  for (uint64_t seed : {201ull, 202ull, 203ull}) {
    designs::RandomDesignConfig cfg;
    cfg.useWide = false;
    cfg.numNodes = 50;
    cfg.useSigned = true;
    SimIR ir = sim::buildFromFirrtl(designs::randomDesignFirrtl(seed, cfg));
    CondPartSchedule sched = makeSchedule(ir);

    // Interpreter side.
    ActivityEngine ref(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
    uint64_t lcg = seed;
    auto lcgNext = [&lcg] {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      return lcg >> 16;
    };
    uint64_t hash = 1469598103934665603ULL;
    for (int c = 0; c < 60; c++) {
      for (int32_t in : ir.inputs) {
        const auto& sig = ir.signals[static_cast<size_t>(in)];
        if (sig.name == "reset") ref.poke("reset", c < 2);
        else ref.poke(sig.name, lcgNext());
      }
      ref.tick();
      for (int32_t o : ir.outputs) {
        hash ^= ref.peekSig(o);
        hash *= 1099511628211ULL;
      }
    }

    // Compiled side: identical stimulus and hash, generated as C++.
    std::string body = strfmt("  uint64_t lcg = %lluull;\n", static_cast<unsigned long long>(seed));
    body +=
        "  auto lcgNext = [&lcg] { lcg = lcg * 6364136223846793005ULL + "
        "1442695040888963407ULL; return lcg >> 16; };\n";
    body += "  uint64_t hash = 1469598103934665603ULL;\n";
    body += "  for (int c = 0; c < 60; c++) {\n";
    for (int32_t in : ir.inputs) {
      const auto& sig = ir.signals[static_cast<size_t>(in)];
      if (sig.name == "reset")
        body += "    sim.reset = c < 2;\n";
      else
        body += strfmt("    sim.%s = lcgNext() & 0x%llxull;\n",
                       memberName(ir, in).c_str(),
                       static_cast<unsigned long long>(
                           sig.width >= 64 ? ~0ull : (1ull << sig.width) - 1));
    }
    body += "    sim.eval();\n";
    for (int32_t o : ir.outputs)
      body += strfmt("    hash ^= sim.%s; hash *= 1099511628211ULL;\n",
                     memberName(ir, o).c_str());
    body += "  }\n  std::printf(\"hash=%llx\\n\", (unsigned long long)hash);\n";

    std::string code = emitCpp(ir, &sched, CodegenOptions{});
    std::string out = compileAndRun(code, body);
    EXPECT_EQ(out, strfmt("hash=%llx\n", static_cast<unsigned long long>(hash)))
        << "seed " << seed << "\n" << out;
  }
}

}  // namespace
}  // namespace essent::codegen
