// Unit tests for the observability substrate: the JSON document model
// (writer + parser round trips), the stats registry serialization, and the
// RAII phase timers.
#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/phase_timer.h"
#include "obs/stats.h"

namespace essent::obs {
namespace {

TEST(Json, ScalarDumpForms) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(UINT64_MAX).dump(), "18446744073709551615");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json(2.0).dump(), "2.0");  // double-ness stays visible
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  Json j("a\"b\\c\nd\te\x01");
  std::string dumped = j.dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  EXPECT_EQ(Json::parse(dumped).asStr(), j.asStr());
}

TEST(Json, ObjectPreservesInsertionOrderAndNests) {
  Json j = Json::object();
  j["zeta"] = 1;
  j["alpha"] = 2;
  j["nested"]["inner"] = "v";  // operator[] on null promotes to object
  EXPECT_EQ(j.members()[0].first, "zeta");
  EXPECT_EQ(j.members()[1].first, "alpha");
  EXPECT_EQ(j.at("nested").at("inner").asStr(), "v");
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_THROW(j.at("missing"), JsonError);
}

TEST(Json, RoundTripComplexDocument) {
  Json doc = Json::object();
  doc["counters"]["cycles"] = uint64_t{123456789012345ull};
  doc["counters"]["neg"] = -42;
  doc["ratio"] = 0.4375;
  doc["flag"] = true;
  doc["nothing"] = Json();
  Json arr = Json::array();
  for (int i = 0; i < 5; i++) arr.push(i * i);
  doc["squares"] = std::move(arr);
  for (int indent : {0, 2, 4}) {
    Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent=" << indent;
  }
}

TEST(Json, LargeIntegersSurviveExactly) {
  uint64_t big = 0xFFFFFFFFFFFFFFFFull;
  Json back = Json::parse(Json(big).dump());
  EXPECT_EQ(back.asUInt(), big);
  Json negBack = Json::parse(Json(INT64_MIN).dump());
  EXPECT_EQ(negBack.asInt(), INT64_MIN);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1 \"b\":2}"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("01"), JsonError);  // trailing junk after 0
  EXPECT_THROW(Json::parse("truex"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), JsonError);  // duplicate key
  EXPECT_THROW(Json::parse("nul"), JsonError);
}

TEST(Json, ParserAcceptsEscapesAndUnicode) {
  Json j = Json::parse(R"("tab\there Aé")");
  EXPECT_EQ(j.asStr(), "tab\there A\xc3\xa9");
}

TEST(Json, TypeMismatchesThrow) {
  Json j(3.5);
  EXPECT_THROW(j.asStr(), JsonError);
  EXPECT_THROW(j.asUInt(), JsonError);  // non-integral double
  EXPECT_DOUBLE_EQ(j.asDouble(), 3.5);
  EXPECT_EQ(Json(7.0).asUInt(), 7u);  // integral double coerces
  EXPECT_THROW(Json(-1).asUInt(), JsonError);
}

TEST(Histogram, Pow2BucketsAndMoments) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0, not UINT64_MAX
  for (uint64_t v : {0ull, 1ull, 1ull, 3ull, 8ull}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 13u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  // Buckets: [0]=zeros, [1]=1, [2]=2-3, [3]=4-7, [4]=8-15.
  const auto& b = h.buckets();
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 2u);
  EXPECT_EQ(b[2], 1u);
  EXPECT_EQ(b[3], 0u);
  EXPECT_EQ(b[4], 1u);
  Json j = h.toJson();
  EXPECT_EQ(j.at("count").asUInt(), 5u);
  EXPECT_DOUBLE_EQ(j.at("mean").asDouble(), 13.0 / 5.0);
}

TEST(Registry, NestedTreeSerializesWithStableSchema) {
  Registry root;
  root.counter("events") = 3;
  root.addCounter("events", 2);
  root.gauge("ratio") = 0.5;
  root.timer("phase").record(0.25);
  root.timer("phase").record(0.75);
  root.histogram("sizes").record(4);
  root.child("inner").counter("x") = 1;
  EXPECT_FALSE(root.empty());
  EXPECT_EQ(root.findChild("nope"), nullptr);
  ASSERT_NE(root.findChild("inner"), nullptr);

  Json j = root.toJson();
  EXPECT_EQ(j.at("counters").at("events").asUInt(), 5u);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("ratio").asDouble(), 0.5);
  EXPECT_DOUBLE_EQ(j.at("timers").at("phase").at("seconds").asDouble(), 1.0);
  EXPECT_EQ(j.at("timers").at("phase").at("calls").asUInt(), 2u);
  EXPECT_EQ(j.at("histograms").at("sizes").at("count").asUInt(), 1u);
  EXPECT_EQ(j.at("inner").at("counters").at("x").asUInt(), 1u);
  // Round-trips through the parser.
  EXPECT_EQ(Json::parse(j.dump()), j);

  root.clear();
  EXPECT_TRUE(root.empty());
  EXPECT_EQ(root.toJson().dump(0), "{}");
}

TEST(PhaseTimer, RecordsScopedDurations) {
  resetPhaseTimings();
  {
    ScopedPhaseTimer t("obs-test-phase");
  }
  { ScopedPhaseTimer t("obs-test-phase"); }
  Json j = phaseTimingsJson();
  const Json& timer = j.at("timers").at("obs-test-phase");
  EXPECT_EQ(timer.at("calls").asUInt(), 2u);
  EXPECT_GE(timer.at("seconds").asDouble(), 0.0);
  resetPhaseTimings();
  EXPECT_EQ(phaseTimingsJson().dump(0), "{}");
}

}  // namespace
}  // namespace essent::obs
