// Tests for state randomization and checkpointing across all engines —
// including the re-arming of the conditional engines' activity machinery
// (a clobbered state must force full re-evaluation on the next tick).
#include <gtest/gtest.h>

#include "core/activity_engine.h"
#include "designs/blocks.h"
#include "designs/gcd.h"
#include "sim/compile.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"

namespace essent {
namespace {

using core::ActivityEngine;
using core::ScheduleOptions;
using sim::Engine;
using sim::EventDrivenEngine;
using sim::FullCycleEngine;
using sim::SimIR;

TEST(Randomize, DeterministicAcrossEngines) {
  SimIR ir = sim::buildFromFirrtl(designs::gcdFirrtl(16));
  FullCycleEngine a(sim::CompiledDesign::compile(ir));
  EventDrivenEngine b(sim::CompiledDesign::compile(ir));
  ActivityEngine c(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  for (Engine* e : std::initializer_list<Engine*>{&a, &b, &c}) e->randomizeState(1234);
  EXPECT_EQ(a.peek("x"), b.peek("x"));
  EXPECT_EQ(a.peek("x"), c.peek("x"));
  EXPECT_EQ(a.peek("y"), c.peek("y"));
  // Different seed -> (almost certainly) different state.
  FullCycleEngine d(sim::CompiledDesign::compile(ir));
  d.randomizeState(99);
  EXPECT_NE(a.peek("x") ^ (a.peek("y") << 16), d.peek("x") ^ (d.peek("y") << 16));
}

TEST(Randomize, ValuesCanonicalizedToWidth) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit R :
  module R :
    input clock : Clock
    output o : UInt<1>
    reg tiny : UInt<3>, clock
    tiny <= tiny
    o <= orr(tiny)
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.randomizeState(7);
  EXPECT_LE(eng.peek("tiny"), 7u);  // masked to 3 bits
}

TEST(Randomize, EnginesStayEquivalentAfterRandomize) {
  for (uint64_t seed : {5ull, 6ull}) {
    SimIR ir = sim::buildFromFirrtl(designs::randomDesignFirrtl(seed));
    FullCycleEngine ref(sim::CompiledDesign::compile(ir));
    ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
    ref.randomizeState(seed * 3);
    act.randomizeState(seed * 3);
    auto mismatch = sim::compareEngines(ref, act, 60, [seed](Engine& e, uint64_t c) {
      e.poke("reset", 0);
      for (int32_t in : e.ir().inputs) {
        const auto& sig = e.ir().signals[static_cast<size_t>(in)];
        if (sig.name != "reset") e.poke(sig.name, (c * 2654435761ull) ^ seed);
      }
    });
    EXPECT_FALSE(mismatch.has_value()) << mismatch->describe();
  }
}

TEST(Randomize, ResetClearsRandomizedState) {
  SimIR ir = sim::buildFromFirrtl(designs::counterFirrtl(8));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.randomizeState(42);
  eng.poke("reset", 1);
  eng.poke("en", 1);
  eng.tick();
  EXPECT_EQ(eng.peek("r"), 0u);  // synchronous reset took effect
}

TEST(Snapshot, RoundTripsState) {
  SimIR ir = sim::buildFromFirrtl(designs::gcdFirrtl(16));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.poke("reset", 0);
  eng.poke("a", 1071);
  eng.poke("b", 462);
  eng.poke("load", 1);
  eng.tick();
  eng.poke("load", 0);
  for (int i = 0; i < 3; i++) eng.tick();  // mid-computation
  auto snap = eng.saveState();
  uint64_t xMid = eng.peek("x"), yMid = eng.peek("y");

  // Run to completion.
  while (eng.peek("valid") == 0) eng.tick();
  uint64_t result = eng.peek("result");
  EXPECT_EQ(result, 21u);

  // Restore and re-run: must reach the same answer again.
  eng.restoreState(snap);
  EXPECT_EQ(eng.peek("x"), xMid);
  EXPECT_EQ(eng.peek("y"), yMid);
  while (eng.peek("valid") == 0) eng.tick();
  EXPECT_EQ(eng.peek("result"), 21u);
}

TEST(Snapshot, RestoreRearmsConditionalEngines) {
  // After a restore the CCSS engine must re-evaluate everything, not trust
  // stale activity flags.
  SimIR ir = sim::buildFromFirrtl(designs::counterFirrtl(8));
  ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), ScheduleOptions{}));
  eng.poke("reset", 0);
  eng.poke("en", 1);
  for (int i = 0; i < 5; i++) eng.tick();
  auto snap5 = eng.saveState();
  for (int i = 0; i < 5; i++) eng.tick();
  EXPECT_EQ(eng.peek("r"), 10u);
  eng.restoreState(snap5);
  EXPECT_EQ(eng.peek("r"), 5u);
  for (int i = 0; i < 2; i++) eng.tick();
  EXPECT_EQ(eng.peek("r"), 7u);
}

TEST(Snapshot, CapturesMemories) {
  SimIR ir = sim::buildFromFirrtl(R"(
circuit M :
  module M :
    input clock : Clock
    input wen : UInt<1>
    input addr : UInt<3>
    input wdata : UInt<8>
    output rdata : UInt<8>
    mem t :
      data-type => UInt<8>
      depth => 8
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    t.r.addr <= addr
    t.r.en <= UInt<1>(1)
    t.r.clk <= clock
    t.w.addr <= addr
    t.w.en <= wen
    t.w.clk <= clock
    t.w.data <= wdata
    t.w.mask <= UInt<1>(1)
    rdata <= t.r.data
)");
  FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("wen", 1);
  eng.poke("addr", 4);
  eng.poke("wdata", 77);
  eng.tick();
  auto snap = eng.saveState();
  eng.poke("wdata", 99);
  eng.tick();
  EXPECT_EQ(eng.peekMem("t", 4), 99u);
  eng.restoreState(snap);
  EXPECT_EQ(eng.peekMem("t", 4), 77u);
}

TEST(Snapshot, MismatchedDesignRejected) {
  SimIR a = sim::buildFromFirrtl(designs::counterFirrtl(8));
  SimIR b = sim::buildFromFirrtl(designs::gcdFirrtl(16));
  FullCycleEngine ea(sim::CompiledDesign::compile(a));
  FullCycleEngine eb(sim::CompiledDesign::compile(b));
  auto snap = ea.saveState();
  EXPECT_THROW(eb.restoreState(snap), std::invalid_argument);
}

}  // namespace
}  // namespace essent
