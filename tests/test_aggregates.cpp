// Tests for aggregate types (bundles, vectors) and the lowerAggregates
// (LowerTypes) pass — the Chisel-style `io` bundle surface of FIRRTL.
#include <gtest/gtest.h>

#include "firrtl/passes.h"
#include "firrtl/widths.h"
#include "sim/compile.h"
#include "sim/full_cycle.h"

namespace essent::firrtl {
namespace {

TEST(AggregateTypes, ParseBundleAndVector) {
  auto c = parseCircuit(R"(
circuit T :
  module T :
    output io : { flip en : UInt<1>, count : UInt<8> }
    wire v : UInt<8>[4]
    wire m : { a : UInt<4>, b : SInt<4> }[2]
    v.0 <= UInt<8>(1)
    v[1] <= UInt<8>(2)
    v.2 <= v.0
    v.3 <= v.1
    m.0.a <= UInt<4>(1)
    m.0.b <= SInt<4>(-1)
    m.1.a <= m.0.a
    m.1.b <= m.0.b
    io.count <= v.0
)");
  const Module& m = *c->modules[0];
  ASSERT_EQ(m.ports.size(), 1u);
  EXPECT_EQ(m.ports[0].type.kind, TypeKind::Bundle);
  ASSERT_EQ(m.ports[0].type.fields->size(), 2u);
  EXPECT_TRUE((*m.ports[0].type.fields)[0].flip);
  EXPECT_EQ(m.body[0]->type.kind, TypeKind::Vector);
  EXPECT_EQ(m.body[0]->type.size, 4u);
  EXPECT_EQ(m.body[1]->type.elem->kind, TypeKind::Bundle);
  // x[1] and x.1 are the same reference.
  EXPECT_EQ(m.body[3]->kind, StmtKind::Connect);
  EXPECT_EQ(m.body[3]->name, "v.1");
}

TEST(AggregateTypes, TypeEqualityAndToString) {
  Type b = Type::bundle({{"a", false, Type::uint_(8)}, {"b", true, Type::sint(4)}});
  Type v = Type::vector(Type::uint_(8), 4);
  EXPECT_EQ(b.toString(), "{ a : UInt<8>, flip b : SInt<4> }");
  EXPECT_EQ(v.toString(), "UInt<8>[4]");
  EXPECT_TRUE(b == b);
  EXPECT_TRUE(v == Type::vector(Type::uint_(8), 4));
  EXPECT_FALSE(v == Type::vector(Type::uint_(8), 5));
  EXPECT_FALSE(b == v);
  EXPECT_FALSE(b.isGround());
  EXPECT_TRUE(Type::clock().isGround());
}

TEST(AggregateTypes, DynamicSubaccessRejected) {
  EXPECT_THROW(parseCircuit(R"(
circuit T :
  module T :
    input i : UInt<2>
    output o : UInt<8>
    wire v : UInt<8>[4]
    o <= v[i]
)"),
               ParseError);
}

TEST(LowerAggregates, PortLeavesGetDirectionsFromFlips) {
  auto c = parseCircuit(R"(
circuit T :
  module T :
    input clock : Clock
    output io : { flip en : UInt<1>, count : UInt<8> }
    io.count <= UInt<8>(42)
)");
  lowerAggregates(*c);
  const Module& m = *c->modules[0];
  ASSERT_EQ(m.ports.size(), 3u);  // clock + two leaves
  const Port* en = m.findPort("io.en");
  const Port* count = m.findPort("io.count");
  ASSERT_NE(en, nullptr);
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(en->dir, PortDir::Input);    // flipped inside an output bundle
  EXPECT_EQ(count->dir, PortDir::Output);
  EXPECT_EQ(en->type, Type::uint_(1));
}

TEST(LowerAggregates, BulkConnectExpandsWithFlips) {
  auto c = parseCircuit(R"(
circuit Top :
  module Child :
    input clock : Clock
    output io : { flip in : UInt<8>, out : UInt<8> }
    io.out <= tail(add(io.in, UInt<8>(1)), 1)
  module Top :
    input clock : Clock
    input x : UInt<8>
    output y : UInt<8>
    wire w : { flip in : UInt<8>, out : UInt<8> }
    inst c of Child
    c.clock <= clock
    c.io <= w
    w.in <= x
    y <= w.out
)");
  lowerAggregates(*c);
  const Module& top = *c->findModule("Top");
  // The bulk connect c.io <= w must expand to:
  //   c.io.in <= w.in        (forward: instance input)
  //   w.out   <= c.io.out    (reversed: instance output)
  bool sawForward = false, sawReverse = false;
  std::function<void(const std::vector<StmtPtr>&)> scan = [&](const std::vector<StmtPtr>& body) {
    for (const auto& s : body) {
      if (s->kind == StmtKind::Connect) {
        if (s->name == "c.io.in" && s->expr->toString() == "w.in") sawForward = true;
        if (s->name == "w.out" && s->expr->toString() == "c.io.out") sawReverse = true;
      }
    }
  };
  scan(top.body);
  EXPECT_TRUE(sawForward);
  EXPECT_TRUE(sawReverse);
}

TEST(LowerAggregates, EndToEndSimulation) {
  // Chisel-style two-module design with io bundles and a vector pipeline.
  sim::SimIR ir = sim::buildFromFirrtl(R"(
circuit VecPipe :
  module Stage :
    input clock : Clock
    input reset : UInt<1>
    output io : { flip din : UInt<8>, dout : UInt<8> }
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    r <= io.din
    io.dout <= r
  module VecPipe :
    input clock : Clock
    input reset : UInt<1>
    input din : UInt<8>
    output dout : UInt<8>
    output taps : UInt<8>[3]
    inst s0 of Stage
    inst s1 of Stage
    inst s2 of Stage
    s0.clock <= clock
    s1.clock <= clock
    s2.clock <= clock
    s0.reset <= reset
    s1.reset <= reset
    s2.reset <= reset
    s0.io.din <= din
    s1.io.din <= s0.io.dout
    s2.io.din <= s1.io.dout
    dout <= s2.io.dout
    taps.0 <= s0.io.dout
    taps.1 <= s1.io.dout
    taps.2 <= s2.io.dout
)");
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("reset", 0);
  for (int i = 1; i <= 5; i++) {
    eng.poke("din", static_cast<uint64_t>(i * 10));
    eng.tick();
  }
  // After 5 cycles the pipeline has 30/40/50 in flight (values poked at
  // cycles 3,4,5); outputs reflect state before the 5th update.
  EXPECT_EQ(eng.peek("taps.0"), 40u);
  EXPECT_EQ(eng.peek("taps.1"), 30u);
  EXPECT_EQ(eng.peek("taps.2"), 20u);
  eng.tick();
  EXPECT_EQ(eng.peek("dout"), 30u);
}

TEST(LowerAggregates, AggregateRegWithRefInit) {
  sim::SimIR ir = sim::buildFromFirrtl(R"(
circuit R :
  module R :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<4>
    output o : UInt<4>
    wire init : { x : UInt<4>, y : UInt<4> }
    init.x <= UInt<4>(3)
    init.y <= UInt<4>(5)
    reg st : { x : UInt<4>, y : UInt<4> }, clock with : (reset => (reset, init))
    st.x <= tail(add(st.x, a), 1)
    st.y <= st.x
    o <= st.y
)");
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("reset", 1);
  eng.tick();
  EXPECT_EQ(eng.peek("st.x"), 3u);
  EXPECT_EQ(eng.peek("st.y"), 5u);
  eng.poke("reset", 0);
  eng.poke("a", 1);
  eng.tick();
  EXPECT_EQ(eng.peek("st.x"), 4u);
  EXPECT_EQ(eng.peek("st.y"), 3u);
}

TEST(LowerAggregates, InvalidateOnlyDrivableLeaves) {
  // `w is invalid` on a wire invalidates every leaf; on an instance port
  // bundle only the instance's inputs may be driven.
  sim::SimIR ir = sim::buildFromFirrtl(R"(
circuit I :
  module Child :
    input clock : Clock
    output io : { flip in : UInt<8>, out : UInt<8> }
    io.out <= io.in
  module I :
    input clock : Clock
    output o : UInt<8>
    inst c of Child
    c.clock <= clock
    c.io is invalid
    o <= c.io.out
)");
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.tick();
  EXPECT_EQ(eng.peek("o"), 0u);  // invalidated input reads as zero
}

TEST(LowerAggregates, NodeAliasOfBundleExpands) {
  sim::SimIR ir = sim::buildFromFirrtl(R"(
circuit N :
  module N :
    input a : UInt<4>
    output o : UInt<4>
    wire w : { p : UInt<4>, q : UInt<4> }
    w.p <= a
    w.q <= not(a)
    node alias = w
    o <= alias.q
)");
  sim::FullCycleEngine eng(sim::CompiledDesign::compile(ir));
  eng.poke("a", 0b1010);
  eng.tick();
  EXPECT_EQ(eng.peek("o"), 0b0101u);
}

TEST(LowerAggregates, ErrorsOnUnsupportedShapes) {
  // Aggregate mem data-type.
  auto memCircuit = parseCircuit(R"(
circuit M :
  module M :
    input clock : Clock
    output o : UInt<8>
    mem t :
      data-type => UInt<8>[2]
      depth => 4
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    o <= UInt<8>(0)
)");
  EXPECT_THROW(lowerAggregates(*memCircuit), WidthError);
  // Aggregate connect from a non-reference expression.
  auto exprCircuit = parseCircuit(R"(
circuit E :
  module E :
    input s : UInt<1>
    output o : UInt<8>
    wire a : { x : UInt<8> }
    wire b : { x : UInt<8> }
    b.x <= UInt<8>(1)
    a <= mux(s, b, b)
    o <= a.x
)");
  EXPECT_THROW(lowerAggregates(*exprCircuit), WidthError);
}

}  // namespace
}  // namespace essent::firrtl
