// Lane-engine suite (`ctest -L lane`): SoA layout invariants, per-lane
// bit-identity against solo ActivityEngine runs under divergent stimulus,
// forced-tier SIMD equivalence (portable vs AVX2 vs AVX-512 must agree to
// the bit), early-stop lane retirement, snapshot/randomize compatibility
// with the scalar layout, and the SimFarm lane-group path (blocks,
// remainders, per-lane error fallback).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/activity_engine.h"
#include "core/lane_engine.h"
#include "core/lane_simd.h"
#include "core/sim_farm.h"
#include "designs/blocks.h"
#include "sim/compile.h"
#include "sim/engine_factory.h"
#include "sim/harness.h"

namespace {

using namespace essent;

std::shared_ptr<const sim::CompiledDesign> compileText(const std::string& firrtl) {
  return sim::CompiledDesign::compile(sim::buildFromFirrtl(firrtl));
}

std::shared_ptr<const core::CompiledCcss> ccssOf(
    const std::shared_ptr<const sim::CompiledDesign>& design) {
  return core::CompiledCcss::get(design, core::ScheduleOptions{});
}

// Divergent per-lane stimulus for GatedBanks: each lane selects a different
// (mostly idle) bank with its own data pattern, so lanes genuinely disagree
// on which partitions wake each cycle.
void driveBanksLane(sim::Engine& eng, uint64_t cycle, unsigned lane) {
  eng.poke("reset", cycle < 2 ? 1 : 0);
  eng.poke("bankSel", cycle % 7 == lane % 7 ? (cycle + lane) % 8 : 999);
  eng.poke("wdata", 1 + lane * 17 + cycle % 5);
}

// Every named signal of every lane, in hex, plus the lane's counters — a
// full bit-identity signature.
std::string laneSignature(sim::Engine& eng) {
  std::ostringstream ss;
  const sim::SimIR& ir = eng.ir();
  for (size_t s = 0; s < ir.signals.size(); s++) {
    if (ir.signals[s].name.empty()) continue;
    ss << ir.signals[s].name << "=" << eng.peekSigBV(static_cast<int32_t>(s)).toHexString()
       << "\n";
  }
  const sim::EngineStats& st = eng.stats();
  ss << "cycles=" << st.cycles << " ops=" << st.opsEvaluated
     << " checks=" << st.partitionChecks << " acts=" << st.partitionActivations
     << " cmp=" << st.outputComparisons << " trig=" << st.triggerSets
     << " chg=" << st.signalsChangedTotal << "\n";
  ss << "stopped=" << eng.stopped() << " exit=" << eng.exitCode() << "\n";
  ss << eng.printOutput();
  return ss.str();
}

void expectStatsEqual(const sim::EngineStats& a, const sim::EngineStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.opsEvaluated, b.opsEvaluated) << what;
  EXPECT_EQ(a.partitionChecks, b.partitionChecks) << what;
  EXPECT_EQ(a.partitionActivations, b.partitionActivations) << what;
  EXPECT_EQ(a.outputComparisons, b.outputComparisons) << what;
  EXPECT_EQ(a.triggerSets, b.triggerSets) << what;
  EXPECT_EQ(a.signalsChangedTotal, b.signalsChangedTotal) << what;
}

TEST(LaneLayout, PacksOneBitSignalsAndPadsStride) {
  auto design = compileText(designs::gatedBanksFirrtl(8, 16));
  for (unsigned lanes : {1u, 4u, 8u, 11u, 64u}) {
    core::LaneStateLayout lay =
        core::LaneStateLayout::build(design->ir, design->layout, lanes);
    EXPECT_EQ(lay.lanes, lanes);
    if (lanes == 1) {
      EXPECT_EQ(lay.stride, 1u);
    } else {
      EXPECT_EQ(lay.stride % 8, 0u) << "stride must stay SIMD-aligned";
      EXPECT_GE(lay.stride, lanes);
    }
    size_t packedCount = 0;
    for (size_t s = 0; s < design->ir.signals.size(); s++) {
      const uint32_t w = design->ir.signals[s].width;
      if (w <= 1) {
        EXPECT_TRUE(lay.isPacked(static_cast<int32_t>(s))) << design->ir.signals[s].name;
        packedCount++;
      } else {
        EXPECT_FALSE(lay.isPacked(static_cast<int32_t>(s))) << design->ir.signals[s].name;
      }
      EXPECT_LT(lay.off[s], lay.totalWords);
    }
    EXPECT_GT(packedCount, 0u) << "design has 1-bit nets (reset, when conditions)";
  }
}

TEST(LaneLayout, ProgramIsCachedPerStride) {
  auto design = compileText(designs::gatedBanksFirrtl(4, 8));
  auto a = core::LaneProgram::get(design, 8);
  auto b = core::LaneProgram::get(design, 8);
  EXPECT_EQ(a.get(), b.get()) << "same stride must hit the extension cache";
  auto c = core::LaneProgram::get(design, 64);
  EXPECT_NE(a.get(), c.get());
  // lanes 2..8 share stride 8, so they share one program too.
  auto d = core::LaneProgram::get(design, 2);
  EXPECT_EQ(a.get(), d.get());
}

TEST(LaneConformance, DivergentLanesBitIdenticalToSoloCcss) {
  auto design = compileText(designs::gatedBanksFirrtl(8, 16));
  auto ccss = ccssOf(design);
  for (unsigned lanes : {1u, 4u, 8u}) {
    core::LaneEngine group(ccss, lanes);
    std::vector<std::unique_ptr<core::ActivityEngine>> solo;
    for (unsigned l = 0; l < lanes; l++)
      solo.push_back(std::make_unique<core::ActivityEngine>(ccss));

    for (uint64_t c = 0; c < 300; c++) {
      for (unsigned l = 0; l < lanes; l++) {
        driveBanksLane(group.lane(l), c, l);
        driveBanksLane(*solo[l], c, l);
      }
      group.tick();
      for (unsigned l = 0; l < lanes; l++) solo[l]->tick();
      // Spot-check the output every cycle; full signature at the end.
      for (unsigned l = 0; l < lanes; l++)
        ASSERT_EQ(group.lane(l).peek("sum"), solo[l]->peek("sum"))
            << "lanes=" << lanes << " lane " << l << " cycle " << c;
    }
    for (unsigned l = 0; l < lanes; l++) {
      const std::string what =
          "lanes=" + std::to_string(lanes) + " lane " + std::to_string(l);
      EXPECT_EQ(laneSignature(group.lane(l)), laneSignature(*solo[l])) << what;
      expectStatsEqual(group.lane(l).stats(), solo[l]->stats(), what);
      EXPECT_DOUBLE_EQ(group.laneEffectiveActivity(l), solo[l]->effectiveActivity())
          << what;
    }
  }
}

TEST(LaneConformance, MemoriesMatchSoloIncludingLatencyOne) {
  // Same-cycle write+read against latency-0 and latency-1 memories, with
  // per-lane divergent addresses/enables (the per-lane SlowBV/MemRead path).
  auto design = compileText(R"(
circuit LaneMem :
  module LaneMem :
    input clock : Clock
    input reset : UInt<1>
    input addr : UInt<3>
    input wdata : UInt<8>
    input wen : UInt<1>
    output r0 : UInt<8>
    output r1 : UInt<8>
    mem m0 :
      data-type => UInt<8>
      depth => 8
      read-latency => 0
      write-latency => 1
      read-under-write => undefined
      reader => r
      writer => w
    m0.r.addr <= addr
    m0.r.en <= UInt<1>(1)
    m0.r.clk <= clock
    m0.w.addr <= addr
    m0.w.en <= wen
    m0.w.clk <= clock
    m0.w.data <= wdata
    m0.w.mask <= UInt<1>(1)
    mem m1 :
      data-type => UInt<8>
      depth => 8
      read-latency => 1
      write-latency => 1
      read-under-write => undefined
      reader => r
      writer => w
    m1.r.addr <= addr
    m1.r.en <= UInt<1>(1)
    m1.r.clk <= clock
    m1.w.addr <= addr
    m1.w.en <= wen
    m1.w.clk <= clock
    m1.w.data <= wdata
    m1.w.mask <= UInt<1>(1)
    r0 <= m0.r.data
    r1 <= m1.r.data
)");
  auto ccss = ccssOf(design);
  const unsigned lanes = 4;
  core::LaneEngine group(ccss, lanes);
  std::vector<std::unique_ptr<core::ActivityEngine>> solo;
  for (unsigned l = 0; l < lanes; l++)
    solo.push_back(std::make_unique<core::ActivityEngine>(ccss));

  auto drive = [](sim::Engine& e, uint64_t c, unsigned l) {
    e.poke("reset", 0);
    e.poke("addr", (c + l) % 8);
    e.poke("wdata", (17 * l + c) & 0xff);
    e.poke("wen", (c + l) % 3 != 0 ? 1 : 0);
  };
  for (uint64_t c = 0; c < 64; c++) {
    for (unsigned l = 0; l < lanes; l++) {
      drive(group.lane(l), c, l);
      drive(*solo[l], c, l);
    }
    group.tick();
    for (unsigned l = 0; l < lanes; l++) {
      solo[l]->tick();
      ASSERT_EQ(group.lane(l).peek("r0"), solo[l]->peek("r0")) << "lane " << l << " @" << c;
      ASSERT_EQ(group.lane(l).peek("r1"), solo[l]->peek("r1")) << "lane " << l << " @" << c;
    }
  }
  for (unsigned l = 0; l < lanes; l++)
    for (uint64_t a = 0; a < 8; a++) {
      EXPECT_EQ(group.lane(l).peekMem("m0", a), solo[l]->peekMem("m0", a));
      EXPECT_EQ(group.lane(l).peekMem("m1", a), solo[l]->peekMem("m1", a));
    }
}

TEST(LaneConformance, PrintfOutputIsPerLane) {
  auto design = compileText(R"(
circuit P :
  module P :
    input clock : Clock
    input v : UInt<8>
    input en : UInt<1>
    printf(clock, en, "v=%d\n", v)
)");
  auto ccss = ccssOf(design);
  const unsigned lanes = 3;
  core::LaneEngine group(ccss, lanes);
  std::vector<std::unique_ptr<core::ActivityEngine>> solo;
  for (unsigned l = 0; l < lanes; l++)
    solo.push_back(std::make_unique<core::ActivityEngine>(ccss));
  for (uint64_t c = 0; c < 10; c++) {
    for (unsigned l = 0; l < lanes; l++) {
      group.lane(l).poke("v", 10 * l + c);
      group.lane(l).poke("en", (c + l) % 2);
      solo[l]->poke("v", 10 * l + c);
      solo[l]->poke("en", (c + l) % 2);
    }
    group.tick();
    for (unsigned l = 0; l < lanes; l++) solo[l]->tick();
  }
  for (unsigned l = 0; l < lanes; l++) {
    EXPECT_EQ(group.lane(l).printOutput(), solo[l]->printOutput()) << "lane " << l;
    EXPECT_FALSE(group.lane(l).printOutput().empty());
  }
  EXPECT_NE(group.lane(0).printOutput(), group.lane(1).printOutput());
}

TEST(LaneRetire, EarlyStopFreezesOnlyThatLane) {
  // Each lane stops when its counter reaches a per-lane target; survivors
  // keep counting and the stopped lane's state freezes.
  auto design = compileText(R"(
circuit S :
  module S :
    input clock : Clock
    input reset : UInt<1>
    input target : UInt<8>
    output cnt : UInt<8>
    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    c <= tail(add(c, UInt<8>(1)), 1)
    cnt <= c
    stop(clock, eq(c, target), 3)
)");
  auto ccss = ccssOf(design);
  const unsigned lanes = 4;
  core::LaneEngine group(ccss, lanes);
  for (unsigned l = 0; l < lanes; l++) {
    group.lane(l).poke("reset", 0);
    group.lane(l).poke("target", 5 + 4 * l);  // stops at cycle 6, 10, 14, 18
  }
  EXPECT_EQ(group.liveMask(), 0xfu);

  uint64_t ticks = 0;
  while (group.liveMask() != 0 && ticks < 100) {
    group.tick();
    ticks++;
  }
  EXPECT_EQ(ticks, 18u) << "group runs until the last lane stops";
  for (unsigned l = 0; l < lanes; l++) {
    EXPECT_TRUE(group.lane(l).stopped()) << "lane " << l;
    EXPECT_EQ(group.lane(l).exitCode(), 3);
    EXPECT_EQ(group.lane(l).stats().cycles, 6u + 4 * l) << "lane " << l;
    // Identical to a solo run of the same stimulus — including the frozen
    // post-stop register state.
    core::ActivityEngine solo(ccss);
    solo.poke("reset", 0);
    solo.poke("target", 5 + 4 * l);
    sim::RunResult res = sim::runEngine(solo, 100);
    EXPECT_TRUE(res.stopped);
    EXPECT_EQ(res.cycles, group.lane(l).stats().cycles);
    EXPECT_EQ(group.lane(l).peek("cnt"), solo.peek("cnt")) << "lane " << l;
    expectStatsEqual(group.lane(l).stats(), solo.stats(), "lane " + std::to_string(l));
  }

  // Ticking an all-retired group is a no-op.
  const uint64_t before = group.groupTicks();
  group.tick();
  EXPECT_EQ(group.lane(0).stats().cycles, 6u);
  EXPECT_EQ(group.groupTicks(), before + 1);
}

TEST(LaneRetire, ExternalRetireFreezesState) {
  auto design = compileText(designs::counterFirrtl(8));
  auto ccss = ccssOf(design);
  core::LaneEngine group(ccss, 2);
  for (unsigned l = 0; l < 2; l++) {
    group.lane(l).poke("reset", 0);
    group.lane(l).poke("en", 1);
  }
  for (int i = 0; i < 5; i++) group.tick();
  const uint64_t frozen = group.lane(0).peek("count");
  group.retireLane(0);
  EXPECT_FALSE(group.laneLive(0));
  for (int i = 0; i < 5; i++) group.tick();
  EXPECT_EQ(group.lane(0).peek("count"), frozen) << "retired lane must not advance";
  EXPECT_EQ(group.lane(1).peek("count"), frozen + 5) << "live lane keeps counting";
  EXPECT_EQ(group.lane(0).stats().cycles, 5u);
  EXPECT_EQ(group.lane(1).stats().cycles, 10u);
}

TEST(LaneSimd, ForcedTiersAreBitIdentical) {
  auto design = compileText(designs::gatedBanksFirrtl(8, 32));
  auto ccss = ccssOf(design);
  std::vector<std::string> signatures;
  std::vector<std::string> backends;
  for (core::LaneSimdTier t : {core::LaneSimdTier::Portable, core::LaneSimdTier::Avx2,
                               core::LaneSimdTier::Avx512}) {
    core::laneSimdForceTier(t);
    core::LaneEngine group(ccss, 8);
    backends.push_back(group.simdBackend());
    for (uint64_t c = 0; c < 200; c++) {
      for (unsigned l = 0; l < 8; l++) driveBanksLane(group.lane(l), c, l);
      group.tick();
    }
    std::ostringstream sig;
    for (unsigned l = 0; l < 8; l++) sig << laneSignature(group.lane(l));
    signatures.push_back(sig.str());
  }
  core::laneSimdResetTier();
  ASSERT_EQ(signatures.size(), 3u);
  EXPECT_EQ(signatures[1], signatures[0]) << backends[1] << " vs " << backends[0];
  EXPECT_EQ(signatures[2], signatures[0]) << backends[2] << " vs " << backends[0];
  EXPECT_EQ(backends[0], "portable") << "forcing portable must always stick";
}

TEST(LaneSimd, TierNamesAndClamping) {
  EXPECT_STREQ(core::laneSimdTierName(core::LaneSimdTier::Portable), "portable");
  EXPECT_STREQ(core::laneSimdTierName(core::LaneSimdTier::Avx2), "avx2");
  EXPECT_STREQ(core::laneSimdTierName(core::LaneSimdTier::Avx512), "avx512");
  // Forcing a tier the build/CPU lacks clamps downward, never upward.
  core::laneSimdForceTier(core::LaneSimdTier::Avx512);
  core::LaneSimdTier got = core::laneSimdTier();
  EXPECT_TRUE(got == core::LaneSimdTier::Avx512 || got == core::LaneSimdTier::Avx2 ||
              got == core::LaneSimdTier::Portable);
  core::laneSimdForceTier(core::LaneSimdTier::Portable);
  EXPECT_EQ(core::laneSimdTier(), core::LaneSimdTier::Portable);
  core::laneSimdResetTier();
}

TEST(LaneView, TickThrowsAndAccessorsValidate) {
  auto design = compileText(designs::counterFirrtl(8));
  core::LaneEngine group(ccssOf(design), 2);
  EXPECT_THROW(group.lane(0).tick(), std::logic_error);
  EXPECT_THROW(group.lane(0).peekMem("nosuch", 0), std::out_of_range);
  EXPECT_THROW((void)group.lane(5), std::out_of_range);
  EXPECT_EQ(dynamic_cast<core::LaneView&>(group.lane(1)).laneIndex(), 1u);
}

TEST(LaneState, SnapshotsInterchangeWithScalarEngines) {
  auto design = compileText(designs::gatedBanksFirrtl(4, 16));
  auto ccss = ccssOf(design);
  core::LaneEngine group(ccss, 4);
  for (uint64_t c = 0; c < 50; c++) {
    for (unsigned l = 0; l < 4; l++) driveBanksLane(group.lane(l), c, l);
    group.tick();
  }
  // Lane snapshot -> scalar engine: same visible state.
  for (unsigned l = 0; l < 4; l++) {
    sim::Engine::Snapshot snap = group.lane(l).saveState();
    core::ActivityEngine scalar(ccss);
    scalar.restoreState(snap);
    EXPECT_EQ(scalar.peek("sum"), group.lane(l).peek("sum")) << "lane " << l;
  }
  // Scalar snapshot -> a different lane: state transplants across lanes.
  sim::Engine::Snapshot fromLane3 = group.lane(3).saveState();
  group.lane(0).restoreState(fromLane3);
  EXPECT_EQ(group.lane(0).peek("sum"), group.lane(3).peek("sum"));
  // A mismatched snapshot is rejected.
  sim::Engine::Snapshot bad = fromLane3;
  bad.vals.pop_back();
  EXPECT_THROW(group.lane(0).restoreState(bad), std::invalid_argument);
}

TEST(LaneState, RandomizeMatchesScalarDrawSequence) {
  auto design = compileText(designs::gatedBanksFirrtl(4, 16));
  auto ccss = ccssOf(design);
  core::LaneEngine group(ccss, 4);
  for (unsigned l = 0; l < 4; l++) {
    group.lane(l).randomizeState(42 + l);
    core::ActivityEngine scalar(ccss);
    scalar.randomizeState(42 + l);
    for (size_t s = 0; s < design->ir.signals.size(); s++)
      ASSERT_EQ(group.lane(l).peekSigBV(static_cast<int32_t>(s)).toHexString(),
                scalar.peekSigBV(static_cast<int32_t>(s)).toHexString())
          << "lane " << l << " signal " << design->ir.signals[s].name;
  }
}

TEST(LaneState, ResetStateRestoresFreshLane) {
  auto design = compileText(designs::counterFirrtl(8));
  auto ccss = ccssOf(design);
  core::LaneEngine group(ccss, 2);
  for (unsigned l = 0; l < 2; l++) {
    group.lane(l).poke("reset", 0);
    group.lane(l).poke("en", 1);
  }
  for (int i = 0; i < 10; i++) group.tick();
  EXPECT_GT(group.lane(0).peek("count"), 0u);
  group.lane(0).resetState();
  EXPECT_EQ(group.lane(0).peek("count"), 0u);
  EXPECT_EQ(group.lane(0).stats().cycles, 0u);
  EXPECT_TRUE(group.laneLive(0));
  // Lane 1 is untouched by lane 0's reset (CCSS output nodes lag the
  // register commit by one evaluation, so 10 ticks show 9).
  EXPECT_EQ(group.lane(1).peek("count"), 9u);
  // After reset, the lane tracks the same trajectory as a fresh solo run.
  group.lane(0).poke("reset", 0);
  group.lane(0).poke("en", 1);
  for (int i = 0; i < 3; i++) group.tick();
  core::ActivityEngine fresh(ccss);
  fresh.poke("reset", 0);
  fresh.poke("en", 1);
  for (int i = 0; i < 3; i++) fresh.tick();
  EXPECT_EQ(group.lane(0).peek("count"), fresh.peek("count"));
}

TEST(LaneCounters, MaskedSkipsAccountForIdleLanes) {
  // One lane active, seven idle: executed partitions carry mostly-empty
  // masks, so maskedLaneSkips must dominate and group-level skip counters
  // must reconcile with per-lane checks.
  auto design = compileText(designs::gatedBanksFirrtl(8, 16));
  auto ccss = ccssOf(design);
  core::LaneEngine group(ccss, 8);
  for (uint64_t c = 0; c < 100; c++) {
    for (unsigned l = 0; l < 8; l++) {
      group.lane(l).poke("reset", c < 2 ? 1 : 0);
      // Only lane 0 ever touches a real bank.
      group.lane(l).poke("bankSel", l == 0 ? c % 8 : 999);
      group.lane(l).poke("wdata", 7);
    }
    group.tick();
  }
  EXPECT_EQ(group.groupTicks(), 100u);
  EXPECT_GT(group.groupPartitionRuns(), 0u);
  EXPECT_GT(group.groupPartitionSkips(), 0u);
  EXPECT_GT(group.maskedLaneSkips(), 0u) << "idle lanes must ride along masked";
  // Lane 0 does more work than the idle lanes, and per-lane activity is
  // exact: idle lanes' activations stay at their solo-run level.
  EXPECT_GT(group.lane(0).stats().partitionActivations,
            group.lane(3).stats().partitionActivations);
  EXPECT_GT(group.laneEffectiveActivity(0), group.laneEffectiveActivity(3));
}

std::vector<core::FarmJob> laneFarmJobs(size_t n, uint64_t cycles) {
  std::vector<core::FarmJob> jobs(n);
  for (size_t i = 0; i < n; i++) {
    jobs[i].name = "job" + std::to_string(i);
    jobs[i].maxCycles = cycles;
    jobs[i].stimulus = [i](sim::Engine& eng, uint64_t cycle) {
      driveBanksLane(eng, cycle, static_cast<unsigned>(i));
    };
  }
  return jobs;
}

TEST(LaneFarm, GroupsPlusRemainderBitIdenticalToScalarFarm) {
  auto design = compileText(designs::gatedBanksFirrtl(8, 16));
  std::vector<core::FarmJob> jobs = laneFarmJobs(11, 200);  // 2 groups of 4 + 3 singles

  core::FarmOptions laneOpts;
  laneOpts.kind = sim::EngineKind::Lane;
  laneOpts.engine.lanes = 4;
  laneOpts.workers = 2;
  core::SimFarm laneFarm(design, laneOpts);
  core::FarmReport laneReport = laneFarm.run(jobs);
  ASSERT_TRUE(laneReport.allOk());

  core::FarmOptions scalarOpts;
  scalarOpts.workers = 2;
  core::SimFarm scalarFarm(design, scalarOpts);
  core::FarmReport scalarReport = scalarFarm.run(jobs);
  ASSERT_TRUE(scalarReport.allOk());

  ASSERT_EQ(laneReport.instances.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); i++) {
    const auto& a = laneReport.instances[i];
    const auto& b = scalarReport.instances[i];
    EXPECT_EQ(a.cycles, b.cycles) << i;
    EXPECT_EQ(a.outputs, b.outputs) << i;
    EXPECT_EQ(a.stats.opsEvaluated, b.stats.opsEvaluated) << i;
    EXPECT_EQ(a.stats.partitionActivations, b.stats.partitionActivations) << i;
    EXPECT_DOUBLE_EQ(a.effectiveActivity, b.effectiveActivity) << i;
  }
  EXPECT_EQ(laneReport.lane.lanes, 4u);
  EXPECT_EQ(laneReport.lane.groups, 2u);
  EXPECT_EQ(laneReport.lane.scalarFallbacks, 3u) << "remainder singles";
  EXPECT_FALSE(laneReport.lane.simdBackend.empty());
  EXPECT_GT(laneReport.lane.groupPartitionRuns, 0u);
  // Scalar farms report no lane section.
  EXPECT_EQ(scalarReport.lane.lanes, 0u);
}

TEST(LaneFarm, PerLaneErrorFallsBackToScalarRun) {
  auto design = compileText(designs::gatedBanksFirrtl(4, 16));
  std::vector<core::FarmJob> jobs = laneFarmJobs(4, 100);
  // Job 2 refuses to run on the lane engine but succeeds on the scalar
  // retry — the farm must deliver a clean result anyway.
  jobs[2].init = [](sim::Engine& eng) {
    if (std::string(eng.name()) == "essent-lane")
      throw std::runtime_error("lane allergy");
  };
  core::FarmOptions fo;
  fo.kind = sim::EngineKind::Lane;
  fo.engine.lanes = 4;
  core::SimFarm farm(design, fo);
  core::FarmReport report = farm.run(jobs);
  ASSERT_TRUE(report.allOk()) << (report.instances[2].error);
  EXPECT_GE(report.lane.scalarFallbacks, 1u);
  // And the fallback result still matches a solo scalar run.
  auto solo = sim::makeEngine(sim::EngineKind::Ccss, design);
  sim::RunResult res = sim::runEngine(*solo, 100, jobs[2].stimulus);
  EXPECT_EQ(report.instances[2].cycles, res.cycles);
  EXPECT_EQ(report.instances[2].stats.opsEvaluated, res.stats.opsEvaluated);
}

TEST(LaneFarm, UnrecoverableErrorIsTrappedPerJob) {
  auto design = compileText(designs::gatedBanksFirrtl(4, 16));
  std::vector<core::FarmJob> jobs = laneFarmJobs(4, 50);
  jobs[1].init = [](sim::Engine&) { throw std::runtime_error("always broken"); };
  core::FarmOptions fo;
  fo.kind = sim::EngineKind::Lane;
  fo.engine.lanes = 4;
  core::SimFarm farm(design, fo);
  core::FarmReport report = farm.run(jobs);
  EXPECT_FALSE(report.allOk());
  EXPECT_NE(report.instances[1].error.find("always broken"), std::string::npos);
  for (size_t i : {0u, 2u, 3u}) {
    EXPECT_TRUE(report.instances[i].error.empty()) << i;
    EXPECT_EQ(report.instances[i].cycles, 50u) << i;
  }
}

TEST(LaneBroadcast, MakeEngineWrapsGroupAndMatchesScalar) {
  auto design = compileText(designs::gatedBanksFirrtl(8, 16));
  sim::EngineOptions eo;
  eo.lanes = 8;
  auto lane = sim::makeEngine(sim::EngineKind::Lane, design, eo);
  auto* bc = dynamic_cast<core::LaneBroadcastEngine*>(lane.get());
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(bc->group().lanes(), 8u);

  auto scalar = sim::makeEngine(sim::EngineKind::Ccss, design);
  auto mismatch = sim::compareEngines(*scalar, *lane, 300, [](sim::Engine& e, uint64_t c) {
    driveBanksLane(e, c, 0);
  });
  EXPECT_FALSE(mismatch.has_value()) << mismatch->describe();
  EXPECT_DOUBLE_EQ(
      bc->effectiveActivity(),
      dynamic_cast<core::ActivityEngine*>(scalar.get())->effectiveActivity());
}

}  // namespace
