// essent-fuzz — differential FIRRTL fuzzer across all six execution paths
// (full-cycle reference, event-driven, CCSS, parallel CCSS, the SIMD lane
// engine, and the compiled codegen simulator). Generates seeded random circuits + stimulus,
// compares every output signal every cycle plus final register/memory
// state, shrinks failures with delta debugging, and saves reproducers.
//
// Usage:
//   essent_fuzz [--seed S] [--budget N] [--cycles N]
//               [--engines full,event,ccss,par,lane,codegen] [--threads N]
//               [--codegen-every N] [--wide-every N]
//               [--corpus DIR] [--no-shrink] [--timeout-ms N] [-v]
//   essent_fuzz --mode mutate [--seed S] [--budget N] [--max-mutations N]
//   essent_fuzz --replay CASESEED [other options]
//   essent_fuzz --replay-file CASE.fir [--stim CASE.stim]
//
// --mode mutate is the crash fuzzer: byte/token mutations of generated
// circuits pushed through the diag-collecting front end under resource
// ceilings; the only acceptable outcomes are clean builds or structured
// diagnostics — any escaped exception fails the run (and a signal or
// sanitizer abort fails it harder).
//
// Deterministic: the same --seed always generates the same circuits and
// verdicts; --replay CASESEED reproduces a single case from any campaign.
// Exit status: 0 when every case agrees, 1 on any divergence.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "fuzz/fuzzer.h"
#include "fuzz/mutator.h"
#include "sim/compile.h"
#include "support/strutil.h"

using namespace essent;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: essent_fuzz [--seed S] [--budget N] [--cycles N]\n"
               "                   [--engines full,event,ccss,par,lane,codegen] [--threads N]\n"
               "                   [--codegen-every N] [--wide-every N]\n"
               "                   [--corpus DIR] [--no-shrink] [--timeout-ms N] [-v]\n"
               "                   [--mode differential|mutate] [--max-mutations N]\n"
               "                   [--replay CASESEED | --replay-file F.fir [--stim F.stim]]\n");
  std::exit(2);
}

std::string readFileOrDie(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "essent_fuzz: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::FuzzConfig cfg;
  std::optional<uint64_t> replaySeed;
  std::string replayFile, stimFile;
  std::string mode = "differential";
  uint32_t maxMutations = 8;

  for (int i = 1; i < argc; i++) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--seed") cfg.seed = std::strtoull(next(), nullptr, 0);
    else if (a == "--budget") cfg.budget = std::strtoull(next(), nullptr, 0);
    else if (a == "--cycles") cfg.cycles = std::strtoull(next(), nullptr, 0);
    else if (a == "--threads") cfg.parThreads = static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
    else if (a == "--codegen-every") cfg.codegenEvery = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    else if (a == "--wide-every") cfg.wideEvery = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    else if (a == "--corpus") cfg.corpusDir = next();
    else if (a == "--no-shrink") cfg.shrinkFailures = false;
    else if (a == "--shrink-attempts") cfg.shrinkAttempts = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    else if (a == "-v" || a == "--verbose") cfg.verbose = true;
    else if (a == "--mode") mode = next();
    else if (a == "--max-mutations") maxMutations = static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
    else if (a == "--timeout-ms") cfg.subprocessTimeoutMs = std::strtoll(next(), nullptr, 0);
    else if (a == "--replay") replaySeed = std::strtoull(next(), nullptr, 0);
    else if (a == "--replay-file") replayFile = next();
    else if (a == "--stim") stimFile = next();
    else if (a == "--engines") {
      cfg.engines.clear();
      for (const std::string& tok : splitString(next(), ',')) {
        fuzz::EngineKind k;
        if (!fuzz::parseEngineKind(trimString(tok), k)) {
          std::fprintf(stderr, "essent_fuzz: unknown engine '%s'\n", tok.c_str());
          usage();
        }
        cfg.engines.push_back(k);
      }
    } else {
      usage();
    }
  }

  if (mode == "mutate") {
    fuzz::MutateConfig mc;
    mc.seed = cfg.seed;
    mc.budget = cfg.budget;
    mc.maxMutations = maxMutations;
    mc.verbose = cfg.verbose;
    fuzz::MutateSummary sum = fuzz::runMutateCampaign(mc, stdout);
    return sum.failed() ? 1 : 0;
  }
  if (mode != "differential") {
    std::fprintf(stderr, "essent_fuzz: unknown mode '%s'\n", mode.c_str());
    usage();
  }

  if (!replayFile.empty()) {
    // Re-check a saved reproducer. Without --stim, drive a deterministic
    // default stimulus derived from the campaign seed.
    std::string fir = readFileOrDie(replayFile);
    fuzz::CaseResult cr;
    if (!stimFile.empty()) {
      fuzz::Stimulus stim = fuzz::Stimulus::parse(readFileOrDie(stimFile));
      cr = fuzz::replayCase(fir, stim, cfg, stdout);
    } else {
      sim::SimIR ir;
      try {
        ir = sim::buildFromFirrtl(fir);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "essent_fuzz: %s\n", e.what());
        return 1;
      }
      fuzz::Stimulus stim = fuzz::randomStimulus(ir, cfg.seed, cfg.cycles, 0.5);
      cr = fuzz::replayCase(fir, stim, cfg, stdout);
    }
    return cr.failed() ? 1 : 0;
  }

  if (replaySeed) {
    cfg.verbose = true;
    // Replay ignores the codegen sampling: if codegen is in the engine set
    // and the case is not wide, it runs (maximum scrutiny on a known case).
    fuzz::FuzzConfig rc = cfg;
    rc.codegenEvery = 1;
    fuzz::CaseResult cr = fuzz::runFuzzCase(*replaySeed, rc, stdout);
    if (!cr.failed()) {
      std::printf("replay seed=%llu: engines agree%s\n",
                  static_cast<unsigned long long>(*replaySeed),
                  cr.codegenChecked ? " (codegen included)" : "");
      return 0;
    }
    if (!cr.buildError.empty())
      std::printf("replay seed=%llu: BUILD ERROR: %s\n",
                  static_cast<unsigned long long>(*replaySeed), cr.buildError.c_str());
    if (cr.divergence)
      std::printf("replay seed=%llu: DIVERGENCE\n%s\n",
                  static_cast<unsigned long long>(*replaySeed),
                  cr.divergence->describe().c_str());
    std::printf("--- reproducing FIRRTL ---\n%s\n",
                cr.shrunkFir.empty() ? cr.fir.c_str() : cr.shrunkFir.c_str());
    return 1;
  }

  fuzz::FuzzSummary sum = fuzz::runFuzzCampaign(cfg, stdout);
  if (sum.failed()) {
    std::printf("FUZZ FAILED: %llu/%llu cases diverged; replay with --replay <seed>\n",
                static_cast<unsigned long long>(sum.failures),
                static_cast<unsigned long long>(sum.cases));
    return 1;
  }
  std::printf("fuzz clean: %llu cases, digest %016llx\n",
              static_cast<unsigned long long>(sum.cases),
              static_cast<unsigned long long>(sum.digest));
  return 0;
}
