// essent-fuzz — differential fuzzer for the tool flow: generates random
// closed designs, runs them in lock step on the full-cycle (reference),
// event-driven, and CCSS engines across several partitioner settings, and
// reports any divergence with the reproducing FIRRTL.
//
// Usage:  essent_fuzz [numSeeds] [cycles] [--wide] [--start SEED]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/activity_engine.h"
#include "designs/blocks.h"
#include "sim/builder.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "sim/harness.h"
#include "support/rng.h"

using namespace essent;

namespace {

sim::StimulusFn fuzzStimulus(uint64_t seed, double toggleP) {
  auto held =
      std::make_shared<std::unordered_map<const sim::Engine*, std::unordered_map<int, uint64_t>>>();
  return [seed, held, toggleP](sim::Engine& e, uint64_t cycle) {
    auto& mine = (*held)[&e];
    int idx = 0;
    for (int32_t in : e.ir().inputs) {
      const auto& sig = e.ir().signals[static_cast<size_t>(in)];
      idx++;
      if (sig.name == "reset") {
        e.poke("reset", cycle < 2);
        continue;
      }
      Rng draw(seed ^ (cycle * 0x9e3779b97f4a7c15ULL) ^ (static_cast<uint64_t>(idx) << 32));
      auto [it, inserted] = mine.emplace(idx, 0);
      if (inserted || draw.nextChance(toggleP)) it->second = draw.next();
      e.poke(sig.name, it->second);
    }
  };
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t numSeeds = 50, cycles = 150, start = 1;
  bool wide = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--wide") == 0) wide = true;
    else if (std::strcmp(argv[i], "--start") == 0 && i + 1 < argc)
      start = std::strtoull(argv[++i], nullptr, 0);
    else if (numSeeds == 50) numSeeds = std::strtoull(argv[i], nullptr, 0);
    else cycles = std::strtoull(argv[i], nullptr, 0);
  }

  int failures = 0;
  for (uint64_t seed = start; seed < start + numSeeds; seed++) {
    designs::RandomDesignConfig cfg;
    cfg.numNodes = 80;
    cfg.useWide = wide;
    if (wide) cfg.maxWidth = 90;
    std::string text = designs::randomDesignFirrtl(seed, cfg);
    double toggleP = (seed % 10 == 0) ? 1.0 : 1.0 / static_cast<double>(1 + seed % 7);
    try {
      sim::SimIR ir = sim::buildFromFirrtl(text);
      auto check = [&](sim::Engine& other, const char* tag) {
        sim::FullCycleEngine ref(ir);
        auto m = sim::compareEngines(ref, other, cycles, fuzzStimulus(seed, toggleP));
        if (m) {
          failures++;
          std::printf("FAIL seed=%llu engine=%s: %s\n",
                      static_cast<unsigned long long>(seed), tag, m->describe().c_str());
          std::printf("--- reproducing FIRRTL ---\n%s\n", text.c_str());
        }
      };
      sim::EventDrivenEngine ev(ir);
      check(ev, "event-driven");
      for (uint32_t cp : {2u, 8u, 64u}) {
        core::ScheduleOptions so;
        so.partition.smallThreshold = cp;
        core::ActivityEngine act(ir, so);
        check(act, cp == 2 ? "ccss-cp2" : cp == 8 ? "ccss-cp8" : "ccss-cp64");
      }
      core::ScheduleOptions noElide;
      noElide.stateElision = false;
      core::ActivityEngine actNe(ir, noElide);
      check(actNe, "ccss-noelide");
    } catch (const std::exception& e) {
      failures++;
      std::printf("FAIL seed=%llu (exception): %s\n--- FIRRTL ---\n%s\n",
                  static_cast<unsigned long long>(seed), e.what(), text.c_str());
    }
    if ((seed - start + 1) % 10 == 0)
      std::printf("... %llu/%llu seeds done, %d failures\n",
                  static_cast<unsigned long long>(seed - start + 1),
                  static_cast<unsigned long long>(numSeeds), failures);
  }
  std::printf("%s: %llu seeds x %llu cycles, %d failures\n",
              failures ? "FUZZ FAILED" : "fuzz clean",
              static_cast<unsigned long long>(numSeeds),
              static_cast<unsigned long long>(cycles), failures);
  return failures ? 1 : 0;
}
