// essentd — the simulation-as-a-service daemon (docs/DAEMON.md).
//
// Serves compile/run requests over length-prefixed JSON frames on a unix
// socket and/or a loopback TCP port, multiplexing them onto shared compiled
// designs (content-addressed cache) and the in-process engines/SimFarm.
//
// Usage:
//   essentd [--socket PATH] [--tcp PORT] [options]
//
// Options:
//   --socket PATH         unix listener (removed+rebound on start)
//   --tcp PORT            TCP listener on 127.0.0.1 (0 = ephemeral; the
//                         chosen port is printed on startup)
//   --workers N           request-serving threads (default 2)
//   --queue N             bounded admission queue capacity (default 16);
//                         a full queue sheds connections with E0609
//   --deadline-ms N       per-request wall budget (default 30000; 0 = off)
//   --max-cycles N        per-request cycle ceiling, batch included
//                         (default 50000000; 0 = off)
//   --max-frame BYTES     frame payload ceiling (default 16 MiB)
//   --cache N             compiled-design cache capacity (default 64)
//   --farm-workers N      SimFarm lanes for batch requests (default 1)
//   --retry-after-ms N    backpressure hint carried in E0609/E0610
//   --allow-shutdown      honor {"op": "shutdown"} from clients
//   --test-hooks          honor ping.sleep_ms (tests/bench only)
//   --chaos               enable fault injection (drops, slow reads,
//                         disconnects, injected E0612 failures)
//   --chaos-seed S        chaos RNG seed (default 1; pinned seeds replay)
//   --metrics-json FILE   write the metrics registry + server stats as JSON
//                         during drain, before exit
//
// Lifecycle: SIGTERM/SIGINT begin a graceful drain — stop accepting, answer
// queued-but-unserved connections with E0610, let in-flight requests finish
// under their deadlines, flush metrics, exit 0.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/server.h"

using namespace essent;

namespace {

serve::Server* g_server = nullptr;

extern "C" void drainHandler(int) {
  // requestDrain is async-signal-safe: one write() on an internal pipe.
  if (g_server) g_server->requestDrain();
}

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "essentd: %s\n", msg);
  std::fprintf(stderr,
               "usage: essentd [--socket PATH] [--tcp PORT] [--workers N] [--queue N]\n"
               "               [--deadline-ms N] [--max-cycles N] [--max-frame BYTES]\n"
               "               [--cache N] [--farm-workers N] [--retry-after-ms N]\n"
               "               [--allow-shutdown] [--test-hooks]\n"
               "               [--chaos] [--chaos-seed S] [--metrics-json FILE]\n"
               "at least one of --socket / --tcp is required\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions opts;
  std::string metricsPath;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(("missing value after " + arg).c_str());
      return argv[i];
    };
    if (arg == "--socket") opts.unixPath = next();
    else if (arg == "--tcp") opts.tcpPort = static_cast<int>(std::strtol(next().c_str(), nullptr, 0));
    else if (arg == "--workers")
      opts.workers = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--queue")
      opts.queueCapacity = static_cast<size_t>(std::strtoull(next().c_str(), nullptr, 0));
    else if (arg == "--deadline-ms") opts.requestDeadlineMs = std::strtoll(next().c_str(), nullptr, 0);
    else if (arg == "--max-cycles") opts.maxCyclesPerRequest = std::strtoull(next().c_str(), nullptr, 0);
    else if (arg == "--max-frame")
      opts.maxFrameBytes = static_cast<size_t>(std::strtoull(next().c_str(), nullptr, 0));
    else if (arg == "--cache")
      opts.cacheCapacity = static_cast<size_t>(std::strtoull(next().c_str(), nullptr, 0));
    else if (arg == "--farm-workers")
      opts.farmWorkers = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--retry-after-ms") opts.retryAfterMs = std::strtoll(next().c_str(), nullptr, 0);
    else if (arg == "--allow-shutdown") opts.allowRemoteShutdown = true;
    else if (arg == "--test-hooks") opts.enableTestHooks = true;
    else if (arg == "--chaos") opts.chaos.enabled = true;
    else if (arg == "--chaos-seed") opts.chaos.seed = std::strtoull(next().c_str(), nullptr, 0);
    else if (arg == "--metrics-json") metricsPath = next();
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option " + arg).c_str());
  }
  if (opts.unixPath.empty() && opts.tcpPort < 0) usage("no listener configured");

  serve::Server server(opts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "essentd: %s\n", e.what());
    return 2;
  }
  g_server = &server;

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = drainHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // belt and braces on top of MSG_NOSIGNAL

  if (!opts.unixPath.empty())
    std::fprintf(stderr, "essentd: listening on unix:%s\n", opts.unixPath.c_str());
  if (opts.tcpPort >= 0)
    std::fprintf(stderr, "essentd: listening on tcp:127.0.0.1:%u\n", server.boundTcpPort());
  if (opts.chaos.enabled)
    std::fprintf(stderr, "essentd: CHAOS MODE enabled (seed %llu)\n",
                 static_cast<unsigned long long>(opts.chaos.seed));
  std::fflush(stderr);

  server.waitDrained();

  serve::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "essentd: drained; served %llu request(s) (%llu failed), "
               "shed %llu, drained %llu connection(s)\n",
               static_cast<unsigned long long>(stats.requestsServed),
               static_cast<unsigned long long>(stats.requestsFailed),
               static_cast<unsigned long long>(stats.connectionsSheded),
               static_cast<unsigned long long>(stats.connectionsDrained));
  if (!metricsPath.empty()) {
    obs::Json doc = obs::Json::object();
    doc["server"] = stats.toJson();
    doc["metrics"] = obs::MetricsRegistry::global().toJson();
    try {
      obs::writeJsonFile(metricsPath, doc);
      std::fprintf(stderr, "essentd: wrote metrics to %s\n", metricsPath.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "essentd: cannot write metrics: %s\n", e.what());
    }
  }
  g_server = nullptr;
  return 0;
}
