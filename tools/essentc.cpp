// essentc — command-line driver for the ESSENT reproduction, the analogue
// of the paper's simulator generator binary.
//
// Usage:
//   essentc [options] design.fir
//
// Modes (default --stats):
//   --stats               design + partitioning statistics
//   --emit-cpp            generate a standalone C++ simulator to stdout/-o
//   --run N               simulate N cycles and report outputs
//   --compile-run N       generate + host-compile + execute N cycles, and
//                         cross-check the outputs against the interpreter
//   --dot                 emit the partition graph as Graphviz DOT
//
// Options:
//   -o FILE               output file for --emit-cpp / --dot
//   --engine E            full | event | ccss | par    (--run; default ccss;
//                         long aliases full-cycle|event-driven|essent-ccss|
//                         essent-ccss-par also accepted — sim::parseEngineKind
//                         is the single name table shared with essent_fuzz)
//   --baseline            emit/run with all optimizations disabled
//   --no-hints            disable branch hints in generated code
//   --cp N                partitioner small threshold C_p (default 8)
//   --scale N             elaborate the generated socScaled(N) TinySoC
//                         instead of reading a design file (N=1 ~130k
//                         netlist nodes, N=8 crosses one million); for
//                         the million-node elaboration study, see
//                         docs/SCALING.md
//   --poke NAME=VALUE     drive an input for the whole --run (repeatable)
//   --vcd FILE            dump a VCD waveform during --run
//   --profile FILE        write a JSON runtime profile after --run
//                         (per-partition counters + activity timeline;
//                         ccss engine only)
//   --profile-window N    timeline bucket width in cycles (default 256)
//   --threads N           worker threads for --run with the ccss engine
//                         (default $ESSENT_THREADS, else 1; N > 1 selects
//                         the statically-placed BSP parallel engine,
//                         clamped to hardware concurrency and to the
//                         placement's useful width with W0601 warnings);
//                         with --batch, the farm worker count instead
//   --batch N             with --run: simulate N concurrent instances that
//                         share one compiled schedule (core::SimFarm) and
//                         report aggregate farm throughput
//   --stimulus-dir DIR    with --batch: drive instance i from the i-th
//                         (sorted, wrapping) stimulus file in DIR; the file
//                         format is the fuzzer's Stimulus serialization
//   --stats-json FILE     write design/partitioning/timing stats as JSON
//                         (gains a "placement" section when --threads > 1,
//                         and "parallel" + "metrics" sections when
//                         tracing / metrics are active)
//   --trace FILE          record an execution trace and write it as Chrome
//                         trace-event JSON (open in https://ui.perfetto.dev)
//   --trace-detail D      phase | wave | partition (default wave); each
//                         level adds events, see docs/OBSERVABILITY.md
//   --trace-ring-kb N     per-thread trace ring size in KB (default 3072,
//                         ~64k events); raise it when the summary reports
//                         truncated: true
//   --trace-summary       print the post-run attribution report (per-thread
//                         busy/barrier/idle fractions, per-step imbalance);
//                         implies recording even without --trace
//   --top-hot N           after --run, print the N hottest partitions
//   --diag-json FILE      write all diagnostics as JSON (machine-readable
//                         mirror of the stderr rendering)
//   --timeout-ms N        wall-clock watchdog for each --compile-run
//                         subprocess (compile and execute); a process that
//                         exceeds it is killed (SIGTERM, then SIGKILL)
//   --max-ir-ops N        refuse designs lowering to more than N IR ops
//   --max-sim-mem BYTES   refuse designs whose simulation state exceeds this
//   --max-cycles N        refuse --run/--compile-run requests beyond N cycles
//   --deadline-ms N       overall wall-clock budget for build + simulation
//
// Exit codes:
//   0    success
//   1    input rejected with diagnostics (parse/width/build/resource errors)
//   2    usage error or internal error
//   124  wall-clock timeout (--timeout-ms subprocess watchdog or
//        --deadline-ms overall budget)
//   128+N  interrupted by signal N during --compile-run (130 = SIGINT,
//        143 = SIGTERM); the signal is relayed to the compiler/simulator
//        process group and scratch directories are still cleaned up
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/emitter.h"
#include "core/activity_engine.h"
#include "core/lane_engine.h"
#include "core/parallel_engine.h"
#include "core/placement.h"
#include "core/obs_export.h"
#include "core/sim_farm.h"
#include "designs/tinysoc.h"
#include "diag/diag.h"
#include "fuzz/stimulus.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"
#include "obs/trace.h"
#include "sim/compile.h"
#include "sim/engine_factory.h"
#include "sim/vcd.h"
#include "support/resource_guard.h"
#include "support/strutil.h"
#include "support/subprocess.h"
#include "support/tempdir.h"

using namespace essent;

namespace {

struct Args {
  enum class Mode { Stats, EmitCpp, Run, CompileRun, Dot } mode = Mode::Stats;
  std::string inputPath;
  std::string outputPath;
  sim::EngineKind engineKind = sim::EngineKind::Ccss;
  bool baseline = false;
  bool allowCombLoops = false;
  bool hints = true;
  uint32_t cp = 8;
  uint64_t runCycles = 0;
  std::vector<std::pair<std::string, uint64_t>> pokes;
  std::string vcdPath;
  std::string profilePath;
  std::string statsJsonPath;
  std::string diagJsonPath;
  std::string tracePath;
  obs::TraceDetail traceDetail = obs::TraceDetail::Wave;
  uint32_t traceRingKb = 0;  // per-thread ring size in KB; 0 = default
  bool traceSummary = false;
  uint32_t profileWindow = 256;
  uint32_t topHot = 0;
  uint32_t threads = 0;  // 0 = unset: ESSENT_THREADS, else 1
  uint32_t batch = 0;    // --run instance count; 0 = solo (no farm)
  uint32_t lanes = 0;    // SIMD lanes for the lane engine; 0 = unset
  std::string stimulusDir;
  int64_t timeoutMs = 0;  // --compile-run subprocess watchdog; 0 = off
  bool injectHang = false;  // undocumented: watchdog self-test hook
  uint32_t shards = 1;      // --emit-cpp: split output into N translation units
  uint32_t scale = 0;       // --scale: generate socScaled(N) instead of reading a file
  support::ResourceLimits limits;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "essentc: %s\n", msg);
  std::fprintf(stderr,
               "usage: essentc [--stats | --emit-cpp | --run N | --compile-run N | --dot]\n"
               "               [-o FILE] [--shards N] [--allow-comb-loops]\n"
               "               [--engine full|event|ccss|par|lane] [--baseline] [--no-hints]\n"
               "               [--cp N] [--poke NAME=VALUE]... [--vcd FILE]\n"
               "               [--profile FILE] [--profile-window N] [--threads N]\n"
               "               [--batch N] [--lanes N] [--stimulus-dir DIR]\n"
               "               [--stats-json FILE] [--top-hot N] [--diag-json FILE]\n"
               "               [--trace FILE] [--trace-detail phase|wave|partition]\n"
               "               [--trace-ring-kb N] [--trace-summary]\n"
               "               [--timeout-ms N] [--max-ir-ops N] [--max-sim-mem BYTES]\n"
               "               [--max-cycles N] [--deadline-ms N]\n"
               "               (design.fir | --scale N)\n"
               "exit codes: 0 success; 1 input rejected with diagnostics;\n"
               "            2 usage or internal error; 124 wall-clock timeout;\n"
               "            128+N interrupted by signal N during --compile-run\n");
  std::exit(2);
}

Args parseArgs(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(("missing value after " + arg).c_str());
      return argv[i];
    };
    if (arg == "--stats") a.mode = Args::Mode::Stats;
    else if (arg == "--emit-cpp") a.mode = Args::Mode::EmitCpp;
    else if (arg == "--dot") a.mode = Args::Mode::Dot;
    else if (arg == "--run") {
      a.mode = Args::Mode::Run;
      a.runCycles = std::strtoull(next().c_str(), nullptr, 0);
    } else if (arg == "--compile-run") {
      a.mode = Args::Mode::CompileRun;
      a.runCycles = std::strtoull(next().c_str(), nullptr, 0);
    } else if (arg == "-o") a.outputPath = next();
    else if (arg == "--engine") {
      std::string token = next();
      if (!sim::parseEngineKind(token, a.engineKind))
        usage(("unknown engine '" + token + "' (expected " + sim::engineKindList() + ")").c_str());
    }
    else if (arg == "--baseline") a.baseline = true;
    else if (arg == "--shards")
      a.shards = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--allow-comb-loops") a.allowCombLoops = true;
    else if (arg == "--no-hints") a.hints = false;
    else if (arg == "--cp") a.cp = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--poke") {
      std::string kv = next();
      size_t eq = kv.find('=');
      if (eq == std::string::npos) usage("--poke expects NAME=VALUE");
      a.pokes.emplace_back(kv.substr(0, eq), std::strtoull(kv.c_str() + eq + 1, nullptr, 0));
    } else if (arg == "--vcd") a.vcdPath = next();
    else if (arg == "--profile") a.profilePath = next();
    else if (arg == "--profile-window")
      a.profileWindow = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--stats-json") a.statsJsonPath = next();
    else if (arg == "--diag-json") a.diagJsonPath = next();
    else if (arg == "--trace") a.tracePath = next();
    else if (arg == "--trace-detail") {
      std::string token = next();
      if (!obs::parseTraceDetail(token, a.traceDetail))
        usage(("unknown trace detail '" + token + "' (expected phase|wave|partition)").c_str());
    }
    else if (arg == "--trace-ring-kb") {
      a.traceRingKb = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
      if (a.traceRingKb == 0) usage("--trace-ring-kb expects a positive integer");
    }
    else if (arg == "--trace-summary") a.traceSummary = true;
    else if (arg == "--top-hot")
      a.topHot = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--threads") {
      a.threads = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
      if (a.threads == 0) usage("--threads expects a positive integer");
    }
    else if (arg == "--batch") {
      a.batch = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
      if (a.batch == 0) usage("--batch expects a positive instance count");
    }
    else if (arg == "--lanes") {
      a.lanes = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
      if (a.lanes == 0 || a.lanes > 64) usage("--lanes expects a count in [1, 64]");
    }
    else if (arg == "--stimulus-dir") a.stimulusDir = next();
    else if (arg == "--scale") {
      a.scale = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
      if (a.scale == 0) usage("--scale expects a positive factor");
    }
    else if (arg == "--timeout-ms") a.timeoutMs = std::strtoll(next().c_str(), nullptr, 0);
    else if (arg == "--max-ir-ops") a.limits.maxIrOps = std::strtoull(next().c_str(), nullptr, 0);
    else if (arg == "--max-sim-mem")
      a.limits.maxSimMemBytes = std::strtoull(next().c_str(), nullptr, 0);
    else if (arg == "--max-cycles") a.limits.maxCycles = std::strtoull(next().c_str(), nullptr, 0);
    else if (arg == "--deadline-ms")
      a.limits.wallDeadlineMs = std::strtoll(next().c_str(), nullptr, 0);
    else if (arg == "--inject-hang") a.injectHang = true;
    else if (arg == "--help" || arg == "-h") usage();
    else if (!arg.empty() && arg[0] == '-') usage(("unknown option " + arg).c_str());
    else if (a.inputPath.empty()) a.inputPath = arg;
    else usage("multiple input files");
  }
  if (a.inputPath.empty() && a.scale == 0) usage("no input file (or use --scale N)");
  if (!a.inputPath.empty() && a.scale > 0)
    usage("--scale generates its own design; drop the input file");
  // --lanes selects the SIMD lane engine: with the default ccss kind it
  // upgrades the kind (like --threads upgrades ccss to par); an explicit
  // non-CCSS kind conflicts.
  if (a.lanes > 0 && a.mode != Args::Mode::Run) usage("--lanes requires --run");
  if (a.lanes > 0) {
    if (a.engineKind == sim::EngineKind::Ccss) a.engineKind = sim::EngineKind::Lane;
    else if (a.engineKind != sim::EngineKind::Lane)
      usage("--lanes requires the ccss or lane engine");
  }
  if (a.engineKind == sim::EngineKind::Lane && a.lanes == 0) a.lanes = 4;
  bool ccssKind =
      a.engineKind == sim::EngineKind::Ccss || a.engineKind == sim::EngineKind::CcssPar;
  bool laneKind = a.engineKind == sim::EngineKind::Lane;
  if ((!a.profilePath.empty() || a.topHot > 0) && a.mode != Args::Mode::Run)
    usage("--profile / --top-hot require --run");
  if ((!a.profilePath.empty() || a.topHot > 0) && !ccssKind)
    usage("--profile / --top-hot require the ccss engine (partition profiles)");
  if (a.injectHang && a.mode != Args::Mode::CompileRun)
    usage("--inject-hang requires --compile-run");
  if (a.mode == Args::Mode::Run && a.engineKind == sim::EngineKind::Codegen)
    usage("engine 'codegen' runs out of process; use --compile-run N instead of --run");
  if (a.batch > 0 && a.mode != Args::Mode::Run) usage("--batch requires --run");
  if (!a.stimulusDir.empty() && a.batch == 0) usage("--stimulus-dir requires --batch");
  if (a.batch > 0 && (!a.vcdPath.empty() || !a.profilePath.empty() || a.topHot > 0))
    usage("--batch does not support --vcd / --profile / --top-hot (per-instance output)");
  if (a.threads == 0) {
    if (const char* env = std::getenv("ESSENT_THREADS")) {
      long v = std::strtol(env, nullptr, 10);
      if (v >= 1) a.threads = static_cast<uint32_t>(v);
    }
    if (a.threads == 0) a.threads = 1;
  }
  if (a.batch == 0) {
    if (a.threads > 1 && a.mode == Args::Mode::Run && !ccssKind && !laneKind)
      usage("--threads > 1 requires the ccss engine");
    // `--engine ccss --threads N>1` has always meant the wave-parallel
    // engine; keep that spelling equivalent to the explicit `--engine par`.
    if (a.engineKind == sim::EngineKind::Ccss && a.threads > 1)
      a.engineKind = sim::EngineKind::CcssPar;
  }
  // Under --batch, --threads sets the farm worker count and every instance
  // runs the kind as selected (serial unless `par` was explicit).
  return a;
}

std::string readFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "essentc: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void writeOut(const Args& a, const std::string& text) {
  if (a.outputPath.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream f(a.outputPath);
    f << text;
    std::fprintf(stderr, "essentc: wrote %zu bytes to %s\n", text.size(),
                 a.outputPath.c_str());
  }
}

// --emit-cpp --shards N: writes <base>.h plus <base>_<k>.cpp next to the
// -o path (whose .cpp/.h extension, if any, is stripped to form the base).
int writeSharded(const Args& a, const sim::SimIR& ir, const core::CondPartSchedule* sched,
                 const codegen::CodegenOptions& co) {
  if (a.outputPath.empty()) {
    std::fprintf(stderr, "essentc: --shards requires -o FILE (one file per unit)\n");
    return 2;
  }
  std::string base = a.outputPath;
  for (const char* ext : {".cpp", ".cc", ".h"}) {
    size_t n = std::strlen(ext);
    if (base.size() > n && base.compare(base.size() - n, n, ext) == 0) {
      base.resize(base.size() - n);
      break;
    }
  }
  // The stem names the generated files and the units' #include line; the
  // directory part of -o only decides where they are written.
  size_t dirEnd = base.find_last_of('/');
  std::string dir = dirEnd == std::string::npos ? "" : base.substr(0, dirEnd + 1);
  std::string stem = dirEnd == std::string::npos ? base : base.substr(dirEnd + 1);
  codegen::ShardedCpp sh = codegen::emitCppSharded(ir, sched, co, a.shards, stem);
  auto writeFile = [&](const std::string& name, const std::string& text) {
    std::string path = dir + name;
    std::ofstream f(path);
    f << text;
    std::fprintf(stderr, "essentc: wrote %zu bytes to %s\n", text.size(), path.c_str());
  };
  writeFile(sh.headerName, sh.header);
  for (size_t k = 0; k < sh.units.size(); k++) writeFile(sh.unitNames[k], sh.units[k]);
  return 0;
}

// Assembles the --stats-json document. The partitioning sections are
// present only when a CCSS schedule exists (ccss engine or --stats mode);
// the engine section only when a simulation actually ran.
obs::Json statsJsonDoc(const Args& a, const sim::SimIR& ir,
                       const core::CondPartSchedule* sched, const sim::Engine* eng) {
  obs::Json doc = obs::Json::object();
  obs::Json options = obs::Json::object();
  options["cp"] = a.cp;
  options["baseline"] = a.baseline;
  options["engine"] = sim::engineKindName(a.engineKind);
  options["threads"] = a.threads;
  if (a.batch > 0) options["batch"] = a.batch;
  if (a.lanes > 0) options["lanes"] = a.lanes;
  doc["options"] = std::move(options);
  doc["design"] = core::designSummaryJson(ir);
  if (sched) {
    doc["partitioning"] = core::partitionStatsJson(sched->partitionStats);
    doc["schedule"] = core::scheduleSummaryJson(*sched);
  }
  // Static BSP placement shape. The live engine's placement when one ran
  // parallel; otherwise (e.g. --stats with --threads N) a fresh build over
  // the schedule, so compile-only runs can inspect super-step coarsening.
  if (auto* par = dynamic_cast<const core::ParallelActivityEngine*>(eng)) {
    doc["placement"] = core::placementReportJson(par->placement());
  } else if (sched && a.threads > 1) {
    core::PlacementOptions popts;
    popts.threads = a.threads;
    doc["placement"] = core::placementReportJson(core::buildPlacement(*sched, popts));
  }
  if (eng) {
    obs::Json e = obs::Json::object();
    e["name"] = eng->name();
    e["stats"] = core::engineStatsJson(eng->stats());
    if (auto* act = dynamic_cast<const core::ActivityEngine*>(eng))
      e["effective_activity"] = act->effectiveActivity();
    if (auto* lbe = dynamic_cast<const core::LaneBroadcastEngine*>(eng)) {
      e["effective_activity"] = lbe->effectiveActivity();
      const core::LaneEngine& g = lbe->group();
      obs::Json lane = obs::Json::object();
      lane["lanes"] = g.lanes();
      lane["simd_backend"] = g.simdBackend();
      lane["group_ticks"] = g.groupTicks();
      lane["group_partition_runs"] = g.groupPartitionRuns();
      lane["group_partition_skips"] = g.groupPartitionSkips();
      lane["masked_lane_skips"] = g.maskedLaneSkips();
      e["lane"] = std::move(lane);
    }
    doc["engine"] = std::move(e);
  }
  doc["phase_timings"] = obs::phaseTimingsJson();
  // Thread attribution from the live trace session (quiescent by now: the
  // simulation finished before stats are assembled) and any lock-free
  // metrics recorded along the way (farm latency histograms etc.).
  if (obs::TraceSession* s = obs::TraceSession::current())
    doc["parallel"] = s->summary().toJson();
  if (!obs::MetricsRegistry::global().empty())
    doc["metrics"] = obs::MetricsRegistry::global().toJson();
  return doc;
}

void writeJsonReport(const char* what, const std::string& path, const obs::Json& doc) {
  obs::writeJsonFile(path, doc);
  std::fprintf(stderr, "essentc: wrote %s to %s\n", what, path.c_str());
}

int runStats(const Args& a, const sim::SimIR& ir) {
  core::Netlist nl = core::Netlist::build(ir);
  core::PartitionOptions po;
  po.smallThreshold = a.cp;
  core::Partitioning p = core::partitionNetlist(nl, po);
  core::CondPartSchedule sched = core::buildScheduleFrom(nl, p, true);
  std::printf("design %s\n", ir.name.c_str());
  std::printf("  IR ops          %zu\n", ir.ops.size());
  std::printf("  registers       %zu\n", ir.regs.size());
  std::printf("  memories        %zu\n", ir.mems.size());
  std::printf("  inputs/outputs  %zu / %zu\n", ir.inputs.size(), ir.outputs.size());
  std::printf("netlist graph\n");
  std::printf("  nodes           %d\n", nl.g.numNodes());
  std::printf("  edges           %lld\n", static_cast<long long>(nl.g.numEdges()));
  std::printf("partitioning (C_p = %u)\n", a.cp);
  std::printf("  MFFC partitions %zu\n", p.stats.initialParts);
  std::printf("  phase A merges  %zu  -> %zu partitions\n", p.stats.mergesA,
              p.stats.afterSingleParent);
  std::printf("  phase B merges  %zu  -> %zu partitions\n", p.stats.mergesB,
              p.stats.afterSmallSiblings);
  std::printf("  phase C merges  %zu  -> %zu partitions (%zu rejected by external-path "
              "test)\n",
              p.stats.mergesC, p.stats.finalParts, p.stats.rejectedMerges);
  std::printf("  cut edges       %lld\n", static_cast<long long>(p.stats.cutEdges));
  std::printf("  still small     %zu\n", p.stats.smallRemaining);
  std::printf("schedule\n");
  std::printf("  elided regs     %zu / %zu\n", sched.elidedRegs, ir.regs.size());
  std::printf("  elided mem wr   %zu\n", sched.elidedMemWrites);
  std::printf("  part outputs    %zu\n", sched.totalOutputs);
  if (!a.statsJsonPath.empty())
    writeJsonReport("stats", a.statsJsonPath, statsJsonDoc(a, ir, &sched, nullptr));
  return 0;
}

int runSim(const Args& a, std::shared_ptr<const sim::CompiledDesign> design,
           diag::DiagEngine& de, const support::ResourceGuard& guard) {
  const sim::SimIR& ir = design->ir;
  guard.checkCycles(a.runCycles);
  // Single construction path: the factory resolves the kind, builds (or
  // reuses) the kind-specific compiled structure, and applies the profiling
  // knobs. Graceful degradation (thread clamping, spawn-failure fallback to
  // the serial engine) surfaces through `warnings` as W0601 diagnostics.
  sim::EngineOptions eo;
  eo.threads = a.threads;
  eo.partitionSmallThreshold = a.cp;
  if (a.lanes > 0) eo.lanes = a.lanes;
  eo.profiling = !a.profilePath.empty() || a.topHot > 0;
  eo.profileWindow = a.profileWindow;
  std::vector<std::string> warnings;
  eo.warnings = &warnings;
  std::unique_ptr<sim::Engine> eng = sim::makeEngine(a.engineKind, std::move(design), eo);
  for (const std::string& w : warnings) de.warning("W0601", w, {});

  for (const auto& [name, value] : a.pokes) eng->poke(name, value);

  auto* act = dynamic_cast<core::ActivityEngine*>(eng.get());

  std::unique_ptr<std::ofstream> vcdFile;
  std::unique_ptr<sim::VcdWriter> vcd;
  if (!a.vcdPath.empty()) {
    vcdFile = std::make_unique<std::ofstream>(a.vcdPath);
    vcd = std::make_unique<sim::VcdWriter>(*vcdFile, *eng);
  }

  uint64_t c = 0;
  {
    // Structural wrapper (None: the engine's own tick/wave spans carry the
    // Busy attribution for this interval).
    obs::TraceSpan span("sim.run", obs::TraceCat::None, obs::TraceDetail::Phase);
    for (; c < a.runCycles && !eng->stopped(); c++) {
      eng->tick();
      if (vcd) vcd->sample(c + 1);
      if ((c & 1023) == 1023) guard.checkDeadline();
    }
  }
  std::fputs(eng->printOutput().c_str(), stdout);
  std::printf("ran %llu cycles on %s engine%s\n", static_cast<unsigned long long>(c),
              eng->name(), eng->stopped() ? strfmt(" (stopped, exit %d)", eng->exitCode()).c_str() : "");
  for (int32_t o : ir.outputs)
    std::printf("  %s = 0x%s\n", ir.signals[static_cast<size_t>(o)].name.c_str(),
                eng->peekSigBV(o).toHexString().c_str());
  if (act) std::printf("effective activity factor: %.4f\n", act->effectiveActivity());
  if (auto* lbe = dynamic_cast<core::LaneBroadcastEngine*>(eng.get()))
    std::printf("effective activity factor: %.4f (%u lanes, %s backend)\n",
                lbe->effectiveActivity(), lbe->group().lanes(), lbe->group().simdBackend());

  if (act && a.topHot > 0) {
    auto hot = core::topHotPartitions(act->profile(), a.topHot);
    uint64_t totalOps = act->stats().opsEvaluated;
    std::printf("hottest partitions (of %zu, by ops evaluated):\n",
                act->schedule().numPartitions());
    std::printf("  %4s %6s %12s %12s %12s %7s\n", "rank", "part", "activations", "opsEval",
                "wakes", "share");
    for (size_t rank = 0; rank < hot.size(); rank++) {
      const core::PartitionProfile& pp = act->profile().parts[hot[rank]];
      double share = totalOps ? 100.0 * static_cast<double>(pp.opsEvaluated) /
                                    static_cast<double>(totalOps)
                              : 0.0;
      std::printf("  %4zu %6zu %12llu %12llu %12llu %6.2f%%\n", rank + 1, hot[rank],
                  static_cast<unsigned long long>(pp.activations),
                  static_cast<unsigned long long>(pp.opsEvaluated),
                  static_cast<unsigned long long>(pp.wakesIssued), share);
    }
  }

  if (!a.profilePath.empty()) {
    obs::Json doc = core::activityProfileJson(*act);
    doc["phase_timings"] = obs::phaseTimingsJson();
    writeJsonReport("profile", a.profilePath, doc);
  }
  if (!a.statsJsonPath.empty())
    writeJsonReport("stats", a.statsJsonPath,
                    statsJsonDoc(a, ir, act ? &act->schedule() : nullptr, eng.get()));
  return 0;
}

// --run --batch N: N concurrent instances of the design sharing one
// compiled schedule through core::SimFarm. Pokes apply to every instance;
// --stimulus-dir assigns instance i the i-th (sorted, wrapping) stimulus
// file. Prints the aggregate farm throughput plus one line per instance;
// --stats-json gains a "farm" section (core::farmReportJson).
int runBatch(const Args& a, std::shared_ptr<const sim::CompiledDesign> design,
             diag::DiagEngine& de, const support::ResourceGuard& guard) {
  const sim::SimIR& ir = design->ir;
  // The cycle budget covers the whole batch (saturating multiply).
  uint64_t total = a.runCycles;
  if (a.runCycles != 0 && a.batch > UINT64_MAX / a.runCycles) total = UINT64_MAX;
  else total = a.runCycles * a.batch;
  guard.checkCycles(total);

  struct NamedStim {
    std::string name;
    fuzz::Stimulus stim;
  };
  std::vector<NamedStim> stims;
  if (!a.stimulusDir.empty()) {
    std::vector<std::filesystem::path> files;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(a.stimulusDir, ec))
      if (entry.is_regular_file()) files.push_back(entry.path());
    if (ec) {
      std::fprintf(stderr, "essentc: cannot read --stimulus-dir %s: %s\n",
                   a.stimulusDir.c_str(), ec.message().c_str());
      return 1;
    }
    std::sort(files.begin(), files.end());
    for (const auto& p : files) {
      try {
        stims.push_back({p.filename().string(), fuzz::Stimulus::parse(readFile(p.string()))});
      } catch (const std::exception& e) {
        std::fprintf(stderr, "essentc: bad stimulus file %s: %s\n", p.c_str(), e.what());
        return 1;
      }
    }
    if (stims.empty()) {
      std::fprintf(stderr, "essentc: --stimulus-dir %s holds no stimulus files\n",
                   a.stimulusDir.c_str());
      return 1;
    }
  }

  core::FarmOptions fo;
  fo.kind = a.engineKind;
  fo.workers = a.threads;
  fo.engine.partitionSmallThreshold = a.cp;
  if (a.lanes > 0) fo.engine.lanes = a.lanes;
  // SHARED wall budget: N concurrent instances check --deadline-ms inside
  // their run loops, so the batch stops within one check interval of the
  // deadline instead of overshooting N-fold and only failing afterwards.
  fo.guard = &guard;
  std::vector<core::FarmJob> jobs(a.batch);
  for (uint32_t i = 0; i < a.batch; i++) {
    core::FarmJob& job = jobs[i];
    job.maxCycles = a.runCycles;
    job.init = [&a](sim::Engine& eng) {
      for (const auto& [name, value] : a.pokes) eng.poke(name, value);
    };
    if (!stims.empty()) {
      const NamedStim& ns = stims[i % stims.size()];
      job.name = ns.name;
      const fuzz::Stimulus* s = &ns.stim;
      job.stimulus = [s](sim::Engine& eng, uint64_t c) {
        if (c < s->numCycles()) s->apply(eng, c);
      };
    }
  }

  core::SimFarm farm(std::move(design), fo);
  core::FarmReport report = farm.run(jobs);
  guard.checkDeadline();
  for (const std::string& w : report.warnings) de.warning("W0601", w, {});

  std::printf("farm: %zu instances on %s engine, %u worker%s\n", report.instances.size(),
              sim::engineKindName(report.kind), report.workers,
              report.workers == 1 ? "" : "s");
  if (report.lane.lanes > 0)
    std::printf("  lanes %u (%s backend): %llu group%s, %llu scalar fallback%s\n",
                report.lane.lanes, report.lane.simdBackend.c_str(),
                static_cast<unsigned long long>(report.lane.groups),
                report.lane.groups == 1 ? "" : "s",
                static_cast<unsigned long long>(report.lane.scalarFallbacks),
                report.lane.scalarFallbacks == 1 ? "" : "s");
  int failures = 0;
  for (const core::FarmInstanceResult& r : report.instances) {
    if (!r.error.empty()) {
      std::printf("  %-12s ERROR: %s\n", r.name.c_str(), r.error.c_str());
      failures++;
      continue;
    }
    std::printf("  %-12s %llu cycles%s", r.name.c_str(),
                static_cast<unsigned long long>(r.cycles),
                r.stopped ? strfmt(" (stopped, exit %d)", r.exitCode).c_str() : "");
    if (r.effectiveActivity > 0) std::printf(", effective activity %.4f", r.effectiveActivity);
    std::printf("\n");
  }
  std::printf("farm wall %.4f s, %.1f instances/s, %.0f cycles/s aggregate\n",
              report.wallSeconds, report.instancesPerSec, report.aggregateCyclesPerSec);

  if (!a.statsJsonPath.empty()) {
    obs::Json doc = statsJsonDoc(a, ir, nullptr, nullptr);
    doc["farm"] = core::farmReportJson(report);
    writeJsonReport("stats", a.statsJsonPath, doc);
  }
  return failures ? 1 : 0;
}

// Generates the CCSS simulator, compiles it with the host toolchain, runs
// it for the requested cycles with the pokes applied, and cross-checks
// every output port against the in-process interpreter. Both subprocesses
// run under the --timeout-ms watchdog; a timeout exits 124.
int runCompileRun(const Args& a, std::shared_ptr<const sim::CompiledDesign> design,
                  const support::ResourceGuard& guard) {
  const sim::SimIR& ir = design->ir;
  guard.checkCycles(a.runCycles);
  // Ctrl-C / SIGTERM during the subprocess phases must kill the compiler or
  // generated-simulator process group AND still unwind through this frame so
  // the TempDir below is removed. Installed here (not in main) so plain
  // --run keeps the default immediate-exit disposition.
  support::installSignalRelay();
  core::ScheduleOptions so;
  so.partition.smallThreshold = a.cp;
  core::CondPartSchedule sched = core::buildSchedule(core::Netlist::build(ir), so);
  codegen::CodegenOptions co;
  co.ccss = !a.baseline;
  co.branchHints = a.hints;
  std::string code =
      codegen::emitCpp(ir, co.ccss ? &sched : nullptr, co);

  // RAII scratch space: removed on every exit path (success, compile
  // failure, early errors) unless explicitly kept for debugging.
  support::TempDir dir("essentc_cr_XXXXXX");
  std::string src = dir.file("sim.cpp");
  {
    std::ofstream f(src);
    f << code;
    f << "\nint main() {\n  essent_gen::Simulator sim;\n";
    if (a.injectHang) f << "  for (;;) {}\n";  // watchdog self-test
    for (const auto& [name2, value] : a.pokes) {
      int32_t sig = ir.findSignal(name2);
      if (sig < 0) {
        std::fprintf(stderr, "essentc: no signal named '%s'\n", name2.c_str());
        return 1;
      }
      f << "  sim." << codegen::memberName(ir, sig) << " = " << value << "ull;\n";
    }
    f << "  for (unsigned long long c = 0; c < " << a.runCycles
      << "ull && !sim.stopped_; c++) sim.eval();\n";
    for (int32_t o : ir.outputs)
      f << "  std::printf(\"" << ir.signals[static_cast<size_t>(o)].name
        << "=%llx\\n\", (unsigned long long)sim."
        << codegen::memberName(ir, o) << ");\n";
    f << "  return sim.exit_code_;\n}\n";
  }
  support::RunOptions ro;
  ro.timeoutMs = a.timeoutMs;
  std::string bin = dir.file("sim");
  std::string cmd =
      "c++ -std=c++20 -O2 -o " + support::shellQuote(bin) + " " + support::shellQuote(src);
  std::fprintf(stderr, "essentc: compiling generated simulator (%zu bytes)...\n",
               code.size());
  support::ExecResult cc;
  {
    obs::TraceSpan span("compile-run.cc", obs::TraceCat::Busy, obs::TraceDetail::Phase);
    cc = support::runShell(cmd, ro);
  }
  if (cc.interrupted) {
    std::fprintf(stderr, "essentc: host compilation %s\n", cc.describe().c_str());
    return 128 + support::interruptSignal();
  }
  if (cc.timedOut) {
    std::fprintf(stderr, "essentc: host compilation %s (source kept at %s)\n",
                 cc.describe().c_str(), src.c_str());
    dir.keep();
    return 124;
  }
  if (!cc.ok()) {
    std::fprintf(stderr, "essentc: host compilation failed (%s; source kept at %s)\n",
                 cc.describe().c_str(), src.c_str());
    dir.keep();
    return 1;
  }
  std::string outFile = dir.file("out.txt");
  support::ExecResult run;
  {
    obs::TraceSpan span("compile-run.exec", obs::TraceCat::Busy, obs::TraceDetail::Phase);
    run = support::runShell(
        support::shellQuote(bin) + " > " + support::shellQuote(outFile), ro);
  }
  if (run.interrupted) {
    std::fprintf(stderr, "essentc: compiled simulator %s\n", run.describe().c_str());
    return 128 + support::interruptSignal();
  }
  if (run.timedOut) {
    std::fprintf(stderr, "essentc: compiled simulator %s\n", run.describe().c_str());
    return 124;
  }

  // Interpreter cross-check.
  core::ActivityEngine eng(core::CompiledCcss::compile(std::move(design), so));
  for (const auto& [name2, value] : a.pokes) eng.poke(name2, value);
  for (uint64_t c = 0; c < a.runCycles && !eng.stopped(); c++) {
    eng.tick();
    if ((c & 1023) == 1023) {
      guard.checkDeadline();
      if (support::interruptRequested()) return 128 + support::interruptSignal();
    }
  }

  // The generated main() returns the design's stop exit code, so a nonzero
  // status is a failure only when the interpreter disagrees (or the process
  // died abnormally).
  int wantExit = eng.stopped() ? eng.exitCode() : 0;
  if (!run.ran || !run.exited) {
    std::fprintf(stderr, "essentc: compiled simulator did not run cleanly (%s; kept at %s)\n",
                 run.describe().c_str(), bin.c_str());
    dir.keep();
    return 1;
  }
  if (run.exitCode != wantExit) {
    std::fprintf(stderr,
                 "essentc: compiled simulator exit status %d disagrees with the interpreter "
                 "(expected %d)\n",
                 run.exitCode, wantExit);
    return 1;
  }

  std::ifstream out(outFile);
  std::string line;
  int mismatches = 0;
  while (std::getline(out, line)) {
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      std::fputs((line + "\n").c_str(), stdout);  // design printf output
      continue;
    }
    std::string sig = line.substr(0, eq);
    if (ir.findSignal(sig) < 0) {
      std::fputs((line + "\n").c_str(), stdout);
      continue;
    }
    std::string compiled = line.substr(eq + 1);
    std::string interp = eng.peekBV(sig).toHexString();
    bool ok = compiled == interp;
    mismatches += !ok;
    std::printf("  %s = 0x%s %s\n", sig.c_str(), compiled.c_str(),
                ok ? "(matches interpreter)" : ("(INTERPRETER SAYS 0x" + interp + ")").c_str());
  }
  std::printf("compiled simulator ran %llu cycles; %s\n",
              static_cast<unsigned long long>(a.runCycles),
              mismatches ? "OUTPUT MISMATCH vs interpreter" : "outputs match the interpreter");
  return mismatches ? 1 : 0;
}

int runDot(const Args& a, const sim::SimIR& ir) {
  core::Netlist nl = core::Netlist::build(ir);
  core::PartitionOptions po;
  po.smallThreshold = a.cp;
  core::Partitioning p = core::partitionNetlist(nl, po);
  std::string dot = "digraph partitions {\n";
  for (size_t i = 0; i < p.members.size(); i++)
    dot += strfmt("  p%zu [label=\"%zu (%zu)\"];\n", i, i, p.members[i].size());
  for (graph::NodeId v = 0; v < p.partGraph.numNodes(); v++)
    for (graph::NodeId w : p.partGraph.outNeighbors(v)) dot += strfmt("  p%d -> p%d;\n", v, w);
  dot += "}\n";
  writeOut(a, dot);
  return 0;
}

// Renders collected diagnostics to stderr (with an "essentc: N error(s)"
// trailer) and writes the --diag-json mirror. Called on every exit path
// that reaches the front end, including success with warnings only.
void flushDiagnostics(const Args& a, const diag::DiagEngine& de) {
  if (!de.diagnostics().empty()) {
    std::fputs(de.render().c_str(), stderr);
    std::fprintf(stderr, "essentc: %zu error(s), %zu warning(s)\n", de.errorCount(),
                 de.warningCount());
  }
  if (!a.diagJsonPath.empty()) writeJsonReport("diagnostics", a.diagJsonPath, de.toJson());
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parseArgs(argc, argv);
  diag::DiagEngine de;
  // The trace session covers everything from elaboration to teardown and
  // outlives every engine/pool, matching the session lifetime contract in
  // obs/trace.h. --trace-summary without --trace records but writes no file.
  std::unique_ptr<obs::TraceSession> trace;
  if (!a.tracePath.empty() || a.traceSummary) {
    obs::TraceOptions to;
    to.detail = a.traceDetail;
    if (a.traceRingKb > 0)
      to.ringCapacity = std::max<size_t>(
          1024, (static_cast<size_t>(a.traceRingKb) * 1024) / sizeof(obs::TraceEvent));
    trace = std::make_unique<obs::TraceSession>(to);
    trace->install();
    trace->nameThread("main");
  }
  int rc = 0;
  try {
    std::string text;
    if (a.scale > 0) {
      text = designs::tinySoCFirrtl(designs::socScaled(a.scale));
      de.setSource(strfmt("<socScaled(%u)>", a.scale), text);
    } else {
      text = readFile(a.inputPath);
      de.setSource(a.inputPath, text);
    }
    // The deadline clock starts here and covers elaboration + simulation.
    support::ResourceGuard guard(a.limits);
    sim::CompileOptions copts;
    if (a.baseline) copts.build.constProp = copts.build.cse = copts.build.dce = false;
    copts.build.allowCombLoops = a.allowCombLoops;
    copts.limits = a.limits;
    std::shared_ptr<const sim::CompiledDesign> design = sim::compileDesign(text, copts, de);
    if (!design) {
      rc = 1;
    } else {
      const sim::SimIR& ir = design->ir;
      switch (a.mode) {
        case Args::Mode::Stats:
          rc = runStats(a, ir);
          break;
        case Args::Mode::Run:
          rc = a.batch > 0 ? runBatch(a, std::move(design), de, guard)
                           : runSim(a, std::move(design), de, guard);
          break;
        case Args::Mode::CompileRun:
          rc = runCompileRun(a, std::move(design), guard);
          break;
        case Args::Mode::Dot:
          rc = runDot(a, ir);
          break;
        case Args::Mode::EmitCpp: {
          codegen::CodegenOptions co;
          co.ccss = !a.baseline;
          co.branchHints = a.hints;
          core::CondPartSchedule sched;
          if (co.ccss) {
            core::ScheduleOptions so;
            so.partition.smallThreshold = a.cp;
            sched = core::buildSchedule(core::Netlist::build(ir), so);
          }
          if (a.shards > 1) {
            rc = writeSharded(a, ir, co.ccss ? &sched : nullptr, co);
          } else {
            writeOut(a, codegen::emitCpp(ir, co.ccss ? &sched : nullptr, co));
            rc = 0;
          }
          break;
        }
      }
    }
  } catch (const support::ResourceExhausted& e) {
    de.error(e.code(), e.what(), {});
    rc = e.code() == "E0504" ? 124 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "essentc: internal error: %s\n", e.what());
    flushDiagnostics(a, de);
    return 2;
  }
  if (trace) {
    // Stop recording before reading: every engine (and its pool) created in
    // the mode handlers has been destroyed, so the buffers are quiescent.
    trace->uninstall();
    if (!a.tracePath.empty()) {
      obs::writeJsonFile(a.tracePath, trace->toJson());
      std::fprintf(stderr, "essentc: wrote trace (%llu events, %llu dropped) to %s\n",
                   static_cast<unsigned long long>(trace->eventCount()),
                   static_cast<unsigned long long>(trace->droppedCount()),
                   a.tracePath.c_str());
    }
    if (a.traceSummary) std::fputs(trace->summary().render().c_str(), stdout);
  }
  flushDiagnostics(a, de);
  return rc;
}
