// essent_client — wire client for essentd (docs/DAEMON.md).
//
// One-shot mode builds a single request, sends it with retry/backoff, and
// pretty-prints the response. Campaign mode (--campaign N) replays a
// deterministic seeded mix of valid and malformed traffic and verifies the
// daemon's survival contract: every outcome is either a structured
// ok/E06xx response or a tolerated transport cut (chaos mode), and the
// daemon stays reachable throughout.
//
// Usage:
//   essent_client (--socket PATH | --tcp HOST:PORT) [options]
//
// Options:
//   --op OP               ping|compile|run|status|evict|shutdown (default ping)
//   --design FILE         FIRRTL source to send as "design"
//   --design-hash H       content address for run-by-hash / evict
//   --cycles N            run: tick budget
//   --batch N             run: farm instance count
//   --poke NAME=VALUE     run: input value (repeatable)
//   --engine K            full|event|ccss|par|lane
//   --threads N, --cp N, --baseline, --lanes N   engine options
//   --sleep-ms N          ping test hook (server must run --test-hooks)
//   --retries N           transport retry attempts (default 3)
//   --backoff-ms N        initial retry backoff, doubled per attempt with
//                         jitter; E0609/E0610 responses honor the server's
//                         retry_after_ms hint instead (default 50)
//   --timeout-ms N        per-frame read timeout (default 30000)
//   --campaign N          chaos campaign with N cases
//   --seed S              campaign RNG seed (default 1)
//   --quiet               suppress the response body (envelope only)
//
// Exit codes:
//   0  ok response (campaign: every case structured, daemon alive)
//   1  daemon answered with an error response (one-shot mode)
//   2  usage error
//   3  transport failure after all retries (daemon unreachable/dead)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/protocol.h"
#include "support/socket.h"
#include "support/strutil.h"

using namespace essent;

namespace {

struct Args {
  std::string unixPath;
  std::string tcpHost;
  uint16_t tcpPort = 0;
  std::string op = "ping";
  std::string designFile;
  std::string designHash;
  uint64_t cycles = 0;
  uint32_t batch = 0;
  std::vector<std::pair<std::string, uint64_t>> pokes;
  std::string engine;
  uint32_t threads = 0;
  uint32_t cp = 0;
  uint32_t lanes = 0;
  bool baseline = false;
  uint64_t sleepMs = 0;
  unsigned retries = 3;
  int64_t backoffMs = 50;
  int64_t timeoutMs = 30'000;
  uint64_t campaign = 0;
  uint64_t seed = 1;
  bool quiet = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "essent_client: %s\n", msg);
  std::fprintf(stderr,
               "usage: essent_client (--socket PATH | --tcp HOST:PORT)\n"
               "                     [--op ping|compile|run|status|evict|shutdown]\n"
               "                     [--design FILE] [--design-hash H] [--cycles N]\n"
               "                     [--batch N] [--poke NAME=VALUE]... [--engine K]\n"
               "                     [--threads N] [--cp N] [--lanes N] [--baseline]\n"
               "                     [--sleep-ms N] [--retries N] [--backoff-ms N]\n"
               "                     [--timeout-ms N] [--campaign N] [--seed S] [--quiet]\n"
               "exit codes: 0 ok; 1 error response; 2 usage; 3 transport failure\n");
  std::exit(2);
}

Args parseArgs(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(("missing value after " + arg).c_str());
      return argv[i];
    };
    if (arg == "--socket") a.unixPath = next();
    else if (arg == "--tcp") {
      std::string hp = next();
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos) usage("--tcp expects HOST:PORT");
      a.tcpHost = hp.substr(0, colon);
      a.tcpPort = static_cast<uint16_t>(std::strtoul(hp.c_str() + colon + 1, nullptr, 0));
    } else if (arg == "--op") a.op = next();
    else if (arg == "--design") a.designFile = next();
    else if (arg == "--design-hash") a.designHash = next();
    else if (arg == "--cycles") a.cycles = std::strtoull(next().c_str(), nullptr, 0);
    else if (arg == "--batch")
      a.batch = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--poke") {
      std::string kv = next();
      size_t eq = kv.find('=');
      if (eq == std::string::npos) usage("--poke expects NAME=VALUE");
      a.pokes.emplace_back(kv.substr(0, eq), std::strtoull(kv.c_str() + eq + 1, nullptr, 0));
    } else if (arg == "--engine") a.engine = next();
    else if (arg == "--threads")
      a.threads = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--cp") a.cp = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--lanes")
      a.lanes = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--baseline") a.baseline = true;
    else if (arg == "--sleep-ms") a.sleepMs = std::strtoull(next().c_str(), nullptr, 0);
    else if (arg == "--retries")
      a.retries = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 0));
    else if (arg == "--backoff-ms") a.backoffMs = std::strtoll(next().c_str(), nullptr, 0);
    else if (arg == "--timeout-ms") a.timeoutMs = std::strtoll(next().c_str(), nullptr, 0);
    else if (arg == "--campaign") a.campaign = std::strtoull(next().c_str(), nullptr, 0);
    else if (arg == "--seed") a.seed = std::strtoull(next().c_str(), nullptr, 0);
    else if (arg == "--quiet") a.quiet = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option " + arg).c_str());
  }
  if (a.unixPath.empty() && a.tcpHost.empty()) usage("no --socket or --tcp target");
  return a;
}

uint64_t nextRand(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

support::Socket connect(const Args& a) {
  if (!a.unixPath.empty()) return support::connectUnix(a.unixPath);
  return support::connectTcp(a.tcpHost, a.tcpPort);
}

// One framed round trip on a fresh connection. Returns nullopt on any
// transport-level failure (connect refusal, torn frame, timeout).
std::optional<obs::Json> roundTrip(const Args& a, const std::string& payload) {
  try {
    support::Socket conn = connect(a);
    // A write failure does NOT mean there is no response: a shed at the
    // door (E0609) or a drain refusal (E0610) is written and closed at
    // accept time, which can race our request write — the EPIPE arrives
    // while the structured error is already sitting in our receive
    // buffer. Read it anyway so the retry_after_ms hint isn't lost.
    bool wrote = support::writeFrame(conn.fd(), payload);
    std::string body;
    support::FrameStatus st =
        support::readFrame(conn.fd(), body, 64u << 20, a.timeoutMs);
    if (st != support::FrameStatus::Ok) return std::nullopt;
    (void)wrote;
    return obs::Json::parse(body);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// Retrying round trip: transport failures back off exponentially with
// jitter; E0609/E0610 responses honor the server's retry_after_ms hint.
// Returns nullopt when every attempt failed at the transport level.
std::optional<obs::Json> sendWithRetry(const Args& a, const obs::Json& doc,
                                       uint64_t& rngState) {
  std::string payload = doc.dump(0);
  int64_t backoff = std::max<int64_t>(1, a.backoffMs);
  for (unsigned attempt = 0;; attempt++) {
    std::optional<obs::Json> resp = roundTrip(a, payload);
    if (resp) {
      std::optional<serve::ResponseEnvelope> env = serve::parseResponseEnvelope(*resp);
      bool retryable =
          env && !env->ok &&
          (env->errorCode == serve::kErrOverloaded || env->errorCode == serve::kErrDraining);
      if (!retryable || attempt >= a.retries) return resp;
      int64_t wait = env->retryAfterMs > 0 ? env->retryAfterMs : backoff;
      wait += static_cast<int64_t>(nextRand(rngState) % 16);  // de-sync herd
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    } else {
      if (attempt >= a.retries) return std::nullopt;
      int64_t wait = backoff + static_cast<int64_t>(nextRand(rngState) % 16);
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
    backoff = std::min<int64_t>(backoff * 2, 2'000);
  }
}

std::string readFileOrDie(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "essent_client: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

obs::Json buildRequest(const Args& a) {
  obs::Json doc = obs::Json::object();
  doc["proto"] = uint64_t{serve::kProtoMax};
  doc["op"] = a.op;
  if (!a.designFile.empty()) doc["design"] = readFileOrDie(a.designFile);
  if (!a.designHash.empty()) doc["design_hash"] = a.designHash;
  if (a.cycles > 0) doc["cycles"] = a.cycles;
  if (a.batch > 0) doc["batch"] = a.batch;
  if (a.sleepMs > 0) doc["sleep_ms"] = a.sleepMs;
  if (!a.pokes.empty()) {
    obs::Json pokes = obs::Json::object();
    for (const auto& [name, value] : a.pokes) pokes[name] = value;
    doc["pokes"] = std::move(pokes);
  }
  obs::Json optsDoc = obs::Json::object();
  if (!a.engine.empty()) optsDoc["engine"] = a.engine;
  if (a.threads > 0) optsDoc["threads"] = a.threads;
  if (a.cp > 0) optsDoc["cp"] = a.cp;
  if (a.lanes > 0) optsDoc["lanes"] = a.lanes;
  if (a.baseline) optsDoc["baseline"] = true;
  if (optsDoc.size() > 0) doc["options"] = std::move(optsDoc);
  return doc;
}

// --- chaos campaign --------------------------------------------------------

// Fallback design for campaign traffic when --design is not given.
const char* kCampaignDesign = R"(circuit Counter :
  module Counter :
    input clock : Clock
    input en : UInt<1>
    output out : UInt<8>

    reg c : UInt<8>, clock
    when en :
      c <= tail(add(c, UInt<8>(1)), 1)
    out <= c
)";

// Sends raw bytes (no framing correction) and tries to read one frame back.
// Used for the malformed cases; outcome is informational only — the real
// assertion is that the daemon still answers the NEXT structured request.
void sendRaw(const Args& a, const std::string& bytes, bool halfClose) {
  try {
    support::Socket conn = connect(a);
    support::sendAll(conn.fd(), bytes.data(), bytes.size());
    if (halfClose) conn.shutdownWrite();
    std::string body;
    support::readFrame(conn.fd(), body, 64u << 20, std::min<int64_t>(a.timeoutMs, 2'000));
  } catch (const std::exception&) {
  }
}

int runCampaign(const Args& a) {
  std::string design = a.designFile.empty() ? kCampaignDesign : readFileOrDie(a.designFile);
  uint64_t rng = a.seed;
  uint64_t structured = 0, transportCuts = 0, okCount = 0, errCount = 0;

  auto structuredProbe = [&](const obs::Json& doc) -> bool {
    // Retry through chaos drops: a dropped request is a transport cut, not
    // a protocol violation, but the daemon must still answer eventually.
    std::optional<obs::Json> resp = sendWithRetry(a, doc, rng);
    if (!resp) return false;
    std::optional<serve::ResponseEnvelope> env = serve::parseResponseEnvelope(*resp);
    if (!env) {
      std::fprintf(stderr, "essent_client: campaign: unparseable response envelope: %s\n",
                   resp->dump(0).c_str());
      std::exit(1);
    }
    structured++;
    (env->ok ? okCount : errCount)++;
    return true;
  };

  for (uint64_t i = 0; i < a.campaign; i++) {
    switch (nextRand(rng) % 10) {
      case 0: {  // valid ping
        obs::Json doc = obs::Json::object();
        doc["proto"] = uint64_t{serve::kProtoMax};
        doc["op"] = "ping";
        if (!structuredProbe(doc)) transportCuts++;
        break;
      }
      case 1: {  // valid run (cached after the first compile)
        obs::Json doc = obs::Json::object();
        doc["proto"] = uint64_t{serve::kProtoMax};
        doc["op"] = "run";
        doc["design"] = design;
        doc["cycles"] = 16 + (nextRand(rng) % 64);
        obs::Json pokes = obs::Json::object();
        pokes["en"] = uint64_t{1};
        if (a.designFile.empty()) doc["pokes"] = std::move(pokes);
        if (!structuredProbe(doc)) transportCuts++;
        break;
      }
      case 2: {  // valid compile
        obs::Json doc = obs::Json::object();
        doc["proto"] = uint64_t{serve::kProtoMax};
        doc["op"] = "compile";
        doc["design"] = design;
        if (!structuredProbe(doc)) transportCuts++;
        break;
      }
      case 3: {  // status
        obs::Json doc = obs::Json::object();
        doc["proto"] = uint64_t{serve::kProtoMax};
        doc["op"] = "status";
        if (!structuredProbe(doc)) transportCuts++;
        break;
      }
      case 4: {  // invalid JSON payload in a well-formed frame
        std::string junk = "{'op': ping";  // single quotes: not JSON
        uint32_t len = static_cast<uint32_t>(junk.size());
        std::string frame;
        frame.push_back(static_cast<char>(len >> 24));
        frame.push_back(static_cast<char>(len >> 16));
        frame.push_back(static_cast<char>(len >> 8));
        frame.push_back(static_cast<char>(len));
        frame += junk;
        sendRaw(a, frame, false);
        break;
      }
      case 5: {  // schema violations: unknown op / unknown field / bad type
        obs::Json doc = obs::Json::object();
        switch (nextRand(rng) % 3) {
          case 0: doc["op"] = "reticulate"; break;
          case 1: doc["op"] = "ping"; doc["frobnicate"] = true; break;
          default: doc["op"] = "run"; doc["design"] = design; doc["cycles"] = "ten"; break;
        }
        if (!structuredProbe(doc)) transportCuts++;
        break;
      }
      case 6: {  // truncated frame: declare 512 bytes, deliver 7, half-close
        std::string frame;
        frame.push_back(0);
        frame.push_back(0);
        frame.push_back(2);
        frame.push_back(0);
        frame += "{\"op\":";
        sendRaw(a, frame, true);
        break;
      }
      case 7: {  // oversized length prefix (2 GiB claim)
        std::string frame;
        frame.push_back(0x7f);
        frame.push_back(static_cast<char>(0xff));
        frame.push_back(static_cast<char>(0xff));
        frame.push_back(static_cast<char>(0xff));
        sendRaw(a, frame, false);
        break;
      }
      case 8: {  // run by bogus hash
        obs::Json doc = obs::Json::object();
        doc["proto"] = uint64_t{serve::kProtoMax};
        doc["op"] = "run";
        doc["design_hash"] = "00000000000000000000000000000000";
        doc["cycles"] = uint64_t{8};
        if (!structuredProbe(doc)) transportCuts++;
        break;
      }
      default: {  // mid-stream disconnect: send half a valid frame and bail
        obs::Json doc = obs::Json::object();
        doc["proto"] = uint64_t{serve::kProtoMax};
        doc["op"] = "ping";
        std::string payload = doc.dump(0);
        uint32_t len = static_cast<uint32_t>(payload.size());
        std::string frame;
        frame.push_back(static_cast<char>(len >> 24));
        frame.push_back(static_cast<char>(len >> 16));
        frame.push_back(static_cast<char>(len >> 8));
        frame.push_back(static_cast<char>(len));
        frame += payload.substr(0, payload.size() / 2);
        try {
          support::Socket conn = connect(a);
          support::sendAll(conn.fd(), frame.data(), frame.size());
        } catch (const std::exception&) {
        }
        break;
      }
    }
  }

  // Survival proof: after the whole campaign the daemon must still answer a
  // structured ping (retries absorb chaos drops).
  obs::Json ping = obs::Json::object();
  ping["proto"] = uint64_t{serve::kProtoMax};
  ping["op"] = "ping";
  if (!structuredProbe(ping)) {
    std::fprintf(stderr, "essent_client: campaign: daemon unreachable after %llu cases\n",
                 static_cast<unsigned long long>(a.campaign));
    return 3;
  }
  std::printf("campaign: %llu cases, %llu structured responses (%llu ok, %llu error), "
              "%llu transport cuts tolerated; daemon alive\n",
              static_cast<unsigned long long>(a.campaign),
              static_cast<unsigned long long>(structured),
              static_cast<unsigned long long>(okCount),
              static_cast<unsigned long long>(errCount),
              static_cast<unsigned long long>(transportCuts));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parseArgs(argc, argv);
  if (a.campaign > 0) return runCampaign(a);

  uint64_t rng = a.seed;
  obs::Json doc = buildRequest(a);
  std::optional<obs::Json> resp = sendWithRetry(a, doc, rng);
  if (!resp) {
    std::fprintf(stderr, "essent_client: no response after %u attempt(s)\n", a.retries + 1);
    return 3;
  }
  std::optional<serve::ResponseEnvelope> env = serve::parseResponseEnvelope(*resp);
  if (!env) {
    std::fprintf(stderr, "essent_client: unparseable response envelope:\n%s\n",
                 resp->dump(2).c_str());
    return 3;
  }
  if (!a.quiet) std::printf("%s\n", resp->dump(2).c_str());
  if (!env->ok) {
    std::fprintf(stderr, "essent_client: %s: %s\n", env->errorCode.c_str(),
                 env->errorMessage.c_str());
    return 1;
  }
  return 0;
}
