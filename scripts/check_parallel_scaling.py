#!/usr/bin/env python3
"""Gate the parallel-scaling bench against its committed artifact.

Usage: check_parallel_scaling.py BASELINE.json FRESH.json [--tolerance 0.9]

Compares the fresh BENCH_parallel_scaling.json row-by-row (keyed by
design + requested threads) against the committed baseline and fails when
any row's speedup_vs_serial drops below baseline * tolerance — the
regression guard for the static-placement engine's barrier cost. Also
enforces the artifact's honesty contract: a row whose traced rep dropped
events must say so through parallel.truncated, and every row must record
the post-degradation effective thread count.

Rows present in only one artifact are reported but do not fail the check
(the bench's case list may legitimately grow); a fresh artifact with NO
matching rows fails, since then nothing was actually compared.
"""
import argparse
import json
import sys


def rows_by_key(doc):
    return {(r["design"], r["threads"]): r for r in doc["rows"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.9,
                    help="fresh speedup must be >= baseline * tolerance (default 0.9)")
    ap.add_argument("--degraded-tolerance", type=float, default=0.75,
                    help="tolerance for rows whose engine degraded to one "
                         "effective thread: serial-vs-serial timing carries no "
                         "scaling signal, only noise, so the gate is wider "
                         "(default 0.75)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = rows_by_key(json.load(f))
    with open(args.fresh) as f:
        fresh_doc = json.load(f)
    fresh = rows_by_key(fresh_doc)

    hw = fresh_doc.get("meta", {}).get("hardware_concurrency")
    print(f"fresh artifact: {len(fresh)} rows, hardware_concurrency={hw}")

    failures = []
    compared = 0
    for key in sorted(base):
        design, threads = key
        if key not in fresh:
            print(f"NOTE  {design} t={threads}: row missing from fresh artifact")
            continue
        b, f = base[key], fresh[key]
        compared += 1
        degraded = threads > 1 and f.get("effective_threads", 0) <= 1
        tol = args.degraded_tolerance if degraded else args.tolerance
        floor = b["speedup_vs_serial"] * tol
        status = "ok(deg)" if degraded else "ok"
        if f["speedup_vs_serial"] < floor:
            status = "REGRESSED"
            failures.append(
                f"{design} t={threads}: speedup {f['speedup_vs_serial']:.3f} "
                f"< floor {floor:.3f} (baseline {b['speedup_vs_serial']:.3f})")
        if "effective_threads" not in f:
            failures.append(f"{design} t={threads}: missing effective_threads")
        par = f.get("parallel", {})
        if par.get("dropped_events", 0) > 0 and not par.get("truncated", False):
            failures.append(
                f"{design} t={threads}: dropped {par['dropped_events']} trace "
                f"events without setting parallel.truncated")
        print(f"{status:9s} {design:14s} t={threads} eff={f.get('effective_threads')} "
              f"steps={f.get('placement', {}).get('super_steps')} "
              f"speedup {f['speedup_vs_serial']:.3f} (floor {floor:.3f}) "
              f"dropped={par.get('dropped_events')} truncated={par.get('truncated')}")

    for key in sorted(set(fresh) - set(base)):
        print(f"NOTE  {key[0]} t={key[1]}: new row, no baseline")

    if compared == 0:
        failures.append("no rows in common with the baseline — nothing compared")
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {compared} rows within tolerance {args.tolerance}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
