#!/usr/bin/env python3
"""Gate the elaboration-scale bench against its committed artifact.

Usage: check_elaboration_scale.py BASELINE.json FRESH.json
           [--tolerance 0.15] [--share-floor 0.02]
           [--exp-floor 0.1] [--max-exponent 1.8]

Two machine-independent checks over BENCH_elaboration_scale.json (raw
wall-clock is NOT gated — CI runners and the baseline machine differ in
speed, so absolute seconds carry no regression signal):

1. Per-phase share regression. For every (design) row present in both
   artifacts, each compile-pipeline phase's share of the total elaboration
   time (parse, build-ir, lower, netlist, mffc, merge-A/B/C, schedule)
   must not exceed baseline_share * (1 + tolerance). A uniformly slower
   host leaves shares unchanged; a phase that regressed relative to the
   rest of the pipeline grows its share and fails. Share deltas under
   --share-floor (absolute percentage points) are treated as noise.

2. Intra-artifact scaling shape. Between the fresh artifact's smallest and
   largest scale, every phase costing at least --exp-floor seconds at the
   largest scale must scale with exponent
   log(t_hi/t_lo) / log(nodes_hi/nodes_lo) <= --max-exponent. This catches
   a quadratic merge pass reappearing (exponent 2.0) regardless of host
   speed; the committed pipeline sits at 1.1-1.45 (the super-unit part is
   cache-miss inflation, not algorithmic).

Rows present in only one artifact are reported but do not fail the check
(CI runs with --max-scale to skip the 1M row); a fresh artifact with NO
matching rows fails, since then nothing was actually compared.
"""
import argparse
import json
import math
import sys


def rows_by_key(doc):
    return {r["design"]: r for r in doc["rows"]}


def phase_shares(row):
    secs = {k: v["seconds"] for k, v in row.get("phases", {}).items()}
    total = row.get("seconds", 0.0) or sum(secs.values())
    return {k: s / total for k, s in secs.items()}, secs


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max fractional growth of a phase's share of total "
                         "elaboration time vs baseline (default 0.15 = 15%%)")
    ap.add_argument("--share-floor", type=float, default=0.02,
                    help="absolute share delta (fraction of total) below "
                         "which a phase is treated as noise (default 0.02)")
    ap.add_argument("--exp-floor", type=float, default=0.1,
                    help="seconds at the largest scale below which a phase "
                         "is skipped by the exponent check (default 0.1)")
    ap.add_argument("--max-exponent", type=float, default=1.8,
                    help="max allowed scaling exponent in nodes between the "
                         "smallest and largest fresh scale (default 1.8; "
                         "2.0 would be quadratic)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = rows_by_key(json.load(f))
    with open(args.fresh) as f:
        fresh_doc = json.load(f)
    fresh = rows_by_key(fresh_doc)

    print(f"fresh artifact: {len(fresh)} rows, "
          f"reps={fresh_doc.get('meta', {}).get('reps')}")

    failures = []
    compared = 0

    # 1. per-phase share regression against the committed baseline
    for design in sorted(base):
        if design not in fresh:
            print(f"NOTE  {design}: row missing from fresh artifact")
            continue
        compared += 1
        b_share, b_secs = phase_shares(base[design])
        f_share, f_secs = phase_shares(fresh[design])
        for phase in sorted(b_share):
            if phase not in f_share:
                failures.append(f"{design}/{phase}: phase missing from fresh artifact")
                continue
            ceil = b_share[phase] * (1 + args.tolerance)
            noise = (f_share[phase] - b_share[phase]) < args.share_floor
            status = "ok" if f_share[phase] <= ceil or noise else "REGRESSED"
            if status == "REGRESSED":
                failures.append(
                    f"{design}/{phase}: share {f_share[phase]:.1%} > ceiling "
                    f"{ceil:.1%} (baseline {b_share[phase]:.1%}; "
                    f"{b_secs[phase]:.3f}s -> {f_secs[phase]:.3f}s)")
            print(f"{status:9s} {design:10s} {phase:10s} share "
                  f"{b_share[phase]:6.1%} -> {f_share[phase]:6.1%}  "
                  f"({b_secs[phase] * 1000:7.1f}ms -> {f_secs[phase] * 1000:7.1f}ms)")

    for design in sorted(set(fresh) - set(base)):
        print(f"NOTE  {design}: new row, no baseline")

    # 2. intra-artifact scaling exponent, smallest -> largest fresh scale
    if len(fresh) >= 2:
        rows = sorted(fresh.values(), key=lambda r: r["nodes"])
        lo, hi = rows[0], rows[-1]
        node_ratio = hi["nodes"] / lo["nodes"]
        _, lo_secs = phase_shares(lo)
        _, hi_secs = phase_shares(hi)
        for phase in sorted(hi_secs):
            if hi_secs[phase] < args.exp_floor or lo_secs.get(phase, 0) <= 0:
                continue
            exponent = math.log(hi_secs[phase] / lo_secs[phase]) / math.log(node_ratio)
            status = "ok" if exponent <= args.max_exponent else "SUPERLINEAR"
            if status == "SUPERLINEAR":
                failures.append(
                    f"{lo['design']}->{hi['design']}/{phase}: scaling exponent "
                    f"{exponent:.2f} > {args.max_exponent} "
                    f"({lo_secs[phase]:.3f}s -> {hi_secs[phase]:.3f}s over "
                    f"{node_ratio:.1f}x nodes)")
            print(f"{status:11s} {phase:10s} exponent {exponent:.2f} "
                  f"over {node_ratio:.1f}x nodes")
    else:
        print("NOTE  fewer than 2 fresh rows; scaling-exponent check skipped")

    if compared == 0:
        failures.append("no rows in common with the baseline — nothing compared")
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {compared} rows, share tolerance {args.tolerance}, "
          f"exponents <= {args.max_exponent}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
