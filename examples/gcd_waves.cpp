// GCD circuit testbench: runs a batch of operand pairs through the GCD
// design on the CCSS engine, checks results against std::gcd, and dumps a
// VCD waveform for the first transaction.
//
// Build and run:  ./build/examples/gcd_waves [out.vcd]
#include <cstdio>
#include <fstream>
#include <numeric>

#include <essent/engine.h>
#include <essent/vcd.h>

#include "designs/gcd.h"

using namespace essent;

int main(int argc, char** argv) {
  sim::SimIR ir = sim::buildFromFirrtl(designs::gcdFirrtl(16));
  core::ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), core::ScheduleOptions{}));

  const char* vcdPath = argc > 1 ? argv[1] : "gcd.vcd";
  std::ofstream vcdFile(vcdPath);
  sim::VcdWriter vcd(vcdFile, eng);

  struct Case {
    uint64_t a, b;
  };
  Case cases[] = {{1071, 462}, {48, 36}, {17, 5}, {270, 192}, {65535, 4369}, {7, 7}};

  uint64_t time = 0;
  int failures = 0;
  eng.poke("reset", 0);
  for (const Case& c : cases) {
    eng.poke("a", c.a);
    eng.poke("b", c.b);
    eng.poke("load", 1);
    eng.tick();
    if (time < 60) vcd.sample(++time);
    eng.poke("load", 0);
    eng.tick();
    if (time < 60) vcd.sample(++time);
    int iters = 0;
    while (eng.peek("valid") == 0 && iters++ < 1000) {
      eng.tick();
      if (time < 60) vcd.sample(++time);
    }
    uint64_t got = eng.peek("result");
    uint64_t want = std::gcd(c.a, c.b);
    std::printf("gcd(%5llu, %5llu) = %5llu  [%s]\n", static_cast<unsigned long long>(c.a),
                static_cast<unsigned long long>(c.b), static_cast<unsigned long long>(got),
                got == want ? "ok" : "WRONG");
    failures += got != want;
  }
  std::printf("waveform written to %s (VCD itself only records changes — the\n"
              "same inactivity ESSENT exploits)\n", vcdPath);
  return failures == 0 ? 0 : 1;
}
