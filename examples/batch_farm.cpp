// Batch simulation farm: run many instances of one design concurrently,
// all sharing a single compiled CCSS schedule.
//
// Each instance drives the same en-gated counter bank with a different
// input pattern, so the farm's per-instance effective activity factors
// differ while the compiled structure (IR, layout, schedule) exists once.
//
// Build and run:  ./build/examples/batch_farm
//
// Uses only the stable public API (<essent/...>, policy in docs/API.md).
#include <cstdio>

#include <essent/engine.h>
#include <essent/farm.h>

int main() {
  const char* firrtl = R"(
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output count : UInt<16>
    reg r : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    when en :
      r <= tail(add(r, UInt<16>(1)), 1)
    count <= r
)";

  // Compile ONCE; every farm instance shares this immutable structure.
  essent::sim::SimIR ir = essent::sim::buildFromFirrtl(firrtl);
  auto design = essent::sim::CompiledDesign::compile(ir);

  // 8 instances: instance i enables the counter 1 cycle in every i+1, so
  // activity falls off across the batch.
  std::vector<essent::core::FarmJob> jobs(8);
  for (size_t i = 0; i < jobs.size(); i++) {
    jobs[i].name = "duty-1/" + std::to_string(i + 1);
    jobs[i].maxCycles = 20000;
    jobs[i].stimulus = [i](essent::sim::Engine& eng, uint64_t cycle) {
      eng.poke("en", cycle % (i + 1) == 0 ? 1 : 0);
    };
  }

  essent::core::FarmOptions fo;
  fo.kind = essent::sim::EngineKind::Ccss;  // serial CCSS per instance
  fo.workers = 4;                           // farm-level parallelism
  essent::core::SimFarm farm(design, fo);
  essent::core::FarmReport report = farm.run(jobs);

  std::printf("%zu instances, %u workers, %.4f s wall\n", report.instances.size(),
              report.workers, report.wallSeconds);
  for (const auto& r : report.instances)
    std::printf("  %-10s count=%s  effective activity %.3f\n", r.name.c_str(),
                r.outputs.at(0).second.c_str(), r.effectiveActivity);
  std::printf("aggregate: %.0f cycles/s, %.1f instances/s\n", report.aggregateCyclesPerSec,
              report.instancesPerSec);
  return report.allOk() ? 0 : 1;
}
