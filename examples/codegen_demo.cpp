// Codegen demo: emits the standalone C++ simulator ESSENT-style for the GCD
// design — baseline (full-cycle) or CCSS mode — to stdout or a file.
//
// Usage:  ./build/examples/codegen_demo [--baseline] [out.cpp]
#include <cstdio>
#include <cstring>
#include <fstream>

#include "codegen/emitter.h"
#include "core/schedule.h"
#include "designs/gcd.h"
#include "sim/compile.h"

using namespace essent;

int main(int argc, char** argv) {
  bool baseline = false;
  const char* outPath = nullptr;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--baseline") == 0) baseline = true;
    else outPath = argv[i];
  }

  sim::SimIR ir = sim::buildFromFirrtl(designs::gcdFirrtl(16));
  codegen::CodegenOptions opts;
  opts.className = "GcdSim";
  opts.ccss = !baseline;

  std::string code;
  if (baseline) {
    code = codegen::emitCpp(ir, nullptr, opts);
  } else {
    core::CondPartSchedule sched =
        core::buildSchedule(core::Netlist::build(ir), core::ScheduleOptions{});
    code = codegen::emitCpp(ir, &sched, opts);
    std::fprintf(stderr, "CCSS mode: %zu partitions, %zu elided registers\n",
                 sched.numPartitions(), sched.elidedRegs);
  }

  if (outPath) {
    std::ofstream f(outPath);
    f << code;
    std::fprintf(stderr, "wrote %zu bytes to %s\n", code.size(), outPath);
    std::fprintf(stderr, "compile with: c++ -O2 -std=c++20 -c %s\n", outPath);
  } else {
    std::fputs(code.c_str(), stdout);
  }
  return 0;
}
