// Systolic-array matrix multiplication: feeds two matrices through the
// output-stationary PE grid with the classic skewed schedule, reads the
// products back through the selector port, and shows how the CCSS engine
// sleeps the whole grid between bursts.
//
// Usage:  ./build/examples/systolic_matmul [N]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <essent/engine.h>

#include "designs/systolic.h"
#include "support/strutil.h"

using namespace essent;

int main(int argc, char** argv) {
  uint32_t n = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 4;
  designs::SystolicConfig cfg;
  cfg.rows = n;
  cfg.cols = n;

  sim::SimIR ir = sim::buildFromFirrtl(designs::systolicFirrtl(cfg));
  core::ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), core::ScheduleOptions{}));
  std::printf("%ux%u systolic array: %zu IR ops, %zu partitions\n", n, n, ir.ops.size(),
              eng.schedule().numPartitions());

  // A[i][k] = i + k + 1, B[k][j] = (k+1)*(j+1).
  auto A = [&](uint32_t i, uint32_t k) { return static_cast<uint64_t>(i + k + 1); };
  auto B = [&](uint32_t k, uint32_t j) { return static_cast<uint64_t>((k + 1) * (j + 1)); };

  eng.poke("reset", 1);
  eng.tick();
  eng.poke("reset", 0);
  eng.poke("en", 1);
  // Skewed feed: row i delayed i cycles, column j delayed j cycles.
  for (uint32_t t = 0; t < 3 * n; t++) {
    for (uint32_t i = 0; i < n; i++)
      eng.poke(strfmt("a%u", i), (t >= i && t - i < n) ? A(i, t - i) : 0);
    for (uint32_t j = 0; j < n; j++)
      eng.poke(strfmt("b%u", j), (t >= j && t - j < n) ? B(t - j, j) : 0);
    eng.tick();
  }
  eng.poke("en", 0);
  for (uint32_t i = 0; i < n; i++) eng.poke(strfmt("a%u", i), 0);
  for (uint32_t j = 0; j < n; j++) eng.poke(strfmt("b%u", j), 0);

  std::printf("C = A x B read back through the selector port:\n");
  int errors = 0;
  for (uint32_t i = 0; i < n; i++) {
    std::printf("  ");
    for (uint32_t j = 0; j < n; j++) {
      eng.poke("rowSel", i);
      eng.poke("colSel", j);
      eng.tick();
      eng.tick();  // output lags the selector poke by one cycle
      uint64_t got = eng.peek("acc_sel");
      uint64_t want = 0;
      for (uint32_t k = 0; k < n; k++) want += A(i, k) * B(k, j);
      errors += got != want;
      std::printf("%6llu%s", static_cast<unsigned long long>(got), got == want ? "" : "!");
    }
    std::printf("\n");
  }
  std::printf("%s; effective activity over the run: %.3f\n",
              errors ? "MISMATCHES PRESENT" : "all entries correct", eng.effectiveActivity());

  // Idle demonstration: the whole grid sleeps once inputs stop changing.
  uint64_t ops = eng.stats().opsEvaluated;
  for (int k = 0; k < 100; k++) eng.tick();
  std::printf("100 idle cycles cost %llu op evaluations\n",
              static_cast<unsigned long long>(eng.stats().opsEvaluated - ops));
  return errors ? 1 : 0;
}
