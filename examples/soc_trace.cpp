// TinySoC demo: runs a benchmark program on the synthetic SoC with all
// three engines and reports the activity-skipping win plus a periodic
// architectural trace.
//
// Usage:  ./build/examples/soc_trace [dhrystone|matmul|pchase]
#include <cstdio>
#include <cstring>

#include <essent/engine.h>

#include "designs/tinysoc.h"
#include "workloads/driver.h"

using namespace essent;

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "dhrystone";
  workloads::Program prog;
  if (std::strcmp(which, "matmul") == 0) prog = workloads::matmulProgram(6, 2);
  else if (std::strcmp(which, "pchase") == 0) prog = workloads::pchaseProgram(64, 16);
  else prog = workloads::dhrystoneProgram(128);

  designs::SoCConfig cfg = designs::socR16();
  std::printf("building %s (r16-scale TinySoC) ...\n", cfg.name.c_str());
  sim::SimIR ir = sim::buildFromFirrtl(designs::tinySoCFirrtl(cfg));
  std::printf("  %zu IR ops, %zu registers, %zu memories\n", ir.ops.size(), ir.regs.size(),
              ir.mems.size());

  // Trace run on the CCSS engine with a periodic architectural report.
  core::ActivityEngine eng(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), core::ScheduleOptions{}));
  std::printf("  %zu partitions, %zu/%zu registers elided\n",
              eng.schedule().numPartitions(), eng.schedule().elidedRegs, ir.regs.size());
  workloads::loadProgram(eng, prog);
  std::printf("running '%s': %s\n", prog.name.c_str(), prog.description.c_str());
  eng.poke("reset", 1);
  eng.tick();
  eng.tick();
  eng.poke("reset", 0);
  uint64_t cycles = 0;
  while (!eng.stopped() && cycles < 500000) {
    eng.tick();
    if (++cycles % 2000 == 0)
      std::printf("  cycle %6llu: pc=%4llu instret=%6llu\n",
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(eng.peek("pc")),
                  static_cast<unsigned long long>(eng.peek("instret")));
  }
  std::printf("%s", eng.printOutput().c_str());
  std::printf("halted after %llu cycles, %llu instructions (CPI %.2f)\n",
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(eng.peek("instret")),
              static_cast<double>(cycles) / static_cast<double>(eng.peek("instret")));
  std::printf("effective activity factor: %.4f\n", eng.effectiveActivity());

  // Cross-engine timing comparison on the same workload.
  std::printf("\nengine comparison (same program, fresh engines):\n");
  auto timeIt = [&](sim::Engine& e) {
    workloads::loadProgram(e, prog);
    auto res = workloads::runWorkload(e, 500000);
    std::printf("  %-13s %8.3f s  (%6.1f kHz, result=0x%llx)\n", e.name(), res.seconds,
                res.cycles / res.seconds / 1e3, static_cast<unsigned long long>(res.result));
    return res.seconds;
  };
  sim::FullCycleEngine fc(sim::CompiledDesign::compile(ir));
  sim::EventDrivenEngine ev(sim::CompiledDesign::compile(ir));
  core::ActivityEngine act(core::CompiledCcss::compile(sim::CompiledDesign::compile(ir), core::ScheduleOptions{}));
  double tFc = timeIt(fc);
  timeIt(ev);
  double tAct = timeIt(act);
  std::printf("essent-ccss speedup over full-cycle: %.2fx\n", tFc / tAct);
  return 0;
}
