// Partition visualizer: runs the acyclic partitioner on a design and emits
// the partition graph as Graphviz DOT (one node per partition, sized by
// member count), plus a text summary of the merge phases.
//
// Usage:  ./build/examples/partition_viz [alu|pipeline|banks|gcd] [C_p] > out.dot
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/partitioner.h"
#include "designs/blocks.h"
#include "designs/gcd.h"
#include "sim/compile.h"

using namespace essent;

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "alu";
  uint32_t cp = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 8;

  std::string firrtl;
  if (std::strcmp(which, "pipeline") == 0) firrtl = designs::pipelineFirrtl(16, 16);
  else if (std::strcmp(which, "banks") == 0) firrtl = designs::gatedBanksFirrtl(16, 16);
  else if (std::strcmp(which, "gcd") == 0) firrtl = designs::gcdFirrtl(16);
  else firrtl = designs::aluArrayFirrtl(16, 16);

  sim::SimIR ir = sim::buildFromFirrtl(firrtl);
  core::Netlist nl = core::Netlist::build(ir);
  core::PartitionOptions opts;
  opts.smallThreshold = cp;
  core::Partitioning p = core::partitionNetlist(nl, opts);

  std::fprintf(stderr,
               "design %s: %d nodes, %lld edges\n"
               "MFFC decomposition: %zu partitions\n"
               "after phase A (single-parent merges, %zu merges): %zu partitions\n"
               "after phase B (small-sibling merges, %zu merges): %zu partitions\n"
               "final (phase C: %zu merges, %zu rejected by external-path test): %zu "
               "partitions, %lld cut edges\n",
               which, nl.g.numNodes(), static_cast<long long>(nl.g.numEdges()),
               p.stats.initialParts, p.stats.mergesA, p.stats.afterSingleParent,
               p.stats.mergesB, p.stats.afterSmallSiblings, p.stats.mergesC,
               p.stats.rejectedMerges, p.stats.finalParts,
               static_cast<long long>(p.stats.cutEdges));

  std::printf("digraph partitions {\n  rankdir=TB;\n  node [shape=circle];\n");
  for (size_t i = 0; i < p.members.size(); i++) {
    double size = 0.3 + 0.12 * static_cast<double>(p.members[i].size());
    std::printf("  p%zu [label=\"%zu\\n(%zu)\", width=%.2f];\n", i, i, p.members[i].size(),
                size);
  }
  for (graph::NodeId v = 0; v < p.partGraph.numNodes(); v++)
    for (graph::NodeId w : p.partGraph.outNeighbors(v))
      std::printf("  p%d -> p%d;\n", v, w);
  std::printf("}\n");
  return 0;
}
