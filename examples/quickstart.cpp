// Quickstart: the end-to-end flow in one page.
//
//   FIRRTL text -> parse -> lower -> SimIR -> acyclic partitioning ->
//   CCSS activity engine -> simulate.
//
// Build and run:  ./build/examples/quickstart
//
// Everything used here comes from the stable public API (<essent/...>,
// policy in docs/API.md).
#include <cstdio>

#include <essent/engine.h>

int main() {
  // A small en-gated counter, written directly in FIRRTL.
  const char* firrtl = R"(
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output count : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    count <= r
)";

  // Parse + lower + build the simulation IR (optimizations on by default).
  essent::sim::SimIR ir = essent::sim::buildFromFirrtl(firrtl);
  std::printf("design '%s': %zu ops, %zu registers, %zu inputs\n", ir.name.c_str(),
              ir.ops.size(), ir.regs.size(), ir.inputs.size());

  // Compile the immutable structure once, then construct an engine from it
  // through the single public factory. (Any number of engines can share one
  // CompiledDesign — that is what core::SimFarm builds on.)
  auto design = essent::sim::CompiledDesign::compile(ir);
  auto eng = essent::sim::makeEngine(essent::sim::EngineKind::Ccss, design);
  auto& sim = *eng;

  // CCSS-specific introspection (the schedule, the activity factor) lives
  // on the concrete ActivityEngine type.
  auto& act = dynamic_cast<essent::core::ActivityEngine&>(sim);
  std::printf("partitions: %zu (elided registers: %zu)\n", act.schedule().numPartitions(),
              act.schedule().elidedRegs);

  // Drive it: reset two cycles, count for ten, pause for five.
  sim.poke("reset", 1);
  sim.tick();
  sim.tick();
  sim.poke("reset", 0);
  sim.poke("en", 1);
  for (int i = 0; i < 10; i++) sim.tick();
  std::printf("after 10 enabled cycles: count = %llu\n",
              static_cast<unsigned long long>(sim.peek("count")));

  sim.poke("en", 0);
  for (int i = 0; i < 5; i++) sim.tick();
  std::printf("after 5 idle cycles:     count = %llu\n",
              static_cast<unsigned long long>(sim.peek("count")));

  // The point of the paper: idle cycles cost almost nothing.
  std::printf("effective activity factor over the run: %.3f\n", act.effectiveActivity());
  return 0;
}
