# Empty dependencies file for essent_support.
# This may be replaced when dependencies are built.
