file(REMOVE_RECURSE
  "CMakeFiles/essent_support.dir/support/bitvec.cpp.o"
  "CMakeFiles/essent_support.dir/support/bitvec.cpp.o.d"
  "CMakeFiles/essent_support.dir/support/strutil.cpp.o"
  "CMakeFiles/essent_support.dir/support/strutil.cpp.o.d"
  "libessent_support.a"
  "libessent_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essent_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
