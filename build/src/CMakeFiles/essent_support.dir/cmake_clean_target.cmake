file(REMOVE_RECURSE
  "libessent_support.a"
)
