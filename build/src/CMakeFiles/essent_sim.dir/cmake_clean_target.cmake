file(REMOVE_RECURSE
  "libessent_sim.a"
)
