# Empty compiler generated dependencies file for essent_sim.
# This may be replaced when dependencies are built.
