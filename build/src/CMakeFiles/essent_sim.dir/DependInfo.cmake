
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/builder.cpp" "src/CMakeFiles/essent_sim.dir/sim/builder.cpp.o" "gcc" "src/CMakeFiles/essent_sim.dir/sim/builder.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/essent_sim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/essent_sim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/event_driven.cpp" "src/CMakeFiles/essent_sim.dir/sim/event_driven.cpp.o" "gcc" "src/CMakeFiles/essent_sim.dir/sim/event_driven.cpp.o.d"
  "/root/repo/src/sim/full_cycle.cpp" "src/CMakeFiles/essent_sim.dir/sim/full_cycle.cpp.o" "gcc" "src/CMakeFiles/essent_sim.dir/sim/full_cycle.cpp.o.d"
  "/root/repo/src/sim/harness.cpp" "src/CMakeFiles/essent_sim.dir/sim/harness.cpp.o" "gcc" "src/CMakeFiles/essent_sim.dir/sim/harness.cpp.o.d"
  "/root/repo/src/sim/opt.cpp" "src/CMakeFiles/essent_sim.dir/sim/opt.cpp.o" "gcc" "src/CMakeFiles/essent_sim.dir/sim/opt.cpp.o.d"
  "/root/repo/src/sim/sim_ir.cpp" "src/CMakeFiles/essent_sim.dir/sim/sim_ir.cpp.o" "gcc" "src/CMakeFiles/essent_sim.dir/sim/sim_ir.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/CMakeFiles/essent_sim.dir/sim/vcd.cpp.o" "gcc" "src/CMakeFiles/essent_sim.dir/sim/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/essent_firrtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
