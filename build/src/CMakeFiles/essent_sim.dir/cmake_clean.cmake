file(REMOVE_RECURSE
  "CMakeFiles/essent_sim.dir/sim/builder.cpp.o"
  "CMakeFiles/essent_sim.dir/sim/builder.cpp.o.d"
  "CMakeFiles/essent_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/essent_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/essent_sim.dir/sim/event_driven.cpp.o"
  "CMakeFiles/essent_sim.dir/sim/event_driven.cpp.o.d"
  "CMakeFiles/essent_sim.dir/sim/full_cycle.cpp.o"
  "CMakeFiles/essent_sim.dir/sim/full_cycle.cpp.o.d"
  "CMakeFiles/essent_sim.dir/sim/harness.cpp.o"
  "CMakeFiles/essent_sim.dir/sim/harness.cpp.o.d"
  "CMakeFiles/essent_sim.dir/sim/opt.cpp.o"
  "CMakeFiles/essent_sim.dir/sim/opt.cpp.o.d"
  "CMakeFiles/essent_sim.dir/sim/sim_ir.cpp.o"
  "CMakeFiles/essent_sim.dir/sim/sim_ir.cpp.o.d"
  "CMakeFiles/essent_sim.dir/sim/vcd.cpp.o"
  "CMakeFiles/essent_sim.dir/sim/vcd.cpp.o.d"
  "libessent_sim.a"
  "libessent_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essent_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
