file(REMOVE_RECURSE
  "CMakeFiles/essent_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/essent_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/essent_graph.dir/graph/scc.cpp.o"
  "CMakeFiles/essent_graph.dir/graph/scc.cpp.o.d"
  "libessent_graph.a"
  "libessent_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essent_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
