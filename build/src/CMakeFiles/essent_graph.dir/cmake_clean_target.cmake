file(REMOVE_RECURSE
  "libessent_graph.a"
)
