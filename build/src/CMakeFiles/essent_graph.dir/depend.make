# Empty dependencies file for essent_graph.
# This may be replaced when dependencies are built.
