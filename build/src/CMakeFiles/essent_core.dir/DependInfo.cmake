
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activity_engine.cpp" "src/CMakeFiles/essent_core.dir/core/activity_engine.cpp.o" "gcc" "src/CMakeFiles/essent_core.dir/core/activity_engine.cpp.o.d"
  "/root/repo/src/core/elision.cpp" "src/CMakeFiles/essent_core.dir/core/elision.cpp.o" "gcc" "src/CMakeFiles/essent_core.dir/core/elision.cpp.o.d"
  "/root/repo/src/core/mffc.cpp" "src/CMakeFiles/essent_core.dir/core/mffc.cpp.o" "gcc" "src/CMakeFiles/essent_core.dir/core/mffc.cpp.o.d"
  "/root/repo/src/core/netlist.cpp" "src/CMakeFiles/essent_core.dir/core/netlist.cpp.o" "gcc" "src/CMakeFiles/essent_core.dir/core/netlist.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/CMakeFiles/essent_core.dir/core/partitioner.cpp.o" "gcc" "src/CMakeFiles/essent_core.dir/core/partitioner.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/essent_core.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/essent_core.dir/core/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/essent_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_firrtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
