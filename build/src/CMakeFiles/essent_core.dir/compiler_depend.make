# Empty compiler generated dependencies file for essent_core.
# This may be replaced when dependencies are built.
