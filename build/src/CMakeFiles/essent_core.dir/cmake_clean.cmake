file(REMOVE_RECURSE
  "CMakeFiles/essent_core.dir/core/activity_engine.cpp.o"
  "CMakeFiles/essent_core.dir/core/activity_engine.cpp.o.d"
  "CMakeFiles/essent_core.dir/core/elision.cpp.o"
  "CMakeFiles/essent_core.dir/core/elision.cpp.o.d"
  "CMakeFiles/essent_core.dir/core/mffc.cpp.o"
  "CMakeFiles/essent_core.dir/core/mffc.cpp.o.d"
  "CMakeFiles/essent_core.dir/core/netlist.cpp.o"
  "CMakeFiles/essent_core.dir/core/netlist.cpp.o.d"
  "CMakeFiles/essent_core.dir/core/partitioner.cpp.o"
  "CMakeFiles/essent_core.dir/core/partitioner.cpp.o.d"
  "CMakeFiles/essent_core.dir/core/schedule.cpp.o"
  "CMakeFiles/essent_core.dir/core/schedule.cpp.o.d"
  "libessent_core.a"
  "libessent_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essent_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
