file(REMOVE_RECURSE
  "libessent_core.a"
)
