# Empty dependencies file for essent_workloads.
# This may be replaced when dependencies are built.
