file(REMOVE_RECURSE
  "CMakeFiles/essent_workloads.dir/workloads/assembler.cpp.o"
  "CMakeFiles/essent_workloads.dir/workloads/assembler.cpp.o.d"
  "CMakeFiles/essent_workloads.dir/workloads/driver.cpp.o"
  "CMakeFiles/essent_workloads.dir/workloads/driver.cpp.o.d"
  "CMakeFiles/essent_workloads.dir/workloads/programs.cpp.o"
  "CMakeFiles/essent_workloads.dir/workloads/programs.cpp.o.d"
  "libessent_workloads.a"
  "libessent_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essent_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
