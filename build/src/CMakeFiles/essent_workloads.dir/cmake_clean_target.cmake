file(REMOVE_RECURSE
  "libessent_workloads.a"
)
