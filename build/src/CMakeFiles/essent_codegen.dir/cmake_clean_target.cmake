file(REMOVE_RECURSE
  "libessent_codegen.a"
)
