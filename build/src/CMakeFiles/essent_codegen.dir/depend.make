# Empty dependencies file for essent_codegen.
# This may be replaced when dependencies are built.
