file(REMOVE_RECURSE
  "CMakeFiles/essent_codegen.dir/codegen/emitter.cpp.o"
  "CMakeFiles/essent_codegen.dir/codegen/emitter.cpp.o.d"
  "libessent_codegen.a"
  "libessent_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essent_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
