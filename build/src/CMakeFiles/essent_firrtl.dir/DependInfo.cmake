
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firrtl/ast.cpp" "src/CMakeFiles/essent_firrtl.dir/firrtl/ast.cpp.o" "gcc" "src/CMakeFiles/essent_firrtl.dir/firrtl/ast.cpp.o.d"
  "/root/repo/src/firrtl/lexer.cpp" "src/CMakeFiles/essent_firrtl.dir/firrtl/lexer.cpp.o" "gcc" "src/CMakeFiles/essent_firrtl.dir/firrtl/lexer.cpp.o.d"
  "/root/repo/src/firrtl/parser.cpp" "src/CMakeFiles/essent_firrtl.dir/firrtl/parser.cpp.o" "gcc" "src/CMakeFiles/essent_firrtl.dir/firrtl/parser.cpp.o.d"
  "/root/repo/src/firrtl/passes.cpp" "src/CMakeFiles/essent_firrtl.dir/firrtl/passes.cpp.o" "gcc" "src/CMakeFiles/essent_firrtl.dir/firrtl/passes.cpp.o.d"
  "/root/repo/src/firrtl/printer.cpp" "src/CMakeFiles/essent_firrtl.dir/firrtl/printer.cpp.o" "gcc" "src/CMakeFiles/essent_firrtl.dir/firrtl/printer.cpp.o.d"
  "/root/repo/src/firrtl/widths.cpp" "src/CMakeFiles/essent_firrtl.dir/firrtl/widths.cpp.o" "gcc" "src/CMakeFiles/essent_firrtl.dir/firrtl/widths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/essent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
