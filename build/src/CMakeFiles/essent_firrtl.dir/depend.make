# Empty dependencies file for essent_firrtl.
# This may be replaced when dependencies are built.
