file(REMOVE_RECURSE
  "libessent_firrtl.a"
)
