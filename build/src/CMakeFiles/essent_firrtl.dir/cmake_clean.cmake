file(REMOVE_RECURSE
  "CMakeFiles/essent_firrtl.dir/firrtl/ast.cpp.o"
  "CMakeFiles/essent_firrtl.dir/firrtl/ast.cpp.o.d"
  "CMakeFiles/essent_firrtl.dir/firrtl/lexer.cpp.o"
  "CMakeFiles/essent_firrtl.dir/firrtl/lexer.cpp.o.d"
  "CMakeFiles/essent_firrtl.dir/firrtl/parser.cpp.o"
  "CMakeFiles/essent_firrtl.dir/firrtl/parser.cpp.o.d"
  "CMakeFiles/essent_firrtl.dir/firrtl/passes.cpp.o"
  "CMakeFiles/essent_firrtl.dir/firrtl/passes.cpp.o.d"
  "CMakeFiles/essent_firrtl.dir/firrtl/printer.cpp.o"
  "CMakeFiles/essent_firrtl.dir/firrtl/printer.cpp.o.d"
  "CMakeFiles/essent_firrtl.dir/firrtl/widths.cpp.o"
  "CMakeFiles/essent_firrtl.dir/firrtl/widths.cpp.o.d"
  "libessent_firrtl.a"
  "libessent_firrtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essent_firrtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
