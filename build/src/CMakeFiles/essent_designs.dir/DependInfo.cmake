
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/designs/blocks.cpp" "src/CMakeFiles/essent_designs.dir/designs/blocks.cpp.o" "gcc" "src/CMakeFiles/essent_designs.dir/designs/blocks.cpp.o.d"
  "/root/repo/src/designs/gcd.cpp" "src/CMakeFiles/essent_designs.dir/designs/gcd.cpp.o" "gcc" "src/CMakeFiles/essent_designs.dir/designs/gcd.cpp.o.d"
  "/root/repo/src/designs/systolic.cpp" "src/CMakeFiles/essent_designs.dir/designs/systolic.cpp.o" "gcc" "src/CMakeFiles/essent_designs.dir/designs/systolic.cpp.o.d"
  "/root/repo/src/designs/tinysoc.cpp" "src/CMakeFiles/essent_designs.dir/designs/tinysoc.cpp.o" "gcc" "src/CMakeFiles/essent_designs.dir/designs/tinysoc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/essent_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_firrtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
