file(REMOVE_RECURSE
  "CMakeFiles/essent_designs.dir/designs/blocks.cpp.o"
  "CMakeFiles/essent_designs.dir/designs/blocks.cpp.o.d"
  "CMakeFiles/essent_designs.dir/designs/gcd.cpp.o"
  "CMakeFiles/essent_designs.dir/designs/gcd.cpp.o.d"
  "CMakeFiles/essent_designs.dir/designs/systolic.cpp.o"
  "CMakeFiles/essent_designs.dir/designs/systolic.cpp.o.d"
  "CMakeFiles/essent_designs.dir/designs/tinysoc.cpp.o"
  "CMakeFiles/essent_designs.dir/designs/tinysoc.cpp.o.d"
  "libessent_designs.a"
  "libessent_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essent_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
