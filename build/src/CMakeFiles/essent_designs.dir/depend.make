# Empty dependencies file for essent_designs.
# This may be replaced when dependencies are built.
