file(REMOVE_RECURSE
  "libessent_designs.a"
)
