# Empty dependencies file for essent_fuzz.
# This may be replaced when dependencies are built.
