file(REMOVE_RECURSE
  "CMakeFiles/essent_fuzz.dir/essent_fuzz.cpp.o"
  "CMakeFiles/essent_fuzz.dir/essent_fuzz.cpp.o.d"
  "essent_fuzz"
  "essent_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essent_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
