# Empty dependencies file for essentc.
# This may be replaced when dependencies are built.
