file(REMOVE_RECURSE
  "CMakeFiles/essentc.dir/essentc.cpp.o"
  "CMakeFiles/essentc.dir/essentc.cpp.o.d"
  "essentc"
  "essentc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essentc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
