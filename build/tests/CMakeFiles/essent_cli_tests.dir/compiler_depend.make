# Empty compiler generated dependencies file for essent_cli_tests.
# This may be replaced when dependencies are built.
