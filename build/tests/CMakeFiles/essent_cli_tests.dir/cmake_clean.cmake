file(REMOVE_RECURSE
  "CMakeFiles/essent_cli_tests.dir/test_cli.cpp.o"
  "CMakeFiles/essent_cli_tests.dir/test_cli.cpp.o.d"
  "essent_cli_tests"
  "essent_cli_tests.pdb"
  "essent_cli_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essent_cli_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
