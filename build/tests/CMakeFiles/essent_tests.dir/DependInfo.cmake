
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_activity_engine.cpp" "tests/CMakeFiles/essent_tests.dir/test_activity_engine.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_activity_engine.cpp.o.d"
  "/root/repo/tests/test_aggregates.cpp" "tests/CMakeFiles/essent_tests.dir/test_aggregates.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_aggregates.cpp.o.d"
  "/root/repo/tests/test_bitvec.cpp" "tests/CMakeFiles/essent_tests.dir/test_bitvec.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_bitvec.cpp.o.d"
  "/root/repo/tests/test_codegen.cpp" "tests/CMakeFiles/essent_tests.dir/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_codegen.cpp.o.d"
  "/root/repo/tests/test_engines_equiv.cpp" "tests/CMakeFiles/essent_tests.dir/test_engines_equiv.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_engines_equiv.cpp.o.d"
  "/root/repo/tests/test_firrtl.cpp" "tests/CMakeFiles/essent_tests.dir/test_firrtl.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_firrtl.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/essent_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_isa_fuzz.cpp" "tests/CMakeFiles/essent_tests.dir/test_isa_fuzz.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_isa_fuzz.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/essent_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_opt.cpp" "tests/CMakeFiles/essent_tests.dir/test_opt.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_opt.cpp.o.d"
  "/root/repo/tests/test_partitioner.cpp" "tests/CMakeFiles/essent_tests.dir/test_partitioner.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_partitioner.cpp.o.d"
  "/root/repo/tests/test_primop_conformance.cpp" "tests/CMakeFiles/essent_tests.dir/test_primop_conformance.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_primop_conformance.cpp.o.d"
  "/root/repo/tests/test_printer.cpp" "tests/CMakeFiles/essent_tests.dir/test_printer.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_printer.cpp.o.d"
  "/root/repo/tests/test_regressions.cpp" "tests/CMakeFiles/essent_tests.dir/test_regressions.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_regressions.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/essent_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_snapshots.cpp" "tests/CMakeFiles/essent_tests.dir/test_snapshots.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_snapshots.cpp.o.d"
  "/root/repo/tests/test_supernodes.cpp" "tests/CMakeFiles/essent_tests.dir/test_supernodes.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_supernodes.cpp.o.d"
  "/root/repo/tests/test_systolic.cpp" "tests/CMakeFiles/essent_tests.dir/test_systolic.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_systolic.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/essent_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/essent_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/essent_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_firrtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
