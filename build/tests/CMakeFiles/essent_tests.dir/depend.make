# Empty dependencies file for essent_tests.
# This may be replaced when dependencies are built.
