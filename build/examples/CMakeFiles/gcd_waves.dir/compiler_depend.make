# Empty compiler generated dependencies file for gcd_waves.
# This may be replaced when dependencies are built.
