file(REMOVE_RECURSE
  "CMakeFiles/gcd_waves.dir/gcd_waves.cpp.o"
  "CMakeFiles/gcd_waves.dir/gcd_waves.cpp.o.d"
  "gcd_waves"
  "gcd_waves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcd_waves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
