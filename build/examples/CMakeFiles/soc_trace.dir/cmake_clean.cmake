file(REMOVE_RECURSE
  "CMakeFiles/soc_trace.dir/soc_trace.cpp.o"
  "CMakeFiles/soc_trace.dir/soc_trace.cpp.o.d"
  "soc_trace"
  "soc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
