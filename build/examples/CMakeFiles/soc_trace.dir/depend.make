# Empty dependencies file for soc_trace.
# This may be replaced when dependencies are built.
