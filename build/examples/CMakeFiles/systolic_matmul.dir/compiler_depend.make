# Empty compiler generated dependencies file for systolic_matmul.
# This may be replaced when dependencies are built.
