file(REMOVE_RECURSE
  "CMakeFiles/systolic_matmul.dir/systolic_matmul.cpp.o"
  "CMakeFiles/systolic_matmul.dir/systolic_matmul.cpp.o.d"
  "systolic_matmul"
  "systolic_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
