
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_codegen_compiled.cpp" "bench/CMakeFiles/bench_codegen_compiled.dir/bench_codegen_compiled.cpp.o" "gcc" "bench/CMakeFiles/bench_codegen_compiled.dir/bench_codegen_compiled.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/essent_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_firrtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/essent_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
