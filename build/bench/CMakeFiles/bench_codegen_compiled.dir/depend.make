# Empty dependencies file for bench_codegen_compiled.
# This may be replaced when dependencies are built.
