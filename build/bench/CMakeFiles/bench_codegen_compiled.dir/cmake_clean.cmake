file(REMOVE_RECURSE
  "CMakeFiles/bench_codegen_compiled.dir/bench_codegen_compiled.cpp.o"
  "CMakeFiles/bench_codegen_compiled.dir/bench_codegen_compiled.cpp.o.d"
  "bench_codegen_compiled"
  "bench_codegen_compiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codegen_compiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
