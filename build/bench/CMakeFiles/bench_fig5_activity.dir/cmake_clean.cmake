file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_activity.dir/bench_fig5_activity.cpp.o"
  "CMakeFiles/bench_fig5_activity.dir/bench_fig5_activity.cpp.o.d"
  "bench_fig5_activity"
  "bench_fig5_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
