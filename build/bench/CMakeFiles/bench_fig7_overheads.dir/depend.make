# Empty dependencies file for bench_fig7_overheads.
# This may be replaced when dependencies are built.
