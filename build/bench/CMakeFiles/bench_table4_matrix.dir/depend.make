# Empty dependencies file for bench_table4_matrix.
# This may be replaced when dependencies are built.
