#include "obs/trace.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>

namespace essent::obs {

namespace {

// obs sits below every other library, so no support::strfmt here.
__attribute__((format(printf, 1, 2)))
std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  int n = vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  if (n < 0) return {};
  return std::string(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

}  // namespace

namespace trace_detail {

std::atomic<TraceSession*> g_current{nullptr};

namespace {
thread_local bool t_inPooledWork = false;
}

bool inPooledWork() { return t_inPooledWork; }
void setInPooledWork(bool in) { t_inPooledWork = in; }

}  // namespace trace_detail

const char* traceDetailName(TraceDetail d) {
  switch (d) {
    case TraceDetail::Phase: return "phase";
    case TraceDetail::Wave: return "wave";
    case TraceDetail::Partition: return "partition";
  }
  return "?";
}

bool parseTraceDetail(const std::string& s, TraceDetail& out) {
  if (s == "phase") out = TraceDetail::Phase;
  else if (s == "wave") out = TraceDetail::Wave;
  else if (s == "partition") out = TraceDetail::Partition;
  else return false;
  return true;
}

// One per recording thread, owned by the session, written only by the
// owning thread. The ring is preallocated at registration; record() is
// plain stores + increments. The category ns totals live outside the ring
// so attribution survives wraps.
class TraceBuffer {
 public:
  TraceBuffer(uint32_t tid, size_t capacity)
      : tid_(tid), capacity_(capacity == 0 ? 1 : capacity) {
    ring_.resize(capacity_);
  }

  void record(const TraceEvent& ev) {
    ring_[recorded_ % capacity_] = ev;
    recorded_++;
    if (ev.ph == 'X') catNs_[static_cast<size_t>(ev.cat)] += ev.durNs;
    uint64_t end = ev.tsNs + ev.durNs;
    if (end > lastTsNs_) lastTsNs_ = end;
  }

 private:
  friend class TraceSession;

  uint32_t tid_;
  size_t capacity_;
  std::string name_;
  std::vector<TraceEvent> ring_;
  uint64_t recorded_ = 0;
  uint64_t catNs_[3] = {0, 0, 0};  // indexed by TraceCat
  uint64_t lastTsNs_ = 0;
};

namespace {

// Process-unique session generation, keying the thread-local buffer cache
// so a stale entry can never alias a later session at the same address.
std::atomic<uint64_t> g_generation{1};

struct BufferCache {
  uint64_t generation = 0;
  TraceBuffer* buffer = nullptr;
};
thread_local BufferCache t_cache;

}  // namespace

TraceSession::TraceSession(TraceOptions opts)
    : opts_(opts),
      epoch_(std::chrono::steady_clock::now()),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed)) {}

TraceSession::~TraceSession() { uninstall(); }

void TraceSession::install() {
  trace_detail::g_current.store(this, std::memory_order_release);
}

void TraceSession::uninstall() {
  TraceSession* expected = this;
  trace_detail::g_current.compare_exchange_strong(expected, nullptr,
                                                  std::memory_order_acq_rel);
}

uint64_t TraceSession::nowNs() const {
  return toNs(std::chrono::steady_clock::now());
}

uint64_t TraceSession::toNs(std::chrono::steady_clock::time_point tp) const {
  if (tp <= epoch_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_).count());
}

TraceBuffer& TraceSession::buffer() {
  if (t_cache.generation == generation_) return *t_cache.buffer;
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<TraceBuffer>(
      static_cast<uint32_t>(buffers_.size()), opts_.ringCapacity));
  t_cache = {generation_, buffers_.back().get()};
  return *t_cache.buffer;
}

void TraceSession::complete(const char* name, uint64_t beginNs, TraceCat cat,
                            const char* argName, uint64_t value) {
  TraceEvent ev;
  ev.name = name;
  ev.argName = argName;
  ev.tsNs = beginNs;
  uint64_t now = nowNs();
  ev.durNs = now > beginNs ? now - beginNs : 0;
  ev.value = value;
  ev.ph = 'X';
  ev.cat = cat;
  buffer().record(ev);
}

void TraceSession::instant(const char* name, const char* argName, uint64_t value) {
  TraceEvent ev;
  ev.name = name;
  ev.argName = argName;
  ev.tsNs = nowNs();
  ev.value = value;
  ev.ph = 'i';
  buffer().record(ev);
}

void TraceSession::counter(const char* name, uint64_t value) {
  TraceEvent ev;
  ev.name = name;
  ev.tsNs = nowNs();
  ev.value = value;
  ev.ph = 'C';
  buffer().record(ev);
}

void TraceSession::nameThread(const std::string& name) {
  TraceBuffer& b = buffer();
  if (b.name_.empty()) b.name_ = name;
}

uint64_t TraceSession::eventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& b : buffers_) n += b->recorded_;
  return n;
}

uint64_t TraceSession::droppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& b : buffers_)
    if (b->recorded_ > b->capacity_) n += b->recorded_ - b->capacity_;
  return n;
}

std::vector<TraceSession::ThreadSnapshot> TraceSession::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadSnapshot> out;
  out.reserve(buffers_.size());
  for (const auto& b : buffers_) {
    ThreadSnapshot ts;
    ts.tid = b->tid_;
    ts.name = b->name_;
    ts.busyNs = b->catNs_[static_cast<size_t>(TraceCat::Busy)];
    ts.barrierNs = b->catNs_[static_cast<size_t>(TraceCat::Barrier)];
    size_t kept = static_cast<size_t>(std::min<uint64_t>(b->recorded_, b->capacity_));
    ts.dropped = b->recorded_ - kept;
    ts.events.reserve(kept);
    // Oldest retained first: after a wrap the ring's logical start is the
    // next overwrite position.
    size_t start = b->recorded_ > b->capacity_
                       ? static_cast<size_t>(b->recorded_ % b->capacity_)
                       : 0;
    for (size_t i = 0; i < kept; i++) ts.events.push_back(b->ring_[(start + i) % b->capacity_]);
    out.push_back(std::move(ts));
  }
  return out;
}

Json TraceSession::toJson() const {
  std::vector<ThreadSnapshot> snaps = snapshot();
  Json events = Json::array();
  for (const ThreadSnapshot& ts : snaps) {
    // Thread-name metadata so Perfetto labels the tracks.
    Json meta = Json::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = ts.tid;
    Json margs = Json::object();
    margs["name"] = ts.name.empty() ? "thread-" + std::to_string(ts.tid) : ts.name;
    meta["args"] = std::move(margs);
    events.push(std::move(meta));
  }
  // Chrome's ts/dur unit is microseconds; doubles keep sub-us precision.
  for (const ThreadSnapshot& ts : snaps) {
    for (const TraceEvent& ev : ts.events) {
      Json e = Json::object();
      e["name"] = ev.name;
      e["ph"] = std::string(1, ev.ph);
      e["ts"] = static_cast<double>(ev.tsNs) / 1000.0;
      if (ev.ph == 'X') e["dur"] = static_cast<double>(ev.durNs) / 1000.0;
      if (ev.ph == 'i') e["s"] = "t";
      e["pid"] = 1;
      e["tid"] = ts.tid;
      if (ev.ph == 'C') {
        Json args = Json::object();
        args["value"] = ev.value;
        e["args"] = std::move(args);
      } else if (ev.argName) {
        Json args = Json::object();
        args[ev.argName] = ev.value;
        e["args"] = std::move(args);
      }
      events.push(std::move(e));
    }
  }
  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  Json other = Json::object();
  other["detail"] = traceDetailName(opts_.detail);
  other["dropped_events"] = droppedCount();
  doc["otherData"] = std::move(other);
  return doc;
}

TraceSummary TraceSession::summary() const {
  std::vector<ThreadSnapshot> snaps = snapshot();
  TraceSummary s;
  for (const ThreadSnapshot& ts : snaps) {
    uint64_t last = 0;
    for (const TraceEvent& ev : ts.events) last = std::max(last, ev.tsNs + ev.durNs);
    s.windowNs = std::max(s.windowNs, last);
  }
  std::map<uint64_t, TraceStepStats> steps;
  for (const ThreadSnapshot& ts : snaps) {
    TraceThreadSummary t;
    t.tid = ts.tid;
    t.name = ts.name.empty() ? "thread-" + std::to_string(ts.tid) : ts.name;
    t.events = ts.events.size() + ts.dropped;
    t.dropped = ts.dropped;
    t.busyNs = ts.busyNs;
    t.barrierNs = ts.barrierNs;
    uint64_t accounted = t.busyNs + t.barrierNs;
    t.idleNs = s.windowNs > accounted ? s.windowNs - accounted : 0;
    if (s.windowNs > 0) {
      double w = static_cast<double>(s.windowNs);
      t.busyFrac = static_cast<double>(t.busyNs) / w;
      t.barrierFrac = static_cast<double>(t.barrierNs) / w;
      t.idleFrac = static_cast<double>(t.idleNs) / w;
    }
    s.events += t.events;
    s.dropped += t.dropped;
    s.threads.push_back(std::move(t));

    for (const TraceEvent& ev : ts.events) {
      if (ev.ph != 'X' || std::strcmp(ev.name, "pool.step") != 0) continue;
      TraceStepStats& ls = steps[ev.value];
      ls.step = ev.value;
      ls.spans++;
      ls.sumNs += ev.durNs;
      ls.maxNs = std::max(ls.maxNs, ev.durNs);
    }
  }
  s.truncated = s.dropped > 0;
  for (auto& [step, ls] : steps) {
    ls.meanNs = ls.spans ? static_cast<double>(ls.sumNs) / static_cast<double>(ls.spans) : 0.0;
    ls.imbalance = ls.meanNs > 0 ? static_cast<double>(ls.maxNs) / ls.meanNs : 1.0;
    s.steps.push_back(ls);
  }
  return s;
}

Json TraceSummary::toJson() const {
  Json j = Json::object();
  j["window_ns"] = windowNs;
  j["events"] = events;
  j["dropped_events"] = dropped;
  j["truncated"] = truncated;
  Json ts = Json::array();
  for (const TraceThreadSummary& t : threads) {
    Json row = Json::object();
    row["tid"] = t.tid;
    row["name"] = t.name;
    row["events"] = t.events;
    row["dropped"] = t.dropped;
    row["busy_ns"] = t.busyNs;
    row["barrier_ns"] = t.barrierNs;
    row["idle_ns"] = t.idleNs;
    row["busy_frac"] = t.busyFrac;
    row["barrier_frac"] = t.barrierFrac;
    row["idle_frac"] = t.idleFrac;
    ts.push(std::move(row));
  }
  j["threads"] = std::move(ts);
  Json ls = Json::array();
  for (const TraceStepStats& l : steps) {
    Json row = Json::object();
    row["step"] = l.step;
    row["spans"] = l.spans;
    row["sum_ns"] = l.sumNs;
    row["max_ns"] = l.maxNs;
    row["mean_ns"] = l.meanNs;
    row["imbalance"] = l.imbalance;
    ls.push(std::move(row));
  }
  j["steps"] = std::move(ls);
  return j;
}

std::string TraceSummary::render() const {
  std::string out = fmt(
      "trace summary: window %.3f ms, %llu events (%llu dropped%s)\n",
      static_cast<double>(windowNs) / 1e6, static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(dropped), truncated ? "; ring truncated" : "");
  out += fmt("  %-14s %8s %8s %8s %10s\n", "thread", "busy", "barrier", "idle", "events");
  for (const TraceThreadSummary& t : threads)
    out += fmt("  %-14s %7.1f%% %7.1f%% %7.1f%% %10llu\n", t.name.c_str(),
                  100.0 * t.busyFrac, 100.0 * t.barrierFrac, 100.0 * t.idleFrac,
                  static_cast<unsigned long long>(t.events));
  if (!steps.empty()) {
    // Rank by accumulated time so the expensive super-steps lead.
    std::vector<TraceStepStats> byCost = steps;
    std::sort(byCost.begin(), byCost.end(),
              [](const TraceStepStats& a, const TraceStepStats& b) {
                return a.sumNs > b.sumNs;
              });
    size_t n = std::min<size_t>(byCost.size(), 8);
    out += fmt("  per-super-step imbalance (top %zu of %zu by time, ring window):\n", n,
                  byCost.size());
    out += fmt("  %6s %8s %12s %12s %10s\n", "step", "spans", "mean_us", "max_us",
                  "imbalance");
    for (size_t i = 0; i < n; i++) {
      const TraceStepStats& l = byCost[i];
      out += fmt("  %6llu %8llu %12.2f %12.2f %9.2fx\n",
                    static_cast<unsigned long long>(l.step),
                    static_cast<unsigned long long>(l.spans), l.meanNs / 1e3,
                    static_cast<double>(l.maxNs) / 1e3, l.imbalance);
    }
  }
  return out;
}

}  // namespace essent::obs
