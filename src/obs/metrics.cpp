#include "obs/metrics.h"

#include <algorithm>
#include <vector>

namespace essent::obs {

Json LatencySnapshot::toJson() const {
  Json j = Json::object();
  j["count"] = count;
  j["sum_ns"] = sumNs;
  j["min_ns"] = minNs;
  j["max_ns"] = maxNs;
  j["mean_ns"] = meanNs;
  j["p50_ns"] = p50Ns;
  j["p90_ns"] = p90Ns;
  j["p99_ns"] = p99Ns;
  return j;
}

LatencySnapshot LatencyHistogram::snapshot() const {
  LatencySnapshot s;
  uint64_t counts[kBuckets];
  for (size_t i = 0; i < kBuckets; i++)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; i++) s.count += counts[i];
  if (s.count == 0) return s;
  s.sumNs = sum_.load(std::memory_order_relaxed);
  s.minNs = min_.load(std::memory_order_relaxed);
  s.maxNs = max_.load(std::memory_order_relaxed);
  s.meanNs = static_cast<double>(s.sumNs) / static_cast<double>(s.count);

  // Quantile by cumulative walk; interpolate linearly inside the bucket's
  // value range [2^(i-1), 2^i).
  auto quantile = [&](double q) -> double {
    double rank = q * static_cast<double>(s.count - 1);
    uint64_t below = 0;
    for (size_t i = 0; i < kBuckets; i++) {
      if (counts[i] == 0) continue;
      double lastInBucket = static_cast<double>(below + counts[i] - 1);
      if (rank <= lastInBucket) {
        if (i == 0) return 0.0;
        double lo = static_cast<double>(uint64_t{1} << (i - 1));
        double hi = lo * 2.0;
        double within = counts[i] > 1
                            ? (rank - static_cast<double>(below)) /
                                  static_cast<double>(counts[i] - 1)
                            : 0.0;
        double v = lo + within * (hi - lo);
        return std::min(v, static_cast<double>(s.maxNs));
      }
      below += counts[i];
    }
    return static_cast<double>(s.maxNs);
  };
  s.p50Ns = quantile(0.50);
  s.p90Ns = quantile(0.90);
  s.p99Ns = quantile(0.99);
  return s;
}

MetricCounter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<MetricCounter>();
  return *slot;
}

MetricGauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<MetricGauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

Json MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json j = Json::object();
  if (!counters_.empty()) {
    Json c = Json::object();
    for (const auto& [name, m] : counters_) c[name] = m->value();
    j["counters"] = std::move(c);
  }
  if (!gauges_.empty()) {
    Json g = Json::object();
    for (const auto& [name, m] : gauges_) g[name] = m->value();
    j["gauges"] = std::move(g);
  }
  if (!histograms_.empty()) {
    Json h = Json::object();
    for (const auto& [name, m] : histograms_) h[name] = m->snapshot().toJson();
    j["histograms"] = std::move(h);
  }
  return j;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* g = new MetricsRegistry();  // never destroyed
  return *g;
}

}  // namespace essent::obs
