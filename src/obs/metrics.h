// Lock-free runtime metrics: monotonic counters, gauges, and log2-bucketed
// latency histograms with quantile snapshots. Complements the tracing layer
// (obs/trace.h): traces answer "where did this run's time go", metrics
// accumulate cheap aggregates that merge into --stats-json.
//
// Instruments are created through a MetricsRegistry (mutex on creation,
// idempotent by name); recording on an instrument is a handful of relaxed
// atomic ops — safe from any thread, no locks, no allocation. Snapshots are
// racy-but-coherent-per-field, which is fine for reporting.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json.h"

namespace essent::obs {

// Monotonically increasing event count.
class MetricCounter {
 public:
  void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Last-write-wins double value (e.g. a ratio or queue depth).
class MetricGauge {
 public:
  void set(double v) { bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed); }
  double value() const { return std::bit_cast<double>(bits_.load(std::memory_order_relaxed)); }

 private:
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

struct LatencySnapshot {
  uint64_t count = 0;
  uint64_t sumNs = 0;
  uint64_t minNs = 0;
  uint64_t maxNs = 0;
  double meanNs = 0.0;
  double p50Ns = 0.0;
  double p90Ns = 0.0;
  double p99Ns = 0.0;

  Json toJson() const;
};

// Power-of-two bucketed histogram of nanosecond durations. Bucket 0 holds
// zeros; bucket i (i >= 1) holds [2^(i-1), 2^i). Quantiles interpolate
// linearly within a bucket, so they carry at most ~2x relative error —
// plenty for p50/p99 latency reporting.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void record(uint64_t ns) {
    buckets_[bucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    atomicMin(min_, ns);
    atomicMax(max_, ns);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  LatencySnapshot snapshot() const;

  static size_t bucketIndex(uint64_t ns) {
    size_t i = static_cast<size_t>(std::bit_width(ns));  // 0 for ns == 0
    return i < kBuckets ? i : kBuckets - 1;
  }

 private:
  static void atomicMin(std::atomic<uint64_t>& a, uint64_t v) {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {}
  }
  static void atomicMax(std::atomic<uint64_t>& a, uint64_t v) {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {}
  }

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// Named instrument store. counter()/gauge()/histogram() take a creation
// mutex on first use of a name and return a stable reference — cache the
// reference on hot paths. Instruments live until the registry does.
class MetricsRegistry {
 public:
  MetricCounter& counter(const std::string& name);
  MetricGauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  bool empty() const;
  // {"counters": {...}, "gauges": {...}, "histograms": {name: snapshot}}
  Json toJson() const;
  // Drops every instrument (invalidates outstanding references); test-only.
  void clear();

  // Process-wide registry, merged into essentc --stats-json.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace essent::obs
