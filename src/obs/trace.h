// Low-overhead execution tracing: per-thread ring-buffered event recording
// that serializes to Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) and feeds a post-run attribution report (per-thread
// busy/idle/barrier fractions, per-super-step imbalance).
//
// Design constraints, in priority order:
//  1. Disabled-by-default recording costs one relaxed/acquire load of a
//     global pointer and a branch — no clock read, no allocation, no lock.
//     TraceSpan and the trace*() helpers compile to branch-on-nullptr when
//     no session is installed, so tier-1 throughput paths are unaffected.
//  2. Recording is allocation-free and lock-free on the hot path: each
//     thread owns a fixed-capacity event ring (acquired once through a
//     thread-local cache; the only mutex is on first-touch registration).
//     When a ring fills, the oldest events are overwritten (flight-recorder
//     semantics) and the drop count is reported; the busy/barrier
//     nanosecond totals used by the attribution report accumulate outside
//     the ring, so fractions stay exact even after wraps.
//  3. Reading (toJson / summary / snapshot) requires quiescence: every
//     recording thread must have synchronized with the reader since its
//     last event (a ThreadPool fork/join, a thread join, or a farm run
//     returning all provide this). The session must outlive any thread
//     that may still record into it.
//
// Event names and arg keys are `const char*` with static storage duration
// (string literals) — the ring stores the pointers, never copies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace essent::obs {

// How much of the execution to record. Each level includes the previous:
//   phase     — compile phases, subprocess/watchdog events, farm instance
//               lifecycle; a handful of events per run.
//   wave      — + thread-pool work/step/barrier spans per worker per epoch,
//               activity counter tracks, and engine serial-phase spans; the
//               attribution report needs this. (The name predates the BSP
//               engine — it now covers super-step detail.)
//   partition — + one span per partition evaluation (high volume; the ring
//               keeps the most recent window).
enum class TraceDetail : uint8_t { Phase = 0, Wave = 1, Partition = 2 };

const char* traceDetailName(TraceDetail d);
bool parseTraceDetail(const std::string& s, TraceDetail& out);

// Attribution category of a duration span. Only None-category spans may
// nest inside categorized spans (and vice versa): the busy/barrier totals
// are plain sums, so categorized spans on one thread must be disjoint.
//   None    — structural detail, excluded from attribution.
//   Busy    — doing simulation/compilation work.
//   Barrier — waiting at a fork/join boundary for other lanes.
enum class TraceCat : uint8_t { None = 0, Busy = 1, Barrier = 2 };

struct TraceEvent {
  const char* name = nullptr;     // static string
  const char* argName = nullptr;  // static string; nullptr = no arg
  uint64_t tsNs = 0;              // ns since session epoch
  uint64_t durNs = 0;             // 'X' events only
  uint64_t value = 0;             // counter value / instant or span arg
  char ph = 'X';                  // 'X' complete, 'i' instant, 'C' counter
  TraceCat cat = TraceCat::None;
};

struct TraceOptions {
  TraceDetail detail = TraceDetail::Wave;
  size_t ringCapacity = 1 << 16;  // events retained per thread
};

// Per-thread attribution summary; fractions are of the whole session
// window, so busy + barrier + idle == 1 per thread by construction.
struct TraceThreadSummary {
  uint32_t tid = 0;
  std::string name;
  uint64_t events = 0;
  uint64_t dropped = 0;
  uint64_t busyNs = 0;
  uint64_t barrierNs = 0;
  uint64_t idleNs = 0;
  double busyFrac = 0.0;
  double barrierFrac = 0.0;
  double idleFrac = 0.0;
};

// Aggregate per-super-step statistics over the "pool.step" spans retained
// in the rings: how balanced each BSP super-step's per-lane run times are.
// imbalance = maxNs / meanNs (1.0 = perfectly balanced).
struct TraceStepStats {
  uint64_t step = 0;
  uint64_t spans = 0;
  uint64_t sumNs = 0;
  uint64_t maxNs = 0;
  double meanNs = 0.0;
  double imbalance = 1.0;
};

struct TraceSummary {
  uint64_t windowNs = 0;  // session epoch -> last recorded event
  uint64_t events = 0;
  uint64_t dropped = 0;
  // True when any ring overwrote events (flight-recorder wrap): the
  // busy/barrier/idle fractions stay exact (they accumulate outside the
  // ring), but `steps` below covers only the retained window — consumers
  // must not present it as a full-run report.
  bool truncated = false;
  std::vector<TraceThreadSummary> threads;
  std::vector<TraceStepStats> steps;  // from retained ring events only

  Json toJson() const;        // the `parallel` section of --stats-json
  std::string render() const; // the --trace-summary stdout table
};

class TraceBuffer;

class TraceSession {
 public:
  explicit TraceSession(TraceOptions opts = {});
  ~TraceSession();  // uninstalls itself if still current

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Makes this session the process-wide recording target. One session may
  // be current at a time; installing replaces the previous one.
  void install();
  void uninstall();  // no-op if not current

  static TraceSession* current();

  TraceDetail detail() const { return opts_.detail; }
  bool wants(TraceDetail d) const { return opts_.detail >= d; }

  // Monotonic ns since session construction.
  uint64_t nowNs() const;
  // Converts a steady_clock point to session-relative ns (clamped to 0 for
  // points before the epoch).
  uint64_t toNs(std::chrono::steady_clock::time_point tp) const;

  // --- Recording (hot path; call only on a non-null current()). ---
  void complete(const char* name, uint64_t beginNs, TraceCat cat = TraceCat::None,
                const char* argName = nullptr, uint64_t value = 0);
  void instant(const char* name, const char* argName = nullptr, uint64_t value = 0);
  void counter(const char* name, uint64_t value);
  // Labels the calling thread in the emitted trace (first caller wins);
  // slow path, may allocate.
  void nameThread(const std::string& name);

  // --- Reporting (requires quiescence; see file header). ---
  uint64_t eventCount() const;
  uint64_t droppedCount() const;

  struct ThreadSnapshot {
    uint32_t tid = 0;
    std::string name;
    uint64_t dropped = 0;
    uint64_t busyNs = 0;
    uint64_t barrierNs = 0;
    std::vector<TraceEvent> events;  // oldest retained -> newest
  };
  std::vector<ThreadSnapshot> snapshot() const;

  // Chrome trace-event JSON object: {"traceEvents": [...], ...}. Events
  // carry pid 1 and the session-assigned tid; thread names emit as 'M'
  // metadata events.
  Json toJson() const;
  TraceSummary summary() const;

 private:
  TraceBuffer& buffer();

  TraceOptions opts_;
  std::chrono::steady_clock::time_point epoch_;
  uint64_t generation_;  // process-unique; keys the thread-local cache
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
};

namespace trace_detail {
extern std::atomic<TraceSession*> g_current;
// True while the calling thread is inside a categorized ThreadPool work
// span; engine-level spans downgrade to TraceCat::None so attribution
// sums stay disjoint (see TraceCat).
bool inPooledWork();
void setInPooledWork(bool in);
}  // namespace trace_detail

inline TraceSession* TraceSession::current() {
  return trace_detail::g_current.load(std::memory_order_acquire);
}

// RAII duration span. When no session is installed (or the session's
// detail is below `minDetail`) construction is a load + branch and the
// destructor a branch — nothing else.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceCat cat = TraceCat::None,
                     TraceDetail minDetail = TraceDetail::Phase,
                     const char* argName = nullptr, uint64_t value = 0)
      : name_(name), argName_(argName), value_(value), cat_(cat) {
    s_ = TraceSession::current();
    if (s_ && s_->wants(minDetail))
      t0_ = s_->nowNs();
    else
      s_ = nullptr;
  }
  ~TraceSpan() {
    if (s_) s_->complete(name_, t0_, cat_, argName_, value_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSession* s_;
  const char* name_;
  const char* argName_;
  uint64_t value_;
  uint64_t t0_ = 0;
  TraceCat cat_;
};

inline void traceInstant(const char* name, const char* argName = nullptr,
                         uint64_t value = 0,
                         TraceDetail minDetail = TraceDetail::Phase) {
  if (TraceSession* s = TraceSession::current())
    if (s->wants(minDetail)) s->instant(name, argName, value);
}

inline void traceCounter(const char* name, uint64_t value,
                         TraceDetail minDetail = TraceDetail::Wave) {
  if (TraceSession* s = TraceSession::current())
    if (s->wants(minDetail)) s->counter(name, value);
}

}  // namespace essent::obs
