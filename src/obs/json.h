// Minimal JSON document model for the observability layer: an ordered
// value tree with a pretty-printing writer and a strict recursive-descent
// parser. No third-party dependencies — this is the serialization substrate
// for stats registries, runtime profiles, and bench artifacts, and the
// parser exists so tests can round-trip what the tools emit.
//
// Deliberate scope limits (telemetry, not a general JSON library):
//  * objects preserve insertion order and reject duplicate keys on parse;
//  * integers are kept exact (int64/uint64) rather than coerced to double,
//    so 64-bit cycle/op counters survive a round trip bit-for-bit;
//  * strings are UTF-8 passthrough; \uXXXX escapes decode to UTF-8.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace essent::obs {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& msg, size_t pos)
      : std::runtime_error("json error at offset " + std::to_string(pos) + ": " + msg) {}
};

class Json {
 public:
  enum class Kind { Null, Bool, Int, UInt, Double, Str, Arr, Obj };

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool v) : kind_(Kind::Bool), bool_(v) {}
  Json(int v) : kind_(Kind::Int), int_(v) {}
  Json(long v) : kind_(Kind::Int), int_(v) {}
  Json(long long v) : kind_(Kind::Int), int_(v) {}
  Json(unsigned v) : kind_(Kind::UInt), uint_(v) {}
  Json(unsigned long v) : kind_(Kind::UInt), uint_(v) {}
  Json(unsigned long long v) : kind_(Kind::UInt), uint_(v) {}
  Json(double v) : kind_(Kind::Double), dbl_(v) {}
  Json(const char* v) : kind_(Kind::Str), str_(v) {}
  Json(std::string v) : kind_(Kind::Str), str_(std::move(v)) {}

  static Json object() { Json j; j.kind_ = Kind::Obj; return j; }
  static Json array() { Json j; j.kind_ = Kind::Arr; return j; }

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isNumber() const {
    return kind_ == Kind::Int || kind_ == Kind::UInt || kind_ == Kind::Double;
  }
  bool isObject() const { return kind_ == Kind::Obj; }
  bool isArray() const { return kind_ == Kind::Arr; }
  bool isString() const { return kind_ == Kind::Str; }

  bool asBool() const { expect(Kind::Bool); return bool_; }
  const std::string& asStr() const { expect(Kind::Str); return str_; }
  uint64_t asUInt() const;  // accepts any non-negative integral number
  int64_t asInt() const;
  double asDouble() const;  // accepts any number

  // Object access. operator[] inserts a null member when missing (build
  // side); find() is the lookup that never mutates (read side).
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;
  const Json& at(const std::string& key) const;  // throws JsonError if missing
  const std::vector<std::pair<std::string, Json>>& members() const {
    expect(Kind::Obj);
    return obj_;
  }

  // Array access.
  void push(Json v);
  size_t size() const;  // array length or object member count
  const Json& at(size_t i) const;
  const std::vector<Json>& items() const { expect(Kind::Arr); return arr_; }

  // Serialization. indent > 0 pretty-prints; indent == 0 is compact.
  std::string dump(int indent = 2) const;

  // Strict parse of a complete document (trailing junk is an error).
  static Json parse(const std::string& text);

  bool operator==(const Json& o) const;
  bool operator!=(const Json& o) const { return !(*this == o); }

 private:
  void expect(Kind k) const;
  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

// Writes `doc.dump()` to `path` (with a trailing newline); throws
// JsonError on I/O failure so CLI callers surface a usable message.
void writeJsonFile(const std::string& path, const Json& doc);

}  // namespace essent::obs
