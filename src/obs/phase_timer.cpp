#include "obs/phase_timer.h"

#include <mutex>

#include "obs/trace.h"

namespace essent::obs {

namespace {

std::mutex& timingMutex() {
  static std::mutex m;
  return m;
}

Registry& timingRegistry() {
  static Registry r;
  return r;
}

}  // namespace

ScopedPhaseTimer::~ScopedPhaseTimer() {
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  // Existing phase timers double as trace spans, so compile phases land on
  // the timeline without re-instrumenting every call site.
  if (TraceSession* s = TraceSession::current())
    s->complete(phase_, s->toNs(start_), TraceCat::Busy);
  std::lock_guard<std::mutex> lock(timingMutex());
  timingRegistry().timer(phase_).record(elapsed);
}

Json phaseTimingsJson() {
  std::lock_guard<std::mutex> lock(timingMutex());
  return timingRegistry().toJson();
}

void resetPhaseTimings() {
  std::lock_guard<std::mutex> lock(timingMutex());
  timingRegistry().clear();
}

}  // namespace essent::obs
