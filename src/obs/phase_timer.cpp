#include "obs/phase_timer.h"

#include <mutex>

namespace essent::obs {

namespace {

std::mutex& timingMutex() {
  static std::mutex m;
  return m;
}

Registry& timingRegistry() {
  static Registry r;
  return r;
}

}  // namespace

ScopedPhaseTimer::~ScopedPhaseTimer() {
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  std::lock_guard<std::mutex> lock(timingMutex());
  timingRegistry().timer(phase_).record(elapsed);
}

Json phaseTimingsJson() {
  std::lock_guard<std::mutex> lock(timingMutex());
  return timingRegistry().toJson();
}

void resetPhaseTimings() {
  std::lock_guard<std::mutex> lock(timingMutex());
  timingRegistry().clear();
}

}  // namespace essent::obs
