#include "obs/stats.h"

namespace essent::obs {

namespace {

// Returns the existing entry for `name` or appends a default one.
template <typename T, typename Make>
T& findOrAdd(std::vector<std::pair<std::string, T>>& vec, const std::string& name, Make make) {
  for (auto& [k, v] : vec)
    if (k == name) return v;
  vec.emplace_back(name, make());
  return vec.back().second;
}

}  // namespace

void Histogram::record(uint64_t value) {
  count_++;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  size_t bucket = 0;
  while (value != 0) {  // bucket = 1 + floor(log2(value)) for value > 0
    bucket++;
    value >>= 1;
  }
  if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
  buckets_[bucket]++;
}

Json Histogram::toJson() const {
  Json j = Json::object();
  j["count"] = count_;
  j["sum"] = sum_;
  j["min"] = min();
  j["max"] = max_;
  j["mean"] = mean();
  Json b = Json::array();
  for (uint64_t v : buckets_) b.push(v);
  j["pow2_buckets"] = std::move(b);
  return j;
}

Json Timer::toJson() const {
  Json j = Json::object();
  j["seconds"] = seconds;
  j["calls"] = calls;
  return j;
}

Registry& Registry::child(const std::string& name) {
  return *findOrAdd(children_, name, [] { return std::make_unique<Registry>(); });
}

const Registry* Registry::findChild(const std::string& name) const {
  for (const auto& [k, v] : children_)
    if (k == name) return v.get();
  return nullptr;
}

uint64_t& Registry::counter(const std::string& name) {
  return findOrAdd(counters_, name, [] { return uint64_t{0}; });
}

double& Registry::gauge(const std::string& name) {
  return findOrAdd(gauges_, name, [] { return 0.0; });
}

Timer& Registry::timer(const std::string& name) {
  return findOrAdd(timers_, name, [] { return Timer{}; });
}

Histogram& Registry::histogram(const std::string& name) {
  return findOrAdd(histograms_, name, [] { return Histogram{}; });
}

bool Registry::empty() const {
  return counters_.empty() && gauges_.empty() && timers_.empty() && histograms_.empty() &&
         children_.empty();
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
  children_.clear();
}

Json Registry::toJson() const {
  Json j = Json::object();
  if (!counters_.empty()) {
    Json& c = j["counters"];
    c = Json::object();
    for (const auto& [k, v] : counters_) c[k] = v;
  }
  if (!gauges_.empty()) {
    Json& g = j["gauges"];
    g = Json::object();
    for (const auto& [k, v] : gauges_) g[k] = v;
  }
  if (!timers_.empty()) {
    Json& t = j["timers"];
    t = Json::object();
    for (const auto& [k, v] : timers_) t[k] = v.toJson();
  }
  if (!histograms_.empty()) {
    Json& h = j["histograms"];
    h = Json::object();
    for (const auto& [k, v] : histograms_) h[k] = v.toJson();
  }
  for (const auto& [k, v] : children_) j[k] = v->toJson();
  return j;
}

}  // namespace essent::obs
