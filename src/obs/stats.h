// Hierarchical stats registry: named trees of counters, gauges, timers,
// and histograms, serializable to JSON (obs/json.h). This is the common
// currency between the compile-time phase timers, the runtime engine
// profiles, and the bench reporters — one schema, one writer.
//
// A Registry node is cheap to create and navigate; recording into a
// counter/timer/histogram is an O(1) hash lookup plus an add, so it can sit
// on warm (not per-op hot) paths. The truly hot paths keep raw struct
// counters (sim::EngineStats, core::ActivityProfile) and export into a
// Registry only when a report is built.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"

namespace essent::obs {

// Power-of-two bucketed histogram for nonnegative integer samples (op
// counts, fanouts, window activity): bucket i counts samples in
// [2^(i-1), 2^i), bucket 0 counts zeros. 65 buckets cover uint64_t.
class Histogram {
 public:
  void record(uint64_t value);
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }  // trailing zeros trimmed
  Json toJson() const;

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  std::vector<uint64_t> buckets_;
};

// Accumulating wall-clock timer: total seconds + invocation count.
struct Timer {
  double seconds = 0.0;
  uint64_t calls = 0;
  void record(double s) { seconds += s; calls++; }
  Json toJson() const;
};

// One node in the stats tree. Children, counters, gauges, timers, and
// histograms each live in their own namespace; JSON serialization nests
// children inline and groups the leaf kinds under stable keys so consumers
// can tell a counter from a timer without guessing.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Child lookup, creating on first use. Path components must be non-empty.
  Registry& child(const std::string& name);
  const Registry* findChild(const std::string& name) const;

  uint64_t& counter(const std::string& name);
  void addCounter(const std::string& name, uint64_t delta) { counter(name) += delta; }
  double& gauge(const std::string& name);
  Timer& timer(const std::string& name);
  Histogram& histogram(const std::string& name);

  bool empty() const;
  void clear();

  // Schema: { "counters": {...}, "gauges": {...}, "timers": {...},
  //           "histograms": {...}, "<child>": {...}, ... } with empty
  // sections omitted. Insertion order is preserved throughout.
  Json toJson() const;

 private:
  template <typename T>
  using NamedVec = std::vector<std::pair<std::string, T>>;

  NamedVec<uint64_t> counters_;
  NamedVec<double> gauges_;
  NamedVec<Timer> timers_;
  NamedVec<Histogram> histograms_;
  NamedVec<std::unique_ptr<Registry>> children_;
};

}  // namespace essent::obs
