#include "obs/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace essent::obs {

namespace {

const char* kindName(Json::Kind k) {
  switch (k) {
    case Json::Kind::Null: return "null";
    case Json::Kind::Bool: return "bool";
    case Json::Kind::Int: return "int";
    case Json::Kind::UInt: return "uint";
    case Json::Kind::Double: return "double";
    case Json::Kind::Str: return "string";
    case Json::Kind::Arr: return "array";
    case Json::Kind::Obj: return "object";
  }
  return "?";
}

void escapeTo(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::expect(Kind k) const {
  if (kind_ != k)
    throw JsonError(std::string("expected ") + kindName(k) + ", value is " + kindName(kind_), 0);
}

uint64_t Json::asUInt() const {
  if (kind_ == Kind::UInt) return uint_;
  if (kind_ == Kind::Int && int_ >= 0) return static_cast<uint64_t>(int_);
  if (kind_ == Kind::Double && dbl_ >= 0 && dbl_ == std::floor(dbl_))
    return static_cast<uint64_t>(dbl_);
  throw JsonError(std::string("expected unsigned integer, value is ") + kindName(kind_), 0);
}

int64_t Json::asInt() const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::UInt && uint_ <= static_cast<uint64_t>(INT64_MAX))
    return static_cast<int64_t>(uint_);
  if (kind_ == Kind::Double && dbl_ == std::floor(dbl_)) return static_cast<int64_t>(dbl_);
  throw JsonError(std::string("expected integer, value is ") + kindName(kind_), 0);
}

double Json::asDouble() const {
  switch (kind_) {
    case Kind::Double: return dbl_;
    case Kind::Int: return static_cast<double>(int_);
    case Kind::UInt: return static_cast<double>(uint_);
    default: throw JsonError(std::string("expected number, value is ") + kindName(kind_), 0);
  }
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Obj;
  expect(Kind::Obj);
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(key, Json{});
  return obj_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Obj) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (!v) throw JsonError("missing key '" + key + "'", 0);
  return *v;
}

void Json::push(Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Arr;
  expect(Kind::Arr);
  arr_.push_back(std::move(v));
}

size_t Json::size() const {
  if (kind_ == Kind::Arr) return arr_.size();
  if (kind_ == Kind::Obj) return obj_.size();
  throw JsonError(std::string("size() on ") + kindName(kind_), 0);
}

const Json& Json::at(size_t i) const {
  expect(Kind::Arr);
  if (i >= arr_.size()) throw JsonError("array index out of range", 0);
  return arr_[i];
}

bool Json::operator==(const Json& o) const {
  if (isNumber() && o.isNumber()) {
    // Exact integers compare exactly; anything involving a double compares
    // as double (good enough for round-trip tests).
    if (kind_ != Kind::Double && o.kind_ != Kind::Double) {
      bool negA = kind_ == Kind::Int && int_ < 0;
      bool negB = o.kind_ == Kind::Int && o.int_ < 0;
      if (negA != negB) return false;
      if (negA) return int_ == o.int_;
      return asUInt() == o.asUInt();
    }
    return asDouble() == o.asDouble();
  }
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == o.bool_;
    case Kind::Str: return str_ == o.str_;
    case Kind::Arr: return arr_ == o.arr_;
    case Kind::Obj: return obj_ == o.obj_;
    default: return true;  // numbers handled above
  }
}

void Json::dumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Int: out += std::to_string(int_); break;
    case Kind::UInt: out += std::to_string(uint_); break;
    case Kind::Double: {
      if (!std::isfinite(dbl_)) { out += "null"; break; }  // JSON has no inf/nan
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.9g", dbl_);  // terse form if it round-trips
      if (std::strtod(buf, nullptr) != dbl_) std::snprintf(buf, sizeof buf, "%.17g", dbl_);
      std::string tok = buf;
      if (tok.find_first_of(".eE") == std::string::npos) tok += ".0";
      out += tok;
      break;
    }
    case Kind::Str: escapeTo(out, str_); break;
    case Kind::Arr: {
      if (arr_.empty()) { out += "[]"; break; }
      out += '[';
      for (size_t i = 0; i < arr_.size(); i++) {
        if (i) out += indent > 0 ? "," : ",";
        newline(depth + 1);
        arr_[i].dumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::Obj: {
      if (obj_.empty()) { out += "{}"; break; }
      out += '{';
      for (size_t i = 0; i < obj_.size(); i++) {
        if (i) out += ",";
        newline(depth + 1);
        escapeTo(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser.

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parseDocument() {
    Json v = parseValue();
    skipWs();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const { throw JsonError(msg, pos_); }

  void skipWs() {
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') pos_++;
      else break;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) { pos_++; return true; }
    return false;
  }

  void require(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool consumeWord(const char* w) {
    size_t n = std::strlen(w);
    if (s_.compare(pos_, n, w) == 0) { pos_ += n; return true; }
    return false;
  }

  Json parseValue() {
    skipWs();
    char c = peek();
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') return Json(parseString());
    if (consumeWord("true")) return Json(true);
    if (consumeWord("false")) return Json(false);
    if (consumeWord("null")) return Json(nullptr);
    if (c == '-' || (c >= '0' && c <= '9')) return parseNumber();
    fail("unexpected character");
  }

  Json parseObject() {
    require('{');
    Json obj = Json::object();
    skipWs();
    if (consume('}')) return obj;
    while (true) {
      skipWs();
      if (peek() != '"') fail("expected object key string");
      std::string key = parseString();
      if (obj.find(key)) fail("duplicate object key '" + key + "'");
      skipWs();
      require(':');
      obj[key] = parseValue();
      skipWs();
      if (consume(',')) continue;
      require('}');
      return obj;
    }
  }

  Json parseArray() {
    require('[');
    Json arr = Json::array();
    skipWs();
    if (consume(']')) return arr;
    while (true) {
      arr.push(parseValue());
      skipWs();
      if (consume(',')) continue;
      require(']');
      return arr;
    }
  }

  std::string parseString() {
    require('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') { out += c; continue; }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': appendCodepoint(out, parseHex4()); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parseHex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; i++) {
      if (pos_ >= s_.size()) fail("truncated \\u escape");
      char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return v;
  }

  static void appendCodepoint(std::string& out, unsigned cp) {
    // BMP only (no surrogate-pair recombination) — enough for our emitters,
    // which never write non-BMP escapes.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parseNumber() {
    size_t start = pos_;
    bool neg = consume('-');
    if (pos_ >= s_.size() || !(s_[pos_] >= '0' && s_[pos_] <= '9')) fail("malformed number");
    size_t intStart = pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') pos_++;
    if (s_[intStart] == '0' && pos_ - intStart > 1) fail("leading zero in number");
    bool isInt = true;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      isInt = false;
      pos_++;
      if (pos_ >= s_.size() || !(s_[pos_] >= '0' && s_[pos_] <= '9'))
        fail("malformed fraction");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') pos_++;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      isInt = false;
      pos_++;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) pos_++;
      if (pos_ >= s_.size() || !(s_[pos_] >= '0' && s_[pos_] <= '9'))
        fail("malformed exponent");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') pos_++;
    }
    std::string tok = s_.substr(start, pos_ - start);
    if (isInt) {
      errno = 0;
      if (neg) {
        long long v = std::strtoll(tok.c_str(), nullptr, 10);
        if (errno != ERANGE) return Json(v);
      } else {
        unsigned long long v = std::strtoull(tok.c_str(), nullptr, 10);
        if (errno != ERANGE) return Json(v);
      }
      // Out-of-range integers degrade to double rather than erroring.
    }
    return Json(std::strtod(tok.c_str(), nullptr));
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parseDocument(); }

void writeJsonFile(const std::string& path, const Json& doc) {
  std::ofstream f(path);
  if (!f) throw JsonError("cannot open '" + path + "' for writing", 0);
  f << doc.dump(2) << "\n";
  if (!f.good()) throw JsonError("write to '" + path + "' failed", 0);
}

}  // namespace essent::obs
