// RAII wall-clock phase timers for the compile flow. Each pipeline pass
// (parse, lower, build-ir, netlist, mffc, merge phases, schedule, codegen)
// wraps itself in a ScopedPhaseTimer; totals accumulate in a process-global
// registry so any tool can attribute where compile time went without
// threading a context object through every layer.
//
// Recording happens once per phase invocation (two steady_clock reads and
// one mutex-guarded map update), which is noise next to the passes being
// timed — the timers stay on unconditionally.
#pragma once

#include <chrono>

#include "obs/stats.h"

namespace essent::obs {

// The global phase-timing registry. Snapshot with phaseTimingsJson(),
// zero between independent compilations with resetPhaseTimings().
// Access is internally synchronized; the returned JSON lists phases in
// first-execution order.
Json phaseTimingsJson();
void resetPhaseTimings();

class ScopedPhaseTimer {
 public:
  // `phase` must outlive the timer; string literals are the intended use.
  explicit ScopedPhaseTimer(const char* phase)
      : phase_(phase), start_(std::chrono::steady_clock::now()) {}
  ~ScopedPhaseTimer();

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  const char* phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace essent::obs
