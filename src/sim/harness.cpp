#include "sim/harness.h"

#include <chrono>

namespace essent::sim {

RunResult runEngine(Engine& engine, uint64_t maxCycles, const StimulusFn& stim, VcdWriter* vcd) {
  RunResult res;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t c = 0; c < maxCycles; c++) {
    if (stim) stim(engine, c);
    engine.tick();
    if (vcd) vcd->sample(c + 1);
    res.cycles++;
    if (engine.stopped()) break;
  }
  auto end = std::chrono::steady_clock::now();
  res.seconds = std::chrono::duration<double>(end - start).count();
  res.stopped = engine.stopped();
  res.exitCode = engine.exitCode();
  res.stats = engine.stats();
  return res;
}

std::string Mismatch::describe() const {
  return "cycle " + std::to_string(cycle) + ": signal '" + signal + "' differs: " + valueA +
         " vs " + valueB;
}

std::optional<Mismatch> compareEngines(Engine& a, Engine& b, uint64_t cycles,
                                       const StimulusFn& stim) {
  const SimIR& ir = a.ir();
  // Pre-collect comparable signals (named, alive in both IRs). The two
  // engines may run differently-optimized IRs of the same design, so match
  // by name.
  std::vector<std::pair<int32_t, int32_t>> pairs;
  std::vector<std::string> names;
  for (size_t s = 0; s < ir.signals.size(); s++) {
    const Signal& sig = ir.signals[s];
    if (sig.name.empty() || sig.kind == SigKind::Temp || sig.kind == SigKind::Dead) continue;
    int32_t other = b.ir().findSignal(sig.name);
    if (other < 0) continue;
    const Signal& osig = b.ir().signals[static_cast<size_t>(other)];
    if (osig.kind == SigKind::Temp || osig.kind == SigKind::Dead) continue;
    pairs.emplace_back(static_cast<int32_t>(s), other);
    names.push_back(sig.name);
  }

  for (uint64_t c = 0; c < cycles; c++) {
    if (stim) {
      stim(a, c);
      stim(b, c);
    }
    a.tick();
    b.tick();
    for (size_t i = 0; i < pairs.size(); i++) {
      BitVec va = a.peekSigBV(pairs[i].first);
      BitVec vb = b.peekSigBV(pairs[i].second);
      if (va != vb)
        return Mismatch{c, names[i], va.toHexString(), vb.toHexString()};
    }
    if (a.stopped() != b.stopped())
      return Mismatch{c, "<stop>", a.stopped() ? "stopped" : "running",
                      b.stopped() ? "stopped" : "running"};
    if (a.stopped()) break;
  }
  if (a.printOutput() != b.printOutput())
    return Mismatch{cycles, "<printf>", a.printOutput(), b.printOutput()};
  // Final memory-contents comparison (cheaper than per-cycle, still catches
  // divergent write behaviour).
  for (const auto& mem : ir.mems) {
    bool otherHas = false;
    for (const auto& om : b.ir().mems) otherHas |= om.name == mem.name;
    if (!otherHas) continue;
    for (uint64_t addr = 0; addr < mem.depth; addr++) {
      uint64_t va = a.peekMem(mem.name, addr);
      uint64_t vb = b.peekMem(mem.name, addr);
      if (va != vb)
        return Mismatch{cycles, mem.name + "[" + std::to_string(addr) + "]",
                        std::to_string(va), std::to_string(vb)};
    }
  }
  return std::nullopt;
}

}  // namespace essent::sim
