// The one-call compile pipeline: FIRRTL text -> shared CompiledDesign.
//
// compileDesign() runs the whole front half of the flow — parse (with
// recovery), width inference, lowering, IR build, and the classic IR
// optimizations — then seals the result into the immutable, shareable
// CompiledDesign that every engine kind executes. It is the supported way
// for tools, benches, and tests to go from text to something runnable;
// the layer-by-layer entry points (firrtl::parse, sim::buildFromFirrtl,
// CompiledDesign::compile) remain available through this header but are
// implementation surface, not API.
//
//   #include <essent/compile.h>
//   essent::diag::DiagEngine de;
//   auto design = essent::sim::compileDesign(firrtlText, {}, de);
//   if (!design) { /* de holds E0xxx diagnostics */ }
//   auto eng = essent::sim::makeEngine(essent::sim::EngineKind::Ccss, design);
#pragma once

#include <memory>
#include <string>

#include "diag/diag.h"
#include "firrtl/parser.h"  // re-exported: parse/AST layer (migration window)
#include "sim/builder.h"    // re-exported: BuildOptions + IR-level entry points
#include "sim/engine.h"
#include "support/resource_guard.h"

namespace essent::sim {

// Everything the text->CompiledDesign pipeline can be configured with.
// `build` carries the lowering/optimization knobs (paper §III-B); `limits`
// caps IR size, estimated state bytes, and wall clock, so hostile inputs
// fail with E05xx diagnostics instead of exhausting the host.
struct CompileOptions {
  BuildOptions build;
  support::ResourceLimits limits;
};

// Compiles FIRRTL text into a shared, immutable CompiledDesign. All
// errors — lexical (E01xx), syntax (E02xx), width (E03xx), build (E04xx),
// resource (E05xx) — are reported through `diags`; returns nullptr when
// any error was reported. On success the result is ready for
// sim::makeEngine / core::SimFarm and can back any number of concurrent
// engine instances.
std::shared_ptr<const CompiledDesign> compileDesign(const std::string& firrtlText,
                                                    const CompileOptions& opts,
                                                    diag::DiagEngine& diags);

// Throwing convenience for contexts without diagnostic plumbing (tests,
// benches): throws std::runtime_error carrying the rendered diagnostics.
std::shared_ptr<const CompiledDesign> compileDesign(const std::string& firrtlText,
                                                    const CompileOptions& opts = {});

}  // namespace essent::sim
