// Common engine interface.
//
// An Engine owns the mutable simulation state for one SimIR and advances it
// one clock cycle per tick(). The tick contract (identical across engines):
//
//   1. combinational values are (re)computed from current register/memory
//      state and the input values poked since the previous tick;
//   2. printf/stop side effects fire based on those combinational values;
//   3. state elements update (registers load their next values, memory
//      writes commit).
//
// After tick(), peeking an output returns the value computed from the
// *pre-update* state — i.e. the value the cycle "emitted" — while peeking a
// register returns its post-update value. All engines agree bit-for-bit,
// which the cross-engine equivalence tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/sim_ir.h"

namespace essent::sim {

// One SplitMix-style draw keyed by (seed, slot): the shared randomizeState
// sequence. Same seed + same slot order => identical state in every engine,
// including per-lane views that replay the sequence into a lane arena.
inline uint64_t stateRandomDraw(uint64_t seed, uint64_t slot) {
  uint64_t z = seed + slot * 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Immutable compiled structure shared by every engine instance simulating
// the same design: the lowered SimIR plus its arena layout and precompiled
// op stream. Compile once, then instantiate any number of engines against
// the same `std::shared_ptr<const CompiledDesign>` — each instance owns
// only its mutable SimState, so a batch of N concurrent simulations (see
// core::SimFarm) pays for one build instead of N.
struct CompiledDesign {
  SimIR ir;
  Layout layout;
  std::vector<ExecOp> exec;

  // Takes the IR by value: move in to avoid the copy, or pass an lvalue to
  // compile a private snapshot.
  static std::shared_ptr<const CompiledDesign> compile(SimIR ir);

  // Backend extension cache. Each engine kind derives additional immutable
  // structure from the design (the full-cycle hot-op stream, the
  // event-driven group graph, the CCSS partition schedule); attaching it
  // here means N instances — and future backends — share one build per
  // (design, key). `key` must encode every option the build depends on.
  // Thread-safe: concurrent callers of the same key serialize and all
  // receive the single built value.
  template <typename T>
  std::shared_ptr<const T> getOrBuildExt(
      const std::string& key,
      const std::function<std::shared_ptr<const T>()>& build) const {
    return std::static_pointer_cast<const T>(getOrBuildExtErased(
        key, [&build]() { return std::static_pointer_cast<const void>(build()); }));
  }

 private:
  std::shared_ptr<const void> getOrBuildExtErased(
      const std::string& key,
      const std::function<std::shared_ptr<const void>()>& build) const;

  mutable std::mutex extMu_;
  mutable std::map<std::string, std::shared_ptr<const void>> ext_;
};

struct EngineStats {
  uint64_t cycles = 0;
  // Base simulation work: ops actually evaluated.
  uint64_t opsEvaluated = 0;
  // Static overhead (activity-agnostic): per-cycle partition active checks.
  uint64_t partitionChecks = 0;
  uint64_t partitionActivations = 0;
  // Dynamic overhead (activity-dependent): output compares + consumer flag
  // sets performed by active partitions.
  uint64_t outputComparisons = 0;
  uint64_t triggerSets = 0;
  // Exact per-cycle activity: signals whose value changed this cycle.
  uint64_t signalsChangedTotal = 0;
  std::vector<uint32_t> changedPerCycle;  // filled when activity tracking is on

  void resetCounters() { *this = EngineStats{}; }
};

class Engine {
 public:
  // Shares a previously compiled structure; the engine owns only state.
  explicit Engine(std::shared_ptr<const CompiledDesign> design);
  virtual ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const SimIR& ir() const { return *ir_; }
  // The shared immutable structure this engine executes.
  const std::shared_ptr<const CompiledDesign>& design() const { return design_; }

  // Input driving; unknown names throw std::out_of_range. Virtual so that
  // engine *views* (core::LaneEngine's per-lane handles, which keep their
  // state in a structure-of-arrays arena instead of a private SimState) can
  // redirect state access while reusing everything else.
  virtual void poke(const std::string& name, uint64_t value);
  virtual void pokeBV(const std::string& name, const BitVec& value);

  // Value observation (any named signal).
  virtual uint64_t peek(const std::string& name) const;
  virtual BitVec peekBV(const std::string& name) const;
  virtual uint64_t peekSig(int32_t sig) const { return state_.vals[layout_.offset[sig]]; }
  virtual BitVec peekSigBV(int32_t sig) const;

  // Backdoor memory access (testbench-style $readmemh loading). Must be
  // used before the first tick (or after resetState) so every engine's
  // activity bookkeeping sees a consistent initial state. Unknown memory
  // names throw std::out_of_range.
  virtual void pokeMem(const std::string& memName, uint64_t addr, uint64_t value);
  virtual uint64_t peekMem(const std::string& memName, uint64_t addr) const;

  // One full clock cycle.
  virtual void tick() = 0;

  // Zeroes all state and counters; the next tick behaves like the first.
  virtual void resetState();

  // Deterministically randomizes registers and memory contents (Verilator
  // --x-initial style): catches designs that rely on zero-initialized
  // state. Same seed + same IR => identical state in every engine. Must be
  // used between tick()s (it re-arms activity tracking like a restore).
  virtual void randomizeState(uint64_t seed);

  // Checkpointing: captures/restores the complete simulation state (arena,
  // memories, stop status). Restore re-arms conditional engines so the next
  // tick re-evaluates everything; cycle/work counters are not part of the
  // checkpoint.
  struct Snapshot {
    std::vector<uint64_t> vals;
    std::vector<std::vector<uint64_t>> memWords;
    bool stopped = false;
    int exitCode = 0;
  };
  virtual Snapshot saveState() const;
  virtual void restoreState(const Snapshot& snapshot);

  virtual const char* name() const = 0;

  uint64_t cycleCount() const { return stats_.cycles; }
  bool stopped() const { return stopped_; }
  int exitCode() const { return exitCode_; }

  EngineStats& stats() { return stats_; }
  const EngineStats& stats() const { return stats_; }

  // When enabled, engines record the per-cycle changed-signal count
  // (used by the Figure 5 activity bench). Costs extra work per cycle.
  void setTrackActivity(bool on) { trackActivity_ = on; }
  bool trackActivity() const { return trackActivity_; }

  // Number of signals participating in activity accounting (non-dead).
  size_t designSignalCount() const { return designSignals_; }

  // printf output is appended here (defaults to an internal buffer).
  std::string& printOutput() { return printBuf_; }

 protected:
  // Tag constructor for engine views: binds the shared immutable structure
  // but builds no SimState and evaluates no const ops — the derived view
  // redirects every state access (the virtuals above) into an external
  // arena, while the inherited stats_/stopped_/exitCode_/printBuf_ members
  // still hold the view's own per-instance bookkeeping.
  struct ViewTag {};
  Engine(std::shared_ptr<const CompiledDesign> design, ViewTag);

  // Immutable structure (shared across instances) ...
  std::shared_ptr<const CompiledDesign> design_;
  const SimIR* ir_;            // = &design_->ir
  const Layout& layout_;       // = design_->layout
  const std::vector<ExecOp>& exec_;  // = design_->exec
  // ... and this instance's mutable state.
  SimState state_;
  EngineStats stats_;
  bool trackActivity_ = false;
  bool stopped_ = false;
  int exitCode_ = 0;
  std::string printBuf_;
  size_t designSignals_ = 0;

  int32_t sigIdOrThrow(const std::string& name) const;

  // Constants never change: engines evaluate them once (construction and
  // resetState) and exclude them from per-cycle work, exactly as compiled
  // simulators fold them into expressions.
  void evalConstOps();

  // Called after randomizeState/restoreState mutate state behind the
  // engine's back; conditional engines re-arm their activity machinery.
  virtual void onStateClobbered() {}

  // Evaluates print/stop enables from the arena and fires side effects.
  void firePrintsAndStops();

  // Word-level helpers.
  bool sigWordsEqual(int32_t sig, const uint64_t* other) const;
  void copySigWords(int32_t dst, int32_t src);  // same width required
  bool sigValsEqual(int32_t a, int32_t b) const;
};

// Renders one printf according to FIRRTL format semantics (%d, %x, %b, %c,
// %%); exposed for direct testing.
std::string formatPrintf(const SimIR& ir, const Layout& lay, const SimState& st,
                         const PrintInfo& p);

}  // namespace essent::sim
