// Levelized event-driven engine.
//
// Classic fine-grain event-driven simulation with levelization (Wang &
// Maurer's LECSIM style, §II of the paper): every signal is tracked
// individually, changed signals enqueue their consumers into per-level
// buckets, and entries are evaluated in level order so each runs at most
// once per cycle (singular execution). The per-signal bookkeeping is
// exactly the scheduling overhead the paper argues makes event-driven
// simulators lose to full-cycle ones despite their activity
// proportionality — this engine is the repository's stand-in for the
// commercial event-driven simulator ("CommVer").
//
// Scheduling units are "groups": single ops for acyclic designs, or whole
// combinational-loop supernodes (evaluated to convergence) when the design
// has them.
#pragma once

#include <memory>

#include "sim/engine.h"

namespace essent::sim {

// Immutable event-driven structure derived from a CompiledDesign: the
// scheduling-group graph (groups = ops, or supernodes fused), the
// signal-to-consumer-group map, and the group levelization. Shared by
// every EventDrivenEngine instance via the CompiledDesign extension cache.
struct CompiledEventDriven {
  std::vector<std::vector<int32_t>> groups;        // group -> member op indices
  std::vector<int32_t> groupOfOp;                  // op -> group
  std::vector<std::vector<int32_t>> consumersOf;   // signal -> group ids
  std::vector<int32_t> groupLevel;
  std::vector<std::vector<int32_t>> memReadGroups; // mem -> group ids
  int32_t maxLevel = 0;

  static std::shared_ptr<const CompiledEventDriven> get(const CompiledDesign& design);
};

class EventDrivenEngine : public Engine {
 public:
  // Shares the compiled structure; this instance owns only its SimState
  // plus the dynamic event queue.
  explicit EventDrivenEngine(std::shared_ptr<const CompiledDesign> design);

  void tick() override;
  void resetState() override;
  const char* name() const override { return "event-driven"; }

 protected:
  void onStateClobbered() override { evalAll_ = true; }

 private:
  // Static structure, shared across instances.
  std::shared_ptr<const CompiledEventDriven> ed_;
  const std::vector<std::vector<int32_t>>& groups_;
  const std::vector<std::vector<int32_t>>& consumersOf_;
  const std::vector<int32_t>& groupLevel_;
  const std::vector<std::vector<int32_t>>& memReadGroups_;

  // Dynamic queue (per instance).
  std::vector<std::vector<int32_t>> buckets_;  // per level
  std::vector<bool> inQueue_;
  bool evalAll_ = true;  // first cycle after reset evaluates everything

  // Previous input values to detect external changes.
  std::vector<uint64_t> prevInputs_;

  void enqueueGroup(int32_t group);
  void dirtySignal(int32_t sig);
  // Evaluates a group; returns the number of dests whose value changed
  // (those are also marked dirty).
  uint32_t evalGroup(int32_t group);
};

}  // namespace essent::sim
