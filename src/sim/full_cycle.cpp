#include "sim/full_cycle.h"

#include "sim/op_eval.h"

namespace essent::sim {

std::shared_ptr<const CompiledFullCycle> CompiledFullCycle::get(const CompiledDesign& design) {
  return design.getOrBuildExt<CompiledFullCycle>("full-cycle", [&design]() {
    auto fc = std::make_shared<CompiledFullCycle>();
    for (size_t i = 0; i < design.exec.size(); i++) {
      if (design.exec[i].code == OpCode::Const) continue;  // evaluated once at init
      fc->hotOps.push_back(design.exec[i]);
      fc->hotSuper.push_back(design.ir.superOf(i));
    }
    return fc;
  });
}

FullCycleEngine::FullCycleEngine(std::shared_ptr<const CompiledDesign> design)
    : Engine(std::move(design)),
      fc_(CompiledFullCycle::get(*design_)),
      hotOps_(fc_->hotOps),
      hotSuper_(fc_->hotSuper) {}

void FullCycleEngine::resetState() {
  Engine::resetState();
  prevVals_.clear();
}

void FullCycleEngine::tick() {
  if (trackActivity_) prevVals_ = state_.vals;

  // 1. Combinational settle: one straight-line pass over the static
  //    schedule (the ops are in topological order; constants were folded
  //    out at init). Supernode runs iterate to convergence (§II).
  if (!ir_->hasCombLoops()) {
    for (const ExecOp& op : hotOps_) evalExecOp(*ir_, layout_, state_, op);
  } else {
    for (size_t i = 0; i < hotOps_.size();) {
      int32_t super = hotSuper_[i];
      if (super < 0) {
        evalExecOp(*ir_, layout_, state_, hotOps_[i]);
        i++;
        continue;
      }
      size_t j = i;
      while (j < hotOps_.size() && hotSuper_[j] == super) j++;
      evalSuperRange(*ir_, layout_, state_, hotOps_.data() + i, j - i);
      i = j;
    }
  }
  stats_.opsEvaluated += hotOps_.size();

  // 2. Side effects.
  firePrintsAndStops();

  // 3. State update.
  updateState();

  if (trackActivity_) {
    uint32_t changed = 0;
    for (size_t s = 0; s < ir_->signals.size(); s++) {
      const Signal& sig = ir_->signals[s];
      if (sig.kind == SigKind::Dead || sig.kind == SigKind::Temp) continue;
      if (!sigWordsEqual(static_cast<int32_t>(s), prevVals_.data() + layout_.offset[s]))
        changed++;
    }
    stats_.signalsChangedTotal += changed;
    stats_.changedPerCycle.push_back(changed);
  }
  stats_.cycles++;
}

void FullCycleEngine::updateState() {
  for (const RegInfo& r : ir_->regs) copySigWords(r.sig, r.next);
  for (size_t m = 0; m < ir_->mems.size(); m++) {
    const MemInfo& mem = ir_->mems[m];
    uint32_t rw = state_.memRowWords[m];
    for (const MemWriter& w : mem.writers) {
      if (state_.vals[layout_.offset[w.en]] == 0) continue;
      if (state_.vals[layout_.offset[w.mask]] == 0) continue;
      uint64_t addr = state_.vals[layout_.offset[w.addr]];
      if (addr >= mem.depth) continue;
      uint32_t off = layout_.offset[w.data];
      for (uint32_t i = 0; i < rw; i++)
        state_.memWords[m][addr * rw + i] = state_.vals[off + i];
    }
  }
}

}  // namespace essent::sim
