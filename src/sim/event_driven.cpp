#include "sim/event_driven.h"

#include <algorithm>

#include "sim/op_eval.h"

namespace essent::sim {

std::shared_ptr<const CompiledEventDriven> CompiledEventDriven::get(const CompiledDesign& design) {
  return design.getOrBuildExt<CompiledEventDriven>("event-driven", [&design]() {
    const SimIR& ir = design.ir;
    auto ed = std::make_shared<CompiledEventDriven>();
    // Scheduling groups: one per op, with supernode members fused.
    ed->groupOfOp.assign(ir.ops.size(), -1);
    for (size_t i = 0; i < ir.ops.size(); i++) {
      if (ed->groupOfOp[i] != -1) continue;
      int32_t super = ir.superOf(i);
      int32_t gid = static_cast<int32_t>(ed->groups.size());
      ed->groups.emplace_back();
      if (super < 0) {
        ed->groups.back().push_back(static_cast<int32_t>(i));
        ed->groupOfOp[i] = gid;
      } else {
        for (int32_t m : ir.supers[static_cast<size_t>(super)]) {
          ed->groups.back().push_back(m);
          ed->groupOfOp[static_cast<size_t>(m)] = gid;
        }
      }
    }

    ed->consumersOf.resize(ir.signals.size());
    ed->memReadGroups.resize(ir.mems.size());
    for (size_t i = 0; i < ir.ops.size(); i++) {
      const Op& op = ir.ops[i];
      int32_t gid = ed->groupOfOp[i];
      int n = op.numArgs();
      for (int k = 0; k < n; k++) {
        auto& lst = ed->consumersOf[op.args[k]];
        if (lst.empty() || lst.back() != gid) lst.push_back(gid);
      }
      if (op.code == OpCode::MemRead) {
        auto& lst = ed->memReadGroups[static_cast<size_t>(op.imm0)];
        if (lst.empty() || lst.back() != gid) lst.push_back(gid);
      }
    }

    // Levelization over the group condensation: a single pass works because
    // groups are numbered in (condensed) topological order.
    ed->groupLevel.assign(ed->groups.size(), 0);
    for (size_t g = 0; g < ed->groups.size(); g++) {
      int32_t lvl = 0;
      for (int32_t opIdx : ed->groups[g]) {
        const Op& op = ir.ops[static_cast<size_t>(opIdx)];
        int n = op.numArgs();
        for (int k = 0; k < n; k++) {
          int32_t d = ir.signals[op.args[k]].defOp;
          if (d < 0) continue;
          int32_t gd = ed->groupOfOp[static_cast<size_t>(d)];
          if (gd != static_cast<int32_t>(g))
            lvl = std::max(lvl, ed->groupLevel[static_cast<size_t>(gd)] + 1);
        }
      }
      ed->groupLevel[g] = lvl;
      ed->maxLevel = std::max(ed->maxLevel, lvl);
    }
    return ed;
  });
}

EventDrivenEngine::EventDrivenEngine(std::shared_ptr<const CompiledDesign> design)
    : Engine(std::move(design)),
      ed_(CompiledEventDriven::get(*design_)),
      groups_(ed_->groups),
      consumersOf_(ed_->consumersOf),
      groupLevel_(ed_->groupLevel),
      memReadGroups_(ed_->memReadGroups) {
  buckets_.resize(static_cast<size_t>(ed_->maxLevel) + 1);
  inQueue_.assign(groups_.size(), false);
  prevInputs_.assign(layout_.totalWords, 0);
}

void EventDrivenEngine::resetState() {
  Engine::resetState();
  for (auto& b : buckets_) b.clear();
  std::fill(inQueue_.begin(), inQueue_.end(), false);
  std::fill(prevInputs_.begin(), prevInputs_.end(), 0);
  evalAll_ = true;
}

void EventDrivenEngine::enqueueGroup(int32_t group) {
  if (inQueue_[static_cast<size_t>(group)]) return;
  inQueue_[static_cast<size_t>(group)] = true;
  buckets_[static_cast<size_t>(groupLevel_[static_cast<size_t>(group)])].push_back(group);
}

void EventDrivenEngine::dirtySignal(int32_t sig) {
  for (int32_t g : consumersOf_[static_cast<size_t>(sig)]) enqueueGroup(g);
}

uint32_t EventDrivenEngine::evalGroup(int32_t group) {
  const auto& members = groups_[static_cast<size_t>(group)];
  uint32_t changed = 0;
  if (members.size() == 1) {
    const ExecOp& eop = exec_[static_cast<size_t>(members[0])];
    stats_.opsEvaluated++;
    if (evalExecOpChanged(*ir_, layout_, state_, eop)) {
      changed++;
      dirtySignal(eop.dest);
    }
    return changed;
  }
  // Supernode: snapshot dests, converge, propagate net changes.
  std::vector<uint64_t> old;
  std::vector<size_t> offsets;
  for (int32_t m : members) {
    const ExecOp& eop = exec_[static_cast<size_t>(m)];
    offsets.push_back(old.size());
    for (uint32_t i = 0; i < layout_.nwords[eop.dest]; i++)
      old.push_back(state_.vals[eop.destOff + i]);
  }
  evalSuperRange(*ir_, layout_, state_, exec_.data() + members.front(), members.size());
  stats_.opsEvaluated += members.size();
  for (size_t mi = 0; mi < members.size(); mi++) {
    const ExecOp& eop = exec_[static_cast<size_t>(members[mi])];
    bool diff = false;
    for (uint32_t i = 0; i < layout_.nwords[eop.dest]; i++)
      diff |= old[offsets[mi] + i] != state_.vals[eop.destOff + i];
    if (diff) {
      changed++;
      dirtySignal(eop.dest);
    }
  }
  return changed;
}

void EventDrivenEngine::tick() {
  uint32_t changed = 0;

  // Seed with externally changed inputs (per-signal change detection —
  // part of this engine's inherent overhead).
  if (evalAll_) {
    for (size_t g = 0; g < groups_.size(); g++) enqueueGroup(static_cast<int32_t>(g));
    evalAll_ = false;
  } else {
    for (int32_t in : ir_->inputs) {
      if (!sigWordsEqual(in, prevInputs_.data() + layout_.offset[in])) dirtySignal(in);
    }
  }
  for (int32_t in : ir_->inputs) {
    uint32_t off = layout_.offset[in];
    for (uint32_t i = 0; i < layout_.nwords[in]; i++) prevInputs_[off + i] = state_.vals[off + i];
  }

  // Levelized propagation: each group at most once, in level order.
  for (auto& bucket : buckets_) {
    for (size_t bi = 0; bi < bucket.size(); bi++) {
      int32_t g = bucket[bi];
      inQueue_[static_cast<size_t>(g)] = false;
      changed += evalGroup(g);
    }
    bucket.clear();
  }

  firePrintsAndStops();

  // State update: registers and memories; changes seed next cycle's queue.
  for (const RegInfo& r : ir_->regs) {
    if (!sigValsEqual(r.sig, r.next)) {
      copySigWords(r.sig, r.next);
      changed++;
      dirtySignal(r.sig);
    }
  }
  for (size_t m = 0; m < ir_->mems.size(); m++) {
    const MemInfo& mem = ir_->mems[m];
    uint32_t rw = state_.memRowWords[m];
    for (const MemWriter& w : mem.writers) {
      if (state_.vals[layout_.offset[w.en]] == 0) continue;
      if (state_.vals[layout_.offset[w.mask]] == 0) continue;
      uint64_t addr = state_.vals[layout_.offset[w.addr]];
      if (addr >= mem.depth) continue;
      uint32_t off = layout_.offset[w.data];
      bool cellChanged = false;
      for (uint32_t i = 0; i < rw; i++) {
        if (state_.memWords[m][addr * rw + i] != state_.vals[off + i]) {
          state_.memWords[m][addr * rw + i] = state_.vals[off + i];
          cellChanged = true;
        }
      }
      if (cellChanged) {
        // Conservative: any read of this memory may now produce a new value.
        for (int32_t g : memReadGroups_[m]) enqueueGroup(g);
      }
    }
  }

  if (trackActivity_) stats_.changedPerCycle.push_back(changed);
  stats_.signalsChangedTotal += changed;
  stats_.cycles++;
}

}  // namespace essent::sim
