// Value Change Dump (VCD) waveform writer.
//
// The paper notes VCD itself exploits inactivity (it only records signals
// when they change); this writer does exactly that: on each sample it emits
// only the signals whose values differ from the previous sample.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace essent::sim {

class VcdWriter {
 public:
  // Dumps all named, non-dead signals of the engine's IR. The header is
  // written immediately.
  VcdWriter(std::ostream& out, const Engine& engine, const std::string& timescale = "1ns");

  // Samples the engine's current values at the given time; emits changes only.
  void sample(uint64_t time);

  // Fraction of tracked signals that changed per sample so far (the VCD
  // writer doubles as an activity probe).
  double averageActivity() const;

 private:
  std::ostream& out_;
  const Engine& engine_;
  std::vector<int32_t> sigs_;
  std::vector<std::string> codes_;
  std::vector<BitVec> last_;
  bool first_ = true;
  uint64_t samples_ = 0;
  uint64_t changes_ = 0;

  static std::string idCode(size_t index);
  void emitValue(size_t i, const BitVec& v);
};

}  // namespace essent::sim
