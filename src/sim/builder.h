// Lowers a flattened, when-expanded, width-inferred FIRRTL module (the
// output of firrtl::lowerCircuit) into the executable SimIR.
//
// Restrictions enforced here (documented in DESIGN.md):
//  * single implicit clock — Clock-typed ports/wires are bookkept but all
//    state advances on the one tick() clock; clocks may not appear in
//    logic expressions;
//  * registers reset synchronously via their reset mux (folded into the
//    next-value expression at build time, exactly like ESSENT emits
//    `reset ? init : next`).
#pragma once

#include <stdexcept>

#include "firrtl/ast.h"
#include "sim/sim_ir.h"

namespace essent::sim {

struct BuildOptions {
  // The classic compiler optimizations of paper §III-B. The evaluation's
  // "Baseline" simulator disables all three; ESSENT enables all three.
  bool constProp = true;
  bool cse = true;
  bool dce = true;
  // Combinational loops: rejected with a per-SCC diagnostic by default
  // (the paper assumes acyclic designs after state splitting). When true,
  // each SCC becomes a supernode evaluated to convergence (paper §II).
  bool allowCombLoops = false;
};

class BuildError : public std::runtime_error {
 public:
  explicit BuildError(const std::string& msg) : std::runtime_error("sim build error: " + msg) {}
};

// Throws BuildError on combinational cycles or unsupported constructs.
SimIR buildSimIR(const firrtl::Module& lowered, const BuildOptions& opts = {});

// Convenience: parse + lower + build from FIRRTL text.
SimIR buildFromFirrtl(const std::string& firrtlText, const BuildOptions& opts = {});

}  // namespace essent::sim
