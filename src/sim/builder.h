// Lowers a flattened, when-expanded, width-inferred FIRRTL module (the
// output of firrtl::lowerCircuit) into the executable SimIR.
//
// Restrictions enforced here (documented in DESIGN.md):
//  * single implicit clock — Clock-typed ports/wires are bookkept but all
//    state advances on the one tick() clock; clocks may not appear in
//    logic expressions;
//  * registers reset synchronously via their reset mux (folded into the
//    next-value expression at build time, exactly like ESSENT emits
//    `reset ? init : next`).
#pragma once

#include <optional>
#include <stdexcept>

#include "diag/diag.h"
#include "firrtl/ast.h"
#include "sim/sim_ir.h"
#include "support/resource_guard.h"

namespace essent::sim {

struct BuildOptions {
  // The classic compiler optimizations of paper §III-B. The evaluation's
  // "Baseline" simulator disables all three; ESSENT enables all three.
  bool constProp = true;
  bool cse = true;
  bool dce = true;
  // Combinational loops: rejected with a per-SCC diagnostic by default
  // (the paper assumes acyclic designs after state splitting). When true,
  // each SCC becomes a supernode evaluated to convergence (paper §II).
  bool allowCombLoops = false;
};

class BuildError : public std::runtime_error {
 public:
  explicit BuildError(const std::string& msg) : std::runtime_error("sim build error: " + msg) {}
};

// Throws BuildError on combinational cycles or unsupported constructs.
SimIR buildSimIR(const firrtl::Module& lowered, const BuildOptions& opts = {});

// Convenience: parse + lower + build from FIRRTL text.
SimIR buildFromFirrtl(const std::string& firrtlText, const BuildOptions& opts = {});

// Diag-collecting front door (essentc, the mutate fuzzer): parses with
// recovery so every lexical/syntax error (E01xx/E02xx) surfaces in one
// pass, then lowers with diag-collecting width inference (E03xx), then
// builds the IR (build failures → E04xx). Resource ceilings are enforced
// twice — on the AST before lowering (vector sizes, mem depths, and
// instance fan-out multiply during flattening, so explosions are refused
// before they allocate) and on the finished IR — reporting E05xx.
// Returns nullopt whenever any error was reported through `de`.
std::optional<SimIR> buildFromFirrtlDiag(const std::string& firrtlText, const BuildOptions& opts,
                                         diag::DiagEngine& de,
                                         const support::ResourceLimits& limits = {});

// Estimated resident state bytes for a built IR (signals + registers +
// memories); the quantity governed by ResourceLimits::maxSimMemBytes.
uint64_t estimateStateBytes(const SimIR& ir);

}  // namespace essent::sim
