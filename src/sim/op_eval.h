// Inline op evaluation shared by every engine.
//
// Each ExecOp is executed either on the fast path — all operand and result
// widths fit in one 64-bit word, evaluated branch-free on the arena — or on
// the slow path, which materializes BitVecs and runs the reference
// semantics in support/bvops.h. Both paths store canonically masked values,
// so value comparison is plain word comparison everywhere.
#pragma once

#include <stdexcept>

#include "sim/sim_ir.h"
#include "support/bvops.h"

namespace essent::sim {

inline uint64_t maskW(uint32_t w) {
  return w >= 64 ? ~uint64_t{0} : ((uint64_t{1} << w) - 1);
}

// Sign-extends the low `w` bits of v to a full int64.
inline int64_t sx(uint64_t v, uint32_t w) {
  if (w == 0) return 0;
  if (w >= 64) return static_cast<int64_t>(v);
  uint64_t m = uint64_t{1} << (w - 1);
  return static_cast<int64_t>((v ^ m) - m);
}

// Loads a signal's current value as a BitVec (slow path only).
BitVec loadBV(const SimState& st, const Layout& lay, const SimIR& ir, int32_t sig);
// Stores `v`, extended/truncated to the signal's declared width.
void storeBV(SimState& st, const Layout& lay, const SimIR& ir, int32_t sig, const BitVec& v,
             bool signedExtend);

// Out-of-line evaluation for multi-word operands.
void evalExecOpSlow(const SimIR& ir, const Layout& lay, SimState& st, const ExecOp& op);

// Fast-path semantics for one single-word op, shared by the scalar engines
// (evalExecOp below) and the lane engine's per-lane kernels. `c` is read
// only by Mux; MemRead is NOT handled here (it needs memory state — callers
// route it separately). The result is unmasked: callers apply
// `& maskW(op.destW)` before storing.
inline uint64_t evalFastScalar(const SimIR& ir, const ExecOp& op, uint64_t a, uint64_t b,
                               uint64_t c) {
  uint64_t r = 0;
  switch (op.code) {
    case OpCode::Add:
      r = op.signedOp ? static_cast<uint64_t>(sx(a, op.aW) + sx(b, op.bW)) : a + b;
      break;
    case OpCode::Sub:
      r = op.signedOp ? static_cast<uint64_t>(sx(a, op.aW) - sx(b, op.bW)) : a - b;
      break;
    case OpCode::Mul:
      r = op.signedOp
              ? static_cast<uint64_t>(sx(a, op.aW)) * static_cast<uint64_t>(sx(b, op.bW))
              : a * b;
      break;
    case OpCode::Div:
      if (b == 0) r = 0;
      else if (op.signedOp) r = static_cast<uint64_t>(sx(a, op.aW) / sx(b, op.bW));
      else r = a / b;
      break;
    case OpCode::Rem:
      if (b == 0) r = a;  // x % 0 := x truncated (matches bvops::rem)
      else if (op.signedOp) {
        // INT64_MIN % -1 overflows the quotient and is UB in C++ (SIGFPE on
        // x86); the mathematical remainder is 0, which is what bvops::rem
        // and the emitted C++ produce.
        const int64_t sb = sx(b, op.bW);
        r = sb == -1 ? 0 : static_cast<uint64_t>(sx(a, op.aW) % sb);
      } else r = a % b;
      break;
    case OpCode::Lt:
      r = op.signedOp ? (sx(a, op.aW) < sx(b, op.bW)) : (a < b);
      break;
    case OpCode::Leq:
      r = op.signedOp ? (sx(a, op.aW) <= sx(b, op.bW)) : (a <= b);
      break;
    case OpCode::Gt:
      r = op.signedOp ? (sx(a, op.aW) > sx(b, op.bW)) : (a > b);
      break;
    case OpCode::Geq:
      r = op.signedOp ? (sx(a, op.aW) >= sx(b, op.bW)) : (a >= b);
      break;
    case OpCode::Eq:
      r = op.signedOp ? (sx(a, op.aW) == sx(b, op.bW)) : (a == b);
      break;
    case OpCode::Neq:
      r = op.signedOp ? (sx(a, op.aW) != sx(b, op.bW)) : (a != b);
      break;
    case OpCode::Dshl:
      r = b >= op.destW ? 0 : a << b;
      break;
    case OpCode::Dshr:
      if (op.signedOp) r = static_cast<uint64_t>(sx(a, op.aW) >> (b > 63 ? 63 : b));
      else r = b >= op.aW ? 0 : a >> b;
      break;
    case OpCode::And:
      r = (op.signedOp ? static_cast<uint64_t>(sx(a, op.aW)) & static_cast<uint64_t>(sx(b, op.bW))
                       : a & b);
      break;
    case OpCode::Or:
      r = (op.signedOp ? static_cast<uint64_t>(sx(a, op.aW)) | static_cast<uint64_t>(sx(b, op.bW))
                       : a | b);
      break;
    case OpCode::Xor:
      r = (op.signedOp ? static_cast<uint64_t>(sx(a, op.aW)) ^ static_cast<uint64_t>(sx(b, op.bW))
                       : a ^ b);
      break;
    case OpCode::Cat:
      r = op.bW >= 64 ? b : ((a << op.bW) | b);
      break;
    case OpCode::Not:
      r = ~a;
      break;
    case OpCode::Andr:
      r = a == maskW(op.aW);
      break;
    case OpCode::Orr:
      r = a != 0;
      break;
    case OpCode::Xorr:
      r = static_cast<uint64_t>(__builtin_parityll(a));
      break;
    case OpCode::Cvt:
      r = op.signedOp ? static_cast<uint64_t>(sx(a, op.aW)) : a;
      break;
    case OpCode::Neg:
      r = op.signedOp ? static_cast<uint64_t>(-sx(a, op.aW)) : (~a + 1);
      break;
    case OpCode::Pad:
    case OpCode::Copy:
      r = op.signedOp ? static_cast<uint64_t>(sx(a, op.aW)) : a;
      break;
    case OpCode::Shl:
      r = op.imm0 >= 64 ? 0 : a << op.imm0;
      break;
    case OpCode::Shr:
      if (op.signedOp) r = static_cast<uint64_t>(sx(a, op.aW) >> (op.imm0 > 63 ? 63 : op.imm0));
      else r = op.imm0 >= op.aW ? 0 : a >> op.imm0;
      break;
    case OpCode::Bits:
      r = (a >> op.imm1) & maskW(static_cast<uint32_t>(op.imm0 - op.imm1 + 1));
      break;
    case OpCode::Head:
      r = op.imm0 == 0 ? 0 : a >> (op.aW - op.imm0);
      break;
    case OpCode::Tail:
      r = a;  // masked to destW below
      break;
    case OpCode::Mux: {
      uint64_t tv = op.signedOp ? static_cast<uint64_t>(sx(b, op.bW)) : b;
      uint64_t fv = op.signedOp ? static_cast<uint64_t>(sx(c, op.cW)) : c;
      r = a != 0 ? tv : fv;
      break;
    }
    case OpCode::Const:
      r = ir.constPool[static_cast<size_t>(op.imm0)].word(0);
      break;
    case OpCode::MemRead:
      break;  // handled by the caller (needs memory state)
  }
  return r;
}

inline void evalExecOp(const SimIR& ir, const Layout& lay, SimState& st, const ExecOp& op) {
  if (!op.fast) {
    evalExecOpSlow(ir, lay, st, op);
    return;
  }
  uint64_t* vals = st.vals.data();
  const uint64_t a = op.aOff != UINT32_MAX ? vals[op.aOff] : 0;
  const uint64_t b = op.bOff != UINT32_MAX ? vals[op.bOff] : 0;
  uint64_t r;
  if (op.code == OpCode::MemRead) {
    const MemInfo& m = ir.mems[static_cast<size_t>(op.imm0)];
    r = (b != 0 && a < m.depth) ? st.memWords[static_cast<size_t>(op.imm0)][a] : 0;
  } else {
    r = evalFastScalar(ir, op, a, b, op.code == OpCode::Mux ? vals[op.cOff] : 0);
  }
  vals[op.destOff] = r & maskW(op.destW);
}

// Evaluates one op and reports whether its destination value changed.
inline bool evalExecOpChanged(const SimIR& ir, const Layout& lay, SimState& st,
                              const ExecOp& op) {
  uint32_t off = op.destOff;
  uint32_t nw = lay.nwords[op.dest];
  uint64_t saved[8];
  std::vector<uint64_t> savedWide;
  const uint64_t* old;
  if (nw <= 8) {
    for (uint32_t i = 0; i < nw; i++) saved[i] = st.vals[off + i];
    old = saved;
  } else {
    savedWide.assign(st.vals.begin() + off, st.vals.begin() + off + nw);
    old = savedWide.data();
  }
  evalExecOp(ir, lay, st, op);
  for (uint32_t i = 0; i < nw; i++)
    if (st.vals[off + i] != old[i]) return true;
  return false;
}

// Bound on Gauss-Seidel passes over a combinational-loop supernode before
// declaring oscillation (paper §II: supernodes are evaluated repeatedly
// until convergence).
constexpr int kMaxSuperIters = 1000;

// Iterates a supernode's member ops (a contiguous ExecOp range, in
// execution order) to a fixpoint. Throws std::runtime_error when the loop
// oscillates.
inline void evalSuperRange(const SimIR& ir, const Layout& lay, SimState& st, const ExecOp* ops,
                           size_t count) {
  for (int iter = 0; iter < kMaxSuperIters; iter++) {
    bool changed = false;
    for (size_t i = 0; i < count; i++) changed |= evalExecOpChanged(ir, lay, st, ops[i]);
    if (!changed) return;
  }
  throw std::runtime_error(
      "combinational loop failed to converge (oscillating feedback?) in supernode");
}

}  // namespace essent::sim
