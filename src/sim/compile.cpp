#include "sim/compile.h"

#include <stdexcept>
#include <utility>

namespace essent::sim {

std::shared_ptr<const CompiledDesign> compileDesign(const std::string& firrtlText,
                                                    const CompileOptions& opts,
                                                    diag::DiagEngine& diags) {
  std::optional<SimIR> ir = buildFromFirrtlDiag(firrtlText, opts.build, diags, opts.limits);
  if (!ir) return nullptr;
  return CompiledDesign::compile(std::move(*ir));
}

std::shared_ptr<const CompiledDesign> compileDesign(const std::string& firrtlText,
                                                    const CompileOptions& opts) {
  diag::DiagEngine de;
  auto design = compileDesign(firrtlText, opts, de);
  if (!design) throw std::runtime_error("compileDesign failed:\n" + de.render());
  return design;
}

}  // namespace essent::sim
