#include "sim/vcd.h"

#include "support/strutil.h"

namespace essent::sim {

std::string VcdWriter::idCode(size_t index) {
  // Printable ASCII 33..126, shortest-first.
  std::string code;
  size_t v = index;
  do {
    code += static_cast<char>(33 + (v % 94));
    v /= 94;
  } while (v != 0);
  return code;
}

VcdWriter::VcdWriter(std::ostream& out, const Engine& engine, const std::string& timescale)
    : out_(out), engine_(engine) {
  const SimIR& ir = engine.ir();
  for (size_t s = 0; s < ir.signals.size(); s++) {
    const Signal& sig = ir.signals[s];
    if (sig.name.empty() || sig.kind == SigKind::Dead || sig.kind == SigKind::Temp) continue;
    sigs_.push_back(static_cast<int32_t>(s));
  }
  out_ << "$date\n  (essent-cpp)\n$end\n";
  out_ << "$version\n  essent-cpp VCD dumper\n$end\n";
  out_ << "$timescale " << timescale << " $end\n";
  out_ << "$scope module " << (ir.name.empty() ? "top" : ir.name) << " $end\n";
  for (size_t i = 0; i < sigs_.size(); i++) {
    const Signal& sig = ir.signals[static_cast<size_t>(sigs_[i])];
    codes_.push_back(idCode(i));
    std::string safe = sanitizeIdent(sig.name);
    out_ << "$var wire " << sig.width << " " << codes_[i] << " " << safe << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  last_.resize(sigs_.size());
}

void VcdWriter::emitValue(size_t i, const BitVec& v) {
  const Signal& sig = engine_.ir().signals[static_cast<size_t>(sigs_[i])];
  if (sig.width == 1) {
    out_ << (v.isZero() ? '0' : '1') << codes_[i] << "\n";
  } else {
    out_ << "b" << (v.isZero() ? "0" : v.toBinString()) << " " << codes_[i] << "\n";
  }
}

void VcdWriter::sample(uint64_t time) {
  out_ << "#" << time << "\n";
  if (first_) out_ << "$dumpvars\n";
  for (size_t i = 0; i < sigs_.size(); i++) {
    BitVec v = engine_.peekSigBV(sigs_[i]);
    if (first_ || v != last_[i]) {
      emitValue(i, v);
      if (!first_) changes_++;
      last_[i] = std::move(v);
    }
  }
  if (first_) out_ << "$end\n";
  else samples_ += sigs_.size();
  first_ = false;
}

double VcdWriter::averageActivity() const {
  return samples_ == 0 ? 0.0 : static_cast<double>(changes_) / static_cast<double>(samples_);
}

}  // namespace essent::sim
