// IR-level optimizations: constant propagation, common-subexpression
// elimination, and dead-code elimination (the "classic compiler
// optimizations" of paper §III-B). The full-cycle Baseline configuration of
// the evaluation disables all of them; ESSENT enables all.
#include <functional>
#include <unordered_map>

#include "sim/op_eval.h"
#include "sim/sim_ir.h"

namespace essent::sim {

namespace {

// Evaluates a single op whose arguments are all known constants.
BitVec evalConstOp(const SimIR& ir, const Op& op, const std::vector<const BitVec*>& argv) {
  using namespace bvops;
  const bool s = op.signedOp;
  auto A = [&]() -> const BitVec& { return *argv[0]; };
  auto B = [&]() -> const BitVec& { return *argv[1]; };
  auto C = [&]() -> const BitVec& { return *argv[2]; };
  switch (op.code) {
    case OpCode::Add: return add(A(), B(), s);
    case OpCode::Sub: return sub(A(), B(), s);
    case OpCode::Mul: return mul(A(), B(), s);
    case OpCode::Div: return div(A(), B(), s);
    case OpCode::Rem: return rem(A(), B(), s);
    case OpCode::Lt: return lt(A(), B(), s);
    case OpCode::Leq: return leq(A(), B(), s);
    case OpCode::Gt: return gt(A(), B(), s);
    case OpCode::Geq: return geq(A(), B(), s);
    case OpCode::Eq: return eq(A(), B(), s);
    case OpCode::Neq: return neq(A(), B(), s);
    case OpCode::Dshl: return dshl(A(), B(), ir.signals[op.args[1]].width);
    case OpCode::Dshr: return dshr(A(), s, B());
    case OpCode::And: return band(A(), B(), s);
    case OpCode::Or: return bor(A(), B(), s);
    case OpCode::Xor: return bxor(A(), B(), s);
    case OpCode::Cat: return cat(A(), B());
    case OpCode::Not: return bnot(A());
    case OpCode::Andr: return andr(A());
    case OpCode::Orr: return orr(A());
    case OpCode::Xorr: return xorr(A());
    case OpCode::Cvt: return cvt(A(), s);
    case OpCode::Neg: return neg(A(), s);
    case OpCode::Pad: return pad(A(), s, static_cast<uint32_t>(op.imm0));
    case OpCode::Shl: return shl(A(), static_cast<uint32_t>(op.imm0));
    case OpCode::Shr: return shr(A(), s, static_cast<uint32_t>(op.imm0));
    case OpCode::Bits:
      return bits(A(), static_cast<uint32_t>(op.imm0), static_cast<uint32_t>(op.imm1));
    case OpCode::Head: return head(A(), static_cast<uint32_t>(op.imm0));
    case OpCode::Tail: return tail(A(), static_cast<uint32_t>(op.imm0));
    case OpCode::Copy: return A();
    case OpCode::Mux: return mux(A(), B(), C(), s);
    default: return BitVec(0);
  }
}

}  // namespace

OptStats constantPropagate(SimIR& ir) {
  OptStats stats;
  // Signal id -> const-pool index (known constant value).
  std::vector<int32_t> knownConst(ir.signals.size(), -1);

  auto internConst = [&](const BitVec& v) -> int32_t {
    ir.constPool.push_back(v);
    return static_cast<int32_t>(ir.constPool.size()) - 1;
  };

  for (size_t i = 0; i < ir.ops.size(); i++) {
    Op& op = ir.ops[i];
    if (op.code == OpCode::Const) {
      knownConst[op.dest] = static_cast<int32_t>(op.imm0);
      continue;
    }
    if (op.code == OpCode::MemRead) continue;
    int n = op.numArgs();

    // Mux with a constant selector degenerates to a Copy of one arm.
    if (op.code == OpCode::Mux && knownConst[op.args[0]] != -1) {
      bool sel = !ir.constPool[static_cast<size_t>(knownConst[op.args[0]])].isZero();
      int32_t chosen = sel ? op.args[1] : op.args[2];
      op.code = OpCode::Copy;
      op.args[0] = chosen;
      op.args[1] = op.args[2] = -1;
      stats.constsFolded++;
      n = 1;
      // falls through: if the chosen arm is itself constant, fold fully below
    }

    bool allConst = n > 0;
    for (int k = 0; k < n; k++) allConst &= knownConst[op.args[k]] != -1;
    if (!allConst) continue;

    std::vector<const BitVec*> argv(3, nullptr);
    for (int k = 0; k < n; k++)
      argv[static_cast<size_t>(k)] = &ir.constPool[static_cast<size_t>(knownConst[op.args[k]])];
    BitVec result = evalConstOp(ir, op, argv);
    // Adjust to the declared dest width: Copy extends with the source's
    // signedness; every other op already produced the dest width and only
    // needs canonical re-sizing.
    bool sgn = op.code == OpCode::Copy ? op.signedOp : ir.signals[op.dest].isSigned;
    result = bvops::extend(result, sgn, ir.signals[op.dest].width);
    int32_t poolId = internConst(result);
    op.code = OpCode::Const;
    op.imm0 = poolId;
    op.args[0] = op.args[1] = op.args[2] = -1;
    knownConst[op.dest] = poolId;
    stats.constsFolded++;
  }
  return stats;
}

OptStats eliminateCommonSubexprs(SimIR& ir) {
  OptStats stats;

  struct OpKey {
    OpCode code;
    bool signedOp;
    int32_t args[3];
    int64_t imm0, imm1;
    uint32_t destW;
    bool destSigned;
    bool operator==(const OpKey& o) const {
      return code == o.code && signedOp == o.signedOp && args[0] == o.args[0] &&
             args[1] == o.args[1] && args[2] == o.args[2] && imm0 == o.imm0 &&
             imm1 == o.imm1 && destW == o.destW && destSigned == o.destSigned;
    }
  };
  struct OpKeyHash {
    size_t operator()(const OpKey& k) const {
      size_t h = static_cast<size_t>(k.code) * 1099511628211ULL;
      auto mix = [&](uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
      mix(k.signedOp);
      for (int i = 0; i < 3; i++) mix(static_cast<uint64_t>(static_cast<int64_t>(k.args[i])));
      mix(static_cast<uint64_t>(k.imm0));
      mix(static_cast<uint64_t>(k.imm1));
      mix(k.destW);
      mix(k.destSigned);
      return h;
    }
  };

  // Union-find-free aliasing: replacement[s] is the canonical signal for s.
  std::vector<int32_t> repl(ir.signals.size());
  for (size_t s = 0; s < repl.size(); s++) repl[s] = static_cast<int32_t>(s);

  std::unordered_map<OpKey, int32_t, OpKeyHash> seen;

  for (auto& op : ir.ops) {
    int n = op.numArgs();
    for (int k = 0; k < n; k++) op.args[k] = repl[op.args[k]];
    // Const ops dedup by (pool value, width); cheap approach: skip — DCE
    // handles unused ones and constProp interns aggressively.
    if (op.code == OpCode::MemRead || op.code == OpCode::Const) continue;
    OpKey key{op.code, op.signedOp, {op.args[0], op.args[1], op.args[2]},
              op.imm0, op.imm1, ir.signals[op.dest].width, ir.signals[op.dest].isSigned};
    auto [it, inserted] = seen.emplace(key, op.dest);
    if (inserted) continue;
    int32_t canonical = it->second;
    if (ir.signals[op.dest].kind == SigKind::Temp) {
      // Redirect all later uses of this temp to the canonical signal; the
      // op itself becomes dead and is reclaimed by DCE.
      repl[op.dest] = canonical;
    } else {
      // Named signals must keep their identity (peek/VCD); degrade to Copy.
      if (op.code != OpCode::Copy || op.args[0] != canonical) {
        op.code = OpCode::Copy;
        op.signedOp = ir.signals[canonical].isSigned;
        op.args[0] = canonical;
        op.args[1] = op.args[2] = -1;
        op.imm0 = op.imm1 = 0;
      }
    }
    stats.csesMerged++;
  }

  // Rewrite remaining use sites outside ops.
  for (auto& r : ir.regs) r.next = repl[r.next];
  for (auto& m : ir.mems) {
    for (auto& rd : m.readers) {
      rd.addr = repl[rd.addr];
      rd.en = repl[rd.en];
    }
    for (auto& wr : m.writers) {
      wr.addr = repl[wr.addr];
      wr.en = repl[wr.en];
      wr.data = repl[wr.data];
      wr.mask = repl[wr.mask];
    }
  }
  for (auto& p : ir.prints) {
    p.en = repl[p.en];
    for (auto& a : p.args) a = repl[a];
  }
  for (auto& s : ir.stops) s.en = repl[s.en];
  for (auto& a : ir.asserts) {
    a.pred = repl[a.pred];
    a.en = repl[a.en];
  }
  return stats;
}

OptStats deadCodeEliminate(SimIR& ir) {
  OptStats stats;
  std::vector<bool> live(ir.signals.size(), false);
  std::vector<int32_t> work;

  auto markSig = [&](int32_t s) {
    if (s >= 0 && !live[s]) {
      live[s] = true;
      work.push_back(s);
    }
  };

  // Roots: outputs and side effects. Registers and memories become live
  // transitively when something reads them.
  for (int32_t o : ir.outputs) markSig(o);
  for (const auto& p : ir.prints) {
    markSig(p.en);
    for (int32_t a : p.args) markSig(a);
  }
  for (const auto& s : ir.stops) markSig(s.en);
  for (const auto& a : ir.asserts) {
    markSig(a.pred);
    markSig(a.en);
  }

  // Map register output signal -> RegInfo index, mem read data -> mem index.
  std::unordered_map<int32_t, size_t> regBySig;
  for (size_t i = 0; i < ir.regs.size(); i++) regBySig[ir.regs[i].sig] = i;

  while (!work.empty()) {
    int32_t s = work.back();
    work.pop_back();
    int32_t def = ir.signals[s].defOp;
    if (def >= 0) {
      const Op& op = ir.ops[static_cast<size_t>(def)];
      int n = op.numArgs();
      for (int k = 0; k < n; k++) markSig(op.args[k]);
      if (op.code == OpCode::MemRead) {
        // A live read keeps all writers of the memory live.
        const MemInfo& m = ir.mems[static_cast<size_t>(op.imm0)];
        for (const auto& w : m.writers) {
          markSig(w.addr);
          markSig(w.en);
          markSig(w.data);
          markSig(w.mask);
        }
      }
    } else if (auto it = regBySig.find(s); it != regBySig.end()) {
      markSig(ir.regs[it->second].next);
    }
  }

  // Remove dead ops, preserving order; mark dead signals. Supernode
  // bookkeeping is rebuilt over the kept ops (contiguity is preserved by
  // in-order filtering; supernodes shrunk to one member become plain ops).
  std::vector<Op> keptOps;
  std::vector<int32_t> keptSuper;
  keptOps.reserve(ir.ops.size());
  for (size_t i = 0; i < ir.ops.size(); i++) {
    const auto& op = ir.ops[i];
    if (live[op.dest]) {
      keptOps.push_back(op);
      keptSuper.push_back(ir.superOf(i));
    } else {
      stats.opsRemoved++;
    }
  }
  ir.ops = std::move(keptOps);
  ir.opSuper.clear();
  ir.supers.clear();
  if (!keptSuper.empty()) {
    std::unordered_map<int32_t, std::vector<int32_t>> group;
    for (size_t i = 0; i < keptSuper.size(); i++)
      if (keptSuper[i] >= 0) group[keptSuper[i]].push_back(static_cast<int32_t>(i));
    bool any = false;
    std::vector<int32_t> newSuper(keptSuper.size(), -1);
    std::vector<int32_t> oldIds;
    for (const auto& [oldId, members] : group)
      if (members.size() >= 2) oldIds.push_back(oldId);
    std::sort(oldIds.begin(), oldIds.end(),
              [&](int32_t a, int32_t b) { return group[a][0] < group[b][0]; });
    for (int32_t oldId : oldIds) {
      int32_t id = static_cast<int32_t>(ir.supers.size());
      ir.supers.push_back(group[oldId]);
      for (int32_t pos : group[oldId]) newSuper[static_cast<size_t>(pos)] = id;
      any = true;
    }
    if (any) ir.opSuper = std::move(newSuper);
  }
  for (size_t i = 0; i < ir.signals.size(); i++) {
    if (!live[i]) {
      if (ir.signals[i].kind != SigKind::Input) ir.signals[i].kind = SigKind::Dead;
      ir.signals[i].defOp = -1;
    } else {
      ir.signals[i].defOp = -1;  // rebuilt below
    }
  }
  for (size_t i = 0; i < ir.ops.size(); i++) ir.signals[ir.ops[i].dest].defOp = static_cast<int32_t>(i);

  // Drop dead registers and memories.
  std::vector<RegInfo> keptRegs;
  for (const auto& r : ir.regs)
    if (live[r.sig]) keptRegs.push_back(r);
  ir.regs = std::move(keptRegs);

  std::vector<MemInfo> keptMems;
  std::vector<int32_t> memRemap(ir.mems.size(), -1);
  for (size_t m = 0; m < ir.mems.size(); m++) {
    bool anyRead = false;
    for (const auto& rd : ir.mems[m].readers) anyRead |= rd.data >= 0 && live[rd.data];
    if (anyRead) {
      memRemap[m] = static_cast<int32_t>(keptMems.size());
      // Drop dead readers within a live memory.
      MemInfo mi = ir.mems[m];
      std::vector<MemReader> keptReaders;
      for (const auto& rd : mi.readers)
        if (rd.data >= 0 && live[rd.data]) keptReaders.push_back(rd);
      mi.readers = std::move(keptReaders);
      keptMems.push_back(std::move(mi));
    }
  }
  for (auto& op : ir.ops)
    if (op.code == OpCode::MemRead) op.imm0 = memRemap[static_cast<size_t>(op.imm0)];
  ir.mems = std::move(keptMems);
  return stats;
}

}  // namespace essent::sim
