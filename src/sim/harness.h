// Testbench harness: stimulus driving, timed runs, and lock-step
// cross-engine equivalence checking (the backbone of the correctness tests
// and of the benchmark binaries).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "sim/engine.h"
#include "sim/vcd.h"

namespace essent::sim {

// Called before each tick to drive inputs.
using StimulusFn = std::function<void(Engine&, uint64_t cycle)>;

struct RunResult {
  uint64_t cycles = 0;
  bool stopped = false;
  int exitCode = 0;
  double seconds = 0.0;
  // Snapshot of the engine's counters at the end of the run, so callers
  // can report work/overhead without reaching back into a live engine.
  EngineStats stats;
};

// Ticks the engine up to maxCycles (stopping early on a fired stop());
// applies `stim` before every tick when provided; samples `vcd` after every
// tick when provided.
RunResult runEngine(Engine& engine, uint64_t maxCycles, const StimulusFn& stim = nullptr,
                    VcdWriter* vcd = nullptr);

struct Mismatch {
  uint64_t cycle = 0;
  std::string signal;
  std::string valueA;
  std::string valueB;
  std::string describe() const;
};

// Runs both engines in lock step with identical stimulus, comparing every
// named (non-temp) signal after each cycle, plus accumulated printf output
// and stop behaviour. Returns the first mismatch, or nullopt if the engines
// agree bit-for-bit for the whole run.
std::optional<Mismatch> compareEngines(Engine& a, Engine& b, uint64_t cycles,
                                       const StimulusFn& stim = nullptr);

}  // namespace essent::sim
