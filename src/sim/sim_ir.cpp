#include "sim/sim_ir.h"

#include <stdexcept>

#include "sim/op_eval.h"
#include "support/strutil.h"

namespace essent::sim {

const char* opCodeName(OpCode code) {
  switch (code) {
    case OpCode::Add: return "add";
    case OpCode::Sub: return "sub";
    case OpCode::Mul: return "mul";
    case OpCode::Div: return "div";
    case OpCode::Rem: return "rem";
    case OpCode::Lt: return "lt";
    case OpCode::Leq: return "leq";
    case OpCode::Gt: return "gt";
    case OpCode::Geq: return "geq";
    case OpCode::Eq: return "eq";
    case OpCode::Neq: return "neq";
    case OpCode::Dshl: return "dshl";
    case OpCode::Dshr: return "dshr";
    case OpCode::And: return "and";
    case OpCode::Or: return "or";
    case OpCode::Xor: return "xor";
    case OpCode::Cat: return "cat";
    case OpCode::Not: return "not";
    case OpCode::Andr: return "andr";
    case OpCode::Orr: return "orr";
    case OpCode::Xorr: return "xorr";
    case OpCode::Cvt: return "cvt";
    case OpCode::Neg: return "neg";
    case OpCode::Pad: return "pad";
    case OpCode::Shl: return "shl";
    case OpCode::Shr: return "shr";
    case OpCode::Bits: return "bits";
    case OpCode::Head: return "head";
    case OpCode::Tail: return "tail";
    case OpCode::Copy: return "copy";
    case OpCode::Mux: return "mux";
    case OpCode::Const: return "const";
    case OpCode::MemRead: return "memread";
  }
  return "?";
}

int Op::numArgs() const {
  switch (code) {
    case OpCode::Const:
      return 0;
    case OpCode::Not:
    case OpCode::Andr:
    case OpCode::Orr:
    case OpCode::Xorr:
    case OpCode::Cvt:
    case OpCode::Neg:
    case OpCode::Pad:
    case OpCode::Shl:
    case OpCode::Shr:
    case OpCode::Bits:
    case OpCode::Head:
    case OpCode::Tail:
    case OpCode::Copy:
      return 1;
    case OpCode::Mux:
      return 3;
    default:
      return 2;
  }
}

int32_t SimIR::findSignal(const std::string& name) const {
  if (nameSlots_.empty()) return -1;
  size_t mask = nameSlots_.size() - 1;
  size_t i = std::hash<std::string>{}(name)&mask;
  while (true) {
    int32_t id = nameSlots_[i];
    if (id == -1) return -1;
    if (signals[static_cast<size_t>(id)].name == name) return id;
    i = (i + 1) & mask;
  }
}

void SimIR::indexSignalName(int32_t id) {
  const std::string& name = signals[static_cast<size_t>(id)].name;
  if (name.empty()) return;
  // Grow at 3/4 load, power-of-two sizing for mask probing.
  if ((namedCount_ + 1) * 4 > nameSlots_.size() * 3) {
    size_t newSize = nameSlots_.empty() ? 64 : nameSlots_.size() * 2;
    std::vector<int32_t> old = std::move(nameSlots_);
    nameSlots_.assign(newSize, -1);
    size_t mask = newSize - 1;
    for (int32_t existing : old) {
      if (existing == -1) continue;
      size_t i = std::hash<std::string>{}(signals[static_cast<size_t>(existing)].name) & mask;
      while (nameSlots_[i] != -1) i = (i + 1) & mask;
      nameSlots_[i] = existing;
    }
  }
  size_t mask = nameSlots_.size() - 1;
  size_t i = std::hash<std::string>{}(name)&mask;
  while (true) {
    int32_t existing = nameSlots_[i];
    if (existing == -1) {
      nameSlots_[i] = id;
      namedCount_++;
      return;
    }
    if (signals[static_cast<size_t>(existing)].name == name) {
      nameSlots_[i] = id;  // same name re-registered: latest id wins
      return;
    }
    i = (i + 1) & mask;
  }
}

void SimIR::validate() const {
  std::vector<bool> defined(signals.size(), false);
  for (size_t s = 0; s < signals.size(); s++) {
    if (signals[s].kind == SigKind::Input || signals[s].kind == SigKind::Register)
      defined[s] = true;
  }
  // Supernode members may reference each other in any order (they iterate
  // to convergence), so their dests count as defined up front; members must
  // be contiguous.
  std::vector<bool> superPredef(signals.size(), false);
  for (size_t k = 0; k < supers.size(); k++) {
    const auto& members = supers[k];
    for (size_t j = 0; j < members.size(); j++) {
      defined[ops[static_cast<size_t>(members[j])].dest] = true;
      superPredef[ops[static_cast<size_t>(members[j])].dest] = true;
      if (j > 0 && members[j] != members[j - 1] + 1)
        throw std::logic_error(strfmt("supernode %zu members not contiguous", k));
      if (opSuper[static_cast<size_t>(members[j])] != static_cast<int32_t>(k))
        throw std::logic_error(strfmt("supernode %zu back-pointer mismatch", k));
    }
  }
  for (size_t i = 0; i < ops.size(); i++) {
    const Op& op = ops[i];
    if (op.dest < 0 || static_cast<size_t>(op.dest) >= signals.size())
      throw std::logic_error(strfmt("op %zu: bad dest", i));
    int n = op.numArgs();
    for (int k = 0; k < n; k++) {
      int32_t a = op.args[k];
      if (a < 0 || static_cast<size_t>(a) >= signals.size())
        throw std::logic_error(strfmt("op %zu (%s): bad arg %d", i, opCodeName(op.code), k));
      if (!defined[a])
        throw std::logic_error(strfmt("op %zu (%s): arg '%s' used before definition "
                                      "(topological order violated)",
                                      i, opCodeName(op.code), signals[a].name.c_str()));
    }
    if (defined[op.dest] && !superPredef[op.dest] &&
        signals[op.dest].kind != SigKind::Register)
      throw std::logic_error(strfmt("op %zu: signal '%s' defined twice", i,
                                    signals[op.dest].name.c_str()));
    superPredef[op.dest] = false;
    defined[op.dest] = true;
    if (signals[op.dest].defOp != static_cast<int32_t>(i))
      throw std::logic_error(strfmt("op %zu: defOp back-pointer mismatch for '%s'", i,
                                    signals[op.dest].name.c_str()));
  }
  for (const auto& r : regs) {
    if (!defined[r.next])
      throw std::logic_error("register next value never computed: " + signals[r.sig].name);
    if (signals[r.next].width != signals[r.sig].width)
      throw std::logic_error("register next width mismatch: " + signals[r.sig].name);
  }
}

Layout Layout::build(const SimIR& ir) {
  Layout lay;
  lay.offset.resize(ir.signals.size());
  lay.nwords.resize(ir.signals.size());
  uint32_t off = 0;
  for (size_t s = 0; s < ir.signals.size(); s++) {
    uint32_t nw = static_cast<uint32_t>(BitVec::numWords(ir.signals[s].width));
    lay.offset[s] = off;
    lay.nwords[s] = nw;
    off += nw;
  }
  lay.totalWords = off;
  return lay;
}

std::vector<ExecOp> compileExec(const SimIR& ir, const Layout& lay) {
  std::vector<ExecOp> exec;
  exec.reserve(ir.ops.size());
  for (const Op& op : ir.ops) {
    ExecOp e{};
    e.code = op.code;
    e.signedOp = op.signedOp;
    e.dest = op.dest;
    e.destOff = lay.offset[op.dest];
    e.destW = ir.signals[op.dest].width;
    e.imm0 = op.imm0;
    e.imm1 = op.imm1;
    e.aOff = e.bOff = e.cOff = UINT32_MAX;
    e.aW = e.bW = e.cW = 0;
    e.args[0] = e.args[1] = e.args[2] = -1;
    int n = op.numArgs();
    bool wide = e.destW > 64;
    auto bind = [&](int k, uint32_t& offOut, uint32_t& wOut) {
      offOut = lay.offset[op.args[k]];
      wOut = ir.signals[op.args[k]].width;
      e.args[k] = op.args[k];
      wide |= wOut > 64;
    };
    if (n >= 1) bind(0, e.aOff, e.aW);
    if (n >= 2) bind(1, e.bOff, e.bW);
    if (n >= 3) bind(2, e.cOff, e.cW);
    if (op.code == OpCode::Const) wide = e.destW > 64;
    e.fast = !wide;
    exec.push_back(e);
  }
  return exec;
}

SimState SimState::build(const SimIR& ir, const Layout& lay) {
  SimState st;
  st.vals.assign(lay.totalWords, 0);
  st.memWords.resize(ir.mems.size());
  st.memRowWords.resize(ir.mems.size());
  for (size_t m = 0; m < ir.mems.size(); m++) {
    uint32_t rw = static_cast<uint32_t>(BitVec::numWords(ir.mems[m].width));
    st.memRowWords[m] = rw;
    st.memWords[m].assign(ir.mems[m].depth * rw, 0);
  }
  return st;
}

void SimState::clear() {
  std::fill(vals.begin(), vals.end(), 0);
  for (auto& m : memWords) std::fill(m.begin(), m.end(), 0);
}

BitVec loadBV(const SimState& st, const Layout& lay, const SimIR& ir, int32_t sig) {
  BitVec v(ir.signals[sig].width);
  uint32_t off = lay.offset[sig];
  for (size_t i = 0; i < v.wordCount(); i++) v.data()[i] = st.vals[off + i];
  return v;
}

void storeBV(SimState& st, const Layout& lay, const SimIR& ir, int32_t sig, const BitVec& v,
             bool signedExtend) {
  BitVec adj = bvops::extend(v, signedExtend, ir.signals[sig].width);
  uint32_t off = lay.offset[sig];
  for (size_t i = 0; i < adj.wordCount(); i++) st.vals[off + i] = adj.word(i);
}

void evalExecOpSlow(const SimIR& ir, const Layout& lay, SimState& st, const ExecOp& op) {
  using namespace bvops;
  auto A = [&] { return loadBV(st, lay, ir, op.args[0]); };
  auto B = [&] { return loadBV(st, lay, ir, op.args[1]); };
  auto C = [&] { return loadBV(st, lay, ir, op.args[2]); };
  const bool s = op.signedOp;
  BitVec r;
  bool signedResult = ir.signals[op.dest].isSigned;
  switch (op.code) {
    case OpCode::Add: r = add(A(), B(), s); break;
    case OpCode::Sub: r = sub(A(), B(), s); break;
    case OpCode::Mul: r = mul(A(), B(), s); break;
    case OpCode::Div: r = div(A(), B(), s); break;
    case OpCode::Rem: r = rem(A(), B(), s); break;
    case OpCode::Lt: r = lt(A(), B(), s); break;
    case OpCode::Leq: r = leq(A(), B(), s); break;
    case OpCode::Gt: r = gt(A(), B(), s); break;
    case OpCode::Geq: r = geq(A(), B(), s); break;
    case OpCode::Eq: r = eq(A(), B(), s); break;
    case OpCode::Neq: r = neq(A(), B(), s); break;
    case OpCode::Dshl: r = dshl(A(), B(), op.bW); break;
    case OpCode::Dshr: r = dshr(A(), s, B()); break;
    case OpCode::And: r = band(A(), B(), s); break;
    case OpCode::Or: r = bor(A(), B(), s); break;
    case OpCode::Xor: r = bxor(A(), B(), s); break;
    case OpCode::Cat: r = cat(A(), B()); break;
    case OpCode::Not: r = bnot(A()); break;
    case OpCode::Andr: r = andr(A()); break;
    case OpCode::Orr: r = orr(A()); break;
    case OpCode::Xorr: r = xorr(A()); break;
    case OpCode::Cvt: r = cvt(A(), s); break;
    case OpCode::Neg: r = neg(A(), s); break;
    case OpCode::Pad: r = pad(A(), s, static_cast<uint32_t>(op.imm0)); break;
    case OpCode::Shl: r = shl(A(), static_cast<uint32_t>(op.imm0)); break;
    case OpCode::Shr: r = shr(A(), s, static_cast<uint32_t>(op.imm0)); break;
    case OpCode::Bits:
      r = bits(A(), static_cast<uint32_t>(op.imm0), static_cast<uint32_t>(op.imm1));
      break;
    case OpCode::Head: r = head(A(), static_cast<uint32_t>(op.imm0)); break;
    case OpCode::Tail: r = tail(A(), static_cast<uint32_t>(op.imm0)); break;
    case OpCode::Copy:
      storeBV(st, lay, ir, op.dest, A(), s);
      return;
    case OpCode::Mux: r = mux(A(), B(), C(), s); break;
    case OpCode::Const: r = ir.constPool[static_cast<size_t>(op.imm0)]; break;
    case OpCode::MemRead: {
      size_t memId = static_cast<size_t>(op.imm0);
      const MemInfo& m = ir.mems[memId];
      uint64_t addr = A().toU64();
      bool en = !B().isZero();
      BitVec row(m.width);
      if (en && addr < m.depth && A().bitLength() <= 64) {
        uint32_t rw = st.memRowWords[memId];
        for (uint32_t i = 0; i < rw; i++) row.data()[i] = st.memWords[memId][addr * rw + i];
        row.maskToWidth();
      }
      r = row;
      break;
    }
  }
  storeBV(st, lay, ir, op.dest, r, signedResult);
}

}  // namespace essent::sim
