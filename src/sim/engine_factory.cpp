// Kind names and parsing. makeEngine itself is defined in
// core/engine_factory.cpp (the core library provides the CCSS backends).
#include "sim/engine_factory.h"

namespace essent::sim {

const char* engineKindName(EngineKind k) {
  switch (k) {
    case EngineKind::FullCycle: return "full";
    case EngineKind::EventDriven: return "event";
    case EngineKind::Ccss: return "ccss";
    case EngineKind::CcssPar: return "par";
    case EngineKind::Lane: return "lane";
    case EngineKind::Codegen: return "codegen";
  }
  return "?";
}

const char* engineKindLongName(EngineKind k) {
  switch (k) {
    case EngineKind::FullCycle: return "full-cycle";
    case EngineKind::EventDriven: return "event-driven";
    case EngineKind::Ccss: return "essent-ccss";
    case EngineKind::CcssPar: return "essent-ccss-par";
    case EngineKind::Lane: return "essent-lane";
    case EngineKind::Codegen: return "codegen";
  }
  return "?";
}

bool parseEngineKind(const std::string& token, EngineKind& out) {
  for (EngineKind k : allEngineKinds()) {
    if (token == engineKindName(k) || token == engineKindLongName(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::vector<EngineKind> allEngineKinds() {
  return {EngineKind::FullCycle, EngineKind::EventDriven, EngineKind::Ccss,
          EngineKind::CcssPar, EngineKind::Lane, EngineKind::Codegen};
}

std::vector<EngineKind> inProcessEngineKinds() {
  return {EngineKind::FullCycle, EngineKind::EventDriven, EngineKind::Ccss,
          EngineKind::CcssPar, EngineKind::Lane};
}

std::string engineKindList() {
  std::string s;
  for (EngineKind k : allEngineKinds()) {
    if (!s.empty()) s += '|';
    s += engineKindName(k);
  }
  return s;
}

}  // namespace essent::sim
