// The single public way to construct a simulation engine.
//
// sim::makeEngine(kind, design, options) replaces the five per-engine
// constructors: it resolves the engine kind, builds (or fetches from the
// design's extension cache) the kind-specific immutable structure, and
// returns a ready engine that owns only its mutable state. Every tool in
// the repository — essentc, essent_fuzz, the benches, the harness-based
// tests — constructs engines through it, so a new backend only has to be
// added here to become reachable everywhere (docs/API.md has the policy).
//
// Layering note: this header lives in sim/ (it is part of the stable
// engine interface, re-exported as <essent/engine.h>), but makeEngine's
// definition lives in the core library, which provides the CCSS backends.
// Link against essent_core (or anything that depends on it) to use it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace essent::sim {

// Every execution path a design can be simulated through. The first five
// are in-process interpreters constructible via makeEngine; Codegen is the
// ahead-of-time compiled simulator (codegen::emitCpp + host toolchain),
// which runs out of process — the fuzz oracle and essentc --compile-run
// drive it, and makeEngine rejects it with std::invalid_argument.
//
// Lane is the SIMD instance-parallel engine (core::LaneEngine): it
// simulates `EngineOptions::lanes` copies of the design in one
// structure-of-arrays arena; through makeEngine it surfaces as a scalar
// engine that broadcasts inputs to every lane (core::LaneBroadcastEngine),
// exercising the full SIMD path while staying bit-identical to a solo run.
enum class EngineKind : uint8_t { FullCycle, EventDriven, Ccss, CcssPar, Lane, Codegen };

// Canonical short name: "full" / "event" / "ccss" / "par" / "lane" /
// "codegen". These are the tokens every CLI accepts and prints.
const char* engineKindName(EngineKind k);

// Long descriptive name, matching Engine::name() for the in-process kinds:
// "full-cycle" / "event-driven" / "essent-ccss" / "essent-ccss-par" /
// "essent-lane" / "codegen".
const char* engineKindLongName(EngineKind k);

// Parses a kind token — canonical short names and the long aliases above —
// shared by essentc and essent_fuzz so the tools can never drift apart.
// Returns false on unknown tokens.
bool parseEngineKind(const std::string& token, EngineKind& out);

// All six kinds, in a stable order (FullCycle first: the oracle uses the
// first entry as its reference engine).
std::vector<EngineKind> allEngineKinds();

// The five kinds makeEngine can construct (everything except Codegen).
std::vector<EngineKind> inProcessEngineKinds();

// "full|event|ccss|par|lane|codegen" — for usage strings.
std::string engineKindList();

// Options honored by makeEngine. Plain fields rather than the core-layer
// option structs so this header stays dependency-free; the factory maps
// them onto core::ScheduleOptions for the CCSS kinds.
struct EngineOptions {
  // Worker threads for CcssPar (0 = ThreadPool::defaultThreadCount()).
  // Ignored by the serial kinds.
  unsigned threads = 0;
  // Partitioner C_p small-threshold (paper §IV) for the CCSS kinds.
  uint32_t partitionSmallThreshold = 8;
  // State-element update elision (paper §III-B1) for the CCSS kinds.
  bool stateElision = true;
  // SIMD lanes for EngineKind::Lane (clamped to [1, 64]). Ignored by the
  // other kinds.
  unsigned lanes = 4;
  // Enable per-partition runtime profiling (CCSS kinds only).
  bool profiling = false;
  // Activity-timeline bucket width in cycles when profiling is on.
  uint32_t profileWindow = 256;
  // When non-null, graceful-degradation messages (thread clamping, spawn
  // failure fallbacks — surfaced as W06xx diagnostics) are appended here
  // instead of being dropped.
  std::vector<std::string>* warnings = nullptr;
};

// Constructs an engine of `kind` sharing `design`'s compiled structure;
// the instance owns only its mutable state, so any number of engines can
// be created from one CompiledDesign (see core::SimFarm). Kind-specific
// derived structure (CCSS schedule, event groups, hot-op stream) is built
// once per (design, options) through the design's extension cache.
// Throws std::invalid_argument for EngineKind::Codegen.
std::unique_ptr<Engine> makeEngine(EngineKind kind,
                                   std::shared_ptr<const CompiledDesign> design,
                                   const EngineOptions& opts = {});

// Convenience overload: compiles a private CompiledDesign from `ir` first.
// Prefer the shared-design overload when constructing more than one engine.
std::unique_ptr<Engine> makeEngine(EngineKind kind, const SimIR& ir,
                                   const EngineOptions& opts = {});

}  // namespace essent::sim
