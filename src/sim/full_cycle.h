// Full-cycle engine: evaluates the entire design every cycle with a static
// schedule and no activity tracking. This is the paper's "Baseline" (when
// the IR was built with optimizations disabled) and the stand-in for
// Verilator-class simulators (when built with optimizations enabled).
#pragma once

#include "sim/engine.h"

namespace essent::sim {

class FullCycleEngine : public Engine {
 public:
  explicit FullCycleEngine(const SimIR& ir);

  void tick() override;
  void resetState() override;
  const char* name() const override { return "full-cycle"; }

 private:
  // Per-cycle schedule (all ops except constants, which evaluate once).
  std::vector<ExecOp> hotOps_;
  // Parallel supernode ids (-1 for plain ops); members stay contiguous.
  std::vector<int32_t> hotSuper_;
  // Snapshot of the whole arena for activity tracking mode.
  std::vector<uint64_t> prevVals_;

  void updateState();
};

}  // namespace essent::sim
