// Full-cycle engine: evaluates the entire design every cycle with a static
// schedule and no activity tracking. This is the paper's "Baseline" (when
// the IR was built with optimizations disabled) and the stand-in for
// Verilator-class simulators (when built with optimizations enabled).
#pragma once

#include <memory>

#include "sim/engine.h"

namespace essent::sim {

// Immutable full-cycle structure derived from a CompiledDesign: the
// per-cycle schedule (every op except constants, which evaluate once at
// init) plus parallel supernode ids. Shared by every FullCycleEngine
// instance over the same design via the CompiledDesign extension cache.
struct CompiledFullCycle {
  std::vector<ExecOp> hotOps;
  // Parallel supernode ids (-1 for plain ops); members stay contiguous.
  std::vector<int32_t> hotSuper;

  static std::shared_ptr<const CompiledFullCycle> get(const CompiledDesign& design);
};

class FullCycleEngine : public Engine {
 public:
  // Shares the compiled structure; this instance owns only its SimState.
  explicit FullCycleEngine(std::shared_ptr<const CompiledDesign> design);

  void tick() override;
  void resetState() override;
  const char* name() const override { return "full-cycle"; }

 private:
  std::shared_ptr<const CompiledFullCycle> fc_;
  const std::vector<ExecOp>& hotOps_;
  const std::vector<int32_t>& hotSuper_;
  // Snapshot of the whole arena for activity tracking mode.
  std::vector<uint64_t> prevVals_;

  void updateState();
};

}  // namespace essent::sim
