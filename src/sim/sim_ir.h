// Lowered simulation IR.
//
// A SimIR is a flat dataflow program over width-tagged signals: every signal
// is produced by at most one Op, state elements (registers, memories) appear
// as sources (their current value) plus sinks (their update inputs), and the
// op list is kept in a valid topological order. All three engines in this
// repository — full-cycle, event-driven, and the CCSS activity engine —
// execute the same SimIR, so measured performance differences are
// attributable to scheduling strategy alone (mirroring the paper's
// Baseline-vs-ESSENT methodology).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bitvec.h"

namespace essent::sim {

enum class OpCode : uint8_t {
  // Binary (args[0], args[1]).
  Add, Sub, Mul, Div, Rem,
  Lt, Leq, Gt, Geq, Eq, Neq,
  Dshl, Dshr,
  And, Or, Xor,
  Cat,
  // Unary (args[0]); Pad/Shl/Shr/Head/Tail take imm0, Bits takes imm0=hi imm1=lo.
  Not, Andr, Orr, Xorr, Cvt, Neg,
  Pad, Shl, Shr, Bits, Head, Tail,
  // Reinterpretation / copy-with-extend.
  Copy,
  // Ternary select (args: sel, tval, fval).
  Mux,
  // dest = constPool[imm0].
  Const,
  // dest = mem[imm0].read(args[0]=addr, args[1]=en); reads return 0 when
  // disabled or out of range (fixed semantics shared by every engine).
  MemRead,
};

const char* opCodeName(OpCode code);

enum class SigKind : uint8_t {
  Input,     // external input port (source)
  Output,    // external output port (sink, defined by a Copy op)
  Register,  // state element output (source)
  Node,      // named combinational value
  Temp,      // compiler temporary
  Dead,      // removed by DCE; retains its arena slot but is never written
};

struct Signal {
  std::string name;  // empty for temporaries
  uint32_t width = 0;
  bool isSigned = false;
  SigKind kind = SigKind::Temp;
  int32_t defOp = -1;  // index into SimIR::ops; -1 for Input/Register
};

struct Op {
  OpCode code = OpCode::Copy;
  int32_t dest = -1;
  int32_t args[3] = {-1, -1, -1};
  int64_t imm0 = 0;
  int64_t imm1 = 0;
  // Signedness of the *operands* (selects signed vs unsigned semantics).
  bool signedOp = false;

  int numArgs() const;
};

struct RegInfo {
  int32_t sig = -1;   // register output signal (SigKind::Register)
  int32_t next = -1;  // combinational signal holding the next value
                      // (same width as sig; reset already folded in as a mux)
};

struct MemReader {
  int32_t addr = -1;
  int32_t en = -1;
  int32_t data = -1;  // defined by the MemRead op (latency 0) or a synthesized
                      // register (latency 1)
};

struct MemWriter {
  int32_t addr = -1;
  int32_t en = -1;
  int32_t data = -1;
  int32_t mask = -1;
};

struct MemInfo {
  std::string name;
  uint32_t width = 0;
  uint64_t depth = 0;
  std::vector<MemReader> readers;
  std::vector<MemWriter> writers;
};

struct PrintInfo {
  int32_t en = -1;
  std::string format;            // FIRRTL printf format (%d, %x, %b, %c)
  std::vector<int32_t> args;
};

struct StopInfo {
  int32_t en = -1;
  int exitCode = 0;
};

// FIRRTL assert: fails (stopping simulation with exit code 65 and emitting
// "assertion failed: <message>") when enabled and the predicate is false.
// Cold-path treatment in generated code per paper SIII-B2.
struct AssertInfo {
  int32_t pred = -1;
  int32_t en = -1;
  std::string message;
};

struct SimIR {
  std::string name;
  std::vector<Signal> signals;
  std::vector<Op> ops;  // in topological (executable) order
  std::vector<BitVec> constPool;

  // Combinational-loop supernodes (paper §II): when the builder is allowed
  // to accept combinational SCCs, each multi-op SCC becomes a supernode
  // whose member ops are CONTIGUOUS in `ops` and must be evaluated
  // repeatedly until convergence. opSuper[i] is the supernode index of op i
  // or -1; supers[k] lists member op indices in execution order. Both are
  // empty for acyclic designs.
  std::vector<int32_t> opSuper;
  std::vector<std::vector<int32_t>> supers;

  bool hasCombLoops() const { return !supers.empty(); }
  int32_t superOf(size_t opIdx) const { return opSuper.empty() ? -1 : opSuper[opIdx]; }
  std::vector<RegInfo> regs;
  std::vector<MemInfo> mems;
  std::vector<PrintInfo> prints;
  std::vector<StopInfo> stops;
  std::vector<AssertInfo> asserts;
  std::vector<int32_t> inputs;   // signal ids of input ports (clock excluded)
  std::vector<int32_t> outputs;  // signal ids of output ports

  // Signal id by name; -1 when unknown.
  int32_t findSignal(const std::string& name) const;

  // Registers signals[id] in the name index (no-op for unnamed signals; an
  // existing entry with the same name is replaced). The index is an
  // open-addressing table of signal ids that hashes and compares against
  // the signals' own name storage — at million-signal scale this avoids
  // duplicating every name string in a node-based map (tens of MB and one
  // heap allocation per named signal).
  void indexSignalName(int32_t id);

  // Count of ops excluding Dead-dest ops (all ops in `ops` are live; this is
  // simply ops.size(), kept as a method for reporting symmetry).
  size_t liveOpCount() const { return ops.size(); }

  // Verifies topological order, arg validity, and width bookkeeping;
  // throws std::logic_error on violation. Used by tests and after passes.
  void validate() const;

 private:
  std::vector<int32_t> nameSlots_;  // open-addressing; -1 = empty
  size_t namedCount_ = 0;
};

// ---------------------------------------------------------------------------
// Execution layout: arena offsets + precompiled op stream.

// Word layout of the value arena: every signal occupies ceil(width/64)
// words (minimum 1) and is always stored canonically masked.
struct Layout {
  std::vector<uint32_t> offset;
  std::vector<uint32_t> nwords;
  uint32_t totalWords = 0;

  static Layout build(const SimIR& ir);
};

// Per-op execution record with resolved widths/offsets; `fast` marks ops
// whose operands and result all fit in a single 64-bit word.
struct ExecOp {
  OpCode code;
  bool signedOp;
  bool fast;
  int32_t dest;
  int32_t args[3];
  uint32_t destOff, destW;
  uint32_t aOff, aW;
  uint32_t bOff, bW;
  uint32_t cOff, cW;
  int64_t imm0, imm1;
};

std::vector<ExecOp> compileExec(const SimIR& ir, const Layout& layout);

// Mutable simulation state: the flat value arena plus memory contents.
struct SimState {
  std::vector<uint64_t> vals;
  std::vector<std::vector<uint64_t>> memWords;  // per mem: depth * wordsPerRow
  std::vector<uint32_t> memRowWords;

  static SimState build(const SimIR& ir, const Layout& layout);

  void clear();
};

// ---------------------------------------------------------------------------
// IR-level optimizations (the "classic compiler optimizations" of §III-B).

struct OptStats {
  size_t constsFolded = 0;
  size_t csesMerged = 0;
  size_t opsRemoved = 0;
};

// Folds ops whose operands are all constants and muxes with constant
// selectors; appends to the const pool.
OptStats constantPropagate(SimIR& ir);

// Structural common-subexpression elimination; duplicate temporaries are
// redirected, duplicate named signals become Copies of the representative.
OptStats eliminateCommonSubexprs(SimIR& ir);

// Removes ops (and empties signals) that cannot influence an output, a
// register that is itself live, a memory with live readers, or a
// print/stop side effect.
OptStats deadCodeEliminate(SimIR& ir);

}  // namespace essent::sim
