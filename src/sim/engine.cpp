#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>

#include "sim/op_eval.h"
#include "support/strutil.h"

namespace essent::sim {

std::shared_ptr<const CompiledDesign> CompiledDesign::compile(SimIR ir) {
  auto d = std::make_shared<CompiledDesign>();
  d->ir = std::move(ir);
  d->layout = Layout::build(d->ir);
  d->exec = compileExec(d->ir, d->layout);
  return d;
}

std::shared_ptr<const void> CompiledDesign::getOrBuildExtErased(
    const std::string& key,
    const std::function<std::shared_ptr<const void>()>& build) const {
  std::lock_guard<std::mutex> lock(extMu_);
  auto it = ext_.find(key);
  if (it != ext_.end()) return it->second;
  std::shared_ptr<const void> value = build();
  ext_.emplace(key, value);
  return value;
}

Engine::Engine(std::shared_ptr<const CompiledDesign> design)
    : design_(std::move(design)),
      ir_(&design_->ir),
      layout_(design_->layout),
      exec_(design_->exec),
      state_(SimState::build(design_->ir, design_->layout)) {
  for (const auto& s : ir_->signals)
    if (s.kind != SigKind::Dead && s.kind != SigKind::Temp) designSignals_++;
  evalConstOps();
}

Engine::Engine(std::shared_ptr<const CompiledDesign> design, ViewTag)
    : design_(std::move(design)),
      ir_(&design_->ir),
      layout_(design_->layout),
      exec_(design_->exec) {
  // No SimState, no const-op evaluation: the derived view overrides every
  // state accessor and keeps its values elsewhere.
  for (const auto& s : ir_->signals)
    if (s.kind != SigKind::Dead && s.kind != SigKind::Temp) designSignals_++;
}

void Engine::evalConstOps() {
  for (const ExecOp& op : exec_)
    if (op.code == OpCode::Const) evalExecOp(*ir_, layout_, state_, op);
}

int32_t Engine::sigIdOrThrow(const std::string& name) const {
  int32_t id = ir_->findSignal(name);
  if (id < 0) throw std::out_of_range("no signal named '" + name + "'");
  return id;
}

void Engine::poke(const std::string& name, uint64_t value) {
  int32_t id = sigIdOrThrow(name);
  const Signal& s = ir_->signals[static_cast<size_t>(id)];
  uint32_t off = layout_.offset[id];
  state_.vals[off] = value & maskW(s.width);
  for (uint32_t i = 1; i < layout_.nwords[id]; i++) state_.vals[off + i] = 0;
}

void Engine::pokeBV(const std::string& name, const BitVec& value) {
  int32_t id = sigIdOrThrow(name);
  storeBV(state_, layout_, *ir_, id, value, false);
}

uint64_t Engine::peek(const std::string& name) const {
  return state_.vals[layout_.offset[sigIdOrThrow(name)]];
}

BitVec Engine::peekBV(const std::string& name) const {
  return loadBV(state_, layout_, *ir_, sigIdOrThrow(name));
}

BitVec Engine::peekSigBV(int32_t sig) const { return loadBV(state_, layout_, *ir_, sig); }

namespace {
size_t memIndexOrThrow(const SimIR& ir, const std::string& name) {
  for (size_t m = 0; m < ir.mems.size(); m++)
    if (ir.mems[m].name == name) return m;
  throw std::out_of_range("no memory named '" + name + "'");
}
}  // namespace

void Engine::pokeMem(const std::string& memName, uint64_t addr, uint64_t value) {
  size_t m = memIndexOrThrow(*ir_, memName);
  if (addr >= ir_->mems[m].depth) throw std::out_of_range("mem address out of range");
  uint32_t rw = state_.memRowWords[m];
  state_.memWords[m][addr * rw] = value & maskW(std::min(ir_->mems[m].width, 64u));
  for (uint32_t i = 1; i < rw; i++) state_.memWords[m][addr * rw + i] = 0;
}

uint64_t Engine::peekMem(const std::string& memName, uint64_t addr) const {
  size_t m = memIndexOrThrow(*ir_, memName);
  if (addr >= ir_->mems[m].depth) throw std::out_of_range("mem address out of range");
  return state_.memWords[m][addr * state_.memRowWords[m]];
}

void Engine::resetState() {
  state_.clear();
  stats_.resetCounters();
  stopped_ = false;
  exitCode_ = 0;
  printBuf_.clear();
  evalConstOps();
}

void Engine::randomizeState(uint64_t seed) {
  // SplitMix-style draws keyed by (seed, slot) so every engine produces the
  // same randomization for the same IR.
  auto draw = [seed](uint64_t slot) { return stateRandomDraw(seed, slot); };
  uint64_t slot = 0;
  for (const RegInfo& r : ir_->regs) {
    uint32_t off = layout_.offset[r.sig];
    uint32_t w = ir_->signals[static_cast<size_t>(r.sig)].width;
    for (uint32_t i = 0; i < layout_.nwords[r.sig]; i++) state_.vals[off + i] = draw(slot++);
    // Re-canonicalize the top word.
    if (w % 64 != 0)
      state_.vals[off + layout_.nwords[r.sig] - 1] &= BitVec::topWordMask(w);
    if (w == 0) state_.vals[off] = 0;
  }
  for (size_t m = 0; m < ir_->mems.size(); m++) {
    uint32_t w = ir_->mems[m].width;
    uint32_t rw = state_.memRowWords[m];
    for (uint64_t row = 0; row < ir_->mems[m].depth; row++) {
      for (uint32_t i = 0; i < rw; i++) state_.memWords[m][row * rw + i] = draw(slot++);
      if (w % 64 != 0) state_.memWords[m][row * rw + rw - 1] &= BitVec::topWordMask(w);
    }
  }
  onStateClobbered();
}

Engine::Snapshot Engine::saveState() const {
  Snapshot s;
  s.vals = state_.vals;
  s.memWords = state_.memWords;
  s.stopped = stopped_;
  s.exitCode = exitCode_;
  return s;
}

void Engine::restoreState(const Snapshot& snapshot) {
  if (snapshot.vals.size() != state_.vals.size() ||
      snapshot.memWords.size() != state_.memWords.size())
    throw std::invalid_argument("snapshot does not match this engine's design");
  state_.vals = snapshot.vals;
  state_.memWords = snapshot.memWords;
  stopped_ = snapshot.stopped;
  exitCode_ = snapshot.exitCode;
  onStateClobbered();
}

bool Engine::sigWordsEqual(int32_t sig, const uint64_t* other) const {
  uint32_t off = layout_.offset[sig];
  for (uint32_t i = 0; i < layout_.nwords[sig]; i++)
    if (state_.vals[off + i] != other[i]) return false;
  return true;
}

void Engine::copySigWords(int32_t dst, int32_t src) {
  uint32_t od = layout_.offset[dst], os = layout_.offset[src];
  for (uint32_t i = 0; i < layout_.nwords[dst]; i++) state_.vals[od + i] = state_.vals[os + i];
}

bool Engine::sigValsEqual(int32_t a, int32_t b) const {
  uint32_t oa = layout_.offset[a], ob = layout_.offset[b];
  for (uint32_t i = 0; i < layout_.nwords[a]; i++)
    if (state_.vals[oa + i] != state_.vals[ob + i]) return false;
  return true;
}

void Engine::firePrintsAndStops() {
  for (const auto& p : ir_->prints) {
    if (state_.vals[layout_.offset[p.en]] != 0)
      printBuf_ += formatPrintf(*ir_, layout_, state_, p);
  }
  for (const auto& s : ir_->stops) {
    if (state_.vals[layout_.offset[s.en]] != 0 && !stopped_) {
      stopped_ = true;
      exitCode_ = s.exitCode;
    }
  }
  for (const auto& a : ir_->asserts) {
    if (state_.vals[layout_.offset[a.en]] != 0 &&
        state_.vals[layout_.offset[a.pred]] == 0 && !stopped_) {
      printBuf_ += "assertion failed: " + a.message + "\n";
      stopped_ = true;
      exitCode_ = 65;
    }
  }
}

std::string formatPrintf(const SimIR& ir, const Layout& lay, const SimState& st,
                         const PrintInfo& p) {
  std::string out;
  size_t argIdx = 0;
  for (size_t i = 0; i < p.format.size(); i++) {
    char c = p.format[i];
    if (c != '%' || i + 1 >= p.format.size()) {
      out += c;
      continue;
    }
    char f = p.format[++i];
    if (f == '%') {
      out += '%';
      continue;
    }
    if (argIdx >= p.args.size()) {
      out += '%';
      out += f;
      continue;
    }
    int32_t sig = p.args[argIdx++];
    BitVec v = loadBV(st, lay, ir, sig);
    bool sgn = ir.signals[static_cast<size_t>(sig)].isSigned;
    switch (f) {
      case 'd':
        out += sgn ? v.toSignedDecString() : v.toDecString();
        break;
      case 'x':
        out += v.toHexString();
        break;
      case 'b':
        out += v.toBinString();
        break;
      case 'c':
        out += static_cast<char>(v.toU64() & 0xff);
        break;
      default:
        out += '%';
        out += f;
        break;
    }
  }
  return out;
}

}  // namespace essent::sim
