#include "sim/builder.h"

#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "firrtl/parser.h"
#include "firrtl/passes.h"
#include "firrtl/widths.h"
#include "graph/graph.h"
#include "obs/phase_timer.h"
#include "support/bvops.h"
#include "support/strutil.h"

namespace essent::sim {

namespace {

using firrtl::Expr;
using firrtl::ExprKind;
using firrtl::PrimOpKind;
using firrtl::Stmt;
using firrtl::StmtKind;
using firrtl::TypeKind;

OpCode primToOpCode(PrimOpKind k) {
  using P = PrimOpKind;
  switch (k) {
    case P::Add: return OpCode::Add;
    case P::Sub: return OpCode::Sub;
    case P::Mul: return OpCode::Mul;
    case P::Div: return OpCode::Div;
    case P::Rem: return OpCode::Rem;
    case P::Lt: return OpCode::Lt;
    case P::Leq: return OpCode::Leq;
    case P::Gt: return OpCode::Gt;
    case P::Geq: return OpCode::Geq;
    case P::Eq: return OpCode::Eq;
    case P::Neq: return OpCode::Neq;
    case P::Pad: return OpCode::Pad;
    case P::AsUInt: return OpCode::Copy;
    case P::AsSInt: return OpCode::Copy;
    case P::Shl: return OpCode::Shl;
    case P::Shr: return OpCode::Shr;
    case P::Dshl: return OpCode::Dshl;
    case P::Dshr: return OpCode::Dshr;
    case P::Cvt: return OpCode::Cvt;
    case P::Neg: return OpCode::Neg;
    case P::Not: return OpCode::Not;
    case P::And: return OpCode::And;
    case P::Or: return OpCode::Or;
    case P::Xor: return OpCode::Xor;
    case P::Andr: return OpCode::Andr;
    case P::Orr: return OpCode::Orr;
    case P::Xorr: return OpCode::Xorr;
    case P::Cat: return OpCode::Cat;
    case P::Bits: return OpCode::Bits;
    case P::Head: return OpCode::Head;
    case P::Tail: return OpCode::Tail;
    default:
      throw BuildError(std::string("unsupported primop in simulation: ") +
                       firrtl::primOpName(k));
  }
}

class Builder {
 public:
  Builder(const firrtl::Module& mod, const BuildOptions& opts) : mod_(mod), opts_(opts) {}

  SimIR run() {
    ir_.name = mod_.name;
    declarePorts();
    declareBody(mod_.body);
    buildBody(mod_.body);
    buildMemReads();
    checkDriven();
    topoSortOps();
    if (opts_.constProp) constantPropagate(ir_);
    if (opts_.cse) eliminateCommonSubexprs(ir_);
    if (opts_.dce) deadCodeEliminate(ir_);
    ir_.validate();
    return std::move(ir_);
  }

 private:
  const firrtl::Module& mod_;
  BuildOptions opts_;
  SimIR ir_;
  std::unordered_set<std::string> clockNames_;
  // Register name -> pending reset info (built during connects).
  struct PendingReg {
    firrtl::Type type;
    const Stmt* stmt;
    bool connected = false;
  };
  std::map<std::string, PendingReg> pendingRegs_;
  std::unordered_map<std::string, size_t> memByName_;
  std::unordered_set<std::string> memReadDataNames_;
  std::unordered_map<std::string, int32_t> constIntern_;

  int32_t newSignal(std::string name, uint32_t width, bool isSigned, SigKind kind) {
    Signal s;
    s.name = std::move(name);
    s.width = width;
    s.isSigned = isSigned;
    s.kind = kind;
    ir_.signals.push_back(std::move(s));
    int32_t id = static_cast<int32_t>(ir_.signals.size()) - 1;
    ir_.indexSignalName(id);
    return id;
  }

  int32_t newTemp(uint32_t width, bool isSigned) {
    return newSignal("", width, isSigned, SigKind::Temp);
  }

  Op& addOp(OpCode code, int32_t dest) {
    Op op;
    op.code = code;
    op.dest = dest;
    ir_.ops.push_back(op);
    ir_.signals[static_cast<size_t>(dest)].defOp = static_cast<int32_t>(ir_.ops.size()) - 1;
    return ir_.ops.back();
  }

  int32_t lookup(const std::string& name) {
    int32_t id = ir_.findSignal(name);
    if (id < 0) {
      if (clockNames_.count(name))
        throw BuildError("clock '" + name + "' used where a value is required");
      throw BuildError("reference to unknown signal '" + name + "'");
    }
    return id;
  }

  bool isClockType(const firrtl::Type& t) const { return t.kind == TypeKind::Clock; }

  // --- declaration pass ---

  void declarePorts() {
    for (const auto& p : mod_.ports) {
      if (isClockType(p.type)) {
        clockNames_.insert(p.name);
        continue;
      }
      SigKind k = p.dir == firrtl::PortDir::Input ? SigKind::Input : SigKind::Output;
      int32_t id = newSignal(p.name, p.type.simWidth(), p.type.isSigned(), k);
      if (k == SigKind::Input) ir_.inputs.push_back(id);
      else ir_.outputs.push_back(id);
    }
  }

  void declareBody(const std::vector<firrtl::StmtPtr>& body) {
    for (const auto& s : body) {
      switch (s->kind) {
        case StmtKind::Wire:
          if (isClockType(s->type)) clockNames_.insert(s->name);
          else newSignal(s->name, s->type.simWidth(), s->type.isSigned(), SigKind::Node);
          break;
        case StmtKind::Node:
          if (s->expr->type.kind == TypeKind::Clock) clockNames_.insert(s->name);
          else newSignal(s->name, s->expr->type.simWidth(), s->expr->type.isSigned(),
                         SigKind::Node);
          break;
        case StmtKind::Reg: {
          newSignal(s->name, s->type.simWidth(), s->type.isSigned(), SigKind::Register);
          pendingRegs_[s->name] = PendingReg{s->type, s.get(), false};
          break;
        }
        case StmtKind::Mem:
          declareMem(*s);
          break;
        case StmtKind::When:
          throw BuildError("when statement present; run expandWhens first");
        case StmtKind::Inst:
          throw BuildError("instance present; run flattenInstances first");
        default:
          break;
      }
    }
  }

  void declareMem(const Stmt& s) {
    MemInfo m;
    m.name = s.name;
    m.width = s.type.simWidth();
    m.depth = s.depth;
    uint32_t aw = firrtl::memAddrWidth(s.depth);
    bool sgn = s.type.isSigned();
    for (const auto& r : s.readers) {
      MemReader rd;
      std::string base = s.name + "." + r.name;
      rd.addr = newSignal(base + ".addr", aw, false, SigKind::Node);
      rd.en = newSignal(base + ".en", 1, false, SigKind::Node);
      clockNames_.insert(base + ".clk");
      if (s.readLatency == 0) {
        rd.data = newSignal(base + ".data", m.width, sgn, SigKind::Node);
      } else {
        // Latency-1 read: the data port is a synthesized register whose next
        // value is the combinational read (sampled with old memory contents).
        rd.data = newSignal(base + ".data", m.width, sgn, SigKind::Register);
      }
      memReadDataNames_.insert(base + ".data");
      m.readers.push_back(rd);
    }
    for (const auto& w : s.writers) {
      MemWriter wr;
      std::string base = s.name + "." + w.name;
      wr.addr = newSignal(base + ".addr", aw, false, SigKind::Node);
      wr.en = newSignal(base + ".en", 1, false, SigKind::Node);
      wr.data = newSignal(base + ".data", m.width, sgn, SigKind::Node);
      wr.mask = newSignal(base + ".mask", 1, false, SigKind::Node);
      clockNames_.insert(base + ".clk");
      m.writers.push_back(wr);
    }
    memByName_[s.name] = ir_.mems.size();
    memLatency1_.push_back(s.readLatency == 1);
    ir_.mems.push_back(std::move(m));
  }

  std::vector<bool> memLatency1_;

  // --- op-building pass ---

  void buildBody(const std::vector<firrtl::StmtPtr>& body) {
    for (const auto& s : body) {
      switch (s->kind) {
        case StmtKind::Node: {
          if (clockNames_.count(s->name)) break;
          buildExprInto(*s->expr, lookup(s->name));
          break;
        }
        case StmtKind::Connect:
          buildConnect(*s);
          break;
        case StmtKind::Printf: {
          PrintInfo p;
          p.en = combSnapshot(buildExpr(*s->expr));
          p.format = s->format;
          for (const auto& a : s->printArgs) p.args.push_back(combSnapshot(buildExpr(*a)));
          ir_.prints.push_back(std::move(p));
          break;
        }
        case StmtKind::Stop: {
          StopInfo st;
          st.en = combSnapshot(buildExpr(*s->expr));
          st.exitCode = s->exitCode;
          ir_.stops.push_back(st);
          break;
        }
        case StmtKind::Assert: {
          AssertInfo ai;
          ai.pred = combSnapshot(buildExpr(*s->pred));
          ai.en = combSnapshot(buildExpr(*s->expr));
          ai.message = s->format;
          ir_.asserts.push_back(std::move(ai));
          break;
        }
        default:
          break;
      }
    }
    // Registers never connected hold their value (next = current).
    for (auto& [name, pr] : pendingRegs_) {
      if (!pr.connected) finishRegister(name, pr, lookup(name));
    }
  }

  void buildConnect(const Stmt& s) {
    if (clockNames_.count(s.name)) return;  // clock wiring is implicit
    auto regIt = pendingRegs_.find(s.name);
    if (regIt != pendingRegs_.end() && !regIt->second.connected) {
      int32_t rhs = buildExpr(*s.expr);
      finishRegister(s.name, regIt->second, rhs);
      return;
    }
    // Illegal connect targets are rejected here rather than left for the IR
    // validator, which would report them as internal invariant violations.
    int32_t dest = lookup(s.name);
    const Signal& dsig = ir_.signals[static_cast<size_t>(dest)];
    if (dsig.kind == SigKind::Input)
      throw BuildError("cannot connect to input port '" + s.name + "'");
    if (memReadDataNames_.count(s.name))
      throw BuildError("cannot connect to memory read port '" + s.name + "'");
    if (dsig.kind == SigKind::Register)
      throw BuildError("register '" + s.name + "' is driven more than once");
    if (dsig.defOp >= 0)
      throw BuildError("'" + s.name + "' is driven more than once");
    buildExprInto(*s.expr, dest);
  }

  // Folds the reset mux and records RegInfo. `rhs` is the raw next value.
  void finishRegister(const std::string& name, PendingReg& pr, int32_t rhs) {
    int32_t regSig = lookup(name);
    const Stmt* st = pr.stmt;
    int32_t nextVal = rhs;
    if (st->resetCond) {
      int32_t cond = buildExpr(*st->resetCond);
      int32_t init = buildExpr(*st->resetInit);
      uint32_t w = ir_.signals[regSig].width;
      bool sgn = ir_.signals[regSig].isSigned;
      // Reset arms must match the register width for the mux.
      int32_t initAdj = copyTo(init, w, sgn);
      int32_t rhsAdj = copyTo(rhs, w, sgn);
      int32_t muxSig = newTemp(w, sgn);
      Op& op = addOp(OpCode::Mux, muxSig);
      op.args[0] = cond;
      op.args[1] = initAdj;
      op.args[2] = rhsAdj;
      op.signedOp = sgn;
      nextVal = muxSig;
    } else {
      nextVal = copyTo(rhs, ir_.signals[regSig].width, ir_.signals[regSig].isSigned);
    }
    ir_.regs.push_back(RegInfo{regSig, nextVal});
    pr.connected = true;
  }

  // printf/stop side effects fire after the partition sweep in the CCSS
  // engine, by which time in-place (elided) register and memory updates have
  // already landed. Their enables and arguments therefore must never read a
  // state signal directly: this wraps state-produced values in a Copy op —
  // a combinational node whose partition the elision ordering edges force
  // before the state writer, so the fired value is the pre-update one, in
  // every engine.
  int32_t combSnapshot(int32_t src) {
    if (ir_.signals[static_cast<size_t>(src)].defOp >= 0) return src;  // already comb
    int32_t t = newTemp(ir_.signals[static_cast<size_t>(src)].width,
                        ir_.signals[static_cast<size_t>(src)].isSigned);
    Op& op = addOp(OpCode::Copy, t);
    op.args[0] = src;
    op.signedOp = ir_.signals[static_cast<size_t>(src)].isSigned;
    return t;
  }

  // Returns src if it already has the wanted width; otherwise inserts a
  // width-adjusting Copy into a fresh temp.
  int32_t copyTo(int32_t src, uint32_t width, bool wantSigned) {
    if (ir_.signals[src].width == width) return src;
    int32_t t = newTemp(width, wantSigned);
    Op& op = addOp(OpCode::Copy, t);
    op.args[0] = src;
    op.signedOp = ir_.signals[src].isSigned;
    return t;
  }

  void buildMemReads() {
    for (size_t mi = 0; mi < ir_.mems.size(); mi++) {
      MemInfo& m = ir_.mems[mi];
      for (auto& rd : m.readers) {
        if (!memLatency1_[mi]) {
          Op& op = addOp(OpCode::MemRead, rd.data);
          op.args[0] = rd.addr;
          op.args[1] = rd.en;
          op.imm0 = static_cast<int64_t>(mi);
        } else {
          int32_t t = newTemp(m.width, ir_.signals[rd.data].isSigned);
          Op& op = addOp(OpCode::MemRead, t);
          op.args[0] = rd.addr;
          op.args[1] = rd.en;
          op.imm0 = static_cast<int64_t>(mi);
          ir_.regs.push_back(RegInfo{rd.data, t});
        }
      }
    }
  }

  int32_t internConst(const BitVec& v, uint32_t width, bool isSigned) {
    std::string key = strfmt("%u:%d:", width, isSigned ? 1 : 0) + v.toHexString();
    auto it = constIntern_.find(key);
    if (it != constIntern_.end()) return it->second;
    ir_.constPool.push_back(bvops::extend(v, false, width));
    int32_t sig = newTemp(width, isSigned);
    Op& op = addOp(OpCode::Const, sig);
    op.imm0 = static_cast<int64_t>(ir_.constPool.size()) - 1;
    constIntern_[key] = sig;
    return sig;
  }

  int32_t buildExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Ref:
        return lookup(e.name);
      case ExprKind::UIntLit:
        return internConst(e.value, e.litWidth, false);
      case ExprKind::SIntLit:
        return internConst(e.value, e.litWidth, true);
      case ExprKind::Mux: {
        int32_t sel = buildExpr(*e.args[0]);
        int32_t tv = buildExpr(*e.args[1]);
        int32_t fv = buildExpr(*e.args[2]);
        int32_t dest = newTemp(e.type.simWidth(), e.type.isSigned());
        Op& op = addOp(OpCode::Mux, dest);
        op.args[0] = sel;
        op.args[1] = tv;
        op.args[2] = fv;
        op.signedOp = e.type.isSigned();
        return dest;
      }
      case ExprKind::ValidIf:
        // Deterministic choice: validif evaluates to its value (the paper's
        // generator makes the same choice); the condition is dropped and its
        // cone reclaimed by DCE when otherwise unused.
        return buildExpr(*e.args[1]);
      case ExprKind::Prim:
        break;
    }
    OpCode code = primToOpCode(e.op);
    std::vector<int32_t> argIds;
    for (const auto& a : e.args) argIds.push_back(buildExpr(*a));
    int32_t dest = newTemp(e.type.simWidth(), e.type.isSigned());
    Op& op = addOp(code, dest);
    for (size_t k = 0; k < argIds.size(); k++) op.args[k] = argIds[k];
    if (!e.consts.empty()) op.imm0 = e.consts[0];
    if (e.consts.size() > 1) op.imm1 = e.consts[1];
    // Operand signedness drives semantics; for casts it is the source's.
    bool argSigned = !e.args.empty() && e.args[0]->type.isSigned();
    op.signedOp = argSigned;
    return dest;
  }

  void buildExprInto(const Expr& e, int32_t dest) {
    int32_t src = buildExpr(e);
    Op& op = addOp(OpCode::Copy, dest);
    op.args[0] = src;
    op.signedOp = ir_.signals[src].isSigned;
  }

  // Every signal an op, register next-value, or memory port reads must be
  // produced by something: an input, a register, or an op. A read of a
  // never-driven wire or output (legal to write in a malformed .fir) would
  // otherwise surface much later as an IR-validator internal invariant
  // violation instead of a front-end error.
  void checkDriven() const {
    auto require = [&](int32_t sig) {
      const Signal& sg = ir_.signals[static_cast<size_t>(sig)];
      if (sg.kind == SigKind::Input || sg.kind == SigKind::Register || sg.defOp >= 0) return;
      throw BuildError("signal '" + sg.name + "' is read but never driven");
    };
    for (const Op& op : ir_.ops)
      for (int k = 0, n = op.numArgs(); k < n; k++) require(op.args[k]);
    for (const RegInfo& r : ir_.regs) require(r.next);
    for (const MemInfo& m : ir_.mems)
      for (const MemWriter& w : m.writers) {
        require(w.addr);
        require(w.en);
        require(w.data);
        require(w.mask);
      }
  }

  void topoSortOps() {
    size_t n = ir_.ops.size();
    // Dependency graph: op i depends on defOp(arg) for each arg.
    graph::DiGraph og(static_cast<graph::NodeId>(n));
    for (size_t i = 0; i < n; i++) {
      const Op& op = ir_.ops[i];
      int na = op.numArgs();
      for (int k = 0; k < na; k++) {
        int32_t d = ir_.signals[op.args[k]].defOp;
        if (d >= 0) og.addEdge(d, static_cast<graph::NodeId>(i));
      }
    }
    int32_t numSccs = 0;
    auto sccOf = graph::tarjanScc(og, &numSccs);
    std::vector<int> sccSize(static_cast<size_t>(numSccs), 0);
    for (int32_t s : sccOf) sccSize[static_cast<size_t>(s)]++;
    bool hasLoops = false;
    for (int c : sccSize) hasLoops |= c >= 2;

    if (hasLoops && !opts_.allowCombLoops) {
      // Report each strongly connected component by its named signals (the
      // paper assumes designs are acyclic after state splitting — §II — so
      // a combinational SCC is a design error worth a precise diagnosis).
      std::string report;
      int reported = 0;
      for (int32_t scc = 0; scc < numSccs && reported < 3; scc++) {
        if (sccSize[static_cast<size_t>(scc)] < 2) continue;
        reported++;
        report += strfmt("\n  cycle %d (%d ops):", reported, sccSize[static_cast<size_t>(scc)]);
        int listed = 0;
        for (size_t i = 0; i < n && listed < 8; i++) {
          if (sccOf[i] != scc) continue;
          const std::string& nm = ir_.signals[ir_.ops[i].dest].name;
          if (!nm.empty()) {
            report += " " + nm;
            listed++;
          }
        }
      }
      throw BuildError("combinational cycle(s) detected; break them with a register, merge "
                       "manually, or build with allowCombLoops to iterate supernodes to "
                       "convergence:" + report);
    }

    // Tarjan assigns SCC ids in reverse topological order of the
    // condensation (an SCC's id is >= those it can reach), so descending id
    // order is a valid schedule with each SCC's members contiguous.
    std::vector<std::vector<int32_t>> byScc(static_cast<size_t>(numSccs));
    for (size_t i = 0; i < n; i++) byScc[static_cast<size_t>(sccOf[i])].push_back(static_cast<int32_t>(i));
    std::vector<Op> sorted;
    sorted.reserve(n);
    ir_.opSuper.clear();
    ir_.supers.clear();
    for (int32_t scc = numSccs; scc-- > 0;) {
      const auto& members = byScc[static_cast<size_t>(scc)];
      int32_t superId = -1;
      if (members.size() >= 2) {
        superId = static_cast<int32_t>(ir_.supers.size());
        ir_.supers.emplace_back();
      }
      for (int32_t idx : members) {
        if (superId >= 0) ir_.supers.back().push_back(static_cast<int32_t>(sorted.size()));
        sorted.push_back(ir_.ops[static_cast<size_t>(idx)]);
        ir_.opSuper.push_back(superId);
      }
    }
    if (!hasLoops) ir_.opSuper.clear();
    ir_.ops = std::move(sorted);
    for (size_t i = 0; i < ir_.ops.size(); i++)
      ir_.signals[ir_.ops[i].dest].defOp = static_cast<int32_t>(i);
  }
};

}  // namespace

SimIR buildSimIR(const firrtl::Module& lowered, const BuildOptions& opts) {
  obs::ScopedPhaseTimer timer("build-ir");
  Builder b(lowered, opts);
  return b.run();
}

SimIR buildFromFirrtl(const std::string& firrtlText, const BuildOptions& opts) {
  std::unique_ptr<firrtl::Circuit> circuit;
  {
    obs::ScopedPhaseTimer timer("parse");
    circuit = firrtl::parseCircuit(firrtlText);
  }
  std::unique_ptr<firrtl::Module> lowered;
  {
    obs::ScopedPhaseTimer timer("lower");
    lowered = firrtl::lowerCircuit(*circuit);
  }
  return buildSimIR(*lowered, opts);
}

namespace {

uint64_t satAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return s < a ? UINT64_MAX : s;
}

uint64_t satMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > UINT64_MAX / b) return UINT64_MAX;
  return a * b;
}

// Ground leaves a declaration of this type expands to during lowering.
uint64_t typeScalarCount(const firrtl::Type& t) {
  switch (t.kind) {
    case TypeKind::Bundle: {
      uint64_t total = 0;
      for (const auto& f : *t.fields) total = satAdd(total, typeScalarCount(f.type));
      return total;
    }
    case TypeKind::Vector:
      return satMul(t.size, typeScalarCount(*t.elem));
    default:
      return 1;
  }
}

struct AstCost {
  uint64_t decls = 0;     // scalar declarations/connects after lowering
  uint64_t memBytes = 0;  // memory state bytes
};

void accumulateStmts(const std::vector<firrtl::StmtPtr>& body,
                     const std::function<uint64_t(const std::string&)>& instCost, AstCost& c) {
  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::Wire:
      case StmtKind::Reg:
        c.decls = satAdd(c.decls, typeScalarCount(s->type));
        break;
      case StmtKind::Node:
      case StmtKind::Connect:
      case StmtKind::Invalidate:
        c.decls = satAdd(c.decls, 1);
        break;
      case StmtKind::Mem: {
        uint64_t rowBytes = (static_cast<uint64_t>(s->type.simWidth()) + 7) / 8;
        c.memBytes = satAdd(c.memBytes, satMul(s->depth, rowBytes == 0 ? 1 : rowBytes));
        c.decls = satAdd(c.decls, satMul(5, s->readers.size() + s->writers.size()) + 1);
        break;
      }
      case StmtKind::Inst:
        c.decls = satAdd(c.decls, instCost(s->moduleName));
        break;
      case StmtKind::When:
        accumulateStmts(s->thenBody, instCost, c);
        accumulateStmts(s->elseBody, instCost, c);
        break;
      default:
        break;
    }
  }
}

// Post-lowering footprint estimated from the AST, with instance fan-out
// multiplied through the hierarchy (a k-wide chain of depth d costs k^d —
// the classic blow-up a crafted input uses, and exactly what must be
// refused before flattenInstances materializes it). Instance cycles are
// flattenInstances' problem; they count as a single unit here.
void checkCircuitResources(const firrtl::Circuit& circuit, const support::ResourceGuard& guard) {
  std::unordered_map<std::string, AstCost> memo;
  std::unordered_set<std::string> inProgress;
  std::function<AstCost(const firrtl::Module&)> costOf = [&](const firrtl::Module& m) -> AstCost {
    auto it = memo.find(m.name);
    if (it != memo.end()) return it->second;
    if (!inProgress.insert(m.name).second) return AstCost{1, 0};
    AstCost c;
    for (const auto& p : m.ports) c.decls = satAdd(c.decls, typeScalarCount(p.type));
    AstCost mem;  // aggregate child memBytes alongside decls
    auto instCost = [&](const std::string& name) -> uint64_t {
      const firrtl::Module* child = circuit.findModule(name);
      if (!child) return 1;
      AstCost cc = costOf(*child);
      mem.memBytes = satAdd(mem.memBytes, cc.memBytes);
      return cc.decls;
    };
    accumulateStmts(m.body, instCost, c);
    c.memBytes = satAdd(c.memBytes, mem.memBytes);
    inProgress.erase(m.name);
    memo[m.name] = c;
    return c;
  };
  const firrtl::Module* main = circuit.mainModule();
  if (!main) return;
  AstCost total = costOf(*main);
  guard.checkIrOps(total.decls);
  guard.checkSimMem(total.memBytes);
}

}  // namespace

uint64_t estimateStateBytes(const SimIR& ir) {
  uint64_t bytes = 0;
  for (const auto& s : ir.signals)
    bytes = satAdd(bytes, (static_cast<uint64_t>(s.width) + 7) / 8);
  for (const auto& m : ir.mems) {
    uint64_t rowBytes = (static_cast<uint64_t>(m.width) + 7) / 8;
    bytes = satAdd(bytes, satMul(m.depth, rowBytes == 0 ? 1 : rowBytes));
  }
  return bytes;
}

std::optional<SimIR> buildFromFirrtlDiag(const std::string& firrtlText, const BuildOptions& opts,
                                         diag::DiagEngine& de,
                                         const support::ResourceLimits& limits) {
  support::ResourceGuard guard(limits);
  std::unique_ptr<firrtl::Circuit> circuit;
  {
    obs::ScopedPhaseTimer timer("parse");
    circuit = firrtl::parseCircuit(firrtlText, de);
  }
  if (de.hasErrors()) return std::nullopt;

  try {
    checkCircuitResources(*circuit, guard);
  } catch (const support::ResourceExhausted& e) {
    de.error(e.code(), e.what(), {});
    return std::nullopt;
  }

  std::unique_ptr<firrtl::Module> lowered;
  try {
    obs::ScopedPhaseTimer timer("lower");
    // lowerCircuit's phases, but with diag-collecting width inference so
    // every width error in the module surfaces in this one pass.
    firrtl::Circuit copy;
    copy.name = circuit->name;
    for (const auto& m : circuit->modules) {
      auto cm = std::make_unique<firrtl::Module>();
      cm->name = m->name;
      cm->ports = m->ports;
      for (const auto& s : m->body) cm->body.push_back(s->clone());
      copy.modules.push_back(std::move(cm));
    }
    firrtl::lowerAggregates(copy);
    lowered = firrtl::flattenInstances(copy);
    firrtl::expandWhens(*lowered);
    if (!firrtl::inferUnknownWidths(*lowered, de)) return std::nullopt;
    firrtl::inferModuleWidths(*lowered, de);
    if (de.hasErrors()) return std::nullopt;
  } catch (const firrtl::WidthError& e) {
    // Structural failures from the lowering passes themselves (unknown
    // module, instantiation cycle, aggregate misuse) fail as a unit.
    std::string msg = e.what();
    const std::string pfx = "firrtl width error: ";
    if (msg.rfind(pfx, 0) == 0) msg = msg.substr(pfx.size());
    de.error("E0305", msg, {});
    return std::nullopt;
  }

  try {
    SimIR ir = buildSimIR(*lowered, opts);
    guard.checkIrOps(ir.ops.size());
    guard.checkSimMem(estimateStateBytes(ir));
    guard.checkDeadline();
    return ir;
  } catch (const BuildError& e) {
    std::string msg = e.what();
    const std::string pfx = "sim build error: ";
    if (msg.rfind(pfx, 0) == 0) msg = msg.substr(pfx.size());
    de.error("E0401", msg, {});
    return std::nullopt;
  } catch (const support::ResourceExhausted& e) {
    de.error(e.code(), e.what(), {});
    return std::nullopt;
  }
}

}  // namespace essent::sim
