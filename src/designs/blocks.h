// FIRRTL text generators for synthetic design blocks.
//
// These stand in for the paper's open-source processor designs (DESIGN.md
// §2): they produce genuine FIRRTL consumed through the identical
// parse -> lower -> build -> partition -> simulate pipeline, with the graph
// shapes that matter to the partitioner — fanout-free cones, repeated
// bit-vector structures (Figure 4B), shared-input siblings (Figure 4C), and
// clock-gated mostly-idle regions (the source of low activity factors).
#pragma once

#include <cstdint>
#include <string>

namespace essent::designs {

// en-gated wrapping counter (the quickstart design).
std::string counterFirrtl(uint32_t width = 8);

// Array of `lanes` identical ALU lanes sharing two operand inputs, each
// selected by a per-lane opcode register: repeated structure with high
// shared fanout (exercises partitioner phase B).
std::string aluArrayFirrtl(uint32_t lanes, uint32_t width);

// `depth`-stage register pipeline; each stage applies a small combinational
// transform. Long fanout-free chains (exercises MFFC + phase A).
std::string pipelineFirrtl(uint32_t depth, uint32_t width);

// `banks` independent register banks, each updated only when its one-hot
// enable matches the bank select input: mostly idle by construction, the
// canonical low-activity-factor block.
std::string gatedBanksFirrtl(uint32_t banks, uint32_t width);

struct RandomDesignConfig {
  uint32_t numInputs = 4;
  uint32_t numRegs = 6;
  uint32_t numNodes = 60;     // combinational expression nodes
  uint32_t maxWidth = 24;     // signal widths drawn from [1, maxWidth]
  bool useSigned = true;
  bool useWhens = true;
  bool useMem = true;
  bool useWide = false;       // widths beyond 64 bits (slow-path coverage)
  bool useMul = true;
  bool useDiv = true;
};

// Structured random closed design: random combinational DAG over inputs and
// registers, registers with random resets/enables, optional memory and when
// blocks. Always builds and simulates; drives the cross-engine equivalence
// property tests.
std::string randomDesignFirrtl(uint64_t seed, const RandomDesignConfig& cfg = {});

}  // namespace essent::designs
