// TinySoC: the synthetic SoC standing in for the paper's Rocket Chip / BOOM
// evaluation designs (DESIGN.md §2).
//
// Structure (all emitted as multi-module FIRRTL and flattened by the normal
// tool flow):
//   * TinyCPU — a 16-bit RISC-style core: 8-register file, ALU
//     (add/sub/logic/mul/shift), branches, loads/stores with a configurable
//     memory-latency stall FSM (this is what couples workload IPC to
//     activity factor: dependent-load workloads stall the whole core);
//   * instruction and data memories (`mem` blocks);
//   * N Accel blocks — wide lane-array datapaths started by MMIO stores and
//     otherwise idle: the dominant source of low activity at scale;
//   * a free-running cycle-counter peripheral (baseline activity floor).
//
// The three preset configurations are sized so their FIRRTL graph node
// counts land near the paper's Table I designs (r16 / r18 / boom).
//
// ISA (16-bit words): op[15:12] rd[11:9] rs[8:6] rt[5:3]; imm6 = [5:0]
// (sign-extended); imm12 = [11:0].
//   0 NOP | 1 ADDI rd,rs,imm6 | 2 ADD | 3 SUB | 4 AND | 5 OR | 6 XOR
//   7 MUL | 8 LW rd,[rs+imm6] | 9 SW rd,[rs+imm6] | 10 BEQ rd,rs,imm6
//   11 BNE rd,rs,imm6 | 12 JMP imm12 | 13 SHL rd,rs,sh3 | 14 SHR rd,rs,sh3
//   15 HALT
// Addresses with bit 15 set are MMIO: accel index = addr[11:8], register
// select = addr[3:0] (0 = command/start, 1 = busy, 2 = result); accel
// index 15 reads the cycle counter.
#pragma once

#include <cstdint>
#include <string>

namespace essent::designs {

struct SoCConfig {
  uint32_t imemDepth = 1024;  // instruction words
  uint32_t dmemDepth = 1024;  // data words
  uint32_t memLatency = 3;    // extra stall cycles per load/store (>= 1)
  uint32_t numAccels = 4;     // MMIO-started accelerator blocks
  uint32_t accelLanes = 16;   // datapath lanes per accelerator
  uint32_t accelDuration = 32;  // busy cycles per accelerator start
  // Scale-out knobs (million-node elaboration study). numCores > 1 emits
  // that many TinyCPU instances, each with private instruction/data
  // memories (core 0 keeps the names `imem`/`dmem` so workload loading is
  // unchanged) and a round-robin share of the accelerators. nocWidth > 0
  // additionally emits that many independent 16-bit register-ring NoC
  // channels threading every core (stations capture a per-core tap, so
  // cross-core state actually flows). Defaults reproduce the legacy
  // single-core emission byte-for-byte.
  uint32_t numCores = 1;
  uint32_t nocWidth = 0;
  std::string name = "TinySoC";
};

std::string tinySoCFirrtl(const SoCConfig& cfg = {});

// Presets approximating the paper's Table I design sizes.
SoCConfig socR16();   // ~Rocket Chip 2016 scale
SoCConfig socR18();   // ~Rocket Chip 2018 scale
SoCConfig socBoom();  // ~BOOM scale
// Small configuration for unit tests (fast to build and simulate).
SoCConfig socTiny();
// Parameterized scale-out configuration: factor 1 lands near the boom
// preset (~130k netlist nodes) and factor 8 crosses one million nodes —
// more cores, a wider NoC, bigger memories, and a proportionally larger
// idle accelerator mass. Used by the elaboration-scale bench and tests.
SoCConfig socScaled(uint32_t factor);

}  // namespace essent::designs
