#include "designs/blocks.h"

#include <algorithm>
#include <vector>

#include "support/rng.h"
#include "support/strutil.h"

namespace essent::designs {

std::string counterFirrtl(uint32_t width) {
  return strfmt(R"(
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output count : UInt<%u>
    reg r : UInt<%u>, clock with : (reset => (reset, UInt<%u>(0)))
    when en :
      r <= tail(add(r, UInt<%u>(1)), 1)
    count <= r
)",
                width, width, width, width);
}

std::string aluArrayFirrtl(uint32_t lanes, uint32_t width) {
  std::string s = "circuit AluArray :\n  module AluArray :\n";
  s += "    input clock : Clock\n    input reset : UInt<1>\n";
  s += strfmt("    input opa : UInt<%u>\n    input opb : UInt<%u>\n", width, width);
  s += "    input sel : UInt<3>\n";
  s += strfmt("    output acc : UInt<%u>\n", width);
  for (uint32_t l = 0; l < lanes; l++) {
    s += strfmt("    reg lane%u : UInt<%u>, clock with : (reset => (reset, UInt<%u>(0)))\n",
                l, width, width);
  }
  // Each lane computes a different function of the shared operands and
  // registers it; the structure repeats across lanes with shared inputs.
  for (uint32_t l = 0; l < lanes; l++) {
    const char* fn;
    switch (l % 5) {
      case 0: fn = "tail(add(opa, opb), 1)"; break;
      case 1: fn = "tail(sub(opa, opb), 1)"; break;
      case 2: fn = "and(opa, opb)"; break;
      case 3: fn = "xor(opa, opb)"; break;
      default: fn = "or(opa, opb)"; break;
    }
    s += strfmt("    node fn%u = %s\n", l, fn);
    s += strfmt("    when eq(sel, UInt<3>(%u)) :\n      lane%u <= fn%u\n", l % 8, l, l);
  }
  // Reduction tree over the lanes.
  std::vector<std::string> layer;
  for (uint32_t l = 0; l < lanes; l++) layer.push_back(strfmt("lane%u", l));
  uint32_t tmp = 0;
  while (layer.size() > 1) {
    std::vector<std::string> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      std::string name = strfmt("red%u", tmp++);
      s += strfmt("    node %s = xor(%s, %s)\n", name.c_str(), layer[i].c_str(),
                  layer[i + 1].c_str());
      next.push_back(name);
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  s += strfmt("    acc <= %s\n", layer[0].c_str());
  return s;
}

std::string pipelineFirrtl(uint32_t depth, uint32_t width) {
  std::string s = "circuit Pipeline :\n  module Pipeline :\n";
  s += "    input clock : Clock\n    input reset : UInt<1>\n";
  s += strfmt("    input din : UInt<%u>\n    input valid : UInt<1>\n", width);
  s += strfmt("    output dout : UInt<%u>\n", width);
  for (uint32_t d = 0; d < depth; d++)
    s += strfmt("    reg st%u : UInt<%u>, clock with : (reset => (reset, UInt<%u>(0)))\n", d,
                width, width);
  s += "    when valid :\n";
  for (uint32_t d = 0; d < depth; d++) {
    std::string prev = d == 0 ? "din" : strfmt("st%u", d - 1);
    // Alternate a rotate-ish transform and an increment per stage.
    if (d % 2 == 0) {
      s += strfmt("      st%u <= cat(bits(%s, 0, 0), bits(%s, %u, 1))\n", d, prev.c_str(),
                  prev.c_str(), width - 1);
    } else {
      s += strfmt("      st%u <= tail(add(%s, UInt<%u>(%u)), 1)\n", d, prev.c_str(), width,
                  d % 7 + 1);
    }
  }
  s += strfmt("    dout <= st%u\n", depth - 1);
  return s;
}

std::string gatedBanksFirrtl(uint32_t banks, uint32_t width) {
  std::string s = "circuit GatedBanks :\n  module GatedBanks :\n";
  s += "    input clock : Clock\n    input reset : UInt<1>\n";
  s += strfmt("    input bankSel : UInt<16>\n    input wdata : UInt<%u>\n", width);
  s += strfmt("    output sum : UInt<%u>\n", width);
  for (uint32_t b = 0; b < banks; b++) {
    s += strfmt("    reg bank%u : UInt<%u>, clock with : (reset => (reset, UInt<%u>(0)))\n", b,
                width, width);
    // Each bank updates only when selected: idle almost always.
    s += strfmt("    when eq(bankSel, UInt<16>(%u)) :\n", b);
    s += strfmt("      bank%u <= tail(add(bank%u, wdata), 1)\n", b, b);
  }
  std::vector<std::string> layer;
  for (uint32_t b = 0; b < banks; b++) layer.push_back(strfmt("bank%u", b));
  uint32_t tmp = 0;
  while (layer.size() > 1) {
    std::vector<std::string> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      std::string name = strfmt("bsum%u", tmp++);
      s += strfmt("    node %s = xor(%s, %s)\n", name.c_str(), layer[i].c_str(),
                  layer[i + 1].c_str());
      next.push_back(name);
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  s += strfmt("    sum <= %s\n", layer[0].c_str());
  return s;
}

// ---------------------------------------------------------------------------
// Random design generator

namespace {

struct Val {
  std::string ref;  // node/port name
  uint32_t width;
  bool sgn;
};

struct RandGen {
  Rng rng;
  const RandomDesignConfig& cfg;
  std::string body;
  std::vector<Val> pool;
  uint32_t nextId = 0;
  uint32_t widthCap;

  RandGen(uint64_t seed, const RandomDesignConfig& c)
      : rng(seed), cfg(c), widthCap(c.useWide ? 150 : 60) {}

  Val pick() { return pool[rng.nextBelow(pool.size())]; }

  Val pickOneBit() {
    // Find or make a 1-bit value.
    for (int tries = 0; tries < 8; tries++) {
      Val v = pick();
      if (v.width == 1 && !v.sgn) return v;
    }
    Val v = pick();
    return emitNode(strfmt("orr(%s)", v.ref.c_str()), 1, false);
  }

  Val emitNode(const std::string& expr, uint32_t width, bool sgn) {
    std::string name = strfmt("n%u", nextId++);
    body += strfmt("    node %s = %s\n", name.c_str(), expr.c_str());
    Val v{name, width, sgn};
    pool.push_back(v);
    return v;
  }

  // Reinterprets v as the wanted signedness (free cast).
  Val coerce(Val v, bool wantSigned) {
    if (v.sgn == wantSigned) return v;
    return Val{strfmt("%s(%s)", wantSigned ? "asSInt" : "asUInt", v.ref.c_str()), v.width,
               wantSigned};
  }

  // Narrows oversized results to keep widths bounded.
  Val clamp(Val v) {
    if (v.width <= widthCap) return v;
    uint32_t w = 1 + static_cast<uint32_t>(rng.nextBelow(widthCap));
    return emitNode(strfmt("bits(%s, %u, 0)", v.ref.c_str(), w - 1), w, false);
  }

  Val randomLiteral() {
    uint32_t w = 1 + static_cast<uint32_t>(rng.nextBelow(cfg.maxWidth));
    uint64_t mag = rng.next() & ((w >= 64) ? ~0ull : ((1ull << w) - 1));
    bool sgn = cfg.useSigned && rng.nextBool();
    if (sgn)
      return Val{strfmt("asSInt(UInt<%u>(\"h%llx\"))", w, static_cast<unsigned long long>(mag)),
                 w, true};
    return Val{strfmt("UInt<%u>(\"h%llx\")", w, static_cast<unsigned long long>(mag)), w, false};
  }

  Val makeExpr() {
    int kind = static_cast<int>(rng.nextBelow(20));
    Val a = pick();
    switch (kind) {
      case 0: {  // add/sub
        Val b = coerce(pick(), a.sgn);
        const char* op = rng.nextBool() ? "add" : "sub";
        uint32_t w = std::max(a.width, b.width) + 1;
        return clamp(Val{strfmt("%s(%s, %s)", op, a.ref.c_str(), b.ref.c_str()), w, a.sgn});
      }
      case 1: {  // mul
        if (!cfg.useMul) return makeExpr();
        Val b = coerce(pick(), a.sgn);
        if (a.width + b.width > widthCap) {
          a = clamp(a);
          b = coerce(clamp(coerce(b, false)), a.sgn);
        }
        if (a.width + b.width > widthCap) return makeExpr();
        return Val{strfmt("mul(%s, %s)", a.ref.c_str(), b.ref.c_str()), a.width + b.width, a.sgn};
      }
      case 2: {  // div/rem
        if (!cfg.useDiv) return makeExpr();
        Val b = coerce(pick(), a.sgn);
        if (rng.nextBool())
          return Val{strfmt("div(%s, %s)", a.ref.c_str(), b.ref.c_str()),
                     a.sgn ? a.width + 1 : a.width, a.sgn};
        return Val{strfmt("rem(%s, %s)", a.ref.c_str(), b.ref.c_str()),
                   std::min(a.width, b.width), a.sgn};
      }
      case 3: {  // comparison
        Val b = coerce(pick(), a.sgn);
        static const char* cmps[] = {"lt", "leq", "gt", "geq", "eq", "neq"};
        return Val{strfmt("%s(%s, %s)", cmps[rng.nextBelow(6)], a.ref.c_str(), b.ref.c_str()), 1,
                   false};
      }
      case 4: {  // bitwise
        Val b = coerce(pick(), a.sgn);
        static const char* ops[] = {"and", "or", "xor"};
        return Val{strfmt("%s(%s, %s)", ops[rng.nextBelow(3)], a.ref.c_str(), b.ref.c_str()),
                   std::max(a.width, b.width), false};
      }
      case 5:  // not
        return Val{strfmt("not(%s)", a.ref.c_str()), a.width, false};
      case 6: {  // reductions
        static const char* ops[] = {"andr", "orr", "xorr"};
        return Val{strfmt("%s(%s)", ops[rng.nextBelow(3)], a.ref.c_str()), 1, false};
      }
      case 7: {  // cat
        Val b = pick();
        if (a.width + b.width > widthCap) return makeExpr();
        return Val{strfmt("cat(%s, %s)", a.ref.c_str(), b.ref.c_str()), a.width + b.width, false};
      }
      case 8: {  // bits
        uint32_t lo = static_cast<uint32_t>(rng.nextBelow(a.width));
        uint32_t hi = lo + static_cast<uint32_t>(rng.nextBelow(a.width - lo));
        return Val{strfmt("bits(%s, %u, %u)", a.ref.c_str(), hi, lo), hi - lo + 1, false};
      }
      case 9: {  // pad
        uint32_t n = 1 + static_cast<uint32_t>(rng.nextBelow(widthCap));
        return Val{strfmt("pad(%s, %u)", a.ref.c_str(), n), std::max(a.width, n), a.sgn};
      }
      case 10: {  // shl/shr static
        uint32_t n = static_cast<uint32_t>(rng.nextBelow(12));
        if (rng.nextBool() && a.width + n <= widthCap)
          return Val{strfmt("shl(%s, %u)", a.ref.c_str(), n), a.width + n, a.sgn};
        n = std::min(n, a.width);
        return Val{strfmt("shr(%s, %u)", a.ref.c_str(), n), std::max(a.width - n, 1u), a.sgn};
      }
      case 11: {  // dynamic shifts (shift amount kept narrow)
        Val b = coerce(pick(), false);
        if (b.width > 4) b = emitNode(strfmt("bits(%s, 3, 0)", b.ref.c_str()), 4, false);
        uint32_t extra = (1u << b.width) - 1;  // dshl widens by 2^wb - 1
        if (rng.nextBool() && a.width + extra <= widthCap)
          return Val{strfmt("dshl(%s, %s)", a.ref.c_str(), b.ref.c_str()), a.width + extra,
                     a.sgn};
        return Val{strfmt("dshr(%s, %s)", a.ref.c_str(), b.ref.c_str()), a.width, a.sgn};
      }
      case 12:  // cvt
        return Val{strfmt("cvt(%s)", a.ref.c_str()), a.sgn ? a.width : a.width + 1, true};
      case 13:  // neg
        if (a.width + 1 > widthCap) a = clamp(a);
        return Val{strfmt("neg(%s)", a.ref.c_str()), a.width + 1, true};
      case 14: {  // mux
        Val sel = pickOneBit();
        Val t = pick();
        Val f = coerce(pick(), t.sgn);
        return Val{strfmt("mux(%s, %s, %s)", sel.ref.c_str(), t.ref.c_str(), f.ref.c_str()),
                   std::max(t.width, f.width), t.sgn};
      }
      case 15: {  // validif
        Val c = pickOneBit();
        return Val{strfmt("validif(%s, %s)", c.ref.c_str(), a.ref.c_str()), a.width, a.sgn};
      }
      case 16: {  // head/tail
        if (a.width < 2) return makeExpr();
        uint32_t n = 1 + static_cast<uint32_t>(rng.nextBelow(a.width - 1));
        if (rng.nextBool()) return Val{strfmt("head(%s, %u)", a.ref.c_str(), n), n, false};
        return Val{strfmt("tail(%s, %u)", a.ref.c_str(), n), a.width - n, false};
      }
      case 17:
        return randomLiteral();
      default: {  // plain reuse through a unary op to add depth
        return Val{strfmt("asUInt(%s)", a.ref.c_str()), a.width, false};
      }
    }
  }
};

}  // namespace

std::string randomDesignFirrtl(uint64_t seed, const RandomDesignConfig& cfg) {
  RandGen g(seed, cfg);
  std::string ports = "    input clock : Clock\n    input reset : UInt<1>\n";

  for (uint32_t i = 0; i < cfg.numInputs; i++) {
    uint32_t w = 1 + static_cast<uint32_t>(g.rng.nextBelow(cfg.maxWidth));
    bool sgn = cfg.useSigned && g.rng.nextChance(0.3);
    ports += strfmt("    input in%u : %s<%u>\n", i, sgn ? "SInt" : "UInt", w);
    g.pool.push_back(Val{strfmt("in%u", i), w, sgn});
  }

  // Registers: declared up front so combinational logic can read them.
  struct RegDecl {
    std::string name;
    uint32_t width;
    bool sgn;
    bool hasReset;
    bool gated;
  };
  std::vector<RegDecl> regs;
  for (uint32_t r = 0; r < cfg.numRegs; r++) {
    RegDecl rd;
    rd.name = strfmt("r%u", r);
    rd.width = 1 + static_cast<uint32_t>(g.rng.nextBelow(cfg.maxWidth));
    rd.sgn = cfg.useSigned && g.rng.nextChance(0.3);
    rd.hasReset = g.rng.nextChance(0.7);
    rd.gated = cfg.useWhens && g.rng.nextChance(0.5);
    const char* ty = rd.sgn ? "SInt" : "UInt";
    if (rd.hasReset) {
      g.body += strfmt("    reg %s : %s<%u>, clock with : (reset => (reset, %s<%u>(0)))\n",
                       rd.name.c_str(), ty, rd.width, ty, rd.width);
    } else {
      g.body += strfmt("    reg %s : %s<%u>, clock\n", rd.name.c_str(), ty, rd.width);
    }
    g.pool.push_back(Val{rd.name, rd.width, rd.sgn});
    regs.push_back(rd);
  }

  // Combinational nodes.
  for (uint32_t n = 0; n < cfg.numNodes; n++) {
    Val v = g.makeExpr();
    g.emitNode(v.ref, v.width, v.sgn);
  }

  // Optional memory.
  if (cfg.useMem) {
    g.body +=
        "    mem scratch :\n"
        "      data-type => UInt<16>\n"
        "      depth => 16\n"
        "      read-latency => 0\n"
        "      write-latency => 1\n"
        "      read-under-write => undefined\n"
        "      reader => r\n"
        "      writer => w\n";
    Val raddr = g.pick(), waddr = g.pick(), wdata = g.pick();
    Val wen = g.pickOneBit();
    g.body += strfmt("    scratch.r.addr <= bits(pad(asUInt(%s), 4), 3, 0)\n", raddr.ref.c_str());
    g.body += "    scratch.r.en <= UInt<1>(1)\n    scratch.r.clk <= clock\n";
    g.body += strfmt("    scratch.w.addr <= bits(pad(asUInt(%s), 4), 3, 0)\n", waddr.ref.c_str());
    g.body += strfmt("    scratch.w.en <= %s\n", wen.ref.c_str());
    g.body += "    scratch.w.clk <= clock\n";
    g.body += strfmt("    scratch.w.data <= bits(pad(asUInt(%s), 16), 15, 0)\n", wdata.ref.c_str());
    g.body += "    scratch.w.mask <= UInt<1>(1)\n";
    g.pool.push_back(Val{"scratch.r.data", 16, false});
    // A couple more nodes consuming the read port.
    for (int n = 0; n < 4; n++) {
      Val v = g.makeExpr();
      g.emitNode(v.ref, v.width, v.sgn);
    }
  }

  // Register next-value connects (possibly when-gated). Connect sources are
  // coerced to the register's signedness: FIRRTL requires matching
  // signedness, and when-expansion turns gated connects into muxes whose
  // arms must agree.
  for (const auto& rd : regs) {
    Val next = g.coerce(g.pick(), rd.sgn);
    if (rd.gated) {
      Val en = g.pickOneBit();
      g.body += strfmt("    when %s :\n      %s <= %s\n", en.ref.c_str(), rd.name.c_str(),
                       next.ref.c_str());
      if (g.rng.nextBool()) {
        Val alt = g.coerce(g.pick(), rd.sgn);
        g.body += strfmt("    else :\n      %s <= %s\n", rd.name.c_str(), alt.ref.c_str());
      }
    } else {
      g.body += strfmt("    %s <= %s\n", rd.name.c_str(), next.ref.c_str());
    }
  }

  // Outputs: several random picks plus every register (ensures liveness and
  // gives the equivalence checker plenty of observable state).
  std::string outPorts, outConnects;
  for (int o = 0; o < 5; o++) {
    Val v = g.pick();
    outPorts += strfmt("    output out%d : %s<%u>\n", o, v.sgn ? "SInt" : "UInt", v.width);
    outConnects += strfmt("    out%d <= %s\n", o, v.ref.c_str());
  }

  return "circuit RandomDesign :\n  module RandomDesign :\n" + ports + outPorts + g.body +
         outConnects;
}

}  // namespace essent::designs
