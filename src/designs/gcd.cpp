#include "designs/gcd.h"

#include "support/strutil.h"

namespace essent::designs {

std::string gcdFirrtl(uint32_t w) {
  return strfmt(R"(
circuit GCD :
  module GCD :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<%u>
    input b : UInt<%u>
    input load : UInt<1>
    output result : UInt<%u>
    output valid : UInt<1>
    reg x : UInt<%u>, clock with : (reset => (reset, UInt<%u>(0)))
    reg y : UInt<%u>, clock with : (reset => (reset, UInt<%u>(0)))
    when load :
      x <= a
      y <= b
    else :
      when gt(x, y) :
        x <= tail(sub(x, y), 1)
      else :
        when neq(y, UInt<%u>(0)) :
          y <= tail(sub(y, x), 1)
    result <= x
    valid <= eq(y, UInt<%u>(0))
)",
                w, w, w, w, w, w, w, w, w);
}

}  // namespace essent::designs
