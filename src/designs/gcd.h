// Classic load/iterate GCD circuit (the canonical Chisel example), used by
// the gcd example program and several tests.
#pragma once

#include <cstdint>
#include <string>

namespace essent::designs {

std::string gcdFirrtl(uint32_t width = 16);

}  // namespace essent::designs
