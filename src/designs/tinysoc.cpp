#include "designs/tinysoc.h"

#include <algorithm>
#include <vector>

#include "support/strutil.h"

namespace essent::designs {

namespace {

uint32_t log2ceil(uint64_t depth) {
  uint32_t w = 1;
  while ((uint64_t{1} << w) < depth) w++;
  return w;
}

// Nested-mux read of the 8-entry register file (x0 reads as zero).
std::string regMux(const char* sel) {
  std::string e = "UInt<16>(0)";
  for (int i = 7; i >= 1; i--) {
    // Build inside-out so x1..x7 test in ascending priority; any order is
    // equivalent since the selectors are mutually exclusive.
    e = strfmt("mux(eq(%s, UInt<3>(%d)), x%d, %s)", sel, i, i, e.c_str());
  }
  return e;
}

std::string cpuModule(const SoCConfig& cfg) {
  uint32_t aw = log2ceil(cfg.imemDepth);
  uint32_t dw = log2ceil(cfg.dmemDepth);
  std::string s;
  s += "  module TinyCPU :\n";
  s += "    input clock : Clock\n    input reset : UInt<1>\n";
  s += strfmt("    output imem_addr : UInt<%u>\n", aw);
  s += "    input imem_data : UInt<16>\n";
  s += strfmt("    output dmem_raddr : UInt<%u>\n", dw);
  s += "    input dmem_rdata : UInt<16>\n";
  s += "    output dmem_wen : UInt<1>\n";
  s += strfmt("    output dmem_waddr : UInt<%u>\n", dw);
  s += "    output dmem_wdata : UInt<16>\n";
  s += "    output mmio_wen : UInt<1>\n";
  s += "    output mmio_addr : UInt<16>\n";
  s += "    output mmio_wdata : UInt<16>\n";
  s += "    input mmio_rdata : UInt<16>\n";
  s += "    output halted : UInt<1>\n";
  s += "    output pc_out : UInt<16>\n";
  s += "    output instret : UInt<32>\n";

  auto reg = [&](const char* name, uint32_t w) {
    s += strfmt("    reg %s : UInt<%u>, clock with : (reset => (reset, UInt<%u>(0)))\n", name, w,
                w);
  };
  reg("pc", 16);
  reg("state", 2);
  reg("cnt", 8);
  reg("pendAddr", 16);
  reg("pendData", 16);
  reg("pendRd", 3);
  reg("pendLoad", 1);
  reg("pendMmio", 1);
  reg("icount", 32);
  for (int i = 1; i <= 7; i++) reg(strfmt("x%d", i).c_str(), 16);

  s += "    node instr = imem_data\n";
  s += "    node opc = bits(instr, 15, 12)\n";
  s += "    node rd = bits(instr, 11, 9)\n";
  s += "    node rs = bits(instr, 8, 6)\n";
  s += "    node rt = bits(instr, 5, 3)\n";
  s += "    node imm6 = bits(instr, 5, 0)\n";
  s += "    node imm16 = asUInt(pad(asSInt(imm6), 16))\n";
  s += "    node imm12 = bits(instr, 11, 0)\n";
  s += strfmt("    node rsVal = %s\n", regMux("rs").c_str());
  s += strfmt("    node rtVal = %s\n", regMux("rt").c_str());
  s += strfmt("    node rdVal = %s\n", regMux("rd").c_str());

  s += "    node aluAddi = tail(add(rsVal, imm16), 1)\n";
  s += "    node aluAdd = tail(add(rsVal, rtVal), 1)\n";
  s += "    node aluSub = tail(sub(rsVal, rtVal), 1)\n";
  s += "    node aluAnd = and(rsVal, rtVal)\n";
  s += "    node aluOr = or(rsVal, rtVal)\n";
  s += "    node aluXor = xor(rsVal, rtVal)\n";
  s += "    node aluMul = bits(mul(rsVal, rtVal), 15, 0)\n";
  s += "    node sh = bits(instr, 5, 3)\n";  // shift amount rides in the rt field
  s += "    node aluShl = bits(dshl(rsVal, sh), 15, 0)\n";
  s += "    node aluShr = dshr(rsVal, sh)\n";
  s += "    node ea = aluAddi\n";
  s += "    node isMmio = bits(ea, 15, 15)\n";

  static const char* opNames[16] = {"Nop",  "Addi", "Add", "Sub", "And", "Or",
                                    "Xor",  "Mul",  "Lw",  "Sw",  "Beq", "Bne",
                                    "Jmp",  "Shl",  "Shr", "Halt"};
  for (int o = 1; o < 16; o++)
    s += strfmt("    node is%s = eq(opc, UInt<4>(%d))\n", opNames[o], o);
  s += "    node isMem = or(isLw, isSw)\n";
  s += "    node isBr = or(isBeq, isBne)\n";
  s += "    node aluWen = and(or(isAddi, or(isAdd, or(isSub, or(isAnd, or(isOr, or(isXor, "
       "or(isMul, or(isShl, isShr)))))))), neq(rd, UInt<3>(0)))\n";
  s += "    node wdata = mux(isAddi, aluAddi, mux(isAdd, aluAdd, mux(isSub, aluSub, mux(isAnd, "
       "aluAnd, mux(isOr, aluOr, mux(isXor, aluXor, mux(isMul, aluMul, mux(isShl, aluShl, "
       "aluShr))))))))\n";

  s += "    node inRun = eq(state, UInt<2>(0))\n";
  s += "    node inWait = eq(state, UInt<2>(1))\n";
  s += "    node commit = and(inWait, eq(cnt, UInt<8>(1)))\n";
  s += "    node loadCommit = and(commit, pendLoad)\n";
  s += "    node loadData = mux(pendMmio, mmio_rdata, dmem_rdata)\n";
  s += "    node rfWen = or(and(inRun, aluWen), loadCommit)\n";
  s += "    node rfDest = mux(loadCommit, pendRd, rd)\n";
  s += "    node rfData = mux(loadCommit, loadData, wdata)\n";
  for (int i = 1; i <= 7; i++) {
    s += strfmt("    when and(rfWen, eq(rfDest, UInt<3>(%d))) :\n      x%d <= rfData\n", i, i);
  }

  s += "    node pcPlus1 = tail(add(pc, UInt<16>(1)), 1)\n";
  s += "    node brTarget = tail(add(pc, imm16), 1)\n";
  s += "    node takeBeq = and(isBeq, eq(rdVal, rsVal))\n";
  s += "    node takeBne = and(isBne, neq(rdVal, rsVal))\n";
  s += "    node brTaken = or(takeBeq, takeBne)\n";

  s += "    when inRun :\n";
  s += "      icount <= tail(add(icount, UInt<32>(1)), 1)\n";
  s += "      when isHalt :\n";
  s += "        state <= UInt<2>(2)\n";
  s += "        icount <= icount\n";
  s += "        printf(clock, UInt<1>(1), \"halt pc=%d instret=%d\\n\", pc, icount)\n";
  s += "      else when isMem :\n";
  s += strfmt("        state <= UInt<2>(1)\n        cnt <= UInt<8>(%u)\n", cfg.memLatency);
  s += "        pendAddr <= ea\n        pendData <= rdVal\n        pendRd <= rd\n";
  s += "        pendLoad <= isLw\n        pendMmio <= isMmio\n        pc <= pcPlus1\n";
  s += "      else when isJmp :\n        pc <= pad(imm12, 16)\n";
  s += "      else when brTaken :\n        pc <= brTarget\n";
  s += "      else :\n        pc <= pcPlus1\n";
  s += "    else when inWait :\n";
  s += "      cnt <= tail(sub(cnt, UInt<8>(1)), 1)\n";
  s += "      when commit :\n        state <= UInt<2>(0)\n";

  s += strfmt("    imem_addr <= bits(pc, %u, 0)\n", aw - 1);
  s += strfmt("    dmem_raddr <= bits(pendAddr, %u, 0)\n", dw - 1);
  s += "    node storeCommit = and(commit, and(not(pendLoad), not(pendMmio)))\n";
  s += "    dmem_wen <= storeCommit\n";
  s += strfmt("    dmem_waddr <= bits(pendAddr, %u, 0)\n", dw - 1);
  s += "    dmem_wdata <= pendData\n";
  s += "    mmio_wen <= and(commit, and(not(pendLoad), pendMmio))\n";
  s += "    mmio_addr <= pendAddr\n";
  s += "    mmio_wdata <= pendData\n";
  s += "    halted <= eq(state, UInt<2>(2))\n";
  s += "    pc_out <= pc\n";
  s += "    instret <= icount\n";
  s += "    stop(clock, eq(state, UInt<2>(2)), 0)\n";
  return s;
}

std::string accelModule(const SoCConfig& cfg) {
  uint32_t lanes = cfg.accelLanes;
  std::string s;
  s += "  module Accel :\n";
  s += "    input clock : Clock\n    input reset : UInt<1>\n";
  s += "    input start : UInt<1>\n    input operand : UInt<16>\n";
  s += "    output busy : UInt<1>\n    output result : UInt<16>\n";
  s += "    reg busyR : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))\n";
  s += "    reg dcnt : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n";
  s += "    reg opnd : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))\n";
  for (uint32_t l = 0; l < lanes; l++)
    s += strfmt("    reg lane%u : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))\n", l);
  s += "    when start :\n";
  s += "      busyR <= UInt<1>(1)\n";
  s += strfmt("      dcnt <= UInt<8>(%u)\n", cfg.accelDuration);
  s += "      opnd <= operand\n";
  s += "    else when busyR :\n";
  s += "      dcnt <= tail(sub(dcnt, UInt<8>(1)), 1)\n";
  s += "      when eq(dcnt, UInt<8>(1)) :\n        busyR <= UInt<1>(0)\n";
  // Lane datapath: a circular mix network; each lane reads its predecessor.
  s += strfmt("      lane0 <= tail(add(xor(lane0, lane%u), opnd), 1)\n", lanes - 1);
  for (uint32_t l = 1; l < lanes; l++)
    s += strfmt("      lane%u <= tail(add(xor(lane%u, lane%u), UInt<16>(%u)), 1)\n", l, l, l - 1,
                (l * 7 + 1) & 0xffff);
  s += "    busy <= busyR\n";
  // XOR reduction tree over the lanes.
  std::vector<std::string> layer;
  for (uint32_t l = 0; l < lanes; l++) layer.push_back(strfmt("lane%u", l));
  uint32_t tmp = 0;
  while (layer.size() > 1) {
    std::vector<std::string> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      std::string name = strfmt("rx%u", tmp++);
      s += strfmt("    node %s = xor(%s, %s)\n", name.c_str(), layer[i].c_str(),
                  layer[i + 1].c_str());
      next.push_back(name);
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  s += strfmt("    result <= %s\n", layer[0].c_str());
  return s;
}

std::string memBlock(const std::string& name, uint32_t depth) {
  std::string s;
  s += strfmt("    mem %s :\n", name.c_str());
  s += "      data-type => UInt<16>\n";
  s += strfmt("      depth => %u\n", depth);
  s += "      read-latency => 0\n      write-latency => 1\n";
  s += "      read-under-write => undefined\n";
  s += "      reader => r\n      writer => w\n";
  return s;
}

// Multi-core scale-out top: numCores TinyCPU instances with private
// memories, accelerators dealt round-robin across cores, and nocWidth
// register-ring NoC channels threading every core. Emitted only when the
// scale-out knobs are set; the single-core emission below is untouched so
// the legacy presets stay byte-identical.
std::string scaledSoCTop(const SoCConfig& cfg) {
  const uint32_t cores = std::max(1u, cfg.numCores);
  const uint32_t aw = log2ceil(cfg.imemDepth);
  // Per-core MMIO decode is 4 bits; index 15 is the cycle counter.
  const uint32_t perCoreAddressable = 15;

  std::string s = strfmt("circuit %s :\n", cfg.name.c_str());
  s += cpuModule(cfg);
  s += accelModule(cfg);
  s += strfmt("  module %s :\n", cfg.name.c_str());
  s += "    input clock : Clock\n    input reset : UInt<1>\n";
  s += "    output halted : UInt<1>\n";
  s += "    output pc : UInt<16>\n";
  s += "    output instret : UInt<32>\n";
  s += "    output status : UInt<16>\n";

  auto memName = [&](const char* base, uint32_t k) {
    return k == 0 ? std::string(base) : strfmt("%s%u", base, k);
  };

  for (uint32_t k = 0; k < cores; k++) {
    s += strfmt("    inst cpu%u of TinyCPU\n", k);
    s += strfmt("    cpu%u.clock <= clock\n    cpu%u.reset <= reset\n", k, k);

    std::string im = memName("imem", k);
    s += memBlock(im, cfg.imemDepth);
    s += strfmt("    %s.r.addr <= cpu%u.imem_addr\n", im.c_str(), k);
    s += strfmt("    %s.r.en <= UInt<1>(1)\n    %s.r.clk <= clock\n", im.c_str(), im.c_str());
    s += strfmt("    %s.w.addr <= UInt<%u>(0)\n", im.c_str(), aw);
    s += strfmt("    %s.w.en <= UInt<1>(0)\n    %s.w.clk <= clock\n", im.c_str(), im.c_str());
    s += strfmt("    %s.w.data <= UInt<16>(0)\n    %s.w.mask <= UInt<1>(0)\n", im.c_str(),
                im.c_str());
    s += strfmt("    cpu%u.imem_data <= %s.r.data\n", k, im.c_str());

    std::string dm = memName("dmem", k);
    s += memBlock(dm, cfg.dmemDepth);
    s += strfmt("    %s.r.addr <= cpu%u.dmem_raddr\n", dm.c_str(), k);
    s += strfmt("    %s.r.en <= UInt<1>(1)\n    %s.r.clk <= clock\n", dm.c_str(), dm.c_str());
    s += strfmt("    %s.w.addr <= cpu%u.dmem_waddr\n", dm.c_str(), k);
    s += strfmt("    %s.w.en <= cpu%u.dmem_wen\n    %s.w.clk <= clock\n", dm.c_str(), k,
                dm.c_str());
    s += strfmt("    %s.w.data <= cpu%u.dmem_wdata\n    %s.w.mask <= UInt<1>(1)\n", dm.c_str(),
                k, dm.c_str());
    s += strfmt("    cpu%u.dmem_rdata <= %s.r.data\n", k, dm.c_str());

    s += strfmt("    node mmioIdx%u = bits(cpu%u.mmio_addr, 11, 8)\n", k, k);
    s += strfmt("    node mmioSel%u = bits(cpu%u.mmio_addr, 3, 0)\n", k, k);
  }

  // Accelerators dealt round-robin: accel j is owned (started and read)
  // by core j % cores at that core's MMIO index j / cores.
  for (uint32_t j = 0; j < cfg.numAccels; j++) {
    uint32_t owner = j % cores;
    uint32_t idx = j / cores;
    s += strfmt("    inst acc%u of Accel\n", j);
    s += strfmt("    acc%u.clock <= clock\n    acc%u.reset <= reset\n", j, j);
    if (idx < perCoreAddressable) {
      s += strfmt(
          "    acc%u.start <= and(cpu%u.mmio_wen, and(eq(mmioIdx%u, UInt<4>(%u)), "
          "eq(mmioSel%u, UInt<4>(0))))\n",
          j, owner, owner, idx, owner);
    } else {
      // Idle mass: present in the netlist, never started (clock-gated block).
      s += strfmt("    acc%u.start <= UInt<1>(0)\n", j);
    }
    s += strfmt("    acc%u.operand <= cpu%u.mmio_wdata\n", j, owner);
  }

  // Free-running cycle counter peripheral (MMIO index 15, shared).
  s += "    reg cycles : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))\n";
  s += "    cycles <= tail(add(cycles, UInt<32>(1)), 1)\n";
  s += "    node counterRead = bits(cycles, 15, 0)\n";

  // Per-core MMIO read mux over that core's addressable accels.
  for (uint32_t k = 0; k < cores; k++) {
    std::string busySel = "UInt<1>(0)", resSel = "UInt<16>(0)";
    for (uint32_t j = k; j < cfg.numAccels; j += cores) {
      uint32_t idx = j / cores;
      if (idx >= perCoreAddressable) break;
      busySel = strfmt("mux(eq(mmioIdx%u, UInt<4>(%u)), acc%u.busy, %s)", k, idx, j,
                       busySel.c_str());
      resSel = strfmt("mux(eq(mmioIdx%u, UInt<4>(%u)), acc%u.result, %s)", k, idx, j,
                      resSel.c_str());
    }
    s += strfmt("    node busySel%u = %s\n", k, busySel.c_str());
    s += strfmt("    node resSel%u = %s\n", k, resSel.c_str());
    s += strfmt(
        "    cpu%u.mmio_rdata <= mux(eq(mmioIdx%u, UInt<4>(15)), counterRead, "
        "mux(eq(mmioSel%u, UInt<4>(1)), pad(busySel%u, 16), resSel%u))\n",
        k, k, k, k, k);
  }

  // NoC: nocWidth independent 16-bit register rings with one station per
  // core. Each station captures its predecessor mixed with a live per-core
  // tap, so cross-core state flows every cycle through sequential hops —
  // the activity-factor profile of an interconnect rather than a wire.
  for (uint32_t c = 0; c < cfg.nocWidth; c++) {
    for (uint32_t k = 0; k < cores; k++)
      s += strfmt("    reg noc%u_%u : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))\n",
                  c, k);
    for (uint32_t k = 0; k < cores; k++) {
      uint32_t prev = (k + cores - 1) % cores;
      s += strfmt("    node tap%u_%u = xor(cpu%u.pc_out, bits(cpu%u.mmio_addr, 15, 0))\n", c, k,
                  k, k);
      s += strfmt("    noc%u_%u <= tail(add(xor(noc%u_%u, tap%u_%u), UInt<16>(%u)), 1)\n", c, k,
                  c, prev, c, k, (c * 31 + k * 7 + 1) & 0xffff);
    }
  }

  // Status: XOR over every accelerator result (keeps the idle mass live),
  // folded with the tail station of every NoC channel.
  std::vector<std::string> layer;
  for (uint32_t j = 0; j < cfg.numAccels; j++) layer.push_back(strfmt("acc%u.result", j));
  for (uint32_t c = 0; c < cfg.nocWidth; c++) layer.push_back(strfmt("noc%u_%u", c, cores - 1));
  uint32_t tmp = 0;
  while (layer.size() > 1) {
    std::vector<std::string> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      std::string name = strfmt("sx%u", tmp++);
      s += strfmt("    node %s = xor(%s, %s)\n", name.c_str(), layer[i].c_str(),
                  layer[i + 1].c_str());
      next.push_back(name);
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  s += strfmt("    status <= %s\n", layer.empty() ? "UInt<16>(0)" : layer[0].c_str());

  // halted: every core halted. pc/instret report core 0.
  std::string halted = "cpu0.halted";
  for (uint32_t k = 1; k < cores; k++)
    halted = strfmt("and(%s, cpu%u.halted)", halted.c_str(), k);
  s += strfmt("    halted <= %s\n", halted.c_str());
  s += "    pc <= cpu0.pc_out\n";
  s += "    instret <= cpu0.instret\n";
  return s;
}

}  // namespace

std::string tinySoCFirrtl(const SoCConfig& cfg) {
  if (cfg.numCores > 1 || cfg.nocWidth > 0) return scaledSoCTop(cfg);
  uint32_t aw = log2ceil(cfg.imemDepth);
  uint32_t addressable = std::min(cfg.numAccels, 15u);

  std::string s = strfmt("circuit %s :\n", cfg.name.c_str());
  s += cpuModule(cfg);
  s += accelModule(cfg);
  s += strfmt("  module %s :\n", cfg.name.c_str());
  s += "    input clock : Clock\n    input reset : UInt<1>\n";
  s += "    output halted : UInt<1>\n";
  s += "    output pc : UInt<16>\n";
  s += "    output instret : UInt<32>\n";
  s += "    output status : UInt<16>\n";

  s += "    inst cpu of TinyCPU\n";
  s += "    cpu.clock <= clock\n    cpu.reset <= reset\n";

  s += memBlock("imem", cfg.imemDepth);
  s += "    imem.r.addr <= cpu.imem_addr\n";
  s += "    imem.r.en <= UInt<1>(1)\n    imem.r.clk <= clock\n";
  s += strfmt("    imem.w.addr <= UInt<%u>(0)\n", aw);
  s += "    imem.w.en <= UInt<1>(0)\n    imem.w.clk <= clock\n";
  s += "    imem.w.data <= UInt<16>(0)\n    imem.w.mask <= UInt<1>(0)\n";
  s += "    cpu.imem_data <= imem.r.data\n";

  s += memBlock("dmem", cfg.dmemDepth);
  s += "    dmem.r.addr <= cpu.dmem_raddr\n";
  s += "    dmem.r.en <= UInt<1>(1)\n    dmem.r.clk <= clock\n";
  s += "    dmem.w.addr <= cpu.dmem_waddr\n";
  s += "    dmem.w.en <= cpu.dmem_wen\n    dmem.w.clk <= clock\n";
  s += "    dmem.w.data <= cpu.dmem_wdata\n    dmem.w.mask <= UInt<1>(1)\n";
  s += "    cpu.dmem_rdata <= dmem.r.data\n";

  s += "    node mmioIdx = bits(cpu.mmio_addr, 11, 8)\n";
  s += "    node mmioSel = bits(cpu.mmio_addr, 3, 0)\n";

  for (uint32_t k = 0; k < cfg.numAccels; k++) {
    s += strfmt("    inst acc%u of Accel\n", k);
    s += strfmt("    acc%u.clock <= clock\n    acc%u.reset <= reset\n", k, k);
    if (k < addressable) {
      s += strfmt(
          "    acc%u.start <= and(cpu.mmio_wen, and(eq(mmioIdx, UInt<4>(%u)), eq(mmioSel, "
          "UInt<4>(0))))\n",
          k, k);
    } else {
      // Idle mass: present in the netlist, never started (clock-gated block).
      s += strfmt("    acc%u.start <= UInt<1>(0)\n", k);
    }
    s += strfmt("    acc%u.operand <= cpu.mmio_wdata\n", k);
  }

  // Free-running cycle counter peripheral (MMIO index 15).
  s += "    reg cycles : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))\n";
  s += "    cycles <= tail(add(cycles, UInt<32>(1)), 1)\n";

  // MMIO read mux: busy/result of the addressable accels, or the counter.
  std::string busySel = "UInt<1>(0)", resSel = "UInt<16>(0)";
  for (uint32_t k = 0; k < addressable; k++) {
    busySel = strfmt("mux(eq(mmioIdx, UInt<4>(%u)), acc%u.busy, %s)", k, k, busySel.c_str());
    resSel = strfmt("mux(eq(mmioIdx, UInt<4>(%u)), acc%u.result, %s)", k, k, resSel.c_str());
  }
  s += strfmt("    node busySel = %s\n", busySel.c_str());
  s += strfmt("    node resSel = %s\n", resSel.c_str());
  s += "    node counterRead = bits(cycles, 15, 0)\n";
  s += "    cpu.mmio_rdata <= mux(eq(mmioIdx, UInt<4>(15)), counterRead, mux(eq(mmioSel, "
       "UInt<4>(1)), pad(busySel, 16), resSel))\n";

  // Status: XOR over every accelerator result (keeps the idle mass live).
  std::vector<std::string> layer;
  for (uint32_t k = 0; k < cfg.numAccels; k++) layer.push_back(strfmt("acc%u.result", k));
  uint32_t tmp = 0;
  while (layer.size() > 1) {
    std::vector<std::string> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      std::string name = strfmt("sx%u", tmp++);
      s += strfmt("    node %s = xor(%s, %s)\n", name.c_str(), layer[i].c_str(),
                  layer[i + 1].c_str());
      next.push_back(name);
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  s += strfmt("    status <= %s\n", layer.empty() ? "UInt<16>(0)" : layer[0].c_str());

  s += "    halted <= cpu.halted\n";
  s += "    pc <= cpu.pc_out\n";
  s += "    instret <= cpu.instret\n";
  return s;
}

SoCConfig socTiny() {
  SoCConfig cfg;
  cfg.name = "TinySoC";
  cfg.imemDepth = 256;
  cfg.dmemDepth = 1024;  // program data lives at 256..768+n*n
  cfg.memLatency = 2;
  cfg.numAccels = 2;
  cfg.accelLanes = 4;
  cfg.accelDuration = 8;
  return cfg;
}

SoCConfig socR16() {
  SoCConfig cfg;
  cfg.name = "r16";
  cfg.imemDepth = 1024;
  cfg.dmemDepth = 2048;
  cfg.memLatency = 3;
  cfg.numAccels = 53;
  cfg.accelLanes = 64;
  cfg.accelDuration = 48;
  return cfg;
}

SoCConfig socR18() {
  SoCConfig cfg;
  cfg.name = "r18";
  cfg.imemDepth = 1024;
  cfg.dmemDepth = 2048;
  cfg.memLatency = 3;
  cfg.numAccels = 105;
  cfg.accelLanes = 64;
  cfg.accelDuration = 48;
  return cfg;
}

SoCConfig socBoom() {
  SoCConfig cfg;
  cfg.name = "boom";
  cfg.imemDepth = 1024;
  cfg.dmemDepth = 2048;
  cfg.memLatency = 3;
  cfg.numAccels = 101;
  cfg.accelLanes = 128;
  cfg.accelDuration = 64;
  return cfg;
}

SoCConfig socScaled(uint32_t factor) {
  uint32_t f = std::max(1u, factor);
  SoCConfig cfg = socBoom();
  cfg.name = strfmt("scaled%u", f);
  cfg.numCores = std::min(8u, f);       // more cores
  cfg.nocWidth = 2 * cfg.numCores;      // wider NoC as the core count grows
  cfg.dmemDepth = 2048 * std::min(8u, f);  // bigger memories (dw stays < 15)
  cfg.numAccels = 101 * f;              // idle accel mass dominates node count
  return cfg;
}

}  // namespace essent::designs
