// Output-stationary 2D systolic array (weights stream from the left,
// activations from the top, each PE accumulates a_in * b_in and forwards
// both operands). Emitted as a PE module instantiated rows x cols times —
// a stress test for instance flattening and a classic regular structure
// for the partitioner (every PE is an identical sibling).
#pragma once

#include <cstdint>
#include <string>

namespace essent::designs {

struct SystolicConfig {
  uint32_t rows = 4;
  uint32_t cols = 4;
  uint32_t dataWidth = 16;  // accumulators are 2x wide
};

// Ports: a<i> per row, b<j> per column, en, clear, rowSel/colSel selecting
// the acc output, plus an XOR checksum over every accumulator.
std::string systolicFirrtl(const SystolicConfig& cfg = {});

}  // namespace essent::designs
