#include "designs/systolic.h"

#include <vector>

#include "firrtl/widths.h"
#include "support/strutil.h"

namespace essent::designs {

std::string systolicFirrtl(const SystolicConfig& cfg) {
  uint32_t dw = cfg.dataWidth;
  uint32_t aw = dw * 2;
  uint32_t rsW = firrtl::memAddrWidth(cfg.rows);
  uint32_t csW = firrtl::memAddrWidth(cfg.cols);

  std::string s = "circuit Systolic :\n";

  // --- PE module ---
  s += "  module PE :\n";
  s += "    input clock : Clock\n    input reset : UInt<1>\n";
  s += "    input en : UInt<1>\n    input clear : UInt<1>\n";
  s += strfmt("    input a_in : UInt<%u>\n    input b_in : UInt<%u>\n", dw, dw);
  s += strfmt("    output a_out : UInt<%u>\n    output b_out : UInt<%u>\n", dw, dw);
  s += strfmt("    output acc : UInt<%u>\n", aw);
  s += strfmt("    reg ar : UInt<%u>, clock with : (reset => (reset, UInt<%u>(0)))\n", dw, dw);
  s += strfmt("    reg br : UInt<%u>, clock with : (reset => (reset, UInt<%u>(0)))\n", dw, dw);
  s += strfmt("    reg accr : UInt<%u>, clock with : (reset => (reset, UInt<%u>(0)))\n", aw, aw);
  s += "    when en :\n";
  s += "      ar <= a_in\n      br <= b_in\n";
  s += "      accr <= tail(add(accr, mul(a_in, b_in)), 1)\n";
  s += "    when clear :\n";
  s += strfmt("      accr <= UInt<%u>(0)\n", aw);
  s += "    a_out <= ar\n    b_out <= br\n    acc <= accr\n";

  // --- top ---
  s += "  module Systolic :\n";
  s += "    input clock : Clock\n    input reset : UInt<1>\n";
  s += "    input en : UInt<1>\n    input clear : UInt<1>\n";
  for (uint32_t i = 0; i < cfg.rows; i++) s += strfmt("    input a%u : UInt<%u>\n", i, dw);
  for (uint32_t j = 0; j < cfg.cols; j++) s += strfmt("    input b%u : UInt<%u>\n", j, dw);
  s += strfmt("    input rowSel : UInt<%u>\n    input colSel : UInt<%u>\n", rsW, csW);
  s += strfmt("    output acc_sel : UInt<%u>\n", aw);
  s += strfmt("    output checksum : UInt<%u>\n", aw);

  for (uint32_t i = 0; i < cfg.rows; i++) {
    for (uint32_t j = 0; j < cfg.cols; j++) {
      s += strfmt("    inst pe_%u_%u of PE\n", i, j);
      s += strfmt("    pe_%u_%u.clock <= clock\n", i, j);
      s += strfmt("    pe_%u_%u.reset <= reset\n", i, j);
      s += strfmt("    pe_%u_%u.en <= en\n", i, j);
      s += strfmt("    pe_%u_%u.clear <= clear\n", i, j);
      if (j == 0) s += strfmt("    pe_%u_%u.a_in <= a%u\n", i, j, i);
      else s += strfmt("    pe_%u_%u.a_in <= pe_%u_%u.a_out\n", i, j, i, j - 1);
      if (i == 0) s += strfmt("    pe_%u_%u.b_in <= b%u\n", i, j, j);
      else s += strfmt("    pe_%u_%u.b_in <= pe_%u_%u.b_out\n", i, j, i - 1, j);
    }
  }

  // Selected-accumulator mux and checksum tree.
  std::string sel = strfmt("UInt<%u>(0)", aw);
  for (uint32_t i = 0; i < cfg.rows; i++)
    for (uint32_t j = 0; j < cfg.cols; j++)
      sel = strfmt("mux(and(eq(rowSel, UInt<%u>(%u)), eq(colSel, UInt<%u>(%u))), "
                   "pe_%u_%u.acc, %s)",
                   rsW, i, csW, j, i, j, sel.c_str());
  s += "    acc_sel <= " + sel + "\n";

  std::vector<std::string> layer;
  for (uint32_t i = 0; i < cfg.rows; i++)
    for (uint32_t j = 0; j < cfg.cols; j++) layer.push_back(strfmt("pe_%u_%u.acc", i, j));
  uint32_t tmp = 0;
  while (layer.size() > 1) {
    std::vector<std::string> next;
    for (size_t k = 0; k + 1 < layer.size(); k += 2) {
      std::string name = strfmt("cx%u", tmp++);
      s += strfmt("    node %s = xor(%s, %s)\n", name.c_str(), layer[k].c_str(),
                  layer[k + 1].c_str());
      next.push_back(name);
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  s += "    checksum <= " + layer[0] + "\n";
  return s;
}

}  // namespace essent::designs
