#include "support/strutil.h"

#include <cstdio>

namespace essent {

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::vector<std::string> splitString(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trimString(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string joinStrings(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); i++) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string sanitizeIdent(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_')
      out += c;
    else
      out += '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "s_" + out;
  return out;
}

}  // namespace essent
