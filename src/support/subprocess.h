// Shell subprocess helpers shared by the tool flow: POSIX-safe quoting and
// a fork/exec wrapper that decodes the wait status, so callers can
// distinguish "ran and exited N" from "killed by a signal" and never build
// commands by unquoted string concatenation.
//
// Commands run in their own process group under an optional wall-clock
// watchdog: when the deadline passes the whole group gets SIGTERM, then
// SIGKILL after a short grace period, and the result is flagged timedOut.
// This is what keeps a wedged compiler or a generated simulator with an
// infinite loop from hanging the tool flow (essentc --compile-run, the
// fuzz oracle's compiled path, and every shrink re-run).
#pragma once

#include <cstdint>
#include <string>

namespace essent::support {

// Wraps `s` in single quotes, escaping embedded single quotes ('\''), so it
// is safe to splice into a /bin/sh command line.
std::string shellQuote(const std::string& s);

struct RunOptions {
  // Wall-clock budget in milliseconds; 0 means no watchdog.
  int64_t timeoutMs = 0;
  // After SIGTERM, how long to wait before escalating to SIGKILL.
  int64_t killGraceMs = 2000;
};

struct ExecResult {
  bool ran = false;       // fork/exec itself succeeded
  bool exited = false;    // terminated normally (vs. signal)
  int exitCode = -1;      // WEXITSTATUS when exited, else -1
  int signal = 0;         // terminating signal when !exited
  bool timedOut = false;  // watchdog fired (process was killed)
  bool interrupted = false;  // killed because the TOOL received SIGINT/SIGTERM
  int64_t wallMs = 0;     // observed wall-clock runtime

  bool ok() const { return ran && exited && exitCode == 0 && !timedOut && !interrupted; }
  std::string describe() const;
};

// Runs `cmd` through /bin/sh -c and decodes the result.
ExecResult runShell(const std::string& cmd);

// Watchdog-governed variant; see RunOptions.
ExecResult runShell(const std::string& cmd, const RunOptions& opts);

// --- Interrupt relay -------------------------------------------------------
//
// A tool driving runShell (essentc --compile-run) must not orphan the
// compiler/simulator process group when the user hits Ctrl-C, and must
// still run its own RAII cleanup (TempDir removal). installSignalRelay()
// installs SIGINT/SIGTERM handlers that (a) forward the signal to the
// process group of the currently running runShell child — async-signal-safe:
// one kill() on a lock-free atomic pgid — and (b) latch the signal so the
// runShell poll loop escalates exactly like a watchdog timeout (SIGTERM,
// grace, SIGKILL) and returns with `interrupted` set. The caller then
// unwinds normally — destructors run — and exits 128+interruptSignal().
//
// Without the relay installed, behaviour is unchanged (default disposition:
// the tool dies, the child group may leak until it finishes).
void installSignalRelay();
// True once SIGINT/SIGTERM has been received via the relay.
bool interruptRequested();
// The latched signal number (0 when none).
int interruptSignal();

}  // namespace essent::support
