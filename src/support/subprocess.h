// Shell subprocess helpers shared by the tool flow: POSIX-safe quoting and
// a std::system wrapper that decodes the wait status, so callers can
// distinguish "ran and exited N" from "killed by a signal" and never build
// commands by unquoted string concatenation.
#pragma once

#include <string>

namespace essent::support {

// Wraps `s` in single quotes, escaping embedded single quotes ('\''), so it
// is safe to splice into a /bin/sh command line.
std::string shellQuote(const std::string& s);

struct ExecResult {
  bool ran = false;     // fork/exec itself succeeded
  bool exited = false;  // terminated normally (vs. signal)
  int exitCode = -1;    // WEXITSTATUS when exited, else -1
  int signal = 0;       // terminating signal when !exited

  bool ok() const { return ran && exited && exitCode == 0; }
  std::string describe() const;
};

// Runs `cmd` through std::system and decodes the result.
ExecResult runShell(const std::string& cmd);

}  // namespace essent::support
