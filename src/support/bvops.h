// FIRRTL primitive-operation semantics over BitVec, with the exact result
// width rules of the FIRRTL specification (e.g. add widens by one bit,
// mul produces wa+wb bits). These are the reference ("slow path")
// implementations; the simulation engines use an inlined uint64_t fast path
// when all operand and result widths fit in 64 bits, and fall back to these
// for wider values. Constant propagation also evaluates through here, so a
// single set of semantics backs the whole tool flow.
#pragma once

#include "support/bitvec.h"

namespace essent::bvops {

// Width rules, usable at IR-build time without values.
uint32_t addWidth(uint32_t wa, uint32_t wb);
uint32_t subWidth(uint32_t wa, uint32_t wb);
uint32_t mulWidth(uint32_t wa, uint32_t wb);
uint32_t divWidth(uint32_t wa, uint32_t wb, bool isSigned);
uint32_t remWidth(uint32_t wa, uint32_t wb);
uint32_t padWidth(uint32_t wa, uint32_t n);
uint32_t shlWidth(uint32_t wa, uint32_t n);
uint32_t shrWidth(uint32_t wa, uint32_t n);
uint32_t dshlWidth(uint32_t wa, uint32_t wb);
uint32_t cvtWidth(uint32_t wa, bool isSigned);
uint32_t negWidth(uint32_t wa);
uint32_t bitwiseWidth(uint32_t wa, uint32_t wb);
uint32_t catWidth(uint32_t wa, uint32_t wb);
uint32_t bitsWidth(uint32_t hi, uint32_t lo);
uint32_t headWidth(uint32_t n);
uint32_t tailWidth(uint32_t wa, uint32_t n);

// Returns `a` reinterpreted at `width` bits: zero-extended when !isSigned,
// sign-extended when isSigned, truncated when narrower.
BitVec extend(const BitVec& a, bool isSigned, uint32_t width);

BitVec add(const BitVec& a, const BitVec& b, bool isSigned);
BitVec sub(const BitVec& a, const BitVec& b, bool isSigned);
BitVec mul(const BitVec& a, const BitVec& b, bool isSigned);
// Division truncates toward zero; x/0 is defined here as 0 (FIRRTL leaves it
// undefined; a fixed value keeps all engines bit-identical).
BitVec div(const BitVec& a, const BitVec& b, bool isSigned);
// Remainder sign follows the dividend; x%0 is defined here as x truncated to
// the result width.
BitVec rem(const BitVec& a, const BitVec& b, bool isSigned);

BitVec lt(const BitVec& a, const BitVec& b, bool isSigned);
BitVec leq(const BitVec& a, const BitVec& b, bool isSigned);
BitVec gt(const BitVec& a, const BitVec& b, bool isSigned);
BitVec geq(const BitVec& a, const BitVec& b, bool isSigned);
BitVec eq(const BitVec& a, const BitVec& b, bool isSigned);
BitVec neq(const BitVec& a, const BitVec& b, bool isSigned);

BitVec pad(const BitVec& a, bool isSigned, uint32_t n);
BitVec shl(const BitVec& a, uint32_t n);
BitVec shr(const BitVec& a, bool isSigned, uint32_t n);
BitVec dshl(const BitVec& a, const BitVec& b, uint32_t shamtWidth);
BitVec dshr(const BitVec& a, bool isSigned, const BitVec& b);
BitVec cvt(const BitVec& a, bool isSigned);
BitVec neg(const BitVec& a, bool isSigned);
BitVec bnot(const BitVec& a);
BitVec band(const BitVec& a, const BitVec& b, bool isSigned);
BitVec bor(const BitVec& a, const BitVec& b, bool isSigned);
BitVec bxor(const BitVec& a, const BitVec& b, bool isSigned);
BitVec andr(const BitVec& a);
BitVec orr(const BitVec& a);
BitVec xorr(const BitVec& a);
BitVec cat(const BitVec& a, const BitVec& b);
BitVec bits(const BitVec& a, uint32_t hi, uint32_t lo);
BitVec head(const BitVec& a, uint32_t n);
BitVec tail(const BitVec& a, uint32_t n);
BitVec mux(const BitVec& sel, const BitVec& tval, const BitVec& fval,
           bool isSigned);

// Unsigned long division helper shared by div/rem (restoring division on
// word arrays). quotient/remainder get the widths of a.
void udivmod(const BitVec& a, const BitVec& b, BitVec* quotient,
             BitVec* remainder);

}  // namespace essent::bvops
