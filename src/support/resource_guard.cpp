#include "support/resource_guard.h"

#include <chrono>

#include "support/strutil.h"

namespace essent::support {

namespace {

int64_t nowMs() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(steady_clock::now().time_since_epoch()).count();
}

}  // namespace

ResourceGuard::ResourceGuard(ResourceLimits limits) : limits_(limits), startMs_(nowMs()) {}

void ResourceGuard::checkIrOps(uint64_t ops) const {
  if (limits_.maxIrOps && ops > limits_.maxIrOps)
    throw ResourceExhausted(
        "E0501", strfmt("design too large: %llu IR operations (limit %llu)",
                        static_cast<unsigned long long>(ops),
                        static_cast<unsigned long long>(limits_.maxIrOps)));
}

void ResourceGuard::checkSimMem(uint64_t bytes) const {
  if (limits_.maxSimMemBytes && bytes > limits_.maxSimMemBytes)
    throw ResourceExhausted(
        "E0502", strfmt("simulation state too large: %llu bytes (limit %llu)",
                        static_cast<unsigned long long>(bytes),
                        static_cast<unsigned long long>(limits_.maxSimMemBytes)));
}

void ResourceGuard::checkCycles(uint64_t cycles) const {
  if (limits_.maxCycles && cycles > limits_.maxCycles)
    throw ResourceExhausted(
        "E0503", strfmt("cycle budget exhausted: %llu cycles (limit %llu)",
                        static_cast<unsigned long long>(cycles),
                        static_cast<unsigned long long>(limits_.maxCycles)));
}

void ResourceGuard::checkDeadline() const {
  if (!limits_.wallDeadlineMs) return;
  int64_t elapsed = nowMs() - startMs_;
  if (elapsed > limits_.wallDeadlineMs)
    throw ResourceExhausted(
        "E0504", strfmt("wall-clock deadline exceeded: %lld ms (limit %lld)",
                        static_cast<long long>(elapsed),
                        static_cast<long long>(limits_.wallDeadlineMs)));
}

}  // namespace essent::support
