#include "support/threadpool.h"

#include <cerrno>
#include <cstdlib>
#include <string>
#include <system_error>

#include "obs/trace.h"

namespace essent::support {

namespace {

// 0 = hook disabled; N > 0 = the Nth+1 spawn and beyond fail. Plain int is
// fine: tests set it before constructing a pool on the same thread.
unsigned g_failSpawnsAfter = 0;
bool g_failSpawnsArmed = false;

}  // namespace

void ThreadPool::failSpawnsAfterForTest(unsigned spawned) {
  g_failSpawnsAfter = spawned;
  g_failSpawnsArmed = true;
}

namespace {

// Spin-then-yield budget while parked between forks. The spin phase covers
// back-to-back waves (the common case mid-cycle); the yield phase covers
// the sequential gap between cycles; the condition variable catches
// genuinely idle pools and oversubscribed machines. Spinning only makes
// sense when the thread we wait on can run concurrently — on a single
// hardware context it just burns the timeslice that thread needs, so the
// spin budget collapses to zero there (yield immediately).
inline int spinBudget() {
  static const int budget = std::thread::hardware_concurrency() > 1 ? 4096 : 0;
  return budget;
}
constexpr int kYieldIters = 64;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) : numThreads_(threads == 0 ? 1 : threads) {
  workers_.reserve(numThreads_ - 1);
  for (unsigned lane = 1; lane < numThreads_; lane++) {
    try {
      if (g_failSpawnsArmed && workers_.size() >= g_failSpawnsAfter)
        throw std::system_error(EAGAIN, std::generic_category(), "injected spawn failure");
      workers_.emplace_back([this, lane] { workerLoop(lane); });
    } catch (const std::system_error&) {
      // OS thread exhaustion. Run degraded with the lanes that did spawn
      // (possibly just the caller) rather than crashing; the engine factory
      // turns the reduced lane count into a warning diagnostic.
      numThreads_ = static_cast<unsigned>(workers_.size()) + 1;
      break;
    }
  }
  g_failSpawnsArmed = false;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run(const std::function<void(unsigned)>& fn) {
  // Attribution contract: each lane's fn execution is one "pool.work" Busy
  // span, the caller's join spin is a "pool.join" Barrier span, and a
  // worker's park between forks is a "pool.wait" Barrier span — so every
  // categorized interval on a pool thread is disjoint. Engine spans emitted
  // inside fn stay TraceCat::None (see inPooledWork).
  obs::TraceSession* s = obs::TraceSession::current();
  if (s && !s->wants(obs::TraceDetail::Wave)) s = nullptr;

  if (numThreads_ == 1) {
    if (s) {
      uint64_t t0 = s->nowNs();
      obs::trace_detail::setInPooledWork(true);
      fn(0);
      obs::trace_detail::setInPooledWork(false);
      s->complete("pool.work", t0, obs::TraceCat::Busy, "lane", 0);
    } else {
      fn(0);
    }
    return;
  }
  fn_ = &fn;
  pending_.store(numThreads_ - 1, std::memory_order_relaxed);
  {
    // The epoch bump happens under the mutex so a worker that is between
    // its last spin check and cv_.wait() cannot miss it: either its wait
    // predicate re-reads the new epoch, or its sleepers_ increment (made
    // under the same mutex) is visible to the notify decision below.
    std::lock_guard<std::mutex> lk(m_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  if (sleepers_.load(std::memory_order_acquire) > 0) cv_.notify_all();

  if (s) {
    uint64_t t0 = s->nowNs();
    obs::trace_detail::setInPooledWork(true);
    fn(0);
    obs::trace_detail::setInPooledWork(false);
    s->complete("pool.work", t0, obs::TraceCat::Busy, "lane", 0);
  } else {
    fn(0);
  }

  // Join: spin-then-yield; the join gap is bounded by one wave's work.
  uint64_t joinT0 = s ? s->nowNs() : 0;
  int spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (++spins >= spinBudget()) {
      std::this_thread::yield();
      spins = 0;
    }
  }
  if (s) s->complete("pool.join", joinT0, obs::TraceCat::Barrier);
  fn_ = nullptr;
}

void ThreadPool::stepBarrier(uint64_t target) {
  // Counting barrier: each arrival is an acq_rel RMW on barArrived_, and a
  // waiter leaves once the count covers every lane's arrival for this step.
  // Reading a value that includes all numThreads_ increments synchronizes
  // with each of them (release sequence through the RMW chain), so plain
  // writes made before any lane's arrival are visible after the wait.
  barArrived_.fetch_add(1, std::memory_order_acq_rel);
  int spins = 0;
  while (barArrived_.load(std::memory_order_acquire) < target) {
    if (++spins >= spinBudget()) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

void ThreadPool::runStepLoop(unsigned lane) {
  // Per-lane attribution: one "pool.step" Busy span per super-step, one
  // "pool.barrier" Barrier span per inter-step wait — disjoint categorized
  // intervals, mirroring run()'s pool.work/pool.join contract.
  obs::TraceSession* s = obs::TraceSession::current();
  if (s && !s->wants(obs::TraceDetail::Wave)) s = nullptr;
  const size_t nSteps = numSteps_;
  for (size_t step = 0; step < nSteps; step++) {
    if (s) {
      uint64_t t0 = s->nowNs();
      obs::trace_detail::setInPooledWork(true);
      (*stepFn_)(lane, step);
      obs::trace_detail::setInPooledWork(false);
      s->complete("pool.step", t0, obs::TraceCat::Busy, "step", step);
    } else {
      (*stepFn_)(lane, step);
    }
    if (step + 1 < nSteps) {
      uint64_t barT0 = s ? s->nowNs() : 0;
      stepBarrier(static_cast<uint64_t>(step + 1) * numThreads_);
      if (s) s->complete("pool.barrier", barT0, obs::TraceCat::Barrier);
    }
  }
}

void ThreadPool::runSteps(size_t numSteps, const std::function<void(unsigned, size_t)>& fn) {
  if (numSteps == 0) return;
  if (numThreads_ == 1) {
    stepFn_ = &fn;
    numSteps_ = numSteps;
    runStepLoop(0);
    stepFn_ = nullptr;
    return;
  }
  stepFn_ = &fn;
  numSteps_ = numSteps;
  barArrived_.store(0, std::memory_order_relaxed);
  pending_.store(numThreads_ - 1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(m_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  if (sleepers_.load(std::memory_order_acquire) > 0) cv_.notify_all();

  runStepLoop(0);

  obs::TraceSession* s = obs::TraceSession::current();
  if (s && !s->wants(obs::TraceDetail::Wave)) s = nullptr;
  uint64_t joinT0 = s ? s->nowNs() : 0;
  int spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (++spins >= spinBudget()) {
      std::this_thread::yield();
      spins = 0;
    }
  }
  if (s) s->complete("pool.join", joinT0, obs::TraceCat::Barrier);
  stepFn_ = nullptr;
}

void ThreadPool::workerLoop(unsigned lane) {
  uint64_t seen = 0;
  for (;;) {
    // Park-span begin: capture the session only if one is recording. The
    // span is completed at the next fork only if the SAME session is still
    // current — a session swapped out while we were parked is never touched
    // again (its buffers may be gone).
    obs::TraceSession* parkS = obs::TraceSession::current();
    if (parkS && !parkS->wants(obs::TraceDetail::Wave)) parkS = nullptr;
    uint64_t parkT0 = parkS ? parkS->nowNs() : 0;

    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      spins++;
      if (spins < spinBudget()) continue;
      if (spins < spinBudget() + kYieldIters) {
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lk(m_);
      sleepers_.fetch_add(1, std::memory_order_release);
      cv_.wait(lk, [&] { return epoch_.load(std::memory_order_acquire) != seen; });
      sleepers_.fetch_sub(1, std::memory_order_release);
      spins = 0;
    }
    seen = epoch_.load(std::memory_order_acquire);
    // stop_ is stored before the final epoch bump; the acquire load of
    // epoch_ above orders this load after it.
    if (stop_.load(std::memory_order_acquire)) return;

    obs::TraceSession* s = obs::TraceSession::current();
    if (s && !s->wants(obs::TraceDetail::Wave)) s = nullptr;
    if (s) {
      if (s == parkS) s->complete("pool.wait", parkT0, obs::TraceCat::Barrier);
      s->nameThread("worker-" + std::to_string(lane));
    }
    // stepFn_/fn_ are published by the epoch bump observed above; exactly
    // one of them is set per fork.
    if (stepFn_ != nullptr) {
      runStepLoop(lane);
    } else if (s) {
      uint64_t t0 = s->nowNs();
      obs::trace_detail::setInPooledWork(true);
      (*fn_)(lane);
      obs::trace_detail::setInPooledWork(false);
      // Record before the pending_ release-decrement so the write is inside
      // the window the caller's join acquire synchronizes with.
      s->complete("pool.work", t0, obs::TraceCat::Busy, "lane", lane);
    } else {
      (*fn_)(lane);
    }
    pending_.fetch_sub(1, std::memory_order_release);
  }
}

unsigned ThreadPool::defaultThreadCount() {
  if (const char* env = std::getenv("ESSENT_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace essent::support
