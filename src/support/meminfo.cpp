#include "support/meminfo.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <cstdio>
#include <cstring>

namespace essent::support {

uint64_t peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<uint64_t>(ru.ru_maxrss);  // bytes
#else
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;  // kilobytes
#endif
  }
#endif
  // Fallback: VmHWM from /proc/self/status (Linux without getrusage is
  // unlikely, but the parse is cheap and keeps the function total).
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    uint64_t kb = 0;
    while (std::fgets(line, sizeof line, f)) {
      if (std::strncmp(line, "VmHWM:", 6) == 0 && std::sscanf(line + 6, "%llu",
              reinterpret_cast<unsigned long long*>(&kb)) == 1)
        break;
    }
    std::fclose(f);
    return kb * 1024;
  }
  return 0;
}

}  // namespace essent::support
