// Stream sockets + length-prefixed framing for the simulation service.
//
// Two layers, both deliberately tiny:
//  * Socket — RAII fd wrapper plus unix/TCP listen/connect helpers. Every
//    send uses MSG_NOSIGNAL so a peer that disappears mid-write surfaces as
//    an error return, never a SIGPIPE kill.
//  * Frames — the essentd wire unit: a 4-byte big-endian payload length
//    followed by that many bytes of UTF-8 JSON. readFrame() decodes one
//    frame under a byte ceiling and a wall-clock timeout and reports
//    *structured* failure reasons (truncated, oversized, timed out) so the
//    daemon can answer malformed traffic with an E06xx error instead of
//    dying or hanging on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace essent::support {

// Owning socket fd. Move-only; close() is idempotent.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int release();  // caller takes ownership
  void close();
  // Half-close the write side (the peer sees EOF after draining).
  void shutdownWrite();

 private:
  int fd_ = -1;
};

// Listener construction. All throw std::runtime_error with a
// strerror-carrying message on failure.
// Replaces a STALE socket at `path`; refuses (throws) if the path is a
// non-socket or a live daemon still accepts connections on it.
Socket listenUnix(const std::string& path, int backlog = 64);
Socket listenTcp(uint16_t port, int backlog = 64);             // binds 127.0.0.1; port 0 = ephemeral
uint16_t boundPort(const Socket& s);  // resolves the port a 0-bind received

// Client connection; throws std::runtime_error on failure.
Socket connectUnix(const std::string& path);
Socket connectTcp(const std::string& host, uint16_t port);

// Accepts one connection; returns an invalid Socket on transient failure
// (EINTR, aborted handshake) — callers poll and retry.
Socket acceptOn(const Socket& listener);

// Frame transport outcome. Ok is the only success; every other value maps
// onto a specific wire diagnostic in serve/protocol.h.
enum class FrameStatus {
  Ok,
  Eof,        // clean close before the first length byte
  Truncated,  // stream ended inside the length prefix or payload
  Oversized,  // length prefix exceeds maxBytes
  TimedOut,   // deadline expired mid-frame
  IoError,    // recv/send failure (peer reset, ...)
};

const char* frameStatusName(FrameStatus s);

// Reads one length-prefixed frame into `payload`. `timeoutMs` bounds the
// whole frame (0 = wait forever); `maxBytes` bounds the declared payload
// size. On Oversized the declared length is left in *declaredLen (when
// non-null) and the payload is NOT drained — the stream is unusable and the
// caller should respond-and-close.
FrameStatus readFrame(int fd, std::string& payload, size_t maxBytes, int64_t timeoutMs,
                      uint64_t* declaredLen = nullptr);

// Writes one frame (length prefix + payload). Returns false on any short
// write or I/O error (the connection is then unusable).
bool writeFrame(int fd, const std::string& payload);

// Raw helpers used by writeFrame and the fault-injection paths: send/recv
// exactly n bytes with an optional wall-clock deadline.
bool sendAll(int fd, const void* data, size_t n);
FrameStatus recvAll(int fd, void* data, size_t n, int64_t deadlineMs);

}  // namespace essent::support
