// Arbitrary-width bit vector support for the ESSENT reproduction.
//
// A BitVec is a plain container of `width` bits stored in little-endian
// 64-bit words, always kept canonical (bits at positions >= width are zero).
// Signedness is not part of the value: FIRRTL primop semantics interpret the
// same bits as unsigned or two's-complement signed, so the primop helpers in
// bvops.h take explicit signedness flags instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace essent {

class BitVec {
 public:
  // Zero-width vector: FIRRTL permits width-0 values; they always read as 0.
  BitVec() : width_(0), words_(1, 0) {}
  explicit BitVec(uint32_t width) : width_(width), words_(numWords(width), 0) {}

  static BitVec fromU64(uint32_t width, uint64_t value);
  // Wraps `value` into `width` bits (two's complement).
  static BitVec fromI64(uint32_t width, int64_t value);
  // Parses an unsigned hex string (no prefix). Throws std::invalid_argument
  // on bad characters.
  static BitVec fromHexString(uint32_t width, const std::string& hex);
  // Parses an optionally negative decimal string, wrapping into `width` bits.
  static BitVec fromDecString(uint32_t width, const std::string& dec);
  static BitVec allOnes(uint32_t width);

  uint32_t width() const { return width_; }
  size_t wordCount() const { return words_.size(); }
  uint64_t word(size_t i) const { return i < words_.size() ? words_[i] : 0; }
  const uint64_t* data() const { return words_.data(); }
  uint64_t* data() { return words_.data(); }

  bool bit(uint32_t pos) const;
  void setBit(uint32_t pos, bool value);

  bool isZero() const;
  // True iff every one of the `width` bits is set (width 0 -> true).
  bool isAllOnes() const;
  // Most significant bit (the sign bit under signed interpretation).
  bool signBit() const { return width_ > 0 && bit(width_ - 1); }

  // Low 64 bits of the value.
  uint64_t toU64() const { return words_[0]; }
  // Signed interpretation of the low bits; only meaningful for width <= 64.
  int64_t toI64() const;

  // Number of significant bits under unsigned interpretation (0 for zero).
  uint32_t bitLength() const;

  // Re-canonicalizes after direct word manipulation via data().
  void maskToWidth();

  std::string toHexString() const;    // lowercase, no prefix, no leading zeros
  std::string toBinString() const;    // exactly `width` characters
  std::string toDecString() const;    // unsigned decimal
  std::string toSignedDecString() const;  // two's complement decimal

  bool operator==(const BitVec& other) const;
  bool operator!=(const BitVec& other) const { return !(*this == other); }

  // Unsigned / signed three-way comparison: -1, 0, or +1. Widths may differ;
  // the narrower operand is implicitly extended.
  static int ucmp(const BitVec& a, const BitVec& b);
  static int scmp(const BitVec& a, const BitVec& b);

  static size_t numWords(uint32_t width) {
    return width == 0 ? 1 : (width + 63) / 64;
  }
  // Mask covering the valid bits of the top word of a `width`-bit value.
  static uint64_t topWordMask(uint32_t width) {
    if (width == 0) return 0;
    uint32_t rem = width % 64;
    return rem == 0 ? ~uint64_t{0} : ((uint64_t{1} << rem) - 1);
  }

 private:
  uint32_t width_;
  std::vector<uint64_t> words_;
};

}  // namespace essent
