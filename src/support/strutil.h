// Small string helpers shared across the tool flow.
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace essent {

// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string> splitString(const std::string& s, char sep);
std::string trimString(const std::string& s);
std::string joinStrings(const std::vector<std::string>& parts, const std::string& sep);
bool startsWith(const std::string& s, const std::string& prefix);
bool endsWith(const std::string& s, const std::string& suffix);

// Legal C identifier derived from a (possibly dotted) signal name.
std::string sanitizeIdent(const std::string& name);

}  // namespace essent
