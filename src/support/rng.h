// Deterministic pseudo-random number generation (SplitMix64) so tests,
// property sweeps, and workload generators are reproducible across runs and
// platforms without depending on libstdc++'s distribution implementations.
#pragma once

#include <cstdint>

namespace essent {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound 0 returns 0.
  uint64_t nextBelow(uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t nextRange(uint64_t lo, uint64_t hi) { return lo + nextBelow(hi - lo + 1); }

  bool nextBool() { return next() & 1; }

  // True with probability p (clamped to [0,1]).
  bool nextChance(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

 private:
  uint64_t state_;
};

}  // namespace essent
