// Persistent fork/join thread pool tuned for the activity engine's short
// level-synchronous waves.
//
// One pool is created per parallel engine and reused for every wave of
// every cycle: workers park on an epoch counter between forks, spinning
// briefly, then yielding, then falling back to a condition variable — so a
// microsecond-scale wave never pays a futex round trip, while an idle pool
// does not burn a core. run() is the only entry point: it executes fn(lane)
// on every lane (lane 0 on the calling thread, which always participates)
// and returns once all lanes have finished; the epoch handoff gives
// release/acquire ordering both into and out of the fork, so plain memory
// written before run() is visible to workers, and worker writes are visible
// to the caller after run() returns.
//
// Not reentrant: run() must not be called from inside a pool task, and the
// task must not throw (workers run with exceptions unguarded; a throwing
// task terminates).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace essent::support {

class ThreadPool {
 public:
  // `threads` is the total lane count including the caller; 0 is clamped
  // to 1 (no worker threads are spawned, run() degenerates to fn(0)).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned numThreads() const { return numThreads_; }

  // Fork/join: every lane runs fn(lane); returns after all lanes complete.
  void run(const std::function<void(unsigned)>& fn);

  // Bulk-synchronous fork/join: ONE epoch handoff under which every lane
  // runs fn(lane, s) for s = 0..numSteps-1 with a counting barrier between
  // consecutive steps — the engine's whole per-cycle sweep costs one fork,
  // numSteps-1 in-fork barriers, and one join, instead of numSteps forks.
  // The barrier gives the same ordering as run()'s epoch handoff: plain
  // writes made in step s by any lane are visible to every lane in step
  // s+1. Same reentrancy/exception rules as run(). numSteps == 0 returns
  // immediately.
  void runSteps(size_t numSteps, const std::function<void(unsigned, size_t)>& fn);

  // ESSENT_THREADS when set to a positive integer, else the hardware
  // concurrency (minimum 1).
  static unsigned defaultThreadCount();

  // Test hook: when nonzero, worker spawns fail (throwing std::system_error
  // as an exhausted OS would) once `spawned` workers exist. Used to exercise
  // the graceful-degradation path without actually exhausting the machine.
  static void failSpawnsAfterForTest(unsigned spawned);

 private:
  void workerLoop(unsigned lane);
  void runStepLoop(unsigned lane);
  void stepBarrier(uint64_t target);

  unsigned numThreads_;
  std::vector<std::thread> workers_;
  const std::function<void(unsigned)>* fn_ = nullptr;
  // runSteps state, published by the epoch handoff like fn_.
  const std::function<void(unsigned, size_t)>* stepFn_ = nullptr;
  size_t numSteps_ = 0;
  // Monotonic within one fork: lane arrivals at the inter-step barrier.
  // Reset by the caller before the epoch bump (workers are parked then),
  // so there is no sense-reversal generation to race on: after step s a
  // lane waits for the count to reach (s+1) * numThreads_.
  std::atomic<uint64_t> barArrived_{0};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> pending_{0};
  std::atomic<uint32_t> sleepers_{0};
  std::atomic<bool> stop_{false};  // set (release) before the final epoch bump
  std::mutex m_;
  std::condition_variable cv_;
};

}  // namespace essent::support
