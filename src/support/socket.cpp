#include "support/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace essent::support {

namespace {

int64_t nowMs() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(steady_clock::now().time_since_epoch()).count();
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un unixAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Socket listenUnix(const std::string& path, int backlog) {
  // Only a STALE socket may be replaced. A regular file (or anything else)
  // at the path is a caller mistake — deleting it would destroy data — and
  // a unix socket that still accepts connections belongs to a live daemon
  // whose listener must not be silently stolen.
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode))
      throw std::runtime_error("listenUnix: refusing to replace non-socket path: " + path);
    sockaddr_un probeAddr = unixAddr(path);
    int probeFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probeFd >= 0) {
      Socket probe(probeFd);
      if (::connect(probeFd, reinterpret_cast<sockaddr*>(&probeAddr), sizeof(probeAddr)) == 0)
        throw std::runtime_error("listenUnix: another daemon is already serving " + path);
    }
    ::unlink(path.c_str());  // stale socket from a dead process
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket(AF_UNIX)");
  Socket s(fd);
  sockaddr_un addr = unixAddr(path);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    fail("bind(" + path + ")");
  if (::listen(fd, backlog) < 0) fail("listen(" + path + ")");
  return s;
}

Socket listenTcp(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket(AF_INET)");
  Socket s(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    fail("bind(tcp:" + std::to_string(port) + ")");
  if (::listen(fd, backlog) < 0) fail("listen(tcp)");
  return s;
}

uint16_t boundPort(const Socket& s) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    fail("getsockname");
  return ntohs(addr.sin_port);
}

Socket connectUnix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket(AF_UNIX)");
  Socket s(fd);
  sockaddr_un addr = unixAddr(path);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    fail("connect(" + path + ")");
  return s;
}

Socket connectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket(AF_INET)");
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("connectTcp: not an IPv4 address: " + host);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    fail("connect(" + host + ":" + std::to_string(port) + ")");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

Socket acceptOn(const Socket& listener) {
  int fd = ::accept(listener.fd(), nullptr, nullptr);
  return Socket(fd);  // invalid on failure; callers poll and retry
}

const char* frameStatusName(FrameStatus s) {
  switch (s) {
    case FrameStatus::Ok: return "ok";
    case FrameStatus::Eof: return "eof";
    case FrameStatus::Truncated: return "truncated";
    case FrameStatus::Oversized: return "oversized";
    case FrameStatus::TimedOut: return "timed-out";
    case FrameStatus::IoError: return "io-error";
  }
  return "?";
}

// Receives exactly n bytes; `deadlineMs` is an absolute steady-clock
// timestamp (0 = no deadline). Distinguishes a clean close at byte 0
// (Eof) from one mid-buffer (Truncated) so framing errors are precise.
FrameStatus recvAll(int fd, void* data, size_t n, int64_t deadlineMs) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < n) {
    if (deadlineMs > 0) {
      int64_t remain = deadlineMs - nowMs();
      if (remain <= 0) return FrameStatus::TimedOut;
      pollfd pfd{fd, POLLIN, 0};
      int pr = ::poll(&pfd, 1, static_cast<int>(remain > INT32_MAX ? INT32_MAX : remain));
      if (pr == 0) return FrameStatus::TimedOut;
      if (pr < 0) {
        if (errno == EINTR) continue;
        return FrameStatus::IoError;
      }
    }
    ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r == 0) return got == 0 ? FrameStatus::Eof : FrameStatus::Truncated;
    if (r < 0) {
      if (errno == EINTR) continue;
      return FrameStatus::IoError;
    }
    got += static_cast<size_t>(r);
  }
  return FrameStatus::Ok;
}

bool sendAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

FrameStatus readFrame(int fd, std::string& payload, size_t maxBytes, int64_t timeoutMs,
                      uint64_t* declaredLen) {
  int64_t deadline = timeoutMs > 0 ? nowMs() + timeoutMs : 0;
  unsigned char hdr[4];
  FrameStatus st = recvAll(fd, hdr, sizeof(hdr), deadline);
  if (st != FrameStatus::Ok) return st;
  uint64_t len = (static_cast<uint64_t>(hdr[0]) << 24) | (static_cast<uint64_t>(hdr[1]) << 16) |
                 (static_cast<uint64_t>(hdr[2]) << 8) | static_cast<uint64_t>(hdr[3]);
  if (declaredLen) *declaredLen = len;
  if (len > maxBytes) return FrameStatus::Oversized;
  payload.resize(static_cast<size_t>(len));
  if (len == 0) return FrameStatus::Ok;
  st = recvAll(fd, payload.data(), payload.size(), deadline);
  // A close inside the payload is a truncated frame, whatever recv said.
  return st == FrameStatus::Eof ? FrameStatus::Truncated : st;
}

bool writeFrame(int fd, const std::string& payload) {
  if (payload.size() > UINT32_MAX) return false;
  uint32_t len = static_cast<uint32_t>(payload.size());
  unsigned char hdr[4] = {static_cast<unsigned char>(len >> 24),
                          static_cast<unsigned char>(len >> 16),
                          static_cast<unsigned char>(len >> 8),
                          static_cast<unsigned char>(len)};
  if (!sendAll(fd, hdr, sizeof(hdr))) return false;
  return payload.empty() || sendAll(fd, payload.data(), payload.size());
}

}  // namespace essent::support
