// RAII temporary directory (mkdtemp wrapper). The directory and everything
// inside it are removed on destruction unless keep() is called — used by the
// compile-and-run paths (essentc --compile-run, the fuzzer's codegen oracle)
// so host-compilation scratch space is cleaned up on success *and* on every
// early-error path.
#pragma once

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>

namespace essent::support {

class TempDir {
 public:
  // `nameTemplate` must end in "XXXXXX" (mkdtemp contract); it is created
  // under /tmp (or $TMPDIR when set).
  explicit TempDir(const std::string& nameTemplate = "essent_XXXXXX") {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base && *base ? base : "/tmp") + "/" + nameTemplate;
    std::string buf = tmpl;
    if (!mkdtemp(buf.data()))
      throw std::runtime_error("mkdtemp failed for template " + tmpl + ": " +
                               std::strerror(errno));
    path_ = buf;
  }

  ~TempDir() {
    if (keep_ || path_.empty()) return;
    std::error_code ec;  // best-effort: never throw from a destructor
    std::filesystem::remove_all(path_, ec);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

  // Disarms cleanup (e.g. to preserve a failing generated source for
  // debugging). Returns the path for convenience.
  const std::string& keep() {
    keep_ = true;
    return path_;
  }

 private:
  std::string path_;
  bool keep_ = false;
};

}  // namespace essent::support
