#include "support/bitvec.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "support/bvops.h"

namespace essent {

BitVec BitVec::fromU64(uint32_t width, uint64_t value) {
  BitVec r(width);
  r.words_[0] = value;
  r.maskToWidth();
  return r;
}

BitVec BitVec::fromI64(uint32_t width, int64_t value) {
  BitVec r(width);
  uint64_t bits = static_cast<uint64_t>(value);
  for (size_t i = 0; i < r.words_.size(); i++) {
    r.words_[i] = bits;
    bits = value < 0 ? ~uint64_t{0} : 0;
  }
  r.maskToWidth();
  return r;
}

BitVec BitVec::fromHexString(uint32_t width, const std::string& hex) {
  BitVec r(width);
  uint32_t pos = 0;  // bit position for the next nibble
  for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
    char c = *it;
    if (c == '_') continue;
    uint64_t nib;
    if (c >= '0' && c <= '9') nib = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') nib = static_cast<uint64_t>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') nib = static_cast<uint64_t>(c - 'A') + 10;
    else throw std::invalid_argument("bad hex digit in: " + hex);
    if (pos < width + 3) {
      size_t w = pos / 64;
      uint32_t off = pos % 64;
      if (w < r.words_.size()) r.words_[w] |= nib << off;
      if (off > 60 && w + 1 < r.words_.size()) r.words_[w + 1] |= nib >> (64 - off);
    }
    pos += 4;
  }
  r.maskToWidth();
  return r;
}

BitVec BitVec::fromDecString(uint32_t width, const std::string& dec) {
  bool negate = false;
  size_t start = 0;
  if (!dec.empty() && (dec[0] == '-' || dec[0] == '+')) {
    negate = dec[0] == '-';
    start = 1;
  }
  BitVec r(width);
  BitVec ten = BitVec::fromU64(width == 0 ? 1 : width, 10);
  for (size_t i = start; i < dec.size(); i++) {
    char c = dec[i];
    if (c == '_') continue;
    if (c < '0' || c > '9') throw std::invalid_argument("bad decimal digit in: " + dec);
    // r = r * 10 + digit, all modulo 2^width.
    BitVec prod = bvops::mul(r, ten, false);
    BitVec digit = BitVec::fromU64(width, static_cast<uint64_t>(c - '0'));
    BitVec sum = bvops::add(prod, digit, false);
    for (size_t w = 0; w < r.words_.size(); w++) r.words_[w] = sum.word(w);
    r.maskToWidth();
  }
  if (negate) {
    BitVec zero(width);
    BitVec negv = bvops::sub(zero, r, false);
    for (size_t w = 0; w < r.words_.size(); w++) r.words_[w] = negv.word(w);
    r.maskToWidth();
  }
  return r;
}

BitVec BitVec::allOnes(uint32_t width) {
  BitVec r(width);
  for (auto& w : r.words_) w = ~uint64_t{0};
  r.maskToWidth();
  return r;
}

bool BitVec::bit(uint32_t pos) const {
  if (pos >= width_) return false;
  return (words_[pos / 64] >> (pos % 64)) & 1;
}

void BitVec::setBit(uint32_t pos, bool value) {
  if (pos >= width_) return;
  uint64_t mask = uint64_t{1} << (pos % 64);
  if (value) words_[pos / 64] |= mask;
  else words_[pos / 64] &= ~mask;
}

bool BitVec::isZero() const {
  for (uint64_t w : words_)
    if (w != 0) return false;
  return true;
}

bool BitVec::isAllOnes() const {
  if (width_ == 0) return true;
  for (size_t i = 0; i + 1 < words_.size(); i++)
    if (words_[i] != ~uint64_t{0}) return false;
  return words_.back() == topWordMask(width_);
}

int64_t BitVec::toI64() const {
  uint64_t v = words_[0];
  if (width_ == 0) return 0;
  if (width_ < 64 && signBit()) v |= ~((uint64_t{1} << width_) - 1);
  return static_cast<int64_t>(v);
}

uint32_t BitVec::bitLength() const {
  for (size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != 0)
      return static_cast<uint32_t>(i) * 64 + (64 - static_cast<uint32_t>(__builtin_clzll(words_[i])));
  }
  return 0;
}

void BitVec::maskToWidth() {
  size_t need = numWords(width_);
  words_.resize(need, 0);
  if (width_ == 0) {
    words_[0] = 0;
    return;
  }
  words_.back() &= topWordMask(width_);
}

std::string BitVec::toHexString() const {
  std::string out;
  bool leading = true;
  uint32_t nibbles = width_ == 0 ? 1 : (width_ + 3) / 4;
  for (uint32_t i = nibbles; i-- > 0;) {
    uint32_t pos = i * 4;
    uint64_t nib = (word(pos / 64) >> (pos % 64)) & 0xf;
    if (pos % 64 > 60 && pos / 64 + 1 < words_.size())
      nib |= (words_[pos / 64 + 1] << (64 - pos % 64)) & 0xf;
    if (nib == 0 && leading && i != 0) continue;
    leading = false;
    out += "0123456789abcdef"[nib];
  }
  return out;
}

std::string BitVec::toBinString() const {
  std::string out;
  out.reserve(width_);
  for (uint32_t i = width_; i-- > 0;) out += bit(i) ? '1' : '0';
  return out;
}

std::string BitVec::toDecString() const {
  if (isZero()) return "0";
  // Repeated division by 10^9 over the word array.
  std::vector<uint64_t> tmp(words_);
  std::string out;
  constexpr uint64_t kChunk = 1000000000ULL;
  while (true) {
    bool nonzero = false;
    uint64_t remainder = 0;
    for (size_t i = tmp.size(); i-- > 0;) {
      unsigned __int128 cur = (static_cast<unsigned __int128>(remainder) << 64) | tmp[i];
      tmp[i] = static_cast<uint64_t>(cur / kChunk);
      remainder = static_cast<uint64_t>(cur % kChunk);
      nonzero |= tmp[i] != 0;
    }
    if (!nonzero) {
      out = std::to_string(remainder) + out;
      break;
    }
    std::string part = std::to_string(remainder);
    out = std::string(9 - part.size(), '0') + part + out;
  }
  return out;
}

std::string BitVec::toSignedDecString() const {
  if (!signBit()) return toDecString();
  // Two's-complement negate within our own width (sub widens by one bit).
  BitVec mag = bvops::extend(bvops::sub(BitVec(width_), *this, false), false, width_);
  std::string out = mag.toDecString();
  out.insert(out.begin(), '-');  // avoids a GCC 12 -Wrestrict false positive on "-" + s
  return out;
}

bool BitVec::operator==(const BitVec& other) const {
  size_t n = std::max(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; i++)
    if (word(i) != other.word(i)) return false;
  return width_ == other.width_;
}

int BitVec::ucmp(const BitVec& a, const BitVec& b) {
  size_t n = std::max(a.words_.size(), b.words_.size());
  for (size_t i = n; i-- > 0;) {
    uint64_t wa = a.word(i), wb = b.word(i);
    if (wa != wb) return wa < wb ? -1 : 1;
  }
  return 0;
}

int BitVec::scmp(const BitVec& a, const BitVec& b) {
  bool na = a.signBit(), nb = b.signBit();
  if (na != nb) return na ? -1 : 1;
  if (!na) return ucmp(a, b);
  // Both negative: sign-extend to a common width and compare unsigned.
  uint32_t w = std::max(a.width(), b.width());
  BitVec ea = bvops::extend(a, true, w);
  BitVec eb = bvops::extend(b, true, w);
  return ucmp(ea, eb);
}

}  // namespace essent

namespace essent::bvops {

uint32_t addWidth(uint32_t wa, uint32_t wb) { return std::max(wa, wb) + 1; }
uint32_t subWidth(uint32_t wa, uint32_t wb) { return std::max(wa, wb) + 1; }
uint32_t mulWidth(uint32_t wa, uint32_t wb) { return wa + wb; }
uint32_t divWidth(uint32_t wa, uint32_t, bool isSigned) { return isSigned ? wa + 1 : wa; }
uint32_t remWidth(uint32_t wa, uint32_t wb) { return std::min(wa, wb); }
uint32_t padWidth(uint32_t wa, uint32_t n) { return std::max(wa, n); }
uint32_t shlWidth(uint32_t wa, uint32_t n) { return wa + n; }
uint32_t shrWidth(uint32_t wa, uint32_t n) { return wa > n ? wa - n : 1; }
uint32_t dshlWidth(uint32_t wa, uint32_t wb) {
  // FIRRTL: wa + 2^wb - 1; clamp the shift-amount contribution to keep
  // pathological declared widths from exploding (designs here keep wb small).
  uint32_t extra = wb >= 20 ? (1u << 20) : ((1u << wb) - 1);
  return wa + extra;
}
uint32_t cvtWidth(uint32_t wa, bool isSigned) { return isSigned ? wa : wa + 1; }
uint32_t negWidth(uint32_t wa) { return wa + 1; }
uint32_t bitwiseWidth(uint32_t wa, uint32_t wb) { return std::max(wa, wb); }
uint32_t catWidth(uint32_t wa, uint32_t wb) { return wa + wb; }
uint32_t bitsWidth(uint32_t hi, uint32_t lo) { return hi - lo + 1; }
uint32_t headWidth(uint32_t n) { return n; }
uint32_t tailWidth(uint32_t wa, uint32_t n) { return wa > n ? wa - n : 0; }

BitVec extend(const BitVec& a, bool isSigned, uint32_t width) {
  BitVec r(width);
  bool sign = isSigned && a.signBit();
  uint64_t fill = sign ? ~uint64_t{0} : 0;
  size_t aw = a.wordCount();
  for (size_t i = 0; i < r.wordCount(); i++) r.data()[i] = i < aw ? a.word(i) : fill;
  if (sign && a.width() > 0) {
    // Fill the bits between a.width() and width inside the boundary word.
    uint32_t boundary = a.width();
    size_t w = boundary / 64;
    uint32_t off = boundary % 64;
    if (off != 0 && w < r.wordCount()) r.data()[w] |= ~uint64_t{0} << off;
  }
  r.maskToWidth();
  return r;
}

namespace {

// r = x + y (+carryIn), all width-of-r modular.
void addInto(BitVec& r, const BitVec& x, const BitVec& y, uint64_t carryIn) {
  unsigned __int128 carry = carryIn;
  for (size_t i = 0; i < r.wordCount(); i++) {
    unsigned __int128 sum = carry;
    sum += x.word(i);
    sum += y.word(i);
    r.data()[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  r.maskToWidth();
}

BitVec complement(const BitVec& a, uint32_t width) {
  BitVec r(width);
  for (size_t i = 0; i < r.wordCount(); i++) r.data()[i] = ~a.word(i);
  r.maskToWidth();
  return r;
}

}  // namespace

BitVec add(const BitVec& a, const BitVec& b, bool isSigned) {
  uint32_t w = addWidth(a.width(), b.width());
  BitVec ea = extend(a, isSigned, w), eb = extend(b, isSigned, w);
  BitVec r(w);
  addInto(r, ea, eb, 0);
  return r;
}

BitVec sub(const BitVec& a, const BitVec& b, bool isSigned) {
  uint32_t w = subWidth(a.width(), b.width());
  BitVec ea = extend(a, isSigned, w), eb = extend(b, isSigned, w);
  BitVec nb = complement(eb, w);
  BitVec r(w);
  addInto(r, ea, nb, 1);
  return r;
}

BitVec mul(const BitVec& a, const BitVec& b, bool isSigned) {
  uint32_t w = mulWidth(a.width(), b.width());
  // Two's-complement modular multiply: extending both operands to the result
  // width and multiplying modulo 2^w is exact for w = wa + wb.
  BitVec ea = extend(a, isSigned, w), eb = extend(b, isSigned, w);
  BitVec r(w);
  size_t n = r.wordCount();
  for (size_t i = 0; i < n; i++) {
    if (ea.word(i) == 0) continue;
    uint64_t carry = 0;
    for (size_t j = 0; i + j < n; j++) {
      unsigned __int128 cur = static_cast<unsigned __int128>(ea.word(i)) * eb.word(j);
      cur += r.word(i + j);
      cur += carry;
      r.data()[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
  }
  r.maskToWidth();
  return r;
}

void udivmod(const BitVec& a, const BitVec& b, BitVec* quotient, BitVec* remainder) {
  uint32_t w = a.width();
  BitVec q(w), r(w == 0 ? 1 : w);
  if (!b.isZero()) {
    // Restoring division, bit-serial from the MSB of a.
    for (uint32_t i = a.width(); i-- > 0;) {
      // r = (r << 1) | a[i]
      uint64_t carry = a.bit(i) ? 1 : 0;
      for (size_t wd = 0; wd < r.wordCount(); wd++) {
        uint64_t nw = (r.word(wd) << 1) | carry;
        carry = r.word(wd) >> 63;
        r.data()[wd] = nw;
      }
      r.maskToWidth();
      if (BitVec::ucmp(r, b) >= 0) {
        BitVec diff = sub(r, b, false);
        for (size_t wd = 0; wd < r.wordCount(); wd++) r.data()[wd] = diff.word(wd);
        r.maskToWidth();
        q.setBit(i, true);
      }
    }
  }
  if (quotient) *quotient = q;
  if (remainder) *remainder = r;
}

BitVec div(const BitVec& a, const BitVec& b, bool isSigned) {
  uint32_t w = divWidth(a.width(), b.width(), isSigned);
  if (b.isZero()) return BitVec(w);
  if (!isSigned) {
    BitVec q(a.width());
    udivmod(a, b, &q, nullptr);
    return extend(q, false, w);
  }
  bool na = a.signBit(), nb = b.signBit();
  uint32_t mw = std::max(a.width(), b.width()) + 1;  // room for |INT_MIN|
  BitVec ma = na ? sub(BitVec(a.width()), a, true) : extend(a, true, mw);
  BitVec mb = nb ? sub(BitVec(b.width()), b, true) : extend(b, true, mw);
  ma = extend(ma, false, mw);
  mb = extend(mb, false, mw);
  BitVec q(mw);
  udivmod(ma, mb, &q, nullptr);
  BitVec qe = extend(q, false, w);
  if (na != nb) qe = extend(sub(BitVec(w), qe, false), false, w);
  return qe;
}

BitVec rem(const BitVec& a, const BitVec& b, bool isSigned) {
  uint32_t w = remWidth(a.width(), b.width());
  if (b.isZero()) return extend(a, isSigned, w);
  if (!isSigned) {
    BitVec r;
    udivmod(a, b, nullptr, &r);
    return extend(r, false, w);
  }
  bool na = a.signBit(), nb = b.signBit();
  uint32_t mw = std::max(a.width(), b.width()) + 1;
  BitVec ma = na ? sub(BitVec(a.width()), a, true) : extend(a, true, mw);
  BitVec mb = nb ? sub(BitVec(b.width()), b, true) : extend(b, true, mw);
  ma = extend(ma, false, mw);
  mb = extend(mb, false, mw);
  BitVec r;
  udivmod(ma, mb, nullptr, &r);
  BitVec re = extend(r, false, mw);
  if (na) re = extend(sub(BitVec(mw), re, false), false, mw);
  // Truncate two's-complement into the (narrower) result width.
  return extend(re, false, w);
}

namespace {
BitVec boolBV(bool v) { return BitVec::fromU64(1, v ? 1 : 0); }
int cmp(const BitVec& a, const BitVec& b, bool isSigned) {
  return isSigned ? BitVec::scmp(a, b) : BitVec::ucmp(a, b);
}
}  // namespace

BitVec lt(const BitVec& a, const BitVec& b, bool s) { return boolBV(cmp(a, b, s) < 0); }
BitVec leq(const BitVec& a, const BitVec& b, bool s) { return boolBV(cmp(a, b, s) <= 0); }
BitVec gt(const BitVec& a, const BitVec& b, bool s) { return boolBV(cmp(a, b, s) > 0); }
BitVec geq(const BitVec& a, const BitVec& b, bool s) { return boolBV(cmp(a, b, s) >= 0); }
BitVec eq(const BitVec& a, const BitVec& b, bool s) { return boolBV(cmp(a, b, s) == 0); }
BitVec neq(const BitVec& a, const BitVec& b, bool s) { return boolBV(cmp(a, b, s) != 0); }

BitVec pad(const BitVec& a, bool isSigned, uint32_t n) {
  return extend(a, isSigned, padWidth(a.width(), n));
}

BitVec shl(const BitVec& a, uint32_t n) {
  uint32_t w = shlWidth(a.width(), n);
  BitVec r(w);
  size_t wordShift = n / 64;
  uint32_t bitShift = n % 64;
  for (size_t i = 0; i < r.wordCount(); i++) {
    uint64_t lo = i >= wordShift ? a.word(i - wordShift) : 0;
    uint64_t hi = (bitShift != 0 && i >= wordShift + 1) ? a.word(i - wordShift - 1) : 0;
    r.data()[i] = (bitShift == 0) ? lo : ((lo << bitShift) | (hi >> (64 - bitShift)));
  }
  r.maskToWidth();
  return r;
}

BitVec shr(const BitVec& a, bool isSigned, uint32_t n) {
  uint32_t w = shrWidth(a.width(), n);
  BitVec r(w);
  for (uint32_t i = 0; i < w; i++) {
    uint32_t src = i + n;
    bool b = src < a.width() ? a.bit(src) : (isSigned && a.signBit());
    r.setBit(i, b);
  }
  return r;
}

BitVec dshl(const BitVec& a, const BitVec& b, uint32_t shamtWidth) {
  uint32_t w = dshlWidth(a.width(), shamtWidth);
  uint64_t sh = b.toU64();
  if (b.bitLength() > 32 || sh >= w) return BitVec(w);
  BitVec shifted = shl(a, static_cast<uint32_t>(sh));
  return extend(shifted, false, w);
}

BitVec dshr(const BitVec& a, bool isSigned, const BitVec& b) {
  uint32_t w = a.width();
  uint64_t sh = b.bitLength() > 32 ? w : b.toU64();
  if (sh > w) sh = w;
  BitVec r(w);
  for (uint32_t i = 0; i < w; i++) {
    uint64_t src = i + sh;
    bool bit = src < a.width() ? a.bit(static_cast<uint32_t>(src)) : (isSigned && a.signBit());
    r.setBit(i, bit);
  }
  return r;
}

BitVec cvt(const BitVec& a, bool isSigned) {
  return extend(a, isSigned, cvtWidth(a.width(), isSigned));
}

BitVec neg(const BitVec& a, bool isSigned) {
  uint32_t w = negWidth(a.width());
  BitVec ea = extend(a, isSigned, w);
  return extend(sub(BitVec(w), ea, false), false, w);
}

BitVec bnot(const BitVec& a) { return complement(a, a.width()); }

BitVec band(const BitVec& a, const BitVec& b, bool isSigned) {
  uint32_t w = bitwiseWidth(a.width(), b.width());
  BitVec ea = extend(a, isSigned, w), eb = extend(b, isSigned, w);
  BitVec r(w);
  for (size_t i = 0; i < r.wordCount(); i++) r.data()[i] = ea.word(i) & eb.word(i);
  r.maskToWidth();
  return r;
}

BitVec bor(const BitVec& a, const BitVec& b, bool isSigned) {
  uint32_t w = bitwiseWidth(a.width(), b.width());
  BitVec ea = extend(a, isSigned, w), eb = extend(b, isSigned, w);
  BitVec r(w);
  for (size_t i = 0; i < r.wordCount(); i++) r.data()[i] = ea.word(i) | eb.word(i);
  r.maskToWidth();
  return r;
}

BitVec bxor(const BitVec& a, const BitVec& b, bool isSigned) {
  uint32_t w = bitwiseWidth(a.width(), b.width());
  BitVec ea = extend(a, isSigned, w), eb = extend(b, isSigned, w);
  BitVec r(w);
  for (size_t i = 0; i < r.wordCount(); i++) r.data()[i] = ea.word(i) ^ eb.word(i);
  r.maskToWidth();
  return r;
}

BitVec andr(const BitVec& a) { return boolBV(a.isAllOnes()); }
BitVec orr(const BitVec& a) { return boolBV(!a.isZero()); }

BitVec xorr(const BitVec& a) {
  uint64_t acc = 0;
  for (size_t i = 0; i < a.wordCount(); i++) acc ^= a.word(i);
  return boolBV(__builtin_parityll(acc));
}

BitVec cat(const BitVec& a, const BitVec& b) {
  uint32_t w = catWidth(a.width(), b.width());
  BitVec hi = shl(extend(a, false, w > 0 ? w - b.width() : 0), b.width());
  BitVec lo = extend(b, false, w);
  return bor(extend(hi, false, w), lo, false);
}

BitVec bits(const BitVec& a, uint32_t hi, uint32_t lo) {
  uint32_t w = bitsWidth(hi, lo);
  BitVec r(w);
  for (uint32_t i = 0; i < w; i++) r.setBit(i, a.bit(lo + i));
  return r;
}

BitVec head(const BitVec& a, uint32_t n) {
  if (n == 0) return BitVec(0);
  return bits(a, a.width() - 1, a.width() - n);
}

BitVec tail(const BitVec& a, uint32_t n) {
  uint32_t w = tailWidth(a.width(), n);
  if (w == 0) return BitVec(0);
  return bits(a, w - 1, 0);
}

BitVec mux(const BitVec& sel, const BitVec& tval, const BitVec& fval, bool isSigned) {
  uint32_t w = std::max(tval.width(), fval.width());
  return extend(sel.isZero() ? fval : tval, isSigned, w);
}

}  // namespace essent::bvops
