// Resource governance for elaboration and simulation: hard ceilings on IR
// size, estimated simulation memory, cycle counts, and wall-clock time.
//
// The guard exists so hostile or degenerate inputs (a mem with depth 2^40,
// a vector type that explodes during lowering, a runaway stimulus) fail
// with a structured ResourceExhausted error — convertible to an E05xx
// diagnostic — instead of OOM-killing the process or spinning forever.
// All limits default to "generous but finite"; 0 disables a limit.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace essent::support {

struct ResourceLimits {
  uint64_t maxIrOps = 5'000'000;             // IR nodes after lowering/building
  uint64_t maxSimMemBytes = 1ull << 32;      // estimated state bytes (regs+mems)
  uint64_t maxCycles = 0;                    // simulated cycles per run (0 = off)
  int64_t wallDeadlineMs = 0;                // wall budget from guard creation (0 = off)

  static ResourceLimits unlimited() { return ResourceLimits{0, 0, 0, 0}; }
};

class ResourceExhausted : public std::runtime_error {
 public:
  ResourceExhausted(std::string code, const std::string& msg)
      : std::runtime_error(msg), code_(std::move(code)) {}
  // Diagnostic code, E05xx.
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

class ResourceGuard {
 public:
  explicit ResourceGuard(ResourceLimits limits);

  const ResourceLimits& limits() const { return limits_; }

  // Each check throws ResourceExhausted when its limit is exceeded.
  void checkIrOps(uint64_t ops) const;         // E0501
  void checkSimMem(uint64_t bytes) const;      // E0502
  void checkCycles(uint64_t cycles) const;     // E0503
  void checkDeadline() const;                  // E0504

 private:
  ResourceLimits limits_;
  int64_t startMs_;  // steady-clock epoch at construction
};

}  // namespace essent::support
