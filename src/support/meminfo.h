// Process memory introspection for the scaling benches and tests.
#pragma once

#include <cstdint>

namespace essent::support {

// Peak resident set size of the current process in bytes (ru_maxrss;
// kilobytes on Linux, bytes on macOS — normalized here). Monotone over the
// process lifetime: it never decreases, so per-phase deltas require a
// subprocess per measurement. Returns 0 when the platform offers neither
// getrusage nor /proc/self/status.
uint64_t peakRssBytes();

}  // namespace essent::support
