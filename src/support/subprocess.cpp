#include "support/subprocess.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/trace.h"
#include "support/strutil.h"

namespace essent::support {

namespace {

// Process group of the runShell child currently in flight (0 = none).
// Lock-free so the signal handler may read it.
std::atomic<pid_t> g_activePgid{0};
volatile sig_atomic_t g_interruptSig = 0;

extern "C" void relaySignalHandler(int sig) {
  g_interruptSig = sig;
  // Forward to the live child group so the compiler/simulator dies with us.
  // kill() is async-signal-safe; the pgid load is a lock-free atomic. If the
  // store in runShell hasn't happened yet, the latched flag alone is enough:
  // the poll loop checks it and performs the same escalation.
  pid_t pgid = g_activePgid.load(std::memory_order_relaxed);
  if (pgid > 0) kill(-pgid, sig);
}

}  // namespace

void installSignalRelay() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = relaySignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking waits should EINTR promptly
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool interruptRequested() { return g_interruptSig != 0; }

int interruptSignal() { return static_cast<int>(g_interruptSig); }

std::string shellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

namespace {

void decodeStatus(int status, ExecResult& r) {
  if (WIFEXITED(status)) {
    r.exited = true;
    r.exitCode = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.signal = WTERMSIG(status);
  }
}

}  // namespace

ExecResult runShell(const std::string& cmd, const RunOptions& opts) {
  using Clock = std::chrono::steady_clock;
  // Structural span (not Busy: a caller-side phase span may already cover
  // this interval); watchdog escalations land as instant events.
  obs::TraceSpan span("subprocess", obs::TraceCat::None, obs::TraceDetail::Phase);
  ExecResult r;
  Clock::time_point start = Clock::now();

  pid_t pid = fork();
  if (pid < 0) return r;
  if (pid == 0) {
    // New process group so the watchdog can kill the shell AND everything
    // it spawned (the compiler, the compiled simulator, ...).
    setpgid(0, 0);
    execl("/bin/sh", "sh", "-c", cmd.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  // Racing the child's own setpgid; one of the two calls wins, both settle
  // on the same group, and EACCES/EPERM here is benign.
  setpgid(pid, pid);
  r.ran = true;
  g_activePgid.store(pid, std::memory_order_relaxed);
  if (interruptRequested()) {
    // The signal landed in the gap before the pgid was published; the
    // handler could not forward it, so deliver it ourselves.
    kill(-pid, interruptSignal());
  }

  auto elapsedMs = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count();
  };

  bool sentTerm = false;
  int64_t termAtMs = 0;
  for (;;) {
    int status = 0;
    pid_t w = waitpid(pid, &status, WNOHANG);
    if (w == pid) {
      decodeStatus(status, r);
      break;
    }
    if (w < 0 && errno != EINTR) {
      // Child vanished without a reapable status; report what we know.
      break;
    }
    int64_t now = elapsedMs();
    if (interruptRequested() && !sentTerm) {
      // Relay path: the handler already forwarded the signal to the group;
      // from here the watchdog escalation machinery takes over (grace
      // period, then SIGKILL) so an ignoring child still dies.
      r.interrupted = true;
      obs::traceInstant("subprocess.interrupt", "signal",
                        static_cast<uint64_t>(interruptSignal()));
      kill(-pid, SIGTERM);
      sentTerm = true;
      termAtMs = now;
      continue;
    }
    if (opts.timeoutMs > 0 && !sentTerm && now >= opts.timeoutMs) {
      r.timedOut = true;
      obs::traceInstant("subprocess.timeout_term", "elapsed_ms",
                        static_cast<uint64_t>(now));
      kill(-pid, SIGTERM);
      sentTerm = true;
      termAtMs = now;
    } else if (sentTerm && now - termAtMs >= opts.killGraceMs) {
      obs::traceInstant("subprocess.kill", "elapsed_ms", static_cast<uint64_t>(now));
      kill(-pid, SIGKILL);
      // Reap the corpse blocking: SIGKILL cannot be ignored.
      int st = 0;
      if (waitpid(pid, &st, 0) == pid) decodeStatus(st, r);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  g_activePgid.store(0, std::memory_order_relaxed);
  if (interruptRequested()) r.interrupted = true;
  r.wallMs = elapsedMs();
  return r;
}

ExecResult runShell(const std::string& cmd) { return runShell(cmd, RunOptions{}); }

std::string ExecResult::describe() const {
  if (!ran) return "failed to spawn shell";
  if (interrupted)
    return strfmt("interrupted by signal %d (relayed to the subprocess group)",
                  interruptSignal());
  if (timedOut) return strfmt("timed out after %lld ms", static_cast<long long>(wallMs));
  if (!exited) return strfmt("killed by signal %d", signal);
  return strfmt("exited %d", exitCode);
}

}  // namespace essent::support
