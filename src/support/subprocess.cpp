#include "support/subprocess.h"

#include <sys/wait.h>

#include <cstdlib>

#include "support/strutil.h"

namespace essent::support {

std::string shellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

ExecResult runShell(const std::string& cmd) {
  ExecResult r;
  int status = std::system(cmd.c_str());
  if (status == -1) return r;  // could not spawn a shell at all
  r.ran = true;
  if (WIFEXITED(status)) {
    r.exited = true;
    r.exitCode = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.signal = WTERMSIG(status);
  }
  return r;
}

std::string ExecResult::describe() const {
  if (!ran) return "failed to spawn shell";
  if (!exited) return strfmt("killed by signal %d", signal);
  return strfmt("exited %d", exitCode);
}

}  // namespace essent::support
