#include "support/subprocess.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/trace.h"
#include "support/strutil.h"

namespace essent::support {

std::string shellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

namespace {

void decodeStatus(int status, ExecResult& r) {
  if (WIFEXITED(status)) {
    r.exited = true;
    r.exitCode = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.signal = WTERMSIG(status);
  }
}

}  // namespace

ExecResult runShell(const std::string& cmd, const RunOptions& opts) {
  using Clock = std::chrono::steady_clock;
  // Structural span (not Busy: a caller-side phase span may already cover
  // this interval); watchdog escalations land as instant events.
  obs::TraceSpan span("subprocess", obs::TraceCat::None, obs::TraceDetail::Phase);
  ExecResult r;
  Clock::time_point start = Clock::now();

  pid_t pid = fork();
  if (pid < 0) return r;
  if (pid == 0) {
    // New process group so the watchdog can kill the shell AND everything
    // it spawned (the compiler, the compiled simulator, ...).
    setpgid(0, 0);
    execl("/bin/sh", "sh", "-c", cmd.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  // Racing the child's own setpgid; one of the two calls wins, both settle
  // on the same group, and EACCES/EPERM here is benign.
  setpgid(pid, pid);
  r.ran = true;

  auto elapsedMs = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count();
  };

  bool sentTerm = false;
  int64_t termAtMs = 0;
  for (;;) {
    int status = 0;
    pid_t w = waitpid(pid, &status, WNOHANG);
    if (w == pid) {
      decodeStatus(status, r);
      break;
    }
    if (w < 0 && errno != EINTR) {
      // Child vanished without a reapable status; report what we know.
      break;
    }
    int64_t now = elapsedMs();
    if (opts.timeoutMs > 0 && !sentTerm && now >= opts.timeoutMs) {
      r.timedOut = true;
      obs::traceInstant("subprocess.timeout_term", "elapsed_ms",
                        static_cast<uint64_t>(now));
      kill(-pid, SIGTERM);
      sentTerm = true;
      termAtMs = now;
    } else if (sentTerm && now - termAtMs >= opts.killGraceMs) {
      obs::traceInstant("subprocess.kill", "elapsed_ms", static_cast<uint64_t>(now));
      kill(-pid, SIGKILL);
      // Reap the corpse blocking: SIGKILL cannot be ignored.
      int st = 0;
      if (waitpid(pid, &st, 0) == pid) decodeStatus(st, r);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  r.wallMs = elapsedMs();
  return r;
}

ExecResult runShell(const std::string& cmd) { return runShell(cmd, RunOptions{}); }

std::string ExecResult::describe() const {
  if (!ran) return "failed to spawn shell";
  if (timedOut) return strfmt("timed out after %lld ms", static_cast<long long>(wallMs));
  if (!exited) return strfmt("killed by signal %d", signal);
  return strfmt("exited %d", exitCode);
}

}  // namespace essent::support
