#include "diag/diag.h"

#include "support/strutil.h"

namespace essent::diag {

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string SourceSpan::toString() const {
  std::string f = file.empty() ? "<input>" : file;
  if (line <= 0) return f;
  if (col <= 0) return f + ":" + std::to_string(line);
  return f + ":" + std::to_string(line) + ":" + std::to_string(col);
}

Diagnostic& Diagnostic::note(std::string msg, SourceSpan s) {
  notes.push_back(DiagNote{std::move(msg), std::move(s)});
  return *this;
}

void DiagEngine::setSource(std::string file, std::string text) {
  file_ = std::move(file);
  source_ = std::move(text);
  lines_ = splitString(source_, '\n');
}

Diagnostic& DiagEngine::report(Severity sev, std::string code, std::string message,
                               SourceSpan span) {
  if (sev == Severity::Error) {
    if (errors_ >= maxErrors) {
      if (errors_ == maxErrors) {
        errors_++;
        diags_.push_back(Diagnostic{Severity::Note, "E0001",
                                    strfmt("too many errors (limit %zu); further errors "
                                           "suppressed", maxErrors),
                                    {}, {}});
      }
      discard_ = Diagnostic{};
      return discard_;
    }
    errors_++;
  } else if (sev == Severity::Warning) {
    warnings_++;
  }
  Diagnostic d;
  d.severity = sev;
  d.code = std::move(code);
  d.message = std::move(message);
  d.span = std::move(span);
  if (d.span.file.empty()) d.span.file = file_;
  diags_.push_back(std::move(d));
  return diags_.back();
}

Diagnostic& DiagEngine::error(std::string code, std::string message, SourceSpan span) {
  return report(Severity::Error, std::move(code), std::move(message), std::move(span));
}

Diagnostic& DiagEngine::warning(std::string code, std::string message, SourceSpan span) {
  return report(Severity::Warning, std::move(code), std::move(message), std::move(span));
}

namespace {

// "   12 | module Top :" excerpt plus a caret line under the span.
void appendExcerpt(std::string& out, const std::vector<std::string>& lines,
                   const SourceSpan& span) {
  if (span.line <= 0 || static_cast<size_t>(span.line) > lines.size()) return;
  const std::string& text = lines[static_cast<size_t>(span.line) - 1];
  out += strfmt("%5d | ", span.line);
  for (char c : text) out += c == '\t' ? ' ' : c;  // tabs render one column
  out += "\n";
  if (span.col > 0) {
    out += "      | ";
    for (int i = 1; i < span.col; i++) out += ' ';
    int width = span.endCol > span.col ? span.endCol - span.col : 1;
    if (span.col - 1 + width > static_cast<int>(text.size()) + 1)
      width = 1;  // span outlived an edit; show a plain caret
    out += '^';
    for (int i = 1; i < width; i++) out += '~';
    out += "\n";
  }
}

}  // namespace

std::string DiagEngine::render(const Diagnostic& d) const {
  SourceSpan span = d.span;
  if (span.file.empty()) span.file = file_;
  std::string out = span.toString() + ": " + severityName(d.severity) + ": " + d.message;
  if (!d.code.empty()) out += " [" + d.code + "]";
  out += "\n";
  appendExcerpt(out, lines_, d.span);
  for (const DiagNote& n : d.notes) {
    SourceSpan ns = n.span;
    if (ns.file.empty()) ns.file = file_;
    out += ns.toString() + ": note: " + n.message + "\n";
    appendExcerpt(out, lines_, n.span);
  }
  return out;
}

std::string DiagEngine::render() const {
  std::string out;
  for (const Diagnostic& d : diags_) out += render(d);
  if (errors_ || warnings_) {
    out += strfmt("%zu error%s", errors_ > maxErrors ? maxErrors : errors_,
                  errors_ == 1 ? "" : "s");
    if (warnings_) out += strfmt(", %zu warning%s", warnings_, warnings_ == 1 ? "" : "s");
    out += " generated\n";
  }
  return out;
}

namespace {

obs::Json spanJson(const SourceSpan& s, const std::string& defaultFile) {
  obs::Json j = obs::Json::object();
  j["file"] = s.file.empty() ? defaultFile : s.file;
  j["line"] = s.line;
  j["col"] = s.col;
  if (s.endCol > s.col) j["end_col"] = s.endCol;
  return j;
}

SourceSpan spanFromJson(const obs::Json& j) {
  SourceSpan s;
  if (const obs::Json* f = j.find("file")) s.file = f->asStr();
  if (const obs::Json* l = j.find("line")) s.line = static_cast<int>(l->asInt());
  if (const obs::Json* c = j.find("col")) s.col = static_cast<int>(c->asInt());
  if (const obs::Json* e = j.find("end_col")) s.endCol = static_cast<int>(e->asInt());
  return s;
}

}  // namespace

obs::Json DiagEngine::toJson() const {
  obs::Json doc = obs::Json::object();
  doc["file"] = file_.empty() ? "<input>" : file_;
  doc["errors"] = errors_ > maxErrors ? maxErrors : errors_;
  doc["warnings"] = warnings_;
  obs::Json arr = obs::Json::array();
  for (const Diagnostic& d : diags_) {
    obs::Json j = obs::Json::object();
    j["severity"] = severityName(d.severity);
    j["code"] = d.code;
    j["message"] = d.message;
    j["span"] = spanJson(d.span, file_);
    if (!d.notes.empty()) {
      obs::Json notes = obs::Json::array();
      for (const DiagNote& n : d.notes) {
        obs::Json nj = obs::Json::object();
        nj["message"] = n.message;
        nj["span"] = spanJson(n.span, file_);
        notes.push(std::move(nj));
      }
      j["notes"] = std::move(notes);
    }
    arr.push(std::move(j));
  }
  doc["diagnostics"] = std::move(arr);
  return doc;
}

std::vector<Diagnostic> diagnosticsFromJson(const obs::Json& doc) {
  std::vector<Diagnostic> out;
  for (const obs::Json& j : doc.at("diagnostics").items()) {
    Diagnostic d;
    std::string sev = j.at("severity").asStr();
    d.severity = sev == "error" ? Severity::Error
                                : (sev == "warning" ? Severity::Warning : Severity::Note);
    d.code = j.at("code").asStr();
    d.message = j.at("message").asStr();
    d.span = spanFromJson(j.at("span"));
    if (const obs::Json* notes = j.find("notes")) {
      for (const obs::Json& nj : notes->items())
        d.notes.push_back(DiagNote{nj.at("message").asStr(), spanFromJson(nj.at("span"))});
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace essent::diag
