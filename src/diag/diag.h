// Structured diagnostics for the FIRRTL front end and the tool flow.
//
// A Diagnostic is a severity + stable error code + message anchored to a
// SourceSpan (file:line:col). The DiagEngine collects many diagnostics per
// run — the lexer, parser, and width inference report through it with
// panic-mode recovery, so one pass over a malformed .fir surfaces every
// error, not just the first. Rendering is clang-style (with a source
// excerpt and caret when the engine knows the source text); toJson()/
// diagnosticsFromJson() give a loss-free machine-readable form for
// `essentc --diag-json`.
//
// Error-code ranges (catalog in docs/DIAGNOSTICS.md):
//   E01xx lexical     E02xx syntax       E03xx types/widths
//   E04xx elaboration E05xx resources    W06xx warnings
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.h"

namespace essent::diag {

struct SourceSpan {
  std::string file;  // empty = "<input>"
  int line = 0;      // 1-based; 0 = no location
  int col = 0;       // 1-based; 0 = whole line
  int endCol = 0;    // exclusive; 0 or <= col = single-column caret

  bool valid() const { return line > 0; }
  std::string toString() const;  // "file:line:col" (omitting unknown parts)
};

enum class Severity { Note, Warning, Error };

const char* severityName(Severity s);  // "note" / "warning" / "error"

struct DiagNote {
  std::string message;
  SourceSpan span;
};

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;     // e.g. "E0102"; empty for uncoded notes
  std::string message;  // one line, no trailing period
  SourceSpan span;
  std::vector<DiagNote> notes;

  Diagnostic& note(std::string msg, SourceSpan s = {});
};

class DiagEngine {
 public:
  // Source registration makes renderings include an excerpt + caret line.
  // The text is copied; call once per input file.
  void setSource(std::string file, std::string text);
  const std::string& sourceFile() const { return file_; }

  Diagnostic& report(Severity sev, std::string code, std::string message, SourceSpan span);
  Diagnostic& error(std::string code, std::string message, SourceSpan span);
  Diagnostic& warning(std::string code, std::string message, SourceSpan span);

  bool hasErrors() const { return errors_ != 0; }
  size_t errorCount() const { return errors_; }
  size_t warningCount() const { return warnings_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  // Recovery stops once this many errors have been reported (guards
  // pathological inputs where every line is broken); further error reports
  // are dropped after a single "too many errors" marker.
  size_t maxErrors = 64;
  bool atErrorLimit() const { return errors_ >= maxErrors; }

  // Clang-style rendering of every collected diagnostic, e.g.
  //   bad.fir:3:9: error: expected ':' after module name [E0201]
  //       module M
  //              ^
  std::string render() const;
  std::string render(const Diagnostic& d) const;

  // {"file": ..., "errors": N, "warnings": N, "diagnostics": [...]}
  obs::Json toJson() const;

 private:
  std::string file_;
  std::string source_;
  std::vector<std::string> lines_;  // source split for excerpts
  std::vector<Diagnostic> diags_;
  size_t errors_ = 0;
  size_t warnings_ = 0;
  Diagnostic discard_;  // sink once maxErrors is hit
};

// Inverse of DiagEngine::toJson() for round-trip tooling/tests. Throws
// obs::JsonError on a malformed document.
std::vector<Diagnostic> diagnosticsFromJson(const obs::Json& doc);

}  // namespace essent::diag
