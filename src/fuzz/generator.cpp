#include "fuzz/generator.h"

#include <algorithm>
#include <vector>

#include "support/rng.h"
#include "support/strutil.h"

namespace essent::fuzz {

namespace {

struct Val {
  std::string ref;
  uint32_t width;
  bool sgn;
};

// Builds one module body. All primops stay reachable; when `wide` is false
// every intermediate is kept <= 64 bits so the circuit remains eligible for
// the compiled codegen engine (which rejects any >64-bit signal, including
// temporaries).
struct ModGen {
  Rng& rng;
  bool wide;
  uint32_t cap;  // hard bound on any intermediate width
  std::string body;
  std::vector<Val> pool;
  uint32_t nextId = 0;

  ModGen(Rng& r, bool w) : rng(r), wide(w), cap(w ? 120 : 64) {}

  // Widths biased toward the word-boundary edges where fast-path and
  // codegen shapes change (1/2/31/32/33/63/64, plus >64 when wide).
  uint32_t pickWidth(uint32_t maxw) {
    static const uint32_t edges[] = {1, 2, 7, 8, 16, 31, 32, 33, 63, 64};
    if (wide && maxw > 64 && rng.nextChance(0.4))
      return 65 + static_cast<uint32_t>(rng.nextBelow(maxw - 64));
    if (rng.nextChance(0.6)) {
      uint32_t w = edges[rng.nextBelow(10)];
      if (w <= maxw) return w;
    }
    return 1 + static_cast<uint32_t>(rng.nextBelow(maxw));
  }

  Val pick() { return pool[rng.nextBelow(pool.size())]; }

  Val emitNode(const std::string& expr, uint32_t width, bool sgn) {
    std::string name = strfmt("n%u", nextId++);
    body += strfmt("    node %s = %s\n", name.c_str(), expr.c_str());
    Val v{name, width, sgn};
    pool.push_back(v);
    return v;
  }

  Val coerce(Val v, bool wantSigned) {
    if (v.sgn == wantSigned) return v;
    return Val{strfmt("%s(%s)", wantSigned ? "asSInt" : "asUInt", v.ref.c_str()), v.width,
               wantSigned};
  }

  // Truncates to at most maxw bits, preserving requested signedness.
  Val narrowTo(Val v, uint32_t maxw) {
    if (v.width <= maxw) return v;
    bool sgn = v.sgn;
    Val u{strfmt("bits(%s, %u, 0)", v.ref.c_str(), maxw - 1), maxw, false};
    return sgn ? emitNode(strfmt("asSInt(%s)", u.ref.c_str()), maxw, true) : u;
  }

  Val pickOneBit() {
    for (int tries = 0; tries < 8; tries++) {
      Val v = pick();
      if (v.width == 1 && !v.sgn) return v;
    }
    return emitNode(strfmt("orr(%s)", pick().ref.c_str()), 1, false);
  }

  // Fits v to exactly (w, sgn) — used for port connects.
  Val fit(Val v, uint32_t w, bool sgn) {
    v = coerce(v, false);
    std::string e = v.ref;
    uint32_t cur = v.width;
    if (cur > w) {
      e = strfmt("bits(%s, %u, 0)", e.c_str(), w - 1);
      cur = w;
    } else if (cur < w) {
      e = strfmt("pad(%s, %u)", e.c_str(), w);
      cur = w;
    }
    if (sgn) e = strfmt("asSInt(%s)", e.c_str());
    return Val{e, w, sgn};
  }

  Val randomLiteral() {
    uint32_t w = pickWidth(std::min(cap, 64u));
    // Bias toward boundary values (0, 1, all-ones, sign bit) that trip
    // division/remainder and shift edge cases.
    uint64_t mask = w >= 64 ? ~0ull : ((1ull << w) - 1);
    uint64_t mag;
    switch (rng.nextBelow(5)) {
      case 0: mag = 0; break;
      case 1: mag = 1 & mask; break;
      case 2: mag = mask; break;                            // -1 signed / max
      case 3: mag = (1ull << (w - 1)) & mask; break;        // INT_MIN-style
      default: mag = rng.next() & mask; break;
    }
    bool sgn = rng.nextChance(0.3);
    if (sgn)
      return Val{strfmt("asSInt(UInt<%u>(\"h%llx\"))", w, static_cast<unsigned long long>(mag)),
                 w, true};
    return Val{strfmt("UInt<%u>(\"h%llx\")", w, static_cast<unsigned long long>(mag)), w, false};
  }

  Val makeExpr(int depth = 0) {
    if (depth > 6) return randomLiteral();
    int kind = static_cast<int>(rng.nextBelow(22));
    Val a = pick();
    switch (kind) {
      case 0: {  // add/sub: result max(wa,wb)+1, so operands stay < cap
        a = narrowTo(a, cap - 1);
        Val b = narrowTo(coerce(pick(), a.sgn), cap - 1);
        b = coerce(b, a.sgn);
        const char* op = rng.nextBool() ? "add" : "sub";
        return Val{strfmt("%s(%s, %s)", op, a.ref.c_str(), b.ref.c_str()),
                   std::max(a.width, b.width) + 1, a.sgn};
      }
      case 1: {  // mul: result wa+wb
        uint32_t half = cap / 2;
        a = narrowTo(a, half);
        Val b = narrowTo(coerce(pick(), a.sgn), cap - a.width);
        b = coerce(b, a.sgn);
        return Val{strfmt("mul(%s, %s)", a.ref.c_str(), b.ref.c_str()), a.width + b.width,
                   a.sgn};
      }
      case 2: {  // div: signed result is wa+1
        if (a.sgn) a = narrowTo(a, cap - 1);
        Val b = coerce(pick(), a.sgn);
        return Val{strfmt("div(%s, %s)", a.ref.c_str(), b.ref.c_str()),
                   a.sgn ? a.width + 1 : a.width, a.sgn};
      }
      case 3: {  // rem: result min(wa,wb) — the signed 64/64 case is legal
        Val b = coerce(pick(), a.sgn);
        return Val{strfmt("rem(%s, %s)", a.ref.c_str(), b.ref.c_str()),
                   std::min(a.width, b.width), a.sgn};
      }
      case 4: {  // comparisons
        Val b = coerce(pick(), a.sgn);
        static const char* cmps[] = {"lt", "leq", "gt", "geq", "eq", "neq"};
        return Val{strfmt("%s(%s, %s)", cmps[rng.nextBelow(6)], a.ref.c_str(), b.ref.c_str()),
                   1, false};
      }
      case 5: {  // bitwise binary
        Val b = coerce(pick(), a.sgn);
        static const char* ops[] = {"and", "or", "xor"};
        return Val{strfmt("%s(%s, %s)", ops[rng.nextBelow(3)], a.ref.c_str(), b.ref.c_str()),
                   std::max(a.width, b.width), false};
      }
      case 6:  // not
        return Val{strfmt("not(%s)", a.ref.c_str()), a.width, false};
      case 7: {  // reductions
        static const char* ops[] = {"andr", "orr", "xorr"};
        return Val{strfmt("%s(%s)", ops[rng.nextBelow(3)], a.ref.c_str()), 1, false};
      }
      case 8: {  // cat
        a = narrowTo(a, cap - 1);
        Val b = narrowTo(pick(), cap - a.width);
        return Val{strfmt("cat(%s, %s)", a.ref.c_str(), b.ref.c_str()), a.width + b.width,
                   false};
      }
      case 9: {  // bits
        uint32_t lo = static_cast<uint32_t>(rng.nextBelow(a.width));
        uint32_t hi = lo + static_cast<uint32_t>(rng.nextBelow(a.width - lo));
        return Val{strfmt("bits(%s, %u, %u)", a.ref.c_str(), hi, lo), hi - lo + 1, false};
      }
      case 10: {  // pad
        uint32_t n = pickWidth(cap);
        return Val{strfmt("pad(%s, %u)", a.ref.c_str(), n), std::max(a.width, n), a.sgn};
      }
      case 11: {  // shl: result wa+n
        if (a.width >= cap) a = narrowTo(a, cap - 1);
        uint32_t n = static_cast<uint32_t>(rng.nextBelow(cap - a.width + 1));
        return Val{strfmt("shl(%s, %u)", a.ref.c_str(), n), a.width + n, a.sgn};
      }
      case 12: {  // shr: amounts past the width exercise the clamp
        uint32_t n = static_cast<uint32_t>(rng.nextBelow(a.width + 2));
        return Val{strfmt("shr(%s, %u)", a.ref.c_str(), n),
                   std::max<uint32_t>(a.width > n ? a.width - n : 0, 1), a.sgn};
      }
      case 13: {  // dshl: result wa + 2^wb - 1; keep the shift field narrow
        Val b = coerce(pick(), false);
        uint32_t sb = 1 + static_cast<uint32_t>(rng.nextBelow(3));  // 1..3 bits
        if (b.width > sb) {
          b = Val{strfmt("bits(%s, %u, 0)", b.ref.c_str(), sb - 1), sb, false};
        }
        uint32_t extra = (1u << b.width) - 1;
        if (a.width + extra > cap) a = narrowTo(a, cap - extra);
        return Val{strfmt("dshl(%s, %s)", a.ref.c_str(), b.ref.c_str()), a.width + extra,
                   a.sgn};
      }
      case 14: {  // dshr: shift amounts can exceed the operand width
        Val b = coerce(pick(), false);
        if (b.width > 7) b = Val{strfmt("bits(%s, 6, 0)", b.ref.c_str()), 7, false};
        return Val{strfmt("dshr(%s, %s)", a.ref.c_str(), b.ref.c_str()), a.width, a.sgn};
      }
      case 15:  // cvt: unsigned grows one bit
        if (!a.sgn && a.width >= cap) a = narrowTo(a, cap - 1);
        return Val{strfmt("cvt(%s)", a.ref.c_str()), a.sgn ? a.width : a.width + 1, true};
      case 16:  // neg
        if (a.width >= cap) a = narrowTo(a, cap - 1);
        return Val{strfmt("neg(%s)", a.ref.c_str()), a.width + 1, true};
      case 17: {  // head/tail
        if (a.width < 2) return makeExpr(depth + 1);
        uint32_t n = 1 + static_cast<uint32_t>(rng.nextBelow(a.width - 1));
        if (rng.nextBool()) return Val{strfmt("head(%s, %u)", a.ref.c_str(), n), n, false};
        return Val{strfmt("tail(%s, %u)", a.ref.c_str(), n), a.width - n, false};
      }
      case 18: {  // mux
        Val sel = pickOneBit();
        Val t = pick();
        Val f = coerce(pick(), t.sgn);
        return Val{strfmt("mux(%s, %s, %s)", sel.ref.c_str(), t.ref.c_str(), f.ref.c_str()),
                   std::max(t.width, f.width), t.sgn};
      }
      case 19: {  // validif
        Val c = pickOneBit();
        return Val{strfmt("validif(%s, %s)", c.ref.c_str(), a.ref.c_str()), a.width, a.sgn};
      }
      case 20:  // literal
        return randomLiteral();
      default:  // reinterpret cast for depth
        return Val{strfmt("%s(%s)", a.sgn ? "asUInt" : "asSInt", a.ref.c_str()), a.width,
                   !a.sgn};
    }
  }

  void emitExprNodes(uint32_t count) {
    for (uint32_t i = 0; i < count; i++) {
      Val v = makeExpr();
      emitNode(v.ref, v.width, v.sgn);
    }
  }
};

// A generated sub-module's interface, for instantiation by the top module.
struct ChildModule {
  std::string name;
  std::string text;  // full "  module N :" block
  bool registered = false;
  std::vector<std::pair<std::string, Val>> ins;   // port name -> width/sign
  std::vector<std::pair<std::string, Val>> outs;
};

ChildModule generateChild(Rng& rng, uint32_t index, bool wide) {
  ChildModule cm;
  cm.name = strfmt("Sub%u", index);
  cm.registered = rng.nextBool();
  ModGen g(rng, wide);

  std::string ports;
  if (cm.registered)
    ports += "    input clock : Clock\n    input reset : UInt<1>\n";
  uint32_t nIns = 1 + static_cast<uint32_t>(rng.nextBelow(3));
  for (uint32_t i = 0; i < nIns; i++) {
    uint32_t w = g.pickWidth(32);
    bool sgn = rng.nextChance(0.3);
    std::string pn = strfmt("i%u", i);
    ports += strfmt("    input %s : %s<%u>\n", pn.c_str(), sgn ? "SInt" : "UInt", w);
    g.pool.push_back(Val{pn, w, sgn});
    cm.ins.push_back({pn, Val{pn, w, sgn}});
  }

  std::vector<std::string> regNames;
  if (cm.registered) {
    uint32_t nRegs = 1 + static_cast<uint32_t>(rng.nextBelow(2));
    for (uint32_t r = 0; r < nRegs; r++) {
      std::string rn = strfmt("q%u", r);
      uint32_t w = g.pickWidth(32);
      bool sgn = rng.nextChance(0.3);
      const char* ty = sgn ? "SInt" : "UInt";
      if (rng.nextChance(0.7))
        g.body += strfmt("    reg %s : %s<%u>, clock with : (reset => (reset, %s<%u>(0)))\n",
                         rn.c_str(), ty, w, ty, w);
      else
        g.body += strfmt("    reg %s : %s<%u>, clock\n", rn.c_str(), ty, w);
      g.pool.push_back(Val{rn, w, sgn});
      regNames.push_back(rn);
    }
    g.emitExprNodes(4 + static_cast<uint32_t>(rng.nextBelow(5)));
    for (const std::string& rn : regNames) {
      for (const Val& v : g.pool)
        if (v.ref == rn) {
          Val next = g.fit(g.pick(), v.width, v.sgn);
          g.body += strfmt("    %s <= %s\n", rn.c_str(), next.ref.c_str());
          break;
        }
    }
  } else {
    g.emitExprNodes(4 + static_cast<uint32_t>(rng.nextBelow(5)));
  }

  uint32_t nOuts = 1 + static_cast<uint32_t>(rng.nextBelow(2));
  std::string outPorts, outConnects;
  for (uint32_t o = 0; o < nOuts; o++) {
    Val v = g.pick();
    v = g.narrowTo(v, 64);  // keep instance boundaries codegen-friendly
    std::string pn = strfmt("o%u", o);
    outPorts += strfmt("    output %s : %s<%u>\n", pn.c_str(), v.sgn ? "SInt" : "UInt",
                       v.width);
    outConnects += strfmt("    %s <= %s\n", pn.c_str(), v.ref.c_str());
    cm.outs.push_back({pn, Val{pn, v.width, v.sgn}});
  }

  cm.text = strfmt("  module %s :\n", cm.name.c_str()) + ports + outPorts + g.body +
            outConnects;
  return cm;
}

}  // namespace

std::string generateCircuit(uint64_t seed, const GenOptions& opts) {
  Rng rng(seed);
  ModGen g(rng, opts.allowWide);

  std::string ports = "    input clock : Clock\n    input reset : UInt<1>\n";
  g.pool.push_back(Val{"reset", 1, false});
  for (uint32_t i = 0; i < opts.numInputs; i++) {
    uint32_t w = g.pickWidth(std::min(g.cap, 64u));
    bool sgn = rng.nextChance(0.3);
    ports += strfmt("    input in%u : %s<%u>\n", i, sgn ? "SInt" : "UInt", w);
    g.pool.push_back(Val{strfmt("in%u", i), w, sgn});
  }

  // Registers first so combinational logic can read them; connects come
  // after the nodes (FIRRTL allows forward refs only through regs).
  struct RegDecl {
    std::string name;
    uint32_t width;
    bool sgn;
    int gate;  // 0 plain, 1 when, 2 when/else, 3 nested when
  };
  std::vector<RegDecl> regs;
  for (uint32_t r = 0; r < opts.numRegs; r++) {
    RegDecl rd;
    rd.name = strfmt("r%u", r);
    rd.width = g.pickWidth(std::min(g.cap, 64u));
    rd.sgn = rng.nextChance(0.3);
    rd.gate = static_cast<int>(rng.nextBelow(4));
    const char* ty = rd.sgn ? "SInt" : "UInt";
    if (rng.nextChance(0.7))
      g.body += strfmt("    reg %s : %s<%u>, clock with : (reset => (reset, %s<%u>(0)))\n",
                       rd.name.c_str(), ty, rd.width, ty, rd.width);
    else
      g.body += strfmt("    reg %s : %s<%u>, clock\n", rd.name.c_str(), ty, rd.width);
    g.pool.push_back(Val{rd.name, rd.width, rd.sgn});
    regs.push_back(rd);
  }

  // Sub-modules: generated with an independent pool, instantiated 1-2 times
  // each; their outputs feed back into the top-level pool.
  std::string childText;
  uint32_t instId = 0;
  if (opts.allowMultiModule && rng.nextChance(0.7)) {
    uint32_t nChildren = 1 + static_cast<uint32_t>(rng.nextBelow(2));
    for (uint32_t c = 0; c < nChildren; c++) {
      ChildModule cm = generateChild(rng, c, /*wide=*/false);
      childText += cm.text;
      uint32_t nInst = 1 + static_cast<uint32_t>(rng.nextBelow(2));
      for (uint32_t k = 0; k < nInst; k++) {
        std::string in = strfmt("u%u", instId++);
        g.body += strfmt("    inst %s of %s\n", in.c_str(), cm.name.c_str());
        if (cm.registered) {
          g.body += strfmt("    %s.clock <= clock\n", in.c_str());
          g.body += strfmt("    %s.reset <= reset\n", in.c_str());
        }
        for (const auto& [pn, pv] : cm.ins) {
          Val src = g.fit(g.pick(), pv.width, pv.sgn);
          g.body += strfmt("    %s.%s <= %s\n", in.c_str(), pn.c_str(), src.ref.c_str());
        }
        for (const auto& [pn, pv] : cm.outs)
          g.pool.push_back(Val{strfmt("%s.%s", in.c_str(), pn.c_str()), pv.width, pv.sgn});
      }
    }
  }

  // First tranche of combinational nodes.
  uint32_t firstHalf = opts.exprNodes / 2;
  g.emitExprNodes(firstHalf);

  // Memories.
  uint32_t memId = 0;
  if (opts.allowMems && rng.nextChance(0.7)) {
    uint32_t nMems = 1 + static_cast<uint32_t>(rng.nextBelow(2));
    for (uint32_t m = 0; m < nMems; m++) {
      std::string mn = strfmt("m%u", memId++);
      static const uint32_t depths[] = {4, 8, 16, 32};
      uint32_t depth = depths[rng.nextBelow(4)];
      uint32_t aw = depth == 4 ? 2 : depth == 8 ? 3 : depth == 16 ? 4 : 5;
      uint32_t dw = g.pickWidth(std::min(g.cap, 64u));
      uint32_t rlat = rng.nextBool() ? 1 : 0;
      g.body += strfmt(
          "    mem %s :\n"
          "      data-type => UInt<%u>\n"
          "      depth => %u\n"
          "      read-latency => %u\n"
          "      write-latency => 1\n"
          "      read-under-write => undefined\n"
          "      reader => r\n"
          "      writer => w\n",
          mn.c_str(), dw, depth, rlat);
      Val waddr = g.fit(g.pick(), aw, false);
      // Same-cycle read/write address aliasing with decent probability:
      // exercises read-under-write ordering across engines.
      Val raddr = rng.nextChance(0.35) ? waddr : g.fit(g.pick(), aw, false);
      Val ren = rng.nextChance(0.3) ? g.pickOneBit() : Val{"UInt<1>(1)", 1, false};
      Val wen = rng.nextChance(0.7) ? g.pickOneBit() : Val{"UInt<1>(1)", 1, false};
      Val wdata = g.fit(g.pick(), dw, false);
      g.body += strfmt("    %s.r.addr <= %s\n", mn.c_str(), raddr.ref.c_str());
      g.body += strfmt("    %s.r.en <= %s\n", mn.c_str(), ren.ref.c_str());
      g.body += strfmt("    %s.r.clk <= clock\n", mn.c_str());
      g.body += strfmt("    %s.w.addr <= %s\n", mn.c_str(), waddr.ref.c_str());
      g.body += strfmt("    %s.w.en <= %s\n", mn.c_str(), wen.ref.c_str());
      g.body += strfmt("    %s.w.clk <= clock\n", mn.c_str());
      g.body += strfmt("    %s.w.data <= %s\n", mn.c_str(), wdata.ref.c_str());
      g.body += strfmt("    %s.w.mask <= UInt<1>(1)\n", mn.c_str());
      g.pool.push_back(Val{strfmt("%s.r.data", mn.c_str()), dw, false});
    }
  }

  // Second tranche (consumes memory read data and instance outputs).
  g.emitExprNodes(opts.exprNodes - firstHalf);

  // Register next-value connects, possibly when-gated (nested gating
  // exercises when-expansion mux chains).
  for (const auto& rd : regs) {
    Val next = g.fit(g.pick(), rd.width, rd.sgn);
    switch (rd.gate) {
      case 0:
        g.body += strfmt("    %s <= %s\n", rd.name.c_str(), next.ref.c_str());
        break;
      case 1: {
        Val en = g.pickOneBit();
        g.body += strfmt("    when %s :\n      %s <= %s\n", en.ref.c_str(), rd.name.c_str(),
                         next.ref.c_str());
        break;
      }
      case 2: {
        Val en = g.pickOneBit();
        Val alt = g.fit(g.pick(), rd.width, rd.sgn);
        g.body += strfmt("    when %s :\n      %s <= %s\n    else :\n      %s <= %s\n",
                         en.ref.c_str(), rd.name.c_str(), next.ref.c_str(), rd.name.c_str(),
                         alt.ref.c_str());
        break;
      }
      default: {
        Val en1 = g.pickOneBit();
        Val en2 = g.pickOneBit();
        Val alt = g.fit(g.pick(), rd.width, rd.sgn);
        g.body += strfmt(
            "    when %s :\n      when %s :\n        %s <= %s\n      else :\n"
            "        %s <= %s\n",
            en1.ref.c_str(), en2.ref.c_str(), rd.name.c_str(), next.ref.c_str(),
            rd.name.c_str(), alt.ref.c_str());
        break;
      }
    }
  }

  // Optional printf: exercises the print-buffer comparison in the oracle.
  if (opts.allowPrints && rng.nextChance(0.25)) {
    Val en = g.pickOneBit();
    Val v1 = g.pick();
    Val v2 = g.pick();
    static const char* fmts[] = {"p %d %x\\n", "p %x %b\\n", "p %d %d\\n"};
    g.body += strfmt("    printf(clock, %s, \"%s\", %s, %s)\n", en.ref.c_str(),
                     fmts[rng.nextBelow(3)], v1.ref.c_str(), v2.ref.c_str());
  }

  // Outputs: several random picks plus every register, so the differential
  // oracle observes plenty of state.
  std::string outPorts, outConnects;
  uint32_t nOuts = 4;
  for (uint32_t o = 0; o < nOuts; o++) {
    Val v = g.pick();
    outPorts += strfmt("    output out%u : %s<%u>\n", o, v.sgn ? "SInt" : "UInt", v.width);
    outConnects += strfmt("    out%u <= %s\n", o, v.ref.c_str());
  }
  for (size_t r = 0; r < regs.size(); r++) {
    outPorts += strfmt("    output rout%zu : %s<%u>\n", r, regs[r].sgn ? "SInt" : "UInt",
                       regs[r].width);
    outConnects += strfmt("    rout%zu <= %s\n", r, regs[r].name.c_str());
  }

  return "circuit Fuzz :\n" + childText + "  module Fuzz :\n" + ports + outPorts + g.body +
         outConnects;
}

}  // namespace essent::fuzz
