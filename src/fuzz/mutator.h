// Mutation-based crash fuzzer for the front end and resource governance.
//
// Where the differential fuzzer (fuzzer.h) asks "do the five engines
// agree on well-formed circuits?", the mutate campaign asks "does the
// front end survive ARBITRARY bytes?". Each case takes a generated (valid)
// circuit, applies seeded byte- and token-level mutations, and pushes the
// result through the diag-collecting build path under resource-guard
// ceilings. The only acceptable outcomes are:
//   * the mutant still builds → a short guarded simulation must also run
//     cleanly;
//   * the mutant is rejected with structured diagnostics.
// An escaped C++ exception is counted as a crash and fails the campaign;
// a signal or sanitizer abort kills the process, which the CI job treats
// the same way. Never a hang: ceilings bound the work per case.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "support/resource_guard.h"

namespace essent::fuzz {

// Applies 1..maxMutations seeded mutations to `text`: byte flips, byte
// insertion/deletion, token duplication/deletion/swap, chunk splicing,
// truncation, and indentation scrambling. Deterministic in (text, seed).
std::string mutateText(const std::string& text, uint64_t seed, uint32_t maxMutations = 8);

struct MutateConfig {
  uint64_t seed = 1;
  uint64_t budget = 1000;      // number of mutated cases
  uint32_t maxMutations = 8;
  uint64_t cycles = 16;        // guarded sim cycles for mutants that build
  bool verbose = false;
  // Ceilings applied to every case; the defaults are deliberately tighter
  // than ResourceLimits' global defaults so a mutated depth/width cannot
  // stall the campaign on one case.
  support::ResourceLimits limits{200'000, 64ull << 20, 0, 10'000};
};

struct MutateSummary {
  uint64_t cases = 0;
  uint64_t built = 0;      // mutant still built and simulated cleanly
  uint64_t rejected = 0;   // mutant rejected with structured diagnostics
  uint64_t crashes = 0;    // escaped exception — always a bug
  // Order-sensitive digest over case outcomes; reruns must match.
  uint64_t digest = 0;

  bool failed() const { return crashes != 0; }
};

// Runs `config.budget` cases; crash details go to `log` (may be null).
MutateSummary runMutateCampaign(const MutateConfig& config, std::FILE* log);

}  // namespace essent::fuzz
