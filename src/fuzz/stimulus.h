// Deterministic input stimulus for differential fuzzing: a per-cycle table
// of values for every input port, with a text serialization so failing
// cases can be saved next to their .fir circuit and replayed byte-for-byte.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/sim_ir.h"

namespace essent::fuzz {

struct Stimulus {
  std::vector<std::string> inputs;           // input port names, in IR order
  std::vector<uint32_t> widths;              // matching declared widths
  std::vector<std::vector<BitVec>> cycles;   // cycles[c][i] drives inputs[i]

  size_t numCycles() const { return cycles.size(); }

  // Pokes cycle `c`'s values into `eng` (names resolved per engine, so the
  // same stimulus drives engines built from different-but-port-compatible
  // IRs). Ports absent from the engine are skipped.
  void apply(sim::Engine& eng, size_t c) const;

  // First `n` cycles (used by the shrinker).
  Stimulus prefix(size_t n) const;

  // Text form: comment header, `inputs` / `widths` lines, then one
  // whitespace-separated row of hex values per cycle.
  std::string serialize() const;
  // Inverse of serialize(); throws std::runtime_error on malformed input.
  static Stimulus parse(const std::string& text);
};

// Random stimulus for `ir`'s input ports. Cycle 0-1 hold reset (when an
// input named "reset" exists) at 1, later cycles at 0; every other input is
// fully random on cycle 0 and redrawn with probability `toggleP` per cycle
// (low toggle probabilities exercise the activity-skipping machinery).
Stimulus randomStimulus(const sim::SimIR& ir, uint64_t seed, size_t numCycles,
                        double toggleP);

}  // namespace essent::fuzz
