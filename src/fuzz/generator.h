// Seeded random FIRRTL circuit generator for differential fuzzing.
//
// Coverage goals (ISSUE: "registers, muxes, memories, all primops —
// including signed div/rem and dshl/dshr edge widths — multi-module
// instantiation, and resets"):
//  * every SimIR primop is reachable, with widths biased toward the 1 / 31 /
//    32 / 33 / 63 / 64 boundaries where word-level fast paths change shape;
//  * registers with and without reset, including when/else-gated connects;
//  * memories with read-latency 0 and 1, same-cycle read/write address
//    aliasing, and enable toggling;
//  * 0-2 combinational or registered sub-modules instantiated one or more
//    times each (exercises the flattening pass);
//  * optional printf side effects (exercises print-buffer comparison).
//
// When `allowWide` is false every intermediate signal is capped at 64 bits,
// which keeps the circuit eligible for the compiled codegen engine; wide
// circuits intentionally exceed 64 bits to exercise the BitVec slow path.
#pragma once

#include <cstdint>
#include <string>

namespace essent::fuzz {

struct GenOptions {
  bool allowWide = false;       // permit >64-bit intermediates (no codegen)
  bool allowMems = true;
  bool allowMultiModule = true;
  bool allowPrints = true;
  uint32_t numInputs = 4;       // besides clock/reset
  uint32_t numRegs = 4;
  uint32_t exprNodes = 24;      // combinational nodes in the top module
};

// Deterministic: the same (seed, opts) always yields the same text.
std::string generateCircuit(uint64_t seed, const GenOptions& opts = {});

}  // namespace essent::fuzz
