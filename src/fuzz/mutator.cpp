#include "fuzz/mutator.h"

#include <algorithm>
#include <vector>

#include "diag/diag.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "sim/builder.h"
#include "sim/full_cycle.h"
#include "support/rng.h"

namespace essent::fuzz {

namespace {

// Rough tokenization for token-level mutations: runs of identifier chars,
// runs of digits, or single punctuation bytes. Whitespace separates.
std::vector<std::string> splitTokens(const std::string& text) {
  std::vector<std::string> toks;
  size_t i = 0;
  auto isWord = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_' || c == '-';
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == ' ' || c == '\n' || c == '\t' || c == '\r') {
      size_t start = i;
      while (i < text.size() && (text[i] == ' ' || text[i] == '\n' || text[i] == '\t' ||
                                 text[i] == '\r'))
        i++;
      toks.push_back(text.substr(start, i - start));
    } else if (isWord(c)) {
      size_t start = i;
      while (i < text.size() && isWord(text[i])) i++;
      toks.push_back(text.substr(start, i - start));
    } else {
      toks.push_back(std::string(1, c));
      i++;
    }
  }
  return toks;
}

std::string joinTokens(const std::vector<std::string>& toks) {
  std::string out;
  for (const auto& t : toks) out += t;
  return out;
}

}  // namespace

std::string mutateText(const std::string& text, uint64_t seed, uint32_t maxMutations) {
  Rng rng(seed);
  std::string cur = text;
  uint32_t count = static_cast<uint32_t>(rng.nextRange(1, maxMutations == 0 ? 1 : maxMutations));
  for (uint32_t m = 0; m < count; m++) {
    if (cur.empty()) cur = "x";
    switch (rng.nextBelow(9)) {
      case 0: {  // flip one byte to an arbitrary printable-or-not value
        size_t pos = rng.nextBelow(cur.size());
        cur[pos] = static_cast<char>(rng.nextBelow(256));
        break;
      }
      case 1: {  // insert a random byte
        size_t pos = rng.nextBelow(cur.size() + 1);
        cur.insert(pos, 1, static_cast<char>(rng.nextBelow(256)));
        break;
      }
      case 2: {  // delete a byte span
        size_t pos = rng.nextBelow(cur.size());
        size_t len = std::min(cur.size() - pos, rng.nextRange(1, 16));
        cur.erase(pos, len);
        break;
      }
      case 3: {  // duplicate a token
        auto toks = splitTokens(cur);
        if (toks.empty()) break;
        size_t t = rng.nextBelow(toks.size());
        toks.insert(toks.begin() + static_cast<ptrdiff_t>(t), toks[t]);
        cur = joinTokens(toks);
        break;
      }
      case 4: {  // delete a token
        auto toks = splitTokens(cur);
        if (toks.empty()) break;
        toks.erase(toks.begin() + static_cast<ptrdiff_t>(rng.nextBelow(toks.size())));
        cur = joinTokens(toks);
        break;
      }
      case 5: {  // swap two tokens
        auto toks = splitTokens(cur);
        if (toks.size() < 2) break;
        size_t a = rng.nextBelow(toks.size()), b = rng.nextBelow(toks.size());
        std::swap(toks[a], toks[b]);
        cur = joinTokens(toks);
        break;
      }
      case 6: {  // splice a chunk of the text over another position
        size_t from = rng.nextBelow(cur.size());
        size_t len = std::min(cur.size() - from, rng.nextRange(1, 64));
        size_t to = rng.nextBelow(cur.size() + 1);
        cur.insert(to, cur.substr(from, len));
        break;
      }
      case 7: {  // truncate
        cur.resize(rng.nextBelow(cur.size()) + 1);
        break;
      }
      case 8: {  // scramble one line's indentation (tabs included on purpose)
        size_t lineStart = rng.nextBelow(cur.size());
        while (lineStart > 0 && cur[lineStart - 1] != '\n') lineStart--;
        std::string pad;
        for (uint64_t k = rng.nextBelow(12); k > 0; k--)
          pad += rng.nextBool() ? '\t' : ' ';
        size_t oldEnd = lineStart;
        while (oldEnd < cur.size() && (cur[oldEnd] == ' ' || cur[oldEnd] == '\t')) oldEnd++;
        cur.replace(lineStart, oldEnd - lineStart, pad);
        break;
      }
    }
  }
  return cur;
}

MutateSummary runMutateCampaign(const MutateConfig& config, std::FILE* log) {
  MutateSummary sum;
  for (uint64_t i = 0; i < config.budget; i++) {
    uint64_t caseSeed = caseSeedFor(config.seed, i);
    Rng rng(caseSeed);
    GenOptions gen;
    gen.exprNodes = static_cast<uint32_t>(rng.nextRange(4, 16));
    std::string base = generateCircuit(rng.next(), gen);
    std::string mutant = mutateText(base, rng.next(), config.maxMutations);

    sum.cases++;
    uint64_t outcome = 0;
    try {
      diag::DiagEngine de;
      de.setSource("<mutant>", mutant);
      auto ir = sim::buildFromFirrtlDiag(mutant, {}, de, config.limits);
      if (!ir.has_value()) {
        if (!de.hasErrors())
          throw std::logic_error("build failed without reporting any diagnostic");
        sum.rejected++;
        outcome = 1;
      } else {
        // Survivor: a short guarded simulation must also be clean. Engine
        // exceptions here (combinational loops were already rejected at
        // build) would be front-end bugs.
        sim::FullCycleEngine eng(sim::CompiledDesign::compile(*ir));
        support::ResourceGuard guard(config.limits);
        for (uint64_t c = 0; c < config.cycles; c++) {
          for (int32_t in : ir->inputs)
            eng.poke(ir->signals[static_cast<size_t>(in)].name, rng.next());
          eng.tick();
          guard.checkDeadline();
          if (eng.stopped()) break;
        }
        sum.built++;
        outcome = 2;
      }
    } catch (const support::ResourceExhausted&) {
      // Ceiling hit mid-simulation: bounded, structured — a rejection.
      sum.rejected++;
      outcome = 3;
    } catch (const std::exception& e) {
      sum.crashes++;
      outcome = 4;
      if (log) {
        std::fprintf(log, "mutate case %llu: CRASH: %s\n",
                     static_cast<unsigned long long>(caseSeed), e.what());
        std::fprintf(log, "---- mutant ----\n%s\n---- end ----\n", mutant.c_str());
      }
    }
    sum.digest = (sum.digest * 1099511628211ull) ^ caseSeed ^ (outcome << 56);
    if (config.verbose && log && (i + 1) % 500 == 0)
      std::fprintf(log, "mutate: %llu/%llu cases, %llu crashes\n",
                   static_cast<unsigned long long>(i + 1),
                   static_cast<unsigned long long>(config.budget),
                   static_cast<unsigned long long>(sum.crashes));
  }
  if (log)
    std::fprintf(log,
                 "mutate campaign: %llu cases, %llu built, %llu rejected, %llu crashes "
                 "(digest %016llx)\n",
                 static_cast<unsigned long long>(sum.cases),
                 static_cast<unsigned long long>(sum.built),
                 static_cast<unsigned long long>(sum.rejected),
                 static_cast<unsigned long long>(sum.crashes),
                 static_cast<unsigned long long>(sum.digest));
  return sum;
}

}  // namespace essent::fuzz
