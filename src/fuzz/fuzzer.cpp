#include "fuzz/fuzzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "fuzz/generator.h"
#include "fuzz/shrinker.h"
#include "sim/builder.h"
#include "support/rng.h"
#include "support/strutil.h"

namespace essent::fuzz {

namespace {

void mix(uint64_t& digest, uint64_t v) {
  digest ^= v + 0x9e3779b97f4a7c15ULL + (digest << 6) + (digest >> 2);
}

bool hasKind(const std::vector<EngineKind>& ks, EngineKind k) {
  return std::find(ks.begin(), ks.end(), k) != ks.end();
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  f << content;
}

// Saves fail_<seed>.fir/.stim/.report.txt (+ .min.* when shrunk).
void saveFailure(const std::string& dirPath, const CaseResult& cr, std::FILE* log) {
  std::error_code ec;
  std::filesystem::create_directories(dirPath, ec);
  std::string base = dirPath + strfmt("/fail_%llu",
                                      static_cast<unsigned long long>(cr.caseSeed));
  writeFile(base + ".fir", cr.fir);
  writeFile(base + ".stim", cr.stim.serialize());
  std::string report = strfmt("case seed: %llu\nwide: %d\ncodegen checked: %d\n",
                              static_cast<unsigned long long>(cr.caseSeed), cr.wide ? 1 : 0,
                              cr.codegenChecked ? 1 : 0);
  if (!cr.buildError.empty()) report += "build error: " + cr.buildError + "\n";
  if (cr.divergence) report += cr.divergence->describe() + "\n";
  if (!cr.shrunkFir.empty()) {
    writeFile(base + ".min.fir", cr.shrunkFir);
    if (cr.shrunkStim) writeFile(base + ".min.stim", cr.shrunkStim->serialize());
    report += strfmt("shrunk: %zu -> %zu bytes, %zu -> %zu cycles\n", cr.fir.size(),
                     cr.shrunkFir.size(), cr.stim.numCycles(),
                     cr.shrunkStim ? cr.shrunkStim->numCycles() : cr.stim.numCycles());
  }
  writeFile(base + ".report.txt", report);
  if (log)
    std::fprintf(log, "  saved reproducer: %s.fir (+.stim, .report.txt)\n", base.c_str());
}

}  // namespace

uint64_t caseSeedFor(uint64_t campaignSeed, uint64_t index) {
  // One SplitMix64 step over a combined state: avoids correlated streams
  // between adjacent indices while staying trivially replayable.
  Rng rng(campaignSeed ^ (index * 0x9e3779b97f4a7c15ULL));
  return rng.next();
}

CaseResult runFuzzCase(uint64_t caseSeed, const FuzzConfig& config, std::FILE* log) {
  CaseResult cr;
  cr.caseSeed = caseSeed;

  // Every shape decision comes from the case seed alone, so --replay with
  // just this seed rebuilds the identical case.
  Rng rng(caseSeed);
  GenOptions gen;
  cr.wide = config.wideEvery != 0 && rng.nextChance(1.0 / config.wideEvery);
  gen.allowWide = cr.wide;
  gen.numInputs = 2 + static_cast<uint32_t>(rng.nextBelow(4));
  gen.numRegs = 2 + static_cast<uint32_t>(rng.nextBelow(5));
  gen.exprNodes = 12 + static_cast<uint32_t>(rng.nextBelow(24));
  static const double kToggles[] = {1.0, 0.5, 0.2, 0.05};
  double toggleP = kToggles[rng.nextBelow(4)];
  bool withCodegen = !cr.wide && hasKind(config.engines, EngineKind::Codegen) &&
                     config.codegenEvery != 0 &&
                     rng.nextChance(1.0 / config.codegenEvery);
  uint64_t stimSeed = rng.next();

  cr.fir = generateCircuit(caseSeed, gen);

  OracleOptions oo;
  oo.engines = config.engines;
  if (!withCodegen)
    oo.engines.erase(std::remove(oo.engines.begin(), oo.engines.end(), EngineKind::Codegen),
                     oo.engines.end());
  oo.parThreads = config.parThreads;
  oo.subprocessTimeoutMs = config.subprocessTimeoutMs;

  // Stimulus needs the built IR's input list; build errors are themselves
  // fuzz findings (the generator emits only well-formed FIRRTL).
  sim::SimIR ir;
  try {
    ir = sim::buildFromFirrtl(cr.fir, sim::BuildOptions{});
  } catch (const std::exception& e) {
    cr.buildError = e.what();
    if (log)
      std::fprintf(log, "case %llu: BUILD ERROR: %s\n",
                   static_cast<unsigned long long>(caseSeed), e.what());
    return cr;
  }
  cr.stim = randomStimulus(ir, stimSeed, config.cycles, toggleP);

  OracleResult result = runOracle(cr.fir, cr.stim, oo);
  cr.codegenChecked = withCodegen && !result.codegenSkipped;
  cr.codegenSkipped = result.codegenSkipped;
  if (!result.buildError.empty()) {
    cr.buildError = result.buildError;
    return cr;
  }
  cr.divergence = result.divergence;

  if (cr.divergence && config.shrinkFailures) {
    // "Still failing" = same engine pair and divergence kind; the cycle and
    // values may legitimately move as the circuit shrinks.
    Divergence orig = *cr.divergence;
    FailPredicate pred = [&](const std::string& fir, const Stimulus& stim) {
      OracleResult r = runOracle(fir, stim, oo);
      return r.ran && r.divergence && r.divergence->kind == orig.kind &&
             r.divergence->engineA == orig.engineA && r.divergence->engineB == orig.engineB;
    };
    ShrinkOptions so;
    so.maxAttempts = config.shrinkAttempts;
    ShrinkResult sr = shrinkCase(cr.fir, cr.stim, pred, so);
    cr.shrunkFir = sr.fir;
    cr.shrunkStim = sr.stim;
    if (log)
      std::fprintf(log, "  shrink: %zu -> %zu bytes, %zu -> %zu cycles (%u attempts)\n",
                   cr.fir.size(), sr.fir.size(), cr.stim.numCycles(), sr.stim.numCycles(),
                   sr.attempts);
  }
  return cr;
}

CaseResult replayCase(const std::string& fir, const Stimulus& stim,
                      const FuzzConfig& config, std::FILE* log) {
  CaseResult cr;
  cr.fir = fir;
  cr.stim = stim;
  OracleOptions oo;
  oo.engines = config.engines;
  oo.parThreads = config.parThreads;
  oo.subprocessTimeoutMs = config.subprocessTimeoutMs;
  OracleResult result = runOracle(fir, stim, oo);
  cr.codegenChecked = hasKind(oo.engines, EngineKind::Codegen) && !result.codegenSkipped;
  cr.codegenSkipped = result.codegenSkipped;
  if (!result.buildError.empty())
    cr.buildError = result.buildError;
  else
    cr.divergence = result.divergence;
  if (log) {
    if (!cr.failed())
      std::fprintf(log, "replay: engines agree\n");
    else if (!cr.buildError.empty())
      std::fprintf(log, "replay: BUILD ERROR: %s\n", cr.buildError.c_str());
    else
      std::fprintf(log, "replay: DIVERGENCE\n%s\n", cr.divergence->describe().c_str());
  }
  return cr;
}

FuzzSummary runFuzzCampaign(const FuzzConfig& config, std::FILE* log) {
  FuzzSummary sum;
  for (uint64_t i = 0; i < config.budget; i++) {
    uint64_t caseSeed = caseSeedFor(config.seed, i);
    CaseResult cr = runFuzzCase(caseSeed, config, config.verbose ? log : nullptr);
    sum.cases++;
    if (cr.codegenChecked) sum.codegenChecked++;
    if (cr.codegenSkipped) sum.codegenSkipped++;
    mix(sum.digest, caseSeed);
    mix(sum.digest, cr.failed() ? 1 : 0);
    if (cr.divergence) mix(sum.digest, static_cast<uint64_t>(cr.divergence->kind));
    if (cr.failed()) {
      sum.failures++;
      sum.failingSeeds.push_back(caseSeed);
      if (log) {
        std::fprintf(log, "case %llu/%llu seed=%llu: FAIL\n",
                     static_cast<unsigned long long>(i + 1),
                     static_cast<unsigned long long>(config.budget),
                     static_cast<unsigned long long>(caseSeed));
        if (!cr.buildError.empty())
          std::fprintf(log, "  build error: %s\n", cr.buildError.c_str());
        if (cr.divergence) std::fprintf(log, "  %s\n", cr.divergence->describe().c_str());
      }
      if (!config.corpusDir.empty()) saveFailure(config.corpusDir, cr, log);
    } else if (log && config.verbose) {
      std::fprintf(log, "case %llu/%llu seed=%llu: ok%s\n",
                   static_cast<unsigned long long>(i + 1),
                   static_cast<unsigned long long>(config.budget),
                   static_cast<unsigned long long>(caseSeed),
                   cr.codegenChecked ? " (codegen)" : "");
    }
  }
  if (log)
    std::fprintf(log,
                 "fuzz campaign: %llu cases, %llu failures, %llu codegen-checked "
                 "(%llu skipped), digest %016llx\n",
                 static_cast<unsigned long long>(sum.cases),
                 static_cast<unsigned long long>(sum.failures),
                 static_cast<unsigned long long>(sum.codegenChecked),
                 static_cast<unsigned long long>(sum.codegenSkipped),
                 static_cast<unsigned long long>(sum.digest));
  return sum;
}

}  // namespace essent::fuzz
