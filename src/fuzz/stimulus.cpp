#include "fuzz/stimulus.h"

#include <algorithm>
#include <stdexcept>

#include "support/rng.h"
#include "support/strutil.h"

namespace essent::fuzz {

void Stimulus::apply(sim::Engine& eng, size_t c) const {
  if (c >= cycles.size()) return;
  const auto& row = cycles[c];
  for (size_t i = 0; i < inputs.size(); i++) {
    if (eng.ir().findSignal(inputs[i]) < 0) continue;
    eng.pokeBV(inputs[i], row[i]);
  }
}

Stimulus Stimulus::prefix(size_t n) const {
  Stimulus s;
  s.inputs = inputs;
  s.widths = widths;
  s.cycles.assign(cycles.begin(), cycles.begin() + std::min(n, cycles.size()));
  return s;
}

std::string Stimulus::serialize() const {
  std::string out = "# essent-fuzz stimulus v1\n";
  out += "inputs";
  for (const auto& n : inputs) out += " " + n;
  out += "\nwidths";
  for (uint32_t w : widths) out += strfmt(" %u", w);
  out += "\n";
  for (const auto& row : cycles) {
    for (size_t i = 0; i < row.size(); i++) {
      if (i) out += " ";
      out += row[i].toHexString();
    }
    out += "\n";
  }
  return out;
}

Stimulus Stimulus::parse(const std::string& text) {
  Stimulus s;
  bool haveInputs = false, haveWidths = false;
  for (const std::string& raw : splitString(text, '\n')) {
    std::string line = trimString(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tok;
    for (const auto& t : splitString(line, ' '))
      if (!trimString(t).empty()) tok.push_back(trimString(t));
    if (tok.empty()) continue;
    if (tok[0] == "inputs") {
      s.inputs.assign(tok.begin() + 1, tok.end());
      haveInputs = true;
    } else if (tok[0] == "widths") {
      for (size_t i = 1; i < tok.size(); i++)
        s.widths.push_back(static_cast<uint32_t>(std::stoul(tok[i])));
      haveWidths = true;
    } else {
      if (!haveInputs || !haveWidths || s.widths.size() != s.inputs.size())
        throw std::runtime_error("stimulus: data row before inputs/widths header");
      if (tok.size() != s.inputs.size())
        throw std::runtime_error(strfmt(
            "stimulus: row has %zu values, expected %zu", tok.size(), s.inputs.size()));
      std::vector<BitVec> row;
      for (size_t i = 0; i < tok.size(); i++)
        row.push_back(BitVec::fromHexString(s.widths[i], tok[i]));
      s.cycles.push_back(std::move(row));
    }
  }
  if (!haveInputs || !haveWidths)
    throw std::runtime_error("stimulus: missing inputs/widths header");
  return s;
}

namespace {

BitVec randomBits(Rng& rng, uint32_t width) {
  BitVec v(width);
  for (size_t w = 0; w < v.wordCount(); w++) v.data()[w] = rng.next();
  v.maskToWidth();
  return v;
}

}  // namespace

Stimulus randomStimulus(const sim::SimIR& ir, uint64_t seed, size_t numCycles,
                        double toggleP) {
  Rng rng(seed);
  Stimulus s;
  size_t resetIdx = SIZE_MAX;
  for (int32_t in : ir.inputs) {
    const sim::Signal& sig = ir.signals[static_cast<size_t>(in)];
    if (sig.name == "reset") resetIdx = s.inputs.size();
    s.inputs.push_back(sig.name);
    s.widths.push_back(sig.width);
  }
  std::vector<BitVec> row;
  for (uint32_t w : s.widths) row.push_back(randomBits(rng, w));
  for (size_t c = 0; c < numCycles; c++) {
    if (c > 0)
      for (size_t i = 0; i < row.size(); i++)
        if (i != resetIdx && rng.nextChance(toggleP)) row[i] = randomBits(rng, s.widths[i]);
    if (resetIdx != SIZE_MAX) row[resetIdx] = BitVec::fromU64(s.widths[resetIdx], c < 2 ? 1 : 0);
    s.cycles.push_back(row);
  }
  return s;
}

}  // namespace essent::fuzz
