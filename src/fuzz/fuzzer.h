// Fuzz campaign driver: generates seeded circuits + stimulus, runs the
// differential oracle, shrinks failures, and saves reproducers to a corpus
// directory.
//
// Determinism contract: every per-case decision (circuit shape, stimulus,
// whether the case is wide or includes the compiled engine) derives from a
// single 64-bit case seed, which itself derives from (campaign seed, case
// index). `essent-fuzz --replay <caseSeed>` therefore reproduces any case
// from any campaign exactly, without re-running the cases before it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/oracle.h"

namespace essent::fuzz {

struct FuzzConfig {
  uint64_t seed = 1;
  uint64_t budget = 100;       // number of cases
  uint64_t cycles = 80;        // stimulus length per case
  std::vector<EngineKind> engines = allEngineKinds();
  unsigned parThreads = 2;
  // The compiled engine costs a host-compiler invocation per case, so only
  // every Nth case (seed-derived, deterministic) includes it; 0 disables.
  uint32_t codegenEvery = 10;
  // Every Nth case allows >64-bit signals (never codegen-eligible); 0
  // disables wide circuits.
  uint32_t wideEvery = 7;
  std::string corpusDir;       // failing cases saved here when non-empty
  bool shrinkFailures = true;
  uint32_t shrinkAttempts = 400;
  bool verbose = false;
  // Watchdog for every codegen compile/run subprocess — applied to the
  // initial oracle run AND to each shrink attempt's re-run, so a circuit
  // that compiles into a hanging simulator can never wedge a campaign.
  // 0 disables (not recommended).
  int64_t subprocessTimeoutMs = 60'000;
};

struct CaseResult {
  uint64_t caseSeed = 0;
  bool wide = false;
  bool codegenChecked = false;
  bool codegenSkipped = false;
  std::string buildError;          // generator produced an unbuildable circuit
  std::optional<Divergence> divergence;
  std::string fir;                 // populated on failure
  Stimulus stim;
  std::string shrunkFir;           // populated when shrinking ran
  std::optional<Stimulus> shrunkStim;

  bool failed() const { return divergence.has_value() || !buildError.empty(); }
};

struct FuzzSummary {
  uint64_t cases = 0;
  uint64_t failures = 0;
  uint64_t codegenChecked = 0;
  uint64_t codegenSkipped = 0;
  std::vector<uint64_t> failingSeeds;
  // Order-sensitive digest over every case's seed and verdict: two runs of
  // the same campaign must produce identical digests.
  uint64_t digest = 0;

  bool failed() const { return failures != 0; }
};

// The case seed for index `i` of a campaign (exposed for --replay tooling).
uint64_t caseSeedFor(uint64_t campaignSeed, uint64_t index);

// Runs a single case; `log` may be null.
CaseResult runFuzzCase(uint64_t caseSeed, const FuzzConfig& config, std::FILE* log);

// Runs `config.budget` cases. Progress and failure reports go to `log`
// (may be null); failing cases are saved under config.corpusDir.
FuzzSummary runFuzzCampaign(const FuzzConfig& config, std::FILE* log);

// Re-checks a saved reproducer (.fir + stimulus) through the oracle.
CaseResult replayCase(const std::string& fir, const Stimulus& stim,
                      const FuzzConfig& config, std::FILE* log);

}  // namespace essent::fuzz
