#include "fuzz/shrinker.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "support/strutil.h"

namespace essent::fuzz {

namespace {

struct Budget {
  uint32_t remaining;
  bool spent() const { return remaining == 0; }
  bool take() {
    if (remaining == 0) return false;
    remaining--;
    return true;
  }
};

std::string joinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) out += l + "\n";
  return out;
}

// Classic ddmin over circuit lines: try dropping chunks of decreasing size;
// any candidate that fails to parse/build simply fails the predicate and is
// rejected. Returns true when at least one chunk was removed.
bool ddminLines(std::vector<std::string>& lines, const Stimulus& stim,
                const FailPredicate& stillFails, Budget& budget) {
  bool progress = false;
  size_t chunk = std::max<size_t>(lines.size() / 2, 1);
  while (chunk >= 1 && !budget.spent()) {
    bool removedAny = false;
    for (size_t start = 0; start < lines.size() && !budget.spent();) {
      size_t end = std::min(start + chunk, lines.size());
      std::vector<std::string> candidate;
      candidate.reserve(lines.size() - (end - start));
      candidate.insert(candidate.end(), lines.begin(), lines.begin() + start);
      candidate.insert(candidate.end(), lines.begin() + end, lines.end());
      if (budget.take() && stillFails(joinLines(candidate), stim)) {
        lines = std::move(candidate);
        removedAny = progress = true;
        // keep `start` in place: the next chunk slid into this position
      } else {
        start = end;
      }
    }
    if (chunk == 1 && !removedAny) break;
    if (!removedAny) chunk /= 2;
  }
  return progress;
}

// Smallest failing prefix of the stimulus (failures are usually monotone in
// cycle count; when they are not, the full stimulus is kept).
bool shrinkStimulusPrefix(const std::string& fir, Stimulus& stim,
                          const FailPredicate& stillFails, Budget& budget) {
  if (stim.numCycles() <= 1) return false;
  // Exponential probe up from 1, then binary search the boundary.
  size_t lo = 1, hi = stim.numCycles();
  size_t probe = 1;
  bool found = false;
  while (probe < hi && !budget.spent()) {
    if (budget.take() && stillFails(fir, stim.prefix(probe))) {
      hi = probe;
      found = true;
      break;
    }
    lo = probe + 1;
    probe *= 2;
  }
  if (!found) {
    // Full length is the only known-failing prefix.
    if (lo >= stim.numCycles()) return false;
  }
  while (lo < hi && !budget.spent()) {
    size_t mid = lo + (hi - lo) / 2;
    if (budget.take() && stillFails(fir, stim.prefix(mid)))
      hi = mid;
    else
      lo = mid + 1;
  }
  if (hi < stim.numCycles()) {
    stim = stim.prefix(hi);
    return true;
  }
  return false;
}

// Narrows the circuit by halving declared width literals: every distinct
// "<W>" with W > 8 becomes "<W/2>" (a global substitution keeps the circuit
// width-consistent often enough to be worth trying).
bool narrowWidthLiterals(std::string& fir, Stimulus& stim,
                         const FailPredicate& stillFails, Budget& budget) {
  std::set<uint32_t, std::greater<uint32_t>> widths;
  for (size_t i = 0; i + 1 < fir.size(); i++) {
    if (fir[i] != '<') continue;
    size_t j = i + 1;
    while (j < fir.size() && isdigit(static_cast<unsigned char>(fir[j]))) j++;
    if (j > i + 1 && j < fir.size() && fir[j] == '>') {
      uint32_t w = static_cast<uint32_t>(std::stoul(fir.substr(i + 1, j - i - 1)));
      if (w > 8) widths.insert(w);
    }
  }
  bool progress = false;
  for (uint32_t w : widths) {
    if (budget.spent()) break;
    std::string from = strfmt("<%u>", w);
    std::string to = strfmt("<%u>", w / 2);
    std::string candidate = fir;
    size_t pos = 0;
    while ((pos = candidate.find(from, pos)) != std::string::npos) {
      candidate.replace(pos, from.size(), to);
      pos += to.size();
    }
    // Stimulus widths must track the circuit's input declarations, so this
    // transformation only applies when the inputs re-parse compatibly;
    // easiest is to re-derive widths by clamping the existing rows.
    Stimulus narrowed = stim;
    for (size_t i = 0; i < narrowed.widths.size(); i++) {
      if (narrowed.widths[i] != w) continue;
      narrowed.widths[i] = w / 2;
      for (auto& row : narrowed.cycles) {
        BitVec clipped(w / 2);
        for (size_t word = 0; word < clipped.wordCount(); word++)
          clipped.data()[word] = row[i].word(word);
        clipped.maskToWidth();
        row[i] = clipped;
      }
    }
    if (budget.take() && stillFails(candidate, narrowed)) {
      fir = std::move(candidate);
      stim = std::move(narrowed);  // commit only alongside the circuit change
      progress = true;
    }
  }
  return progress;
}

// Zeroes whole input columns (a constant-0 input reads much better in a
// regression test than random hex).
bool zeroInputColumns(const std::string& fir, Stimulus& stim,
                      const FailPredicate& stillFails, Budget& budget) {
  bool progress = false;
  for (size_t i = 0; i < stim.inputs.size() && !budget.spent(); i++) {
    if (stim.inputs[i] == "reset") continue;
    bool alreadyZero = true;
    for (const auto& row : stim.cycles) alreadyZero = alreadyZero && row[i].isZero();
    if (alreadyZero) continue;
    Stimulus candidate = stim;
    for (auto& row : candidate.cycles) row[i] = BitVec(stim.widths[i]);
    if (budget.take() && stillFails(fir, candidate)) {
      stim = std::move(candidate);
      progress = true;
    }
  }
  return progress;
}

}  // namespace

ShrinkResult shrinkCase(const std::string& fir, const Stimulus& stim,
                        const FailPredicate& stillFails, const ShrinkOptions& opts) {
  ShrinkResult r;
  r.fir = fir;
  r.stim = stim;
  Budget budget{opts.maxAttempts};

  bool progress = true;
  while (progress && !budget.spent()) {
    progress = false;
    r.rounds++;
    std::vector<std::string> lines = splitString(r.fir, '\n');
    while (!lines.empty() && trimString(lines.back()).empty()) lines.pop_back();
    if (ddminLines(lines, r.stim, stillFails, budget)) {
      r.fir = joinLines(lines);
      progress = true;
    }
    if (opts.shrinkStimulus && shrinkStimulusPrefix(r.fir, r.stim, stillFails, budget))
      progress = true;
    if (opts.shrinkStimulus && zeroInputColumns(r.fir, r.stim, stillFails, budget))
      progress = true;
    if (opts.narrowWidths && narrowWidthLiterals(r.fir, r.stim, stillFails, budget))
      progress = true;
  }
  r.attempts = opts.maxAttempts - budget.remaining;
  return r;
}

}  // namespace essent::fuzz
