// Delta-debugging shrinker for failing fuzz cases.
//
// Given a circuit + stimulus that a predicate declares "still failing", the
// shrinker searches for a smaller reproducer:
//   1. line-level ddmin over the circuit text (drops statement runs and
//      whole modules; candidates that no longer parse/build are rejected by
//      the predicate automatically);
//   2. stimulus prefix minimization (shortest failing prefix, found by
//      scan-from-front);
//   3. width-literal narrowing (halving the distinct <W> literals);
//   4. input-column zeroing (constant-0 columns simplify the reproducer).
// Rounds repeat until a full pass makes no progress or the attempt budget
// is exhausted. The result is always itself failing under the predicate.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "fuzz/stimulus.h"

namespace essent::fuzz {

// Returns true when (circuit, stimulus) still reproduces the failure being
// chased. Must be deterministic.
using FailPredicate = std::function<bool(const std::string&, const Stimulus&)>;

struct ShrinkOptions {
  uint32_t maxAttempts = 800;  // predicate evaluations across all rounds
  bool shrinkStimulus = true;
  bool narrowWidths = true;
};

struct ShrinkResult {
  std::string fir;
  Stimulus stim;
  uint32_t attempts = 0;  // predicate evaluations consumed
  uint32_t rounds = 0;
};

ShrinkResult shrinkCase(const std::string& fir, const Stimulus& stim,
                        const FailPredicate& stillFails, const ShrinkOptions& opts = {});

}  // namespace essent::fuzz
