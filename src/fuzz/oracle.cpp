#include "fuzz/oracle.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <unordered_map>

#include "codegen/emitter.h"
#include "core/activity_engine.h"
#include "core/parallel_engine.h"
#include "sim/builder.h"
#include "sim/event_driven.h"
#include "sim/full_cycle.h"
#include "support/strutil.h"
#include "support/subprocess.h"
#include "support/tempdir.h"

namespace essent::fuzz {

namespace {

const char* divKindName(Divergence::Kind k) {
  switch (k) {
    case Divergence::Kind::ValueMismatch: return "value mismatch";
    case Divergence::Kind::StopMismatch: return "stop mismatch";
    case Divergence::Kind::PrintMismatch: return "printf mismatch";
    case Divergence::Kind::MemMismatch: return "memory mismatch";
    case Divergence::Kind::EngineException: return "engine exception";
    case Divergence::Kind::CompileFailure: return "compile failure";
    case Divergence::Kind::Timeout: return "subprocess timeout";
  }
  return "?";
}

bool comparableKind(sim::SigKind k) {
  return k == sim::SigKind::Output || k == sim::SigKind::Register ||
         k == sim::SigKind::Node;
}

// printf buffers are compared line-by-line so in-process accumulation and
// captured stdout agree on trailing-newline handling.
std::vector<std::string> printLines(const std::string& buf) {
  std::vector<std::string> lines = splitString(buf, '\n');
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

std::string truncated(const std::string& s, size_t n = 400) {
  if (s.size() <= n) return s;
  return s.substr(0, n) + strfmt("... (%zu bytes total)", s.size());
}

}  // namespace

std::string Divergence::describe() const {
  std::string s = strfmt("%s between %s and %s", divKindName(kind), engineA.c_str(),
                         engineB.c_str());
  switch (kind) {
    case Kind::ValueMismatch:
    case Kind::MemMismatch:
      s += strfmt(" at cycle %llu: %s = 0x%s vs 0x%s",
                  static_cast<unsigned long long>(cycle), signal.c_str(), valueA.c_str(),
                  valueB.c_str());
      break;
    case Kind::StopMismatch:
      s += strfmt(" at cycle %llu: %s vs %s", static_cast<unsigned long long>(cycle),
                  valueA.c_str(), valueB.c_str());
      break;
    default:
      break;
  }
  if (!detail.empty()) s += "\n  " + detail;
  return s;
}

std::optional<Divergence> compareLockstep(
    const std::vector<std::pair<std::string, sim::Engine*>>& engines, const Stimulus& stim,
    RefTrace* trace) {
  if (engines.empty()) return std::nullopt;
  sim::Engine& ref = *engines[0].second;
  const std::string& refName = engines[0].first;

  // Signals observable in every participating IR (engines may be built from
  // differently-optimized IRs; DCE can legitimately drop named nodes).
  std::vector<std::string> names;
  for (const sim::Signal& s : ref.ir().signals) {
    if (s.name.empty() || !comparableKind(s.kind)) continue;
    bool everywhere = true;
    for (size_t i = 1; i < engines.size() && everywhere; i++) {
      const sim::SimIR& ir = engines[i].second->ir();
      int32_t id = ir.findSignal(s.name);
      everywhere = id >= 0 && comparableKind(ir.signals[static_cast<size_t>(id)].kind);
    }
    if (everywhere) names.push_back(s.name);
  }

  uint64_t cyclesRun = 0;
  for (size_t c = 0; c < stim.numCycles(); c++) {
    bool allStopped = true;
    for (const auto& [n, e] : engines) allStopped = allStopped && e->stopped();
    if (allStopped) break;
    for (size_t i = 1; i < engines.size(); i++) {
      if (engines[i].second->stopped() != ref.stopped()) {
        Divergence d;
        d.kind = Divergence::Kind::StopMismatch;
        d.cycle = c;
        d.engineA = refName;
        d.engineB = engines[i].first;
        d.valueA = ref.stopped() ? "stopped" : "running";
        d.valueB = engines[i].second->stopped() ? "stopped" : "running";
        return d;
      }
    }
    for (const auto& [n, e] : engines) {
      stim.apply(*e, c);
      try {
        e->tick();
      } catch (const std::exception& ex) {
        Divergence d;
        d.kind = Divergence::Kind::EngineException;
        d.cycle = c;
        d.engineA = refName;
        d.engineB = n;
        d.detail = ex.what();
        return d;
      }
    }
    for (const std::string& name : names) {
      BitVec va = ref.peekBV(name);
      for (size_t i = 1; i < engines.size(); i++) {
        BitVec vb = engines[i].second->peekBV(name);
        if (va != vb) {
          Divergence d;
          d.cycle = c;
          d.signal = name;
          d.engineA = refName;
          d.engineB = engines[i].first;
          d.valueA = va.toHexString();
          d.valueB = vb.toHexString();
          return d;
        }
      }
    }
    if (trace) {
      std::vector<std::string> row;
      row.reserve(trace->signals.size());
      for (const std::string& name : trace->signals)
        row.push_back(ref.peekBV(name).toHexString());
      trace->cycles.push_back(std::move(row));
    }
    cyclesRun++;
  }

  for (size_t i = 1; i < engines.size(); i++) {
    sim::Engine& e = *engines[i].second;
    if (e.stopped() != ref.stopped() ||
        (ref.stopped() && e.exitCode() != ref.exitCode())) {
      Divergence d;
      d.kind = Divergence::Kind::StopMismatch;
      d.cycle = cyclesRun;
      d.engineA = refName;
      d.engineB = engines[i].first;
      d.valueA = ref.stopped() ? strfmt("stopped exit=%d", ref.exitCode()) : "running";
      d.valueB = e.stopped() ? strfmt("stopped exit=%d", e.exitCode()) : "running";
      return d;
    }
    if (printLines(e.printOutput()) != printLines(ref.printOutput())) {
      Divergence d;
      d.kind = Divergence::Kind::PrintMismatch;
      d.cycle = cyclesRun;
      d.engineA = refName;
      d.engineB = engines[i].first;
      d.detail = "reference:\n" + truncated(ref.printOutput()) + "\nother:\n" +
                 truncated(e.printOutput());
      return d;
    }
  }

  // Final memory contents (memories present in every IR).
  for (const sim::MemInfo& m : ref.ir().mems) {
    bool everywhere = true;
    for (size_t i = 1; i < engines.size() && everywhere; i++) {
      bool found = false;
      for (const sim::MemInfo& om : engines[i].second->ir().mems)
        if (om.name == m.name && om.depth == m.depth) found = true;
      everywhere = found;
    }
    if (!everywhere) continue;
    for (uint64_t addr = 0; addr < m.depth; addr++) {
      uint64_t va = ref.peekMem(m.name, addr);
      for (size_t i = 1; i < engines.size(); i++) {
        uint64_t vb = engines[i].second->peekMem(m.name, addr);
        if (va != vb) {
          Divergence d;
          d.kind = Divergence::Kind::MemMismatch;
          d.cycle = cyclesRun;
          d.signal = strfmt("%s[%llu]", m.name.c_str(), static_cast<unsigned long long>(addr));
          d.engineA = refName;
          d.engineB = engines[i].first;
          d.valueA = strfmt("%llx", static_cast<unsigned long long>(va));
          d.valueB = strfmt("%llx", static_cast<unsigned long long>(vb));
          return d;
        }
      }
    }
  }

  if (trace) {
    trace->printOut = ref.printOutput();
    trace->stopped = ref.stopped();
    trace->exitCode = ref.exitCode();
    for (const sim::MemInfo& m : ref.ir().mems) {
      std::vector<uint64_t> rows;
      for (uint64_t addr = 0; addr < m.depth; addr++)
        rows.push_back(ref.peekMem(m.name, addr));
      trace->mems.push_back({m.name, std::move(rows)});
    }
  }
  return std::nullopt;
}

namespace {

// Builds the self-checking harness appended to the emitted simulator: pokes
// the stimulus (baked in as a constant table), prints a `~`-prefixed trace
// of every observed signal each cycle, then final stop status and memory
// contents. Design printf output passes through untagged.
std::string buildCodegenHarness(const sim::SimIR& ir, const Stimulus& stim,
                                const std::vector<std::string>& traceSignals) {
  std::string h = "\nint main() {\n  essent_gen::Simulator sim;\n";
  // Input columns that exist in this IR.
  std::vector<std::pair<size_t, std::string>> cols;  // stim index -> member
  for (size_t i = 0; i < stim.inputs.size(); i++) {
    int32_t sig = ir.findSignal(stim.inputs[i]);
    if (sig >= 0) cols.push_back({i, codegen::memberName(ir, sig)});
  }
  size_t n = std::max<size_t>(cols.size(), 1);
  h += strfmt("  static const unsigned long long kStim[][%zu] = {\n", n);
  for (const auto& row : stim.cycles) {
    h += "    {";
    if (cols.empty()) h += "0";
    for (size_t j = 0; j < cols.size(); j++) {
      if (j) h += ", ";
      h += strfmt("0x%llxull", static_cast<unsigned long long>(row[cols[j].first].toU64()));
    }
    h += "},\n";
  }
  h += "  };\n";
  h += strfmt("  for (unsigned long long c = 0; c < %zuull && !sim.stopped_; c++) {\n",
              stim.numCycles());
  for (size_t j = 0; j < cols.size(); j++)
    h += strfmt("    sim.%s = kStim[c][%zu];\n", cols[j].second.c_str(), j);
  h += "    sim.eval();\n";
  for (const std::string& name : traceSignals) {
    int32_t sig = ir.findSignal(name);
    h += strfmt("    std::printf(\"~C %%llu %s=%%llx\\n\", c, (unsigned long long)sim.%s);\n",
                name.c_str(), codegen::memberName(ir, sig).c_str());
  }
  h += "  }\n";
  h += "  std::printf(\"~S %d %d\\n\", sim.stopped_ ? 1 : 0, sim.exit_code_);\n";
  for (const sim::MemInfo& m : ir.mems)
    h += strfmt(
        "  for (unsigned long long a = 0; a < %lluull; a++)\n"
        "    std::printf(\"~M %s %%llu %%llx\\n\", a, (unsigned long long)sim.mem_%s[a]);\n",
        static_cast<unsigned long long>(m.depth), m.name.c_str(),
        sanitizeIdent(m.name).c_str());
  h += "  return 0;\n}\n";
  return h;
}

}  // namespace

OracleResult runOracle(const std::string& firrtlText, const Stimulus& stim,
                       const OracleOptions& opts) {
  OracleResult res;
  auto wants = [&](EngineKind k) {
    return std::find(opts.engines.begin(), opts.engines.end(), k) != opts.engines.end();
  };

  std::shared_ptr<const sim::CompiledDesign> refDesign, optDesign;
  try {
    sim::BuildOptions noOpt;
    noOpt.constProp = noOpt.cse = noOpt.dce = false;
    refDesign = sim::CompiledDesign::compile(sim::buildFromFirrtl(firrtlText, noOpt));
    optDesign = sim::CompiledDesign::compile(sim::buildFromFirrtl(firrtlText, sim::BuildOptions{}));
  } catch (const std::exception& e) {
    res.buildError = e.what();
    return res;
  }
  const sim::SimIR& irRef = refDesign->ir;
  const sim::SimIR& irOpt = optDesign->ir;

  bool wantCodegen = wants(EngineKind::Codegen);
  std::string code;
  core::ScheduleOptions so;
  if (wantCodegen) {
    try {
      core::CondPartSchedule sched = core::buildSchedule(core::Netlist::build(irOpt), so);
      codegen::CodegenOptions co;
      code = codegen::emitCpp(irOpt, &sched, co);
    } catch (const codegen::CodegenError& e) {
      wantCodegen = false;
      res.codegenSkipped = true;
      res.codegenSkipReason = e.what();
    }
  }

  // The reference is always a full-cycle engine on the unoptimized IR; it
  // participates even when not explicitly selected (something must anchor
  // the comparison, and the codegen trace needs an in-process twin).
  std::vector<std::unique_ptr<sim::Engine>> own;
  std::vector<std::pair<std::string, sim::Engine*>> list;
  auto addEngineOpts = [&](EngineKind k, const std::shared_ptr<const sim::CompiledDesign>& d,
                           const sim::EngineOptions& eo) {
    own.push_back(sim::makeEngine(k, d, eo));
    list.push_back({engineKindName(k), own.back().get()});
  };
  auto addEngine = [&](EngineKind k, const std::shared_ptr<const sim::CompiledDesign>& d) {
    addEngineOpts(k, d, {});
  };
  addEngine(EngineKind::FullCycle, refDesign);
  if (wants(EngineKind::EventDriven)) addEngine(EngineKind::EventDriven, optDesign);
  if (wants(EngineKind::Ccss)) addEngine(EngineKind::Ccss, optDesign);
  if (wants(EngineKind::CcssPar)) {
    // Deliberately NOT makeEngine: the oracle must exercise the real
    // parallel sweep even on a single-core host, so it bypasses the
    // factory's graceful hardware-concurrency clamping.
    own.push_back(std::make_unique<core::ParallelActivityEngine>(
        core::CompiledCcss::get(optDesign, so), std::max(2u, opts.parThreads)));
    list.push_back({engineKindName(EngineKind::CcssPar), own.back().get()});
  }
  if (wants(EngineKind::Lane)) {
    // Broadcast adapter over a multi-lane group: every lane computes the
    // same run through the SoA/SIMD path, so a divergence here pins a
    // lane-kernel bug against the scalar engines.
    sim::EngineOptions laneOpts;
    laneOpts.lanes = opts.laneCount;
    addEngineOpts(EngineKind::Lane, optDesign, laneOpts);
  }

  // Traced signals for the codegen comparison: outputs and registers of the
  // optimized IR that the reference can also observe.
  RefTrace trace;
  if (wantCodegen) {
    for (const sim::Signal& s : irOpt.signals) {
      if (s.name.empty()) continue;
      if (s.kind != sim::SigKind::Output && s.kind != sim::SigKind::Register) continue;
      if (irRef.findSignal(s.name) < 0) continue;
      trace.signals.push_back(s.name);
    }
  }

  res.divergence = compareLockstep(list, stim, wantCodegen ? &trace : nullptr);
  res.ran = true;
  if (res.divergence || !wantCodegen) return res;

  // ---- Out-of-process codegen comparison ----
  support::TempDir dir("essent_fuzz_XXXXXX");
  if (opts.keepCompiledArtifacts) dir.keep();
  std::string srcPath = dir.file("sim.cpp");
  {
    std::ofstream f(srcPath);
    std::string harness = buildCodegenHarness(irOpt, stim, trace.signals);
    if (opts.injectHangForTest) {
      // Wedge the simulator before it produces any output; only the
      // watchdog can get the oracle past this.
      size_t brace = harness.find('{');
      if (brace != std::string::npos) harness.insert(brace + 1, "\n  for (;;) {}\n");
    }
    f << code << harness;
  }
  support::RunOptions runOpts;
  runOpts.timeoutMs = opts.subprocessTimeoutMs;
  std::string binPath = dir.file("sim");
  support::ExecResult cc = support::runShell(opts.compilerCmd + " -o " +
                                                 support::shellQuote(binPath) + " " +
                                                 support::shellQuote(srcPath),
                                             runOpts);
  if (!cc.ok()) {
    dir.keep();
    Divergence d;
    d.kind = cc.timedOut ? Divergence::Kind::Timeout : Divergence::Kind::CompileFailure;
    d.engineA = "full";
    d.engineB = "codegen";
    d.detail = strfmt("%s (source kept at %s)", cc.describe().c_str(), srcPath.c_str());
    res.divergence = d;
    return res;
  }
  std::string outPath = dir.file("out.txt");
  support::ExecResult run = support::runShell(support::shellQuote(binPath) + " > " +
                                                  support::shellQuote(outPath),
                                              runOpts);
  if (!run.ran || !run.exited || run.exitCode != 0 || run.timedOut) {
    dir.keep();
    Divergence d;
    d.kind = run.timedOut ? Divergence::Kind::Timeout : Divergence::Kind::EngineException;
    d.engineA = "full";
    d.engineB = "codegen";
    d.detail = strfmt("compiled simulator %s (artifacts kept at %s)",
                      run.describe().c_str(), dir.path().c_str());
    res.divergence = d;
    return res;
  }

  std::unordered_map<std::string, size_t> sigIdx;
  for (size_t i = 0; i < trace.signals.size(); i++) sigIdx[trace.signals[i]] = i;
  std::unordered_map<std::string, std::vector<uint64_t>> refMems(trace.mems.begin(),
                                                                 trace.mems.end());
  auto fail = [&](Divergence d) {
    res.divergence = std::move(d);
    return res;
  };

  std::ifstream out(outPath);
  std::string line, gotPrint;
  uint64_t maxCycle = 0;
  bool sawCycle = false, sawStatus = false;
  while (std::getline(out, line)) {
    if (line.rfind("~C ", 0) == 0) {
      size_t sp = line.find(' ', 3);
      size_t eq = line.find('=', sp);
      if (sp == std::string::npos || eq == std::string::npos) continue;
      uint64_t c = std::stoull(line.substr(3, sp - 3));
      std::string name = line.substr(sp + 1, eq - sp - 1);
      std::string hex = line.substr(eq + 1);
      sawCycle = true;
      maxCycle = std::max(maxCycle, c);
      auto it = sigIdx.find(name);
      if (it == sigIdx.end()) continue;
      if (c >= trace.cycles.size()) {
        Divergence d;
        d.kind = Divergence::Kind::StopMismatch;
        d.cycle = c;
        d.engineA = "full";
        d.engineB = "codegen";
        d.valueA = strfmt("ran %zu cycles", trace.cycles.size());
        d.valueB = strfmt("still running at cycle %llu", static_cast<unsigned long long>(c));
        return fail(d);
      }
      const std::string& want = trace.cycles[static_cast<size_t>(c)][it->second];
      if (hex != want) {
        Divergence d;
        d.cycle = c;
        d.signal = name;
        d.engineA = "full";
        d.engineB = "codegen";
        d.valueA = want;
        d.valueB = hex;
        return fail(d);
      }
    } else if (line.rfind("~S ", 0) == 0) {
      sawStatus = true;
      int stopped = 0, exit = 0;
      std::sscanf(line.c_str(), "~S %d %d", &stopped, &exit);
      if ((stopped != 0) != trace.stopped || (trace.stopped && exit != trace.exitCode)) {
        Divergence d;
        d.kind = Divergence::Kind::StopMismatch;
        d.cycle = trace.cycles.size();
        d.engineA = "full";
        d.engineB = "codegen";
        d.valueA = trace.stopped ? strfmt("stopped exit=%d", trace.exitCode) : "running";
        d.valueB = stopped ? strfmt("stopped exit=%d", exit) : "running";
        return fail(d);
      }
    } else if (line.rfind("~M ", 0) == 0) {
      char memName[256];
      unsigned long long addr = 0, value = 0;
      if (std::sscanf(line.c_str(), "~M %255s %llu %llx", memName, &addr, &value) != 3)
        continue;
      auto it = refMems.find(memName);
      if (it == refMems.end() || addr >= it->second.size()) continue;
      if (it->second[addr] != value) {
        Divergence d;
        d.kind = Divergence::Kind::MemMismatch;
        d.cycle = trace.cycles.size();
        d.signal = strfmt("%s[%llu]", memName, addr);
        d.engineA = "full";
        d.engineB = "codegen";
        d.valueA = strfmt("%llx", static_cast<unsigned long long>(it->second[addr]));
        d.valueB = strfmt("%llx", value);
        return fail(d);
      }
    } else {
      gotPrint += line + "\n";
    }
  }
  uint64_t gotCycles = sawCycle ? maxCycle + 1 : 0;
  if (gotCycles != trace.cycles.size() || !sawStatus) {
    Divergence d;
    d.kind = Divergence::Kind::StopMismatch;
    d.cycle = std::min<uint64_t>(gotCycles, trace.cycles.size());
    d.engineA = "full";
    d.engineB = "codegen";
    d.valueA = strfmt("ran %zu cycles", trace.cycles.size());
    d.valueB = strfmt("ran %llu cycles%s", static_cast<unsigned long long>(gotCycles),
                      sawStatus ? "" : ", no status line");
    return fail(d);
  }
  if (printLines(gotPrint) != printLines(trace.printOut)) {
    Divergence d;
    d.kind = Divergence::Kind::PrintMismatch;
    d.cycle = trace.cycles.size();
    d.engineA = "full";
    d.engineB = "codegen";
    d.detail = "reference:\n" + truncated(trace.printOut) + "\ncodegen:\n" +
               truncated(gotPrint);
    return fail(d);
  }
  return res;
}

}  // namespace essent::fuzz
