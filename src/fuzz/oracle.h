// Differential oracle: runs one circuit + stimulus through up to six
// execution paths and reports the first observable disagreement.
//
//   full    — FullCycleEngine on an UNOPTIMIZED SimIR (reference semantics;
//             using the no-opt build means const-prop/CSE/DCE bugs are
//             caught too, not just engine bugs);
//   event   — EventDrivenEngine on the optimized SimIR;
//   ccss    — ActivityEngine (conditional partition scheduling);
//   par     — ParallelActivityEngine with 2+ worker threads;
//   lane    — LaneBroadcastEngine: the SIMD instance-parallel LaneEngine
//             with the same stimulus broadcast to every lane (lane 0 is
//             compared; all lanes must agree by construction);
//   codegen — the compiled simulator emitted by codegen::emitCpp, built
//             with the host toolchain and compared through a trace protocol
//             over its stdout.
//
// Compared every cycle: every named signal (output/register/node) present
// in all participating IRs, plus stop status. Compared at the end: printf
// output and final memory contents.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/stimulus.h"
#include "sim/engine.h"
#include "sim/engine_factory.h"

namespace essent::fuzz {

// The oracle's engine set is exactly the unified sim::EngineKind (one name
// table for every tool; essentc parses the same tokens).
using sim::EngineKind;
using sim::allEngineKinds;
using sim::engineKindName;
using sim::parseEngineKind;

struct Divergence {
  enum class Kind {
    ValueMismatch,    // a named signal differs on some cycle
    StopMismatch,     // stop/exit behaviour differs (incl. cycle counts)
    PrintMismatch,    // accumulated printf output differs
    MemMismatch,      // final memory contents differ
    EngineException,  // an engine threw while ticking
    CompileFailure,   // host compilation of the emitted simulator failed
    Timeout,          // the watchdog killed a compile or run subprocess
  };
  Kind kind = Kind::ValueMismatch;
  uint64_t cycle = 0;
  std::string signal;   // or "<mem>[addr]" for MemMismatch
  std::string engineA;  // reference side
  std::string engineB;  // disagreeing side
  std::string valueA;
  std::string valueB;
  std::string detail;

  std::string describe() const;
};

struct OracleOptions {
  std::vector<EngineKind> engines = allEngineKinds();
  unsigned parThreads = 2;
  // Lane count for the EngineKind::Lane oracle member (broadcast across
  // lanes; every lane runs the full SIMD path on the same stimulus). 8
  // fills one AVX-512 vector while keeping the arena small.
  unsigned laneCount = 8;
  // Host compiler for the codegen path; -O1 keeps fuzz turnaround fast
  // while still letting the optimizer exploit any UB in the emitted code.
  std::string compilerCmd = "c++ -std=c++20 -O1";
  bool keepCompiledArtifacts = false;  // keep the temp dir for debugging
  // Wall-clock watchdog for each codegen subprocess (compile, then run);
  // 0 disables. A killed subprocess surfaces as Divergence::Kind::Timeout,
  // never as a hang. Applied on every oracle invocation, including each
  // shrink attempt.
  int64_t subprocessTimeoutMs = 0;
  // Test hook: prepend an infinite loop to the compiled harness's main(),
  // proving the watchdog path end to end.
  bool injectHangForTest = false;
};

struct OracleResult {
  bool ran = false;  // the circuit parsed and built; engines were compared
  std::string buildError;
  std::optional<Divergence> divergence;
  bool codegenSkipped = false;        // e.g. >64-bit signals (documented limit)
  std::string codegenSkipReason;

  bool ok() const { return ran && !divergence.has_value(); }
};

OracleResult runOracle(const std::string& firrtlText, const Stimulus& stim,
                       const OracleOptions& opts = {});

// Reference trace captured from engines[0] during a lock-step run; feeds
// the out-of-process codegen comparison.
struct RefTrace {
  std::vector<std::string> signals;               // names to record
  std::vector<std::vector<std::string>> cycles;   // hex value per signal per cycle
  std::string printOut;
  bool stopped = false;
  int exitCode = 0;
  // Final contents of every memory in the reference IR (word 0 per row;
  // generated memories are always <= 64 bits wide).
  std::vector<std::pair<std::string, std::vector<uint64_t>>> mems;
};

// Lock-step comparison of in-process engines (engines[0] is the reference).
// Exposed separately so tests can compare arbitrary engine pairs.
std::optional<Divergence> compareLockstep(
    const std::vector<std::pair<std::string, sim::Engine*>>& engines, const Stimulus& stim,
    RefTrace* trace = nullptr);

}  // namespace essent::fuzz
