#include "serve/protocol.h"

#include <cinttypes>

#include "support/strutil.h"

namespace essent::serve {

namespace {

// 64-bit FNV-1a with a caller-chosen offset basis; two bases give the
// 128-bit content address.
uint64_t fnv1a(const std::string& s, uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool isUIntNumber(const obs::Json& j) {
  if (!j.isNumber()) return false;
  if (j.kind() == obs::Json::Kind::Double) return false;  // exactness matters
  return j.kind() != obs::Json::Kind::Int || j.asInt() >= 0;
}

}  // namespace

const char* requestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::Ping: return "ping";
    case RequestOp::Compile: return "compile";
    case RequestOp::Run: return "run";
    case RequestOp::Status: return "status";
    case RequestOp::Evict: return "evict";
    case RequestOp::Shutdown: return "shutdown";
  }
  return "?";
}

std::string RequestOptions::cacheKey() const {
  return strfmt("cp=%u;baseline=%d", cp, baseline ? 1 : 0);
}

std::string designHash(const std::string& firrtlText, const RequestOptions& opts) {
  std::string key = opts.cacheKey();
  uint64_t lo = fnv1a(key, fnv1a(firrtlText, 0xcbf29ce484222325ULL));
  uint64_t hi = fnv1a(key, fnv1a(firrtlText, 0x84222325cbf29ce4ULL));
  return strfmt("%016" PRIx64 "%016" PRIx64, hi, lo);
}

std::optional<Request> parseRequest(const obs::Json& doc, std::string& code,
                                    std::string& message) {
  code = kErrBadRequest;
  if (!doc.isObject()) {
    message = "request must be a JSON object";
    return std::nullopt;
  }
  Request r;
  bool sawOp = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "op") {
      if (!value.isString()) {
        message = "'op' must be a string";
        return std::nullopt;
      }
      const std::string& op = value.asStr();
      if (op == "ping") r.op = RequestOp::Ping;
      else if (op == "compile") r.op = RequestOp::Compile;
      else if (op == "run") r.op = RequestOp::Run;
      else if (op == "status") r.op = RequestOp::Status;
      else if (op == "evict") r.op = RequestOp::Evict;
      else if (op == "shutdown") r.op = RequestOp::Shutdown;
      else {
        message = "unknown op '" + op + "'";
        return std::nullopt;
      }
      sawOp = true;
    } else if (key == "design") {
      if (!value.isString()) {
        message = "'design' must be a string of FIRRTL source";
        return std::nullopt;
      }
      r.designText = value.asStr();
    } else if (key == "design_hash") {
      if (!value.isString()) {
        message = "'design_hash' must be a hex string";
        return std::nullopt;
      }
      r.designHash = value.asStr();
    } else if (key == "cycles") {
      if (!isUIntNumber(value)) {
        message = "'cycles' must be a non-negative integer";
        return std::nullopt;
      }
      r.cycles = value.asUInt();
    } else if (key == "batch") {
      if (!isUIntNumber(value)) {
        message = "'batch' must be a non-negative integer";
        return std::nullopt;
      }
      uint64_t b = value.asUInt();
      if (b > 4096) {
        message = "'batch' beyond the supported maximum (4096)";
        return std::nullopt;
      }
      r.batch = static_cast<uint32_t>(b);
    } else if (key == "sleep_ms") {
      if (!isUIntNumber(value)) {
        message = "'sleep_ms' must be a non-negative integer";
        return std::nullopt;
      }
      r.sleepMs = value.asUInt();
    } else if (key == "pokes") {
      if (!value.isObject()) {
        message = "'pokes' must be an object of name -> integer";
        return std::nullopt;
      }
      for (const auto& [name, v] : value.members()) {
        if (!isUIntNumber(v)) {
          message = "poke '" + name + "' must be a non-negative integer";
          return std::nullopt;
        }
        r.pokes[name] = v.asUInt();
      }
    } else if (key == "options") {
      if (!value.isObject()) {
        message = "'options' must be an object";
        return std::nullopt;
      }
      for (const auto& [name, v] : value.members()) {
        if (name == "cp") {
          if (!isUIntNumber(v) || v.asUInt() == 0 || v.asUInt() > 1u << 20) {
            message = "options.cp must be a positive integer";
            return std::nullopt;
          }
          r.options.cp = static_cast<uint32_t>(v.asUInt());
        } else if (name == "baseline") {
          if (v.kind() != obs::Json::Kind::Bool) {
            message = "options.baseline must be a boolean";
            return std::nullopt;
          }
          r.options.baseline = v.asBool();
        } else if (name == "engine") {
          if (!v.isString() || !sim::parseEngineKind(v.asStr(), r.options.kind) ||
              r.options.kind == sim::EngineKind::Codegen) {
            message = "options.engine must be one of full|event|ccss|par|lane";
            return std::nullopt;
          }
        } else if (name == "threads") {
          if (!isUIntNumber(v) || v.asUInt() > 256) {
            message = "options.threads must be an integer in [0, 256]";
            return std::nullopt;
          }
          r.options.threads = static_cast<unsigned>(v.asUInt());
        } else if (name == "lanes") {
          if (!isUIntNumber(v) || v.asUInt() > 64) {
            message = "options.lanes must be an integer in [0, 64]";
            return std::nullopt;
          }
          r.options.lanes = static_cast<unsigned>(v.asUInt());
        } else {
          message = "unknown options field '" + name + "'";
          return std::nullopt;
        }
      }
    } else {
      message = "unknown request field '" + key + "'";
      return std::nullopt;
    }
  }
  if (!sawOp) {
    message = "missing required field 'op'";
    return std::nullopt;
  }
  // Op-specific requirements, checked here so handlers can assume them.
  if (r.op == RequestOp::Compile && r.designText.empty()) {
    message = "'compile' requires 'design' (FIRRTL source text)";
    return std::nullopt;
  }
  if (r.op == RequestOp::Run && r.designText.empty() && r.designHash.empty()) {
    message = "'run' requires 'design' or 'design_hash'";
    return std::nullopt;
  }
  if (r.op == RequestOp::Run && r.cycles == 0) {
    message = "'run' requires a positive 'cycles'";
    return std::nullopt;
  }
  if (r.op == RequestOp::Evict && r.designHash.empty()) {
    message = "'evict' requires 'design_hash'";
    return std::nullopt;
  }
  code.clear();
  message.clear();
  return r;
}

obs::Json okResponse(RequestOp op) {
  obs::Json doc = obs::Json::object();
  doc["ok"] = true;
  doc["op"] = requestOpName(op);
  return doc;
}

obs::Json errorResponse(const std::string& code, const std::string& message,
                        int64_t retryAfterMs) {
  obs::Json err = obs::Json::object();
  err["code"] = code;
  err["message"] = message;
  if (retryAfterMs >= 0) err["retry_after_ms"] = retryAfterMs;
  obs::Json doc = obs::Json::object();
  doc["ok"] = false;
  doc["error"] = std::move(err);
  return doc;
}

std::optional<ResponseEnvelope> parseResponseEnvelope(const obs::Json& doc) {
  if (!doc.isObject()) return std::nullopt;
  const obs::Json* ok = doc.find("ok");
  if (!ok || ok->kind() != obs::Json::Kind::Bool) return std::nullopt;
  ResponseEnvelope env;
  env.ok = ok->asBool();
  if (env.ok) return env;
  const obs::Json* err = doc.find("error");
  if (!err || !err->isObject()) return std::nullopt;
  const obs::Json* code = err->find("code");
  if (!code || !code->isString() || code->asStr().size() != 5 || code->asStr()[0] != 'E')
    return std::nullopt;
  env.errorCode = code->asStr();
  if (const obs::Json* msg = err->find("message"); msg && msg->isString())
    env.errorMessage = msg->asStr();
  if (const obs::Json* retry = err->find("retry_after_ms"); retry && retry->isNumber())
    env.retryAfterMs = retry->asInt();
  return env;
}

}  // namespace essent::serve
